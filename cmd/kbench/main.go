// Command kbench regenerates the tables and figures of the Kaleido paper's
// evaluation (§6) on the scaled synthetic datasets.
//
// Usage:
//
//	kbench -exp table2            # one experiment
//	kbench -exp all -quick        # the full suite, reduced grids
//
// Experiments: table2 (+fig10), table3, fig11, fig12, fig13, fig14, table4,
// fig16 (+fig15), fig17 (+fig18), plus "sinks" — the fused terminal-
// expansion paths (clique-d4 / motif-d3 of BENCH_expand.json) with their
// all-disk write-byte accounting — "compress" — the delta+varint spill
// codec's time and bytes-on-disk against raw spilling — "concurrent" —
// N concurrent runs sharing one memory budget through a kaleido.Engine,
// with the combined resident peak the arbiter recorded — "shards" —
// prefix-range sharded execution scaling the vertex-d4 frontier count over
// 1/2/4 degree-mass-balanced shards (one worker each), with the summed
// embedding count pinned across shard counts — "resident" — the
// compressed-resident tier (raw-mem → compressed-mem → disk) against raw
// spilling under a halved budget, reporting spilled/compressed part counts
// and the physical resident-peak reduction — and "service" — N jobs
// submitted to an in-process kaleidod HTTP daemon against the same N direct
// Engine runs, with the admission queue's wait columns and the counts pinned
// across both paths. See EXPERIMENTS.md for the paper-vs-measured record.
//
// `kbench -faults` runs the fault-injection campaign instead: a seeded
// vfs.FaultFS injects transient spill faults (EIO, short writes) across the
// three storage regimes and the campaign verifies the retry layer absorbed
// them without changing any count, then demonstrates the hard-fault contract
// (bit-flip corruption → ErrSpillCorrupt, full device → ErrNoSpace). Tune it
// with -fault-p and -fault-seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"kaleido/internal/bench"
	"kaleido/internal/storage"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	quick := flag.Bool("quick", false, "reduced grids (CI-sized)")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
	cache := flag.String("cache", defaultCache(), "dataset cache directory")
	spill := flag.String("spill", os.TempDir(), "scratch directory for hybrid storage")
	watermark := flag.Float64("watermark", 0, "spill watermark as a fraction of the memory budget (0 = engine default)")
	predictSample := flag.Int("predict-sample", 0, "exactly-predicted groups per chunk for §4.2 prediction (0 = engine default, -1 = every group)")
	faults := flag.Bool("faults", false, "run the fault-injection campaign (shorthand for -exp faults)")
	faultP := flag.Float64("fault-p", 0, "per-op probability of each transient fault class in the faults campaign (0 = default 0.01)")
	faultSeed := flag.Int64("fault-seed", 0, "fault schedule seed (0 = default 42)")
	compress := flag.Bool("compress", true, "delta+varint codec for spilled parts in budgeted experiments")
	compressResident := flag.Bool("compress-resident", true, "compressed-mem residency tier for budgeted experiments")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	cfg := bench.RunConfig{
		Threads:        *threads,
		CacheDir:       *cache,
		SpillDir:       *spill,
		Quick:          *quick,
		SpillWatermark: *watermark,
		PredictSample:  *predictSample,
		FaultP:         *faultP,
		FaultSeed:      *faultSeed,
	}
	if !*compress {
		cfg.Compression = storage.CompressionOff
	}
	if !*compressResident {
		cfg.ResidentCompression = storage.CompressionOff
	}
	ids := []string{*exp}
	if *faults {
		ids = []string{"faults"}
	} else if *exp == "all" {
		ids = bench.Experiments()
	}
	for _, id := range ids {
		results, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Println(r.Render())
		}
	}
}

func defaultCache() string {
	dir, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return dir + "/kaleido-datasets"
}
