// Command kgen generates synthetic labeled power-law graphs in the text
// edge-list format the kaleido command consumes, or materializes one of the
// named paper datasets.
//
// Usage:
//
//	kgen -n 10000 -m 80000 -labels 8 -seed 1 -o graph.txt
//	kgen -dataset mico -o mico.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"kaleido/internal/dataset"
	"kaleido/internal/gen"
	"kaleido/internal/graph"
)

func main() {
	n := flag.Int("n", 1000, "vertices")
	m := flag.Int("m", 5000, "edges")
	labels := flag.Int("labels", 4, "distinct vertex labels")
	alpha := flag.Float64("alpha", 2.2, "power-law exponent")
	skew := flag.Float64("skew", 0.8, "label Zipf skew")
	seed := flag.Int64("seed", 1, "random seed")
	dsName := flag.String("dataset", "", "emit a named paper dataset instead (citeseer, mico, patent, youtube)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var g *graph.Graph
	var err error
	if *dsName != "" {
		var d dataset.Desc
		d, err = dataset.ByName(*dsName)
		if err == nil {
			g, err = dataset.Generate(d)
		}
	} else {
		g, err = gen.PowerLaw(gen.Config{
			N: *n, M: *m, Alpha: *alpha, NumLabels: *labels, LabelSkew: *skew, Seed: *seed,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kgen:", err)
		os.Exit(1)
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriterSize(f, 1<<20)
	}
	// Emit original vertex ids: identity on freshly generated graphs, and
	// layout-independent if the source graph was degree-order relabeled.
	fmt.Fprintf(w, "# kgen: %d vertices, %d edges, %d labels\n", g.N(), g.M(), g.NumLabels())
	for _, e := range g.Edges() {
		fmt.Fprintf(w, "%d %d\n", g.OrigID(e.U), g.OrigID(e.V))
	}
	for v := 0; v < g.N(); v++ {
		if l := g.Label(uint32(v)); l != 0 {
			fmt.Fprintf(w, "%d label=%d\n", g.OrigID(uint32(v)), l)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "kgen:", err)
		os.Exit(1)
	}
}
