// Command kaleido runs one mining application over an input graph.
//
// Usage:
//
//	kaleido -app tc -dataset patent
//	kaleido -app motif -k 4 -graph edges.txt
//	kaleido -app fsm -k 3 -support 300 -dataset mico -budget 64MiB -spill /tmp/k
//
// Graphs come either from a named synthetic dataset (-dataset citeseer|mico|
// patent|youtube) or from an edge-list file (-graph), with lines "u v" and
// optional "v label=L".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"kaleido"
)

func main() {
	app := flag.String("app", "tc", "application: tc | clique | motif | fsm")
	k := flag.Int("k", 3, "embedding size (clique/motif/fsm)")
	support := flag.Uint64("support", 100, "MNI support threshold (fsm)")
	dsName := flag.String("dataset", "", "named dataset (citeseer, mico, patent, youtube)")
	graphPath := flag.String("graph", "", "edge-list file")
	threads := flag.Int("threads", 0, "worker threads (0 = all CPUs)")
	shards := flag.Int("shards", 0, "prefix-range shards run concurrently under one budget (0/1 = unsharded)")
	budget := flag.String("budget", "", "memory budget for intermediate data (e.g. 512MiB); empty = in-memory")
	spill := flag.String("spill", os.TempDir(), "spill directory for hybrid storage")
	predict := flag.Bool("predict", true, "prediction-based load balancing for spilled levels")
	compress := flag.Bool("compress", true, "delta+varint codec for spilled parts")
	compressResident := flag.Bool("compress-resident", true, "compressed-mem residency tier under a memory budget")
	iso := flag.String("iso", "eigen", "isomorphism backend: eigen | bliss | exact")
	flag.Parse()

	g, err := loadGraph(*dsName, *graphPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d labels, avg degree %.1f\n",
		g.N(), g.M(), g.NumLabels(), g.AvgDegree())

	var stats kaleido.Stats
	cfg := kaleido.Config{
		Threads: *threads,
		Shards:  *shards,
		Predict: *predict,
		Stats:   &stats,
	}
	switch *iso {
	case "eigen":
		cfg.Iso = kaleido.IsoEigen
	case "bliss":
		cfg.Iso = kaleido.IsoBliss
	case "exact":
		cfg.Iso = kaleido.IsoEigenExact
	default:
		fatal(fmt.Errorf("unknown iso backend %q", *iso))
	}
	if *budget != "" {
		b, err := parseBytes(*budget)
		if err != nil {
			fatal(err)
		}
		cfg.MemoryBudget = b
		cfg.SpillDir = *spill
	}
	if !*compress {
		cfg.Compression = kaleido.CompressionOff
	}
	if !*compressResident {
		cfg.ResidentCompression = kaleido.CompressionOff
	}

	// Ctrl-C cancels the run: workers notice within one block of work, the
	// partial level and its spill files are discarded, and the process exits
	// cleanly instead of leaving scratch data behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	switch *app {
	case "tc":
		n, err := g.Triangles(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("triangles: %d\n", n)
	case "clique":
		n, err := g.Cliques(ctx, *k, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d-cliques: %d\n", *k, n)
	case "motif":
		res, err := g.Motifs(ctx, *k, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d-motifs: %d shapes\n", *k, len(res))
		for _, pc := range res {
			fmt.Printf("  %-40s %12d\n", pc.Pattern, pc.Count)
		}
	case "fsm":
		res, err := g.FSM(ctx, *k, *support, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d-FSM (support %d): %d frequent patterns\n", *k, *support, len(res))
		for _, pc := range res {
			fmt.Printf("  %-40s count=%-10d support>=%d\n", pc.Pattern, pc.Count, pc.Support)
		}
	default:
		fatal(fmt.Errorf("unknown app %q (have tc, clique, motif, fsm)", *app))
	}
	fmt.Printf("elapsed: %.2fs  peak intermediate: %.1f MB  io: %.1f MB read / %.1f MB written\n",
		time.Since(start).Seconds(),
		float64(stats.PeakBytes)/(1<<20),
		float64(stats.ReadBytes)/(1<<20),
		float64(stats.WriteBytes)/(1<<20))
	if stats.SpilledParts > 0 || stats.CompressedParts > 0 {
		fmt.Printf("residency: %d parts spilled to disk, %d parts compressed in memory\n",
			stats.SpilledParts, stats.CompressedParts)
	}
}

func loadGraph(ds, path string) (*kaleido.Graph, error) {
	switch {
	case ds != "" && path != "":
		return nil, fmt.Errorf("use either -dataset or -graph, not both")
	case ds != "":
		cache, _ := os.UserCacheDir()
		if cache != "" {
			cache += "/kaleido-datasets"
		}
		return kaleido.Dataset(ds, cache)
	case path != "":
		return kaleido.LoadEdgeListFile(path)
	default:
		return nil, fmt.Errorf("need -dataset or -graph (datasets: %s)", strings.Join(kaleido.DatasetNames(), ", "))
	}
}

func parseBytes(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(s)
	for suffix, m := range map[string]int64{"KIB": 1 << 10, "MIB": 1 << 20, "GIB": 1 << 30, "KB": 1000, "MB": 1000000, "GB": 1000000000} {
		if strings.HasSuffix(upper, suffix) {
			mult = m
			upper = strings.TrimSuffix(upper, suffix)
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q: %w", s, err)
	}
	return v * mult, nil
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "kaleido: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "kaleido:", err)
	os.Exit(1)
}
