// Command kaleido runs one mining application over an input graph.
//
// Usage:
//
//	kaleido -app tc -dataset patent
//	kaleido -app motif -k 4 -graph edges.txt
//	kaleido -app fsm -k 3 -support 300 -dataset mico -budget 64MiB -spill /tmp/k
//
// Graphs come either from a named synthetic dataset (-dataset citeseer|mico|
// patent|youtube) or from an edge-list file (-graph), with lines "u v" and
// optional "v label=L".
//
// The flags build a service.JobSpec — the same job encoding the kaleidod
// daemon accepts over HTTP — and both run paths execute that one spec, so a
// CLI invocation and a daemon submission of the same job cannot drift:
//
//	kaleido -app motif -k 4 -dataset mico -print-spec   # emit the JSON spec
//	kaleido -app motif -k 4 -dataset mico -serve        # run it through an
//	        in-process kaleidod HTTP server instead of directly (smoke parity)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"time"

	"kaleido"
	"kaleido/internal/service"
)

func main() {
	app := flag.String("app", "tc", "application: tc | clique | motif | fsm")
	k := flag.Int("k", 3, "embedding size (clique/motif/fsm)")
	support := flag.Uint64("support", 100, "MNI support threshold (fsm)")
	dsName := flag.String("dataset", "", "named dataset (citeseer, mico, patent, youtube)")
	graphPath := flag.String("graph", "", "edge-list file")
	threads := flag.Int("threads", 0, "worker threads (0 = all CPUs)")
	shards := flag.Int("shards", 0, "prefix-range shards run concurrently under one budget (0/1 = unsharded)")
	budget := flag.String("budget", "", "memory budget for intermediate data (e.g. 512MiB); empty = in-memory")
	spill := flag.String("spill", os.TempDir(), "spill directory for hybrid storage")
	predict := flag.Bool("predict", true, "prediction-based load balancing for spilled levels")
	compress := flag.Bool("compress", true, "delta+varint codec for spilled parts")
	compressResident := flag.Bool("compress-resident", true, "compressed-mem residency tier under a memory budget")
	iso := flag.String("iso", "eigen", "isomorphism backend: eigen | bliss | exact")
	minCount := flag.Uint64("min-count", 0, "drop motif/fsm patterns below this count")
	topK := flag.Int("top-k", 0, "keep only the first K patterns after sorting (0 = all)")
	printSpec := flag.Bool("print-spec", false, "print the job as a kaleidod JobSpec (JSON) and exit")
	serve := flag.Bool("serve", false, "run the job through an in-process kaleidod HTTP server (parity check)")
	flag.Parse()

	spec := service.JobSpec{
		App:       *app,
		K:         *k,
		Support:   *support,
		Dataset:   *dsName,
		GraphPath: *graphPath,
		Threads:   *threads,
		Shards:    *shards,
		Budget:    *budget,
		Iso:       *iso,
		MinCount:  *minCount,
		TopK:      *topK,
	}
	if *budget != "" {
		spec.SpillDir = *spill
	}
	// The tri-state spec knobs stay nil (= on) unless the flag turned them
	// off, keeping the emitted JSON minimal.
	off := false
	if !*predict {
		spec.Predict = &off
	}
	if !*compress {
		spec.Compress = &off
	}
	if !*compressResident {
		spec.CompressResident = &off
	}

	if *printSpec {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := spec.Validate(); err != nil {
			fatal(err)
		}
		enc.Encode(&spec)
		return
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	// Ctrl-C cancels the run: workers notice within one block of work, the
	// partial level and its spill files are discarded, and the process exits
	// cleanly instead of leaving scratch data behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	var res *service.JobResult
	var err error
	if *serve {
		res, err = runServed(ctx, &spec)
	} else {
		res, err = runDirect(ctx, &spec)
	}
	if err != nil {
		fatal(err)
	}
	printResult(&spec, res)
	stats := res.Stats
	fmt.Printf("elapsed: %.2fs  peak intermediate: %.1f MB  io: %.1f MB read / %.1f MB written\n",
		time.Since(start).Seconds(),
		float64(stats.PeakBytes)/(1<<20),
		float64(stats.ReadBytes)/(1<<20),
		float64(stats.WriteBytes)/(1<<20))
	if stats.SpilledParts > 0 || stats.CompressedParts > 0 {
		fmt.Printf("residency: %d parts spilled to disk, %d parts compressed in memory\n",
			stats.SpilledParts, stats.CompressedParts)
	}
}

// runDirect executes the spec on a private engine carrying the spec's own
// budget — the classic one-shot CLI path.
func runDirect(ctx context.Context, spec *service.JobSpec) (*service.JobResult, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	g, err := loadGraph(spec)
	if err != nil {
		return nil, err
	}
	eng := &kaleido.Engine{
		MemoryBudget: cfg.MemoryBudget,
		SpillDir:     cfg.SpillDir,
	}
	var stats kaleido.Stats
	return service.Execute(ctx, eng, g, spec, &stats)
}

// runServed executes the spec through an in-process kaleidod HTTP server —
// the same submit/poll/result round trip a daemon client makes, over an
// engine configured like runDirect's. It exists as a smoke-parity check:
// both paths execute the identical JobSpec, so their results must match.
func runServed(ctx context.Context, spec *service.JobSpec) (*service.JobResult, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	eng := &kaleido.Engine{
		MemoryBudget: cfg.MemoryBudget,
		SpillDir:     cfg.SpillDir,
	}
	cache, _ := os.UserCacheDir()
	if cache != "" {
		cache += "/kaleido-datasets"
	}
	srv := service.NewServer(eng, cache, 1)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var job service.Job
	if err := decodeJSON(resp, http.StatusAccepted, &job); err != nil {
		return nil, err
	}
	fmt.Printf("served: job %s submitted\n", job.ID)
	for {
		select {
		case <-ctx.Done():
			http.Post(ts.URL+"/jobs/"+job.ID+"/cancel", "application/json", nil)
			return nil, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
		resp, err := http.Get(ts.URL + "/jobs/" + job.ID)
		if err != nil {
			return nil, err
		}
		if err := decodeJSON(resp, http.StatusOK, &job); err != nil {
			return nil, err
		}
		switch job.State {
		case service.StateDone:
			resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/result")
			if err != nil {
				return nil, err
			}
			var res service.JobResult
			if err := decodeJSON(resp, http.StatusOK, &res); err != nil {
				return nil, err
			}
			return &res, nil
		case service.StateFailed, service.StateCanceled:
			return nil, fmt.Errorf("kaleido: served job %s: %s", job.State, job.Error)
		}
	}
}

func decodeJSON(resp *http.Response, want int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != want {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("kaleido: HTTP %d: %s", resp.StatusCode, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func printResult(spec *service.JobSpec, res *service.JobResult) {
	switch spec.App {
	case "tc":
		fmt.Printf("triangles: %d\n", res.Count)
	case "clique":
		fmt.Printf("%d-cliques: %d\n", spec.K, res.Count)
	case "motif":
		fmt.Printf("%d-motifs: %d shapes\n", spec.K, res.TotalPatterns)
		for _, pc := range res.Patterns {
			fmt.Printf("  %-40s %12d\n", pc.Pattern, pc.Count)
		}
	case "fsm":
		fmt.Printf("%d-FSM (support %d): %d frequent patterns\n", spec.K, spec.Support, res.TotalPatterns)
		for _, pc := range res.Patterns {
			fmt.Printf("  %-40s count=%-10d support>=%d\n", pc.Pattern, pc.Count, spec.Support)
		}
	}
}

func loadGraph(spec *service.JobSpec) (*kaleido.Graph, error) {
	cache, _ := os.UserCacheDir()
	if cache != "" {
		cache += "/kaleido-datasets"
	}
	g, err := spec.LoadGraph(cache)
	if err != nil {
		return nil, err
	}
	fmt.Printf("graph: %d vertices, %d edges, %d labels, avg degree %.1f\n",
		g.N(), g.M(), g.NumLabels(), g.AvgDegree())
	return g, nil
}

func fatal(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "kaleido: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "kaleido:", err)
	os.Exit(1)
}
