// Command kaleidod serves mining jobs over HTTP: a long-lived daemon that
// multiplexes every submitted job through one kaleido.Engine, so N jobs
// share one memory budget under admission control instead of each assuming
// it owns the machine.
//
// Usage:
//
//	kaleidod -addr :8080 -budget 2GiB -spill /tmp/kaleidod
//
// Submit jobs as JSON (the same JobSpec encoding the kaleido CLI prints with
// -print-spec):
//
//	curl -s -X POST localhost:8080/jobs -d '{"app":"motif","k":4,"dataset":"mico"}'
//	curl -s localhost:8080/jobs/j1
//	curl -s localhost:8080/jobs/j1/result
//	curl -s localhost:8080/metrics
//
// SIGTERM (or SIGINT) drains gracefully: submissions are refused, in-flight
// jobs run to completion (up to -drain-timeout, then they are canceled and
// their spill files reclaimed), and the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"kaleido"
	"kaleido/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	budget := flag.String("budget", "", "shared memory budget for intermediate data (e.g. 2GiB); empty = in-memory")
	spill := flag.String("spill", os.TempDir(), "spill directory for hybrid storage")
	threads := flag.Int("threads", 0, "default per-job worker threads (0 = all CPUs)")
	queueLimit := flag.Int("queue-limit", 0, "admission queue bound (0 = default 64)")
	admitWM := flag.Float64("admit-watermark", 0, "fraction of the budget admitted work may plan to fill (0 = default 0.8)")
	cacheDir := flag.String("cache-dir", defaultCacheDir(), "on-disk dataset cache (empty = regenerate per load)")
	cacheGraphs := flag.Int("cache-graphs", 4, "idle graphs kept in the in-memory cache")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long a shutdown waits for in-flight jobs before canceling them")
	flag.Parse()

	eng := &kaleido.Engine{
		SpillDir:       *spill,
		Threads:        *threads,
		QueueLimit:     *queueLimit,
		AdmitWatermark: *admitWM,
	}
	if *budget != "" {
		b, err := service.ParseBytes(*budget)
		if err != nil {
			log.Fatalf("kaleidod: %v", err)
		}
		eng.MemoryBudget = b
	}

	srv := service.NewServer(eng, *cacheDir, *cacheGraphs)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	// SIGTERM/SIGINT: refuse new jobs, let in-flight ones finish (bounded by
	// -drain-timeout, after which they are canceled and unwind cleanly), then
	// close the listener.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Printf("kaleidod: draining (timeout %s)", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(drainCtx); err != nil {
			log.Printf("kaleidod: drain timed out, in-flight jobs canceled")
		}
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		httpSrv.Shutdown(shutCtx)
	}()

	log.Printf("kaleidod: serving on %s (budget %s, spill %s)", *addr, orDash(*budget), *spill)
	err := httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("kaleidod: %v", err)
	}
	<-done
	log.Printf("kaleidod: drained, bye")
}

func defaultCacheDir() string {
	cache, _ := os.UserCacheDir()
	if cache == "" {
		return ""
	}
	return cache + "/kaleido-datasets"
}

func orDash(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
