module kaleido

go 1.21
