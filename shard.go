package kaleido

import (
	"context"
	"fmt"

	"kaleido/internal/apps"
	"kaleido/internal/memtrack"
)

// App identifies one of the built-in mining applications for sharded jobs.
type App int

const (
	// AppTriangles counts triangles (K and Support unused).
	AppTriangles App = iota
	// AppCliques counts K-cliques.
	AppCliques
	// AppMotifs counts K-vertex motifs.
	AppMotifs
	// AppFSM mines frequent subgraphs with K−1 edges at MNI support Support.
	AppFSM
)

// Job describes one mining job for Engine.RunSharded.
type Job struct {
	Graph *Graph
	App   App
	// K is the embedding size of clique/motif/FSM jobs.
	K int
	// Support is the FSM MNI support threshold.
	Support uint64
	// Config tunes the job. Config.Shards is ignored here — the shard count
	// is the RunSharded argument.
	Config Config
}

// Result is the merged output of a sharded run.
type Result struct {
	// Count is the scalar result: triangles or K-cliques counted; for
	// motifs the total embeddings aggregated; for FSM the number of
	// final-level embeddings the fused aggregation visited.
	Count uint64
	// Patterns holds the merged aggregates of motif and FSM jobs, sorted
	// exactly as an unsharded run sorts them.
	Patterns []PatternCount
	// Stats is the merged accounting of all shards (I/O and spill counters
	// sum; PeakBytes is the combined peak of the budget pool the shards
	// shared).
	Stats Stats
}

// RunSharded executes job as shards concurrent prefix-range sub-runs, each
// charging the engine's shared budget through its own arbiter tracker, and
// merges counts, pattern aggregates, and stats at the barrier. The level-1
// unit range (vertex ids, or edge ids for FSM) is split into contiguous
// ranges balanced by degree mass — cheap and tight because built graphs are
// degree-order relabeled — and every canonical embedding is rooted at
// exactly one level-1 unit, so the shards partition the embedding space:
// merged results are identical to an unsharded run's. Job threads are
// divided across the shards. Cancelling ctx cancels every shard.
func (en *Engine) RunSharded(ctx context.Context, job Job, shards int) (*Result, error) {
	job.Config = en.config(job.Config)
	return en.runShardedEngine(ctx, job, shards)
}

// runSharded is the shared sharded-execution core: used by Engine.RunSharded
// and by the Config.Shards dispatch of the one-shot Graph methods (which
// pass a private arbiter so the shards respect the one Config budget).
func runSharded(ctx context.Context, job Job, shards int, arb *memtrack.Arbiter) (*Result, error) {
	cfg := job.Config
	cfg.Shards = 0
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if job.Graph == nil {
		return nil, fmt.Errorf("kaleido: sharded job without a graph")
	}
	if shards < 1 {
		shards = 1
	}
	ctx = ctxOrBackground(ctx)
	g := job.Graph.g

	// Seed ranges balanced by degree mass; FSM shards the edge id range.
	var bounds []int
	if job.App == AppFSM {
		bounds = g.DegreeMassEdgeRanges(shards)
	} else {
		bounds = g.DegreeMassVertexRanges(shards)
	}

	threads := cfg.Threads
	if threads <= 0 {
		threads = defaultWorkerCount()
	}
	perShard := threads / shards
	if perShard < 1 {
		perShard = 1
	}

	opts := make([]apps.Options, shards)
	trackers := make([]*memtrack.Tracker, shards)
	for i := range opts {
		scfg := cfg
		scfg.Threads = perShard
		opt, tracker := scfg.appOptionsWith(arb.NewTracker())
		opt.Seeds = &apps.SeedRange{Lo: uint32(bounds[i]), Hi: uint32(bounds[i+1])}
		opt.Spill = &apps.SpillInfo{}
		opts[i] = opt
		trackers[i] = tracker
	}

	res := &Result{}
	var err error
	switch job.App {
	case AppTriangles:
		res.Count, err = apps.TriangleCountSharded(ctx, g, opts)
	case AppCliques:
		res.Count, err = apps.CliqueCountSharded(ctx, g, job.K, opts)
	case AppMotifs:
		var pats []apps.PatternCount
		pats, err = apps.MotifCountSharded(ctx, g, job.K, opts)
		if err == nil {
			res.Patterns = publicCounts(pats)
			for _, pc := range pats {
				res.Count += pc.Count
			}
		}
	case AppFSM:
		var pats []apps.PatternCount
		pats, res.Count, err = apps.FSMSharded(ctx, g, job.K, job.Support, opts)
		if err == nil {
			res.Patterns = publicCounts(pats)
		}
	default:
		return nil, fmt.Errorf("kaleido: unknown app %d", job.App)
	}
	if err != nil {
		return nil, err
	}
	res.Stats = mergeShardStats(arb, trackers, opts)
	if cfg.Stats != nil {
		*cfg.Stats = res.Stats
	}
	return res, nil
}

// mergeShardStats folds per-shard accounting into one Stats: I/O, retry and
// spill counters sum; PeakBytes is the combined peak of the arbiter pool the
// shards charged (for Engine jobs that pool includes sibling runs).
func mergeShardStats(arb *memtrack.Arbiter, trackers []*memtrack.Tracker, opts []apps.Options) Stats {
	var s Stats
	s.PeakBytes = arb.Peak()
	for _, t := range trackers {
		r, w := t.IOTotals()
		s.ReadBytes += r
		s.WriteBytes += w
		s.IORetries += t.IORetries()
	}
	for _, opt := range opts {
		if opt.Spill == nil {
			continue
		}
		s.SpilledLevels += opt.Spill.SpilledLevels
		s.SpilledParts += opt.Spill.SpilledParts
		s.PromotedParts += opt.Spill.PromotedParts
		s.CompressedParts += opt.Spill.CompressedParts
		s.SpilledBytes += opt.Spill.SpilledBytes
		s.SpilledBytesPhysical += opt.Spill.SpilledBytesPhysical
		s.ResidentBytesLogical += opt.Spill.ResidentBytesLogical
	}
	return s
}
