package kaleido

// Robustness tests of the public surface: the typed spill-error taxonomy,
// the Config.Faults injection seam, retry accounting in Stats, and Engine
// run isolation — a panicking or failing run must not take its siblings (or
// the process) down with it.

import (
	"errors"
	"strings"
	"testing"
)

// TestFaultSpecTransparentRetries: a run under a seeded transient-fault
// schedule returns the identical result to a fault-free run, and surfaces
// the absorbed faults through Stats.IORetries.
func TestFaultSpecTransparentRetries(t *testing.T) {
	g, err := Synthetic(250, 1000, 4, 23)
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.Motifs(bgCtx, 4, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	got, err := g.Motifs(bgCtx, 4, Config{
		Threads: 2, MemoryBudget: 1, SpillDir: t.TempDir(), Stats: &st,
		Faults: &FaultSpec{Seed: 99, ReadErrorP: 0.02, WriteErrorP: 0.02, ShortWriteP: 0.02},
	})
	if err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d motif shapes under faults, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Count != want[i].Count {
			t.Fatalf("count mismatch for %v: %d vs %d", got[i].Pattern, got[i].Count, want[i].Count)
		}
	}
	if st.IORetries == 0 {
		t.Fatal("faults were injected but Stats.IORetries is zero")
	}
	if st.WriteBytes == 0 {
		t.Fatal("budget 1 spilled nothing")
	}
}

// TestTypedSpillErrors: hard faults dispatch through the re-exported
// sentinels with errors.Is.
func TestTypedSpillErrors(t *testing.T) {
	g, err := Synthetic(400, 1600, 4, 29)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Threads: 2, MemoryBudget: 1, SpillDir: t.TempDir()}

	cfg.Faults = &FaultSpec{Seed: 7, BitFlipP: 1}
	if _, err := g.Motifs(bgCtx, 4, cfg); !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("bit-flipped run returned %v, want ErrSpillCorrupt", err)
	}

	cfg.Faults = &FaultSpec{Seed: 7, WriteCapBytes: 256}
	err = func() error { _, err := g.Motifs(bgCtx, 4, cfg); return err }()
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("full-device run returned %v, want ErrNoSpace", err)
	}
	if errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("ENOSPC double-classified as corruption: %v", err)
	}
}

// TestEngineRunPanicIsolation: a panicking run recovers into an error,
// releases its share of the engine's budget, removes its spill directory,
// and leaves a concurrent sibling run fully functional.
func TestEngineRunPanicIsolation(t *testing.T) {
	g, err := Synthetic(400, 1600, 4, 31)
	if err != nil {
		t.Fatal(err)
	}
	spill := t.TempDir()
	eng := &Engine{MemoryBudget: 1 << 16, SpillDir: spill, Threads: 2}

	// Sibling A: expanded once and held open across B's crash.
	a, err := eng.NewMiner(bgCtx, g, VertexInduced, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Expand(bgCtx, nil); err != nil {
		t.Fatal(err)
	}
	wantCount := a.Count()

	// Sibling B: panics from a user callback mid-expansion.
	b, err := eng.NewMiner(bgCtx, g, VertexInduced, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Expand(bgCtx, nil); err != nil {
		t.Fatal(err)
	}
	err = b.ExpandVisit(bgCtx, nil, func(int, []uint32, uint32) error {
		panic("user callback exploded")
	})
	if err == nil {
		t.Fatal("panicking ExpandVisit returned nil")
	}
	if !strings.Contains(err.Error(), "panic") || !strings.Contains(err.Error(), "user callback exploded") {
		t.Fatalf("recovered panic lost its payload: %v", err)
	}

	// B's failure must not have poisoned A: it can still expand and walk.
	if err := b.Close(); err != nil {
		t.Fatalf("closing the panicked run: %v", err)
	}
	if a.Count() != wantCount {
		t.Fatalf("sibling count changed across B's crash: %d, want %d", a.Count(), wantCount)
	}
	if err := a.Expand(bgCtx, nil); err != nil {
		t.Fatalf("sibling expansion after B's crash: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything released: no resident bytes, no files.
	if eng.ResidentBytes() != 0 {
		t.Fatalf("resident bytes leaked: %d", eng.ResidentBytes())
	}
	if files := spillFiles(t, spill); len(files) != 0 {
		t.Fatalf("spill files leaked: %v", files)
	}
}

// TestEngineRunNoSpaceIsolation: one run hitting ENOSPC fails typed while a
// concurrent sibling on the same engine (but a healthy filesystem) finishes
// with the right answer.
func TestEngineRunNoSpaceIsolation(t *testing.T) {
	g, err := Synthetic(400, 1600, 4, 37)
	if err != nil {
		t.Fatal(err)
	}
	want, err := g.Triangles(bgCtx, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	spill := t.TempDir()
	eng := &Engine{MemoryBudget: 1 << 12, SpillDir: spill, Threads: 2}

	type res struct {
		n   uint64
		err error
	}
	healthy := make(chan res, 1)
	doomed := make(chan res, 1)
	go func() {
		n, err := eng.Triangles(bgCtx, g, Config{})
		healthy <- res{n, err}
	}()
	go func() {
		n, err := eng.Triangles(bgCtx, g, Config{Faults: &FaultSpec{Seed: 3, WriteCapBytes: 512}})
		doomed <- res{n, err}
	}()
	h, d := <-healthy, <-doomed
	if h.err != nil || h.n != want {
		t.Fatalf("healthy sibling: %d, %v (want %d)", h.n, h.err, want)
	}
	if !errors.Is(d.err, ErrNoSpace) {
		t.Fatalf("doomed sibling returned %v, want ErrNoSpace", d.err)
	}
	if eng.ResidentBytes() != 0 {
		t.Fatalf("resident bytes leaked: %d", eng.ResidentBytes())
	}
	if files := spillFiles(t, spill); len(files) != 0 {
		t.Fatalf("spill files leaked: %v", files)
	}
}
