// Package kaleido is an out-of-core graph mining system for a single
// machine, reproducing "Kaleido: An Efficient Out-of-core Graph Mining
// System on A Single Machine" (Zhao et al., ICDE 2020).
//
// Kaleido explores the embeddings (subgraph instances) of a labeled input
// graph level by level, storing the intermediate data in a Compressed Sparse
// Embedding (CSE) structure that treats the k-embedding set as a sparse
// k-dimensional tensor. Storage is half-memory-half-disk at part granularity
// (§4.1): every level is built in memory part by part, and when the resident
// bytes cross the spill watermark a budget governor migrates the largest
// in-flight parts to disk mid-build — so a level slightly over budget keeps
// most of itself in RAM and pays disk I/O (with sliding-window prefetch and
// prediction-based load balancing) only for the spilled remainder. Pattern
// aggregation solves
// the graph-isomorphism problem for embeddings of fewer than 9 vertices with
// a characteristic-polynomial hash (Faddeev–LeVerrier over the label-weighted
// adjacency matrix) instead of a canonical-labeling search tree.
//
// Expansion is sink-driven: a mining run's final — and largest — level can
// be consumed at the expansion frontier instead of stored (Miner.ExpandCount
// and Miner.ExpandVisit; §6.5 generalized), so counting and aggregating
// workloads write zero bytes for their terminal level. Four mining
// applications ship ready-made on this pipeline — frequent subgraph mining,
// motif counting, clique discovery and triangle counting — and the Miner
// type exposes the underlying exploration API (the paper's Listing 1) for
// custom workloads.
//
// Every run is cancellable: all blocking entry points take a
// context.Context, workers poll it between blocks of work, and a cancelled
// run returns ctx.Err() promptly — pending spill writes are discarded,
// in-flight ones drain, and Close reclaims every spilled file:
//
//	g, err := kaleido.LoadEdgeListFile("graph.txt")
//	n, err := g.Triangles(ctx, kaleido.Config{})
//	motifs, err := g.Motifs(ctx, 4, kaleido.Config{MemoryBudget: 8 << 30, SpillDir: "/tmp/kaleido"})
//
// Co-located runs multiplex through an Engine, which arbitrates one memory
// budget across all the runs it vends — the spill watermark fires on their
// combined resident bytes, so N concurrent runs together stay under one
// budget instead of each assuming it owns the machine:
//
//	eng := &kaleido.Engine{MemoryBudget: 8 << 30, SpillDir: "/tmp/kaleido"}
//	go func() { motifs, err = eng.Motifs(ctx, g1, 4, kaleido.Config{}) }()
//	go func() { cliques, err2 = eng.Cliques(ctx, g2, 5, kaleido.Config{}) }()
package kaleido

import (
	"context"
	"fmt"
	"io"
	"os"
	"slices"
	"time"

	"kaleido/internal/apps"
	"kaleido/internal/explore"
	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
	"kaleido/internal/storage"
	"kaleido/internal/storage/vfs"
)

// Typed spill-path errors. Any error a mining run returns because of its
// spill I/O wraps exactly one of these, so callers can dispatch with
// errors.Is regardless of the path, block, or retry detail in the message:
//
//   - ErrSpillIO: an I/O operation failed and exhausted its retry budget
//     (transient errors are retried with bounded exponential backoff first).
//   - ErrSpillCorrupt: spilled data failed its CRC32C checksum, was
//     truncated, or carried an unknown block version. Never retried — the
//     error message carries the file and block coordinates.
//   - ErrNoSpace: the spill device ran out of space (ENOSPC). Terminal: the
//     run stops spilling and fails cleanly; sibling runs on the same Engine
//     are unaffected.
var (
	ErrSpillIO      = storage.ErrSpillIO
	ErrSpillCorrupt = storage.ErrSpillCorrupt
	ErrNoSpace      = storage.ErrNoSpace
)

// Config tunes a mining run. The zero value runs fully in memory with one
// thread per CPU and the eigenvalue isomorphism backend.
type Config struct {
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// Shards splits the run into that many contiguous level-1 seed ranges —
	// balanced by degree mass over the relabeled id order — executed as
	// concurrent sub-runs that share this Config's memory budget and merge
	// their results at the barrier (counts sum; motif aggregates merge by
	// isomorphism hash; FSM prunes level-synchronously against globally
	// merged supports, so sharded counts and supports equal unsharded ones
	// exactly — only the representative edge list rendering a pattern class
	// may vary, as in any concurrent run).
	// Threads are divided across the shards, each shard getting at least
	// one worker. 0 or 1 runs unsharded. See also Engine.RunSharded.
	Shards int
	// MemoryBudget caps the resident bytes of intermediate embedding data
	// (§4.1 hybrid storage). Levels are built in memory part by part; when
	// the resident total crosses SpillWatermark·MemoryBudget mid-build, the
	// largest in-flight parts migrate to SpillDir, so a single level can be
	// half in memory and half on disk. 0 keeps everything in memory.
	MemoryBudget int64
	// SpillDir receives spilled CSE level parts. Required when
	// MemoryBudget > 0.
	SpillDir string
	// SpillWatermark is the fraction of MemoryBudget at which mid-build
	// spilling starts (0 = the default 0.9). The headroom above the
	// watermark absorbs allocation growth between spill decisions.
	SpillWatermark float64
	// Predict enables the §4.2 candidate-size prediction for balanced
	// partitioning of spilled levels.
	Predict bool
	// PredictSample caps the prediction cost: at most this many groups per
	// worker chunk pay the exact candidate-union count per child, the rest
	// extrapolate the latest sampled mean (0 = a sensible default, negative
	// = predict every group exactly).
	PredictSample int
	// Compression selects the on-disk encoding of spilled level parts.
	// The default (CompressionAuto) writes spilled parts with a versioned
	// delta+varint block codec — typically 2-4× smaller than raw — while
	// memory-resident parts stay raw; CompressionOff writes raw words.
	Compression Compression
	// ResidentCompression controls the compressed-mem residency tier of
	// budgeted runs. With the default (CompressionAuto) a part under memory
	// pressure is first squeezed into in-memory codec blocks — the same
	// delta+varint encoding the spill files use — and only spills to disk
	// if that is not enough, levels sealed below the top of the walker
	// stack are compacted wholesale, and parts promoted off disk land
	// compressed. The effect is ≥2× more logical level bytes per byte of
	// MemoryBudget. CompressionOff keeps every resident part raw (the
	// pre-tier behavior). Ignored when MemoryBudget is 0.
	ResidentCompression Compression
	// Iso selects the isomorphism backend for pattern aggregation.
	Iso IsoAlgo
	// Stats, when non-nil, receives memory and I/O accounting.
	Stats *Stats
	// Faults, when non-nil, routes the run's spill I/O through a
	// deterministic fault-injecting filesystem — the robustness test
	// harness. Production runs leave it nil.
	Faults *FaultSpec
}

// FaultSpec configures deterministic spill-path fault injection: each
// probability is rolled per I/O operation from a PRNG seeded with Seed, so a
// given (workload, spec) pair replays the identical fault schedule. Injected
// read/write errors are transient (EIO) and exercise the retry path;
// BitFlipP corrupts one bit of a read and exercises the checksum path;
// WriteCapBytes makes the device report ENOSPC after that many bytes.
type FaultSpec struct {
	// Seed fixes the fault schedule (same seed, same faults).
	Seed int64
	// ReadErrorP / WriteErrorP are per-operation probabilities of a
	// transient EIO.
	ReadErrorP, WriteErrorP float64
	// ShortWriteP is the probability a write accepts only a prefix.
	ShortWriteP float64
	// BitFlipP is the probability a successful read comes back with one bit
	// flipped — detected by the block checksums as ErrSpillCorrupt.
	BitFlipP float64
	// LatencyP delays the operation by Latency with this probability.
	LatencyP float64
	Latency  time.Duration
	// WriteCapBytes, when > 0, fails every write past that many cumulative
	// bytes with ENOSPC (a full device).
	WriteCapBytes int64
}

// fs builds the vfs the spec describes (nil spec = nil, the real filesystem).
func (s *FaultSpec) fs() vfs.FS {
	if s == nil {
		return nil
	}
	return vfs.NewFaultFS(nil, vfs.Fault{
		Seed:        s.Seed,
		ReadErrP:    s.ReadErrorP,
		WriteErrP:   s.WriteErrorP,
		ShortWriteP: s.ShortWriteP,
		BitFlipP:    s.BitFlipP,
		LatencyP:    s.LatencyP,
		Latency:     s.Latency,
		WriteCap:    s.WriteCapBytes,
	})
}

// Compression selects the on-disk encoding of spilled CSE level parts.
type Compression int

const (
	// CompressionAuto (the default) compresses spilled parts with the
	// delta+varint block codec; data kept in memory stays raw, so the
	// encoding follows placement.
	CompressionAuto Compression = iota
	// CompressionOff spills raw little-endian words (the pre-codec format).
	CompressionOff
)

// IsoAlgo selects the isomorphism backend.
type IsoAlgo int

const (
	// IsoEigen is the paper's Algorithm 1 (default): characteristic-
	// polynomial hashing, valid for patterns under 9 vertices.
	IsoEigen IsoAlgo = iota
	// IsoBliss is a bliss-like canonical-labeling search tree (the §6.3
	// baseline backend).
	IsoBliss
	// IsoEigenExact is Algorithm 1 with exact big-integer polynomial
	// coefficients (slower; for verification).
	IsoEigenExact
)

// Stats carries instrumentation out of a run.
type Stats struct {
	// PeakBytes is the peak tracked footprint of intermediate structures.
	PeakBytes int64
	// ReadBytes and WriteBytes count hybrid-storage I/O.
	ReadBytes, WriteBytes int64
	// SpilledLevels counts expansions that migrated at least one level part
	// to disk; SpilledParts counts the migrated parts themselves. Under the
	// per-part hybrid storage a level near the budget typically spills only
	// some of its parts, so SpilledParts/SpilledLevels measures how partial
	// the spilling was.
	SpilledLevels, SpilledParts int
	// PromotedParts counts disk parts loaded back into memory after an
	// in-place filter or a pop shrank the resident total under the (shared)
	// budget watermark.
	PromotedParts int
	// CompressedParts counts memory-resident parts squeezed into the
	// compressed-mem tier (by the mid-build governor under pressure and by
	// cold-level compaction). Zero with ResidentCompression off.
	CompressedParts int
	// SpilledBytes is the logical size (raw word bytes) of the spilled
	// parts; SpilledBytesPhysical is what those parts actually occupied on
	// disk. They are equal with CompressionOff; with the default codec the
	// physical count is typically 2-4× smaller.
	SpilledBytes, SpilledBytesPhysical int64
	// ResidentBytesLogical is the raw word footprint the memory-resident
	// level data stood for at run end — exceeds the tracked resident bytes
	// while compressed-mem parts are live; the ratio is the budget stretch
	// the compressed-resident tier bought.
	ResidentBytesLogical int64
	// IORetries counts transient spill I/O errors that were absorbed by the
	// retry/backoff policy instead of failing the run. Nonzero retries with
	// a successful result mean the storage layer rode out real (or injected)
	// faults.
	IORetries int64
	// Levels is the final placement snapshot of the run's live CSE levels
	// (base level first), captured just before the run released them — the
	// per-level residency view that outlives the run, for metrics endpoints
	// and post-mortems. Empty for sharded runs (each shard's levels are
	// private) and for custom Miners (read Miner.LevelStats live instead).
	Levels []LevelStat
}

func (c Config) appOptions() (apps.Options, *memtrack.Tracker) {
	return c.appOptionsWith(memtrack.New())
}

// appOptionsWith builds the internal options around a caller-supplied
// tracker — the child of an Engine's budget arbiter for shared runs.
func (c Config) appOptionsWith(tracker *memtrack.Tracker) (apps.Options, *memtrack.Tracker) {
	opt := apps.Options{
		Threads:             c.Threads,
		MemoryBudget:        c.MemoryBudget,
		SpillDir:            c.SpillDir,
		SpillWatermark:      c.SpillWatermark,
		Predict:             c.Predict,
		PredictSample:       c.PredictSample,
		Compression:         storage.Compression(c.Compression),
		ResidentCompression: storage.Compression(c.ResidentCompression),
		FS:                  c.Faults.fs(),
		Iso:                 apps.IsoAlgo(c.Iso),
		Tracker:             tracker,
	}
	if c.Stats != nil {
		opt.Spill = &apps.SpillInfo{}
	}
	return opt, tracker
}

func (c Config) finish(tracker *memtrack.Tracker, spill *apps.SpillInfo) {
	if c.Stats == nil {
		return
	}
	c.Stats.PeakBytes = tracker.Peak()
	c.Stats.ReadBytes, c.Stats.WriteBytes = tracker.IOTotals()
	c.Stats.IORetries = tracker.IORetries()
	if spill != nil {
		c.Stats.SpilledLevels, c.Stats.SpilledParts = spill.SpilledLevels, spill.SpilledParts
		c.Stats.PromotedParts = spill.PromotedParts
		c.Stats.CompressedParts = spill.CompressedParts
		c.Stats.SpilledBytes, c.Stats.SpilledBytesPhysical = spill.SpilledBytes, spill.SpilledBytesPhysical
		c.Stats.ResidentBytesLogical = spill.ResidentBytesLogical
		c.Stats.Levels = publicLevelStats(spill.Levels)
	}
}

// ctxOrBackground normalizes a nil context so internal layers can poll it
// unconditionally.
func ctxOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Graph is an immutable labeled undirected graph.
//
// Graphs built through this package are degree-order relabeled internally:
// high-degree vertices get dense low internal ids, so the hub bitset rows
// and the marker/merge probes of the mining hot path touch a compact low-id
// prefix of their arrays (fewer cache lines on power-law graphs), and
// prefix-range sharding cuts balanced seed ranges with a first-fit scan.
// The permutation is carried on the graph and every public API accepts and
// returns original (load-time) vertex ids — Label, HasEdge, Neighbors,
// Miner embeddings and filters all translate transparently.
type Graph struct {
	g *graph.Graph
}

// wrapGraph relabels a freshly built internal graph and wraps it. Every
// public constructor funnels through here so the id-translation contract
// holds uniformly.
func wrapGraph(g *graph.Graph) (*Graph, error) {
	rg, err := graph.Relabel(g)
	if err != nil {
		return nil, err
	}
	return &Graph{g: rg}, nil
}

// GraphBuilder accumulates edges and labels.
type GraphBuilder struct {
	b *graph.Builder
}

// NewGraphBuilder starts a graph with n vertices (ids 0..n-1), all labeled 0.
func NewGraphBuilder(n int) *GraphBuilder {
	return &GraphBuilder{b: graph.NewBuilder(n)}
}

// AddEdge records the undirected edge {u, v}; duplicates and self loops are
// dropped.
func (gb *GraphBuilder) AddEdge(u, v uint32) { gb.b.AddEdge(u, v) }

// SetLabel assigns a vertex label.
func (gb *GraphBuilder) SetLabel(v uint32, label uint16) { gb.b.SetLabel(v, label) }

// Build finalizes the graph. Vertex ids keep meaning the builder's ids at
// the API surface; internally the graph is degree-order relabeled.
func (gb *GraphBuilder) Build() (*Graph, error) {
	g, err := gb.b.Build()
	if err != nil {
		return nil, err
	}
	return wrapGraph(g)
}

// LoadEdgeList parses a whitespace-separated edge list ("u v" lines, "#"
// comments, optional "v label=L" lines).
func LoadEdgeList(r io.Reader) (*Graph, error) {
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return wrapGraph(g)
}

// LoadEdgeListFile reads an edge-list file.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEdgeList(f)
}

// N returns the vertex count.
func (g *Graph) N() int { return g.g.N() }

// M returns the undirected edge count.
func (g *Graph) M() int { return g.g.M() }

// NumLabels returns the number of distinct vertex labels.
func (g *Graph) NumLabels() int { return g.g.NumLabels() }

// AvgDegree returns 2M/N.
func (g *Graph) AvgDegree() float64 { return g.g.AvgDegree() }

// Relabeled reports whether the graph's internal ids were degree-order
// relabeled at build time. The public API accepts and returns original ids
// either way; this only signals that translation is happening underneath.
func (g *Graph) Relabeled() bool { return g.g.Relabeled() }

// Label returns the label of vertex v (original id).
func (g *Graph) Label(v uint32) uint16 { return g.g.Label(g.g.NewID(v)) }

// HasEdge reports whether {u, v} is an edge (original ids).
func (g *Graph) HasEdge(u, v uint32) bool { return g.g.HasEdge(g.g.NewID(u), g.g.NewID(v)) }

// Neighbors returns the sorted neighbors of v under original ids. On a
// relabeled graph this is a freshly translated copy; otherwise it aliases
// internal storage and must not be mutated.
func (g *Graph) Neighbors(v uint32) []uint32 {
	nb := g.g.Neighbors(g.g.NewID(v))
	if !g.g.Relabeled() {
		return nb
	}
	out := make([]uint32, len(nb))
	for i, u := range nb {
		out[i] = g.g.OrigID(u)
	}
	slices.Sort(out)
	return out
}

// validate checks a config for early, friendly errors.
func (c Config) validate() error {
	if c.MemoryBudget > 0 && c.SpillDir == "" {
		return fmt.Errorf("kaleido: MemoryBudget set but SpillDir empty")
	}
	if c.Shards < 0 {
		return fmt.Errorf("kaleido: negative Shards %d", c.Shards)
	}
	if c.SpillWatermark < 0 || c.SpillWatermark > 1 {
		return fmt.Errorf("kaleido: SpillWatermark %v outside [0, 1]", c.SpillWatermark)
	}
	if c.Iso < IsoEigen || c.Iso > IsoEigenExact {
		return fmt.Errorf("kaleido: unknown Iso backend %d", c.Iso)
	}
	if c.Compression < CompressionAuto || c.Compression > CompressionOff {
		return fmt.Errorf("kaleido: unknown Compression mode %d", c.Compression)
	}
	if c.ResidentCompression < CompressionAuto || c.ResidentCompression > CompressionOff {
		return fmt.Errorf("kaleido: unknown ResidentCompression mode %d", c.ResidentCompression)
	}
	return nil
}

// modeOf converts the public mode.
func modeOf(m Mode) explore.Mode {
	if m == EdgeInduced {
		return explore.EdgeInduced
	}
	return explore.VertexInduced
}
