// Benchmarks regenerating the paper's tables and figures at go-test scale:
// one benchmark family per artifact of §6, runnable with
//
//	go test -bench=. -benchmem
//
// Each family uses the citeseer-like dataset (full scale) or a small seeded
// synthetic so individual iterations stay sub-second; the full scaled
// experiments live in cmd/kbench (see EXPERIMENTS.md).
package kaleido

import (
	"context"
	"fmt"
	"os"
	"testing"

	"kaleido/internal/apps"
	"kaleido/internal/arabesque"
	"kaleido/internal/dataset"
	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
	"kaleido/internal/rstream"
)

var bgCtx = context.Background()

var benchGraphs = map[string]*graph.Graph{}

func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	if g, ok := benchGraphs[name]; ok {
		return g
	}
	d, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := dataset.Generate(d)
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[name] = g
	return g
}

// BenchmarkTable2 regenerates Table 2 cells: each sub-benchmark is one
// (application, system) pair over the citeseer-like graph.
func BenchmarkTable2(b *testing.B) {
	g := benchGraph(b, "citeseer")
	type cell struct {
		name string
		run  func() error
	}
	cells := []cell{
		{"3FSM300/Kaleido", func() error { _, err := apps.FSM(bgCtx, g, 3, 300, apps.Options{}); return err }},
		{"3FSM300/Arabesque", func() error { _, err := arabesque.FSM(g, 3, 300, arabesque.Options{Threads: 4}); return err }},
		{"3FSM300/RStream", func() error { _, _, err := rstream.FSM(g, 3, 300, rstream.Options{Threads: 4}); return err }},
		{"Motif3/Kaleido", func() error { _, err := apps.MotifCount(bgCtx, g, 3, apps.Options{}); return err }},
		{"Motif3/Arabesque", func() error { _, err := arabesque.MotifCount(g, 3, arabesque.Options{Threads: 4}); return err }},
		{"Motif3/RStream", func() error { _, _, err := rstream.MotifCount(g, 3, rstream.Options{Threads: 4}); return err }},
		{"Clique4/Kaleido", func() error { _, err := apps.CliqueCount(bgCtx, g, 4, apps.Options{}); return err }},
		{"Clique4/Arabesque", func() error { _, err := arabesque.CliqueCount(g, 4, arabesque.Options{Threads: 4}); return err }},
		{"Clique4/RStream", func() error { _, _, err := rstream.CliqueCount(g, 4, rstream.Options{Threads: 4}); return err }},
		{"TC/Kaleido", func() error { _, err := apps.TriangleCount(bgCtx, g, apps.Options{}); return err }},
		{"TC/Arabesque", func() error { _, err := arabesque.TriangleCount(g, arabesque.Options{Threads: 4}); return err }},
		{"TC/RStream", func() error { _, _, err := rstream.TriangleCount(g, rstream.Options{Threads: 4}); return err }},
	}
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := c.run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3 regenerates Table 3: tracked peak memory per system,
// reported as the peak-MB custom metric.
func BenchmarkTable3(b *testing.B) {
	g := benchGraph(b, "citeseer")
	run := func(b *testing.B, fn func(tr *memtrack.Tracker) error) {
		var peak int64
		for i := 0; i < b.N; i++ {
			tr := memtrack.New()
			if err := fn(tr); err != nil {
				b.Fatal(err)
			}
			peak = tr.Peak()
		}
		b.ReportMetric(float64(peak)/(1<<20), "peak-MB")
	}
	b.Run("Motif3/Kaleido", func(b *testing.B) {
		run(b, func(tr *memtrack.Tracker) error {
			_, err := apps.MotifCount(bgCtx, g, 3, apps.Options{Tracker: tr})
			return err
		})
	})
	b.Run("Motif3/Arabesque", func(b *testing.B) {
		run(b, func(tr *memtrack.Tracker) error {
			_, err := arabesque.MotifCount(g, 3, arabesque.Options{Threads: 4, Tracker: tr})
			return err
		})
	})
	b.Run("Motif3/RStream", func(b *testing.B) {
		run(b, func(tr *memtrack.Tracker) error {
			_, _, err := rstream.MotifCount(g, 3, rstream.Options{Threads: 4, Tracker: tr})
			return err
		})
	})
}

// BenchmarkFig11FSMSupportSweep regenerates Fig. 11's support axis: 3-FSM
// run time across supports (non-monotonic by design, §6.2).
func BenchmarkFig11FSMSupportSweep(b *testing.B) {
	g := benchGraph(b, "mico")
	for _, support := range []uint64{10, 100, 1000, 10000} {
		b.Run(fmt.Sprintf("support=%d", support), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apps.FSM(bgCtx, g, 3, support, apps.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12Iso regenerates Fig. 12: the eigenvalue hash vs the
// bliss-like canonical labeler inside whole applications.
func BenchmarkFig12Iso(b *testing.B) {
	g := benchGraph(b, "citeseer")
	for _, algo := range []struct {
		name string
		iso  apps.IsoAlgo
	}{{"Eigen", apps.IsoEigen}, {"Bliss", apps.IsoBliss}, {"EigenExact", apps.IsoEigenExact}} {
		b.Run("4-Motif/"+algo.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apps.MotifCount(bgCtx, g, 4, apps.Options{Iso: algo.iso}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("4-FSM/"+algo.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apps.FSM(bgCtx, g, 4, 10, apps.Options{Iso: algo.iso}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13Labels regenerates Fig. 13: FSM sensitivity to the label
// count (7 coarse vs 37 fine labels) per isomorphism backend.
func BenchmarkFig13Labels(b *testing.B) {
	g37 := benchGraph(b, "patent")
	g7, err := dataset.CoarsenPatentLabels(g37)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name string
		g    *graph.Graph
	}{{"PA-7", g7}, {"PA-37", g37}} {
		for _, algo := range []struct {
			name string
			iso  apps.IsoAlgo
		}{{"Eigen", apps.IsoEigen}, {"Bliss", apps.IsoBliss}} {
			b.Run(v.name+"/"+algo.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := apps.FSM(bgCtx, v.g, 3, 300, apps.Options{Iso: algo.iso}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig14Scalability regenerates Fig. 14: thread scaling of the three
// application classes.
func BenchmarkFig14Scalability(b *testing.B) {
	g := benchGraph(b, "patent")
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("3-Motif/threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apps.MotifCount(bgCtx, g, 3, apps.Options{Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("3-FSM-5000/threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apps.FSM(bgCtx, g, 3, 5000, apps.Options{Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("5-Clique/threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apps.CliqueCount(bgCtx, g, 5, apps.Options{Threads: threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4Hybrid regenerates Table 4: in-memory vs hybrid storage on
// the same workload.
func BenchmarkTable4Hybrid(b *testing.B) {
	g := benchGraph(b, "mico")
	b.Run("4-Motif/InMemory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apps.MotifCount(bgCtx, g, 4, apps.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("4-Motif/Hybrid", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			if _, err := apps.MotifCount(bgCtx, g, 4, apps.Options{
				MemoryBudget: 1, SpillDir: dir, Predict: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig16MemoryBudget regenerates Fig. 15/16: run time and I/O as the
// memory budget shrinks.
func BenchmarkFig16MemoryBudget(b *testing.B) {
	g := benchGraph(b, "mico")
	for _, budgetMB := range []int64{1, 4, 16} {
		b.Run(fmt.Sprintf("budget=%dMB", budgetMB), func(b *testing.B) {
			dir := b.TempDir()
			var read, written int64
			for i := 0; i < b.N; i++ {
				tr := memtrack.New()
				if _, err := apps.MotifCount(bgCtx, g, 4, apps.Options{
					MemoryBudget: budgetMB << 20, SpillDir: dir, Predict: true, Tracker: tr,
				}); err != nil {
					b.Fatal(err)
				}
				read, written = tr.IOTotals()
			}
			b.ReportMetric(float64(read)/(1<<20), "read-MB")
			b.ReportMetric(float64(written)/(1<<20), "write-MB")
		})
	}
}

// BenchmarkFig17Prediction regenerates Fig. 17: hybrid-storage exploration
// with and without the §4.2 candidate-size prediction.
func BenchmarkFig17Prediction(b *testing.B) {
	g := benchGraph(b, "mico")
	for _, predict := range []bool{true, false} {
		name := "NoPrediction"
		if predict {
			name = "Prediction"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				if _, err := apps.MotifCount(bgCtx, g, 4, apps.Options{
					MemoryBudget: 1, SpillDir: dir, Predict: predict,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
