package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"kaleido/internal/cse"
	"kaleido/internal/memtrack"
	"kaleido/internal/storage/vfs"
)

// HybridLevel is one CSE level whose parts are individually memory- or
// disk-resident — the genuinely half-memory-half-disk storage of §4.1.
// Placement is per part, decided during the build by the budget governor
// (see HybridLevelBuilder): a level slightly over budget keeps most parts in
// RAM and pays disk I/O only for the migrated remainder, instead of the
// all-or-nothing cliff of routing the whole level to a DiskLevel.
//
// All LevelData operations dispatch per part: memory parts hand out
// zero-copy slices (exactly like MemLevel), disk parts decode whole prefetch
// blocks (exactly like DiskLevel), and cursors stream transparently across
// the mem→disk seams.
type HybridLevel struct {
	parts       []hybridPart
	totalVerts  int
	totalGroups int
	pred        []cse.PredSeg
	blockSize   int
	tracker     *memtrack.Tracker
	fs          vfs.FS
	comp        bool // encoding of disk parts, incl. future rewrites
	rcomp       bool // keep resident parts compressed (promote lands compressed-mem, rewrites re-encode)
	closed      bool
}

var _ cse.LevelData = (*HybridLevel)(nil)

// hybridPart is one part of a hybrid level in one of three residency states:
// raw memory (verts+bounds populated), compressed memory (cverts/ccnts hold
// encoded codec blocks, comp indexes them — see resident.go), or disk
// (vf/cf+chunkCum populated). The state ladder under pressure is raw-mem →
// compressed-mem → disk, and the reverse on recovery.
type hybridPart struct {
	// Raw memory residency.
	verts  []uint32
	bounds []uint64 // global end boundary of each local group; len = numGroups

	// Compressed memory residency: the same codec blocks a compressed spill
	// file holds, resident. comp's offsets index into these slices.
	cverts []byte
	ccnts  []byte

	// Disk residency.
	vf, cf   vfs.File
	chunkCum []uint64  // chunkCum[j] = children in local groups [0, j·CntChunk); also kept compressed-mem
	comp     *partComp // compressed-block directory, nil for raw representations

	numVerts  int
	numGroups int
	vertBase  int
	groupBase int
}

func (p *hybridPart) onDisk() bool { return p.vf != nil }

// Len implements cse.LevelData.
func (h *HybridLevel) Len() int { return h.totalVerts }

// Groups implements cse.LevelData.
func (h *HybridLevel) Groups() int { return h.totalGroups }

// Predicted implements cse.LevelData.
func (h *HybridLevel) Predicted() []cse.PredSeg { return h.pred }

// Bytes reports the resident footprint: the full arrays of raw memory parts,
// the encoded blocks plus directory of compressed-mem parts, and the sparse
// indexes of disk parts.
func (h *HybridLevel) Bytes() int64 {
	var b int64
	for i := range h.parts {
		b += h.parts[i].residentBytes()
	}
	return b + int64(len(h.pred))*16
}

// DiskBytes reports the logical on-disk footprint of the migrated parts:
// their raw word size, regardless of encoding.
func (h *HybridLevel) DiskBytes() int64 {
	var b int64
	for i := range h.parts {
		p := &h.parts[i]
		if p.onDisk() {
			b += int64(p.numVerts)*4 + int64(p.numGroups)*4
		}
	}
	return b
}

// diskBytesPhysical is the bytes part p actually occupies on disk.
func (p *hybridPart) diskBytesPhysical() int64 {
	if p.comp != nil {
		return p.comp.physVerts + p.comp.physCnts
	}
	return int64(p.numVerts)*4 + int64(p.numGroups)*4
}

// DiskBytesPhysical reports the bytes the migrated parts actually occupy on
// disk — equal to DiskBytes for raw parts, smaller for compressed ones.
func (h *HybridLevel) DiskBytesPhysical() int64 {
	var b int64
	for i := range h.parts {
		p := &h.parts[i]
		if p.onDisk() {
			b += p.diskBytesPhysical()
		}
	}
	return b
}

// MemParts counts the memory-resident parts holding data (empty parts carry
// no placement information and are not counted). Compressed-mem parts are
// memory residents and count here too; CompressedParts reports the subset.
func (h *HybridLevel) MemParts() int {
	n := 0
	for i := range h.parts {
		p := &h.parts[i]
		if !p.onDisk() && (p.numVerts > 0 || p.numGroups > 0) {
			n++
		}
	}
	return n
}

// DiskParts counts the disk-resident parts.
func (h *HybridLevel) DiskParts() int {
	n := 0
	for i := range h.parts {
		if h.parts[i].onDisk() {
			n++
		}
	}
	return n
}

// Close removes the backing files of the disk-resident parts; memory parts
// return their buffers to the part pool, so the next level build reuses
// them instead of growing fresh arrays.
func (h *HybridLevel) Close() error {
	if h.closed {
		return nil
	}
	h.closed = true
	fs := vfs.OrOS(h.fs)
	var first error
	for i := range h.parts {
		p := &h.parts[i]
		if !p.onDisk() {
			poolPutU32(p.verts)
			poolPutU64(p.bounds)
			p.verts, p.bounds = nil, nil
			p.cverts, p.ccnts, p.comp = nil, nil, nil
			continue
		}
		for _, f := range []vfs.File{p.vf, p.cf} {
			name := f.Name()
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			if err := fs.Remove(name); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// NumParts returns the part count of the level, including empty parts.
func (h *HybridLevel) NumParts() int { return len(h.parts) }

// PartGroups returns the global group range [lo, hi) of part i. Part
// boundaries are group-aligned, which is what lets an in-place filter pass
// treat every part as an independent chunk.
func (h *HybridLevel) PartGroups(i int) (lo, hi int) {
	p := &h.parts[i]
	return p.groupBase, p.groupBase + p.numGroups
}

// partIndexForVert returns the index of the part containing global vert i.
func (h *HybridLevel) partIndexForVert(i int) int {
	return sort.Search(len(h.parts), func(x int) bool { return h.parts[x].vertBase > i }) - 1
}

// partIndexForGroup returns the index of the part containing global group g.
func (h *HybridLevel) partIndexForGroup(g int) int {
	return sort.Search(len(h.parts), func(x int) bool { return h.parts[x].groupBase > g }) - 1
}

// UnitAt implements cse.LevelData: a slice index for raw memory parts, one
// resident block decode for compressed-mem parts, one bounded pread for disk
// parts.
func (h *HybridLevel) UnitAt(i int) (uint32, error) {
	if i < 0 || i >= h.totalVerts {
		return 0, fmt.Errorf("storage: unit %d out of range %d", i, h.totalVerts)
	}
	p := &h.parts[h.partIndexForVert(i)]
	li := i - p.vertBase
	if p.compressed() {
		return p.residentUnit(li)
	}
	if !p.onDisk() {
		return p.verts[li], nil
	}
	return readPartUnit(p.vf, p.comp, li, h.tracker)
}

// ParentOf implements cse.LevelData: binary search over the resident bounds
// for raw memory parts, sparse index plus one bounded cnt decode (resident
// blocks or a disk read) for the other residencies.
func (h *HybridLevel) ParentOf(i int) (int, error) {
	if i < 0 || i >= h.totalVerts {
		return 0, fmt.Errorf("storage: parent of %d out of range %d", i, h.totalVerts)
	}
	p := &h.parts[h.partIndexForVert(i)]
	if !p.onDisk() && !p.compressed() {
		// First local group whose end boundary exceeds i.
		j := sort.Search(len(p.bounds), func(x int) bool { return p.bounds[x] > uint64(i) })
		return p.groupBase + j, nil
	}
	li := uint64(i - p.vertBase)
	j := sort.Search(len(p.chunkCum), func(x int) bool { return p.chunkCum[x] > li }) - 1
	lo := j * CntChunk
	hi := lo + CntChunk
	if hi > p.numGroups {
		hi = p.numGroups
	}
	sc := cntPool.Get().(*cntScratch)
	defer cntPool.Put(sc)
	cnts, err := p.partCnts(lo, hi, h.tracker, sc)
	if err != nil {
		return 0, err
	}
	cum := p.chunkCum[j]
	for idx, c := range cnts {
		if li < cum+uint64(c) {
			return p.groupBase + lo + idx, nil
		}
		cum += uint64(c)
	}
	return p.groupBase + hi - 1, nil
}

// offAtLocal returns the global offs value at local group lg of a disk or
// compressed-mem part (the global vert index where lg's children start).
func (p *hybridPart) offAtLocal(lg int, tracker *memtrack.Tracker) (uint64, error) {
	j := lg / CntChunk
	cum := p.chunkCum[j]
	if lg > j*CntChunk {
		sc := cntPool.Get().(*cntScratch)
		defer cntPool.Put(sc)
		cnts, err := p.partCnts(j*CntChunk, lg, tracker, sc)
		if err != nil {
			return 0, err
		}
		for _, c := range cnts {
			cum += uint64(c)
		}
	}
	return uint64(p.vertBase) + cum, nil
}

// GroupStart implements cse.LevelData.
func (h *HybridLevel) GroupStart(g int) (uint64, error) {
	if g < 0 || g > h.totalGroups {
		return 0, fmt.Errorf("storage: group %d out of range %d", g, h.totalGroups)
	}
	if g == h.totalGroups {
		return uint64(h.totalVerts), nil
	}
	p := &h.parts[h.partIndexForGroup(g)]
	lg := g - p.groupBase
	if !p.onDisk() && !p.compressed() {
		if lg == 0 {
			return uint64(p.vertBase), nil
		}
		return p.bounds[lg-1], nil
	}
	return p.offAtLocal(lg, h.tracker)
}

// VertBlocks implements cse.LevelData: memory parts contribute zero-copy
// sub-slices, disk parts whole-prefetch-block decodes, stitched across part
// seams in one stream.
func (h *HybridLevel) VertBlocks(lo, hi int) cse.VertBlockCursor {
	if lo >= hi {
		return &hybridVertBlocks{}
	}
	return &hybridVertBlocks{h: h, next: lo, end: hi, pi: h.partIndexForVert(lo)}
}

// BoundBlocks implements cse.LevelData: the block stream of global group end
// boundaries from parent index first, across mem and disk parts.
func (h *HybridLevel) BoundBlocks(first int) cse.BoundBlockCursor {
	if first >= h.totalGroups {
		return &hybridBoundBlocks{}
	}
	pi := h.partIndexForGroup(first)
	return &hybridBoundBlocks{h: h, g: first, pi: pi, active: true}
}

// VertCursor implements cse.LevelData as a unit view of VertBlocks.
func (h *HybridLevel) VertCursor(lo, hi int) cse.VertCursor {
	return cse.VertCursorOverBlocks(h.VertBlocks(lo, hi))
}

// BoundCursor implements cse.LevelData as a unit view of BoundBlocks.
func (h *HybridLevel) BoundCursor(first int) cse.BoundCursor {
	return cse.BoundCursorOverBlocks(h.BoundBlocks(first))
}

type hybridVertBlocks struct {
	h         *HybridLevel
	next, end int
	pi        int
	dv        cse.VertBlockCursor // active disk sub-cursor, nil otherwise
	err       error
}

func (c *hybridVertBlocks) NextBlock() ([]uint32, bool) {
	if c.err != nil || c.h == nil {
		return nil, false
	}
	for {
		if c.dv != nil {
			blk, ok := c.dv.NextBlock()
			if ok {
				c.next += len(blk)
				return blk, true
			}
			if err := c.dv.Err(); err != nil {
				c.err = err
				return nil, false
			}
			c.dv.Close()
			c.dv = nil
			c.pi++
		}
		if c.next >= c.end || c.pi >= len(c.h.parts) {
			return nil, false
		}
		p := &c.h.parts[c.pi]
		pEnd := p.vertBase + p.numVerts
		if c.next >= pEnd {
			c.pi++
			continue
		}
		take := min(c.end, pEnd) - c.next
		from := c.next - p.vertBase
		if p.compressed() {
			b0 := from / codecBlockVals
			b1 := (from + take - 1) / codecBlockVals
			off := p.comp.vOffs[b0]
			c.dv = &memCompVertBlocks{
				buf:       p.cverts[off:p.comp.vertEnd(b1)],
				skip:      from - b0*codecBlockVals,
				remaining: take,
				blk:       b0,
			}
			continue
		}
		if !p.onDisk() {
			blk := p.verts[from : from+take]
			c.next += take
			c.pi++
			return blk, true
		}
		if p.comp != nil {
			b0 := from / codecBlockVals
			b1 := (from + take - 1) / codecBlockVals
			off := p.comp.vOffs[b0]
			span := fileSpan{f: p.vf, off: off, n: p.comp.vertEnd(b1) - off}
			c.dv = &compVertBlocks{
				bs:        newBlockStream([]fileSpan{span}, c.h.blockSize, c.h.tracker),
				skip:      from - b0*codecBlockVals,
				remaining: take,
				path:      p.vf.Name(),
			}
		} else {
			span := fileSpan{f: p.vf, off: int64(4 * from), n: int64(4 * take)}
			c.dv = &diskVertBlocks{
				bs:        newBlockStream([]fileSpan{span}, c.h.blockSize, c.h.tracker),
				remaining: take,
			}
		}
	}
}

func (c *hybridVertBlocks) Err() error {
	if c.err != nil {
		return c.err
	}
	if c.dv != nil {
		return c.dv.Err()
	}
	return nil
}

func (c *hybridVertBlocks) Close() error {
	if c.dv != nil {
		return c.dv.Close()
	}
	return nil
}

type hybridBoundBlocks struct {
	h      *HybridLevel
	g      int // next global group whose end boundary to deliver
	pi     int
	active bool
	dv     cse.BoundBlockCursor
	err    error
}

func (c *hybridBoundBlocks) NextBlock() ([]uint64, bool) {
	if c.err != nil || !c.active {
		return nil, false
	}
	for {
		if c.dv != nil {
			blk, ok := c.dv.NextBlock()
			if ok {
				c.g += len(blk)
				return blk, true
			}
			if err := c.dv.Err(); err != nil {
				c.err = err
				return nil, false
			}
			c.dv.Close()
			c.dv = nil
			c.pi++
		}
		if c.pi >= len(c.h.parts) {
			return nil, false
		}
		p := &c.h.parts[c.pi]
		lf := c.g - p.groupBase
		if lf >= p.numGroups {
			c.pi++
			continue
		}
		if !p.onDisk() && !p.compressed() {
			blk := p.bounds[lf:]
			c.g += len(blk)
			c.pi++
			return blk, true
		}
		base, err := p.offAtLocal(lf, c.h.tracker)
		if err != nil {
			c.err = err
			return nil, false
		}
		if p.compressed() {
			b0 := lf / codecBlockVals
			c.dv = &memCompBoundBlocks{
				buf:       p.ccnts[p.comp.cOffs[b0]:],
				skip:      lf - b0*codecBlockVals,
				remaining: p.numGroups - lf,
				cum:       base,
				blk:       b0,
			}
			continue
		}
		if p.comp != nil {
			b0 := lf / codecBlockVals
			off := p.comp.cOffs[b0]
			span := fileSpan{f: p.cf, off: off, n: p.comp.physCnts - off}
			c.dv = &compBoundBlocks{
				bs:        newBlockStream([]fileSpan{span}, c.h.blockSize, c.h.tracker),
				skip:      lf - b0*codecBlockVals,
				remaining: p.numGroups - lf,
				cum:       base,
				path:      p.cf.Name(),
			}
		} else {
			span := fileSpan{f: p.cf, off: int64(4 * lf), n: int64(4 * (p.numGroups - lf))}
			c.dv = &diskBoundBlocks{
				bs:  newBlockStream([]fileSpan{span}, c.h.blockSize, c.h.tracker),
				cum: base,
			}
		}
	}
}

func (c *hybridBoundBlocks) Err() error {
	if c.err != nil {
		return c.err
	}
	if c.dv != nil {
		return c.dv.Err()
	}
	return nil
}

func (c *hybridBoundBlocks) Close() error {
	if c.dv != nil {
		return c.dv.Close()
	}
	return nil
}

// PartRewriter rewrites one part of a hybrid level during an in-place
// filter pass (explore.FilterTop's keep sink). Group structure is preserved
// — the rewritten part keeps its group count, only the kept units are
// written back. A memory-resident part is compacted in place: writer and
// the pass's sequential reader share the part's arrays on one goroutine,
// with writes strictly trailing reads, and each bounds slot the reader has
// passed temporarily holds that group's kept count until FinishRewrite
// turns the counts back into global boundaries. A disk-resident part is
// restreamed through the write queue into fresh files that replace the old
// ones at FinishRewrite — no resident copy of the part is ever made.
type PartRewriter struct {
	p *hybridPart

	// Memory compaction.
	w      int // write index into p.verts
	g      int // local group index
	cnt    uint32
	recomp bool // part was compressed-mem; FinishRewrite re-encodes it

	// Disk restream.
	dw  *diskPartWriter
	buf []uint32 // current group's kept units
}

// openFilePair creates (truncating) a part's vert/cnt file pair, removing
// the vert file again if the cnt open fails. Cleanup failures on that path
// are joined onto the create error instead of being swallowed.
func openFilePair(fs vfs.FS, vname, cname string) (vf, cf vfs.File, err error) {
	fs = vfs.OrOS(fs)
	vf, err = fs.Create(vname)
	if err != nil {
		return nil, nil, wrapIO("create", vname, err)
	}
	cf, err = fs.Create(cname)
	if err != nil {
		err = wrapIO("create", cname, err)
		if cerr := vf.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		if rerr := fs.Remove(vname); rerr != nil {
			err = errors.Join(err, rerr)
		}
		return nil, nil, err
	}
	return vf, cf, nil
}

// verifyPartFiles checks that a part's vert/cnt files hold exactly the
// written bytes — raw word counts, or the physical sizes the compressed
// writer recorded — the corruption check both level assembly and the
// in-place rewrite run before installing files.
func verifyPartFiles(vf, cf vfs.File, numVerts, numGroups int, comp *partComp) error {
	wantV, wantC := int64(4*numVerts), int64(4*numGroups)
	if comp != nil {
		wantV, wantC = comp.physVerts, comp.physCnts
	}
	for _, chk := range []struct {
		f    vfs.File
		want int64
	}{{vf, wantV}, {cf, wantC}} {
		size, err := chk.f.Size()
		if err != nil {
			return wrapIO("stat", chk.f.Name(), err)
		}
		if size != chk.want {
			return corruptAt(chk.f.Name(), 0, fmt.Errorf("file has %d bytes, want %d", size, chk.want))
		}
	}
	return nil
}

// RewritePart starts a rewrite of part i. q is used only when the part is
// disk-resident.
func (h *HybridLevel) RewritePart(i int, q *WriteQueue) (*PartRewriter, error) {
	p := &h.parts[i]
	r := &PartRewriter{p: p}
	if p.compressed() {
		// Decompress for the in-place pass (a transient raw copy of one
		// part); FinishRewrite re-encodes the compacted result.
		if err := h.decompressPart(i); err != nil {
			return nil, err
		}
		r.recomp = true
		return r, nil
	}
	if !p.onDisk() {
		return r, nil
	}
	vf, cf, err := openFilePair(h.fs, p.vf.Name()+".r", p.cf.Name()+".r")
	if err != nil {
		return nil, err
	}
	dw := newDiskPartWriter(q, vf, cf, newPartCompBool(h.comp))
	r.dw = &dw
	r.buf = poolGetU32()
	return r, nil
}

// newPartCompBool is newPartComp for callers holding a resolved on/off flag.
func newPartCompBool(on bool) *partComp {
	if !on {
		return nil
	}
	return &partComp{}
}

// Keep records u as kept in the current group.
func (r *PartRewriter) Keep(u uint32) {
	if r.dw != nil {
		r.buf = append(r.buf, u)
		return
	}
	r.p.verts[r.w] = u
	r.w++
	r.cnt++
}

// GroupDone closes the current group.
func (r *PartRewriter) GroupDone() error {
	if r.dw != nil {
		err := r.dw.AppendGroup(r.buf, nil)
		r.buf = r.buf[:0]
		return err
	}
	r.p.bounds[r.g] = uint64(r.cnt) // local count; FinishRewrite rebases
	r.g++
	r.cnt = 0
	return nil
}

// Flush completes the part's rewrite stream.
func (r *PartRewriter) Flush() error {
	if r.dw != nil {
		return r.dw.Flush()
	}
	return nil
}

// FinishRewrite completes an in-place filter pass: it drains the write
// queue for restreamed disk parts, verifies and swaps their fresh files in
// (removing the old ones), turns the memory parts' recorded per-group kept
// counts back into global boundaries, and rebases every part. Group counts
// are unchanged; the level shrinks to the kept units and drops its
// prediction segments. On error the level is left in an unspecified state
// and must be Closed.
func (h *HybridLevel) FinishRewrite(rws []*PartRewriter, q *WriteQueue) error {
	anyDisk := false
	for _, r := range rws {
		if r.dw != nil {
			anyDisk = true
		}
	}
	if anyDisk {
		if err := q.Barrier(); err != nil {
			return errors.Join(err, h.AbortRewrite(rws))
		}
	}
	fs := vfs.OrOS(h.fs)
	var swapErr error
	total := 0
	for i := range h.parts {
		p := &h.parts[i]
		r := rws[i]
		p.vertBase = total
		if r.dw != nil {
			if err := verifyPartFiles(r.dw.vf, r.dw.cf, r.dw.numVerts, r.dw.numGroups, r.dw.comp); err != nil {
				return errors.Join(err, h.AbortRewrite(rws[i:]))
			}
			if r.dw.numGroups != p.numGroups {
				err := fmt.Errorf("storage: rewrite of %s closed %d groups, want %d", r.dw.vf.Name(), r.dw.numGroups, p.numGroups)
				return errors.Join(err, h.AbortRewrite(rws[i:]))
			}
			if h.tracker != nil {
				h.tracker.SpillIO(int64(4*(r.dw.numVerts+r.dw.numGroups)), r.dw.physBytes())
			}
			// Swap the fresh files in; old-file cleanup failures are collected
			// and surfaced after the swap completes (the rewrite itself
			// succeeded — the level state below is still installed).
			for _, f := range []vfs.File{p.vf, p.cf} {
				name := f.Name()
				if err := f.Close(); err != nil && swapErr == nil {
					swapErr = err
				}
				if err := fs.Remove(name); err != nil && swapErr == nil {
					swapErr = err
				}
			}
			p.vf, p.cf, p.chunkCum, p.comp = r.dw.vf, r.dw.cf, r.dw.chunkCum, r.dw.comp
			p.numVerts = r.dw.numVerts
			poolPutU32(r.buf)
			r.buf, r.dw = nil, nil
		} else {
			p.verts = p.verts[:r.w]
			p.numVerts = r.w
			cum := uint64(total)
			for g := 0; g < p.numGroups; g++ {
				cum += p.bounds[g]
				p.bounds[g] = cum
			}
			if r.recomp {
				// The part entered the pass compressed-mem; re-encode the
				// compacted result so the level keeps its squeezed footprint.
				h.CompressPart(i)
			}
		}
		total += p.numVerts
	}
	h.totalVerts = total
	h.pred = nil
	return swapErr
}

// promoteCost returns the extra resident bytes fully decoding the part costs,
// net of whatever it currently holds: the raw arrays minus the sparse index,
// block directory and (for compressed-mem parts) the encoded blocks it frees.
func (p *hybridPart) promoteCost() int64 {
	freed := int64(len(p.chunkCum))*8 + p.comp.dirBytes() + int64(len(p.cverts)+len(p.ccnts))
	return p.logicalBytes() - freed
}

// PromotePart materializes part i as raw arrays in memory: a compressed-mem
// part is decoded in place; a disk part's vert file is read into a pooled
// array, its cnt file decoded into global group bounds, and the backing
// files removed. Bases must already be final (promotion happens between
// operations, e.g. after FinishRewrite), since the rebuilt bounds are
// global. On a read error the part is left where it was, untouched.
func (h *HybridLevel) PromotePart(i int) error {
	p := &h.parts[i]
	if p.compressed() {
		return h.decompressPart(i)
	}
	if !p.onDisk() {
		return nil
	}
	verts := poolGetU32()
	if cap(verts) < p.numVerts {
		verts = make([]uint32, p.numVerts)
	}
	verts = verts[:p.numVerts]
	cnts := poolGetU32()
	if cap(cnts) < p.numGroups {
		cnts = make([]uint32, p.numGroups)
	}
	cnts = cnts[:p.numGroups]
	fail := func(f vfs.File, err error) error {
		poolPutU32(verts)
		poolPutU32(cnts)
		return fmt.Errorf("storage: promote read of %s: %w", f.Name(), err)
	}
	if p.comp != nil {
		if err := readCompFile(p.vf, p.comp.physVerts, true, verts); err != nil {
			return fail(p.vf, err)
		}
		if err := readCompFile(p.cf, p.comp.physCnts, false, cnts); err != nil {
			return fail(p.cf, err)
		}
		if h.tracker != nil {
			h.tracker.ReadIO(p.comp.physVerts + p.comp.physCnts)
		}
	} else {
		vbuf := make([]byte, 4*p.numVerts)
		if p.numVerts > 0 {
			if err := retryReadAt(p.vf, vbuf, 0, nil, h.tracker); err != nil {
				return fail(p.vf, err)
			}
		}
		for j := range verts {
			verts[j] = binary.LittleEndian.Uint32(vbuf[4*j:])
		}
		cbuf := make([]byte, 4*p.numGroups)
		if p.numGroups > 0 {
			if err := retryReadAt(p.cf, cbuf, 0, nil, h.tracker); err != nil {
				return fail(p.cf, err)
			}
		}
		for j := range cnts {
			cnts[j] = binary.LittleEndian.Uint32(cbuf[4*j:])
		}
		if h.tracker != nil {
			h.tracker.ReadIO(int64(len(vbuf) + len(cbuf)))
		}
	}
	bounds := poolGetU64(p.numGroups)
	off := uint64(p.vertBase)
	for j, c := range cnts {
		off += uint64(c)
		bounds[j] = off
	}
	poolPutU32(cnts)
	fs := vfs.OrOS(h.fs)
	var first error
	for _, f := range []vfs.File{p.vf, p.cf} {
		name := f.Name()
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		if err := fs.Remove(name); err != nil && first == nil {
			first = err
		}
	}
	p.vf, p.cf, p.chunkCum, p.comp = nil, nil, nil, nil
	p.verts, p.bounds = verts, bounds
	return first
}

// Promote climbs the recovery ladder while headroom allows, and returns how
// many part transitions it made. This is the recovery path after an in-place
// filter or a PopTop left the (shared) budget with headroom: parts demoted
// under build-time pressure may now fit again.
//
// Phase one takes parts off disk, smallest physical read first — into
// compressed-mem when the level keeps compressed residents and the part is
// encoded (a verbatim byte load, densest use of headroom), to raw arrays
// otherwise. Phase two spends any remaining headroom decompressing
// compressed-mem parts back to raw zero-copy arrays, smallest decode first.
func (h *HybridLevel) Promote(headroom int64) (int, error) {
	promoted := 0
	for {
		best, bestCost, bestPhys := -1, int64(0), int64(0)
		for i := range h.parts {
			p := &h.parts[i]
			if !p.onDisk() {
				continue
			}
			c := p.offDiskCost(h.rcomp)
			if c > headroom {
				continue
			}
			if phys := p.diskBytesPhysical(); best < 0 || phys < bestPhys {
				best, bestCost, bestPhys = i, c, phys
			}
		}
		if best < 0 {
			break
		}
		p := &h.parts[best]
		var err error
		if h.rcomp && p.comp != nil {
			err = h.promotePartCompressed(best)
		} else {
			err = h.PromotePart(best)
		}
		if err != nil {
			return promoted, err
		}
		headroom -= bestCost
		promoted++
	}
	for {
		best, bestCost, bestSize := -1, int64(0), int64(0)
		for i := range h.parts {
			p := &h.parts[i]
			if !p.compressed() {
				continue
			}
			c := p.promoteCost()
			if c > headroom {
				continue
			}
			if size := int64(len(p.cverts) + len(p.ccnts)); best < 0 || size < bestSize {
				best, bestCost, bestSize = i, c, size
			}
		}
		if best < 0 {
			return promoted, nil
		}
		if err := h.PromotePart(best); err != nil {
			return promoted, err
		}
		headroom -= bestCost
		promoted++
	}
}

// AbortRewrite discards the fresh files of an unfinished rewrite, returning
// the first cleanup failure instead of swallowing it. The level itself may
// already be partially compacted (memory parts rewrite in place), so a
// failed pass is fatal for the level — AbortRewrite only guarantees no stray
// files remain; Close the level afterwards.
func (h *HybridLevel) AbortRewrite(rws []*PartRewriter) error {
	fs := vfs.OrOS(h.fs)
	var first error
	for _, r := range rws {
		if r == nil || r.dw == nil {
			continue
		}
		for _, f := range []vfs.File{r.dw.vf, r.dw.cf} {
			if f == nil {
				continue
			}
			name := f.Name()
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			if err := fs.Remove(name); err != nil && first == nil {
				first = err
			}
		}
		poolPutU32(r.buf)
		r.buf, r.dw = nil, nil
	}
	return first
}

// HybridLevelBuilder builds a HybridLevel from t concurrently written parts.
// Every part starts in memory; the budget governor watches the total
// resident bytes of the in-flight parts and, when they cross the watermark,
// marks the largest parts for migration. A marked part is drained to disk
// through the WriteQueue (write-behind: the part's accumulated — oldest —
// data goes out, the still-growing parts stay hot in RAM) and keeps
// appending to disk from then on. With a watermark the build can never
// over-run the memory budget by more than one part's growth between
// appends, and a level that fits stays entirely in memory with no I/O.
type HybridLevelBuilder struct {
	dir       string
	level     int
	queue     *WriteQueue
	blockSize int
	tracker   *memtrack.Tracker
	compress  Compression
	rcompress Compression
	fs        vfs.FS
	gov       governor
	parts     []hybridPartWriter
	reserved  int64
}

// NewHybridLevelBuilder creates a builder of nparts parts. memBudget is the
// resident-byte watermark for this build (≤ 0 sends every part to disk
// immediately, reproducing the all-disk DiskLevel behavior). pressure, when
// non-nil, is an external back-pressure flag (e.g. a memtrack high-water
// callback): while set, the governor spills as if the budget were exhausted.
// A positive pressureLimit lets the governor clear the flag once the
// tracker's live bytes drop back under it, so a transient spike does not
// condemn the whole remainder of the level to disk. Part files are created
// lazily, only when a part actually migrates. compress selects the on-disk
// encoding of migrated parts. residentCompress enables the compressed-mem
// tier: under pressure the governor squeezes the largest flushed raw parts
// into resident codec blocks before resorting to disk spill, and the
// finished level keeps compressed residents (promotions land compressed).
// fs is the filesystem the spill files live on (nil = the real one).
func NewHybridLevelBuilder(fs vfs.FS, dir string, level, nparts int, q *WriteQueue, blockSize int, tracker *memtrack.Tracker, memBudget int64, pressure *atomic.Bool, pressureLimit int64, compress, residentCompress Compression) (*HybridLevelBuilder, error) {
	fs = vfs.OrOS(fs)
	if err := fs.MkdirAll(dir); err != nil {
		return nil, wrapIO("mkdir", dir, err)
	}
	b := &HybridLevelBuilder{
		dir: dir, level: level, queue: q, blockSize: blockSize, tracker: tracker,
		compress: compress, rcompress: residentCompress, fs: fs,
		parts: make([]hybridPartWriter, nparts),
	}
	b.gov.budget = memBudget
	b.gov.pressure = pressure
	b.gov.pressureLimit = pressureLimit
	b.gov.tracker = tracker
	b.gov.b = b
	for i := range b.parts {
		p := &b.parts[i]
		p.b, p.idx = b, i
		if memBudget <= 0 {
			// Nothing fits: skip the pointless memory stay, the first append
			// migrates with an empty replay.
			p.spillReq.Store(true)
		}
	}
	return b, nil
}

// governor is the placement policy: an atomic running total of in-flight
// resident bytes, compared against the build's watermark on every append.
// Crossing it marks the largest unmarked parts until the projected resident
// total is back under the watermark. pending tracks the bytes of parts
// marked but not yet migrated, so the post-crossing fast path stays two
// atomic loads — the full part scan runs only when a new victim is needed.
type governor struct {
	budget        int64
	pressure      *atomic.Bool
	pressureLimit int64
	tracker       *memtrack.Tracker
	inflight      atomic.Int64
	pending       atomic.Int64
	b             *HybridLevelBuilder

	mu  sync.Mutex // serializes victim selection and error recording
	err error
}

func (g *governor) noteAlloc(delta int64) {
	// In-flight build bytes are charged to the tracker as they grow, not
	// just at Finish: under a shared arbiter this is what makes one run's
	// half-built level visible to its siblings' governors — the cross-run
	// watermark fires on genuinely resident bytes, not only completed
	// levels. Finish/Abort release the in-flight charge (the finished level
	// is then charged by its owner).
	if g.tracker != nil {
		g.tracker.Alloc(delta)
	}
	in := g.inflight.Add(delta)
	budget := g.budget
	if g.pressure != nil && g.pressure.Load() {
		if g.pressureLimit > 0 && g.tracker != nil && g.tracker.SharedLive() < g.pressureLimit {
			// The spike has passed: stop force-spilling. The high-water
			// callback re-arms below the limit, so a second crossing sets
			// the flag again.
			g.pressure.Store(false)
		} else {
			budget = 0
		}
	}
	if in-g.pending.Load() <= budget {
		return
	}
	g.spillOver(budget)
}

func (g *governor) noteFree(n int64) {
	if g.tracker != nil {
		g.tracker.Free(n)
	}
	g.inflight.Add(-n)
}

// releaseInflight returns the tracker charge of whatever in-flight bytes
// remain — the end-of-build handoff (Finish: the assembled level is charged
// by its owner) and the Abort teardown.
func (g *governor) releaseInflight() {
	if n := g.inflight.Swap(0); n != 0 && g.tracker != nil {
		g.tracker.Free(n)
	}
}

// spillOver marks the largest unmarked parts until the projected resident
// bytes fit the budget, migrating already-flushed victims on the calling
// goroutine (their owner is done with them).
func (g *governor) spillOver(budget int64) {
	if g.b.queue.Failed() {
		// The write-behind queue hit a hard error (typically ENOSPC): there
		// is nowhere for victims to go, so stop marking parts — the run is
		// failing; AppendGroup surfaces the queue's typed error.
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.inflight.Load()-g.pending.Load() > budget {
		if g.b.rcompress.enabled() {
			// Squeeze the largest flushed raw part into resident codec
			// blocks before spilling anything: compression frees most of a
			// part's bytes for no I/O at all. Only flushed parts are
			// eligible — their owner is done appending, so the raw arrays
			// are quiescent (the same discipline as the inline migrate
			// below).
			var cv *hybridPartWriter
			var cvBytes int64
			for i := range g.b.parts {
				p := &g.b.parts[i]
				if p.spillReq.Load() || p.rcompressed.Load() || !p.flushed.Load() {
					continue
				}
				if bb := p.bytes.Load(); bb > cvBytes {
					cv, cvBytes = p, bb
				}
			}
			if cv != nil {
				g.mu.Unlock()
				cv.compressResident()
				g.mu.Lock()
				continue
			}
		}
		var victim *hybridPartWriter
		var victimBytes int64
		for i := range g.b.parts {
			p := &g.b.parts[i]
			if p.spillReq.Load() {
				continue
			}
			if bb := p.bytes.Load(); bb > victimBytes {
				victim, victimBytes = p, bb
			}
		}
		if victim == nil {
			return // everything already marked; migrations will catch up
		}
		victim.claimed = victimBytes
		g.pending.Add(victimBytes)
		victim.spillReq.Store(true)
		if victim.flushed.Load() {
			// The owner has moved on; migrate here.
			g.mu.Unlock()
			err := victim.migrate()
			g.mu.Lock()
			if err != nil && g.err == nil {
				g.err = err
			}
		}
	}
}

func (g *governor) takeErr() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// hybridPartWriter receives one part's groups. Each part is appended by a
// single goroutine; the governor only touches a part after its Flush.
type hybridPartWriter struct {
	b   *HybridLevelBuilder
	idx int

	// Memory stage (owner-only until flushed).
	verts  []uint32
	counts []uint32

	// Compressed-resident stage: the governor squeezed the flushed raw
	// arrays into codec blocks (see compressResident). rcompressed records
	// the attempt; rcomp != nil records that it actually took.
	cverts, ccnts         []byte
	rcomp                 *partComp
	rchunkCum             []uint64
	cnumVerts, cnumGroups int
	rcompressed           atomic.Bool

	// Placement control.
	bytes    atomic.Int64
	spillReq atomic.Bool
	flushed  atomic.Bool
	claimed  int64      // bytes credited to governor.pending at mark time
	mu       sync.Mutex // guards migration and dw sealing
	migrated bool
	dwSealed bool
	dw       diskPartWriter

	// §4.2 prediction accounting, kept here across migration.
	acc  cse.PredAccum
	pred bool
}

// Part implements cse.LevelBuilder.
func (b *HybridLevelBuilder) Part(i int) cse.PartWriter { return &b.parts[i] }

// Parts implements cse.LevelBuilder.
func (b *HybridLevelBuilder) Parts() int { return len(b.parts) }

// ReservePart pre-grows part i's memory buffers (§4.2 pre-sizing). A part's
// reserve is capped at twice its even share of the memory watermark, and
// reserves stop once their sum reaches the watermark — capacity is real
// resident memory, and a part likely to migrate should not pre-claim it.
func (b *HybridLevelBuilder) ReservePart(i, verts, groups int) {
	if b.gov.budget <= 0 {
		return
	}
	if verts > maxHybridReserve {
		verts = maxHybridReserve
	}
	if perPart := int(b.gov.budget / int64(4*len(b.parts)) * 2); verts > perPart {
		verts = perPart
	}
	bytes := int64(verts)*4 + int64(groups)*4
	if b.reserved+bytes > b.gov.budget {
		return
	}
	b.reserved += bytes
	p := &b.parts[i]
	if p.verts == nil {
		p.verts = poolGetU32() // a pooled buffer may already cover the reserve
	}
	if p.counts == nil {
		p.counts = poolGetU32()
	}
	if verts > cap(p.verts) {
		s := make([]uint32, len(p.verts), verts)
		copy(s, p.verts)
		p.verts = s
	}
	if groups > cap(p.counts) {
		s := make([]uint32, len(p.counts), groups)
		copy(s, p.counts)
		p.counts = s
	}
}

// maxHybridReserve mirrors cse.MemLevelBuilder's per-part reserve cap.
const maxHybridReserve = 1 << 27

// AppendGroup implements cse.PartWriter.
func (p *hybridPartWriter) AppendGroup(children []uint32, preds []uint32) error {
	if p.b.queue.Failed() {
		// Fail the chunk worker promptly instead of finishing the whole
		// expansion into a queue that discards everything (see governor).
		return p.b.queue.Err()
	}
	if preds != nil {
		if len(preds) != len(children) {
			return fmt.Errorf("storage: %d preds for %d children", len(preds), len(children))
		}
		p.pred = true
		p.acc.Add(preds)
	}
	if !p.migratedByOwner() && p.spillReq.Load() {
		if err := p.migrate(); err != nil {
			return err
		}
	}
	if p.migratedByOwner() {
		return p.dw.AppendGroup(children, nil)
	}
	if p.verts == nil {
		p.verts = poolGetU32()
	}
	if p.counts == nil {
		p.counts = poolGetU32()
	}
	p.verts = append(p.verts, children...)
	p.counts = append(p.counts, uint32(len(children)))
	// Charge the part's eventual resident size: the 4-byte counts become
	// 8-byte global bounds at Finish, so a group costs 8 bytes for good.
	delta := int64(len(children))*4 + 8
	p.bytes.Add(delta)
	p.b.gov.noteAlloc(delta)
	return nil
}

// migratedByOwner reads the migration state from the owning goroutine.
// Before Flush only the owner migrates the part, so a plain read is safe.
func (p *hybridPartWriter) migratedByOwner() bool { return p.migrated }

// migrate drains the part's accumulated memory data to freshly created part
// files through the write queue and switches the part to disk appends.
func (p *hybridPartWriter) migrate() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.migrated {
		return nil
	}
	b := p.b
	vf, cf, err := openFilePair(b.fs,
		filepath.Join(b.dir, fmt.Sprintf("L%d.p%d.vert", b.level, p.idx)),
		filepath.Join(b.dir, fmt.Sprintf("L%d.p%d.cnt", b.level, p.idx)))
	if err != nil {
		return err
	}
	if p.rcomp != nil {
		// The part was governor-compressed after its Flush: the resident
		// blocks ARE the compressed on-disk format, so stream the bytes out
		// verbatim and adopt the directory. No appends follow a Flush, so
		// the writer never extends these files.
		p.dw = newDiskPartWriter(b.queue, vf, cf, p.rcomp)
		p.dw.vbuf = appendQueueBytes(b.queue, vf, p.dw.vbuf, p.cverts)
		p.dw.cbuf = appendQueueBytes(b.queue, cf, p.dw.cbuf, p.ccnts)
		p.dw.numVerts = p.cnumVerts
		p.dw.numGroups = p.cnumGroups
		p.dw.chunkCum = p.rchunkCum
		p.cverts, p.ccnts, p.rcomp, p.rchunkCum = nil, nil, nil, nil
	} else {
		p.dw = newDiskPartWriter(b.queue, vf, cf, newPartComp(b.compress))
		// Bulk-drain the accumulated arrays: straight-line encodes into queue
		// buffers (no per-group bookkeeping — this runs on the critical path of
		// whichever worker triggered the migration), then seed the disk writer's
		// counters and sparse index so subsequent appends continue seamlessly.
		// The compressed path seals full codec blocks and leaves the partial
		// tails open in the writer, so later appends extend the same blocks.
		if p.dw.comp != nil {
			p.dw.appendVertsComp(p.verts)
			p.dw.appendCntsComp(p.counts)
		} else {
			p.dw.vbuf = bulkEncode(b.queue, vf, p.dw.vbuf, p.verts)
			p.dw.cbuf = bulkEncode(b.queue, cf, p.dw.cbuf, p.counts)
		}
		p.dw.numVerts = len(p.verts)
		p.dw.numGroups = len(p.counts)
		var cum uint64
		for j, c := range p.counts {
			if j%CntChunk == 0 {
				p.dw.chunkCum = append(p.dw.chunkCum, cum)
			}
			cum += uint64(c)
		}
		poolPutU32(p.verts)
		poolPutU32(p.counts)
		p.verts, p.counts = nil, nil
	}
	p.b.gov.noteFree(p.bytes.Swap(0))
	p.b.gov.pending.Add(-p.claimed)
	p.claimed = 0
	p.migrated = true
	if p.flushed.Load() && !p.dwSealed {
		// Migrated after the owner's Flush (governor path): seal now.
		if err := p.dw.Flush(); err != nil {
			return err
		}
		p.dwSealed = true
	}
	return nil
}

// partBufPool recycles the memory-stage buffers a build no longer needs: a
// migrated part's verts and counts (the data just moved to disk) and a
// resident part's counts (turned into bounds at Finish). Steady-state hybrid
// builds then allocate only what the finished level actually keeps — the
// resident verts and bounds — instead of regrowing every part from nil.
var partBufPool = sync.Pool{New: func() any { return []uint32(nil) }}

func poolGetU32() []uint32 {
	return partBufPool.Get().([]uint32)[:0]
}

func poolPutU32(s []uint32) {
	if cap(s) > 0 {
		partBufPool.Put(s[:0])
	}
}

// partBufPool64 recycles the bounds arrays of resident parts, returned by
// HybridLevel.Close like the uint32 buffers above.
var partBufPool64 = sync.Pool{New: func() any { return []uint64(nil) }}

func poolGetU64(n int) []uint64 {
	s := partBufPool64.Get().([]uint64)
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func poolPutU64(s []uint64) {
	if cap(s) > 0 {
		partBufPool64.Put(s[:0])
	}
}

// bulkEncode appends vals to f through the write queue in buffer-sized
// chunks, returning the open (unsubmitted) tail buffer.
func bulkEncode(q *WriteQueue, f vfs.File, buf []byte, vals []uint32) []byte {
	for off := 0; off < len(vals); {
		space := (cap(buf) - len(buf)) / 4
		if space == 0 {
			q.Submit(f, buf)
			buf = q.GetBuf()
			continue
		}
		n := min(space, len(vals)-off)
		base := len(buf)
		buf = buf[:base+4*n]
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[base+4*i:], vals[off+i])
		}
		off += n
	}
	return buf
}

// Flush implements cse.PartWriter.
func (p *hybridPartWriter) Flush() error {
	p.acc.Flush()
	p.flushed.Store(true)
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.migrated && p.spillReq.Load() {
		p.mu.Unlock()
		err := p.migrate()
		p.mu.Lock()
		if err != nil {
			return err
		}
	}
	if p.migrated && !p.dwSealed {
		if err := p.dw.Flush(); err != nil {
			return err
		}
		p.dwSealed = true
	}
	return nil
}

// Finish implements cse.LevelBuilder: it waits for the write queue to drain
// the migrated parts, verifies their file sizes, and assembles the
// HybridLevel — computing the global group end boundaries of the memory
// parts now that every part's base offsets are known.
func (b *HybridLevelBuilder) Finish() (cse.LevelData, error) {
	b.gov.releaseInflight()
	if err := b.gov.takeErr(); err != nil {
		b.Abort()
		return nil, err
	}
	anyDisk := false
	for i := range b.parts {
		if b.parts[i].migrated {
			anyDisk = true
		}
	}
	if anyDisk {
		if err := b.queue.Barrier(); err != nil {
			b.Abort()
			return nil, err
		}
	}
	h := &HybridLevel{blockSize: b.blockSize, tracker: b.tracker, fs: b.fs, comp: b.compress.enabled(), rcomp: b.rcompress.enabled()}
	sawPred, sawPlainNonEmpty := false, false
	for i := range b.parts {
		p := &b.parts[i]
		hp := hybridPart{vertBase: h.totalVerts, groupBase: h.totalGroups}
		if p.migrated {
			if err := verifyPartFiles(p.dw.vf, p.dw.cf, p.dw.numVerts, p.dw.numGroups, p.dw.comp); err != nil {
				b.Abort()
				return nil, err
			}
			if b.tracker != nil {
				b.tracker.SpillIO(int64(4*(p.dw.numVerts+p.dw.numGroups)), p.dw.physBytes())
			}
			hp.vf, hp.cf, hp.chunkCum, hp.comp = p.dw.vf, p.dw.cf, p.dw.chunkCum, p.dw.comp
			hp.numVerts, hp.numGroups = p.dw.numVerts, p.dw.numGroups
		} else if p.rcomp != nil {
			// Governor-compressed resident part: hand the encoded blocks and
			// their directory straight to the level.
			hp.cverts, hp.ccnts, hp.comp, hp.chunkCum = p.cverts, p.ccnts, p.rcomp, p.rchunkCum
			hp.numVerts, hp.numGroups = p.cnumVerts, p.cnumGroups
			p.cverts, p.ccnts, p.rcomp, p.rchunkCum = nil, nil, nil, nil
		} else {
			hp.verts = p.verts
			p.verts = nil // owned by the level now; recycled at its Close
			hp.numVerts, hp.numGroups = len(hp.verts), len(p.counts)
			hp.bounds = poolGetU64(len(p.counts))
			off := uint64(h.totalVerts)
			for j, c := range p.counts {
				off += uint64(c)
				hp.bounds[j] = off
			}
			poolPutU32(p.counts) // bounds replace the counts; recycle them
			p.counts = nil
		}
		if p.pred {
			sawPred = true
		} else if hp.numVerts > 0 {
			sawPlainNonEmpty = true
		}
		h.parts = append(h.parts, hp)
		h.totalVerts += hp.numVerts
		h.totalGroups += hp.numGroups
		h.pred = append(h.pred, p.acc.Segs...)
	}
	if sawPred && sawPlainNonEmpty {
		b.Abort()
		return nil, fmt.Errorf("storage: mixed prediction state across parts")
	}
	// Keep the part-writer slice for Reset: the builder is pooled across
	// level builds (handed-over buffers were nil'ed above; Reset clears the
	// remaining per-part state).
	b.parts = b.parts[:0]
	return h, nil
}

// Reset re-arms a finished builder for a new level build, reusing its
// part-writer slice (and, through the part pool, the buffers of levels that
// have since been closed). The directory, write queue, block size, tracker
// and pressure flag stay as constructed; level names the new level's spill
// files and memBudget is the new build's governor watermark.
func (b *HybridLevelBuilder) Reset(level, nparts int, memBudget int64) {
	b.level = level
	if cap(b.parts) < nparts {
		b.parts = make([]hybridPartWriter, nparts)
	} else {
		b.parts = b.parts[:nparts]
	}
	b.reserved = 0
	b.gov.budget = memBudget
	b.gov.releaseInflight() // no-op after a completed Finish/Abort
	b.gov.pending.Store(0)
	b.gov.mu.Lock()
	b.gov.err = nil
	b.gov.mu.Unlock()
	for i := range b.parts {
		p := &b.parts[i]
		p.b, p.idx = b, i
		p.verts, p.counts = nil, nil
		p.cverts, p.ccnts, p.rcomp, p.rchunkCum = nil, nil, nil, nil
		p.cnumVerts, p.cnumGroups = 0, 0
		p.rcompressed.Store(false)
		p.bytes.Store(0)
		// All-disk regime: skip the pointless memory stay, the first append
		// migrates with an empty replay (as in NewHybridLevelBuilder).
		p.spillReq.Store(memBudget <= 0)
		p.flushed.Store(false)
		p.claimed = 0
		p.migrated = false
		p.dwSealed = false
		p.dw = diskPartWriter{}
		p.acc.Reset()
		p.pred = false
	}
}

// Abort implements cse.LevelBuilder: close and remove any migrated parts'
// files and drop the memory parts.
func (b *HybridLevelBuilder) Abort() error {
	b.gov.releaseInflight()
	fs := vfs.OrOS(b.fs)
	var first error
	for i := range b.parts {
		p := &b.parts[i]
		if !p.migrated {
			continue
		}
		for _, f := range []vfs.File{p.dw.vf, p.dw.cf} {
			if f == nil {
				continue
			}
			name := f.Name()
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			if err := fs.Remove(name); err != nil && first == nil {
				first = err
			}
		}
	}
	b.parts = nil
	return first
}
