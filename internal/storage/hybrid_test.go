package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"kaleido/internal/cse"
	"kaleido/internal/memtrack"
)

// buildHybridMixed writes groups through a MemLevelBuilder and a
// HybridLevelBuilder whose parts in spillParts are forced to disk, returning
// both levels. The budget is effectively unlimited, so placement follows
// spillParts exactly — deterministic mixed mem/disk layouts for conformance.
func buildHybridMixed(t *testing.T, groups [][]uint32, nparts int, spillParts map[int]bool, withPred bool) (*cse.MemLevel, *HybridLevel) {
	t.Helper()
	tracker := memtrack.New()
	q := NewWriteQueue(64, tracker) // tiny buffers force frequent queue traffic
	t.Cleanup(func() { q.Close() })

	mb := cse.NewMemLevelBuilder(nparts)
	hb, err := NewHybridLevelBuilder(nil, t.TempDir(), 2, nparts, q, 128, tracker, 1<<40, nil, 0, CompressionOff, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	for i := range spillParts {
		hb.parts[i].spillReq.Store(true)
	}
	per := (len(groups) + nparts - 1) / nparts
	for i := 0; i < nparts; i++ {
		lo, hi := min(i*per, len(groups)), min(i*per+per, len(groups))
		for _, g := range groups[lo:hi] {
			var preds []uint32
			if withPred {
				preds = make([]uint32, len(g))
				for j := range preds {
					preds[j] = g[j] % 7
				}
			}
			if err := mb.Part(i).AppendGroup(g, preds); err != nil {
				t.Fatal(err)
			}
			if err := hb.Part(i).AppendGroup(g, preds); err != nil {
				t.Fatal(err)
			}
		}
		if err := mb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
		if err := hb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ml, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	hl, err := hb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hl.Close() })
	return ml.(*cse.MemLevel), hl.(*HybridLevel)
}

// TestHybridLevelMatchesMemLevel is the conformance property over mixed
// mem/disk part layouts: every LevelData operation must agree with the
// all-memory reference, including cursors that stream across mem→disk seams.
func TestHybridLevelMatchesMemLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		groups := randGroups(rng, 1+rng.Intn(400))
		nparts := 2 + rng.Intn(4)
		spill := map[int]bool{}
		for i := 0; i < nparts; i++ {
			if rng.Intn(2) == 0 {
				spill[i] = true
			}
		}
		if len(spill) == nparts {
			delete(spill, rng.Intn(nparts)) // keep at least one part in memory
		}
		if len(spill) == 0 {
			spill[rng.Intn(nparts)] = true // and at least one on disk
		}
		ml, hl := buildHybridMixed(t, groups, nparts, spill, trial%2 == 0)

		if ml.Len() != hl.Len() || ml.Groups() != hl.Groups() {
			t.Fatalf("trial %d: shape %d/%d vs %d/%d", trial, ml.Len(), ml.Groups(), hl.Len(), hl.Groups())
		}
		if hl.DiskParts() == 0 {
			t.Fatalf("trial %d: no disk parts despite forced spill", trial)
		}
		// Vert blocks over full and random sub-ranges (128-byte blocks, so
		// every disk segment spans many blocks).
		for r := 0; r < 8; r++ {
			lo := rng.Intn(ml.Len() + 1)
			hi := lo + rng.Intn(ml.Len()-lo+1)
			if r == 0 {
				lo, hi = 0, ml.Len()
			}
			got := make([]uint32, 0, hi-lo)
			bc := hl.VertBlocks(lo, hi)
			for {
				blk, ok := bc.NextBlock()
				if !ok {
					break
				}
				if len(blk) == 0 {
					t.Fatalf("trial %d range [%d,%d): empty block with ok=true", trial, lo, hi)
				}
				got = append(got, blk...)
			}
			if err := bc.Err(); err != nil {
				t.Fatal(err)
			}
			bc.Close()
			if !reflect.DeepEqual(got, append(make([]uint32, 0, hi-lo), ml.Verts[lo:hi]...)) {
				t.Fatalf("trial %d range [%d,%d): blocks differ from mem verts", trial, lo, hi)
			}
		}
		// Bound blocks from random starts.
		for r := 0; r < 6; r++ {
			first := rng.Intn(ml.Groups())
			want := ml.Offs[first+1:]
			got := make([]uint64, 0, len(want))
			bb := hl.BoundBlocks(first)
			for {
				blk, ok := bb.NextBlock()
				if !ok {
					break
				}
				got = append(got, blk...)
			}
			if err := bb.Err(); err != nil {
				t.Fatal(err)
			}
			bb.Close()
			if !reflect.DeepEqual(got, append(make([]uint64, 0, len(want)), want...)) {
				t.Fatalf("trial %d bounds from %d: blocks differ from mem offs", trial, first)
			}
		}
		// Random access: UnitAt, ParentOf at every index; GroupStart at every
		// group including the end sentinel.
		for i := 0; i < ml.Len(); i++ {
			mu, merr := ml.UnitAt(i)
			hu, herr := hl.UnitAt(i)
			if merr != nil || herr != nil || mu != hu {
				t.Fatalf("trial %d: UnitAt(%d) = %d (%v) vs %d (%v)", trial, i, mu, merr, hu, herr)
			}
			mp, merr := ml.ParentOf(i)
			hp, herr := hl.ParentOf(i)
			if merr != nil || herr != nil || mp != hp {
				t.Fatalf("trial %d: ParentOf(%d) = %d (%v) vs %d (%v)", trial, i, mp, merr, hp, herr)
			}
		}
		for g := 0; g <= ml.Groups(); g++ {
			ms, merr := ml.GroupStart(g)
			hs, herr := hl.GroupStart(g)
			if merr != nil || herr != nil || ms != hs {
				t.Fatalf("trial %d: GroupStart(%d) = %d (%v) vs %d (%v)", trial, g, ms, merr, hs, herr)
			}
		}
		if !reflect.DeepEqual(ml.Predicted(), hl.Predicted()) {
			t.Fatalf("trial %d: predictions differ", trial)
		}
		if hl.Bytes() >= ml.Bytes() && ml.Len() > 50 {
			t.Fatalf("trial %d: hybrid resident bytes %d not below mem level %d", trial, hl.Bytes(), ml.Bytes())
		}
	}
}

// TestHybridMidBuildSpill drives a build against a budget sized to roughly
// half the level: the governor must migrate the largest in-flight parts mid
// build, ending with both residencies present and the resident bytes near
// the watermark, while the data stays bit-identical to the mem reference.
func TestHybridMidBuildSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	groups := make([][]uint32, 600)
	var totalBytes int64
	for i := range groups {
		g := make([]uint32, 2+rng.Intn(6))
		for j := range g {
			g[j] = rng.Uint32() % 5000
		}
		groups[i] = g
		totalBytes += int64(len(g))*4 + 4
	}
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	budget := totalBytes / 2
	const nparts = 8
	hb, err := NewHybridLevelBuilder(nil, t.TempDir(), 3, nparts, q, 0, tracker, budget, nil, 0, CompressionOff, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	mb := cse.NewMemLevelBuilder(nparts)
	per := (len(groups) + nparts - 1) / nparts
	for i := 0; i < nparts; i++ {
		lo, hi := min(i*per, len(groups)), min(i*per+per, len(groups))
		for _, g := range groups[lo:hi] {
			if err := hb.Part(i).AppendGroup(g, nil); err != nil {
				t.Fatal(err)
			}
			if err := mb.Part(i).AppendGroup(g, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := hb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
		if err := mb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lvl, err := hb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer lvl.Close()
	hl := lvl.(*HybridLevel)
	if hl.DiskParts() == 0 || hl.MemParts() == 0 {
		t.Fatalf("placement not hybrid: %d mem / %d disk parts", hl.MemParts(), hl.DiskParts())
	}
	// The resident data (excluding the mem parts' 8-byte bounds index) must
	// respect the governor budget up to one part's growth.
	var residentVerts int64
	for i := range hl.parts {
		if !hl.parts[i].onDisk() {
			residentVerts += int64(len(hl.parts[i].verts))*4 + int64(hl.parts[i].numGroups)*4
		}
	}
	slack := totalBytes / int64(nparts)
	if residentVerts > budget+slack {
		t.Fatalf("resident part bytes %d exceed budget %d + slack %d", residentVerts, budget, slack)
	}
	ml, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mem := ml.(*cse.MemLevel)
	got := make([]uint32, 0, hl.Len())
	bc := hl.VertBlocks(0, hl.Len())
	for {
		blk, ok := bc.NextBlock()
		if !ok {
			break
		}
		got = append(got, blk...)
	}
	bc.Close()
	if !reflect.DeepEqual(got, mem.Verts) {
		t.Fatal("hybrid level data differs from mem reference after mid-build spill")
	}
}

// TestHybridPressureSpill shrinks the effective budget mid-build through the
// external pressure flag (the memtrack high-water signal): parts that fit
// comfortably before the flag must migrate after it.
func TestHybridPressureSpill(t *testing.T) {
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	var pressure atomic.Bool
	hb, err := NewHybridLevelBuilder(nil, t.TempDir(), 4, 2, q, 0, tracker, 1<<40, &pressure, 0, CompressionOff, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	group := []uint32{1, 2, 3, 4}
	for i := 0; i < 50; i++ {
		if err := hb.Part(0).AppendGroup(group, nil); err != nil {
			t.Fatal(err)
		}
	}
	pressure.Store(true) // budget collapses mid-build
	for i := 0; i < 50; i++ {
		if err := hb.Part(0).AppendGroup(group, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := hb.Part(0).Flush(); err != nil {
		t.Fatal(err)
	}
	if err := hb.Part(1).Flush(); err != nil {
		t.Fatal(err)
	}
	lvl, err := hb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer lvl.Close()
	hl := lvl.(*HybridLevel)
	if hl.DiskParts() != 1 {
		t.Fatalf("pressure flag did not migrate the active part: %d disk parts", hl.DiskParts())
	}
	if hl.Len() != 400 {
		t.Fatalf("level len = %d, want 400", hl.Len())
	}
}

// TestHybridPressureClears: with a positive pressureLimit, a stale pressure
// flag (the tracked spike has passed, live is back under the limit) must be
// cleared by the governor instead of condemning the rest of the level to
// disk.
func TestHybridPressureClears(t *testing.T) {
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	var pressure atomic.Bool
	pressure.Store(true) // spike already over: live (0) < limit
	hb, err := NewHybridLevelBuilder(nil, t.TempDir(), 7, 1, q, 0, tracker, 1<<40, &pressure, 1<<20, CompressionOff, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := hb.Part(0).AppendGroup([]uint32{1, 2, 3}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if pressure.Load() {
		t.Fatal("governor did not clear the stale pressure flag")
	}
	if err := hb.Part(0).Flush(); err != nil {
		t.Fatal(err)
	}
	lvl, err := hb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer lvl.Close()
	if lvl.(*HybridLevel).DiskParts() != 0 {
		t.Fatal("stale pressure spilled parts despite live bytes under the limit")
	}
}

// TestHybridCloseRemovesOnlyDiskParts: Close must delete exactly the files
// of the migrated parts and be idempotent; memory parts own no files.
func TestHybridCloseRemovesOnlyDiskParts(t *testing.T) {
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	dir := t.TempDir()
	hb, err := NewHybridLevelBuilder(nil, dir, 5, 3, q, 0, tracker, 1<<40, nil, 0, CompressionOff, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	hb.parts[1].spillReq.Store(true) // only the middle part goes to disk
	for i := 0; i < 3; i++ {
		if err := hb.Part(i).AppendGroup([]uint32{uint32(i), uint32(i + 10)}, nil); err != nil {
			t.Fatal(err)
		}
		if err := hb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lvl, err := hb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 { // L5.p1.vert + L5.p1.cnt, nothing for mem parts
		t.Fatalf("disk files before Close: %v, want exactly the spilled part's pair", files)
	}
	if err := lvl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lvl.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	files, err = filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("Close left files: %v", files)
	}
}

// TestWalkerHybridLevelStack runs walker stacks where hybrid levels with
// mixed placements appear at multiple depths, against the all-memory walk.
func TestWalkerHybridLevelStack(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	base := make([]uint32, 40)
	for i := range base {
		base[i] = uint32(i + 100)
	}
	groups2 := randGroups(rng, len(base))
	groups2[0] = []uint32{1, 2, 3}
	ml2, hl2 := buildHybridMixed(t, groups2, 3, map[int]bool{0: true, 2: true}, false)
	groups3 := randGroups(rng, ml2.Len())
	groups3[ml2.Len()-1] = []uint32{7, 8}
	ml3, hl3 := buildHybridMixed(t, groups3, 4, map[int]bool{1: true}, false)

	stack := func(l2, l3 cse.LevelData) *cse.CSE {
		c := cse.New(cse.NewBaseLevel(base))
		if err := c.Push(l2); err != nil {
			t.Fatal(err)
		}
		if err := c.Push(l3); err != nil {
			t.Fatal(err)
		}
		return c
	}
	walk := func(c *cse.CSE, lo, hi int) ([][]uint32, []int) {
		w, err := cse.NewWalker(c, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		var embs [][]uint32
		var chs []int
		for {
			emb, ch, ok := w.Next()
			if !ok {
				break
			}
			embs = append(embs, append([]uint32(nil), emb...))
			chs = append(chs, ch)
		}
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		return embs, chs
	}

	ref := stack(ml2, ml3)
	n := ml3.Len()
	variants := map[string]*cse.CSE{
		"hyb2-mem3": stack(hl2, ml3),
		"mem2-hyb3": stack(ml2, hl3),
		"hyb2-hyb3": stack(hl2, hl3),
	}
	for _, r := range [][2]int{{0, n}, {1, n}, {n / 3, 2 * n / 3}, {n - 1, n}} {
		wantE, wantC := walk(ref, r[0], r[1])
		for name, c := range variants {
			gotE, gotC := walk(c, r[0], r[1])
			if !reflect.DeepEqual(gotE, wantE) || !reflect.DeepEqual(gotC, wantC) {
				t.Fatalf("%s range %v: walk differs from all-memory", name, r)
			}
		}
	}
}

// TestHybridExtract exercises the random-access path (UnitAt + ParentOf)
// through CSE.Extract over a hybrid stack.
func TestHybridExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	base := make([]uint32, 30)
	for i := range base {
		base[i] = uint32(i)
	}
	groups := randGroups(rng, len(base))
	groups[3] = []uint32{9, 9, 9}
	ml, hl := buildHybridMixed(t, groups, 3, map[int]bool{1: true}, false)

	mem := cse.New(cse.NewBaseLevel(base))
	if err := mem.Push(ml); err != nil {
		t.Fatal(err)
	}
	hyb := cse.New(cse.NewBaseLevel(base))
	if err := hyb.Push(hl); err != nil {
		t.Fatal(err)
	}
	want := make([]uint32, 2)
	got := make([]uint32, 2)
	for i := 0; i < ml.Len(); i++ {
		if err := mem.Extract(i, want); err != nil {
			t.Fatal(err)
		}
		if err := hyb.Extract(i, got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Extract(%d) = %v, want %v", i, got, want)
		}
	}
}

// TestHybridAllMemFinish: a build that never crosses the watermark must
// produce a level with zero disk parts, zero disk bytes, and no files.
func TestHybridAllMemFinish(t *testing.T) {
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	dir := t.TempDir()
	hb, err := NewHybridLevelBuilder(nil, dir, 6, 2, q, 0, tracker, 1<<40, nil, 0, CompressionOff, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := hb.Part(i).AppendGroup([]uint32{uint32(i)}, nil); err != nil {
			t.Fatal(err)
		}
		if err := hb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lvl, err := hb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer lvl.Close()
	hl := lvl.(*HybridLevel)
	if hl.DiskParts() != 0 || hl.DiskBytes() != 0 {
		t.Fatalf("all-mem build produced %d disk parts / %d disk bytes", hl.DiskParts(), hl.DiskBytes())
	}
	if _, w := tracker.IOTotals(); w != 0 {
		t.Fatalf("all-mem build wrote %d bytes", w)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("all-mem build left files: %v", entries)
	}
}

// TestHybridPromote loads disk parts back into memory and checks the level
// still matches the all-memory reference, the files are gone, and the
// headroom policy promotes only what fits.
func TestHybridPromote(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	groups := randGroups(rng, 300)
	ml, hl := buildHybridMixed(t, groups, 4, map[int]bool{1: true, 3: true}, false)

	// Headroom below the smallest part's cost promotes nothing.
	if n, err := hl.Promote(1); err != nil || n != 0 {
		t.Fatalf("Promote(1) = %d, %v", n, err)
	}
	if hl.DiskParts() != 2 {
		t.Fatalf("disk parts = %d after no-op promote", hl.DiskParts())
	}

	var files []string
	for i := range hl.parts {
		if hl.parts[i].onDisk() {
			files = append(files, hl.parts[i].vf.Name(), hl.parts[i].cf.Name())
		}
	}
	n, err := hl.Promote(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || hl.DiskParts() != 0 {
		t.Fatalf("promoted %d, %d disk parts remain", n, hl.DiskParts())
	}
	for _, f := range files {
		if _, err := os.Stat(f); !os.IsNotExist(err) {
			t.Fatalf("promoted part file %s still exists", f)
		}
	}
	// Full conformance after promotion: units, group starts, parents.
	for i := 0; i < ml.Len(); i++ {
		mu, _ := ml.UnitAt(i)
		hu, err := hl.UnitAt(i)
		if err != nil || mu != hu {
			t.Fatalf("unit %d: %d vs %d (%v)", i, mu, hu, err)
		}
		mp, _ := ml.ParentOf(i)
		hp, err := hl.ParentOf(i)
		if err != nil || mp != hp {
			t.Fatalf("parent %d: %d vs %d (%v)", i, mp, hp, err)
		}
	}
	for g := 0; g <= ml.Groups(); g++ {
		ms, _ := ml.GroupStart(g)
		hs, err := hl.GroupStart(g)
		if err != nil || ms != hs {
			t.Fatalf("group start %d: %d vs %d (%v)", g, ms, hs, err)
		}
	}
	if hl.DiskBytes() != 0 {
		t.Fatalf("DiskBytes = %d after full promotion", hl.DiskBytes())
	}
}

// TestHybridPromotePartial checks the smallest-first selection: headroom for
// one part promotes exactly the cheaper one.
func TestHybridPromotePartial(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	groups := randGroups(rng, 240)
	_, hl := buildHybridMixed(t, groups, 3, map[int]bool{0: true, 2: true}, false)
	var costs []int64
	for i := range hl.parts {
		if hl.parts[i].onDisk() {
			costs = append(costs, hl.parts[i].promoteCost())
		}
	}
	if len(costs) != 2 {
		t.Fatalf("disk parts = %d", len(costs))
	}
	smaller := costs[0]
	if costs[1] < smaller {
		smaller = costs[1]
	}
	n, err := hl.Promote(smaller)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || hl.DiskParts() != 1 {
		t.Fatalf("promoted %d, %d disk parts remain", n, hl.DiskParts())
	}
}
