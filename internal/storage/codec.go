package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"

	"kaleido/internal/memtrack"
	"kaleido/internal/storage/vfs"
)

// Compression selects the on-disk encoding of spilled level parts.
type Compression int

const (
	// CompressionAuto (the zero value) compresses disk-resident data:
	// vert blocks are delta+varint encoded, cnt blocks frame-of-reference
	// encoded. Memory-resident parts always stay raw, so the zero-copy
	// read path of resident data is unaffected — the representation
	// follows the placement.
	CompressionAuto Compression = iota
	// CompressionOff stores raw fixed-width little-endian words, the
	// pre-compression format.
	CompressionOff
)

func (c Compression) enabled() bool { return c != CompressionOff }

// The compressed on-disk format is a sequence of self-delimiting blocks of
// codecBlockVals values each (the last block of a file may hold fewer):
//
//	[1 byte version][uvarint count][uvarint payloadLen][4-byte LE CRC32C][payload]
//
// The CRC32C (Castagnoli, hardware-accelerated on amd64/arm64) covers the
// payload bytes and is verified on every whole-block decode, so a flipped
// bit on disk surfaces as a typed corruption error instead of a misdecode.
// Version 2 added the checksum field; version-1 blocks (the pre-checksum
// format) are cleanly rejected — spill files are single-run scratch, never
// read across versions, so no compatibility decode path exists.
//
// A vert payload is the block's first value as a uvarint followed by the
// remaining count-1 values as zigzag deltas (mod 2³²) in group-varint: one
// control byte per four values holding each value's byte length minus one
// in two bits, then the values' little-endian bytes (1-4 each, the final
// group may hold fewer than four). Verts are near-sorted within a part, so
// deltas are small and most values take one byte. A cnt payload is
// frame-of-reference: a uvarint base (the block minimum) followed by all
// count values as group-varint v-base deltas — child counts cluster
// tightly. Group-varint over per-value varint keeps the codec off the
// expansion critical path: encode and decode run branch-free per value
// (unaligned 32-bit word moves plus a length table) instead of per byte.
// Blocks are decoded whole into pooled buffers; random access locates a
// block through the per-part physical offset directory (partComp) and
// never decodes more than one block per probe. An unknown version byte is
// a hard error: readers written today must refuse data written by a newer
// format instead of misdecoding it.
const (
	codecVersion = 2
	// codecBlockVals is the number of values per compressed block. It
	// equals CntChunk so every sparse-index entry falls on a cnt block
	// boundary: the bounded cnt read behind ParentOf/GroupStart touches
	// exactly one block.
	codecBlockVals = CntChunk
	// maxCodecPayload bounds a block payload: worst case is 5 bytes per
	// value plus a 5-byte head value. Used to reject corrupt headers
	// before trusting their length field.
	maxCodecPayload = 5 * (codecBlockVals + 1)
)

// castagnoli is the CRC32C table: crc32.Checksum with it uses the SSE4.2 /
// ARMv8 CRC instructions, so the per-block checksum is nanoseconds, not a
// measurable cost against the ±3% throughput guard.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// partComp is the block directory of one compressed part: the physical file
// offset where each block starts, plus the physical file sizes. Logical
// offsets are implicit — block b covers values [b·codecBlockVals, ...) — so
// the directory is what lets vertSpans/offAt random access keep working at
// block granularity.
type partComp struct {
	vOffs     []int64
	cOffs     []int64
	physVerts int64
	physCnts  int64
}

// vertEnd returns the physical end offset of vert block b.
func (c *partComp) vertEnd(b int) int64 {
	if b+1 < len(c.vOffs) {
		return c.vOffs[b+1]
	}
	return c.physVerts
}

// cntEnd returns the physical end offset of cnt block b.
func (c *partComp) cntEnd(b int) int64 {
	if b+1 < len(c.cOffs) {
		return c.cOffs[b+1]
	}
	return c.physCnts
}

// dirBytes is the resident footprint of the directory itself.
func (c *partComp) dirBytes() int64 {
	if c == nil {
		return 0
	}
	return int64(len(c.vOffs)+len(c.cOffs)) * 8
}

func newPartComp(compress Compression) *partComp {
	if !compress.enabled() {
		return nil
	}
	return &partComp{}
}

// codecScratch returns scratch grown to the worst-case payload size, full
// length, so the encoders can write by index — no per-value append bounds
// dance on the expansion critical path.
func codecScratch(scratch *[]byte, vals int) []byte {
	need := 5 * (vals + 1)
	s := *scratch
	if cap(s) < need {
		s = make([]byte, need)
		*scratch = s
	}
	return s[:cap(s)]
}

// putUvarintAt writes u at s[n] and returns the new offset. The one-byte
// case — almost every delta and count — is expected to inline at the call
// sites' fast-path check, so this only runs the loop for multi-byte values.
func putUvarintAt(s []byte, n int, u uint64) int {
	for u >= 0x80 {
		s[n] = byte(u) | 0x80
		n++
		u >>= 7
	}
	s[n] = byte(u)
	return n + 1
}

// zigzag32 maps a signed mod-2³² delta onto a small unsigned value.
func zigzag32(d int32) uint32 { return uint32(d<<1) ^ uint32(d>>31) }

// unzigzag32 is the inverse of zigzag32.
func unzigzag32(u uint32) int32 { return int32(u>>1) ^ -int32(u&1) }

// gvLen is the group-varint byte length of u (1-4; zero still takes a byte).
func gvLen(u uint32) int { return (bits.Len32(u|1) + 7) >> 3 }

// gvMask truncates an unaligned 4-byte load to a group-varint length code.
var gvMask = [4]uint32{0xff, 0xffff, 0xffffff, 0xffffffff}

// putGV4 writes one full group of 4 values (control byte + 1-4 bytes each)
// at s[n] and returns the new offset. Delta streams from sorted adjacency
// runs are homogeneous, so the all-1-byte and all-2-byte groups dominate
// and get branch-predictable packed paths: one wide store instead of four
// offset-chained ones. The general path over-writes 4 bytes per value; the
// scratch has slack and the next write or the payload length trims it.
func putGV4(s []byte, n int, u0, u1, u2, u3 uint32) int {
	or4 := u0 | u1 | u2 | u3
	if or4 < 1<<8 {
		s[n] = 0 // four 1-byte values
		binary.LittleEndian.PutUint32(s[n+1:], u0|u1<<8|u2<<16|u3<<24)
		return n + 5
	}
	if or4 < 1<<16 {
		s[n] = 0x55 // four 2-byte values
		binary.LittleEndian.PutUint64(s[n+1:],
			uint64(u0)|uint64(u1)<<16|uint64(u2)<<32|uint64(u3)<<48)
		return n + 9
	}
	ctrl := n
	n++
	b0, b1, b2, b3 := gvLen(u0), gvLen(u1), gvLen(u2), gvLen(u3)
	binary.LittleEndian.PutUint32(s[n:], u0)
	n += b0
	binary.LittleEndian.PutUint32(s[n:], u1)
	n += b1
	binary.LittleEndian.PutUint32(s[n:], u2)
	n += b2
	binary.LittleEndian.PutUint32(s[n:], u3)
	n += b3
	s[ctrl] = byte(b0 - 1 | (b1-1)<<2 | (b2-1)<<4 | (b3-1)<<6)
	return n
}

// putGVTail writes a final group of 1-3 values starting at s[n] (control
// byte first). Each store is an unconditional 4-byte write — the scratch has
// slack, the next write or the payload length truncates the excess.
func putGVTail(s []byte, n int, vals []uint32) int {
	ctrl, cb, shift := n, 0, 0
	n++
	for _, u := range vals {
		b := gvLen(u)
		binary.LittleEndian.PutUint32(s[n:], u)
		n += b
		cb |= (b - 1) << shift
		shift += 2
	}
	s[ctrl] = byte(cb)
	return n
}

// appendVertBlock appends one framed vert block (head value + group-varint
// zigzag deltas) to dst. scratch holds the payload between calls to avoid
// reallocating it. The full-group loop is straight-line on purpose: this is
// the worker-side encode hot path, and the unrolled form keeps the stores
// branch-free (4-byte writes truncated by the next write's offset).
func appendVertBlock(dst []byte, vals []uint32, scratch *[]byte) []byte {
	s := codecScratch(scratch, len(vals))
	n := 0
	if len(vals) > 0 {
		n = putUvarintAt(s, n, uint64(vals[0]))
		prev := vals[0]
		i := 1
		for ; i+4 <= len(vals); i += 4 {
			v0, v1, v2, v3 := vals[i], vals[i+1], vals[i+2], vals[i+3]
			u0 := zigzag32(int32(v0 - prev))
			u1 := zigzag32(int32(v1 - v0))
			u2 := zigzag32(int32(v2 - v1))
			u3 := zigzag32(int32(v3 - v2))
			prev = v3
			// putGV4's packed paths, by hand: the group loop is too hot to
			// pay a call per group (putGV4 is over the inlining budget).
			if or4 := u0 | u1 | u2 | u3; or4 < 1<<8 {
				s[n] = 0
				binary.LittleEndian.PutUint32(s[n+1:], u0|u1<<8|u2<<16|u3<<24)
				n += 5
			} else if or4 < 1<<16 {
				s[n] = 0x55
				binary.LittleEndian.PutUint64(s[n+1:],
					uint64(u0)|uint64(u1)<<16|uint64(u2)<<32|uint64(u3)<<48)
				n += 9
			} else {
				n = putGV4(s, n, u0, u1, u2, u3)
			}
		}
		if i < len(vals) {
			var tail [3]uint32
			k := 0
			for _, v := range vals[i:] {
				tail[k] = zigzag32(int32(v - prev))
				prev = v
				k++
			}
			n = putGVTail(s, n, tail[:k])
		}
	}
	dst = append(dst, codecVersion)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(s[:n], castagnoli))
	return append(dst, s[:n]...)
}

// appendCntBlock appends one framed cnt block (frame-of-reference base +
// group-varint deltas).
func appendCntBlock(dst []byte, vals []uint32, scratch *[]byte) []byte {
	s := codecScratch(scratch, len(vals))
	n := 0
	if len(vals) > 0 {
		base := vals[0]
		for _, v := range vals[1:] {
			if v < base {
				base = v
			}
		}
		n = putUvarintAt(s, n, uint64(base))
		i := 0
		for ; i+4 <= len(vals); i += 4 {
			n = putGV4(s, n, vals[i]-base, vals[i+1]-base, vals[i+2]-base, vals[i+3]-base)
		}
		if i < len(vals) {
			var tail [3]uint32
			k := 0
			for _, v := range vals[i:] {
				tail[k] = v - base
				k++
			}
			n = putGVTail(s, n, tail[:k])
		}
	}
	dst = append(dst, codecVersion)
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(s[:n], castagnoli))
	return append(dst, s[:n]...)
}

// decodeCodecBlock decodes one complete block from the front of buf into
// dst (cap ≥ codecBlockVals), verifying the payload CRC32C before trusting a
// single byte of it. It returns the decoded values and the bytes consumed,
// or consumed == 0 with a nil error when buf holds only a partial block —
// the streaming cursors then pull more bytes and retry. Validation errors
// are plain; callers wrap them into CorruptError with the file and block
// coordinates they alone know.
func decodeCodecBlock(buf []byte, vert bool, dst []uint32) ([]uint32, int, error) {
	if len(buf) == 0 {
		return nil, 0, nil
	}
	if buf[0] != codecVersion {
		return nil, 0, fmt.Errorf("unknown compressed block version %d (want %d); refusing to decode", buf[0], codecVersion)
	}
	p := 1
	count, n := binary.Uvarint(buf[p:])
	if n == 0 {
		return nil, 0, nil
	}
	if n < 0 || count > codecBlockVals {
		return nil, 0, fmt.Errorf("count %d exceeds %d", count, codecBlockVals)
	}
	p += n
	plen, n := binary.Uvarint(buf[p:])
	if n == 0 {
		return nil, 0, nil
	}
	if n < 0 || plen > maxCodecPayload {
		return nil, 0, fmt.Errorf("payload length %d exceeds %d", plen, maxCodecPayload)
	}
	p += n
	if len(buf)-p < 4 {
		return nil, 0, nil
	}
	wantCRC := binary.LittleEndian.Uint32(buf[p:])
	p += 4
	if uint64(len(buf)-p) < plen {
		return nil, 0, nil
	}
	payload := buf[p : p+int(plen)]
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, 0, fmt.Errorf("checksum mismatch: payload CRC32C %08x, header says %08x", got, wantCRC)
	}
	var err error
	if vert {
		err = decodeVertPayload(payload, dst[:count])
	} else {
		err = decodeCntPayload(payload, dst[:count])
	}
	if err != nil {
		return nil, 0, err
	}
	return dst[:count], p + int(plen), nil
}

func decodeVertPayload(payload []byte, dst []uint32) error {
	if len(dst) == 0 {
		if len(payload) != 0 {
			return fmt.Errorf("storage: corrupt compressed vert block: %d payload bytes for empty block", len(payload))
		}
		return nil
	}
	first, n := binary.Uvarint(payload)
	if n <= 0 || first > math.MaxUint32 {
		return fmt.Errorf("storage: corrupt compressed vert block: bad head value")
	}
	pos := n
	prev := uint32(first)
	dst[0] = prev
	i := 1
	// Fast path: whole groups with a full 4-byte load guaranteed in bounds
	// (1 control byte + 4×4 value bytes).
	for i+4 <= len(dst) && pos+17 <= len(payload) {
		cb := uint32(payload[pos])
		pos++
		// Packed groups from putGV4's fast paths decode with one wide load.
		if cb == 0x55 {
			w := binary.LittleEndian.Uint64(payload[pos:])
			pos += 8
			prev += uint32(unzigzag32(uint32(w & 0xffff)))
			dst[i] = prev
			prev += uint32(unzigzag32(uint32(w >> 16 & 0xffff)))
			dst[i+1] = prev
			prev += uint32(unzigzag32(uint32(w >> 32 & 0xffff)))
			dst[i+2] = prev
			prev += uint32(unzigzag32(uint32(w >> 48)))
			dst[i+3] = prev
			i += 4
			continue
		}
		if cb == 0 {
			w := binary.LittleEndian.Uint32(payload[pos:])
			pos += 4
			prev += uint32(unzigzag32(w & 0xff))
			dst[i] = prev
			prev += uint32(unzigzag32(w >> 8 & 0xff))
			dst[i+1] = prev
			prev += uint32(unzigzag32(w >> 16 & 0xff))
			dst[i+2] = prev
			prev += uint32(unzigzag32(w >> 24))
			dst[i+3] = prev
			i += 4
			continue
		}
		for k := 0; k < 4; k++ {
			b := cb>>(k*2)&3 + 1
			u := binary.LittleEndian.Uint32(payload[pos:]) & gvMask[b-1]
			pos += int(b)
			prev += uint32(unzigzag32(u))
			dst[i+k] = prev
		}
		i += 4
	}
	// Tail: partial groups and loads near the payload end, byte-assembled.
	for i < len(dst) {
		if pos >= len(payload) {
			return fmt.Errorf("storage: corrupt compressed vert block: short delta %d/%d", i, len(dst))
		}
		cb := uint32(payload[pos])
		pos++
		for k := 0; k < 4 && i < len(dst); k++ {
			b := int(cb>>(k*2)&3) + 1
			if pos+b > len(payload) {
				return fmt.Errorf("storage: corrupt compressed vert block: short delta %d/%d", i, len(dst))
			}
			var u uint32
			for j := 0; j < b; j++ {
				u |= uint32(payload[pos+j]) << (8 * j)
			}
			pos += b
			prev += uint32(unzigzag32(u))
			dst[i] = prev
			i++
		}
	}
	if pos != len(payload) {
		return fmt.Errorf("storage: corrupt compressed vert block: %d trailing payload bytes", len(payload)-pos)
	}
	return nil
}

func decodeCntPayload(payload []byte, dst []uint32) error {
	if len(dst) == 0 {
		if len(payload) != 0 {
			return fmt.Errorf("storage: corrupt compressed cnt block: %d payload bytes for empty block", len(payload))
		}
		return nil
	}
	base, n := binary.Uvarint(payload)
	if n <= 0 || base > math.MaxUint32 {
		return fmt.Errorf("storage: corrupt compressed cnt block: bad base")
	}
	pos := n
	i := 0
	for i+4 <= len(dst) && pos+17 <= len(payload) {
		cb := uint32(payload[pos])
		pos++
		// Packed groups from putGV4's fast paths decode with one wide load;
		// base+0xffff staying in range covers all four values at once.
		if cb == 0x55 && base+0xffff <= math.MaxUint32 {
			w := binary.LittleEndian.Uint64(payload[pos:])
			pos += 8
			b32 := uint32(base)
			dst[i] = b32 + uint32(w&0xffff)
			dst[i+1] = b32 + uint32(w>>16&0xffff)
			dst[i+2] = b32 + uint32(w>>32&0xffff)
			dst[i+3] = b32 + uint32(w>>48)
			i += 4
			continue
		}
		if cb == 0 && base+0xff <= math.MaxUint32 {
			w := binary.LittleEndian.Uint32(payload[pos:])
			pos += 4
			b32 := uint32(base)
			dst[i] = b32 + w&0xff
			dst[i+1] = b32 + w>>8&0xff
			dst[i+2] = b32 + w>>16&0xff
			dst[i+3] = b32 + w>>24
			i += 4
			continue
		}
		for k := 0; k < 4; k++ {
			b := cb>>(k*2)&3 + 1
			u := binary.LittleEndian.Uint32(payload[pos:]) & gvMask[b-1]
			pos += int(b)
			v := base + uint64(u)
			if v > math.MaxUint32 {
				return fmt.Errorf("storage: corrupt compressed cnt block: value out of range at %d", i+k)
			}
			dst[i+k] = uint32(v)
		}
		i += 4
	}
	for i < len(dst) {
		if pos >= len(payload) {
			return fmt.Errorf("storage: corrupt compressed cnt block: short value %d/%d", i, len(dst))
		}
		cb := uint32(payload[pos])
		pos++
		for k := 0; k < 4 && i < len(dst); k++ {
			b := int(cb>>(k*2)&3) + 1
			if pos+b > len(payload) {
				return fmt.Errorf("storage: corrupt compressed cnt block: short value %d/%d", i, len(dst))
			}
			var u uint32
			for j := 0; j < b; j++ {
				u |= uint32(payload[pos+j]) << (8 * j)
			}
			pos += b
			v := base + uint64(u)
			if v > math.MaxUint32 {
				return fmt.Errorf("storage: corrupt compressed cnt block: value out of range at %d", i)
			}
			dst[i] = uint32(v)
			i++
		}
	}
	if pos != len(payload) {
		return fmt.Errorf("storage: corrupt compressed cnt block: %d trailing payload bytes", len(payload)-pos)
	}
	return nil
}

// byteCarry reassembles self-delimiting codec blocks from the byte windows a
// blockStream delivers: a block may straddle two prefetch windows, so the
// unconsumed tail of one window is carried into the next. The leftover is
// always smaller than one encoded block, so the compaction copy is cheap.
type byteCarry struct {
	buf []byte
	off int
}

func (c *byteCarry) rest() []byte { return c.buf[c.off:] }

func (c *byteCarry) consume(n int) { c.off += n }

func (c *byteCarry) add(raw []byte) {
	if c.off >= len(c.buf) {
		c.buf = c.buf[:0]
	} else if c.off > 0 {
		n := copy(c.buf, c.buf[c.off:])
		c.buf = c.buf[:n]
	}
	c.off = 0
	c.buf = append(c.buf, raw...)
}

// compVertBlocks streams compressed vert blocks: whole codec blocks are
// decoded into a reused buffer, skip leading values are dropped (the read
// may start mid-block — block granularity of the random access), and the
// tail is trimmed to the requested range.
type compVertBlocks struct {
	bs        *blockStream
	carry     byteCarry
	dec       []uint32
	skip      int
	remaining int
	err       error
	// path and blk locate decode failures: the file the streamed range
	// starts in and the running block index within that range, attached to
	// the CorruptError a bad block surfaces as.
	path string
	blk  int
}

func (c *compVertBlocks) NextBlock() ([]uint32, bool) {
	if c.err != nil || c.remaining <= 0 || c.bs == nil {
		return nil, false
	}
	if cap(c.dec) < codecBlockVals {
		c.dec = make([]uint32, codecBlockVals)
	}
	for {
		vals, consumed, err := decodeCodecBlock(c.carry.rest(), true, c.dec[:codecBlockVals])
		if err != nil {
			c.err = corruptAt(c.path, c.blk, err)
			return nil, false
		}
		if consumed > 0 {
			c.carry.consume(consumed)
			c.blk++
			if c.skip >= len(vals) {
				c.skip -= len(vals)
				continue
			}
			out := vals[c.skip:]
			c.skip = 0
			if len(out) > c.remaining {
				out = out[:c.remaining]
			}
			c.remaining -= len(out)
			if len(out) == 0 {
				continue
			}
			return out, true
		}
		raw, ok := c.bs.nextBlock()
		if !ok {
			if err := c.bs.Err(); err != nil {
				c.err = err
			} else {
				c.err = corruptAt(c.path, c.blk, fmt.Errorf("truncated compressed vert stream (%d units missing)", c.remaining))
			}
			return nil, false
		}
		c.carry.add(raw)
	}
}

func (c *compVertBlocks) Err() error {
	if c.err != nil {
		return c.err
	}
	if c.bs == nil {
		return nil
	}
	return c.bs.Err()
}

func (c *compVertBlocks) Close() error {
	if c.bs == nil {
		return nil
	}
	return c.bs.Close()
}

// compBoundBlocks streams compressed cnt blocks as global group-end
// boundaries. Skipped leading cnt values do not advance cum: the cursor's
// starting base already accounts for them.
type compBoundBlocks struct {
	bs        *blockStream
	carry     byteCarry
	dec       []uint32
	out       []uint64
	skip      int
	remaining int
	cum       uint64
	err       error
	// path/blk: see compVertBlocks.
	path string
	blk  int
}

func (c *compBoundBlocks) NextBlock() ([]uint64, bool) {
	if c.err != nil || c.remaining <= 0 || c.bs == nil {
		return nil, false
	}
	if cap(c.dec) < codecBlockVals {
		c.dec = make([]uint32, codecBlockVals)
	}
	for {
		vals, consumed, err := decodeCodecBlock(c.carry.rest(), false, c.dec[:codecBlockVals])
		if err != nil {
			c.err = corruptAt(c.path, c.blk, err)
			return nil, false
		}
		if consumed > 0 {
			c.carry.consume(consumed)
			c.blk++
			if c.skip >= len(vals) {
				c.skip -= len(vals)
				continue
			}
			vals = vals[c.skip:]
			c.skip = 0
			if len(vals) > c.remaining {
				vals = vals[:c.remaining]
			}
			if len(vals) == 0 {
				continue
			}
			if cap(c.out) < len(vals) {
				c.out = make([]uint64, codecBlockVals)
			}
			out := c.out[:len(vals)]
			cum := c.cum
			for i, v := range vals {
				cum += uint64(v)
				out[i] = cum
			}
			c.cum = cum
			c.remaining -= len(out)
			return out, true
		}
		raw, ok := c.bs.nextBlock()
		if !ok {
			if err := c.bs.Err(); err != nil {
				c.err = err
			} else {
				c.err = corruptAt(c.path, c.blk, fmt.Errorf("truncated compressed cnt stream (%d groups missing)", c.remaining))
			}
			return nil, false
		}
		c.carry.add(raw)
	}
}

func (c *compBoundBlocks) Err() error {
	if c.err != nil {
		return c.err
	}
	if c.bs == nil {
		return nil
	}
	return c.bs.Err()
}

func (c *compBoundBlocks) Close() error {
	if c.bs == nil {
		return nil
	}
	return c.bs.Close()
}

// readPartCnts dispatches a bounded cnt read between the raw and compressed
// representations of a part.
func readPartCnts(cf vfs.File, comp *partComp, lo, hi int, tracker *memtrack.Tracker, sc *cntScratch) ([]uint32, error) {
	if comp == nil {
		return readCntsAt(cf, lo, hi, tracker, sc)
	}
	b0 := lo / codecBlockVals
	b1 := (hi - 1) / codecBlockVals
	off := comp.cOffs[b0]
	end := comp.cntEnd(b1)
	n := int(end - off)
	if cap(sc.buf) < n {
		sc.buf = make([]byte, n)
	}
	buf := sc.buf[:n]
	if err := retryReadAt(cf, buf, off, nil, tracker); err != nil {
		return nil, err
	}
	if tracker != nil {
		tracker.ReadIO(int64(n))
	}
	want := hi - lo
	if cap(sc.out) < want {
		sc.out = make([]uint32, 0, want)
	}
	out := sc.out[:0]
	if cap(sc.blk) < codecBlockVals {
		sc.blk = make([]uint32, codecBlockVals)
	}
	pos := 0
	for b := b0; b <= b1; b++ {
		vals, consumed, err := decodeCodecBlock(buf[pos:], false, sc.blk[:codecBlockVals])
		if err != nil {
			return nil, corruptAt(cf.Name(), b, err)
		}
		if consumed == 0 {
			return nil, corruptAt(cf.Name(), b, fmt.Errorf("truncated cnt block"))
		}
		pos += consumed
		start := lo - b*codecBlockVals
		if start < 0 {
			start = 0
		}
		stop := hi - b*codecBlockVals
		if stop > len(vals) {
			stop = len(vals)
		}
		if stop > start {
			out = append(out, vals[start:stop]...)
		}
	}
	sc.out = out
	if len(out) != want {
		return nil, corruptAt(cf.Name(), b0, fmt.Errorf("cnt blocks [%d,%d] decoded %d entries, want %d", b0, b1, len(out), want))
	}
	return out, nil
}

// readPartUnit dispatches a single-unit vert read: one 4-byte pread for raw
// parts, one block read+decode for compressed parts.
func readPartUnit(vf vfs.File, comp *partComp, li int, tracker *memtrack.Tracker) (uint32, error) {
	if comp == nil {
		var b [4]byte
		if err := retryReadAt(vf, b[:], int64(4*li), nil, tracker); err != nil {
			return 0, err
		}
		if tracker != nil {
			tracker.ReadIO(4)
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	b := li / codecBlockVals
	off := comp.vOffs[b]
	end := comp.vertEnd(b)
	sc := cntPool.Get().(*cntScratch)
	defer cntPool.Put(sc)
	n := int(end - off)
	if cap(sc.buf) < n {
		sc.buf = make([]byte, n)
	}
	buf := sc.buf[:n]
	if err := retryReadAt(vf, buf, off, nil, tracker); err != nil {
		return 0, err
	}
	if tracker != nil {
		tracker.ReadIO(int64(n))
	}
	if cap(sc.blk) < codecBlockVals {
		sc.blk = make([]uint32, codecBlockVals)
	}
	vals, consumed, err := decodeCodecBlock(buf, true, sc.blk[:codecBlockVals])
	if err != nil {
		return 0, corruptAt(vf.Name(), b, err)
	}
	if consumed == 0 {
		return 0, corruptAt(vf.Name(), b, fmt.Errorf("truncated vert block"))
	}
	k := li - b*codecBlockVals
	if k >= len(vals) {
		return 0, corruptAt(vf.Name(), b, fmt.Errorf("block holds %d units, need index %d", len(vals), k))
	}
	return vals[k], nil
}

// readCompFile reads a whole compressed part file (phys bytes) and decodes
// every block into dst, whose length must equal the part's logical value
// count — the bulk load behind PromotePart.
func readCompFile(f vfs.File, phys int64, vert bool, dst []uint32) error {
	if phys == 0 {
		if len(dst) != 0 {
			return corruptAt(f.Name(), 0, fmt.Errorf("empty compressed file, want %d values", len(dst)))
		}
		return nil
	}
	buf := make([]byte, phys)
	if err := retryReadAt(f, buf, 0, nil, nil); err != nil {
		return err
	}
	return decodeAllBlocks(buf, vert, dst, f.Name())
}

// decodeAllBlocks decodes a complete sequence of codec blocks from buf into
// dst, whose length must equal the sequence's logical value count. name
// labels corruption errors — a file path or memBlockPath for resident
// blocks.
func decodeAllBlocks(buf []byte, vert bool, dst []uint32, name string) error {
	blk := make([]uint32, codecBlockVals)
	pos, got, b := 0, 0, 0
	for pos < len(buf) {
		vals, consumed, err := decodeCodecBlock(buf[pos:], vert, blk)
		if err != nil {
			return corruptAt(name, b, err)
		}
		if consumed == 0 {
			return corruptAt(name, b, fmt.Errorf("truncated compressed block at byte %d", pos))
		}
		pos += consumed
		b++
		if got+len(vals) > len(dst) {
			return corruptAt(name, b-1, fmt.Errorf("compressed blocks decode past %d values", len(dst)))
		}
		got += copy(dst[got:], vals)
	}
	if got != len(dst) {
		return corruptAt(name, b, fmt.Errorf("compressed blocks decoded %d values, want %d", got, len(dst)))
	}
	return nil
}

// appendQueueBytes copies data into the open queue buffer, submitting and
// replacing it as it fills — the write-behind seam the codec shares with the
// raw bulkEncode path.
func appendQueueBytes(q *WriteQueue, f vfs.File, buf, data []byte) []byte {
	for len(data) > 0 {
		space := cap(buf) - len(buf)
		if space == 0 {
			q.Submit(f, buf)
			buf = q.GetBuf()
			continue
		}
		n := min(space, len(data))
		buf = append(buf, data[:n]...)
		data = data[n:]
	}
	return buf
}

// sealVertBlock encodes the writer's open vert block, records its physical
// offset in the directory, and hands the bytes to the write queue. Encoding
// runs here, on the worker that produced the values: the block is still
// cache-hot, and with t workers the codec throughput scales with the
// expansion instead of serializing on the queue's I/O goroutine.
func (p *diskPartWriter) sealVertBlock() {
	p.comp.vOffs = append(p.comp.vOffs, p.comp.physVerts)
	p.enc = appendVertBlock(p.enc[:0], p.vblock, &p.payload)
	p.comp.physVerts += int64(len(p.enc))
	p.vbuf = appendQueueBytes(p.q, p.vf, p.vbuf, p.enc)
	p.vblock = p.vblock[:0]
}

// sealCntBlock is sealVertBlock for the cnt file.
func (p *diskPartWriter) sealCntBlock() {
	p.comp.cOffs = append(p.comp.cOffs, p.comp.physCnts)
	p.enc = appendCntBlock(p.enc[:0], p.cblock, &p.payload)
	p.comp.physCnts += int64(len(p.enc))
	p.cbuf = appendQueueBytes(p.q, p.cf, p.cbuf, p.enc)
	p.cblock = p.cblock[:0]
}

// appendVertsComp buffers verts into the open codec block, sealing full
// blocks as they fill.
func (p *diskPartWriter) appendVertsComp(vals []uint32) {
	if p.vblock == nil {
		p.vblock = poolGetU32()
	}
	for len(vals) > 0 {
		n := min(codecBlockVals-len(p.vblock), len(vals))
		p.vblock = append(p.vblock, vals[:n]...)
		vals = vals[n:]
		if len(p.vblock) == codecBlockVals {
			p.sealVertBlock()
		}
	}
}

// appendCntComp buffers one cnt value into the open codec block.
func (p *diskPartWriter) appendCntComp(v uint32) {
	if p.cblock == nil {
		p.cblock = poolGetU32()
	}
	p.cblock = append(p.cblock, v)
	if len(p.cblock) == codecBlockVals {
		p.sealCntBlock()
	}
}

// appendCntsComp buffers cnt values into the open codec block.
func (p *diskPartWriter) appendCntsComp(vals []uint32) {
	if p.cblock == nil {
		p.cblock = poolGetU32()
	}
	for len(vals) > 0 {
		n := min(codecBlockVals-len(p.cblock), len(vals))
		p.cblock = append(p.cblock, vals[:n]...)
		vals = vals[n:]
		if len(p.cblock) == codecBlockVals {
			p.sealCntBlock()
		}
	}
}

// physBytes reports the bytes the part occupies on disk: the compressed
// footprint when encoded, the raw word footprint otherwise.
func (p *diskPartWriter) physBytes() int64 {
	if p.comp != nil {
		return p.comp.physVerts + p.comp.physCnts
	}
	return int64(4 * (p.numVerts + p.numGroups))
}
