package storage

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kaleido/internal/cse"
	"kaleido/internal/memtrack"
)

// buildBoth writes the same groups through a MemLevelBuilder and a
// DiskLevelBuilder (t parts) and returns both levels.
func buildBoth(t *testing.T, groups [][]uint32, nparts int, withPred bool) (*cse.MemLevel, *DiskLevel, *memtrack.Tracker) {
	t.Helper()
	tracker := memtrack.New()
	q := NewWriteQueue(64, tracker) // tiny buffers force frequent queue traffic
	t.Cleanup(func() { q.Close() })

	mb := cse.NewMemLevelBuilder(nparts)
	db, err := NewDiskLevelBuilder(nil, t.TempDir(), 2, nparts, q, 128, tracker, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	// Split the groups into nparts contiguous ranges.
	per := (len(groups) + nparts - 1) / nparts
	for i := 0; i < nparts; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(groups) {
			lo = len(groups)
		}
		if hi > len(groups) {
			hi = len(groups)
		}
		for _, g := range groups[lo:hi] {
			var preds []uint32
			if withPred {
				preds = make([]uint32, len(g))
				for j := range preds {
					preds[j] = g[j] % 7
				}
			}
			if err := mb.Part(i).AppendGroup(g, preds); err != nil {
				t.Fatal(err)
			}
			if err := db.Part(i).AppendGroup(g, preds); err != nil {
				t.Fatal(err)
			}
		}
		if err := mb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ml, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	dl, err := db.Finish()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dl.Close() })
	return ml.(*cse.MemLevel), dl.(*DiskLevel), tracker
}

func randGroups(rng *rand.Rand, n int) [][]uint32 {
	groups := make([][]uint32, n)
	for i := range groups {
		sz := rng.Intn(5)
		if rng.Intn(10) == 0 {
			sz = rng.Intn(50) // occasional big group
		}
		g := make([]uint32, sz)
		for j := range g {
			g[j] = rng.Uint32() % 1000
		}
		groups[i] = g
	}
	return groups
}

// TestDiskLevelMatchesMemLevel is the conformance property: every LevelData
// operation must agree between the two implementations.
func TestDiskLevelMatchesMemLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		groups := randGroups(rng, 1+rng.Intn(400))
		nparts := 1 + rng.Intn(4)
		ml, dl, _ := buildBoth(t, groups, nparts, trial%2 == 0)

		if ml.Len() != dl.Len() || ml.Groups() != dl.Groups() {
			t.Fatalf("trial %d: shape %d/%d vs %d/%d", trial, ml.Len(), ml.Groups(), dl.Len(), dl.Groups())
		}
		// Full and random sub-range vert cursors.
		for r := 0; r < 6; r++ {
			lo := rng.Intn(ml.Len() + 1)
			hi := lo + rng.Intn(ml.Len()-lo+1)
			if r == 0 {
				lo, hi = 0, ml.Len()
			}
			mc, dc := ml.VertCursor(lo, hi), dl.VertCursor(lo, hi)
			for {
				mv, mok := mc.Next()
				dv, dok := dc.Next()
				if mok != dok || mv != dv {
					t.Fatalf("trial %d range [%d,%d): mem (%d,%v) disk (%d,%v)", trial, lo, hi, mv, mok, dv, dok)
				}
				if !mok {
					break
				}
			}
			if err := dc.Err(); err != nil {
				t.Fatal(err)
			}
			dc.Close()
		}
		// ParentOf at every index.
		for i := 0; i < ml.Len(); i++ {
			mp, merr := ml.ParentOf(i)
			dp, derr := dl.ParentOf(i)
			if merr != nil || derr != nil || mp != dp {
				t.Fatalf("trial %d: ParentOf(%d) = %d (%v) vs %d (%v)", trial, i, mp, merr, dp, derr)
			}
		}
		// Bound cursors from several starting groups.
		for r := 0; r < 5; r++ {
			first := rng.Intn(ml.Groups())
			mc, dc := ml.BoundCursor(first), dl.BoundCursor(first)
			for n := 0; n < 50; n++ {
				mv, mok := mc.Next()
				dv, dok := dc.Next()
				if mok != dok || mv != dv {
					t.Fatalf("trial %d bounds from %d: mem (%d,%v) disk (%d,%v)", trial, first, mv, mok, dv, dok)
				}
				if !mok {
					break
				}
			}
			dc.Close()
		}
		// Prediction segments agree.
		if !reflect.DeepEqual(ml.Predicted(), dl.Predicted()) {
			t.Fatalf("trial %d: predictions differ: %v vs %v", trial, ml.Predicted(), dl.Predicted())
		}
	}
}

// TestWalkerOverDiskLevel runs the CSE walker over a hybrid CSE (memory base
// + disk top) and compares to an all-memory CSE.
func TestWalkerOverDiskLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := make([]uint32, 60)
	for i := range base {
		base[i] = uint32(i)
	}
	groups := randGroups(rng, 60)
	ml, dl, _ := buildBoth(t, groups, 3, false)

	mem := cse.New(cse.NewBaseLevel(base))
	if err := mem.Push(ml); err != nil {
		t.Fatal(err)
	}
	hyb := cse.New(cse.NewBaseLevel(base))
	if err := hyb.Push(dl); err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, ml.Len()}, {5, ml.Len() / 2}, {ml.Len() / 3, ml.Len()}} {
		mw, err := cse.NewWalker(mem, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		dw, err := cse.NewWalker(hyb, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		for {
			me, mch, mok := mw.Next()
			de, dch, dok := dw.Next()
			if mok != dok || mch != dch || !reflect.DeepEqual(me, de) {
				t.Fatalf("range %v: mem (%v,%d,%v) disk (%v,%d,%v)", r, me, mch, mok, de, dch, dok)
			}
			if !mok {
				break
			}
		}
		if err := dw.Err(); err != nil {
			t.Fatal(err)
		}
		mw.Close()
		dw.Close()
	}
}

func TestIOAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	groups := randGroups(rng, 200)
	_, dl, tracker := buildBoth(t, groups, 2, false)
	_, w := tracker.IOTotals()
	if want := dl.DiskBytes(); w != want {
		t.Fatalf("write bytes = %d, want %d", w, want)
	}
	c := dl.VertCursor(0, dl.Len())
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	c.Close()
	r, _ := tracker.IOTotals()
	if r < int64(dl.Len())*4 {
		t.Fatalf("read bytes = %d, want ≥ %d", r, dl.Len()*4)
	}
}

func TestTruncatedVertFile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	groups := randGroups(rng, 100)
	_, dl, _ := buildBoth(t, groups, 1, false)
	// Truncate the vert file behind the level's back.
	if err := os.Truncate(dl.parts[0].vf.Name(), int64(dl.Len()*4/2)); err != nil {
		t.Fatal(err)
	}
	c := dl.VertCursor(0, dl.Len())
	defer c.Close()
	n := 0
	for {
		if _, ok := c.Next(); !ok {
			break
		}
		n++
	}
	if c.Err() == nil {
		t.Fatalf("read %d/%d units from truncated file without error", n, dl.Len())
	}
}

func TestFinishDetectsShortFiles(t *testing.T) {
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	dir := t.TempDir()
	db, err := NewDiskLevelBuilder(nil, dir, 3, 1, q, 0, tracker, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Part(0).AppendGroup([]uint32{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	// Flush "forgotten" — Finish must detect the size mismatch (the write
	// buffers were never submitted).
	if _, err := db.Finish(); err == nil {
		t.Fatal("Finish accepted un-flushed part")
	}
	// Abort must have removed the files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("abort left %d files behind", len(entries))
	}
}

// plainFile adapts a bare *os.File to vfs.File for tests that need a file
// the vfs.OS constructor would refuse to hand out (e.g. read-only).
type plainFile struct{ *os.File }

func (f plainFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func TestWriteQueueErrorPropagation(t *testing.T) {
	q := NewWriteQueue(0, nil)
	defer q.Close()
	f, err := os.Open(os.DevNull) // read-only: writes must fail
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := q.GetBuf()
	buf = append(buf, 1, 2, 3, 4)
	q.Submit(plainFile{f}, buf)
	if err := q.Barrier(); err == nil {
		t.Fatal("write to read-only file reported no error")
	}
	if !errors.Is(q.Err(), ErrSpillIO) {
		t.Fatalf("queue error %v does not wrap ErrSpillIO", q.Err())
	}
	if !q.Failed() {
		t.Fatal("queue did not latch Failed after write give-up")
	}
	if err := q.Reset(); err == nil {
		t.Fatal("Reset returned no error from the failed operation")
	}
	if q.Err() != nil || q.Failed() {
		t.Fatal("Reset left error state behind")
	}
}

func TestEmptyParts(t *testing.T) {
	// All groups in part 0; parts 1,2 completely empty.
	groups := [][]uint32{{1, 2}, {}, {3}}
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	db, err := NewDiskLevelBuilder(nil, t.TempDir(), 2, 3, q, 0, tracker, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if err := db.Part(0).AppendGroup(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := db.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lvl, err := db.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer lvl.Close()
	if lvl.Len() != 3 || lvl.Groups() != 3 {
		t.Fatalf("shape %d/%d", lvl.Len(), lvl.Groups())
	}
	c := lvl.VertCursor(0, 3)
	defer c.Close()
	var got []uint32
	for {
		v, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if !reflect.DeepEqual(got, []uint32{1, 2, 3}) {
		t.Fatalf("verts = %v", got)
	}
}

func TestCloseRemovesFiles(t *testing.T) {
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	dir := t.TempDir()
	db, err := NewDiskLevelBuilder(nil, dir, 2, 2, q, 0, tracker, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := db.Part(i).AppendGroup([]uint32{uint32(i)}, nil); err != nil {
			t.Fatal(err)
		}
		if err := db.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lvl, err := db.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := lvl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lvl.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("Close left files: %v", files)
	}
}

// TestBlockCursorsMatchMemLevel is the block-API conformance property: the
// concatenation of VertBlocks/BoundBlocks blocks must equal the mem level's
// backing arrays, over full ranges, random sub-ranges (spanning part seams —
// buildBoth uses a 128-byte block size, so every range covers many blocks),
// and random bound starts.
func TestBlockCursorsMatchMemLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		groups := randGroups(rng, 1+rng.Intn(300))
		nparts := 1 + rng.Intn(4)
		ml, dl, _ := buildBoth(t, groups, nparts, false)
		for r := 0; r < 8; r++ {
			lo := rng.Intn(ml.Len() + 1)
			hi := lo + rng.Intn(ml.Len()-lo+1)
			if r == 0 {
				lo, hi = 0, ml.Len()
			}
			got := make([]uint32, 0, hi-lo)
			bc := dl.VertBlocks(lo, hi)
			for {
				blk, ok := bc.NextBlock()
				if !ok {
					break
				}
				if len(blk) == 0 {
					t.Fatalf("trial %d range [%d,%d): empty block with ok=true", trial, lo, hi)
				}
				got = append(got, blk...)
			}
			if err := bc.Err(); err != nil {
				t.Fatal(err)
			}
			bc.Close()
			if !reflect.DeepEqual(got, append(make([]uint32, 0, hi-lo), ml.Verts[lo:hi]...)) {
				t.Fatalf("trial %d range [%d,%d): blocks differ from mem verts", trial, lo, hi)
			}
		}
		for r := 0; r < 5; r++ {
			first := rng.Intn(ml.Groups())
			want := ml.Offs[first+1:]
			got := make([]uint64, 0, len(want))
			bb := dl.BoundBlocks(first)
			for {
				blk, ok := bb.NextBlock()
				if !ok {
					break
				}
				got = append(got, blk...)
			}
			if err := bb.Err(); err != nil {
				t.Fatal(err)
			}
			bb.Close()
			if !reflect.DeepEqual(got, append(make([]uint64, 0, len(want)), want...)) {
				t.Fatalf("trial %d bounds from %d: blocks differ from mem offs", trial, first)
			}
		}
	}
}

// TestBlockCursorsAcrossEmptyParts streams a level whose part sequence has
// completely empty parts in the middle and at the end.
func TestBlockCursorsAcrossEmptyParts(t *testing.T) {
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	db, err := NewDiskLevelBuilder(nil, t.TempDir(), 2, 5, q, 64, tracker, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	// Parts 0 and 3 get groups; parts 1, 2, 4 stay empty.
	for _, g := range [][]uint32{{1, 2, 3}, {}, {4}} {
		if err := db.Part(0).AppendGroup(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range [][]uint32{{5}, {}, {6, 7, 8, 9}} {
		if err := db.Part(3).AppendGroup(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := db.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lvl, err := db.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer lvl.Close()
	dl := lvl.(*DiskLevel)
	if dl.Len() != 9 || dl.Groups() != 6 {
		t.Fatalf("shape %d/%d, want 9/6", dl.Len(), dl.Groups())
	}
	var verts []uint32
	bc := dl.VertBlocks(0, 9)
	for {
		blk, ok := bc.NextBlock()
		if !ok {
			break
		}
		verts = append(verts, blk...)
	}
	bc.Close()
	if !reflect.DeepEqual(verts, []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9}) {
		t.Fatalf("verts = %v", verts)
	}
	var bounds []uint64
	bb := dl.BoundBlocks(0)
	for {
		blk, ok := bb.NextBlock()
		if !ok {
			break
		}
		bounds = append(bounds, blk...)
	}
	bb.Close()
	if !reflect.DeepEqual(bounds, []uint64{3, 3, 4, 5, 5, 9}) {
		t.Fatalf("bounds = %v", bounds)
	}
	// Walk a hybrid CSE over it: the walker must skip the empty groups.
	base := []uint32{10, 11, 12, 13, 14, 15}
	c := cse.New(cse.NewBaseLevel(base))
	if err := c.Push(dl); err != nil {
		t.Fatal(err)
	}
	w, err := cse.NewWalker(c, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	want := [][]uint32{
		{10, 1}, {10, 2}, {10, 3}, {12, 4}, {13, 5}, {15, 6}, {15, 7}, {15, 8}, {15, 9},
	}
	for i := 0; ; i++ {
		emb, _, ok := w.Next()
		if !ok {
			break
		}
		if i >= len(want) || !reflect.DeepEqual(append([]uint32(nil), emb...), want[i]) {
			t.Fatalf("embedding %d = %v, want %v", i, emb, want[i])
		}
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCntChunkBoundaries checks ParentOf and GroupStart exactly at the sparse
// index's CntChunk seams, single- and multi-part.
func TestCntChunkBoundaries(t *testing.T) {
	n := 2*CntChunk + 3
	groups := make([][]uint32, n)
	for i := range groups {
		groups[i] = []uint32{uint32(i)}
	}
	for _, nparts := range []int{1, 2} {
		ml, dl, _ := buildBoth(t, groups, nparts, false)
		for _, g := range []int{0, 1, CntChunk - 1, CntChunk, CntChunk + 1, 2*CntChunk - 1, 2 * CntChunk, n - 1, n} {
			ms, merr := ml.GroupStart(g)
			ds, derr := dl.GroupStart(g)
			if merr != nil || derr != nil || ms != ds {
				t.Fatalf("nparts %d: GroupStart(%d) = %d (%v) vs %d (%v)", nparts, g, ms, merr, ds, derr)
			}
		}
		for _, i := range []int{0, CntChunk - 1, CntChunk, CntChunk + 1, 2*CntChunk - 1, 2 * CntChunk, n - 1} {
			mp, merr := ml.ParentOf(i)
			dp, derr := dl.ParentOf(i)
			if merr != nil || derr != nil || mp != dp {
				t.Fatalf("nparts %d: ParentOf(%d) = %d (%v) vs %d (%v)", nparts, i, mp, merr, dp, derr)
			}
		}
	}
}

// TestParentOfSurfacesCorruption: a broken cnt file must turn into an error
// from ParentOf — and hence a failed walker seed — not a silent wrong parent.
func TestParentOfSurfacesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	groups := randGroups(rng, 120)
	_, dl, _ := buildBoth(t, groups, 1, false)
	if dl.Len() == 0 {
		t.Skip("empty level")
	}
	if err := os.Truncate(dl.parts[0].cf.Name(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := dl.ParentOf(dl.Len() - 1); err == nil {
		t.Fatal("ParentOf on truncated cnt file returned no error")
	}
	base := make([]uint32, dl.Groups())
	c := cse.New(cse.NewBaseLevel(base))
	if err := c.Push(dl); err != nil {
		t.Fatal(err)
	}
	if _, err := cse.NewWalker(c, 1, dl.Len()); err == nil {
		t.Fatal("walker seeded from corrupt level without error")
	}
}

// TestWalkerMixedLevelStack walks every mem/disk combination of a 3-level
// stack (the §4.1 hybrid configuration) and compares to the all-memory walk.
func TestWalkerMixedLevelStack(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := make([]uint32, 40)
	for i := range base {
		base[i] = uint32(i + 100)
	}
	groups2 := randGroups(rng, len(base))
	groups2[0] = []uint32{1, 2, 3} // ensure a non-empty level
	ml2, dl2, _ := buildBoth(t, groups2, 2, false)
	groups3 := randGroups(rng, ml2.Len())
	groups3[ml2.Len()-1] = []uint32{7, 8} // exercise the last group
	ml3, dl3, _ := buildBoth(t, groups3, 3, false)

	stack := func(l2, l3 cse.LevelData) *cse.CSE {
		c := cse.New(cse.NewBaseLevel(base))
		if err := c.Push(l2); err != nil {
			t.Fatal(err)
		}
		if err := c.Push(l3); err != nil {
			t.Fatal(err)
		}
		return c
	}
	walk := func(c *cse.CSE, lo, hi int) ([][]uint32, []int) {
		w, err := cse.NewWalker(c, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		var embs [][]uint32
		var chs []int
		for {
			emb, ch, ok := w.Next()
			if !ok {
				break
			}
			embs = append(embs, append([]uint32(nil), emb...))
			chs = append(chs, ch)
		}
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		return embs, chs
	}

	ref := stack(ml2, ml3)
	n := ml3.Len()
	variants := map[string]*cse.CSE{
		"disk2-mem3":  stack(dl2, ml3),
		"mem2-disk3":  stack(ml2, dl3),
		"disk2-disk3": stack(dl2, dl3),
	}
	ranges := [][2]int{{0, n}, {1, n}, {n / 3, 2 * n / 3}, {n - 1, n}}
	for _, r := range ranges {
		wantE, wantC := walk(ref, r[0], r[1])
		for name, c := range variants {
			gotE, gotC := walk(c, r[0], r[1])
			if !reflect.DeepEqual(gotE, wantE) || !reflect.DeepEqual(gotC, wantC) {
				t.Fatalf("%s range %v: walk differs from all-memory", name, r)
			}
		}
	}
}

func TestChunkIndexLargeLevel(t *testing.T) {
	// More than CntChunk groups exercises the sparse index path.
	rng := rand.New(rand.NewSource(13))
	groups := make([][]uint32, CntChunk+500)
	for i := range groups {
		g := make([]uint32, rng.Intn(3))
		for j := range g {
			g[j] = rng.Uint32() % 100
		}
		groups[i] = g
	}
	ml, dl, _ := buildBoth(t, groups, 2, false)
	for _, i := range []int{0, 1, ml.Len() / 2, ml.Len() - 1} {
		mp, merr := ml.ParentOf(i)
		dp, derr := dl.ParentOf(i)
		if merr != nil || derr != nil || mp != dp {
			t.Fatalf("ParentOf(%d): %d (%v) vs %d (%v)", i, mp, merr, dp, derr)
		}
	}
}

// TestWriteQueueAbort checks the cancellation contract: after Abort, pending
// and new submissions are discarded (buffers recycled, nothing written) while
// barrier jobs still drain; Reset re-arms the queue and clears its error.
func TestWriteQueueAbort(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "q.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	q := NewWriteQueue(64, nil)
	defer q.Close()

	buf := append(q.GetBuf(), 1, 2, 3, 4)
	q.Submit(plainFile{f}, buf)
	if err := q.Barrier(); err != nil {
		t.Fatal(err)
	}

	q.Abort()
	buf = append(q.GetBuf(), 5, 6, 7, 8)
	q.Submit(plainFile{f}, buf)
	if err := q.Barrier(); err != nil { // barrier drains even while aborted
		t.Fatal(err)
	}
	if st, _ := f.Stat(); st.Size() != 4 {
		t.Fatalf("aborted write landed: %d bytes", st.Size())
	}

	if err := q.Reset(); err != nil {
		t.Fatal(err)
	}
	buf = append(q.GetBuf(), 9, 10)
	q.Submit(plainFile{f}, buf)
	if err := q.Barrier(); err != nil {
		t.Fatal(err)
	}
	if st, _ := f.Stat(); st.Size() != 6 {
		t.Fatalf("post-reset write missing: %d bytes", st.Size())
	}
}

// TestWriteQueueResetClearsError checks that a write error recorded before
// Abort does not leak into the next operation after Reset.
func TestWriteQueueResetClearsError(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "closed.bin"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close() // closed: the write must fail
	q := NewWriteQueue(64, nil)
	defer q.Close()
	q.Submit(plainFile{f}, append(q.GetBuf(), 1))
	if err := q.Barrier(); err == nil {
		t.Fatal("write to closed file succeeded")
	}
	q.Abort()
	if err := q.Reset(); err == nil {
		t.Fatal("Reset returned no error to clear")
	}
	if err := q.Err(); err != nil {
		t.Fatalf("error survived Reset: %v", err)
	}
}
