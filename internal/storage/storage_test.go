package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kaleido/internal/cse"
	"kaleido/internal/memtrack"
)

// buildBoth writes the same groups through a MemLevelBuilder and a
// DiskLevelBuilder (t parts) and returns both levels.
func buildBoth(t *testing.T, groups [][]uint32, nparts int, withPred bool) (*cse.MemLevel, *DiskLevel, *memtrack.Tracker) {
	t.Helper()
	tracker := memtrack.New()
	q := NewWriteQueue(64, tracker) // tiny buffers force frequent queue traffic
	t.Cleanup(func() { q.Close() })

	mb := cse.NewMemLevelBuilder(nparts)
	db, err := NewDiskLevelBuilder(t.TempDir(), 2, nparts, q, 128, tracker)
	if err != nil {
		t.Fatal(err)
	}
	// Split the groups into nparts contiguous ranges.
	per := (len(groups) + nparts - 1) / nparts
	for i := 0; i < nparts; i++ {
		lo := i * per
		hi := lo + per
		if lo > len(groups) {
			lo = len(groups)
		}
		if hi > len(groups) {
			hi = len(groups)
		}
		for _, g := range groups[lo:hi] {
			var preds []uint32
			if withPred {
				preds = make([]uint32, len(g))
				for j := range preds {
					preds[j] = g[j] % 7
				}
			}
			if err := mb.Part(i).AppendGroup(g, preds); err != nil {
				t.Fatal(err)
			}
			if err := db.Part(i).AppendGroup(g, preds); err != nil {
				t.Fatal(err)
			}
		}
		if err := mb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ml, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	dl, err := db.Finish()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dl.Close() })
	return ml.(*cse.MemLevel), dl.(*DiskLevel), tracker
}

func randGroups(rng *rand.Rand, n int) [][]uint32 {
	groups := make([][]uint32, n)
	for i := range groups {
		sz := rng.Intn(5)
		if rng.Intn(10) == 0 {
			sz = rng.Intn(50) // occasional big group
		}
		g := make([]uint32, sz)
		for j := range g {
			g[j] = rng.Uint32() % 1000
		}
		groups[i] = g
	}
	return groups
}

// TestDiskLevelMatchesMemLevel is the conformance property: every LevelData
// operation must agree between the two implementations.
func TestDiskLevelMatchesMemLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		groups := randGroups(rng, 1+rng.Intn(400))
		nparts := 1 + rng.Intn(4)
		ml, dl, _ := buildBoth(t, groups, nparts, trial%2 == 0)

		if ml.Len() != dl.Len() || ml.Groups() != dl.Groups() {
			t.Fatalf("trial %d: shape %d/%d vs %d/%d", trial, ml.Len(), ml.Groups(), dl.Len(), dl.Groups())
		}
		// Full and random sub-range vert cursors.
		for r := 0; r < 6; r++ {
			lo := rng.Intn(ml.Len() + 1)
			hi := lo + rng.Intn(ml.Len()-lo+1)
			if r == 0 {
				lo, hi = 0, ml.Len()
			}
			mc, dc := ml.VertCursor(lo, hi), dl.VertCursor(lo, hi)
			for {
				mv, mok := mc.Next()
				dv, dok := dc.Next()
				if mok != dok || mv != dv {
					t.Fatalf("trial %d range [%d,%d): mem (%d,%v) disk (%d,%v)", trial, lo, hi, mv, mok, dv, dok)
				}
				if !mok {
					break
				}
			}
			if err := dc.Err(); err != nil {
				t.Fatal(err)
			}
			dc.Close()
		}
		// ParentOf at every index.
		for i := 0; i < ml.Len(); i++ {
			if mp, dp := ml.ParentOf(i), dl.ParentOf(i); mp != dp {
				t.Fatalf("trial %d: ParentOf(%d) = %d vs %d", trial, i, mp, dp)
			}
		}
		// Bound cursors from several starting groups.
		for r := 0; r < 5; r++ {
			first := rng.Intn(ml.Groups())
			mc, dc := ml.BoundCursor(first), dl.BoundCursor(first)
			for n := 0; n < 50; n++ {
				mv, mok := mc.Next()
				dv, dok := dc.Next()
				if mok != dok || mv != dv {
					t.Fatalf("trial %d bounds from %d: mem (%d,%v) disk (%d,%v)", trial, first, mv, mok, dv, dok)
				}
				if !mok {
					break
				}
			}
			dc.Close()
		}
		// Prediction segments agree.
		if !reflect.DeepEqual(ml.Predicted(), dl.Predicted()) {
			t.Fatalf("trial %d: predictions differ: %v vs %v", trial, ml.Predicted(), dl.Predicted())
		}
	}
}

// TestWalkerOverDiskLevel runs the CSE walker over a hybrid CSE (memory base
// + disk top) and compares to an all-memory CSE.
func TestWalkerOverDiskLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := make([]uint32, 60)
	for i := range base {
		base[i] = uint32(i)
	}
	groups := randGroups(rng, 60)
	ml, dl, _ := buildBoth(t, groups, 3, false)

	mem := cse.New(cse.NewBaseLevel(base))
	if err := mem.Push(ml); err != nil {
		t.Fatal(err)
	}
	hyb := cse.New(cse.NewBaseLevel(base))
	if err := hyb.Push(dl); err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, ml.Len()}, {5, ml.Len() / 2}, {ml.Len() / 3, ml.Len()}} {
		mw, err := cse.NewWalker(mem, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		dw, err := cse.NewWalker(hyb, r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		for {
			me, mch, mok := mw.Next()
			de, dch, dok := dw.Next()
			if mok != dok || mch != dch || !reflect.DeepEqual(me, de) {
				t.Fatalf("range %v: mem (%v,%d,%v) disk (%v,%d,%v)", r, me, mch, mok, de, dch, dok)
			}
			if !mok {
				break
			}
		}
		if err := dw.Err(); err != nil {
			t.Fatal(err)
		}
		mw.Close()
		dw.Close()
	}
}

func TestIOAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	groups := randGroups(rng, 200)
	_, dl, tracker := buildBoth(t, groups, 2, false)
	_, w := tracker.IOTotals()
	if want := dl.DiskBytes(); w != want {
		t.Fatalf("write bytes = %d, want %d", w, want)
	}
	c := dl.VertCursor(0, dl.Len())
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	c.Close()
	r, _ := tracker.IOTotals()
	if r < int64(dl.Len())*4 {
		t.Fatalf("read bytes = %d, want ≥ %d", r, dl.Len()*4)
	}
}

func TestTruncatedVertFile(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	groups := randGroups(rng, 100)
	_, dl, _ := buildBoth(t, groups, 1, false)
	// Truncate the vert file behind the level's back.
	if err := os.Truncate(dl.parts[0].vf.Name(), int64(dl.Len()*4/2)); err != nil {
		t.Fatal(err)
	}
	c := dl.VertCursor(0, dl.Len())
	defer c.Close()
	n := 0
	for {
		if _, ok := c.Next(); !ok {
			break
		}
		n++
	}
	if c.Err() == nil {
		t.Fatalf("read %d/%d units from truncated file without error", n, dl.Len())
	}
}

func TestFinishDetectsShortFiles(t *testing.T) {
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	dir := t.TempDir()
	db, err := NewDiskLevelBuilder(dir, 3, 1, q, 0, tracker)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Part(0).AppendGroup([]uint32{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	// Flush "forgotten" — Finish must detect the size mismatch (the write
	// buffers were never submitted).
	if _, err := db.Finish(); err == nil {
		t.Fatal("Finish accepted un-flushed part")
	}
	// Abort must have removed the files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("abort left %d files behind", len(entries))
	}
}

func TestWriteQueueErrorPropagation(t *testing.T) {
	q := NewWriteQueue(0, nil)
	defer q.Close()
	f, err := os.Open(os.DevNull) // read-only: writes must fail
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := q.GetBuf()
	buf = append(buf, 1, 2, 3, 4)
	q.Submit(f, buf)
	if err := q.Barrier(); err == nil {
		t.Fatal("write to read-only file reported no error")
	}
}

func TestEmptyParts(t *testing.T) {
	// All groups in part 0; parts 1,2 completely empty.
	groups := [][]uint32{{1, 2}, {}, {3}}
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	db, err := NewDiskLevelBuilder(t.TempDir(), 2, 3, q, 0, tracker)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if err := db.Part(0).AppendGroup(g, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := db.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lvl, err := db.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer lvl.Close()
	if lvl.Len() != 3 || lvl.Groups() != 3 {
		t.Fatalf("shape %d/%d", lvl.Len(), lvl.Groups())
	}
	c := lvl.VertCursor(0, 3)
	defer c.Close()
	var got []uint32
	for {
		v, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if !reflect.DeepEqual(got, []uint32{1, 2, 3}) {
		t.Fatalf("verts = %v", got)
	}
}

func TestCloseRemovesFiles(t *testing.T) {
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	dir := t.TempDir()
	db, err := NewDiskLevelBuilder(dir, 2, 2, q, 0, tracker)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := db.Part(i).AppendGroup([]uint32{uint32(i)}, nil); err != nil {
			t.Fatal(err)
		}
		if err := db.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lvl, err := db.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := lvl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lvl.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("Close left files: %v", files)
	}
}

func TestChunkIndexLargeLevel(t *testing.T) {
	// More than CntChunk groups exercises the sparse index path.
	rng := rand.New(rand.NewSource(13))
	groups := make([][]uint32, CntChunk+500)
	for i := range groups {
		g := make([]uint32, rng.Intn(3))
		for j := range g {
			g[j] = rng.Uint32() % 100
		}
		groups[i] = g
	}
	ml, dl, _ := buildBoth(t, groups, 2, false)
	for _, i := range []int{0, 1, ml.Len() / 2, ml.Len() - 1} {
		if ml.ParentOf(i) != dl.ParentOf(i) {
			t.Fatalf("ParentOf(%d): %d vs %d", i, ml.ParentOf(i), dl.ParentOf(i))
		}
	}
}
