package storage

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"syscall"
	"time"

	"kaleido/internal/memtrack"
	"kaleido/internal/storage/vfs"
)

// Typed spill-path error taxonomy. Every error escaping the storage layer
// wraps exactly one of these sentinels, so callers classify failures with
// errors.Is instead of string matching.
var (
	// ErrSpillIO marks an I/O failure on a spill file that persisted after
	// bounded retries (or was not worth retrying).
	ErrSpillIO = errors.New("spill I/O failure")
	// ErrSpillCorrupt marks a spill block whose content failed validation —
	// checksum mismatch, bad version, truncation, or impossible header.
	// Never retried: the bytes on disk are wrong, not the transport.
	ErrSpillCorrupt = errors.New("spill data corrupt")
	// ErrNoSpace marks a hard out-of-space failure (ENOSPC). Never retried:
	// the governor stops spilling and the run aborts cleanly.
	ErrNoSpace = errors.New("no space left for spill")
)

// CorruptError pinpoints a corrupt spill block: which file, which block
// within it, and what failed. It unwraps to ErrSpillCorrupt.
type CorruptError struct {
	// Path is the spill file containing the bad block.
	Path string
	// Block is the zero-based index of the bad block within the file region
	// being decoded.
	Block int
	// Detail says what validation failed.
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("storage: %s block %d of %s: %s", ErrSpillCorrupt.Error(), e.Block, e.Path, e.Detail)
}

func (e *CorruptError) Unwrap() error { return ErrSpillCorrupt }

// corruptAt wraps err (or a plain detail) into a CorruptError carrying block
// coordinates.
func corruptAt(path string, block int, err error) error {
	return &CorruptError{Path: path, Block: block, Detail: err.Error()}
}

// wrapIO classifies err as ErrNoSpace (ENOSPC) or ErrSpillIO and wraps it
// with the failing operation and path. Both the sentinel and the original
// error stay reachable through errors.Is/As.
func wrapIO(op, path string, err error) error {
	sentinel := ErrSpillIO
	if errors.Is(err, syscall.ENOSPC) {
		sentinel = ErrNoSpace
	}
	return fmt.Errorf("storage: %s %s: %w: %w", op, path, sentinel, err)
}

// retryable reports whether err is worth retrying: transient I/O errors are,
// while nil, out-of-space, corruption, and truncation (EOF on a read that
// expected data — the file is short, rereading won't grow it) are not.
func retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, syscall.ENOSPC):
		return false
	case errors.Is(err, ErrSpillCorrupt):
		return false
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return false
	}
	return true
}

// Retry policy for transient spill I/O errors: up to retryAttempts retries
// with exponential backoff from retryBase capped at retryCap, plus up to 50%
// jitter so concurrent workers don't retry in lockstep.
const (
	retryAttempts = 5
	retryBase     = time.Millisecond
	retryCap      = 100 * time.Millisecond
)

// sleepBackoff sleeps the backoff for the given zero-based attempt, returning
// early with false if cancel closes first (nil cancel never fires). Reports
// true when the full backoff elapsed and the caller should retry.
func sleepBackoff(attempt int, cancel <-chan struct{}) bool {
	d := retryBase << uint(attempt)
	if d > retryCap {
		d = retryCap
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}

// retryReadAt fully reads len(buf) bytes at off, retrying transient errors
// with backoff. EOF / short reads mean the file is truncated and surface as
// corruption; other exhausted or hard errors surface via wrapIO. cancel may
// be nil (no cancellation); each retry is counted on tracker when non-nil.
func retryReadAt(f vfs.File, buf []byte, off int64, cancel <-chan struct{}, tracker *memtrack.Tracker) error {
	for attempt := 0; ; attempt++ {
		_, err := f.ReadAt(buf, off)
		if err == nil {
			return nil
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("storage: read %d bytes at %d of %s: truncated: %w: %w",
				len(buf), off, f.Name(), ErrSpillCorrupt, err)
		}
		if !retryable(err) || attempt >= retryAttempts {
			return wrapIO("read", f.Name(), err)
		}
		if tracker != nil {
			tracker.NoteIORetry()
		}
		if !sleepBackoff(attempt, cancel) {
			return wrapIO("read", f.Name(), err)
		}
	}
}
