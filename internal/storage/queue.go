// Package storage implements Kaleido's half-memory-half-disk hybrid storage
// for CSE levels (paper §4.1, Fig. 7). Levels are built in t parts; every
// part starts in memory and a budget governor migrates the largest in-flight
// parts to disk when the resident bytes cross the spill watermark
// (HybridLevelBuilder), so one level's parts can be split between RAM and
// disk. Migrated parts are written through a single writing queue that keeps
// disk writes sequential; reading streams them back through sliding-window
// prefetch cursors, so the I/O of the next window is hidden behind the
// computation on the current one. DiskLevel remains as the all-disk level
// representation (and the degenerate hybrid case of a zero budget).
//
// Spilled bytes are compressed by default (Compression, codec.go): vertex
// IDs as group-varint zigzag deltas and group counts frame-of-reference
// coded, in self-delimiting versioned blocks (version 2: a CRC32C of the
// payload sits between the header and the payload, verified on every
// whole-block decode) that decode whole-block into the pooled prefetch
// buffers. Version-1 blocks — the pre-checksum format — are cleanly
// rejected, not decoded: spill files are single-run scratch, so no
// cross-version reader is needed. The per-part block directory gives the
// cursors and the random-access readers block-granular seeks into the
// compressed streams.
//
// Residency is three-state (resident.go): raw-mem (plain []uint32 slices,
// zero-copy reads) → compressed-mem (the same codec blocks held in memory,
// decoded by the cursors without any file handle or vfs traffic, charged
// to the budget at physical size) → disk. The governor compresses the
// largest sealed raw parts in place (CompressPart) before spilling, and
// because the in-memory and on-disk encodings are byte-identical, a
// compressed part migrates to disk — and is promoted back — as a verbatim
// block copy. ResidentCompression (a second Compression knob on the
// builder) gates the middle state; CompressedParts and
// ResidentBytesLogical expose the transition count and the raw footprint
// the resident bytes stand for.
//
// The spill path is hardened against I/O failure: all file access goes
// through the vfs seam (package vfs) so tests inject faults; transient write
// and read errors are retried with bounded exponential backoff + jitter;
// checksum or truncation failures surface as ErrSpillCorrupt with block
// coordinates; ENOSPC is terminal — the governor stops spilling and the run
// aborts cleanly with ErrNoSpace.
package storage

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"

	"kaleido/internal/memtrack"
	"kaleido/internal/storage/vfs"
)

// DefaultBufSize is the per-part write buffer size. The paper uses a fixed
// 16 MB buffer per thread; the default here is smaller because the scaled
// datasets are smaller, and it is configurable either way.
const DefaultBufSize = 1 << 20

// WriteQueue serializes buffer flushes from many writer goroutines onto one
// I/O goroutine — the paper's "writing queue". Buffers are recycled through
// a pool. Compression happens on the writer side, not here: encoding on the
// worker that just produced the values keeps the data cache-hot and scales
// with the worker count, and the queue stays a pure byte sink.
//
// Transient write errors (EIO, short writes) are retried with bounded
// backoff; a hard error (ENOSPC, retries exhausted) latches the queue into a
// failed state — subsequent buffers are discarded, Failed() lets producers
// stop early, and Err() carries the typed first error to the operation's
// Barrier.
type WriteQueue struct {
	jobs    chan wjob
	wg      sync.WaitGroup
	pool    sync.Pool
	tracker *memtrack.Tracker

	// aborted makes the I/O goroutine discard buffers instead of writing
	// them — the cancellation path of a failed operation (see Abort).
	aborted atomic.Bool
	// failed latches when a write gave up: like aborted it switches the
	// queue to discard mode, but it is set by the I/O goroutine itself and
	// carries an error.
	failed atomic.Bool

	mu      sync.Mutex
	err     error
	abortCh chan struct{} // closed by Abort; recreated by Reset
}

type wjob struct {
	f    vfs.File
	buf  []byte
	done chan struct{} // non-nil for barrier jobs
}

// NewWriteQueue starts the queue's I/O goroutine. tracker may be nil.
func NewWriteQueue(bufSize int, tracker *memtrack.Tracker) *WriteQueue {
	if bufSize <= 0 {
		bufSize = DefaultBufSize
	}
	q := &WriteQueue{
		jobs:    make(chan wjob, 64),
		tracker: tracker,
		abortCh: make(chan struct{}),
	}
	q.pool.New = func() any { return make([]byte, 0, bufSize) }
	q.wg.Add(1)
	go q.run()
	return q
}

func (q *WriteQueue) run() {
	defer q.wg.Done()
	for j := range q.jobs {
		if j.done != nil {
			close(j.done)
			continue
		}
		if q.aborted.Load() || q.failed.Load() {
			q.pool.Put(j.buf[:0])
			continue
		}
		if err := q.writeAll(j.f, j.buf); err != nil {
			// Record the error before latching failed: producers that see
			// Failed() must find the typed error already at Err().
			q.mu.Lock()
			if q.err == nil {
				q.err = wrapIO("write", j.f.Name(), err)
			}
			q.mu.Unlock()
			q.failed.Store(true)
		} else if q.tracker != nil {
			q.tracker.WriteIO(int64(len(j.buf)))
		}
		q.pool.Put(j.buf[:0])
	}
}

// writeAll appends buf to f, retrying transient errors and short writes with
// bounded backoff. Forward progress (any bytes accepted) re-arms the retry
// budget; Abort interrupts an in-flight backoff sleep immediately.
func (q *WriteQueue) writeAll(f vfs.File, buf []byte) error {
	abort := q.abortSignal()
	for attempt := 0; ; {
		n, err := f.Write(buf)
		if n > 0 {
			buf = buf[n:]
			attempt = 0
		}
		if err == nil {
			if len(buf) == 0 {
				return nil
			}
			err = io.ErrShortWrite
		}
		if retriable := errors.Is(err, io.ErrShortWrite) || retryable(err); !retriable || attempt >= retryAttempts {
			return err
		}
		if q.tracker != nil {
			q.tracker.NoteIORetry()
		}
		if !sleepBackoff(attempt, abort) {
			return err // aborted mid-backoff: surface promptly
		}
		attempt++
	}
}

// abortSignal returns the channel Abort closes. It is re-created by Reset,
// so readers must fetch it under the lock rather than caching it.
func (q *WriteQueue) abortSignal() <-chan struct{} {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.abortCh
}

// GetBuf returns an empty buffer from the pool.
func (q *WriteQueue) GetBuf() []byte { return q.pool.Get().([]byte)[:0] }

// Submit enqueues buf for appending to f. The buffer is owned by the queue
// after the call; get a fresh one with GetBuf.
func (q *WriteQueue) Submit(f vfs.File, buf []byte) {
	if len(buf) == 0 {
		q.pool.Put(buf[:0])
		return
	}
	q.jobs <- wjob{f: f, buf: buf}
}

// Abort switches the queue into discard mode: pending and subsequently
// submitted buffers are recycled unwritten until Reset. The write in flight,
// if any, completes — except that a backoff sleep inside its retry loop is
// interrupted immediately, so aborting never waits out a retry schedule.
// Abort the queue before closing or removing the files the pending buffers
// target, then Barrier to drain and Reset to re-arm.
func (q *WriteQueue) Abort() {
	if q.aborted.CompareAndSwap(false, true) {
		q.mu.Lock()
		close(q.abortCh)
		q.mu.Unlock()
	}
}

// Failed reports whether a write gave up and latched the queue into discard
// mode. Producers poll this to stop building work for a doomed operation;
// the typed error is at Err.
func (q *WriteQueue) Failed() bool { return q.failed.Load() }

// Reset re-arms an aborted or failed queue for the next operation, clearing
// and returning any recorded write error (the failed operation owns it; the
// next one starts clean).
func (q *WriteQueue) Reset() error {
	q.mu.Lock()
	if q.aborted.Load() {
		q.abortCh = make(chan struct{})
	}
	err := q.err
	q.err = nil
	q.mu.Unlock()
	q.aborted.Store(false)
	q.failed.Store(false)
	return err
}

// Barrier blocks until every previously submitted buffer has been written.
func (q *WriteQueue) Barrier() error {
	done := make(chan struct{})
	q.jobs <- wjob{done: done}
	<-done
	return q.Err()
}

// Err returns the first write error.
func (q *WriteQueue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Close drains the queue and stops the I/O goroutine.
func (q *WriteQueue) Close() error {
	close(q.jobs)
	q.wg.Wait()
	return q.Err()
}
