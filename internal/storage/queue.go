// Package storage implements Kaleido's half-memory-half-disk hybrid storage
// for CSE levels (paper §4.1, Fig. 7). Levels are built in t parts; every
// part starts in memory and a budget governor migrates the largest in-flight
// parts to disk when the resident bytes cross the spill watermark
// (HybridLevelBuilder), so one level's parts can be split between RAM and
// disk. Migrated parts are written through a single writing queue that keeps
// disk writes sequential; reading streams them back through sliding-window
// prefetch cursors, so the I/O of the next window is hidden behind the
// computation on the current one. DiskLevel remains as the all-disk level
// representation (and the degenerate hybrid case of a zero budget).
//
// Spilled bytes are compressed by default (Compression, codec.go): vertex
// IDs as group-varint zigzag deltas and group counts frame-of-reference
// coded, in self-delimiting versioned blocks that decode whole-block into
// the pooled prefetch buffers. Resident parts stay raw — the representation
// follows the placement — and the per-part block directory gives the
// cursors and the random-access readers block-granular seeks into the
// compressed streams.
package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"kaleido/internal/memtrack"
)

// DefaultBufSize is the per-part write buffer size. The paper uses a fixed
// 16 MB buffer per thread; the default here is smaller because the scaled
// datasets are smaller, and it is configurable either way.
const DefaultBufSize = 1 << 20

// WriteQueue serializes buffer flushes from many writer goroutines onto one
// I/O goroutine — the paper's "writing queue". Buffers are recycled through
// a pool. Compression happens on the writer side, not here: encoding on the
// worker that just produced the values keeps the data cache-hot and scales
// with the worker count, and the queue stays a pure byte sink.
type WriteQueue struct {
	jobs    chan wjob
	wg      sync.WaitGroup
	pool    sync.Pool
	tracker *memtrack.Tracker

	// aborted makes the I/O goroutine discard buffers instead of writing
	// them — the cancellation path of a failed operation (see Abort).
	aborted atomic.Bool

	mu  sync.Mutex
	err error
}

type wjob struct {
	f    *os.File
	buf  []byte
	done chan struct{} // non-nil for barrier jobs
}

// NewWriteQueue starts the queue's I/O goroutine. tracker may be nil.
func NewWriteQueue(bufSize int, tracker *memtrack.Tracker) *WriteQueue {
	if bufSize <= 0 {
		bufSize = DefaultBufSize
	}
	q := &WriteQueue{
		jobs:    make(chan wjob, 64),
		tracker: tracker,
	}
	q.pool.New = func() any { return make([]byte, 0, bufSize) }
	q.wg.Add(1)
	go q.run()
	return q
}

func (q *WriteQueue) run() {
	defer q.wg.Done()
	for j := range q.jobs {
		if j.done != nil {
			close(j.done)
			continue
		}
		if q.aborted.Load() {
			q.pool.Put(j.buf[:0])
			continue
		}
		if _, err := j.f.Write(j.buf); err != nil {
			q.mu.Lock()
			if q.err == nil {
				q.err = fmt.Errorf("storage: write queue: %w", err)
			}
			q.mu.Unlock()
		} else if q.tracker != nil {
			q.tracker.WriteIO(int64(len(j.buf)))
		}
		q.pool.Put(j.buf[:0])
	}
}

// GetBuf returns an empty buffer from the pool.
func (q *WriteQueue) GetBuf() []byte { return q.pool.Get().([]byte)[:0] }

// Submit enqueues buf for appending to f. The buffer is owned by the queue
// after the call; get a fresh one with GetBuf.
func (q *WriteQueue) Submit(f *os.File, buf []byte) {
	if len(buf) == 0 {
		q.pool.Put(buf[:0])
		return
	}
	q.jobs <- wjob{f: f, buf: buf}
}

// Abort switches the queue into discard mode: pending and subsequently
// submitted buffers are recycled unwritten until Reset. The write in flight,
// if any, completes — cancelling an operation drains in-flight writes and
// aborts pending ones. Abort the queue before closing or removing the files
// the pending buffers target, then Barrier to drain and Reset to re-arm.
func (q *WriteQueue) Abort() { q.aborted.Store(true) }

// Reset re-arms an aborted queue for the next operation, clearing and
// returning any recorded write error (the failed operation owns it; the next
// one starts clean).
func (q *WriteQueue) Reset() error {
	q.aborted.Store(false)
	q.mu.Lock()
	defer q.mu.Unlock()
	err := q.err
	q.err = nil
	return err
}

// Barrier blocks until every previously submitted buffer has been written.
func (q *WriteQueue) Barrier() error {
	done := make(chan struct{})
	q.jobs <- wjob{done: done}
	<-done
	return q.Err()
}

// Err returns the first write error.
func (q *WriteQueue) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// Close drains the queue and stops the I/O goroutine.
func (q *WriteQueue) Close() error {
	close(q.jobs)
	q.wg.Wait()
	return q.Err()
}
