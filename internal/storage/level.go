package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"kaleido/internal/cse"
	"kaleido/internal/memtrack"
)

// CntChunk is the group granularity of the in-memory random-access index
// kept per on-disk level: one cumulative child count every CntChunk groups.
// Random access (only used to locate the t partition starts of an iteration)
// costs one bounded pread; sequential access never touches the index.
const CntChunk = 4096

// DiskLevel is a CSE level stored on disk in t parts, written during the
// previous exploration iteration (Fig. 7). Each part holds two append-only
// files: vert (uint32 children) and cnt (uint32 children-per-group). Only a
// sparse index (one uint64 per CntChunk groups) stays in memory.
type DiskLevel struct {
	parts       []diskPartMeta
	totalVerts  int
	totalGroups int
	pred        []cse.PredSeg
	blockSize   int
	tracker     *memtrack.Tracker
	closed      bool
}

var _ cse.LevelData = (*DiskLevel)(nil)

type diskPartMeta struct {
	vf, cf    *os.File
	numVerts  int
	numGroups int
	vertBase  int
	groupBase int
	// chunkCum[j] = number of children in this part's groups [0, j·CntChunk).
	chunkCum []uint64
}

// Len implements cse.LevelData.
func (d *DiskLevel) Len() int { return d.totalVerts }

// Groups implements cse.LevelData.
func (d *DiskLevel) Groups() int { return d.totalGroups }

// Predicted implements cse.LevelData.
func (d *DiskLevel) Predicted() []cse.PredSeg { return d.pred }

// Bytes reports only the resident footprint: the sparse index and prediction
// segments (the verts and cnts live on disk).
func (d *DiskLevel) Bytes() int64 {
	var b int64
	for i := range d.parts {
		b += int64(len(d.parts[i].chunkCum)) * 8
	}
	return b + int64(len(d.pred))*16
}

// DiskBytes reports the on-disk footprint of the level.
func (d *DiskLevel) DiskBytes() int64 {
	return int64(d.totalVerts)*4 + int64(d.totalGroups)*4
}

// Close closes and removes the level's backing files. The data is scratch
// output of one exploration run, useless once the level is dropped.
func (d *DiskLevel) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	var first error
	for i := range d.parts {
		for _, f := range []*os.File{d.parts[i].vf, d.parts[i].cf} {
			name := f.Name()
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			if err := os.Remove(name); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// partForVert returns the part containing global vert index i.
func (d *DiskLevel) partForVert(i int) *diskPartMeta {
	p := sort.Search(len(d.parts), func(x int) bool { return d.parts[x].vertBase > i }) - 1
	return &d.parts[p]
}

// partForGroup returns the part containing global group index g.
func (d *DiskLevel) partForGroup(g int) *diskPartMeta {
	p := sort.Search(len(d.parts), func(x int) bool { return d.parts[x].groupBase > g }) - 1
	return &d.parts[p]
}

// readCnts reads the cnt entries [lo, hi) of a part.
func (d *DiskLevel) readCnts(pm *diskPartMeta, lo, hi int) ([]uint32, error) {
	buf := make([]byte, 4*(hi-lo))
	if _, err := pm.cf.ReadAt(buf, int64(4*lo)); err != nil {
		return nil, fmt.Errorf("storage: cnt read [%d,%d) of %s: %w", lo, hi, pm.cf.Name(), err)
	}
	if d.tracker != nil {
		d.tracker.ReadIO(int64(len(buf)))
	}
	out := make([]uint32, hi-lo)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return out, nil
}

// ParentOf implements cse.LevelData: sparse index + one bounded cnt read.
func (d *DiskLevel) ParentOf(i int) int {
	pm := d.partForVert(i)
	li := uint64(i - pm.vertBase)
	j := sort.Search(len(pm.chunkCum), func(x int) bool { return pm.chunkCum[x] > li }) - 1
	lo := j * CntChunk
	hi := lo + CntChunk
	if hi > pm.numGroups {
		hi = pm.numGroups
	}
	cnts, err := d.readCnts(pm, lo, hi)
	if err != nil {
		// ParentOf is used only to seed walkers at partition starts; the
		// walker will surface the corruption as a stream error. Returning
		// the chunk base keeps the call total.
		return pm.groupBase + lo
	}
	cum := pm.chunkCum[j]
	for idx, c := range cnts {
		if li < cum+uint64(c) {
			return pm.groupBase + lo + idx
		}
		cum += uint64(c)
	}
	return pm.groupBase + hi - 1
}

// offAt returns the global offs value of group g (the global vert index
// where g's children start); g may equal Groups() to address the end.
func (d *DiskLevel) offAt(g int) (uint64, error) {
	if g >= d.totalGroups {
		return uint64(d.totalVerts), nil
	}
	pm := d.partForGroup(g)
	lg := g - pm.groupBase
	j := lg / CntChunk
	cum := pm.chunkCum[j]
	if lg > j*CntChunk {
		cnts, err := d.readCnts(pm, j*CntChunk, lg)
		if err != nil {
			return 0, err
		}
		for _, c := range cnts {
			cum += uint64(c)
		}
	}
	return uint64(pm.vertBase) + cum, nil
}

// GroupStart implements cse.LevelData.
func (d *DiskLevel) GroupStart(g int) (uint64, error) {
	if g < 0 || g > d.totalGroups {
		return 0, fmt.Errorf("storage: group %d out of range %d", g, d.totalGroups)
	}
	return d.offAt(g)
}

// VertCursor implements cse.LevelData with a prefetching block stream over
// the vert part files.
func (d *DiskLevel) VertCursor(lo, hi int) cse.VertCursor {
	if lo >= hi {
		return &diskVertCursor{remaining: 0}
	}
	var spans []fileSpan
	for i := range d.parts {
		pm := &d.parts[i]
		s, e := pm.vertBase, pm.vertBase+pm.numVerts
		if e <= lo || s >= hi {
			continue
		}
		from, to := max(s, lo), min(e, hi)
		spans = append(spans, fileSpan{f: pm.vf, off: int64(4 * (from - s)), n: int64(4 * (to - from))})
	}
	return &diskVertCursor{
		bs:        newBlockStream(spans, d.blockSize, d.tracker),
		remaining: hi - lo,
	}
}

// BoundCursor implements cse.LevelData: it streams cnt entries starting at
// group first, emitting successive global group-end boundaries.
func (d *DiskLevel) BoundCursor(first int) cse.BoundCursor {
	base, err := d.offAt(first)
	if err != nil {
		return &diskBoundCursor{err: err}
	}
	var spans []fileSpan
	for i := range d.parts {
		pm := &d.parts[i]
		s, e := pm.groupBase, pm.groupBase+pm.numGroups
		if e <= first {
			continue
		}
		from := max(s, first)
		spans = append(spans, fileSpan{f: pm.cf, off: int64(4 * (from - s)), n: int64(4 * (e - from))})
	}
	return &diskBoundCursor{
		bs:  newBlockStream(spans, d.blockSize, d.tracker),
		cum: base,
	}
}

type diskVertCursor struct {
	bs        *blockStream
	remaining int
}

func (c *diskVertCursor) Next() (uint32, bool) {
	if c.remaining <= 0 || c.bs == nil {
		return 0, false
	}
	v, ok := c.bs.next(4)
	if !ok {
		return 0, false
	}
	c.remaining--
	return uint32(v), true
}

func (c *diskVertCursor) Err() error {
	if c.bs == nil {
		return nil
	}
	return c.bs.Err()
}

func (c *diskVertCursor) Close() error {
	if c.bs == nil {
		return nil
	}
	return c.bs.Close()
}

type diskBoundCursor struct {
	bs  *blockStream
	cum uint64
	err error
}

func (c *diskBoundCursor) Next() (uint64, bool) {
	if c.err != nil || c.bs == nil {
		return 0, false
	}
	v, ok := c.bs.next(4)
	if !ok {
		return 0, false
	}
	c.cum += v
	return c.cum, true
}

func (c *diskBoundCursor) Err() error {
	if c.err != nil {
		return c.err
	}
	if c.bs == nil {
		return nil
	}
	return c.bs.Err()
}

func (c *diskBoundCursor) Close() error {
	if c.bs == nil {
		return nil
	}
	return c.bs.Close()
}

// DiskLevelBuilder builds a DiskLevel from t concurrently written parts.
type DiskLevelBuilder struct {
	queue     *WriteQueue
	tracker   *memtrack.Tracker
	blockSize int
	parts     []diskPartWriter
}

// NewDiskLevelBuilder creates part files named L<level>.p<i>.{vert,cnt}
// under dir.
func NewDiskLevelBuilder(dir string, level, nparts int, q *WriteQueue, blockSize int, tracker *memtrack.Tracker) (*DiskLevelBuilder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	b := &DiskLevelBuilder{queue: q, tracker: tracker, blockSize: blockSize, parts: make([]diskPartWriter, nparts)}
	for i := range b.parts {
		vf, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("L%d.p%d.vert", level, i)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			b.Abort()
			return nil, err
		}
		cf, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("L%d.p%d.cnt", level, i)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			vf.Close()
			os.Remove(vf.Name())
			b.Abort()
			return nil, err
		}
		b.parts[i] = diskPartWriter{q: q, vf: vf, cf: cf, vbuf: q.GetBuf(), cbuf: q.GetBuf()}
	}
	return b, nil
}

// Part implements cse.LevelBuilder.
func (b *DiskLevelBuilder) Part(i int) cse.PartWriter { return &b.parts[i] }

// Parts implements cse.LevelBuilder.
func (b *DiskLevelBuilder) Parts() int { return len(b.parts) }

// Finish implements cse.LevelBuilder: it waits for all queued writes, checks
// file sizes against the expected counts, and assembles the DiskLevel.
func (b *DiskLevelBuilder) Finish() (cse.LevelData, error) {
	if err := b.queue.Barrier(); err != nil {
		b.Abort()
		return nil, err
	}
	d := &DiskLevel{blockSize: b.blockSize, tracker: b.tracker}
	pred := false
	for i := range b.parts {
		if b.parts[i].pred {
			pred = true
		}
	}
	for i := range b.parts {
		p := &b.parts[i]
		if pred != p.pred && p.numVerts > 0 {
			b.Abort()
			return nil, fmt.Errorf("storage: mixed prediction state across parts")
		}
		for _, chk := range []struct {
			f    *os.File
			want int64
		}{{p.vf, int64(4 * p.numVerts)}, {p.cf, int64(4 * p.numGroups)}} {
			st, err := chk.f.Stat()
			if err != nil {
				b.Abort()
				return nil, err
			}
			if st.Size() != chk.want {
				b.Abort()
				return nil, fmt.Errorf("storage: %s has %d bytes, want %d", chk.f.Name(), st.Size(), chk.want)
			}
		}
		d.parts = append(d.parts, diskPartMeta{
			vf: p.vf, cf: p.cf,
			numVerts: p.numVerts, numGroups: p.numGroups,
			vertBase: d.totalVerts, groupBase: d.totalGroups,
			chunkCum: p.chunkCum,
		})
		d.totalVerts += p.numVerts
		d.totalGroups += p.numGroups
		if pred {
			d.pred = append(d.pred, p.segs...)
		}
	}
	b.parts = nil
	return d, nil
}

// Abort implements cse.LevelBuilder: close and remove all part files.
func (b *DiskLevelBuilder) Abort() error {
	var first error
	for i := range b.parts {
		for _, f := range []*os.File{b.parts[i].vf, b.parts[i].cf} {
			if f == nil {
				continue
			}
			name := f.Name()
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			if err := os.Remove(name); err != nil && first == nil {
				first = err
			}
		}
	}
	b.parts = nil
	return first
}

type diskPartWriter struct {
	q          *WriteQueue
	vf, cf     *os.File
	vbuf, cbuf []byte
	numVerts   int
	numGroups  int
	chunkCum   []uint64
	segs       []cse.PredSeg
	open       cse.PredSeg
	pred       bool
}

// AppendGroup implements cse.PartWriter.
func (p *diskPartWriter) AppendGroup(children []uint32, preds []uint32) error {
	if p.numGroups%CntChunk == 0 {
		p.chunkCum = append(p.chunkCum, uint64(p.numVerts))
	}
	for _, c := range children {
		if cap(p.vbuf)-len(p.vbuf) < 4 {
			p.q.Submit(p.vf, p.vbuf)
			p.vbuf = p.q.GetBuf()
		}
		p.vbuf = binary.LittleEndian.AppendUint32(p.vbuf, c)
	}
	if cap(p.cbuf)-len(p.cbuf) < 4 {
		p.q.Submit(p.cf, p.cbuf)
		p.cbuf = p.q.GetBuf()
	}
	p.cbuf = binary.LittleEndian.AppendUint32(p.cbuf, uint32(len(children)))
	p.numVerts += len(children)
	p.numGroups++
	if preds != nil {
		if len(preds) != len(children) {
			return fmt.Errorf("storage: %d preds for %d children", len(preds), len(children))
		}
		p.pred = true
		for _, w := range preds {
			p.open.Leaves++
			p.open.Work += uint64(w)
			if p.open.Leaves == cse.PredictChunk {
				p.segs = append(p.segs, p.open)
				p.open = cse.PredSeg{}
			}
		}
	}
	return nil
}

// Flush implements cse.PartWriter.
func (p *diskPartWriter) Flush() error {
	p.q.Submit(p.vf, p.vbuf)
	p.q.Submit(p.cf, p.cbuf)
	p.vbuf, p.cbuf = nil, nil
	if p.open.Leaves > 0 {
		p.segs = append(p.segs, p.open)
		p.open = cse.PredSeg{}
	}
	return nil
}
