package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"kaleido/internal/cse"
	"kaleido/internal/memtrack"
	"kaleido/internal/storage/vfs"
)

// CntChunk is the group granularity of the in-memory random-access index
// kept per on-disk level: one cumulative child count every CntChunk groups.
// Random access (only used to locate the t partition starts of an iteration)
// costs one bounded pread; sequential access never touches the index.
const CntChunk = 4096

// DiskLevel is a CSE level stored on disk in t parts, written during the
// previous exploration iteration (Fig. 7). Each part holds two append-only
// files: vert (uint32 children) and cnt (uint32 children-per-group). Only a
// sparse index (one uint64 per CntChunk groups) stays in memory.
type DiskLevel struct {
	parts       []diskPartMeta
	totalVerts  int
	totalGroups int
	pred        []cse.PredSeg
	blockSize   int
	tracker     *memtrack.Tracker
	fs          vfs.FS
	comp        bool // all parts share one representation
	closed      bool
}

var _ cse.LevelData = (*DiskLevel)(nil)

type diskPartMeta struct {
	vf, cf    vfs.File
	numVerts  int
	numGroups int
	vertBase  int
	groupBase int
	// chunkCum[j] = number of children in this part's groups [0, j·CntChunk).
	chunkCum []uint64
	// comp is the compressed-block directory, nil for raw parts.
	comp *partComp
}

// Len implements cse.LevelData.
func (d *DiskLevel) Len() int { return d.totalVerts }

// Groups implements cse.LevelData.
func (d *DiskLevel) Groups() int { return d.totalGroups }

// Predicted implements cse.LevelData.
func (d *DiskLevel) Predicted() []cse.PredSeg { return d.pred }

// Bytes reports only the resident footprint: the sparse index and prediction
// segments (the verts and cnts live on disk).
func (d *DiskLevel) Bytes() int64 {
	var b int64
	for i := range d.parts {
		b += int64(len(d.parts[i].chunkCum))*8 + d.parts[i].comp.dirBytes()
	}
	return b + int64(len(d.pred))*16
}

// DiskBytes reports the logical on-disk footprint of the level: the raw
// word size of the spilled data, regardless of encoding.
func (d *DiskLevel) DiskBytes() int64 {
	return int64(d.totalVerts)*4 + int64(d.totalGroups)*4
}

// DiskBytesPhysical reports the bytes the level actually occupies on disk —
// equal to DiskBytes for raw parts, smaller for compressed ones.
func (d *DiskLevel) DiskBytesPhysical() int64 {
	var b int64
	for i := range d.parts {
		pm := &d.parts[i]
		if pm.comp != nil {
			b += pm.comp.physVerts + pm.comp.physCnts
		} else {
			b += int64(pm.numVerts)*4 + int64(pm.numGroups)*4
		}
	}
	return b
}

// NumParts reports how many parts the level was written in.
func (d *DiskLevel) NumParts() int { return len(d.parts) }

// Close closes and removes the level's backing files. The data is scratch
// output of one exploration run, useless once the level is dropped.
func (d *DiskLevel) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	fs := vfs.OrOS(d.fs)
	var first error
	for i := range d.parts {
		for _, f := range []vfs.File{d.parts[i].vf, d.parts[i].cf} {
			name := f.Name()
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			if err := fs.Remove(name); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// partForVert returns the part containing global vert index i.
func (d *DiskLevel) partForVert(i int) *diskPartMeta {
	p := sort.Search(len(d.parts), func(x int) bool { return d.parts[x].vertBase > i }) - 1
	return &d.parts[p]
}

// partForGroup returns the part containing global group index g.
func (d *DiskLevel) partForGroup(g int) *diskPartMeta {
	p := sort.Search(len(d.parts), func(x int) bool { return d.parts[x].groupBase > g }) - 1
	return &d.parts[p]
}

// cntScratch pools the buffers of readCnts: ParentOf/GroupStart run once per
// walker seeding — t workers per iteration — and previously allocated a fresh
// byte buffer plus decode slice on every call. blk is the whole-block decode
// buffer of the compressed paths.
type cntScratch struct {
	buf []byte
	out []uint32
	blk []uint32
}

var cntPool = sync.Pool{New: func() any { return new(cntScratch) }}

// readCnts reads the cnt entries [lo, hi) of a part into sc's buffers; the
// returned slice is valid until sc is reused or returned to the pool.
func (d *DiskLevel) readCnts(pm *diskPartMeta, lo, hi int, sc *cntScratch) ([]uint32, error) {
	return readPartCnts(pm.cf, pm.comp, lo, hi, d.tracker, sc)
}

// readCntsAt reads cnt entries [lo, hi) of cf into sc's buffers; the returned
// slice is valid until sc is reused or returned to the pool. Shared between
// DiskLevel and the disk-resident parts of HybridLevel.
func readCntsAt(cf vfs.File, lo, hi int, tracker *memtrack.Tracker, sc *cntScratch) ([]uint32, error) {
	n := hi - lo
	if cap(sc.buf) < 4*n {
		sc.buf = make([]byte, 4*n)
	}
	buf := sc.buf[:4*n]
	if err := retryReadAt(cf, buf, int64(4*lo), nil, tracker); err != nil {
		return nil, err
	}
	if tracker != nil {
		tracker.ReadIO(int64(len(buf)))
	}
	if cap(sc.out) < n {
		sc.out = make([]uint32, n)
	}
	out := sc.out[:n]
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return out, nil
}

// ParentOf implements cse.LevelData: sparse index + one bounded cnt read.
// Read errors are returned so walker seeding surfaces corruption instead of
// silently starting from a wrong parent.
func (d *DiskLevel) ParentOf(i int) (int, error) {
	pm := d.partForVert(i)
	li := uint64(i - pm.vertBase)
	j := sort.Search(len(pm.chunkCum), func(x int) bool { return pm.chunkCum[x] > li }) - 1
	lo := j * CntChunk
	hi := lo + CntChunk
	if hi > pm.numGroups {
		hi = pm.numGroups
	}
	sc := cntPool.Get().(*cntScratch)
	defer cntPool.Put(sc)
	cnts, err := d.readCnts(pm, lo, hi, sc)
	if err != nil {
		return 0, err
	}
	cum := pm.chunkCum[j]
	for idx, c := range cnts {
		if li < cum+uint64(c) {
			return pm.groupBase + lo + idx, nil
		}
		cum += uint64(c)
	}
	return pm.groupBase + hi - 1, nil
}

// UnitAt implements cse.LevelData: one bounded pread (a 4-byte word for raw
// parts, one codec block for compressed ones), no streaming cursor or
// prefetch goroutine — the random access Extract needs.
func (d *DiskLevel) UnitAt(i int) (uint32, error) {
	if i < 0 || i >= d.totalVerts {
		return 0, fmt.Errorf("storage: unit %d out of range %d", i, d.totalVerts)
	}
	pm := d.partForVert(i)
	return readPartUnit(pm.vf, pm.comp, i-pm.vertBase, d.tracker)
}

// offAt returns the global offs value of group g (the global vert index
// where g's children start); g may equal Groups() to address the end.
func (d *DiskLevel) offAt(g int) (uint64, error) {
	if g >= d.totalGroups {
		return uint64(d.totalVerts), nil
	}
	pm := d.partForGroup(g)
	lg := g - pm.groupBase
	j := lg / CntChunk
	cum := pm.chunkCum[j]
	if lg > j*CntChunk {
		sc := cntPool.Get().(*cntScratch)
		cnts, err := d.readCnts(pm, j*CntChunk, lg, sc)
		if err != nil {
			cntPool.Put(sc)
			return 0, err
		}
		for _, c := range cnts {
			cum += uint64(c)
		}
		cntPool.Put(sc)
	}
	return uint64(pm.vertBase) + cum, nil
}

// GroupStart implements cse.LevelData.
func (d *DiskLevel) GroupStart(g int) (uint64, error) {
	if g < 0 || g > d.totalGroups {
		return 0, fmt.Errorf("storage: group %d out of range %d", g, d.totalGroups)
	}
	return d.offAt(g)
}

// spanPath names the file a streamed read starts in — the coordinate a
// CorruptError from the compressed cursors carries.
func spanPath(spans []fileSpan) string {
	if len(spans) == 0 {
		return ""
	}
	return spans[0].f.Name()
}

// vertSpans returns the file byte ranges covering global verts [lo, hi).
// For compressed parts the spans are whole codec blocks and skip is how many
// decoded values the reader must drop before the first requested unit (only
// the first overlapping part can start mid-block; later parts begin
// block-aligned).
func (d *DiskLevel) vertSpans(lo, hi int) ([]fileSpan, int) {
	var spans []fileSpan
	skip := 0
	for i := range d.parts {
		pm := &d.parts[i]
		s, e := pm.vertBase, pm.vertBase+pm.numVerts
		if e <= lo || s >= hi {
			continue
		}
		from, to := max(s, lo), min(e, hi)
		if pm.comp == nil {
			spans = append(spans, fileSpan{f: pm.vf, off: int64(4 * (from - s)), n: int64(4 * (to - from))})
			continue
		}
		b0 := (from - s) / codecBlockVals
		b1 := (to - s - 1) / codecBlockVals
		off := pm.comp.vOffs[b0]
		if len(spans) == 0 {
			skip = (from - s) - b0*codecBlockVals
		}
		spans = append(spans, fileSpan{f: pm.vf, off: off, n: pm.comp.vertEnd(b1) - off})
	}
	return spans, skip
}

// cntSpans returns the file byte ranges of all cnt entries from group first,
// with the leading-value skip of the compressed representation (see
// vertSpans).
func (d *DiskLevel) cntSpans(first int) ([]fileSpan, int) {
	var spans []fileSpan
	skip := 0
	for i := range d.parts {
		pm := &d.parts[i]
		s, e := pm.groupBase, pm.groupBase+pm.numGroups
		if e <= first {
			continue
		}
		from := max(s, first)
		if pm.comp == nil {
			spans = append(spans, fileSpan{f: pm.cf, off: int64(4 * (from - s)), n: int64(4 * (e - from))})
			continue
		}
		b0 := (from - s) / codecBlockVals
		off := pm.comp.cOffs[b0]
		if len(spans) == 0 {
			skip = (from - s) - b0*codecBlockVals
		}
		spans = append(spans, fileSpan{f: pm.cf, off: off, n: pm.comp.physCnts - off})
	}
	return spans, skip
}

// VertBlocks implements cse.LevelData: it decodes whole prefetch blocks of
// the vert part files into a reused buffer, so consumers iterate thousands of
// units per channel receive.
func (d *DiskLevel) VertBlocks(lo, hi int) cse.VertBlockCursor {
	if lo >= hi {
		return &diskVertBlocks{}
	}
	spans, skip := d.vertSpans(lo, hi)
	bs := newBlockStream(spans, d.blockSize, d.tracker)
	if d.comp {
		return &compVertBlocks{bs: bs, skip: skip, remaining: hi - lo, path: spanPath(spans)}
	}
	return &diskVertBlocks{bs: bs, remaining: hi - lo}
}

// BoundBlocks implements cse.LevelData: it decodes blocks of cnt entries
// starting at group first into blocks of global group-end boundaries.
func (d *DiskLevel) BoundBlocks(first int) cse.BoundBlockCursor {
	base, err := d.offAt(first)
	if err != nil {
		return &diskBoundBlocks{err: err}
	}
	spans, skip := d.cntSpans(first)
	bs := newBlockStream(spans, d.blockSize, d.tracker)
	if d.comp {
		return &compBoundBlocks{bs: bs, skip: skip, remaining: d.totalGroups - first, cum: base, path: spanPath(spans)}
	}
	return &diskBoundBlocks{bs: bs, cum: base}
}

// VertCursor implements cse.LevelData as a unit-at-a-time view of VertBlocks.
func (d *DiskLevel) VertCursor(lo, hi int) cse.VertCursor {
	return cse.VertCursorOverBlocks(d.VertBlocks(lo, hi))
}

// BoundCursor implements cse.LevelData as a unit view of BoundBlocks.
func (d *DiskLevel) BoundCursor(first int) cse.BoundCursor {
	return cse.BoundCursorOverBlocks(d.BoundBlocks(first))
}

type diskVertBlocks struct {
	bs        *blockStream
	remaining int
	dec       []uint32
	err       error
}

func (c *diskVertBlocks) NextBlock() ([]uint32, bool) {
	if c.err != nil || c.remaining <= 0 || c.bs == nil {
		return nil, false
	}
	raw, ok := c.bs.nextBlock()
	if !ok {
		return nil, false
	}
	if len(raw)%4 != 0 {
		c.err = fmt.Errorf("storage: torn word in vert block")
		return nil, false
	}
	n := len(raw) / 4
	if n > c.remaining {
		n = c.remaining
	}
	if cap(c.dec) < n {
		c.dec = make([]uint32, n)
	}
	dec := c.dec[:n]
	for i := range dec {
		dec[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	c.remaining -= n
	return dec, true
}

func (c *diskVertBlocks) Err() error {
	if c.err != nil {
		return c.err
	}
	if c.bs == nil {
		return nil
	}
	return c.bs.Err()
}

func (c *diskVertBlocks) Close() error {
	if c.bs == nil {
		return nil
	}
	return c.bs.Close()
}

type diskBoundBlocks struct {
	bs  *blockStream
	cum uint64
	dec []uint64
	err error
}

func (c *diskBoundBlocks) NextBlock() ([]uint64, bool) {
	if c.err != nil || c.bs == nil {
		return nil, false
	}
	raw, ok := c.bs.nextBlock()
	if !ok {
		return nil, false
	}
	if len(raw)%4 != 0 {
		c.err = fmt.Errorf("storage: torn word in cnt block")
		return nil, false
	}
	n := len(raw) / 4
	if cap(c.dec) < n {
		c.dec = make([]uint64, n)
	}
	dec := c.dec[:n]
	cum := c.cum
	for i := range dec {
		cum += uint64(binary.LittleEndian.Uint32(raw[4*i:]))
		dec[i] = cum
	}
	c.cum = cum
	return dec, true
}

func (c *diskBoundBlocks) Err() error {
	if c.err != nil {
		return c.err
	}
	if c.bs == nil {
		return nil
	}
	return c.bs.Err()
}

func (c *diskBoundBlocks) Close() error {
	if c.bs == nil {
		return nil
	}
	return c.bs.Close()
}

// DiskLevelBuilder builds a DiskLevel from t concurrently written parts.
type DiskLevelBuilder struct {
	queue     *WriteQueue
	tracker   *memtrack.Tracker
	blockSize int
	compress  Compression
	fs        vfs.FS
	parts     []diskPartWriter
}

// NewDiskLevelBuilder creates part files named L<level>.p<i>.{vert,cnt}
// under dir. compress selects the on-disk encoding of the parts; fs is the
// filesystem the level lives on (nil = the real one).
func NewDiskLevelBuilder(fs vfs.FS, dir string, level, nparts int, q *WriteQueue, blockSize int, tracker *memtrack.Tracker, compress Compression) (*DiskLevelBuilder, error) {
	fs = vfs.OrOS(fs)
	if err := fs.MkdirAll(dir); err != nil {
		return nil, wrapIO("mkdir", dir, err)
	}
	b := &DiskLevelBuilder{queue: q, tracker: tracker, blockSize: blockSize, compress: compress, fs: fs, parts: make([]diskPartWriter, nparts)}
	for i := range b.parts {
		vname := filepath.Join(dir, fmt.Sprintf("L%d.p%d.vert", level, i))
		vf, err := fs.Create(vname)
		if err != nil {
			b.Abort()
			return nil, wrapIO("create", vname, err)
		}
		cname := filepath.Join(dir, fmt.Sprintf("L%d.p%d.cnt", level, i))
		cf, err := fs.Create(cname)
		if err != nil {
			err = wrapIO("create", cname, err)
			if cerr := vf.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			if rerr := fs.Remove(vf.Name()); rerr != nil {
				err = errors.Join(err, rerr)
			}
			b.Abort()
			return nil, err
		}
		b.parts[i] = newDiskPartWriter(q, vf, cf, newPartComp(compress))
	}
	return b, nil
}

// Part implements cse.LevelBuilder.
func (b *DiskLevelBuilder) Part(i int) cse.PartWriter { return &b.parts[i] }

// Parts implements cse.LevelBuilder.
func (b *DiskLevelBuilder) Parts() int { return len(b.parts) }

// Finish implements cse.LevelBuilder: it waits for all queued writes, checks
// file sizes against the expected counts, and assembles the DiskLevel.
func (b *DiskLevelBuilder) Finish() (cse.LevelData, error) {
	if err := b.queue.Barrier(); err != nil {
		b.Abort()
		return nil, err
	}
	d := &DiskLevel{blockSize: b.blockSize, tracker: b.tracker, fs: b.fs, comp: b.compress.enabled()}
	pred := false
	for i := range b.parts {
		if b.parts[i].pred {
			pred = true
		}
	}
	for i := range b.parts {
		p := &b.parts[i]
		if pred != p.pred && p.numVerts > 0 {
			b.Abort()
			return nil, fmt.Errorf("storage: mixed prediction state across parts")
		}
		if err := verifyPartFiles(p.vf, p.cf, p.numVerts, p.numGroups, p.comp); err != nil {
			b.Abort()
			return nil, err
		}
		if b.tracker != nil {
			b.tracker.SpillIO(int64(4*(p.numVerts+p.numGroups)), p.physBytes())
		}
		d.parts = append(d.parts, diskPartMeta{
			vf: p.vf, cf: p.cf,
			numVerts: p.numVerts, numGroups: p.numGroups,
			vertBase: d.totalVerts, groupBase: d.totalGroups,
			chunkCum: p.chunkCum, comp: p.comp,
		})
		d.totalVerts += p.numVerts
		d.totalGroups += p.numGroups
		if pred {
			d.pred = append(d.pred, p.acc.Segs...)
		}
	}
	b.parts = nil
	return d, nil
}

// Abort implements cse.LevelBuilder: close and remove all part files.
func (b *DiskLevelBuilder) Abort() error {
	fs := vfs.OrOS(b.fs)
	var first error
	for i := range b.parts {
		for _, f := range []vfs.File{b.parts[i].vf, b.parts[i].cf} {
			if f == nil {
				continue
			}
			name := f.Name()
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			if err := fs.Remove(name); err != nil && first == nil {
				first = err
			}
		}
	}
	b.parts = nil
	return first
}

type diskPartWriter struct {
	q          *WriteQueue
	vf, cf     vfs.File
	vbuf, cbuf []byte
	numVerts   int
	numGroups  int
	chunkCum   []uint64
	acc        cse.PredAccum
	pred       bool

	// Compressed encoding state, unused when comp is nil: the open (not yet
	// sealed) codec blocks and the per-part block directory being built.
	comp           *partComp
	vblock, cblock []uint32
	enc, payload   []byte
}

// newDiskPartWriter wires a part writer to its files.
func newDiskPartWriter(q *WriteQueue, vf, cf vfs.File, comp *partComp) diskPartWriter {
	return diskPartWriter{q: q, vf: vf, cf: cf, vbuf: q.GetBuf(), cbuf: q.GetBuf(), comp: comp}
}

// AppendGroup implements cse.PartWriter.
func (p *diskPartWriter) AppendGroup(children []uint32, preds []uint32) error {
	if p.q.Failed() {
		// The write-behind queue hit a hard error (ENOSPC, retries
		// exhausted): stop producing for a doomed level instead of encoding
		// the rest of the expansion into buffers the queue will discard.
		return p.q.Err()
	}
	if p.numGroups%CntChunk == 0 {
		p.chunkCum = append(p.chunkCum, uint64(p.numVerts))
	}
	if p.comp != nil {
		p.appendVertsComp(children)
		p.appendCntComp(uint32(len(children)))
	} else {
		for _, c := range children {
			if cap(p.vbuf)-len(p.vbuf) < 4 {
				p.q.Submit(p.vf, p.vbuf)
				p.vbuf = p.q.GetBuf()
			}
			p.vbuf = binary.LittleEndian.AppendUint32(p.vbuf, c)
		}
		if cap(p.cbuf)-len(p.cbuf) < 4 {
			p.q.Submit(p.cf, p.cbuf)
			p.cbuf = p.q.GetBuf()
		}
		p.cbuf = binary.LittleEndian.AppendUint32(p.cbuf, uint32(len(children)))
	}
	p.numVerts += len(children)
	p.numGroups++
	if preds != nil {
		if len(preds) != len(children) {
			return fmt.Errorf("storage: %d preds for %d children", len(preds), len(children))
		}
		p.pred = true
		p.acc.Add(preds)
	}
	return nil
}

// Flush implements cse.PartWriter.
func (p *diskPartWriter) Flush() error {
	if p.comp != nil {
		// Seal the partial tail blocks; the part is done growing.
		if len(p.vblock) > 0 {
			p.sealVertBlock()
		}
		if len(p.cblock) > 0 {
			p.sealCntBlock()
		}
		poolPutU32(p.vblock)
		poolPutU32(p.cblock)
		p.vblock, p.cblock = nil, nil
	}
	p.q.Submit(p.vf, p.vbuf)
	p.q.Submit(p.cf, p.cbuf)
	p.vbuf, p.cbuf = nil, nil
	p.acc.Flush()
	return nil
}
