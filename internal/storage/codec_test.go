package storage

import (
	"math"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"

	"kaleido/internal/cse"
	"kaleido/internal/memtrack"
)

// codecRoundTrip encodes vals as one framed block and decodes it back,
// additionally checking that every strict prefix of the encoding reports a
// partial block (consumed == 0, nil error) rather than garbage.
func codecRoundTrip(t *testing.T, vals []uint32, vert bool) {
	t.Helper()
	var scratch []byte
	var enc []byte
	if vert {
		enc = appendVertBlock(nil, vals, &scratch)
	} else {
		enc = appendCntBlock(nil, vals, &scratch)
	}
	dst := make([]uint32, codecBlockVals)
	got, consumed, err := decodeCodecBlock(enc, vert, dst)
	if err != nil {
		t.Fatalf("decode(%d vals, vert=%v): %v", len(vals), vert, err)
	}
	if consumed != len(enc) {
		t.Fatalf("decode consumed %d of %d bytes", consumed, len(enc))
	}
	want := vals
	if want == nil {
		want = []uint32{}
	}
	if !reflect.DeepEqual(append([]uint32{}, got...), append([]uint32{}, want...)) {
		t.Fatalf("round trip mismatch: got %d vals, want %d", len(got), len(vals))
	}
	for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if cut >= len(enc) {
			continue
		}
		_, consumed, err := decodeCodecBlock(enc[:cut], vert, dst)
		if cut > 0 && err != nil {
			t.Fatalf("prefix %d/%d: unexpected error %v", cut, len(enc), err)
		}
		if consumed != 0 {
			t.Fatalf("prefix %d/%d: consumed %d from a partial block", cut, len(enc), consumed)
		}
	}
}

// TestCodecBlockRoundTrip fuzzes the block codec over the shapes the storage
// layer produces: near-sorted runs (the vert common case), uniform noise,
// empty blocks, single values, alternating max-delta extremes, and blocks of
// exactly codecBlockVals values.
func TestCodecBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(codecBlockVals + 1)
		vals := make([]uint32, n)
		switch trial % 5 {
		case 0: // near-sorted run with small deltas and occasional resets
			cur := rng.Uint32() % 1000
			for i := range vals {
				if rng.Intn(40) == 0 {
					cur = rng.Uint32()
				} else if d := rng.Intn(16) - 4; d >= 0 || uint32(-d) <= cur {
					cur = uint32(int64(cur) + int64(d))
				}
				vals[i] = cur
			}
		case 1: // uniform noise
			for i := range vals {
				vals[i] = rng.Uint32()
			}
		case 2: // max-delta alternation: the widest zigzag deltas possible
			for i := range vals {
				if i%2 == 0 {
					vals[i] = 0
				} else {
					vals[i] = math.MaxUint32
				}
			}
		case 3: // tight cluster (the cnt common case)
			base := rng.Uint32()
			if base > math.MaxUint32-8 {
				base = math.MaxUint32 - 8
			}
			for i := range vals {
				vals[i] = base + uint32(rng.Intn(8))
			}
		case 4: // mid-range deltas (two-byte zigzag after doubling): the
			// packed two-byte group path, starting near the top of the
			// range to hit the cnt fast path's overflow guard
			cur := uint32(math.MaxUint32 - 1<<22)
			for i := range vals {
				cur += uint32(128 + rng.Intn(1<<15-128))
				vals[i] = cur
			}
		}
		codecRoundTrip(t, vals, trial%2 == 0)
	}
	for _, vals := range [][]uint32{nil, {}, {0}, {math.MaxUint32}, {7}} {
		codecRoundTrip(t, vals, true)
		codecRoundTrip(t, vals, false)
	}
	full := make([]uint32, codecBlockVals) // exactly one full block
	for i := range full {
		full[i] = uint32(i * 3)
	}
	codecRoundTrip(t, full, true)
	codecRoundTrip(t, full, false)
}

// TestCodecUnknownVersion: a version byte from the future must be a hard,
// descriptive error — never a silent misdecode.
func TestCodecUnknownVersion(t *testing.T) {
	var scratch []byte
	enc := appendVertBlock(nil, []uint32{1, 2, 3}, &scratch)
	enc[0] = codecVersion + 1
	dst := make([]uint32, codecBlockVals)
	_, _, err := decodeCodecBlock(enc, true, dst)
	if err == nil || !strings.Contains(err.Error(), "unknown compressed block version") {
		t.Fatalf("future version byte: err = %v", err)
	}
}

// TestCodecCorruptHeader rejects headers whose fields exceed the format
// bounds before trusting them.
func TestCodecCorruptHeader(t *testing.T) {
	var scratch []byte
	dst := make([]uint32, codecBlockVals)
	// Oversized count.
	enc := appendVertBlock(nil, []uint32{1}, &scratch)
	bad := []byte{codecVersion, 0xff, 0xff, 0x7f, 1, 0} // count ≫ codecBlockVals
	if _, _, err := decodeCodecBlock(bad, true, dst); err == nil {
		t.Fatal("oversized count accepted")
	}
	// Truncated payload inside an otherwise valid frame: drop the last
	// delta byte (shrinking payloadLen to match) so the deltas run short.
	enc = appendVertBlock(nil, []uint32{5, 6, 7, 8}, &scratch)
	enc = enc[:len(enc)-1]
	enc[2]-- // payloadLen field: count 4 and the payload are single-byte here
	if _, _, err := decodeCodecBlock(enc, true, dst); err == nil {
		t.Fatal("short payload accepted")
	}
	// A group control byte claiming wider values than the payload holds.
	enc = appendVertBlock(nil, []uint32{5, 6, 7, 8}, &scratch)
	enc[4] = 0xff // every delta 4 bytes wide, but only 3 payload bytes follow
	if _, _, err := decodeCodecBlock(enc, true, dst); err == nil {
		t.Fatal("overlong control byte accepted")
	}
}

// buildCompressed is buildBoth with the codec enabled on the disk side.
func buildCompressed(t *testing.T, groups [][]uint32, nparts int, withPred bool) (*cse.MemLevel, *DiskLevel, *memtrack.Tracker) {
	t.Helper()
	tracker := memtrack.New()
	q := NewWriteQueue(64, tracker) // tiny buffers force block-straddling reads
	t.Cleanup(func() { q.Close() })
	mb := cse.NewMemLevelBuilder(nparts)
	db, err := NewDiskLevelBuilder(nil, t.TempDir(), 2, nparts, q, 128, tracker, CompressionAuto)
	if err != nil {
		t.Fatal(err)
	}
	per := (len(groups) + nparts - 1) / nparts
	for i := 0; i < nparts; i++ {
		lo, hi := min(i*per, len(groups)), min(i*per+per, len(groups))
		for _, g := range groups[lo:hi] {
			var preds []uint32
			if withPred {
				preds = make([]uint32, len(g))
				for j := range preds {
					preds[j] = g[j] % 7
				}
			}
			if err := mb.Part(i).AppendGroup(g, preds); err != nil {
				t.Fatal(err)
			}
			if err := db.Part(i).AppendGroup(g, preds); err != nil {
				t.Fatal(err)
			}
		}
		if err := mb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ml, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	dl, err := db.Finish()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dl.Close() })
	return ml.(*cse.MemLevel), dl.(*DiskLevel), tracker
}

// TestCompressedDiskLevelMatchesMemLevel is the conformance property with the
// codec on: every LevelData operation must agree with the all-memory
// reference, bit for bit, across block seams and sub-range starts that land
// mid-block.
func TestCompressedDiskLevelMatchesMemLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 8; trial++ {
		groups := randGroups(rng, 1+rng.Intn(400))
		nparts := 1 + rng.Intn(4)
		ml, dl, _ := buildCompressed(t, groups, nparts, trial%2 == 0)
		if ml.Len() != dl.Len() || ml.Groups() != dl.Groups() {
			t.Fatalf("trial %d: shape %d/%d vs %d/%d", trial, ml.Len(), ml.Groups(), dl.Len(), dl.Groups())
		}
		for r := 0; r < 8; r++ {
			lo := rng.Intn(ml.Len() + 1)
			hi := lo + rng.Intn(ml.Len()-lo+1)
			if r == 0 {
				lo, hi = 0, ml.Len()
			}
			got := make([]uint32, 0, hi-lo)
			bc := dl.VertBlocks(lo, hi)
			for {
				blk, ok := bc.NextBlock()
				if !ok {
					break
				}
				got = append(got, blk...)
			}
			if err := bc.Err(); err != nil {
				t.Fatal(err)
			}
			bc.Close()
			if !reflect.DeepEqual(got, append(make([]uint32, 0, hi-lo), ml.Verts[lo:hi]...)) {
				t.Fatalf("trial %d range [%d,%d): compressed blocks differ from mem verts", trial, lo, hi)
			}
		}
		for r := 0; r < 6; r++ {
			first := rng.Intn(ml.Groups())
			want := ml.Offs[first+1:]
			got := make([]uint64, 0, len(want))
			bb := dl.BoundBlocks(first)
			for {
				blk, ok := bb.NextBlock()
				if !ok {
					break
				}
				got = append(got, blk...)
			}
			if err := bb.Err(); err != nil {
				t.Fatal(err)
			}
			bb.Close()
			if !reflect.DeepEqual(got, append(make([]uint64, 0, len(want)), want...)) {
				t.Fatalf("trial %d bounds from %d: compressed blocks differ from mem offs", trial, first)
			}
		}
		for i := 0; i < ml.Len(); i++ {
			mu, _ := ml.UnitAt(i)
			du, err := dl.UnitAt(i)
			if err != nil || mu != du {
				t.Fatalf("trial %d: UnitAt(%d) = %d vs %d (%v)", trial, i, mu, du, err)
			}
			mp, _ := ml.ParentOf(i)
			dp, err := dl.ParentOf(i)
			if err != nil || mp != dp {
				t.Fatalf("trial %d: ParentOf(%d) = %d vs %d (%v)", trial, i, mp, dp, err)
			}
		}
		for g := 0; g <= ml.Groups(); g++ {
			ms, _ := ml.GroupStart(g)
			ds, err := dl.GroupStart(g)
			if err != nil || ms != ds {
				t.Fatalf("trial %d: GroupStart(%d) = %d vs %d (%v)", trial, g, ms, ds, err)
			}
		}
		if !reflect.DeepEqual(ml.Predicted(), dl.Predicted()) {
			t.Fatalf("trial %d: predictions differ", trial)
		}
	}
}

// TestCompressedCntChunkBoundaries drives the multi-block random-access cnt
// path: with more than codecBlockVals groups, ParentOf and GroupStart probes
// land on both sides of cnt block seams.
func TestCompressedCntChunkBoundaries(t *testing.T) {
	n := 2*CntChunk + 3
	groups := make([][]uint32, n)
	for i := range groups {
		groups[i] = []uint32{uint32(i)}
	}
	for _, nparts := range []int{1, 2} {
		ml, dl, _ := buildCompressed(t, groups, nparts, false)
		for _, g := range []int{0, 1, CntChunk - 1, CntChunk, CntChunk + 1, 2*CntChunk - 1, 2 * CntChunk, n - 1, n} {
			ms, merr := ml.GroupStart(g)
			ds, derr := dl.GroupStart(g)
			if merr != nil || derr != nil || ms != ds {
				t.Fatalf("nparts %d: GroupStart(%d) = %d (%v) vs %d (%v)", nparts, g, ms, merr, ds, derr)
			}
		}
		for _, i := range []int{0, CntChunk - 1, CntChunk, CntChunk + 1, 2*CntChunk - 1, 2 * CntChunk, n - 1} {
			mp, merr := ml.ParentOf(i)
			dp, derr := dl.ParentOf(i)
			if merr != nil || derr != nil || mp != dp {
				t.Fatalf("nparts %d: ParentOf(%d) = %d (%v) vs %d (%v)", nparts, i, mp, merr, dp, derr)
			}
			mu, merr := ml.UnitAt(i)
			du, derr := dl.UnitAt(i)
			if merr != nil || derr != nil || mu != du {
				t.Fatalf("nparts %d: UnitAt(%d) = %d (%v) vs %d (%v)", nparts, i, mu, merr, du, derr)
			}
		}
	}
}

// TestCompressedCorruptionSurfaces mirrors TestParentOfSurfacesCorruption for
// the codec: a truncated or version-bumped compressed file must turn into an
// error from every read path — never silently wrong data.
func TestCompressedCorruptionSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	groups := randGroups(rng, 120)
	_, dl, _ := buildCompressed(t, groups, 1, false)
	if dl.Len() == 0 {
		t.Skip("empty level")
	}

	// Truncated cnt file: ParentOf errors, walker seeding fails.
	if err := os.Truncate(dl.parts[0].cf.Name(), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := dl.ParentOf(dl.Len() - 1); err == nil {
		t.Fatal("ParentOf on truncated compressed cnt file returned no error")
	}
	base := make([]uint32, dl.Groups())
	c := cse.New(cse.NewBaseLevel(base))
	if err := c.Push(dl); err != nil {
		t.Fatal(err)
	}
	if _, err := cse.NewWalker(c, 1, dl.Len()); err == nil {
		t.Fatal("walker seeded from corrupt compressed level without error")
	}

	// Version-bumped vert file: the streaming cursor must refuse to decode.
	vf, err := os.OpenFile(dl.parts[0].vf.Name(), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vf.WriteAt([]byte{codecVersion + 1}, 0); err != nil {
		t.Fatal(err)
	}
	vf.Close()
	bc := dl.VertBlocks(0, dl.Len())
	defer bc.Close()
	for {
		if _, ok := bc.NextBlock(); !ok {
			break
		}
	}
	if err := bc.Err(); err == nil || !strings.Contains(err.Error(), "unknown compressed block version") {
		t.Fatalf("version-bumped vert stream: err = %v", err)
	}
	if _, err := dl.UnitAt(0); err == nil || !strings.Contains(err.Error(), "unknown compressed block version") {
		t.Fatalf("version-bumped UnitAt: err = %v", err)
	}

	// Truncated vert file: the stream must end with a truncation error.
	_, dl2, _ := buildCompressed(t, groups, 1, false)
	if sz, err := dl2.parts[0].vf.Size(); err != nil || sz < 4 {
		t.Skip("vert file too small to truncate meaningfully")
	}
	if err := os.Truncate(dl2.parts[0].vf.Name(), 3); err != nil {
		t.Fatal(err)
	}
	bc2 := dl2.VertBlocks(0, dl2.Len())
	defer bc2.Close()
	for {
		if _, ok := bc2.NextBlock(); !ok {
			break
		}
	}
	if bc2.Err() == nil {
		t.Fatal("truncated compressed vert stream ended without error")
	}
}

// TestCompressedRatioAndAccounting: near-sorted spill data must compress at
// least 2× — and the logical/physical split must be visible in the level,
// the tracker's spill totals, and the write I/O counter.
func TestCompressedRatioAndAccounting(t *testing.T) {
	// Sorted, dense children: the shape expansion actually spills (children
	// of one parent are ascending vertex ids).
	groups := make([][]uint32, 800)
	next := uint32(0)
	for i := range groups {
		g := make([]uint32, 40)
		for j := range g {
			next += uint32(1 + (i+j)%3)
			g[j] = next
		}
		groups[i] = g
		next -= 60 // overlap between consecutive groups, still near-sorted
	}
	_, dl, tracker := buildCompressed(t, groups, 2, false)
	logical := dl.DiskBytes()
	phys := dl.DiskBytesPhysical()
	if logical == 0 || phys == 0 {
		t.Fatalf("bytes: logical %d physical %d", logical, phys)
	}
	if phys*2 > logical {
		t.Fatalf("compression ratio %.2f below 2×: logical %d physical %d", float64(logical)/float64(phys), logical, phys)
	}
	sl, sp := tracker.SpillTotals()
	if sl != logical || sp != phys {
		t.Fatalf("SpillTotals = (%d, %d), want (%d, %d)", sl, sp, logical, phys)
	}
	if _, w := tracker.IOTotals(); w != phys {
		t.Fatalf("write bytes = %d, want physical %d", w, phys)
	}
}

// buildHybridCompressed is buildHybridMixed with the codec on.
func buildHybridCompressed(t *testing.T, groups [][]uint32, nparts int, spillParts map[int]bool, withPred bool) (*cse.MemLevel, *HybridLevel, *memtrack.Tracker) {
	t.Helper()
	tracker := memtrack.New()
	q := NewWriteQueue(64, tracker)
	t.Cleanup(func() { q.Close() })
	mb := cse.NewMemLevelBuilder(nparts)
	hb, err := NewHybridLevelBuilder(nil, t.TempDir(), 2, nparts, q, 128, tracker, 1<<40, nil, 0, CompressionAuto, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	for i := range spillParts {
		hb.parts[i].spillReq.Store(true)
	}
	per := (len(groups) + nparts - 1) / nparts
	for i := 0; i < nparts; i++ {
		lo, hi := min(i*per, len(groups)), min(i*per+per, len(groups))
		for _, g := range groups[lo:hi] {
			var preds []uint32
			if withPred {
				preds = make([]uint32, len(g))
				for j := range preds {
					preds[j] = g[j] % 7
				}
			}
			if err := mb.Part(i).AppendGroup(g, preds); err != nil {
				t.Fatal(err)
			}
			if err := hb.Part(i).AppendGroup(g, preds); err != nil {
				t.Fatal(err)
			}
		}
		if err := mb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
		if err := hb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	ml, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	hl, err := hb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hl.Close() })
	return ml.(*cse.MemLevel), hl.(*HybridLevel), tracker
}

// TestHybridCompressedMatchesMemLevel: the mixed-placement conformance
// property with compressed disk parts — cursors crossing raw-mem→compressed-
// disk seams, random access landing mid-block, and sub-cursor starts inside
// a spilled part.
func TestHybridCompressedMatchesMemLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 6; trial++ {
		groups := randGroups(rng, 1+rng.Intn(400))
		nparts := 2 + rng.Intn(4)
		spill := map[int]bool{rng.Intn(nparts): true}
		for i := 0; i < nparts; i++ {
			if rng.Intn(2) == 0 {
				spill[i] = true
			}
		}
		if len(spill) == nparts {
			delete(spill, rng.Intn(nparts))
		}
		ml, hl, _ := buildHybridCompressed(t, groups, nparts, spill, trial%2 == 0)
		if ml.Len() != hl.Len() || ml.Groups() != hl.Groups() {
			t.Fatalf("trial %d: shape %d/%d vs %d/%d", trial, ml.Len(), ml.Groups(), hl.Len(), hl.Groups())
		}
		for r := 0; r < 8; r++ {
			lo := rng.Intn(ml.Len() + 1)
			hi := lo + rng.Intn(ml.Len()-lo+1)
			if r == 0 {
				lo, hi = 0, ml.Len()
			}
			got := make([]uint32, 0, hi-lo)
			bc := hl.VertBlocks(lo, hi)
			for {
				blk, ok := bc.NextBlock()
				if !ok {
					break
				}
				got = append(got, blk...)
			}
			if err := bc.Err(); err != nil {
				t.Fatal(err)
			}
			bc.Close()
			if !reflect.DeepEqual(got, append(make([]uint32, 0, hi-lo), ml.Verts[lo:hi]...)) {
				t.Fatalf("trial %d range [%d,%d): hybrid compressed blocks differ", trial, lo, hi)
			}
		}
		for r := 0; r < 6; r++ {
			first := rng.Intn(ml.Groups())
			want := ml.Offs[first+1:]
			got := make([]uint64, 0, len(want))
			bb := hl.BoundBlocks(first)
			for {
				blk, ok := bb.NextBlock()
				if !ok {
					break
				}
				got = append(got, blk...)
			}
			if err := bb.Err(); err != nil {
				t.Fatal(err)
			}
			bb.Close()
			if !reflect.DeepEqual(got, append(make([]uint64, 0, len(want)), want...)) {
				t.Fatalf("trial %d bounds from %d: hybrid compressed bounds differ", trial, first)
			}
		}
		for i := 0; i < ml.Len(); i++ {
			mu, _ := ml.UnitAt(i)
			hu, err := hl.UnitAt(i)
			if err != nil || mu != hu {
				t.Fatalf("trial %d: UnitAt(%d) = %d vs %d (%v)", trial, i, mu, hu, err)
			}
			mp, _ := ml.ParentOf(i)
			hp, err := hl.ParentOf(i)
			if err != nil || mp != hp {
				t.Fatalf("trial %d: ParentOf(%d) = %d vs %d (%v)", trial, i, mp, hp, err)
			}
		}
		for g := 0; g <= ml.Groups(); g++ {
			ms, _ := ml.GroupStart(g)
			hs, err := hl.GroupStart(g)
			if err != nil || ms != hs {
				t.Fatalf("trial %d: GroupStart(%d) = %d vs %d (%v)", trial, g, ms, hs, err)
			}
		}
		if hl.DiskBytesPhysical() >= hl.DiskBytes() && hl.DiskBytes() > 4096 {
			t.Fatalf("trial %d: physical %d not below logical %d", trial, hl.DiskBytesPhysical(), hl.DiskBytes())
		}
	}
}

// TestHybridCompressedMidBuildSpill: the governor migrates raw in-memory
// parts into compressed files mid-build (no re-sorting, partial codec blocks
// continue filling), and the result matches the mem reference.
func TestHybridCompressedMidBuildSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	groups := make([][]uint32, 600)
	var totalBytes int64
	for i := range groups {
		g := make([]uint32, 2+rng.Intn(6))
		for j := range g {
			g[j] = rng.Uint32() % 5000
		}
		groups[i] = g
		totalBytes += int64(len(g))*4 + 4
	}
	tracker := memtrack.New()
	q := NewWriteQueue(0, tracker)
	defer q.Close()
	const nparts = 8
	hb, err := NewHybridLevelBuilder(nil, t.TempDir(), 3, nparts, q, 0, tracker, totalBytes/2, nil, 0, CompressionAuto, CompressionOff)
	if err != nil {
		t.Fatal(err)
	}
	mb := cse.NewMemLevelBuilder(nparts)
	per := (len(groups) + nparts - 1) / nparts
	for i := 0; i < nparts; i++ {
		lo, hi := min(i*per, len(groups)), min(i*per+per, len(groups))
		for _, g := range groups[lo:hi] {
			if err := hb.Part(i).AppendGroup(g, nil); err != nil {
				t.Fatal(err)
			}
			if err := mb.Part(i).AppendGroup(g, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := hb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
		if err := mb.Part(i).Flush(); err != nil {
			t.Fatal(err)
		}
	}
	lvl, err := hb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer lvl.Close()
	hl := lvl.(*HybridLevel)
	if hl.DiskParts() == 0 || hl.MemParts() == 0 {
		t.Fatalf("placement not hybrid: %d mem / %d disk", hl.MemParts(), hl.DiskParts())
	}
	ml, err := mb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	mem := ml.(*cse.MemLevel)
	got := make([]uint32, 0, hl.Len())
	bc := hl.VertBlocks(0, hl.Len())
	for {
		blk, ok := bc.NextBlock()
		if !ok {
			break
		}
		got = append(got, blk...)
	}
	if err := bc.Err(); err != nil {
		t.Fatal(err)
	}
	bc.Close()
	if !reflect.DeepEqual(got, mem.Verts) {
		t.Fatal("compressed hybrid level differs from mem reference after mid-build spill")
	}
	for g := 0; g <= mem.Groups(); g++ {
		ms, _ := mem.GroupStart(g)
		hs, err := hl.GroupStart(g)
		if err != nil || ms != hs {
			t.Fatalf("GroupStart(%d) = %d vs %d (%v)", g, ms, hs, err)
		}
	}
	sl, sp := tracker.SpillTotals()
	if sl == 0 || sp == 0 || sp >= sl {
		t.Fatalf("spill totals (%d logical, %d physical) not compressed", sl, sp)
	}
}

// TestHybridCompressedPromote: a compressed disk part promotes back into raw
// in-memory arrays — whole-file decode, files removed, conformance intact.
func TestHybridCompressedPromote(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	groups := randGroups(rng, 300)
	ml, hl, _ := buildHybridCompressed(t, groups, 4, map[int]bool{1: true, 3: true}, false)

	var files []string
	for i := range hl.parts {
		if hl.parts[i].onDisk() {
			files = append(files, hl.parts[i].vf.Name(), hl.parts[i].cf.Name())
		}
	}
	n, err := hl.Promote(1 << 40)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || hl.DiskParts() != 0 {
		t.Fatalf("promoted %d, %d disk parts remain", n, hl.DiskParts())
	}
	for _, f := range files {
		if _, err := os.Stat(f); !os.IsNotExist(err) {
			t.Fatalf("promoted part file %s still exists", f)
		}
	}
	if hl.DiskBytes() != 0 || hl.DiskBytesPhysical() != 0 {
		t.Fatalf("disk bytes %d/%d after full promotion", hl.DiskBytes(), hl.DiskBytesPhysical())
	}
	for i := 0; i < ml.Len(); i++ {
		mu, _ := ml.UnitAt(i)
		hu, err := hl.UnitAt(i)
		if err != nil || mu != hu {
			t.Fatalf("unit %d: %d vs %d (%v)", i, mu, hu, err)
		}
		mp, _ := ml.ParentOf(i)
		hp, err := hl.ParentOf(i)
		if err != nil || mp != hp {
			t.Fatalf("parent %d: %d vs %d (%v)", i, mp, hp, err)
		}
	}
	for g := 0; g <= ml.Groups(); g++ {
		ms, _ := ml.GroupStart(g)
		hs, err := hl.GroupStart(g)
		if err != nil || ms != hs {
			t.Fatalf("group start %d: %d vs %d (%v)", g, ms, hs, err)
		}
	}
}
