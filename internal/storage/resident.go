package storage

// Compressed-resident tier: the third residency state of a hybridPart,
// between raw memory and disk. A compressed-mem part holds its vert and cnt
// data as the same v2 codec blocks a compressed spill file holds — delta
// +varint vert blocks, frame-of-reference cnt blocks, one partComp directory
// indexing them — but in two in-memory byte slices instead of a file pair.
// Reads decode blocks exactly like the disk path, minus the vfs: no
// syscalls, no retries, no fault injection surface. The CRC32C carried by
// every block is still verified on decode (it is hardware-accelerated and
// catches resident bit rot the same way it catches disk rot).
//
// The ladder is raw-mem → compressed-mem → disk under pressure, and the
// reverse on recovery: a compressed disk part is promoted off disk by
// reading its file bytes verbatim (the on-disk format IS the in-memory
// compressed format), and decompressed to raw arrays only when headroom
// allows the full decoded footprint.

import (
	"fmt"

	"kaleido/internal/memtrack"
	"kaleido/internal/storage/vfs"
)

// memBlockPath labels corruption errors from compressed-mem blocks, which
// have no backing file to name.
const memBlockPath = "(compressed-mem)"

// compressed reports whether p is in the compressed-mem state: encoded
// blocks resident (comp directory set) with no backing files.
func (p *hybridPart) compressed() bool { return p.vf == nil && p.comp != nil }

// residentBytes is the part's contribution to the level's resident
// footprint: full arrays for raw parts, encoded blocks plus directory for
// compressed-mem parts, sparse indexes only for disk parts.
func (p *hybridPart) residentBytes() int64 {
	if p.onDisk() {
		return int64(len(p.chunkCum))*8 + p.comp.dirBytes()
	}
	if p.compressed() {
		return int64(len(p.cverts)+len(p.ccnts)) + int64(len(p.chunkCum))*8 + p.comp.dirBytes()
	}
	return int64(len(p.verts))*4 + int64(len(p.bounds))*8
}

// logicalBytes is the raw word footprint the part would have fully decoded
// in memory: verts as uint32s plus one uint64 bound per group.
func (p *hybridPart) logicalBytes() int64 {
	return int64(p.numVerts)*4 + int64(p.numGroups)*8
}

// encodeResidentVerts appends vals to dst as framed vert codec blocks,
// recording each block's start offset in comp.
func encodeResidentVerts(dst []byte, vals []uint32, comp *partComp, scratch *[]byte) []byte {
	for off := 0; off < len(vals); off += codecBlockVals {
		end := min(off+codecBlockVals, len(vals))
		comp.vOffs = append(comp.vOffs, comp.physVerts)
		n0 := len(dst)
		dst = appendVertBlock(dst, vals[off:end], scratch)
		comp.physVerts += int64(len(dst) - n0)
	}
	return dst
}

// encodeResidentCnts is encodeResidentVerts for the cnt stream.
func encodeResidentCnts(dst []byte, vals []uint32, comp *partComp, scratch *[]byte) []byte {
	for off := 0; off < len(vals); off += codecBlockVals {
		end := min(off+codecBlockVals, len(vals))
		comp.cOffs = append(comp.cOffs, comp.physCnts)
		n0 := len(dst)
		dst = appendCntBlock(dst, vals[off:end], scratch)
		comp.physCnts += int64(len(dst) - n0)
	}
	return dst
}

// cntChunkCum builds the sparse index over a part's per-group child counts:
// chunkCum[j] = children in local groups [0, j·CntChunk).
func cntChunkCum(counts []uint32) []uint64 {
	var chunkCum []uint64
	var cum uint64
	for j, c := range counts {
		if j%CntChunk == 0 {
			chunkCum = append(chunkCum, cum)
		}
		cum += uint64(c)
	}
	return chunkCum
}

// CompressPart encodes raw memory part i into the compressed-mem state and
// returns the resident bytes freed. Parts already compressed, on disk,
// empty, or that would not shrink are left untouched (freed 0). The caller
// owns the accounting: the level's Bytes changes by -freed.
func (h *HybridLevel) CompressPart(i int) int64 {
	p := &h.parts[i]
	if p.onDisk() || p.compressed() || (p.numVerts == 0 && p.numGroups == 0) {
		return 0
	}
	old := p.residentBytes()
	comp := &partComp{}
	var scratch []byte
	cverts := encodeResidentVerts(nil, p.verts, comp, &scratch)
	// The cnt blocks encode local per-group counts (as on disk); recover
	// them from the global end boundaries.
	cnts := poolGetU32()
	if cap(cnts) < p.numGroups {
		cnts = make([]uint32, 0, p.numGroups)
	}
	prev := uint64(p.vertBase)
	for g := 0; g < p.numGroups; g++ {
		cnts = append(cnts, uint32(p.bounds[g]-prev))
		prev = p.bounds[g]
	}
	ccnts := encodeResidentCnts(nil, cnts, comp, &scratch)
	chunkCum := cntChunkCum(cnts)
	poolPutU32(cnts)
	now := int64(len(cverts)+len(ccnts)) + int64(len(chunkCum))*8 + comp.dirBytes()
	if now >= old {
		return 0 // incompressible; raw stays the cheaper representation
	}
	poolPutU32(p.verts)
	poolPutU64(p.bounds)
	p.verts, p.bounds = nil, nil
	p.cverts, p.ccnts, p.comp, p.chunkCum = cverts, ccnts, comp, chunkCum
	return old - now
}

// CompressResident compresses every raw memory part of the level — the
// cold-level compaction pass run once a level is sealed below the top of the
// walker stack, where it is only ever read sequentially. Returns the parts
// compressed and the resident bytes freed.
func (h *HybridLevel) CompressResident() (parts int, freed int64) {
	for i := range h.parts {
		if f := h.CompressPart(i); f > 0 {
			parts++
			freed += f
		}
	}
	return parts, freed
}

// CompressedParts counts the compressed-mem parts. They are a subset of
// MemParts: compressed-mem is a memory residency.
func (h *HybridLevel) CompressedParts() int {
	n := 0
	for i := range h.parts {
		if h.parts[i].compressed() {
			n++
		}
	}
	return n
}

// ResidentBytesLogical reports the raw word footprint of the memory-resident
// parts (raw and compressed-mem) plus prediction segments — what Bytes would
// report with resident compression off. The ratio ResidentBytesLogical/Bytes
// is the budget stretch the compressed-resident tier buys.
func (h *HybridLevel) ResidentBytesLogical() int64 {
	var b int64
	for i := range h.parts {
		p := &h.parts[i]
		if p.onDisk() {
			continue
		}
		b += p.logicalBytes()
	}
	return b + int64(len(h.pred))*16
}

// decompressPart materializes compressed-mem part i back into raw arrays.
// Bases must already be final (the rebuilt bounds are global). On a decode
// error the part is left compressed, untouched.
func (h *HybridLevel) decompressPart(i int) error {
	p := &h.parts[i]
	verts := poolGetU32()
	if cap(verts) < p.numVerts {
		verts = make([]uint32, p.numVerts)
	}
	verts = verts[:p.numVerts]
	cnts := poolGetU32()
	if cap(cnts) < p.numGroups {
		cnts = make([]uint32, p.numGroups)
	}
	cnts = cnts[:p.numGroups]
	fail := func(err error) error {
		poolPutU32(verts)
		poolPutU32(cnts)
		return fmt.Errorf("storage: decompress of resident part: %w", err)
	}
	if err := decodeAllBlocks(p.cverts, true, verts, memBlockPath); err != nil {
		return fail(err)
	}
	if err := decodeAllBlocks(p.ccnts, false, cnts, memBlockPath); err != nil {
		return fail(err)
	}
	bounds := poolGetU64(p.numGroups)
	off := uint64(p.vertBase)
	for j, c := range cnts {
		off += uint64(c)
		bounds[j] = off
	}
	poolPutU32(cnts)
	p.cverts, p.ccnts, p.comp, p.chunkCum = nil, nil, nil, nil
	p.verts, p.bounds = verts, bounds
	return nil
}

// offDiskCost is the resident-byte delta of taking disk part p off disk:
// into compressed-mem when the level keeps compressed residents and the part
// is encoded (its file bytes land in RAM as-is), otherwise the full decoded
// footprint net of the freed indexes.
func (p *hybridPart) offDiskCost(rcomp bool) int64 {
	if rcomp && p.comp != nil {
		return p.comp.physVerts + p.comp.physCnts
	}
	return p.promoteCost()
}

// promotePartCompressed moves compressed disk part i to compressed-mem by
// reading its file bytes verbatim — the on-disk block format is the
// compressed-mem format — keeping the directory and sparse index. On a read
// error the part is left on disk, untouched.
func (h *HybridLevel) promotePartCompressed(i int) error {
	p := &h.parts[i]
	cverts := make([]byte, p.comp.physVerts)
	if len(cverts) > 0 {
		if err := retryReadAt(p.vf, cverts, 0, nil, h.tracker); err != nil {
			return fmt.Errorf("storage: promote read of %s: %w", p.vf.Name(), err)
		}
	}
	ccnts := make([]byte, p.comp.physCnts)
	if len(ccnts) > 0 {
		if err := retryReadAt(p.cf, ccnts, 0, nil, h.tracker); err != nil {
			return fmt.Errorf("storage: promote read of %s: %w", p.cf.Name(), err)
		}
	}
	if h.tracker != nil {
		h.tracker.ReadIO(int64(len(cverts) + len(ccnts)))
	}
	fs := vfs.OrOS(h.fs)
	var first error
	for _, f := range []vfs.File{p.vf, p.cf} {
		name := f.Name()
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		if err := fs.Remove(name); err != nil && first == nil {
			first = err
		}
	}
	p.vf, p.cf = nil, nil
	p.cverts, p.ccnts = cverts, ccnts
	return first
}

// residentUnit decodes the single unit at local index li of a compressed-mem
// part: one block decode from the resident byte slice, no I/O.
func (p *hybridPart) residentUnit(li int) (uint32, error) {
	b := li / codecBlockVals
	sc := cntPool.Get().(*cntScratch)
	defer cntPool.Put(sc)
	if cap(sc.blk) < codecBlockVals {
		sc.blk = make([]uint32, codecBlockVals)
	}
	vals, consumed, err := decodeCodecBlock(p.cverts[p.comp.vOffs[b]:p.comp.vertEnd(b)], true, sc.blk[:codecBlockVals])
	if err != nil {
		return 0, corruptAt(memBlockPath, b, err)
	}
	if consumed == 0 {
		return 0, corruptAt(memBlockPath, b, fmt.Errorf("truncated vert block"))
	}
	k := li - b*codecBlockVals
	if k >= len(vals) {
		return 0, corruptAt(memBlockPath, b, fmt.Errorf("block holds %d units, need index %d", len(vals), k))
	}
	return vals[k], nil
}

// residentCnts decodes the cnt range [lo, hi) of a compressed-mem part from
// its resident blocks — readPartCnts minus the file read.
func (p *hybridPart) residentCnts(lo, hi int, sc *cntScratch) ([]uint32, error) {
	b0 := lo / codecBlockVals
	b1 := (hi - 1) / codecBlockVals
	buf := p.ccnts[p.comp.cOffs[b0]:p.comp.cntEnd(b1)]
	want := hi - lo
	if cap(sc.out) < want {
		sc.out = make([]uint32, 0, want)
	}
	out := sc.out[:0]
	if cap(sc.blk) < codecBlockVals {
		sc.blk = make([]uint32, codecBlockVals)
	}
	pos := 0
	for b := b0; b <= b1; b++ {
		vals, consumed, err := decodeCodecBlock(buf[pos:], false, sc.blk[:codecBlockVals])
		if err != nil {
			return nil, corruptAt(memBlockPath, b, err)
		}
		if consumed == 0 {
			return nil, corruptAt(memBlockPath, b, fmt.Errorf("truncated cnt block"))
		}
		pos += consumed
		start := lo - b*codecBlockVals
		if start < 0 {
			start = 0
		}
		stop := hi - b*codecBlockVals
		if stop > len(vals) {
			stop = len(vals)
		}
		if stop > start {
			out = append(out, vals[start:stop]...)
		}
	}
	sc.out = out
	if len(out) != want {
		return nil, corruptAt(memBlockPath, b0, fmt.Errorf("cnt blocks [%d,%d] decoded %d entries, want %d", b0, b1, len(out), want))
	}
	return out, nil
}

// partCnts dispatches a bounded cnt read across the part's residency: raw
// slice math never reaches here (callers binary-search bounds directly);
// compressed-mem decodes resident blocks; disk goes through readPartCnts.
func (p *hybridPart) partCnts(lo, hi int, tracker *memtrack.Tracker, sc *cntScratch) ([]uint32, error) {
	if p.onDisk() {
		return readPartCnts(p.cf, p.comp, lo, hi, tracker, sc)
	}
	return p.residentCnts(lo, hi, sc)
}

// memCompVertBlocks streams vert codec blocks out of a compressed-mem part's
// resident bytes: compVertBlocks without the blockStream — every block is
// already contiguous in memory, so there is no carry, no prefetch and no vfs.
type memCompVertBlocks struct {
	buf       []byte
	dec       []uint32
	skip      int
	remaining int
	blk       int
	err       error
}

func (c *memCompVertBlocks) NextBlock() ([]uint32, bool) {
	if c.err != nil || c.remaining <= 0 {
		return nil, false
	}
	if cap(c.dec) < codecBlockVals {
		c.dec = make([]uint32, codecBlockVals)
	}
	for {
		vals, consumed, err := decodeCodecBlock(c.buf, true, c.dec[:codecBlockVals])
		if err != nil {
			c.err = corruptAt(memBlockPath, c.blk, err)
			return nil, false
		}
		if consumed == 0 {
			c.err = corruptAt(memBlockPath, c.blk, fmt.Errorf("truncated compressed vert stream (%d units missing)", c.remaining))
			return nil, false
		}
		c.buf = c.buf[consumed:]
		c.blk++
		if c.skip >= len(vals) {
			c.skip -= len(vals)
			continue
		}
		out := vals[c.skip:]
		c.skip = 0
		if len(out) > c.remaining {
			out = out[:c.remaining]
		}
		c.remaining -= len(out)
		if len(out) == 0 {
			continue
		}
		return out, true
	}
}

func (c *memCompVertBlocks) Err() error { return c.err }

func (c *memCompVertBlocks) Close() error { return nil }

// memCompBoundBlocks streams a compressed-mem part's cnt blocks as global
// group-end boundaries, like compBoundBlocks: skipped leading cnt values do
// not advance cum — the starting base already accounts for them.
type memCompBoundBlocks struct {
	buf       []byte
	dec       []uint32
	out       []uint64
	skip      int
	remaining int
	cum       uint64
	blk       int
	err       error
}

func (c *memCompBoundBlocks) NextBlock() ([]uint64, bool) {
	if c.err != nil || c.remaining <= 0 {
		return nil, false
	}
	if cap(c.dec) < codecBlockVals {
		c.dec = make([]uint32, codecBlockVals)
	}
	for {
		vals, consumed, err := decodeCodecBlock(c.buf, false, c.dec[:codecBlockVals])
		if err != nil {
			c.err = corruptAt(memBlockPath, c.blk, err)
			return nil, false
		}
		if consumed == 0 {
			c.err = corruptAt(memBlockPath, c.blk, fmt.Errorf("truncated compressed cnt stream (%d groups missing)", c.remaining))
			return nil, false
		}
		c.buf = c.buf[consumed:]
		c.blk++
		if c.skip >= len(vals) {
			c.skip -= len(vals)
			continue
		}
		vals = vals[c.skip:]
		c.skip = 0
		if len(vals) > c.remaining {
			vals = vals[:c.remaining]
		}
		if len(vals) == 0 {
			continue
		}
		if cap(c.out) < len(vals) {
			c.out = make([]uint64, codecBlockVals)
		}
		out := c.out[:len(vals)]
		cum := c.cum
		for i, v := range vals {
			cum += uint64(v)
			out[i] = cum
		}
		c.cum = cum
		c.remaining -= len(out)
		return out, true
	}
}

func (c *memCompBoundBlocks) Err() error { return c.err }

func (c *memCompBoundBlocks) Close() error { return nil }

// compressResident squeezes a flushed, still-raw part writer into encoded
// codec blocks in place — the governor's step before any disk spill. Only
// the governor calls this, and only after the owner's Flush, so the raw
// arrays are quiescent. The attempt is recorded even when the part is
// incompressible, so the governor does not retry it forever.
func (p *hybridPartWriter) compressResident() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.migrated || p.rcompressed.Load() {
		return
	}
	p.rcompressed.Store(true)
	comp := &partComp{}
	var scratch []byte
	cverts := encodeResidentVerts(nil, p.verts, comp, &scratch)
	ccnts := encodeResidentCnts(nil, p.counts, comp, &scratch)
	chunkCum := cntChunkCum(p.counts)
	now := int64(len(cverts)+len(ccnts)) + int64(len(chunkCum))*8 + comp.dirBytes()
	old := p.bytes.Load()
	if now >= old {
		return // incompressible; the spill path can still take it
	}
	p.cnumVerts, p.cnumGroups = len(p.verts), len(p.counts)
	p.cverts, p.ccnts, p.rcomp, p.rchunkCum = cverts, ccnts, comp, chunkCum
	poolPutU32(p.verts)
	poolPutU32(p.counts)
	p.verts, p.counts = nil, nil
	p.bytes.Store(now)
	p.b.gov.noteFree(old - now)
}
