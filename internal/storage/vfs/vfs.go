// Package vfs is the filesystem seam under Kaleido's spill path: a minimal
// create/read/write/sync/remove interface threaded through the write queue,
// the level builders, the part rewriter, and the prefetch readers. Production
// code runs on the zero-value OS implementation (plain *os.File); tests and
// kbench -faults substitute a deterministic fault-injecting implementation
// (FaultFS) to exercise the retry, integrity, and abort paths against seeded
// ENOSPC, EIO, short writes, latency, and bit flips.
package vfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the spill path uses: append-only sequential
// writes (the write queue), positioned reads (prefetch and random access),
// and lifecycle. Size replaces Stat — the only metadata the storage layer
// ever asks for.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Name returns the path the file was created with.
	Name() string
	// Size returns the current byte length of the file.
	Size() (int64, error)
	// Sync flushes the file's data to stable storage.
	Sync() error
}

// FS creates and removes spill files and directories. Implementations must
// be safe for concurrent use.
type FS interface {
	// Create opens name for read/write, creating or truncating it.
	Create(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory path.
	MkdirAll(path string) error
	// MkdirTemp creates a fresh directory under dir (pattern as in
	// os.MkdirTemp) and returns its path.
	MkdirTemp(dir, pattern string) (string, error)
	// RemoveAll deletes a directory tree.
	RemoveAll(path string) error
}

// OS is the production FS: plain os calls. The zero value is ready to use.
type OS struct{}

// Create implements FS.
func (OS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

// MkdirTemp implements FS.
func (OS) MkdirTemp(dir, pattern string) (string, error) { return os.MkdirTemp(dir, pattern) }

// RemoveAll implements FS.
func (OS) RemoveAll(path string) error { return os.RemoveAll(path) }

// osFile adapts *os.File to File (Size via Stat).
type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// OrOS returns fs, or the zero-value OS implementation when fs is nil — the
// default-resolution helper every layer that accepts an optional FS uses.
func OrOS(fs FS) FS {
	if fs == nil {
		return OS{}
	}
	return fs
}
