package vfs

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"syscall"
	"testing"
)

// TestOSRoundTrip: the production FS writes, reads back, sizes, and removes.
func TestOSRoundTrip(t *testing.T) {
	fs := OrOS(nil)
	dir, err := fs.MkdirTemp(t.TempDir(), "run-")
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "part.bin")
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("kaleido spill bytes")
	if n, err := f.Write(data); err != nil || n != len(data) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	if f.Name() != name {
		t.Fatalf("Name() = %q, want %q", f.Name(), name)
	}
	if sz, err := f.Size(); err != nil || sz != int64(len(data)) {
		t.Fatalf("Size() = %d, %v", sz, err)
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(name); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFSDeterministic: the same seed over the same I/O sequence injects
// the identical fault schedule — the property the conformance matrix relies
// on to pin embedding counts under faults.
func TestFaultFSDeterministic(t *testing.T) {
	run := func(seed int64) (FaultStats, []error) {
		ff := NewFaultFS(nil, Fault{Seed: seed, ReadErrP: 0.3, WriteErrP: 0.3, ShortWriteP: 0.2})
		f, err := ff.Create(filepath.Join(t.TempDir(), "d.bin"))
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var errs []error
		buf := make([]byte, 64)
		for i := 0; i < 50; i++ {
			_, werr := f.Write(buf)
			_, rerr := f.ReadAt(buf[:8], 0)
			errs = append(errs, werr, rerr)
		}
		return ff.Stats(), errs
	}
	s1, e1 := run(7)
	s2, e2 := run(7)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("same seed, different error at op %d: %v vs %v", i, e1[i], e2[i])
		}
	}
	if s1.WriteErrs == 0 || s1.ReadErrs == 0 || s1.ShortWrites == 0 {
		t.Fatalf("p=0.3/0.2 over 50 ops injected nothing: %+v", s1)
	}
	s3, _ := run(8)
	if s1 == s3 {
		t.Fatalf("different seeds, identical stats: %+v", s1)
	}
}

// TestFaultFSInjectedErrnos: injected failures classify like real device
// errors via errors.Is.
func TestFaultFSInjectedErrnos(t *testing.T) {
	ff := NewFaultFS(nil, Fault{Seed: 1, ReadErrP: 1})
	f, err := ff.Create(filepath.Join(t.TempDir(), "e.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.ReadAt(make([]byte, 4), 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("injected read error %v is not EIO", err)
	}
}

// TestFaultFSWriteCap: writes past the cap fail with ENOSPC, persistently.
func TestFaultFSWriteCap(t *testing.T) {
	ff := NewFaultFS(nil, Fault{Seed: 1, WriteCap: 100})
	f, err := ff.Create(filepath.Join(t.TempDir(), "cap.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatalf("write under cap: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte{0}); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d past cap: %v, want ENOSPC", i, err)
		}
	}
	if st := ff.Stats(); st.NoSpaceFails != 3 {
		t.Fatalf("NoSpaceFails = %d, want 3", st.NoSpaceFails)
	}
}

// TestFaultFSBitFlip: a forced bit flip corrupts exactly one bit of the read.
func TestFaultFSBitFlip(t *testing.T) {
	ff := NewFaultFS(nil, Fault{Seed: 3, BitFlipP: 1})
	f, err := ff.Create(filepath.Join(t.TempDir(), "flip.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := make([]byte, 32)
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^data[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bits, want 1", diff)
	}
	if st := ff.Stats(); st.BitFlips != 1 {
		t.Fatalf("BitFlips = %d, want 1", st.BitFlips)
	}
}

// TestFaultFSShortWrite: a short write persists the returned prefix and
// reports io.ErrShortWrite, honoring the io.Writer contract the queue's
// resume-from-remainder loop depends on.
func TestFaultFSShortWrite(t *testing.T) {
	ff := NewFaultFS(nil, Fault{Seed: 5, ShortWriteP: 1})
	f, err := ff.Create(filepath.Join(t.TempDir(), "short.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := []byte("0123456789abcdef")
	n, err := f.Write(data)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
	if n <= 0 || n >= len(data) {
		t.Fatalf("short write n = %d outside (0, %d)", n, len(data))
	}
	if sz, err := f.Size(); err != nil || sz != int64(n) {
		t.Fatalf("Size() = %d, %v; want %d", sz, err, n)
	}
	got := make([]byte, n)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[:n]) {
		t.Fatalf("persisted prefix %q, want %q", got, data[:n])
	}
}

// TestFaultFSCleanupNeverFaulted: Remove/RemoveAll pass through even under
// total fault pressure — a failed run must still tear down.
func TestFaultFSCleanupNeverFaulted(t *testing.T) {
	ff := NewFaultFS(nil, Fault{Seed: 9, ReadErrP: 1, WriteErrP: 1})
	dir, err := ff.MkdirTemp(t.TempDir(), "run-")
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "f.bin")
	f, err := ff.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := ff.Remove(name); err != nil {
		t.Fatalf("Remove faulted: %v", err)
	}
	if err := ff.RemoveAll(dir); err != nil {
		t.Fatalf("RemoveAll faulted: %v", err)
	}
}
