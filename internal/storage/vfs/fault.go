package vfs

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Fault configures a FaultFS. Probabilities are per I/O call in [0, 1];
// zero fields inject nothing, so a partially populated Fault targets one
// failure mode at a time. All injection is driven by one seeded RNG, so a
// given (seed, workload) pair replays the same fault sequence when the
// workload's I/O call order is deterministic.
type Fault struct {
	// Seed seeds the deterministic fault stream.
	Seed int64

	// ReadErrP is the probability a ReadAt fails with a transient EIO.
	ReadErrP float64
	// WriteErrP is the probability a Write fails with a transient EIO
	// (no bytes written).
	WriteErrP float64
	// ShortWriteP is the probability a Write persists only a prefix and
	// returns io.ErrShortWrite — the caller must resume from the remainder.
	ShortWriteP float64
	// BitFlipP is the probability a ReadAt flips one random bit of the
	// returned buffer — silent corruption the block checksums must catch.
	BitFlipP float64
	// LatencyP is the probability an I/O call sleeps Latency first.
	LatencyP float64
	// Latency is the injected delay.
	Latency time.Duration

	// WriteCap, when positive, is the total bytes writable through the FS
	// before every further Write fails with ENOSPC — the disk-full scenario.
	// ENOSPC is hard: it persists for the life of the FaultFS.
	WriteCap int64
}

// FaultStats counts what a FaultFS actually injected — tests assert against
// these instead of trusting probabilities.
type FaultStats struct {
	Reads, Writes                     int64
	ReadErrs, WriteErrs, ShortWrites  int64
	BitFlips, Latencies, NoSpaceFails int64
}

// FaultFS wraps an inner FS and injects the configured faults on file reads
// and writes. Create/Remove/Mkdir/RemoveAll are passed through untouched —
// cleanup must always succeed, so a faulty run can still tear down — and
// injected errors carry syscall errnos (EIO, ENOSPC) so the storage layer's
// transient/hard classification sees exactly what a real device would return.
type FaultFS struct {
	inner FS
	cfg   Fault

	mu      sync.Mutex
	rng     *rand.Rand
	written int64

	reads, writes                    atomic.Int64
	readErrs, writeErrs, shortWrites atomic.Int64
	bitFlips, latencies, noSpace     atomic.Int64
}

// NewFaultFS wraps inner (nil = the OS implementation) with fault injection.
func NewFaultFS(inner FS, cfg Fault) *FaultFS {
	return &FaultFS{inner: OrOS(inner), cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injection counters.
func (f *FaultFS) Stats() FaultStats {
	return FaultStats{
		Reads: f.reads.Load(), Writes: f.writes.Load(),
		ReadErrs: f.readErrs.Load(), WriteErrs: f.writeErrs.Load(),
		ShortWrites: f.shortWrites.Load(), BitFlips: f.bitFlips.Load(),
		Latencies: f.latencies.Load(), NoSpaceFails: f.noSpace.Load(),
	}
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

// Remove implements FS (never faulted: cleanup must always succeed).
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(path string) error { return f.inner.MkdirAll(path) }

// MkdirTemp implements FS.
func (f *FaultFS) MkdirTemp(dir, pattern string) (string, error) {
	return f.inner.MkdirTemp(dir, pattern)
}

// RemoveAll implements FS (never faulted).
func (f *FaultFS) RemoveAll(path string) error { return f.inner.RemoveAll(path) }

// roll draws fault decisions for one I/O call under the shared RNG. flipBit
// is a bit index to flip in the read buffer (-1 = none), shortN the prefix
// length of a short write (-1 = full write).
type roll struct {
	sleep   bool
	fail    bool
	flipBit int64
	shortN  int
}

func (f *FaultFS) rollRead(n int) (r roll) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r.flipBit = -1
	r.sleep = f.cfg.LatencyP > 0 && f.rng.Float64() < f.cfg.LatencyP
	r.fail = f.cfg.ReadErrP > 0 && f.rng.Float64() < f.cfg.ReadErrP
	if !r.fail && n > 0 && f.cfg.BitFlipP > 0 && f.rng.Float64() < f.cfg.BitFlipP {
		r.flipBit = f.rng.Int63n(int64(n) * 8)
	}
	return r
}

func (f *FaultFS) rollWrite(n int) (r roll, noSpace bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r.flipBit, r.shortN = -1, -1
	if f.cfg.WriteCap > 0 && f.written+int64(n) > f.cfg.WriteCap {
		return r, true
	}
	r.sleep = f.cfg.LatencyP > 0 && f.rng.Float64() < f.cfg.LatencyP
	r.fail = f.cfg.WriteErrP > 0 && f.rng.Float64() < f.cfg.WriteErrP
	if !r.fail && n > 1 && f.cfg.ShortWriteP > 0 && f.rng.Float64() < f.cfg.ShortWriteP {
		r.shortN = 1 + f.rng.Intn(n-1)
	}
	if !r.fail {
		wrote := int64(n)
		if r.shortN >= 0 {
			wrote = int64(r.shortN)
		}
		f.written += wrote
	}
	return r, false
}

// faultFile injects the FS's faults on one file's reads and writes.
type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f := ff.fs
	f.reads.Add(1)
	r := f.rollRead(len(p))
	if r.sleep {
		f.latencies.Add(1)
		time.Sleep(f.cfg.Latency)
	}
	if r.fail {
		f.readErrs.Add(1)
		return 0, &faultErr{op: "read", path: ff.Name(), errno: syscall.EIO}
	}
	n, err := ff.File.ReadAt(p, off)
	if err == nil && r.flipBit >= 0 && int(r.flipBit/8) < n {
		f.bitFlips.Add(1)
		p[r.flipBit/8] ^= 1 << (r.flipBit % 8)
	}
	return n, err
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.writes.Add(1)
	r, noSpace := f.rollWrite(len(p))
	if noSpace {
		f.noSpace.Add(1)
		return 0, &faultErr{op: "write", path: ff.Name(), errno: syscall.ENOSPC}
	}
	if r.sleep {
		f.latencies.Add(1)
		time.Sleep(f.cfg.Latency)
	}
	if r.fail {
		f.writeErrs.Add(1)
		return 0, &faultErr{op: "write", path: ff.Name(), errno: syscall.EIO}
	}
	if r.shortN >= 0 {
		f.shortWrites.Add(1)
		n, err := ff.File.Write(p[:r.shortN])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return ff.File.Write(p)
}

// faultErr is an injected I/O error carrying a syscall errno, so
// errors.Is(err, syscall.EIO/ENOSPC) classifies it like a real device error.
type faultErr struct {
	op, path string
	errno    syscall.Errno
}

func (e *faultErr) Error() string {
	return "vfs: injected " + e.op + " fault on " + e.path + ": " + e.errno.Error()
}

func (e *faultErr) Unwrap() error { return e.errno }
