package storage

// Robustness tests for the hardened spill path: CRC-checked block decodes,
// retry/backoff against injected transient faults, prompt aborts, and the
// typed error taxonomy (ErrSpillIO / ErrSpillCorrupt / ErrNoSpace).

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"kaleido/internal/memtrack"
	"kaleido/internal/storage/vfs"
)

// buildDiskOn builds a compressed DiskLevel for groups on the given vfs.
func buildDiskOn(t *testing.T, fs vfs.FS, groups [][]uint32, nparts int) (*DiskLevel, *memtrack.Tracker, error) {
	t.Helper()
	tracker := memtrack.New()
	q := NewWriteQueue(256, tracker) // tiny buffers: many queue writes
	t.Cleanup(func() { q.Close() })
	db, err := NewDiskLevelBuilder(fs, t.TempDir(), 2, nparts, q, 128, tracker, CompressionAuto)
	if err != nil {
		return nil, tracker, err
	}
	per := (len(groups) + nparts - 1) / nparts
	for i, g := range groups {
		if err := db.Part(i/per).AppendGroup(g, nil); err != nil {
			db.Abort()
			return nil, tracker, err
		}
	}
	for i := 0; i < nparts; i++ {
		if err := db.Part(i).Flush(); err != nil {
			db.Abort()
			return nil, tracker, err
		}
	}
	lvl, err := db.Finish()
	if err != nil {
		return nil, tracker, err
	}
	dl := lvl.(*DiskLevel)
	t.Cleanup(func() { dl.Close() })
	return dl, tracker, nil
}

func readAllVerts(t *testing.T, dl *DiskLevel) ([]uint32, error) {
	t.Helper()
	var out []uint32
	c := dl.VertCursor(0, dl.Len())
	defer c.Close()
	for {
		v, ok := c.Next()
		if !ok {
			return out, c.Err()
		}
		out = append(out, uint32(v))
	}
}

// TestRetryRidesOutTransientFaults: a fault schedule of EIO reads/writes and
// short writes at p=20% must be absorbed by the retry policy — the level
// builds, every word reads back identical to a fault-free build, and the
// retry counter shows the faults were real.
func TestRetryRidesOutTransientFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	groups := make([][]uint32, 300)
	for i := range groups {
		g := make([]uint32, rng.Intn(6))
		for j := range g {
			g[j] = rng.Uint32() % 5000
		}
		groups[i] = g
	}

	clean, _, err := buildDiskOn(t, nil, groups, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := readAllVerts(t, clean)
	if err != nil {
		t.Fatal(err)
	}

	ff := vfs.NewFaultFS(nil, vfs.Fault{Seed: 42, ReadErrP: 0.2, WriteErrP: 0.2, ShortWriteP: 0.2})
	faulty, tracker, err := buildDiskOn(t, ff, groups, 3)
	if err != nil {
		t.Fatalf("build under transient faults: %v", err)
	}
	got, err := readAllVerts(t, faulty)
	if err != nil {
		t.Fatalf("read under transient faults: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("vert %d: %d, want %d", i, got[i], want[i])
		}
	}
	st := ff.Stats()
	if st.WriteErrs+st.ShortWrites == 0 || st.ReadErrs == 0 {
		t.Fatalf("fault schedule injected nothing: %+v", st)
	}
	if tracker.IORetries() == 0 {
		t.Fatal("retries absorbed faults but IORetries counter is zero")
	}
}

// TestChecksumCatchesBitFlip: a single flipped payload bit in a spill file
// must surface as ErrSpillCorrupt carrying block coordinates — never as a
// silent misdecode.
func TestChecksumCatchesBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	groups := make([][]uint32, 400)
	for i := range groups {
		g := make([]uint32, 2+rng.Intn(5))
		for j := range g {
			g[j] = rng.Uint32() % 100000
		}
		groups[i] = g
	}
	dl, _, err := buildDiskOn(t, nil, groups, 1)
	if err != nil {
		t.Fatal(err)
	}
	name := dl.parts[0].vf.Name()
	sz, err := dl.parts[0].vf.Size()
	if err != nil || sz < 32 {
		t.Fatalf("vert file size %d, %v", sz, err)
	}
	// Flip one bit deep in the file: past the first block header, inside
	// some block's payload.
	f, err := os.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	pos := sz / 2
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, pos); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b, pos); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = readAllVerts(t, dl)
	if err == nil {
		t.Fatal("flipped bit decoded without error")
	}
	if !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("corruption error %v does not wrap ErrSpillCorrupt", err)
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		if ce.Path != name || ce.Block < 0 {
			t.Fatalf("corrupt coordinates %q block %d, want file %q", ce.Path, ce.Block, name)
		}
	}
}

// TestBitFlipViaFaultFSSurfacesCorrupt: the same property end-to-end through
// the injection seam — every read flips a bit, so the first compressed block
// decode must fail the CRC.
func TestBitFlipViaFaultFSSurfacesCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	groups := make([][]uint32, 300)
	for i := range groups {
		g := make([]uint32, 1+rng.Intn(4))
		for j := range g {
			g[j] = rng.Uint32() % 4000
		}
		groups[i] = g
	}
	// Build clean, then read through a bit-flipping FS: reads are the only
	// faulted operations, so the build is byte-identical to fault-free.
	ff := vfs.NewFaultFS(nil, vfs.Fault{Seed: 21, BitFlipP: 1})
	dl, _, err := buildDiskOn(t, ff, groups, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := readAllVerts(t, dl); !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("bit-flipped read returned %v, want ErrSpillCorrupt", err)
	}
}

// TestNoSpaceIsTerminal: once the device is full, the build fails with
// ErrNoSpace (not a retry storm), and Abort still removes every spill file.
func TestNoSpaceIsTerminal(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	groups := make([][]uint32, 2000)
	for i := range groups {
		g := make([]uint32, 4)
		for j := range g {
			g[j] = rng.Uint32()
		}
		groups[i] = g
	}
	ff := vfs.NewFaultFS(nil, vfs.Fault{Seed: 23, WriteCap: 512})
	_, _, err := buildDiskOn(t, ff, groups, 2)
	if err == nil {
		t.Fatal("build on a full device succeeded")
	}
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("full-device error %v does not wrap ErrNoSpace", err)
	}
	if errors.Is(err, ErrSpillIO) {
		t.Fatalf("ENOSPC double-classified as ErrSpillIO: %v", err)
	}
	if st := ff.Stats(); st.NoSpaceFails == 0 {
		t.Fatalf("no ENOSPC was actually injected: %+v", st)
	}
}

// stubFile is a vfs.File whose writes always fail with a scripted error,
// signalling the first attempt and optionally blocking until released — the
// scaffolding of the abort-promptness regression test.
type stubFile struct {
	calls   atomic.Int32
	started chan struct{}
	release chan struct{}
	err     error
}

func (s *stubFile) Write(p []byte) (int, error) {
	if s.calls.Add(1) == 1 {
		close(s.started)
	}
	if s.release != nil {
		<-s.release
	}
	return 0, s.err
}

func (s *stubFile) ReadAt(p []byte, off int64) (int, error) { return 0, io.EOF }
func (s *stubFile) Close() error                            { return nil }
func (s *stubFile) Name() string                            { return "stub" }
func (s *stubFile) Size() (int64, error)                    { return 0, nil }
func (s *stubFile) Sync() error                             { return nil }

// TestWriteQueueAbortInterruptsBackoff is the S2 regression: Abort during an
// in-flight retry must return promptly — the backoff sleep is interrupted,
// the retry schedule is not slept out, and no further write attempts happen.
func TestWriteQueueAbortInterruptsBackoff(t *testing.T) {
	q := NewWriteQueue(64, nil)
	defer q.Close()
	sf := &stubFile{started: make(chan struct{}), release: make(chan struct{}), err: syscall.EIO}
	q.Submit(sf, append(q.GetBuf(), 1, 2, 3))
	<-sf.started // the I/O goroutine is inside the first write attempt
	q.Abort()    // ...and the abort lands before its backoff sleep begins
	close(sf.release)
	start := time.Now()
	_ = q.Barrier()
	if el := time.Since(start); el > retryCap {
		t.Fatalf("aborted retry took %v, longer than one backoff cap %v", el, retryCap)
	}
	if n := sf.calls.Load(); n != 1 {
		t.Fatalf("write attempted %d times after abort, want 1", n)
	}
	if err := q.Reset(); err == nil {
		t.Fatal("Reset cleared no error from the aborted write")
	}
}

// TestSleepBackoffCancel: a closed cancel channel returns immediately even at
// the deepest (capped) backoff step; a nil channel sleeps the schedule out.
func TestSleepBackoffCancel(t *testing.T) {
	closed := make(chan struct{})
	close(closed)
	start := time.Now()
	if sleepBackoff(6, closed) {
		t.Fatal("closed cancel channel reported an uninterrupted sleep")
	}
	if el := time.Since(start); el > retryCap/2 {
		t.Fatalf("cancelled backoff still slept %v", el)
	}
	if !sleepBackoff(0, nil) {
		t.Fatal("nil cancel channel must complete the sleep")
	}
}

// TestRetryReadAtTruncation: a read past EOF is corruption (the directory
// promised more bytes than the file holds), not a retryable I/O error.
func TestRetryReadAtTruncation(t *testing.T) {
	fs := vfs.OrOS(nil)
	name := t.TempDir() + "/trunc.bin"
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	err = retryReadAt(f, make([]byte, 64), 0, nil, nil)
	if !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("truncated read returned %v, want ErrSpillCorrupt", err)
	}
	if errors.Is(err, ErrSpillIO) {
		t.Fatalf("truncation double-classified as ErrSpillIO: %v", err)
	}
}
