package storage

import (
	"sync"

	"kaleido/internal/memtrack"
	"kaleido/internal/storage/vfs"
)

// DefaultBlockSize is the prefetch window granularity for disk cursors.
const DefaultBlockSize = 256 << 10

// fileSpan is a byte range of one file.
type fileSpan struct {
	f   vfs.File
	off int64
	n   int64
}

// blockStream reads a sequence of file spans as fixed-size blocks with one
// block of read-ahead — the sliding window of §4.1: while the caller
// processes the main block, the goroutine loads the candidate block; when
// the main block is consumed the window slides.
type blockStream struct {
	ch       chan rblock
	stop     chan struct{}
	stopOnce func()
	cur      []byte
	pos      int
	err      error
	done     bool
}

type rblock struct {
	data []byte
	err  error
}

func newBlockStream(spans []fileSpan, blockSize int, tracker *memtrack.Tracker) *blockStream {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	blockSize = blockSize &^ 7 // keep 8-byte alignment for uint64 streams
	if blockSize == 0 {
		blockSize = 8
	}
	s := &blockStream{
		ch:   make(chan rblock, 1),
		stop: make(chan struct{}),
	}
	var once sync.Once
	s.stopOnce = func() { once.Do(func() { close(s.stop) }) }
	go func() {
		defer close(s.ch)
		for _, sp := range spans {
			for off := int64(0); off < sp.n; off += int64(blockSize) {
				n := int64(blockSize)
				if off+n > sp.n {
					n = sp.n - off
				}
				buf := make([]byte, n)
				// Transient read errors retry with backoff; Close (s.stop)
				// interrupts a backoff sleep so teardown never waits one out.
				// EOF means the spill file is shorter than its directory says
				// — truncation, surfaced as corruption inside retryReadAt.
				if err := retryReadAt(sp.f, buf, sp.off+off, s.stop, tracker); err != nil {
					select {
					case s.ch <- rblock{err: err}:
					case <-s.stop:
					}
					return
				}
				if tracker != nil {
					tracker.ReadIO(n)
				}
				select {
				case s.ch <- rblock{data: buf}:
				case <-s.stop:
					return
				}
			}
		}
	}()
	return s
}

// nextBlock returns the unread remainder of the current block, receiving the
// following prefetched block once the current one is consumed — one channel
// receive per block instead of one dynamic call per word. The returned slice
// is valid until the next nextBlock call.
func (s *blockStream) nextBlock() ([]byte, bool) {
	if s.err != nil || s.done {
		return nil, false
	}
	for s.pos >= len(s.cur) {
		b, ok := <-s.ch
		if !ok {
			s.done = true
			return nil, false
		}
		if b.err != nil {
			s.err = b.err
			return nil, false
		}
		s.cur, s.pos = b.data, 0
	}
	out := s.cur[s.pos:]
	s.pos = len(s.cur)
	return out, true
}

// Err returns the first stream error.
func (s *blockStream) Err() error { return s.err }

// Close stops the prefetch goroutine. Safe to call multiple times.
func (s *blockStream) Close() error {
	s.stopOnce()
	// Drain so the goroutine is not blocked on send.
	for range s.ch {
	}
	return nil
}
