// Package service is the mining-as-a-service layer behind cmd/kaleidod: an
// HTTP/JSON front end that accepts JobSpec submissions, runs each job on a
// shared kaleido.Engine, and exposes status, results, metrics and
// cancellation.
//
// Every job passes the engine's admission controller before it executes:
// Submit queues the job, and its runner calls Engine.Admit with the spec's
// priority, queue deadline and projected resident bytes (defaulted from
// Graph.ProjectResidentBytes). A job is released only when its projection
// fits under the engine's admission watermark, so N submitted jobs drain
// through the shared memory budget in priority order instead of all starting
// at once and shoving each other onto disk. Deadline-expired jobs fail with
// kaleido.ErrAdmitDeadline; a full queue rejects with kaleido.ErrQueueFull.
//
// Input graphs load once through a refcounted GraphCache and are shared by
// every job naming the same dataset or file.
//
// Routes:
//
//	POST   /jobs             submit a JobSpec, returns {"id": ...} (202)
//	GET    /jobs             list jobs, newest first
//	GET    /jobs/{id}        status: state, timings, queue wait, stats
//	GET    /jobs/{id}/result result of a done job (409 until done)
//	POST   /jobs/{id}/cancel cancel a queued or running job
//	DELETE /jobs/{id}        same as cancel
//	GET    /metrics          engine + cache + job-state counters
//	GET    /healthz          liveness ("ok", or 503 while draining)
//
// Lifecycle: queued → running → done | failed | canceled. Drain stops
// admission of new jobs and waits for in-flight ones — the SIGTERM path of
// cmd/kaleidod.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"kaleido"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	// StateQueued: submitted, waiting for graph load + budget admission.
	StateQueued JobState = "queued"
	// StateRunning: admitted and executing on the engine.
	StateRunning JobState = "running"
	// StateDone: finished with a result.
	StateDone JobState = "done"
	// StateFailed: finished with an error (admission deadline, bad input,
	// run failure).
	StateFailed JobState = "failed"
	// StateCanceled: canceled by the client while queued or running.
	StateCanceled JobState = "canceled"
)

// Job is the server-side record of one submitted job.
type Job struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	// Error holds the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// ErrorKind classifies typed failures: "queue_full", "deadline",
	// "spill_io", "spill_corrupt", "no_space", or "" for everything else.
	ErrorKind string `json:"error_kind,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt bracket the lifecycle; StartedAt is
	// the moment the job cleared admission.
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
	// QueueWaitMS is how long the job waited for budget admission.
	QueueWaitMS int64 `json:"queue_wait_ms"`
	// ProjectedBytes is the resident-bytes projection the job was admitted
	// under.
	ProjectedBytes int64 `json:"projected_bytes,omitempty"`
	// Result is present once State is done.
	Result *JobResult `json:"result,omitempty"`

	cancel context.CancelFunc
}

// Server runs mining jobs over one shared Engine. Create with NewServer;
// the zero value is not usable.
type Server struct {
	eng      *kaleido.Engine
	cache    *GraphCache
	cacheDir string

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order; listings walk it newest-first
	seq      int
	draining bool
	wg       sync.WaitGroup

	// queueWaitTotalMS accumulates admission waits for /metrics.
	queueWaitTotalMS int64
}

// NewServer creates a Server over eng. cacheDir is the on-disk dataset cache
// ("" regenerates synthetic datasets per load); cacheGraphs bounds the
// in-memory graph cache's unreferenced entries (<= 0 keeps none).
func NewServer(eng *kaleido.Engine, cacheDir string, cacheGraphs int) *Server {
	return &Server{
		eng:      eng,
		cache:    NewGraphCache(cacheGraphs),
		cacheDir: cacheDir,
		jobs:     make(map[string]*Job),
	}
}

// Engine returns the shared engine (for metrics and tests).
func (s *Server) Engine() *kaleido.Engine { return s.eng }

// Submit validates spec, registers a job, and starts its runner. It returns
// the job record immediately — execution is asynchronous; poll /jobs/{id}.
// Submissions are refused once Drain has been called.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return nil, errDraining
	}
	s.seq++
	job := &Job{
		ID:          fmt.Sprintf("j%d", s.seq),
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now(),
		cancel:      cancel,
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.wg.Add(1)
	s.mu.Unlock()
	go s.runJob(ctx, cancel, job)
	return s.snapshot(job.ID), nil
}

var errDraining = errors.New("service: draining, not accepting jobs")

// runJob is a job's whole life: load (or share) the graph, clear admission,
// execute, record the outcome. The admission is released only after
// FinishedAt is set, so under a serializing budget a later job's StartedAt
// never precedes an earlier job's FinishedAt.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, job *Job) {
	defer s.wg.Done()
	defer cancel()

	spec := &job.Spec
	g, releaseGraph, err := s.cache.Acquire(spec.GraphKey(), func() (*kaleido.Graph, error) {
		return spec.LoadGraph(s.cacheDir)
	})
	if err != nil {
		s.finishJob(job, nil, err)
		return
	}
	defer releaseGraph()

	projected := spec.ProjectedBytes
	if projected == 0 {
		if app, aerr := spec.AppID(); aerr == nil {
			projected = g.ProjectResidentBytes(app, spec.K)
		}
	}
	s.mu.Lock()
	job.ProjectedBytes = projected
	s.mu.Unlock()

	adm, err := s.eng.Admit(ctx, kaleido.AdmitRequest{
		ProjectedBytes: projected,
		Priority:       spec.Priority,
		Deadline:       spec.Deadline(job.SubmittedAt),
	})
	if err != nil {
		s.finishJob(job, nil, err)
		return
	}
	defer adm.Release()

	started := time.Now()
	wait := started.Sub(job.SubmittedAt)
	s.mu.Lock()
	if job.State == StateQueued {
		job.State = StateRunning
		job.StartedAt = started
		job.QueueWaitMS = wait.Milliseconds()
		s.queueWaitTotalMS += wait.Milliseconds()
	}
	s.mu.Unlock()

	var stats kaleido.Stats
	res, err := Execute(ctx, s.eng, g, spec, &stats)
	s.finishJob(job, res, err)
}

// finishJob records a job's terminal state. It runs before the runner's
// deferred admission release (defers run LIFO after the function body), so
// FinishedAt is visible before the freed headroom can admit a successor.
func (s *Server) finishJob(job *Job, res *JobResult, err error) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	job.FinishedAt = now
	switch {
	case err == nil:
		job.State = StateDone
		job.Result = res
	case errors.Is(err, context.Canceled):
		job.State = StateCanceled
	default:
		job.State = StateFailed
		job.Error = err.Error()
		job.ErrorKind = errorKind(err)
	}
}

// errorKind maps the system's typed errors to stable wire labels.
func errorKind(err error) string {
	switch {
	case errors.Is(err, kaleido.ErrQueueFull):
		return "queue_full"
	case errors.Is(err, kaleido.ErrAdmitDeadline):
		return "deadline"
	case errors.Is(err, kaleido.ErrSpillCorrupt):
		return "spill_corrupt"
	case errors.Is(err, kaleido.ErrNoSpace):
		return "no_space"
	case errors.Is(err, kaleido.ErrSpillIO):
		return "spill_io"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	}
	return ""
}

// Cancel cancels a queued or running job. Terminal jobs are left as they
// are; the returned job reflects the state at call time (the transition to
// canceled lands when the runner observes the cancellation).
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	var cancel context.CancelFunc
	if ok && (job.State == StateQueued || job.State == StateRunning) {
		cancel = job.cancel
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	if cancel != nil {
		cancel()
	}
	return s.snapshot(id), true
}

// Drain stops accepting submissions and waits for in-flight jobs to finish.
// If ctx expires first, the remaining jobs are canceled and Drain waits for
// them to unwind (a canceled run discards pending spill writes and removes
// its spill files), then returns ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for _, job := range s.jobs {
		if job.State == StateQueued || job.State == StateRunning {
			job.cancel()
		}
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// snapshot returns a copy of a job safe to serialize without holding s.mu.
func (s *Server) snapshot(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil
	}
	cp := *job
	cp.cancel = nil
	return &cp
}

// Jobs lists all jobs, newest first.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	s.mu.Unlock()
	out := make([]*Job, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if j := s.snapshot(ids[i]); j != nil {
			out = append(out, j)
		}
	}
	return out
}

// Metrics is the /metrics document: the engine's aggregate snapshot, the
// graph cache's counters, and the server's job-state tallies.
type Metrics struct {
	Engine kaleido.EngineStats `json:"engine"`
	Cache  CacheStats          `json:"cache"`
	// Jobs tallies jobs by state (queued, running, done, failed, canceled).
	Jobs map[JobState]int `json:"jobs"`
	// QueueWaitTotalMS sums the admission wait of every job that cleared
	// the queue — with Jobs, the average wait falls out.
	QueueWaitTotalMS int64 `json:"queue_wait_total_ms"`
	Draining         bool  `json:"draining"`
}

// Metrics returns a snapshot of the server's counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		Engine: s.eng.Stats(),
		Cache:  s.cache.Stats(),
		Jobs:   map[JobState]int{},
	}
	s.mu.Lock()
	for _, job := range s.jobs {
		m.Jobs[job.State]++
	}
	m.QueueWaitTotalMS = s.queueWaitTotalMS
	m.Draining = s.draining
	s.mu.Unlock()
	return m
}

// ServeHTTP routes the service API (hand-rolled: the module targets go1.21,
// before method-qualified ServeMux patterns).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimSuffix(r.URL.Path, "/")
	switch {
	case path == "/healthz":
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	case path == "/metrics" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, s.Metrics())
	case path == "/jobs" && r.Method == http.MethodPost:
		s.handleSubmit(w, r)
	case path == "/jobs" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, s.Jobs())
	case strings.HasPrefix(path, "/jobs/"):
		s.handleJob(w, r, strings.TrimPrefix(path, "/jobs/"))
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad job spec: %w", err))
		return
	}
	job, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errDraining) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request, rest string) {
	id, sub, _ := strings.Cut(rest, "/")
	job := s.snapshot(id)
	if job == nil {
		http.NotFound(w, r)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, job)
	case sub == "" && r.Method == http.MethodDelete,
		sub == "cancel" && r.Method == http.MethodPost:
		job, _ := s.Cancel(id)
		writeJSON(w, http.StatusAccepted, job)
	case sub == "result" && r.Method == http.MethodGet:
		switch job.State {
		case StateDone:
			writeJSON(w, http.StatusOK, job.Result)
		case StateFailed, StateCanceled:
			writeError(w, http.StatusConflict, fmt.Errorf("service: job %s %s: %s", id, job.State, job.Error))
		default:
			writeError(w, http.StatusConflict, fmt.Errorf("service: job %s still %s", id, job.State))
		}
	default:
		http.NotFound(w, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
