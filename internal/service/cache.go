package service

import (
	"sync"

	"kaleido"
)

// GraphCache loads each input graph once and shares it across jobs. Entries
// are keyed by source (JobSpec.GraphKey: "dataset:name" or "file:path") and
// refcounted: a graph is pinned while any job holds it, and unreferenced
// entries are evicted least-recently-used once the cache exceeds its limit.
// Concurrent first acquisitions of the same key coalesce — one loads, the
// rest wait on the same entry — so a burst of jobs over one dataset pays one
// load, not N.
type GraphCache struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*cacheEntry
	useSeq  int64

	hits, misses, evictions int64
}

type cacheEntry struct {
	key      string
	refs     int
	lastUsed int64         // useSeq at last acquire/release; LRU recency
	ready    chan struct{} // closed when the load completes
	g        *kaleido.Graph
	err      error
}

// NewGraphCache creates a cache keeping at most limit unreferenced graphs
// resident (referenced graphs are always resident; limit <= 0 means evict
// every graph as soon as its last reference drops).
func NewGraphCache(limit int) *GraphCache {
	return &GraphCache{limit: limit, entries: make(map[string]*cacheEntry)}
}

// Acquire returns the graph for key, loading it with load on first use. The
// returned release must be called when the job is done with the graph
// (idempotence is the caller's job — release exactly once). A failed load is
// not cached: the entry is dropped so the next Acquire retries.
func (c *GraphCache) Acquire(key string, load func() (*kaleido.Graph, error)) (*kaleido.Graph, func(), error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		e.refs++
		c.useSeq++
		e.lastUsed = c.useSeq
		c.hits++
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The loader we piggybacked on failed; it already dropped the
			// entry, so just report the error.
			return nil, nil, e.err
		}
		return e.g, func() { c.release(e) }, nil
	}
	e = &cacheEntry{key: key, refs: 1, ready: make(chan struct{})}
	c.useSeq++
	e.lastUsed = c.useSeq
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.g, e.err = load()
	if e.err != nil {
		c.mu.Lock()
		// Drop the failed entry (it may already have waiters; they read
		// e.err after ready closes and never call release).
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		close(e.ready)
		return nil, nil, e.err
	}
	close(e.ready)
	return e.g, func() { c.release(e) }, nil
}

func (c *GraphCache) release(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e.refs--
	c.useSeq++
	e.lastUsed = c.useSeq
	c.evictLocked()
}

// evictLocked drops least-recently-used unreferenced entries until at most
// limit of them remain. Referenced entries never evict.
func (c *GraphCache) evictLocked() {
	for {
		idle := 0
		var victim *cacheEntry
		for _, e := range c.entries {
			if e.refs > 0 {
				continue
			}
			idle++
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if idle <= c.limit || victim == nil {
			return
		}
		delete(c.entries, victim.key)
		c.evictions++
	}
}

// CacheStats is a snapshot of the cache's effectiveness counters.
type CacheStats struct {
	// Entries counts resident graphs; Pinned counts those currently held by
	// at least one job.
	Entries int `json:"entries"`
	Pinned  int `json:"pinned"`
	// Hits and Misses count Acquire calls by whether the graph was already
	// resident (or loading); Evictions counts unreferenced graphs dropped by
	// the LRU limit.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats returns a snapshot of the cache counters.
func (c *GraphCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Entries: len(c.entries),
		Hits:    c.hits, Misses: c.misses, Evictions: c.evictions,
	}
	for _, e := range c.entries {
		if e.refs > 0 {
			s.Pinned++
		}
	}
	return s
}
