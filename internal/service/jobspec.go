package service

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kaleido"
)

// JobSpec is the wire description of one mining job — the single encoding
// shared by the kaleidod HTTP API and the kaleido CLI flags, so a flag added
// to one cannot silently drift from the other. The zero value of every field
// means "default"; the tri-state knobs (Predict, Compress, CompressResident)
// use *bool so that an absent JSON field and an explicit false are
// distinguishable, matching the CLI flags that default to true.
type JobSpec struct {
	// App selects the application: "tc", "clique", "motif" or "fsm".
	App string `json:"app"`
	// K is the embedding size of clique/motif/fsm jobs (ignored by tc).
	K int `json:"k,omitempty"`
	// Support is the FSM MNI support threshold.
	Support uint64 `json:"support,omitempty"`
	// Dataset names a built-in synthetic dataset (citeseer, mico, patent,
	// youtube); GraphPath points at an edge-list file. Exactly one must be
	// set.
	Dataset   string `json:"dataset,omitempty"`
	GraphPath string `json:"graph,omitempty"`
	// Threads is the worker count (0 = all CPUs); Shards splits the run into
	// that many concurrent prefix-range sub-runs (0/1 = unsharded).
	Threads int `json:"threads,omitempty"`
	Shards  int `json:"shards,omitempty"`
	// Budget is a human byte size ("512MiB") capping resident intermediate
	// data. Only standalone (CLI) execution honors it — jobs run through an
	// Engine charge the engine's shared budget instead.
	Budget string `json:"budget,omitempty"`
	// SpillDir receives spilled level parts of a standalone budgeted run
	// (daemon jobs spill into the engine's directory).
	SpillDir string `json:"spill_dir,omitempty"`
	// Predict, Compress and CompressResident gate the §4.2 predictor, the
	// spill codec and the compressed-resident tier. nil means on.
	Predict          *bool `json:"predict,omitempty"`
	Compress         *bool `json:"compress,omitempty"`
	CompressResident *bool `json:"compress_resident,omitempty"`
	// Iso selects the isomorphism backend: "eigen" (default), "bliss" or
	// "exact".
	Iso string `json:"iso,omitempty"`

	// Priority orders the admission queue (higher first); QueueDeadlineMS
	// bounds the queue wait (0 = wait indefinitely). ProjectedBytes overrides
	// the engine's own resident-bytes projection (0 = project from the
	// graph). All three are daemon-only: standalone runs start immediately.
	Priority        int   `json:"priority,omitempty"`
	QueueDeadlineMS int64 `json:"queue_deadline_ms,omitempty"`
	ProjectedBytes  int64 `json:"projected_bytes,omitempty"`

	// Result filters for pattern-producing apps (motif, fsm): MinCount drops
	// patterns below that count, TopK keeps only the first K after the
	// deterministic sort. 0 disables either.
	MinCount uint64 `json:"min_count,omitempty"`
	TopK     int    `json:"top_k,omitempty"`
}

// boolOr resolves a tri-state knob: nil means the default (true).
func boolOr(p *bool, def bool) bool {
	if p == nil {
		return def
	}
	return *p
}

// Validate checks the spec for early, friendly errors — the same checks for
// an HTTP submission and a CLI invocation.
func (s *JobSpec) Validate() error {
	if _, err := s.AppID(); err != nil {
		return err
	}
	switch s.App {
	case "clique", "motif", "fsm":
		if s.K < 2 {
			return fmt.Errorf("service: app %q needs k >= 2 (got %d)", s.App, s.K)
		}
	}
	if s.Dataset != "" && s.GraphPath != "" {
		return fmt.Errorf("service: use either dataset or graph, not both")
	}
	if s.Dataset == "" && s.GraphPath == "" {
		return fmt.Errorf("service: need dataset or graph (datasets: %s)",
			strings.Join(kaleido.DatasetNames(), ", "))
	}
	if s.Shards < 0 {
		return fmt.Errorf("service: negative shards %d", s.Shards)
	}
	if s.Budget != "" {
		if _, err := ParseBytes(s.Budget); err != nil {
			return err
		}
	}
	if _, err := s.isoAlgo(); err != nil {
		return err
	}
	if s.QueueDeadlineMS < 0 {
		return fmt.Errorf("service: negative queue_deadline_ms %d", s.QueueDeadlineMS)
	}
	if s.TopK < 0 {
		return fmt.Errorf("service: negative top_k %d", s.TopK)
	}
	return nil
}

// AppID maps the wire app name to the engine's App id.
func (s *JobSpec) AppID() (kaleido.App, error) {
	switch s.App {
	case "tc":
		return kaleido.AppTriangles, nil
	case "clique":
		return kaleido.AppCliques, nil
	case "motif":
		return kaleido.AppMotifs, nil
	case "fsm":
		return kaleido.AppFSM, nil
	}
	return 0, fmt.Errorf("service: unknown app %q (have tc, clique, motif, fsm)", s.App)
}

func (s *JobSpec) isoAlgo() (kaleido.IsoAlgo, error) {
	switch s.Iso {
	case "", "eigen":
		return kaleido.IsoEigen, nil
	case "bliss":
		return kaleido.IsoBliss, nil
	case "exact":
		return kaleido.IsoEigenExact, nil
	}
	return 0, fmt.Errorf("service: unknown iso backend %q (have eigen, bliss, exact)", s.Iso)
}

// Config translates the spec into a run Config. The budget fields are filled
// from Budget/SpillDir; Engine-dispatched runs override them with the
// engine's shared budget, so the translation is safe for both paths.
func (s *JobSpec) Config() (kaleido.Config, error) {
	iso, err := s.isoAlgo()
	if err != nil {
		return kaleido.Config{}, err
	}
	cfg := kaleido.Config{
		Threads: s.Threads,
		Shards:  s.Shards,
		Predict: boolOr(s.Predict, true),
		Iso:     iso,
	}
	if !boolOr(s.Compress, true) {
		cfg.Compression = kaleido.CompressionOff
	}
	if !boolOr(s.CompressResident, true) {
		cfg.ResidentCompression = kaleido.CompressionOff
	}
	if s.Budget != "" {
		b, err := ParseBytes(s.Budget)
		if err != nil {
			return kaleido.Config{}, err
		}
		cfg.MemoryBudget = b
		cfg.SpillDir = s.SpillDir
		if cfg.SpillDir == "" {
			cfg.SpillDir = os.TempDir()
		}
	}
	return cfg, nil
}

// GraphKey is the dataset-cache key of the spec's input graph: the same
// source string always yields the same loaded graph, so jobs naming the same
// dataset or file share one in-memory copy.
func (s *JobSpec) GraphKey() string {
	if s.Dataset != "" {
		return "dataset:" + s.Dataset
	}
	return "file:" + s.GraphPath
}

// LoadGraph loads the spec's input graph. cacheDir is the on-disk cache for
// generated datasets ("" regenerates every call); it is unrelated to the
// in-memory GraphCache, which should wrap this call via GraphKey.
func (s *JobSpec) LoadGraph(cacheDir string) (*kaleido.Graph, error) {
	if s.Dataset != "" {
		return kaleido.Dataset(s.Dataset, cacheDir)
	}
	return kaleido.LoadEdgeListFile(s.GraphPath)
}

// Deadline resolves QueueDeadlineMS against now (zero time = no deadline).
func (s *JobSpec) Deadline(now time.Time) time.Time {
	if s.QueueDeadlineMS <= 0 {
		return time.Time{}
	}
	return now.Add(time.Duration(s.QueueDeadlineMS) * time.Millisecond)
}

// ParseBytes parses a human byte size: a plain integer, or one with a KB/MB/
// GB (decimal) or KiB/MiB/GiB (binary) suffix, case-insensitive.
func ParseBytes(s string) (int64, error) {
	mult := int64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	suffixes := []struct {
		suf string
		m   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1000}, {"MB", 1000 * 1000}, {"GB", 1000 * 1000 * 1000},
	}
	for _, sm := range suffixes {
		if strings.HasSuffix(upper, sm.suf) {
			mult = sm.m
			upper = strings.TrimSuffix(upper, sm.suf)
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("service: bad byte size %q: %w", s, err)
	}
	return v * mult, nil
}

// PatternResult is one pattern row of a motif/FSM result, rendered for the
// wire.
type PatternResult struct {
	Pattern string `json:"pattern"`
	Count   uint64 `json:"count"`
	Support uint64 `json:"support,omitempty"`
}

// JobResult is a finished job's output.
type JobResult struct {
	// Count is the scalar result: triangles, cliques, total motif
	// embeddings, or FSM final-level embeddings visited.
	Count uint64 `json:"count"`
	// Patterns holds the (filtered) pattern aggregates of motif/FSM jobs.
	Patterns []PatternResult `json:"patterns,omitempty"`
	// TotalPatterns is the pattern count before MinCount/TopK filtering.
	TotalPatterns int `json:"total_patterns,omitempty"`
	// Stats is the run's memory and I/O accounting.
	Stats kaleido.Stats `json:"stats"`
}

// Execute runs the spec's job on eng over g, filling stats (which must be
// non-nil to collect accounting; it is wired into the run Config). It is the
// single dispatch both the daemon's job runner and the CLI's -serve parity
// path use, so a daemon job and a direct Engine call of the same spec produce
// identical results.
func Execute(ctx context.Context, eng *kaleido.Engine, g *kaleido.Graph, spec *JobSpec, stats *kaleido.Stats) (*JobResult, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Stats = stats
	res := &JobResult{}
	var pats []kaleido.PatternCount
	switch spec.App {
	case "tc":
		res.Count, err = eng.Triangles(ctx, g, cfg)
	case "clique":
		res.Count, err = eng.Cliques(ctx, g, spec.K, cfg)
	case "motif":
		pats, err = eng.Motifs(ctx, g, spec.K, cfg)
		for _, pc := range pats {
			res.Count += pc.Count
		}
	case "fsm":
		pats, err = eng.FSM(ctx, g, spec.K, spec.Support, cfg)
		res.Count = uint64(len(pats))
	default:
		err = fmt.Errorf("service: unknown app %q", spec.App)
	}
	if err != nil {
		return nil, err
	}
	res.TotalPatterns = len(pats)
	res.Patterns = filterPatterns(pats, spec.MinCount, spec.TopK)
	if stats != nil {
		res.Stats = *stats
	}
	return res, nil
}

// filterPatterns applies the spec's result filters to the deterministically
// sorted pattern list: MinCount first, then TopK.
func filterPatterns(pats []kaleido.PatternCount, minCount uint64, topK int) []PatternResult {
	out := make([]PatternResult, 0, len(pats))
	for _, pc := range pats {
		if pc.Count < minCount {
			continue
		}
		out = append(out, PatternResult{
			Pattern: pc.Pattern.String(),
			Count:   pc.Count,
			Support: pc.Support,
		})
		if topK > 0 && len(out) == topK {
			break
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
