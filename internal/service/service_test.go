package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kaleido"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0}, {"123", 123}, {"1KiB", 1024}, {"2MiB", 2 << 20},
		{"1GiB", 1 << 30}, {"1kb", 1000}, {"3MB", 3000000}, {"2GB", 2000000000},
		{" 64MiB ", 64 << 20},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "MiB", "12XB", "1.5GiB"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) accepted", bad)
		}
	}
}

func TestJobSpecValidate(t *testing.T) {
	good := JobSpec{App: "motif", K: 4, Dataset: "mico"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []JobSpec{
		{App: "nope", Dataset: "mico"},
		{App: "tc"},                                            // no graph source
		{App: "tc", Dataset: "mico", GraphPath: "x"},           // both sources
		{App: "clique", K: 1, Dataset: "mico"},                 // k too small
		{App: "tc", Dataset: "mico", Shards: -1},               // negative shards
		{App: "tc", Dataset: "mico", Budget: "12XB"},           // bad budget
		{App: "tc", Dataset: "mico", Iso: "magic"},             // bad iso
		{App: "tc", Dataset: "mico", QueueDeadlineMS: -5},      // negative deadline
		{App: "motif", K: 3, Dataset: "mico", TopK: -1},        // negative top-k
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

// TestJobSpecRoundTrip checks the wire encoding stays minimal and stable:
// defaulted knobs are omitted, and decode(encode(spec)) is the identity.
func TestJobSpecRoundTrip(t *testing.T) {
	off := false
	spec := JobSpec{App: "fsm", K: 3, Support: 7, Dataset: "mico", Compress: &off, TopK: 5}
	b, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("predict")) || bytes.Contains(b, []byte("compress_resident")) {
		t.Fatalf("defaulted knobs leaked into the encoding: %s", b)
	}
	var back JobSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.App != spec.App || back.K != spec.K || back.Support != spec.Support ||
		back.TopK != spec.TopK || back.Compress == nil || *back.Compress {
		t.Fatalf("round trip mangled the spec: %+v", back)
	}
	cfg, err := back.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Compression != kaleido.CompressionOff || cfg.ResidentCompression != kaleido.CompressionAuto || !cfg.Predict {
		t.Fatalf("tri-state knobs resolved wrong: %+v", cfg)
	}
}

func TestGraphCache(t *testing.T) {
	var loads atomic.Int64
	load := func() (*kaleido.Graph, error) {
		loads.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the coalescing window
		return kaleido.Synthetic(50, 100, 2, 1)
	}

	c := NewGraphCache(1)
	var wg sync.WaitGroup
	var releases [4]func()
	var graphs [4]*kaleido.Graph
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, rel, err := c.Acquire("k1", load)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			graphs[i], releases[i] = g, rel
		}(i)
	}
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("4 concurrent Acquires loaded %d times, want 1", n)
	}
	for i := 1; i < 4; i++ {
		if graphs[i] != graphs[0] {
			t.Fatal("acquirers got different graph instances")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 3 || st.Entries != 1 || st.Pinned != 1 {
		t.Fatalf("stats after coalesced load: %+v", st)
	}
	for _, rel := range releases {
		rel()
	}
	// limit 1: the single idle entry stays resident and re-acquiring hits.
	if _, rel, err := c.Acquire("k1", load); err != nil || loads.Load() != 1 {
		t.Fatalf("idle entry evicted under limit: loads=%d err=%v", loads.Load(), err)
	} else {
		rel()
	}
	// A second key pushes the cache past its limit once both go idle: the
	// LRU entry (k1) evicts.
	_, rel2, err := c.Acquire("k2", load)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	st = c.Stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("stats after LRU eviction: %+v", st)
	}
	if _, rel, err := c.Acquire("k1", load); err != nil {
		t.Fatal(err)
	} else {
		if loads.Load() != 3 {
			t.Fatalf("evicted key reloaded %d times total, want 3", loads.Load())
		}
		rel()
	}
}

func TestGraphCacheLoadFailure(t *testing.T) {
	c := NewGraphCache(1)
	boom := errors.New("boom")
	if _, _, err := c.Acquire("k", func() (*kaleido.Graph, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("failed load returned %v", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed load left an entry: %+v", st)
	}
	// The failure is not cached: the next Acquire retries and succeeds.
	g, rel, err := c.Acquire("k", func() (*kaleido.Graph, error) { return kaleido.Synthetic(10, 20, 1, 1) })
	if err != nil || g == nil {
		t.Fatalf("retry after failed load: %v", err)
	}
	rel()
}

// writeGraphFile dumps a small synthetic labeled graph as an edge-list file
// and returns its path.
func writeGraphFile(t *testing.T) string {
	t.Helper()
	g, err := kaleido.Synthetic(250, 1000, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(&buf, "%d label=%d\n", v, g.Label(uint32(v)))
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if u > uint32(v) {
				fmt.Fprintf(&buf, "%d %d\n", v, u)
			}
		}
	}
	path := filepath.Join(t.TempDir(), "graph.txt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func postJob(t *testing.T, url string, spec JobSpec) Job {
	t.Helper()
	body, _ := json.Marshal(&spec)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

func getJob(t *testing.T, url, id string) Job {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

func waitJob(t *testing.T, url, id string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		job := getJob(t, url, id)
		switch job.State {
		case StateDone, StateFailed, StateCanceled:
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			out = append(out, path)
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return out
}

// TestServiceE2E drives the whole daemon surface over HTTP: N jobs submitted
// against a budget sized for one, which must queue through admission, run
// serially, match a direct Engine run's results exactly, stay under the
// shared budget, and leave clean metrics and an empty spill dir behind.
func TestServiceE2E(t *testing.T) {
	path := writeGraphFile(t)
	spec := JobSpec{App: "motif", K: 4, GraphPath: path, Threads: 2}

	// Direct reference run: an unbudgeted engine, the same spec.
	g, err := kaleido.LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var refStats kaleido.Stats
	ref, err := Execute(context.Background(), &kaleido.Engine{}, g, &spec, &refStats)
	if err != nil {
		t.Fatal(err)
	}
	budget := refStats.PeakBytes

	spill := t.TempDir()
	eng := &kaleido.Engine{MemoryBudget: budget, SpillDir: spill, Threads: 2}
	srv := NewServer(eng, "", 2)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Health first.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Submit 3 jobs whose projections each claim the whole budget, so
	// admission must serialize them.
	jobSpec := spec
	jobSpec.ProjectedBytes = budget
	const jobs = 3
	ids := make([]string, jobs)
	for i := range ids {
		ids[i] = postJob(t, ts.URL, jobSpec).ID
	}
	finished := make([]Job, jobs)
	for i, id := range ids {
		finished[i] = waitJob(t, ts.URL, id)
	}

	for _, job := range finished {
		if job.State != StateDone {
			t.Fatalf("job %s: %s (%s)", job.ID, job.State, job.Error)
		}
		if job.ProjectedBytes != budget {
			t.Fatalf("job %s admitted under projection %d, want %d", job.ID, job.ProjectedBytes, budget)
		}
		// Result parity with the direct run.
		resp, err := http.Get(ts.URL + "/jobs/" + job.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var res JobResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if res.Count != ref.Count || res.TotalPatterns != ref.TotalPatterns {
			t.Fatalf("job %s: count %d / %d patterns, direct run %d / %d",
				job.ID, res.Count, res.TotalPatterns, ref.Count, ref.TotalPatterns)
		}
		// Counts and supports must match position for position; only the
		// representative edge list rendering a pattern class may vary
		// between runs (as in any concurrent run).
		for i, pc := range res.Patterns {
			if pc.Count != ref.Patterns[i].Count || pc.Support != ref.Patterns[i].Support {
				t.Fatalf("job %s pattern %d: %+v, direct %+v", job.ID, i, pc, ref.Patterns[i])
			}
		}
	}

	// Admission serialized the jobs: ordered by start, each job began only
	// after its predecessor finished (the release happens after FinishedAt).
	sort.Slice(finished, func(i, j int) bool { return finished[i].StartedAt.Before(finished[j].StartedAt) })
	for i := 1; i < jobs; i++ {
		if finished[i].StartedAt.Before(finished[i-1].FinishedAt) {
			t.Fatalf("job %s started %v before its predecessor %s finished (%v)",
				finished[i].ID, finished[i].StartedAt, finished[i-1].ID, finished[i-1].FinishedAt)
		}
	}

	// The combined resident bytes never exceeded the shared budget.
	if eng.PeakBytes() > budget {
		t.Fatalf("combined resident peak %d over the %d budget", eng.PeakBytes(), budget)
	}

	// Metrics: three completed runs, one graph load shared by all jobs.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Jobs[StateDone] != jobs || m.Engine.CompletedRuns != jobs || m.Engine.ActiveRuns != 0 {
		t.Fatalf("metrics after %d jobs: %+v", jobs, m)
	}
	if m.Cache.Misses != 1 || m.Cache.Hits != jobs-1 {
		t.Fatalf("cache loaded %d times (hits %d) for %d jobs over one graph", m.Cache.Misses, m.Cache.Hits, jobs)
	}
	if m.Engine.ReservedBytes != 0 {
		t.Fatalf("reserved bytes leaked: %d", m.Engine.ReservedBytes)
	}

	// Listing covers all jobs, newest first.
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []Job
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != jobs || list[0].ID != ids[jobs-1] {
		t.Fatalf("listing: %d jobs, first %s", len(list), list[0].ID)
	}

	// All spill files reclaimed once the runs are done.
	if files := spillFiles(t, spill); len(files) != 0 {
		t.Fatalf("spill files leaked: %v", files)
	}
}

// TestServiceCancelAndDeadline exercises the two queued-job failure paths
// over HTTP: client cancellation and admission-deadline expiry, both while a
// blocker admission pins the whole budget.
func TestServiceCancelAndDeadline(t *testing.T) {
	path := writeGraphFile(t)
	eng := &kaleido.Engine{MemoryBudget: 1 << 20, SpillDir: t.TempDir()}
	srv := NewServer(eng, "", 2)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	blocker, err := eng.Admit(context.Background(), kaleido.AdmitRequest{ProjectedBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}

	spec := JobSpec{App: "tc", GraphPath: path, ProjectedBytes: 1 << 20}

	// Deadline: the job must fail with the typed admission-deadline error.
	dspec := spec
	dspec.QueueDeadlineMS = 50
	djob := postJob(t, ts.URL, dspec)
	djob = waitJob(t, ts.URL, djob.ID)
	if djob.State != StateFailed || djob.ErrorKind != "deadline" {
		t.Fatalf("deadline job: %s kind=%q err=%q", djob.State, djob.ErrorKind, djob.Error)
	}

	// Cancel: a queued job transitions to canceled when the client cancels.
	cjob := postJob(t, ts.URL, spec)
	deadline := time.Now().Add(5 * time.Second)
	for getJob(t, ts.URL, cjob.ID).State != StateQueued || eng.Stats().QueuedRuns == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never queued behind the blocker")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/jobs/"+cjob.ID+"/cancel", "application/json", nil)
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	cjob = waitJob(t, ts.URL, cjob.ID)
	if cjob.State != StateCanceled {
		t.Fatalf("canceled job: %s (%s)", cjob.State, cjob.Error)
	}
	// Its result route reports the terminal state.
	resp, err = http.Get(ts.URL + "/jobs/" + cjob.ID + "/result")
	if err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job: HTTP %d, %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	// Freed headroom after the blocker releases: the same spec now runs.
	blocker.Release()
	okJob := postJob(t, ts.URL, spec)
	if okJob = waitJob(t, ts.URL, okJob.ID); okJob.State != StateDone {
		t.Fatalf("post-release job: %s (%s)", okJob.State, okJob.Error)
	}
	resp, err = http.Get(ts.URL + "/jobs/nope")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

// TestServiceDrain checks the SIGTERM path: drain refuses new submissions,
// waits out in-flight jobs, and leaves no spill files and no stray
// goroutines behind.
func TestServiceDrain(t *testing.T) {
	path := writeGraphFile(t)
	baseline := runtime.NumGoroutine()

	spill := t.TempDir()
	eng := &kaleido.Engine{MemoryBudget: 1 << 20, SpillDir: spill, Threads: 2}
	srv := NewServer(eng, "", 2)
	ts := httptest.NewServer(srv)

	spec := JobSpec{App: "motif", K: 4, GraphPath: path, Threads: 2}
	var jobs []Job
	for i := 0; i < 2; i++ {
		jobs = append(jobs, postJob(t, ts.URL, spec))
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, job := range jobs {
		if final := waitJob(t, ts.URL, job.ID); final.State != StateDone {
			t.Fatalf("drained job %s: %s (%s)", job.ID, final.State, final.Error)
		}
	}

	// Draining: submissions 503, health 503.
	body, _ := json.Marshal(&spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: HTTP %d, %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	if files := spillFiles(t, spill); len(files) != 0 {
		t.Fatalf("spill files survived the drain: %v", files)
	}

	// Every job runner has exited; after the test server closes, the
	// goroutine count settles back to (about) where it started.
	ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after drain: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceDrainCancels covers the bounded drain: when the context expires
// first, in-flight jobs are canceled and still unwind cleanly.
func TestServiceDrainCancels(t *testing.T) {
	path := writeGraphFile(t)
	spill := t.TempDir()
	eng := &kaleido.Engine{MemoryBudget: 1 << 20, SpillDir: spill}
	srv := NewServer(eng, "", 2)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Pin the budget so the job wedges in the admission queue forever.
	blocker, err := eng.Admit(context.Background(), kaleido.AdmitRequest{ProjectedBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Release()
	job := postJob(t, ts.URL, JobSpec{App: "tc", GraphPath: path, ProjectedBytes: 1 << 20})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded drain = %v", err)
	}
	if final := waitJob(t, ts.URL, job.ID); final.State != StateCanceled {
		t.Fatalf("wedged job after forced drain: %s (%s)", final.State, final.Error)
	}
	if files := spillFiles(t, spill); len(files) != 0 {
		t.Fatalf("spill files survived the forced drain: %v", files)
	}
}
