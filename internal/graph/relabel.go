package graph

import (
	"fmt"
	"sort"
)

// This file implements cache-aware degree-ordered relabeling and the
// degree-mass range partitioner built on top of it.
//
// Relabel permutes the vertex ids of a graph so that high-degree vertices get
// dense low ids. The mining hot paths benefit twice: the hub bitset rows
// (adjindex.go) cover a contiguous low-id prefix, and the NeighborMarker /
// candidate-merge probes — whose addresses are vertex ids — concentrate on a
// small prefix of the stamp arrays, touching far fewer cache lines on the
// power-law graphs mining targets.
//
// The permutation is carried on the Graph (OrigID / NewID), so loaders can
// relabel transparently and translate user-facing vertex ids back at the API
// boundary. Ids are degree-ordered, which also makes prefix-range sharding
// cheap: a first-fit cut over the degree-mass prefix sums balances per-shard
// work (DegreeMassVertexRanges / DegreeMassEdgeRanges).

// Relabeled reports whether the graph's vertex ids were permuted by Relabel.
func (g *Graph) Relabeled() bool { return g.origID != nil }

// OrigID translates internal vertex id v back to the id the graph was loaded
// with. The identity when the graph was never relabeled.
func (g *Graph) OrigID(v uint32) uint32 {
	if g.origID == nil {
		return v
	}
	return g.origID[v]
}

// NewID translates an original (load-time) vertex id to the internal
// degree-ordered id. The identity when the graph was never relabeled.
func (g *Graph) NewID(v uint32) uint32 {
	if g.newID == nil {
		return v
	}
	return g.newID[v]
}

// Relabel returns a graph isomorphic to g whose vertex ids are assigned in
// order of decreasing degree (ties broken by the original id, so the pass is
// deterministic): vertex 0 of the result is g's highest-degree vertex. The
// result carries the old↔new permutation (OrigID / NewID); g itself is not
// modified. Relabeling an already-relabeled graph returns it unchanged — the
// ids are already degree-ordered and the original-id contract must keep
// pointing at the load-time ids.
func Relabel(g *Graph) (*Graph, error) {
	if g.Relabeled() || g.n == 0 {
		return g, nil
	}
	order := make([]uint32, g.n) // order[new] = old
	for v := range order {
		order[v] = uint32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	newID := make([]uint32, g.n) // newID[old] = new
	for nv, ov := range order {
		newID[ov] = uint32(nv)
	}

	b := NewBuilder(g.n)
	if g.hub == nil {
		b.SetHubThreshold(-1)
	}
	for _, e := range g.edges {
		b.AddEdge(newID[e.U], newID[e.V])
	}
	for ov, l := range g.labels {
		b.labels[newID[ov]] = l
	}
	rg, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("graph: relabel: %w", err)
	}
	if rg.m != g.m {
		return nil, fmt.Errorf("graph: relabel changed edge count %d -> %d", g.m, rg.m)
	}
	rg.numLabels = g.numLabels
	rg.origID = order
	rg.newID = newID
	return rg, nil
}

// degreeMassRanges cuts [0, n) into k contiguous ranges by first fit over the
// weight prefix sums: each range closes as soon as its accumulated weight
// reaches an equal share of the remaining mass. weightTo(i) must be the
// nondecreasing total weight of [0, i). Returns k+1 bounds (trailing ranges
// may be empty when k exceeds the number of ids).
func degreeMassRanges(n, k int, weightTo func(int) uint64) []int {
	if k < 1 {
		k = 1
	}
	bounds := make([]int, k+1)
	total := weightTo(n)
	lo := 0
	for s := 0; s < k; s++ {
		bounds[s] = lo
		if lo >= n {
			continue
		}
		// Equal share of what is left, so rounding never starves the tail.
		target := weightTo(lo) + (total-weightTo(lo)+uint64(k-s)-1)/uint64(k-s)
		hi := lo + sort.Search(n-lo, func(d int) bool { return weightTo(lo+d+1) >= target })
		if hi < n {
			hi++ // include the id that crossed the target (first fit)
		}
		if s == k-1 {
			hi = n
		}
		lo = hi
	}
	bounds[k] = n
	return bounds
}

// DegreeMassVertexRanges splits the vertex id range [0, N) into k contiguous
// ranges balanced by degree mass (Σ deg over the range): the seed partition of
// prefix-range sharded vertex-induced runs. With degree-ordered ids the heavy
// hubs sit at the front, so the first-fit cut lands within one vertex of an
// equal-work split. Returns k+1 range bounds.
func (g *Graph) DegreeMassVertexRanges(k int) []int {
	return degreeMassRanges(g.n, k, func(i int) uint64 {
		// offsets is exactly the degree prefix sum.
		return g.offsets[i] + uint64(i) // +i: every vertex carries ≥1 unit of seed work
	})
}

// DegreeMassEdgeRanges splits the edge id range [0, M) into k contiguous
// ranges balanced by endpoint degree mass (deg U + deg V per edge): the seed
// partition of edge-induced (FSM) sharded runs. Returns k+1 range bounds.
func (g *Graph) DegreeMassEdgeRanges(k int) []int {
	pre := make([]uint64, g.m+1)
	for i, e := range g.edges {
		pre[i+1] = pre[i] + uint64(g.Degree(e.U)) + uint64(g.Degree(e.V)) + 1
	}
	return degreeMassRanges(g.m, k, func(i int) uint64 { return pre[i] })
}
