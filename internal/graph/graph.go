// Package graph provides the labeled undirected graph substrate used by the
// Kaleido mining engine. The structure is stored in compressed sparse column
// (CSC) form — equivalent to the sparse adjacency matrix of the graph — as
// described in §3.1.1 of the Kaleido paper.
//
// Vertices are dense uint32 ids in [0, N). Every edge {u, v} also carries a
// dense edge id in [0, M), which edge-induced mining (FSM) uses as its
// exploration unit. Neighbor lists and incident-edge lists are sorted, which
// the canonical filter and the candidate-size prediction of §4.2 rely on.
//
// On top of the CSC arrays sits a hybrid adjacency index (adjindex.go) that
// makes membership tests O(1) where the binary search is worst: vertices
// whose degree reaches a configurable hub threshold (Builder.SetHubThreshold,
// default √2m) carry packed bitset rows consulted by HasEdge, and
// NeighborMarker provides epoch-stamped scratch for batch membership tests
// over a working set of neighborhoods.
package graph

import (
	"fmt"
	"sort"
)

// Label is a vertex (or edge) label. The paper's datasets have at most 37
// distinct labels; uint16 leaves ample headroom.
type Label = uint16

// Edge is one undirected edge with U < V.
type Edge struct {
	U, V uint32
}

// Graph is an immutable labeled undirected graph in CSC form.
type Graph struct {
	n int // number of vertices
	m int // number of undirected edges

	// CSC adjacency: neighbors of v are adj[offsets[v]:offsets[v+1]], sorted.
	offsets []uint64
	adj     []uint32
	// adjEdge[i] is the edge id of the edge (v, adj[i]).
	adjEdge []uint32

	// Edge list indexed by edge id; always U < V, sorted by (U, V).
	edges []Edge

	labels    []Label
	numLabels int

	// hub is the bitset half of the hybrid adjacency index (adjindex.go);
	// nil when disabled or when no vertex reaches the threshold.
	hub *hubIndex

	// Degree-ordered relabeling permutation (relabel.go): origID[new] is the
	// load-time id of internal vertex new, newID[old] the inverse. Both nil
	// when the graph was never relabeled.
	origID []uint32
	newID  []uint32
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// NumLabels returns the number of distinct vertex labels.
func (g *Graph) NumLabels() int { return g.numLabels }

// Label returns the label of vertex v.
func (g *Graph) Label(v uint32) Label { return g.labels[v] }

// Labels returns the full label array. Callers must not mutate it.
func (g *Graph) Labels() []Label { return g.labels }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v uint32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// AvgDegree returns the average vertex degree 2M/N.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// Neighbors returns the sorted neighbor list of v. Callers must not mutate it.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// IncidentEdges returns the edge ids incident to v, ordered by neighbor id.
// Callers must not mutate the returned slice.
func (g *Graph) IncidentEdges(v uint32) []uint32 {
	return g.adjEdge[g.offsets[v]:g.offsets[v+1]]
}

// EdgeAt returns the endpoints of edge id e (U < V).
func (g *Graph) EdgeAt(e uint32) Edge { return g.edges[e] }

// Edges returns the edge list indexed by edge id. Callers must not mutate it.
func (g *Graph) Edges() []Edge { return g.edges }

// HasEdge reports whether {u, v} is an edge: O(1) via the hub bitset row
// when either endpoint is a hub, binary search on the shorter adjacency list
// otherwise (both lists then being below the hub threshold).
func (g *Graph) HasEdge(u, v uint32) bool {
	if u == v {
		return false
	}
	if h := g.hub; h != nil {
		if r := h.rowOf[u]; r >= 0 {
			return h.test(r, v)
		}
		if r := h.rowOf[v]; r >= 0 {
			return h.test(r, u)
		}
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// EdgeID returns the edge id of {u, v} and whether the edge exists.
func (g *Graph) EdgeID(u, v uint32) (uint32, bool) {
	if u == v {
		return 0, false
	}
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	if i < len(nb) && nb[i] == v {
		return g.IncidentEdges(u)[i], true
	}
	return 0, false
}

// Bytes returns the in-memory footprint of the graph structure, used by the
// memory-consumption experiments (§6).
func (g *Graph) Bytes() int64 {
	return int64(len(g.offsets))*8 +
		int64(len(g.adj))*4 +
		int64(len(g.adjEdge))*4 +
		int64(len(g.edges))*8 +
		int64(len(g.labels))*2 +
		int64(len(g.origID))*4 +
		int64(len(g.newID))*4 +
		g.hub.bytes()
}

// Validate checks internal invariants; it is used by tests and by loaders of
// untrusted binary files.
func (g *Graph) Validate() error {
	if len(g.offsets) != g.n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), g.n+1)
	}
	if len(g.adj) != 2*g.m || len(g.adjEdge) != 2*g.m {
		return fmt.Errorf("graph: adjacency length %d/%d, want %d", len(g.adj), len(g.adjEdge), 2*g.m)
	}
	if len(g.labels) != g.n {
		return fmt.Errorf("graph: labels length %d, want %d", len(g.labels), g.n)
	}
	if g.offsets[0] != 0 || g.offsets[g.n] != uint64(2*g.m) {
		return fmt.Errorf("graph: offset bounds [%d, %d], want [0, %d]", g.offsets[0], g.offsets[g.n], 2*g.m)
	}
	for v := 0; v < g.n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		nb := g.Neighbors(uint32(v))
		ie := g.IncidentEdges(uint32(v))
		for i, u := range nb {
			if i > 0 && nb[i-1] >= u {
				return fmt.Errorf("graph: neighbors of %d not strictly sorted", v)
			}
			if u == uint32(v) {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if int(u) >= g.n {
				return fmt.Errorf("graph: neighbor %d of %d out of range", u, v)
			}
			e := g.edges[ie[i]]
			lo, hi := uint32(v), u
			if lo > hi {
				lo, hi = hi, lo
			}
			if e.U != lo || e.V != hi {
				return fmt.Errorf("graph: edge id %d of (%d,%d) maps to (%d,%d)", ie[i], v, u, e.U, e.V)
			}
		}
	}
	for v := range g.labels {
		if int(g.labels[v]) >= g.numLabels {
			return fmt.Errorf("graph: label %d of vertex %d out of range %d", g.labels[v], v, g.numLabels)
		}
	}
	return nil
}
