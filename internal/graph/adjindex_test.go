package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// hubGraph builds a random graph whose hub index is forced on with a low
// threshold, so small tests exercise the bitmap path.
func hubGraph(t testing.TB, seed int64, n, m, threshold int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	b.SetHubThreshold(threshold)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestHubIndexHasEdgeAgreesWithScan(t *testing.T) {
	for _, threshold := range []int{1, 2, 4, 8} {
		g := hubGraph(t, int64(threshold), 40, 200, threshold)
		if g.HubThreshold() != threshold {
			t.Fatalf("HubThreshold = %d, want %d", g.HubThreshold(), threshold)
		}
		hubs := 0
		for v := uint32(0); v < uint32(g.N()); v++ {
			if g.IsHub(v) {
				hubs++
				if g.Degree(v) < threshold {
					t.Fatalf("vertex %d is hub with degree %d < %d", v, g.Degree(v), threshold)
				}
			} else if g.Degree(v) >= threshold {
				t.Fatalf("vertex %d not hub with degree %d ≥ %d", v, g.Degree(v), threshold)
			}
		}
		if threshold <= 2 && hubs == 0 {
			t.Fatal("no hubs at tiny threshold")
		}
		f := func(u, v uint8) bool {
			a, b := uint32(u)%40, uint32(v)%40
			want := false
			for _, w := range g.Neighbors(a) {
				if w == b {
					want = true
				}
			}
			return g.HasEdge(a, b) == want && g.HasEdge(b, a) == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
			t.Fatalf("threshold %d: %v", threshold, err)
		}
	}
}

func TestHubIndexDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBuilder(20)
	for i := 0; i < 60; i++ {
		b.AddEdge(uint32(rng.Intn(20)), uint32(rng.Intn(20)))
	}
	b.SetHubThreshold(-1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.HubThreshold() != 0 {
		t.Fatalf("disabled index reports threshold %d", g.HubThreshold())
	}
	for v := uint32(0); v < uint32(g.N()); v++ {
		if g.IsHub(v) {
			t.Fatalf("vertex %d is hub with index disabled", v)
		}
	}
	// HasEdge still works through the binary-search fallback.
	if !g.HasEdge(g.EdgeAt(0).U, g.EdgeAt(0).V) {
		t.Fatal("edge 0 missing without hub index")
	}
}

func TestAutoHubThreshold(t *testing.T) {
	if got := autoHubThreshold(10); got != MinHubDegree {
		t.Fatalf("autoHubThreshold(10) = %d, want %d", got, MinHubDegree)
	}
	// 2m = 20000 → √20000 ≈ 141 > MinHubDegree.
	if got := autoHubThreshold(10000); got < 100 || got > 200 {
		t.Fatalf("autoHubThreshold(10000) = %d", got)
	}
}

func TestHubIndexBytesAccounted(t *testing.T) {
	g := hubGraph(t, 11, 100, 600, 1) // threshold 1: every non-isolated vertex is a hub
	plain := hubGraph(t, 11, 100, 600, -1)
	if g.Bytes() <= plain.Bytes() {
		t.Fatalf("hub index not accounted: %d ≤ %d", g.Bytes(), plain.Bytes())
	}
}

func TestNeighborMarkerFreshIsEmpty(t *testing.T) {
	g := paperGraph(t)
	m := g.NewNeighborMarker()
	for v := uint32(0); v < uint32(g.N()); v++ {
		if m.Marked(v) || m.Count(v) != 0 {
			t.Fatalf("fresh marker reports vertex %d as marked", v)
		}
	}
}

func TestHubIndexMemoryCap(t *testing.T) {
	// n large relative to m: one bitmap row costs 128 B while the cap is
	// 8m = 400 B, so at most 3 rows fit; a threshold of 1 must be raised
	// instead of indexing every non-isolated vertex.
	rng := rand.New(rand.NewSource(13))
	b := NewBuilder(1000)
	for i := 0; i < 50; i++ {
		b.AddEdge(uint32(rng.Intn(1000)), uint32(rng.Intn(1000)))
	}
	for v := uint32(1); v <= 40; v++ {
		b.AddEdge(0, v) // a genuine hub that must survive the cap
	}
	b.SetHubThreshold(1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsHub(0) {
		t.Fatal("star center lost its hub row under the cap")
	}
	rowBytes := ((g.N() + 63) / 64) * 8
	maxRows := 8 * g.M() / rowBytes
	hubs := 0
	minHubDeg := int(^uint(0) >> 1)
	maxNonHubDeg := 0
	for v := uint32(0); v < uint32(g.N()); v++ {
		if g.IsHub(v) {
			hubs++
			if g.Degree(v) < minHubDeg {
				minHubDeg = g.Degree(v)
			}
		} else if g.Degree(v) > maxNonHubDeg {
			maxNonHubDeg = g.Degree(v)
		}
	}
	if hubs > maxRows {
		t.Fatalf("%d hub rows exceed the %d-row cap", hubs, maxRows)
	}
	// The raised threshold keeps only the highest-degree vertices.
	if hubs > 0 && minHubDeg < g.HubThreshold() {
		t.Fatalf("hub with degree %d below effective threshold %d", minHubDeg, g.HubThreshold())
	}
	if maxNonHubDeg >= g.HubThreshold() {
		t.Fatalf("non-hub with degree %d at or above effective threshold %d", maxNonHubDeg, g.HubThreshold())
	}
	// Adjacency semantics unchanged under the capped index.
	for _, e := range g.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("edge {%d,%d} missing", e.U, e.V)
		}
	}
}

func TestNeighborMarkerBatch(t *testing.T) {
	g := paperGraph(t) // edges {0-1,0-4,1-4,1-2,2-3,2-4,3-4}
	m := g.NewNeighborMarker()

	m.Begin()
	m.MarkNeighbors(0) // {1, 4}
	m.MarkNeighbors(1) // {0, 2, 4}
	for v, want := range map[uint32]int{0: 1, 1: 1, 2: 1, 3: 0, 4: 2} {
		if got := m.Count(v); got != want {
			t.Errorf("Count(%d) = %d, want %d", v, got, want)
		}
		if m.Marked(v) != (want > 0) {
			t.Errorf("Marked(%d) = %v, want %v", v, m.Marked(v), want > 0)
		}
	}

	// A new batch invalidates everything in O(1).
	m.Begin()
	for v := uint32(0); v < 5; v++ {
		if m.Marked(v) || m.Count(v) != 0 {
			t.Fatalf("vertex %d still marked after Begin", v)
		}
	}
	m.Mark(3)
	m.Mark(3)
	if m.Count(3) != 2 || !m.Marked(3) {
		t.Fatalf("Count(3) = %d, Marked = %v", m.Count(3), m.Marked(3))
	}
}

func TestNeighborMarkerEpochWrap(t *testing.T) {
	g := paperGraph(t)
	m := g.NewNeighborMarker()
	m.Begin()
	m.Mark(2)
	m.epoch = ^uint32(0) // force the next Begin to wrap
	m.Begin()
	if m.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", m.epoch)
	}
	for v := uint32(0); v < 5; v++ {
		if m.Marked(v) {
			t.Fatalf("stale mark on %d survived epoch wrap", v)
		}
	}
	m.Mark(4)
	if !m.Marked(4) || m.Count(4) != 1 {
		t.Fatal("marking broken after wrap")
	}
}

// TestNeighborMarkerMatchesHasEdge cross-checks the marker against HasEdge
// over random working sets.
func TestNeighborMarkerMatchesHasEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomGraph(rng, 50, 300)
	m := g.NewNeighborMarker()
	for trial := 0; trial < 200; trial++ {
		set := make([]uint32, 1+rng.Intn(4))
		for i := range set {
			set[i] = uint32(rng.Intn(g.N()))
		}
		m.Begin()
		for _, v := range set {
			m.MarkNeighbors(v)
		}
		for probe := 0; probe < 20; probe++ {
			u := uint32(rng.Intn(g.N()))
			want := 0
			for _, v := range set {
				if g.HasEdge(v, u) {
					want++
				}
			}
			if got := m.Count(u); got != want {
				t.Fatalf("trial %d: Count(%d) = %d, want %d (set %v)", trial, u, got, want, set)
			}
		}
	}
}
