package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and labels and produces an immutable Graph.
// Duplicate edges and self loops are dropped; the edge direction does not
// matter. The zero value is not usable; call NewBuilder.
type Builder struct {
	n            int
	edges        []Edge
	labels       []Label
	hubThreshold int
}

// NewBuilder returns a builder for a graph with n vertices, all initially
// labeled 0.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, labels: make([]Label, n)}
}

// SetHubThreshold configures the hub bitset index of the built graph: a
// vertex with degree ≥ t gets a packed adjacency-bitmap row, making HasEdge
// O(1) on it. t == 0 (the default) picks max(MinHubDegree, √2m)
// automatically; t < 0 disables the index.
func (b *Builder) SetHubThreshold(t int) { b.hubThreshold = t }

// AddEdge records the undirected edge {u, v}. Self loops are ignored.
func (b *Builder) AddEdge(u, v uint32) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{u, v})
}

// SetLabel assigns a label to vertex v.
func (b *Builder) SetLabel(v uint32, l Label) { b.labels[v] = l }

// Build finalizes the graph: it sorts and deduplicates edges, assigns dense
// edge ids in (U, V) order, and materializes CSC adjacency.
func (b *Builder) Build() (*Graph, error) {
	for _, e := range b.edges {
		if int(e.U) >= b.n || int(e.V) >= b.n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range n=%d", e.U, e.V, b.n)
		}
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	edges := b.edges[:0:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		edges = append(edges, e)
	}
	m := len(edges)

	numLabels := 0
	for _, l := range b.labels {
		if int(l)+1 > numLabels {
			numLabels = int(l) + 1
		}
	}
	if numLabels == 0 {
		numLabels = 1
	}

	g := &Graph{
		n:         b.n,
		m:         m,
		offsets:   make([]uint64, b.n+1),
		adj:       make([]uint32, 2*m),
		adjEdge:   make([]uint32, 2*m),
		edges:     edges,
		labels:    append([]Label(nil), b.labels...),
		numLabels: numLabels,
	}

	deg := make([]uint32, b.n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < b.n; v++ {
		g.offsets[v+1] = g.offsets[v] + uint64(deg[v])
	}
	cursor := make([]uint64, b.n)
	copy(cursor, g.offsets[:b.n])
	for id, e := range edges {
		g.adj[cursor[e.U]] = e.V
		g.adjEdge[cursor[e.U]] = uint32(id)
		cursor[e.U]++
		g.adj[cursor[e.V]] = e.U
		g.adjEdge[cursor[e.V]] = uint32(id)
		cursor[e.V]++
	}
	// Edges are inserted in (U,V)-sorted order, so each vertex's neighbor
	// list from the U side is sorted, but V-side arrivals interleave: sort
	// each list together with its edge ids.
	for v := 0; v < b.n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		nb, ie := g.adj[lo:hi], g.adjEdge[lo:hi]
		sort.Sort(&adjSorter{nb: nb, ie: ie})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	switch {
	case b.hubThreshold < 0:
		// index disabled
	case b.hubThreshold == 0:
		g.hub = buildHubIndex(g, autoHubThreshold(m))
	default:
		g.hub = buildHubIndex(g, b.hubThreshold)
	}
	return g, nil
}

type adjSorter struct {
	nb []uint32
	ie []uint32
}

func (s *adjSorter) Len() int           { return len(s.nb) }
func (s *adjSorter) Less(i, j int) bool { return s.nb[i] < s.nb[j] }
func (s *adjSorter) Swap(i, j int) {
	s.nb[i], s.nb[j] = s.nb[j], s.nb[i]
	s.ie[i], s.ie[j] = s.ie[j], s.ie[i]
}

// FromEdges is a convenience constructor from an edge slice and label slice
// (labels may be nil for an unlabeled graph).
func FromEdges(n int, edges []Edge, labels []Label) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	if labels != nil {
		if len(labels) != n {
			return nil, fmt.Errorf("graph: %d labels for %d vertices", len(labels), n)
		}
		copy(b.labels, labels)
	}
	return b.Build()
}
