package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperGraph builds the 5-vertex example graph of Fig. 3 in the paper:
// vertices 1..5 remapped to 0..4, edges {1-2,1-5,2-5,2-3,3-4,3-5,4-5}.
func paperGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(5)
	for _, e := range [][2]uint32{{0, 1}, {0, 4}, {1, 4}, {1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestPaperGraphBasics(t *testing.T) {
	g := paperGraph(t)
	if g.N() != 5 || g.M() != 7 {
		t.Fatalf("got N=%d M=%d, want 5, 7", g.N(), g.M())
	}
	wantDeg := []int{2, 3, 3, 2, 4}
	for v, d := range wantDeg {
		if g.Degree(uint32(v)) != d {
			t.Errorf("Degree(%d) = %d, want %d", v, g.Degree(uint32(v)), d)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("spurious edge {0,2}")
	}
	if g.HasEdge(3, 3) {
		t.Error("self loop reported")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 2) // self loop dropped
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range edge")
	}
}

func TestEdgeIDRoundTrip(t *testing.T) {
	g := paperGraph(t)
	for id, e := range g.Edges() {
		got, ok := g.EdgeID(e.U, e.V)
		if !ok || got != uint32(id) {
			t.Fatalf("EdgeID(%d,%d) = %d,%v, want %d", e.U, e.V, got, ok, id)
		}
		got, ok = g.EdgeID(e.V, e.U)
		if !ok || got != uint32(id) {
			t.Fatalf("EdgeID(%d,%d) = %d,%v, want %d", e.V, e.U, got, ok, id)
		}
	}
	if _, ok := g.EdgeID(0, 2); ok {
		t.Fatal("EdgeID reported non-edge")
	}
}

func TestIncidentEdgesMatchNeighbors(t *testing.T) {
	g := paperGraph(t)
	for v := uint32(0); v < uint32(g.N()); v++ {
		nb, ie := g.Neighbors(v), g.IncidentEdges(v)
		if len(nb) != len(ie) {
			t.Fatalf("vertex %d: %d neighbors, %d incident edges", v, len(nb), len(ie))
		}
		for i := range nb {
			e := g.EdgeAt(ie[i])
			if e.U != v && e.V != v {
				t.Fatalf("edge %d not incident to %d", ie[i], v)
			}
			other := e.U
			if other == v {
				other = e.V
			}
			if other != nb[i] {
				t.Fatalf("edge %d pairs %d with %d, neighbor list says %d", ie[i], v, other, nb[i])
			}
		}
	}
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	for v := 0; v < n; v++ {
		b.SetLabel(uint32(v), Label(rng.Intn(5)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestRandomGraphInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(4*n))
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestHasEdgeMatchesNeighborScan(t *testing.T) {
	// Property: HasEdge agrees with a linear scan of the neighbor list.
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 30, 90)
	f := func(u, v uint8) bool {
		a, b := uint32(u)%30, uint32(v)%30
		want := false
		for _, w := range g.Neighbors(a) {
			if w == b {
				want = true
			}
		}
		return g.HasEdge(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# a comment
% another comment
0 1
1 2
2 0
0 label=3
2 label=1
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 3, 3", g.N(), g.M())
	}
	if g.Label(0) != 3 || g.Label(2) != 1 || g.Label(1) != 0 {
		t.Fatalf("labels = %v", g.Labels())
	}
	if g.NumLabels() != 4 {
		t.Fatalf("NumLabels = %d, want 4", g.NumLabels())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 label=99999\n", "0 1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 64, 200)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() || got.NumLabels() != g.NumLabels() {
		t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
			got.N(), got.M(), got.NumLabels(), g.N(), g.M(), g.NumLabels())
	}
	for v := uint32(0); v < uint32(g.N()); v++ {
		if got.Label(v) != g.Label(v) {
			t.Fatalf("label of %d changed", v)
		}
		a, b := g.Neighbors(v), got.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree of %d changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("neighbors of %d changed", v)
			}
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 16, 30)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncation at several points must error, not panic.
	for _, cut := range []int{0, 3, 10, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("ReadBinary of %d/%d bytes succeeded", cut, len(full))
		}
	}
	// Bad magic.
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("ReadBinary accepted corrupt magic")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 32, 64)
	path := t.TempDir() + "/g.bin"
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", got.N(), got.M(), g.N(), g.M())
	}
}

func TestBytesAccounting(t *testing.T) {
	g := paperGraph(t)
	want := int64(6*8 + 14*4 + 14*4 + 7*8 + 5*2)
	if g.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", g.Bytes(), want)
	}
}
