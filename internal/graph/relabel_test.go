package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// skewedGraph builds a deterministic pseudo-random labeled graph with a
// skewed degree distribution (a few heavy vertices) for relabel tests.
func skewedGraph(t *testing.T, n, m int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		// Square the first endpoint draw toward 0 to create hubs.
		u := uint32(float64(n) * rng.Float64() * rng.Float64())
		v := uint32(rng.Intn(n))
		if u >= uint32(n) {
			u = uint32(n - 1)
		}
		b.AddEdge(u, v)
	}
	for v := 0; v < n; v++ {
		b.SetLabel(uint32(v), Label(rng.Intn(5)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRelabelDegreeOrderAndPermutation(t *testing.T) {
	g := skewedGraph(t, 500, 3000, 1)
	rg, err := Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rg.Relabeled() || g.Relabeled() {
		t.Fatal("relabel flag wrong")
	}
	if rg.N() != g.N() || rg.M() != g.M() || rg.NumLabels() != g.NumLabels() {
		t.Fatalf("shape changed: %d/%d/%d vs %d/%d/%d", rg.N(), rg.M(), rg.NumLabels(), g.N(), g.M(), g.NumLabels())
	}
	// Ids are ordered by nonincreasing degree.
	for v := 1; v < rg.N(); v++ {
		if rg.Degree(uint32(v)) > rg.Degree(uint32(v-1)) {
			t.Fatalf("degree not ordered at %d: %d > %d", v, rg.Degree(uint32(v)), rg.Degree(uint32(v-1)))
		}
	}
	// The permutation is a bijection and OrigID/NewID invert each other.
	seen := make([]bool, rg.N())
	for v := 0; v < rg.N(); v++ {
		ov := rg.OrigID(uint32(v))
		if seen[ov] {
			t.Fatalf("orig id %d mapped twice", ov)
		}
		seen[ov] = true
		if rg.NewID(ov) != uint32(v) {
			t.Fatalf("NewID(OrigID(%d)) = %d", v, rg.NewID(ov))
		}
		if rg.Label(uint32(v)) != g.Label(ov) {
			t.Fatalf("label of %d (orig %d) changed", v, ov)
		}
		if rg.Degree(uint32(v)) != g.Degree(ov) {
			t.Fatalf("degree of %d (orig %d) changed", v, ov)
		}
	}
	// Isomorphism: every relabeled edge exists under original ids and the
	// counts match, so the edge sets correspond 1:1.
	for _, e := range rg.Edges() {
		if !g.HasEdge(rg.OrigID(e.U), rg.OrigID(e.V)) {
			t.Fatalf("edge (%d,%d) has no original counterpart", e.U, e.V)
		}
	}
	// Idempotent.
	rg2, err := Relabel(rg)
	if err != nil {
		t.Fatal(err)
	}
	if rg2 != rg {
		t.Fatal("relabel of a relabeled graph is not a no-op")
	}
	// Identity translation on a raw graph.
	if g.OrigID(7) != 7 || g.NewID(7) != 7 {
		t.Fatal("identity translation broken on raw graph")
	}
}

func TestRelabelBinaryRoundTrip(t *testing.T) {
	g := skewedGraph(t, 300, 1500, 2)
	rg, err := Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rg.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Relabeled() {
		t.Fatal("round trip dropped the relabel flag")
	}
	if back.N() != rg.N() || back.M() != rg.M() {
		t.Fatalf("round trip shape %d/%d, want %d/%d", back.N(), back.M(), rg.N(), rg.M())
	}
	for v := 0; v < back.N(); v++ {
		if back.OrigID(uint32(v)) != rg.OrigID(uint32(v)) {
			t.Fatalf("permutation differs at %d: %d vs %d", v, back.OrigID(uint32(v)), rg.OrigID(uint32(v)))
		}
		if back.Label(uint32(v)) != rg.Label(uint32(v)) {
			t.Fatalf("label differs at %d", v)
		}
	}
	for e := 0; e < back.M(); e++ {
		if back.EdgeAt(uint32(e)) != rg.EdgeAt(uint32(e)) {
			t.Fatalf("edge %d differs", e)
		}
	}
	// A raw graph still round-trips without the flag.
	buf.Reset()
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if back, err = ReadBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if back.Relabeled() {
		t.Fatal("raw graph came back relabeled")
	}
}

func TestDegreeMassRangesBalance(t *testing.T) {
	g := skewedGraph(t, 2000, 12000, 3)
	rg, err := Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	mass := func(lo, hi int) uint64 {
		var s uint64
		for v := lo; v < hi; v++ {
			s += uint64(rg.Degree(uint32(v))) + 1
		}
		return s
	}
	for _, k := range []int{1, 2, 3, 4, 8} {
		bounds := rg.DegreeMassVertexRanges(k)
		if len(bounds) != k+1 || bounds[0] != 0 || bounds[k] != rg.N() {
			t.Fatalf("k=%d: bad bounds %v", k, bounds)
		}
		total := mass(0, rg.N())
		target := total / uint64(k)
		for s := 0; s < k; s++ {
			if bounds[s] > bounds[s+1] {
				t.Fatalf("k=%d: bounds not monotone: %v", k, bounds)
			}
			got := mass(bounds[s], bounds[s+1])
			// First fit over degree-ordered prefix sums: every range's mass
			// stays within one max-remaining-weight of the equal share. With
			// ids degree-ordered, late ranges hold only light vertices, so a
			// generous 1.5x/0.5x envelope pins real balance without being
			// brittle about rounding.
			if k > 1 && (got > target+target/2+uint64(rg.Degree(uint32(bounds[s])))+1 ||
				(s < k-1 && got+got/2 < target/2)) {
				t.Fatalf("k=%d shard %d: mass %d vs target %d (bounds %v)", k, s, got, target, bounds)
			}
		}
	}
	// Edge ranges: same shape invariants plus full coverage.
	for _, k := range []int{1, 3, 4} {
		bounds := rg.DegreeMassEdgeRanges(k)
		if len(bounds) != k+1 || bounds[0] != 0 || bounds[k] != rg.M() {
			t.Fatalf("edge k=%d: bad bounds %v", k, bounds)
		}
	}
	// More shards than vertices: trailing ranges empty, still covering.
	tiny, err := FromEdges(3, []Edge{{0, 1}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bounds := tiny.DegreeMassVertexRanges(8)
	if len(bounds) != 9 || bounds[0] != 0 || bounds[8] != 3 {
		t.Fatalf("tiny bounds %v", bounds)
	}
	for s := 0; s < 8; s++ {
		if bounds[s] > bounds[s+1] {
			t.Fatalf("tiny bounds not monotone: %v", bounds)
		}
	}
}

func TestRelabelHubPrefix(t *testing.T) {
	// With degree-ordered ids every hub must sit in a dense low-id prefix.
	g := skewedGraph(t, 800, 20000, 4)
	rg, err := Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	if rg.HubThreshold() == 0 {
		t.Skip("no hubs at this size")
	}
	lastHub := -1
	for v := 0; v < rg.N(); v++ {
		if rg.IsHub(uint32(v)) {
			if lastHub != v-1 {
				t.Fatalf("hub %d not contiguous with previous hub %d", v, lastHub)
			}
			lastHub = v
		}
	}
	if lastHub < 0 {
		t.Skip("no hubs at this size")
	}
}
