package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated text edge list. Lines beginning
// with '#' or '%' are comments. Each data line is either
//
//	u v          — an edge
//	v label=L    — a vertex label assignment
//
// Vertex ids may be sparse; they are compacted to dense ids in first-seen
// order. This covers the SNAP-style files the paper's datasets ship in.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	remap := map[uint64]uint32{}
	id := func(raw uint64) uint32 {
		if v, ok := remap[raw]; ok {
			return v
		}
		v := uint32(len(remap))
		remap[raw] = v
		return v
	}
	type lbl struct {
		v uint32
		l Label
	}
	var edges []Edge
	var labels []lbl
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", line, len(fields))
		}
		u, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		if lv, ok := strings.CutPrefix(fields[1], "label="); ok {
			l, err := strconv.ParseUint(lv, 10, 16)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			labels = append(labels, lbl{id(u), Label(l)})
			continue
		}
		v, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", line, err)
		}
		ui, vi := id(u), id(v)
		edges = append(edges, Edge{ui, vi})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	b := NewBuilder(len(remap))
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	for _, l := range labels {
		b.SetLabel(l.v, l.l)
	}
	return b.Build()
}

// binaryMagic identifies the Kaleido binary graph format.
const binaryMagic = uint32(0x4b414c44) // "KALD"

// binaryRelabeled is the version-2 flag bit recording that the graph was
// degree-order relabeled. The file always stores original (load-time) ids —
// stable across relabeling policy changes and diffable against the text edge
// list — and the reader re-runs the deterministic Relabel pass when the flag
// is set, reproducing the identical permutation.
const binaryRelabeled = uint32(1)

// WriteBinary serializes the graph in a compact little-endian binary format
// so generated datasets can be cached between benchmark runs. Version 2 adds
// a flags word after the header; edges and labels are written under the
// original vertex ids regardless of relabeling.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	flags := uint32(0)
	if g.Relabeled() {
		flags |= binaryRelabeled
	}
	hdr := []uint32{binaryMagic, 2, uint32(g.n), uint32(g.m), uint32(g.numLabels), flags}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	edges := g.edges
	if g.Relabeled() {
		edges = make([]Edge, g.m)
		for i, e := range g.edges {
			u, v := g.origID[e.U], g.origID[e.V]
			if u > v {
				u, v = v, u
			}
			edges[i] = Edge{u, v}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, edges); err != nil {
		return err
	}
	labels := g.labels
	if g.Relabeled() {
		labels = make([]Label, g.n)
		for nv, l := range g.labels {
			labels[g.origID[nv]] = l
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, labels); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary, validating all
// invariants before returning. Version-1 files (no flags word, never
// relabeled) are still accepted.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic, version, n, m, numLabels uint32
	for _, p := range []*uint32{&magic, &version, &n, &m, &numLabels} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: bad binary header: %w", err)
		}
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	var flags uint32
	if version == 2 {
		if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
			return nil, fmt.Errorf("graph: bad binary header: %w", err)
		}
	}
	if n > 1<<30 || m > 1<<31 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n, m)
	}
	edges := make([]Edge, m)
	if err := binary.Read(br, binary.LittleEndian, edges); err != nil {
		return nil, fmt.Errorf("graph: truncated edges: %w", err)
	}
	labels := make([]Label, n)
	if err := binary.Read(br, binary.LittleEndian, labels); err != nil {
		return nil, fmt.Errorf("graph: truncated labels: %w", err)
	}
	g, err := FromEdges(int(n), edges, labels)
	if err != nil {
		return nil, err
	}
	if flags&binaryRelabeled != 0 {
		return Relabel(g)
	}
	return g, nil
}

// SaveFile writes the binary format to path.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a binary graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
