package graph

import "math"

// This file implements the hybrid adjacency index: two complementary
// structures that remove the O(log d) binary search from adjacency tests.
//
//  1. Hub bitset rows — every vertex whose degree reaches the hub threshold
//     gets a packed N-bit row of the adjacency matrix. HasEdge involving a
//     hub becomes one bit test. Hubs are exactly where the binary search is
//     worst (log d is largest) and, on the power-law graphs graph mining
//     targets, where most adjacency probes land.
//  2. NeighborMarker — an epoch-stamped scratch array for batch membership
//     tests: mark the neighborhoods of a small working set once (O(Σ deg)),
//     then answer "is u adjacent to a marked vertex" / "to how many?" in
//     O(1) per probe, amortizing list walks across many probes.
//
// Both are built once per graph (the bitsets in Builder.Build, markers on
// demand per worker) and never mutated afterwards, so they are safe for
// concurrent readers like the rest of the Graph.

// MinHubDegree is the smallest automatic hub threshold: vertices below this
// degree never get a bitset row, keeping the index negligible on small or
// uniform graphs.
const MinHubDegree = 64

// hubIndex holds packed adjacency-bitmap rows for high-degree vertices.
type hubIndex struct {
	threshold int     // degree at or above which a vertex is a hub
	words     int     // uint64 words per row = ceil(n/64)
	rowOf     []int32 // vertex id -> row index, -1 for non-hubs
	bits      []uint64
}

// autoHubThreshold picks the default threshold max(MinHubDegree, √2m): at
// most √2m vertices can have degree ≥ √2m, so the index holds O(√m) rows —
// n·√2m/8 bytes, a small constant factor of the CSC arrays on sparse graphs.
func autoHubThreshold(m int) int {
	t := int(math.Sqrt(float64(2 * m)))
	if t < MinHubDegree {
		t = MinHubDegree
	}
	return t
}

// buildHubIndex scans degrees and packs one bitmap row per hub vertex.
// threshold <= 0 disables the index (nil return). The total index size is
// capped at the size of the CSC adjacency array (8m bytes): if more vertices
// qualify than fit the cap, the threshold is raised so only the highest-
// degree vertices get rows — those are where the bitmaps pay off most, and
// the cap keeps the index a bounded fraction of the graph's footprint even
// on huge power-law graphs.
func buildHubIndex(g *Graph, threshold int) *hubIndex {
	if threshold <= 0 || g.n == 0 {
		return nil
	}
	rowBytes := ((g.n + 63) / 64) * 8
	maxRows := 8 * g.m / rowBytes
	countAt := func(t int) int {
		c := 0
		for v := 0; v < g.n; v++ {
			if g.Degree(uint32(v)) >= t {
				c++
			}
		}
		return c
	}
	hubs := countAt(threshold)
	for hubs > maxRows {
		// Doubling the threshold at least halves Σdeg of qualifying
		// vertices, so this terminates quickly.
		threshold *= 2
		hubs = countAt(threshold)
	}
	if hubs == 0 {
		return nil
	}
	h := &hubIndex{
		threshold: threshold,
		words:     (g.n + 63) / 64,
		rowOf:     make([]int32, g.n),
	}
	h.bits = make([]uint64, hubs*h.words)
	row := int32(0)
	for v := 0; v < g.n; v++ {
		if g.Degree(uint32(v)) < threshold {
			h.rowOf[v] = -1
			continue
		}
		h.rowOf[v] = row
		bits := h.bits[int(row)*h.words : (int(row)+1)*h.words]
		for _, u := range g.Neighbors(uint32(v)) {
			bits[u>>6] |= 1 << (u & 63)
		}
		row++
	}
	return h
}

// test reports bit u of row r.
func (h *hubIndex) test(r int32, u uint32) bool {
	return h.bits[int(r)*h.words+int(u>>6)]&(1<<(u&63)) != 0
}

// bytes is the resident footprint of the index.
func (h *hubIndex) bytes() int64 {
	if h == nil {
		return 0
	}
	return int64(len(h.rowOf))*4 + int64(len(h.bits))*8
}

// HubThreshold returns the degree threshold of the hub bitset index, or 0 if
// the graph has no index (disabled, or no vertex qualified).
func (g *Graph) HubThreshold() int {
	if g.hub == nil {
		return 0
	}
	return g.hub.threshold
}

// IsHub reports whether v has a bitmap row in the hybrid adjacency index.
func (g *Graph) IsHub(v uint32) bool {
	return g.hub != nil && g.hub.rowOf[v] >= 0
}

// NeighborMarker is a reusable, epoch-stamped scratch for batch adjacency
// tests against a small working set of vertices. A batch starts with Begin,
// adds neighborhoods with MarkNeighbors (or single vertices with Mark), and
// then answers Marked/Count probes in O(1). Begin is O(1): stale stamps from
// earlier batches are invalidated by bumping the epoch, not by clearing.
//
// A marker belongs to one goroutine; concurrent workers each create their
// own (the scratch is O(N) ints, shared-nothing by design).
type NeighborMarker struct {
	g     *Graph
	epoch uint32
	stamp []uint32 // stamp[v] == epoch ⇔ v marked in the current batch
	count []uint16 // valid only when stamp[v] == epoch
}

// NewNeighborMarker returns a marker for batch membership tests on g. The
// marker starts with an empty batch (epoch 1, all stamps 0 — nothing reads
// as marked before the first Begin).
func (g *Graph) NewNeighborMarker() *NeighborMarker {
	return &NeighborMarker{
		g:     g,
		epoch: 1,
		stamp: make([]uint32, g.n),
		count: make([]uint16, g.n),
	}
}

// Begin starts a new empty batch, invalidating all marks in O(1).
func (m *NeighborMarker) Begin() {
	m.epoch++
	if m.epoch == 0 { // wrapped: stale stamps could collide, hard-clear once
		clear(m.stamp)
		m.epoch = 1
	}
}

// Mark adds a single vertex to the batch.
func (m *NeighborMarker) Mark(v uint32) {
	if m.stamp[v] == m.epoch {
		m.count[v]++
		return
	}
	m.stamp[v] = m.epoch
	m.count[v] = 1
}

// MarkNeighbors adds every neighbor of v to the batch. Marking the
// neighborhoods of a working set S costs O(Σ_{v∈S} deg v) once; afterwards
// each probe is O(1) instead of a per-probe binary search.
func (m *NeighborMarker) MarkNeighbors(v uint32) {
	for _, u := range m.g.Neighbors(v) {
		m.Mark(u)
	}
}

// Marked reports whether v is in the current batch.
func (m *NeighborMarker) Marked(v uint32) bool { return m.stamp[v] == m.epoch }

// Count returns how many times v was marked in the current batch — with
// MarkNeighbors this is the number of working-set vertices adjacent to v,
// the quantity clique filters test against |S|.
func (m *NeighborMarker) Count(v uint32) int {
	if m.stamp[v] != m.epoch {
		return 0
	}
	return int(m.count[v])
}
