package blisslike

import (
	"math/rand"
	"testing"

	"kaleido/internal/graph"
	"kaleido/internal/iso"
	"kaleido/internal/pattern"
)

func randPattern(rng *rand.Rand, k, labels int) *pattern.Pattern {
	p, _ := pattern.New(k)
	for i := 0; i < k; i++ {
		p.Labels[i] = graph.Label(rng.Intn(labels))
		for j := i + 1; j < k; j++ {
			if rng.Intn(2) == 0 {
				p.SetEdge(i, j)
			}
		}
	}
	return p
}

func TestCanonicalInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		k := 1 + rng.Intn(pattern.MaxK)
		p := randPattern(rng, k, 3)
		q := p.Permuted(rng.Perm(k))
		cp, cq := Canonical(p), Canonical(q)
		if !cp.Equal(cq) {
			t.Fatalf("trial %d: canonical forms differ\n p=%v → %v\n q=%v → %v", trial, p, cp, q, cq)
		}
	}
}

func TestCanonicalSeparatesNonIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		k := 2 + rng.Intn(pattern.MaxK-1)
		p := randPattern(rng, k, 2)
		q := randPattern(rng, k, 2)
		canonEq := Canonical(p).Equal(Canonical(q))
		isoEq := iso.Isomorphic(p, q)
		if canonEq != isoEq {
			t.Fatalf("trial %d: canonical eq=%v, iso=%v\n p=%v\n q=%v", trial, canonEq, isoEq, p, q)
		}
	}
}

func TestCanonicalIsIsomorphicToInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		p := randPattern(rng, 1+rng.Intn(pattern.MaxK), 4)
		c := Canonical(p)
		if !iso.Isomorphic(p, c) {
			t.Fatalf("trial %d: canonical form not isomorphic to input\n p=%v\n c=%v", trial, p, c)
		}
	}
}

func TestHashMatchesIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(pattern.MaxK-1)
		p := randPattern(rng, k, 2)
		q := p.Permuted(rng.Perm(k))
		if Hash(p) != Hash(q) {
			t.Fatalf("trial %d: isomorphic patterns hash differently", trial)
		}
	}
}

func TestCanonicalRegularGraph(t *testing.T) {
	// C6 is vertex-transitive: refinement alone cannot split it, forcing the
	// individualization search tree to do the work.
	p, _ := pattern.New(6)
	for i := 0; i < 6; i++ {
		p.SetEdge(i, (i+1)%6)
	}
	q := p.Permuted([]int{3, 5, 1, 0, 4, 2})
	if !Canonical(p).Equal(Canonical(q)) {
		t.Fatal("C6 canonical form not invariant")
	}
	// K3,3 vs C6: both 3-regular on 6 vertices but not isomorphic.
	k33, _ := pattern.New(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			k33.SetEdge(i, j)
		}
	}
	prism, _ := pattern.New(6) // triangular prism is the other cubic graph on 6 vertices
	prism.SetEdge(0, 1)
	prism.SetEdge(1, 2)
	prism.SetEdge(2, 0)
	prism.SetEdge(3, 4)
	prism.SetEdge(4, 5)
	prism.SetEdge(5, 3)
	prism.SetEdge(0, 3)
	prism.SetEdge(1, 4)
	prism.SetEdge(2, 5)
	if Canonical(k33).Equal(Canonical(prism)) {
		t.Fatal("K3,3 and prism share canonical form")
	}
}

func BenchmarkBlissCanonical5(b *testing.B) {
	benchmarkCanonical(b, 5)
}

func BenchmarkBlissCanonical8(b *testing.B) {
	benchmarkCanonical(b, 8)
}

func benchmarkCanonical(b *testing.B, k int) {
	rng := rand.New(rand.NewSource(1))
	p := randPattern(rng, k, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Canonical(p)
	}
}
