// Package blisslike is a canonical-labeling library in the style of bliss
// (Junttila & Kaski, ALENEX 2007) — the isomorphism backend Arabesque and
// RStream use and the baseline of the paper's §6.3 experiment. It computes a
// canonical form by colour refinement plus individualization, exploring an
// explicit search tree.
//
// Like bliss, every invocation allocates its search tree afresh; §1.2 of the
// paper measures that allocation/deallocation at >53% of 3-FSM run time and
// the §6.3 experiments reproduce that overhead against the allocation-free
// eigenvalue hash.
package blisslike

import (
	"sort"

	"kaleido/internal/pattern"
)

// Canonical returns a canonical representative of p's isomorphism class:
// Canonical(p).Equal(Canonical(q)) iff p and q are isomorphic labeled
// graphs. p itself is not modified.
func Canonical(p *pattern.Pattern) *pattern.Pattern {
	s := &search{p: p}
	cells := initialPartition(p)
	cells = s.refine(cells)
	s.explore(cells)
	return s.best
}

// Hash returns an isomorphism-invariant 64-bit hash of p via the canonical
// form. This is the drop-in replacement slot for eigen.Hasher.Hash in the
// §6.3 comparison.
func Hash(p *pattern.Pattern) uint64 {
	enc := Canonical(p).Encode()
	h := uint64(14695981039346656037)
	for i := 0; i < len(enc); i++ {
		h ^= uint64(enc[i])
		h *= 1099511628211
	}
	return h
}

// search carries the state of one canonical-labeling run: the input pattern
// and the lexicographically smallest encoding found so far.
type search struct {
	p       *pattern.Pattern
	best    *pattern.Pattern
	bestEnc string
}

// cell is an ordered group of vertices currently considered equivalent.
type cell []int

// initialPartition groups vertices by label, cells ordered by label value.
func initialPartition(p *pattern.Pattern) []cell {
	byLabel := map[uint16][]int{}
	for v := 0; v < p.K; v++ {
		byLabel[uint16(p.Labels[v])] = append(byLabel[uint16(p.Labels[v])], v)
	}
	labels := make([]int, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, int(l))
	}
	sort.Ints(labels)
	cells := make([]cell, 0, len(labels))
	for _, l := range labels {
		cells = append(cells, byLabel[uint16(l)])
	}
	return cells
}

// refine drives the partition to equitability: every vertex in a cell has
// the same number of neighbors in every cell. Splitting is deterministic
// (cells ordered by signature), so refinement commutes with isomorphism.
func (s *search) refine(cells []cell) []cell {
	for {
		split := false
		next := make([]cell, 0, len(cells))
		for _, c := range cells {
			if len(c) == 1 {
				next = append(next, c)
				continue
			}
			// Signature of v: neighbor count per current cell.
			sigs := make([]string, len(c))
			for i, v := range c {
				sig := make([]byte, len(cells))
				for d, other := range cells {
					cnt := byte(0)
					for _, u := range other {
						if s.p.HasEdge(v, u) {
							cnt++
						}
					}
					sig[d] = cnt
				}
				sigs[i] = string(sig)
			}
			groups := map[string]cell{}
			for i, v := range c {
				groups[sigs[i]] = append(groups[sigs[i]], v)
			}
			if len(groups) == 1 {
				next = append(next, c)
				continue
			}
			split = true
			keys := make([]string, 0, len(groups))
			for k := range groups {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				next = append(next, groups[k])
			}
		}
		cells = next
		if !split {
			return cells
		}
	}
}

// explore walks the individualization search tree rooted at the given
// equitable partition, updating s.best at every discrete leaf.
func (s *search) explore(cells []cell) {
	target := -1
	for i, c := range cells {
		if len(c) > 1 {
			target = i
			break
		}
	}
	if target == -1 {
		s.leaf(cells)
		return
	}
	for _, v := range cells[target] {
		// Individualize v: promote it to its own cell before the rest.
		branch := make([]cell, 0, len(cells)+1)
		branch = append(branch, cells[:target]...)
		branch = append(branch, cell{v})
		rest := make(cell, 0, len(cells[target])-1)
		for _, u := range cells[target] {
			if u != v {
				rest = append(rest, u)
			}
		}
		branch = append(branch, rest)
		branch = append(branch, cells[target+1:]...)
		s.explore(s.refine(branch))
	}
}

// leaf converts a discrete partition into a candidate canonical form.
func (s *search) leaf(cells []cell) {
	perm := make([]int, s.p.K)
	for pos, c := range cells {
		perm[c[0]] = pos
	}
	cand := s.p.Permuted(perm)
	enc := cand.Encode()
	if s.bestEnc == "" || enc < s.bestEnc {
		s.bestEnc = enc
		s.best = cand
	}
}
