package gen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestAliasMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, len(weights))
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[a.Sample(rng)]++
	}
	for i, w := range weights {
		want := w / 10 * trials
		got := float64(counts[i])
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("index %d: got %0.f samples, want ~%0.f", i, got, want)
		}
	}
}

func TestAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestAliasSingleton(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		if a.Sample(rng) != 0 {
			t.Fatal("singleton table sampled non-zero index")
		}
	}
}

func TestPowerLawShape(t *testing.T) {
	g, err := PowerLaw(Config{N: 2000, M: 8000, Alpha: 2.1, NumLabels: 6, LabelSkew: 1.0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() < 7600 {
		t.Fatalf("M = %d, want close to 8000", g.M())
	}
	if g.NumLabels() != 6 {
		t.Fatalf("NumLabels = %d, want 6", g.NumLabels())
	}
	// Power-law skew: the top 1% of vertices should hold far more than 1%
	// of the edge endpoints.
	degs := make([]int, g.N())
	total := 0
	for v := range degs {
		degs[v] = g.Degree(uint32(v))
		total += degs[v]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := 0
	for _, d := range degs[:g.N()/100] {
		top += d
	}
	if frac := float64(top) / float64(total); frac < 0.05 {
		t.Errorf("top 1%% of vertices hold %.1f%% of endpoints, want skew > 5%%", frac*100)
	}
}

func TestPowerLawDeterministic(t *testing.T) {
	cfg := Config{N: 300, M: 900, Alpha: 2.2, NumLabels: 4, LabelSkew: 0.8, Seed: 11}
	a, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerLaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("same seed produced different shapes: %d/%d vs %d/%d", a.N(), a.M(), b.N(), b.M())
	}
	for v := uint32(0); v < uint32(a.N()); v++ {
		if a.Label(v) != b.Label(v) || a.Degree(v) != b.Degree(v) {
			t.Fatalf("same seed produced different vertex %d", v)
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(Config{N: 100, M: 300, NumLabels: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 300 {
		t.Fatalf("M = %d, want exactly 300", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	if _, err := ErdosRenyi(Config{N: 3, M: 100}); err == nil {
		t.Error("impossible edge count accepted")
	}
	if _, err := ErdosRenyi(Config{N: 1, M: 0}); err == nil {
		t.Error("single-vertex graph accepted")
	}
	if _, err := PowerLaw(Config{N: 0, M: 0}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestLabelSkew(t *testing.T) {
	g, err := PowerLaw(Config{N: 5000, M: 10000, Alpha: 2.3, NumLabels: 10, LabelSkew: 1.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for v := uint32(0); v < uint32(g.N()); v++ {
		counts[g.Label(v)]++
	}
	if counts[0] <= counts[9]*2 {
		t.Errorf("label distribution not skewed: first=%d last=%d", counts[0], counts[9])
	}
}
