// Package gen generates synthetic labeled graphs with the statistical shape
// of the paper's evaluation datasets (power-law degree distribution, skewed
// label distribution). The paper's hybrid-storage load balancer (§4.2)
// explicitly targets the "skewed power-law degree distribution" of natural
// graphs, so the generators here preserve that property.
package gen

import (
	"fmt"
	"math/rand"
)

// Alias is a Walker alias table for O(1) sampling from a discrete
// distribution. It is the workhorse behind the Chung–Lu edge sampler.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the given non-negative weights.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("gen: empty weight vector")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("gen: negative weight %g at %d", w, i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("gen: zero total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a, nil
}

// Sample draws one index from the distribution.
func (a *Alias) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}
