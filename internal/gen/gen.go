package gen

import (
	"fmt"
	"math"
	"math/rand"

	"kaleido/internal/graph"
)

// Config describes a synthetic labeled graph.
type Config struct {
	N         int     // vertices
	M         int     // target undirected edges (achieved count may be slightly lower)
	Alpha     float64 // power-law exponent of the degree weights (e.g. 2.1); 0 = uniform
	NumLabels int     // distinct vertex labels (≥1)
	LabelSkew float64 // Zipf exponent of the label distribution; 0 = uniform
	Seed      int64
}

// PowerLaw generates a Chung–Lu style random graph: each vertex v gets a
// weight w_v ∝ (v+1)^(-1/(Alpha-1)) and edge endpoints are drawn with
// probability proportional to weight, reproducing the skewed power-law degree
// distribution of natural graphs (§4.2 of the paper). Labels are drawn from a
// Zipf-like distribution so label frequencies are skewed like the paper's
// real datasets.
func PowerLaw(cfg Config) (*graph.Graph, error) {
	if cfg.N <= 1 {
		return nil, fmt.Errorf("gen: need at least 2 vertices, got %d", cfg.N)
	}
	if cfg.NumLabels < 1 {
		cfg.NumLabels = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	weights := make([]float64, cfg.N)
	gamma := 0.0
	if cfg.Alpha > 1 {
		gamma = 1 / (cfg.Alpha - 1)
	}
	for v := range weights {
		weights[v] = math.Pow(float64(v+1), -gamma)
	}
	// Shuffle weight ranks so high-degree vertices are spread across the id
	// space; vertex-id order must not correlate with degree, or the
	// canonical filter's id-based pruning would see an unnatural graph.
	rng.Shuffle(cfg.N, func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	table, err := NewAlias(weights)
	if err != nil {
		return nil, err
	}

	b := graph.NewBuilder(cfg.N)
	seen := make(map[uint64]struct{}, cfg.M*5/4)
	attempts := 0
	maxAttempts := 20 * cfg.M
	for len(seen) < cfg.M && attempts < maxAttempts {
		attempts++
		u := uint32(table.Sample(rng))
		v := uint32(table.Sample(rng))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}

	assignLabels(b, cfg, rng)
	return b.Build()
}

// ErdosRenyi generates a uniform G(n, m) random graph with the same label
// model; used by tests and as a non-skewed ablation workload.
func ErdosRenyi(cfg Config) (*graph.Graph, error) {
	if cfg.N <= 1 {
		return nil, fmt.Errorf("gen: need at least 2 vertices, got %d", cfg.N)
	}
	if cfg.NumLabels < 1 {
		cfg.NumLabels = 1
	}
	maxM := cfg.N * (cfg.N - 1) / 2
	if cfg.M > maxM {
		return nil, fmt.Errorf("gen: %d edges exceed max %d for n=%d", cfg.M, maxM, cfg.N)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(cfg.N)
	seen := make(map[uint64]struct{}, cfg.M*5/4)
	for len(seen) < cfg.M {
		u := uint32(rng.Intn(cfg.N))
		v := uint32(rng.Intn(cfg.N))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	assignLabels(b, cfg, rng)
	return b.Build()
}

func assignLabels(b *graph.Builder, cfg Config, rng *rand.Rand) {
	if cfg.NumLabels == 1 {
		return
	}
	lw := make([]float64, cfg.NumLabels)
	for i := range lw {
		if cfg.LabelSkew > 0 {
			lw[i] = math.Pow(float64(i+1), -cfg.LabelSkew)
		} else {
			lw[i] = 1
		}
	}
	lt, err := NewAlias(lw)
	if err != nil {
		panic(err) // weights are positive by construction
	}
	for v := 0; v < cfg.N; v++ {
		b.SetLabel(uint32(v), graph.Label(lt.Sample(rng)))
	}
}
