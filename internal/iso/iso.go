// Package iso provides an exact labeled-graph isomorphism test for patterns
// (VF2-style backtracking). It is the ground truth the property tests use to
// validate Kaleido's eigenvalue hash (Algorithm 1) and the bliss-like
// canonical labeler; it is also a usable — if slower — isomorphism backend
// in its own right.
package iso

import "kaleido/internal/pattern"

// Isomorphic reports whether patterns p and q are isomorphic as labeled
// graphs: some bijection maps vertices to vertices preserving labels and
// adjacency (paper Definition 1).
func Isomorphic(p, q *pattern.Pattern) bool {
	if p.K != q.K || p.Edges() != q.Edges() {
		return false
	}
	k := p.K
	// Quick reject on sorted (label, degree) multisets.
	var ps, qs [pattern.MaxK]uint32
	for i := 0; i < k; i++ {
		ps[i] = uint32(p.Labels[i])<<8 | uint32(p.Deg[i])
		qs[i] = uint32(q.Labels[i])<<8 | uint32(q.Deg[i])
	}
	sortK(ps[:k])
	sortK(qs[:k])
	for i := 0; i < k; i++ {
		if ps[i] != qs[i] {
			return false
		}
	}
	var mapping [pattern.MaxK]int8
	for i := range mapping {
		mapping[i] = -1
	}
	var used uint8
	return match(p, q, 0, &mapping, &used)
}

// match tries to extend a partial mapping of p's vertices [0, depth) onto
// distinct vertices of q.
func match(p, q *pattern.Pattern, depth int, mapping *[pattern.MaxK]int8, used *uint8) bool {
	if depth == p.K {
		return true
	}
	for cand := 0; cand < q.K; cand++ {
		if *used&(1<<cand) != 0 {
			continue
		}
		if p.Labels[depth] != q.Labels[cand] || p.Deg[depth] != q.Deg[cand] {
			continue
		}
		ok := true
		for prev := 0; prev < depth; prev++ {
			if p.HasEdge(prev, depth) != q.HasEdge(int(mapping[prev]), cand) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		mapping[depth] = int8(cand)
		*used |= 1 << cand
		if match(p, q, depth+1, mapping, used) {
			return true
		}
		*used &^= 1 << cand
		mapping[depth] = -1
	}
	return false
}

func sortK(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// CanonicalBrute returns the lexicographically smallest encoding over all
// vertex permutations of p. It is exponential and intended for tests and
// very small patterns only; two patterns are isomorphic iff their brute
// canonical encodings are equal.
func CanonicalBrute(p *pattern.Pattern) string {
	perm := make([]int, p.K)
	for i := range perm {
		perm[i] = i
	}
	best := ""
	permute(perm, 0, func(pm []int) {
		enc := p.Permuted(pm).Encode()
		if best == "" || enc < best {
			best = enc
		}
	})
	return best
}

func permute(s []int, i int, emit func([]int)) {
	if i == len(s) {
		emit(s)
		return
	}
	for j := i; j < len(s); j++ {
		s[i], s[j] = s[j], s[i]
		permute(s, i+1, emit)
		s[i], s[j] = s[j], s[i]
	}
}
