package iso

import (
	"math/rand"
	"testing"

	"kaleido/internal/graph"
	"kaleido/internal/pattern"
)

func randPattern(rng *rand.Rand, k, labels int) *pattern.Pattern {
	p, _ := pattern.New(k)
	for i := 0; i < k; i++ {
		p.Labels[i] = graph.Label(rng.Intn(labels))
		for j := i + 1; j < k; j++ {
			if rng.Intn(2) == 0 {
				p.SetEdge(i, j)
			}
		}
	}
	return p
}

func TestIsomorphicReflexive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		p := randPattern(rng, 1+rng.Intn(pattern.MaxK), 3)
		if !Isomorphic(p, p) {
			t.Fatalf("pattern not isomorphic to itself: %v", p)
		}
	}
}

func TestIsomorphicUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(pattern.MaxK)
		p := randPattern(rng, k, 3)
		q := p.Permuted(rng.Perm(k))
		if !Isomorphic(p, q) {
			t.Fatalf("trial %d: permuted copy not isomorphic\n p=%v\n q=%v", trial, p, q)
		}
	}
}

func TestNonIsomorphicByLabels(t *testing.T) {
	p, _ := pattern.New(2)
	p.SetEdge(0, 1)
	q := p.Clone()
	q.Labels[1] = 5
	if Isomorphic(p, q) {
		t.Fatal("different labels reported isomorphic")
	}
}

func TestNonIsomorphicByStructure(t *testing.T) {
	// Path P3 vs triangle: same size after adding an edge count mismatch,
	// plus a same-edge-count case: P4 (path) vs star K1,3.
	path, _ := pattern.New(4)
	path.SetEdge(0, 1)
	path.SetEdge(1, 2)
	path.SetEdge(2, 3)
	star, _ := pattern.New(4)
	star.SetEdge(0, 1)
	star.SetEdge(0, 2)
	star.SetEdge(0, 3)
	if Isomorphic(path, star) {
		t.Fatal("P4 and K1,3 reported isomorphic")
	}
}

func TestIsomorphicMatchesBruteCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(5) // brute canonical is k! per pattern
		p := randPattern(rng, k, 2)
		q := randPattern(rng, k, 2)
		want := CanonicalBrute(p) == CanonicalBrute(q)
		if got := Isomorphic(p, q); got != want {
			t.Fatalf("trial %d: Isomorphic=%v, brute=%v\n p=%v\n q=%v", trial, got, want, p, q)
		}
	}
}

func TestCanonicalBruteInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(5)
		p := randPattern(rng, k, 3)
		q := p.Permuted(rng.Perm(k))
		if CanonicalBrute(p) != CanonicalBrute(q) {
			t.Fatalf("trial %d: canonical form not permutation invariant", trial)
		}
	}
}
