package pattern

import (
	"math/rand"
	"testing"

	"kaleido/internal/graph"
)

func triangle(t *testing.T) *Pattern {
	t.Helper()
	p, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	p.SetEdge(0, 1)
	p.SetEdge(1, 2)
	p.SetEdge(0, 2)
	return p
}

func TestNewBounds(t *testing.T) {
	for _, k := range []int{0, -1, 9, 100} {
		if _, err := New(k); err == nil {
			t.Errorf("New(%d) accepted", k)
		}
	}
	for k := 1; k <= MaxK; k++ {
		if _, err := New(k); err != nil {
			t.Errorf("New(%d): %v", k, err)
		}
	}
}

func TestSetEdgeIdempotent(t *testing.T) {
	p, _ := New(3)
	p.SetEdge(0, 1)
	p.SetEdge(1, 0)
	p.SetEdge(0, 1)
	if p.Edges() != 1 {
		t.Fatalf("Edges = %d, want 1", p.Edges())
	}
	if p.Deg[0] != 1 || p.Deg[1] != 1 || p.Deg[2] != 0 {
		t.Fatalf("degrees = %v", p.Deg[:3])
	}
}

func TestTriangleBasics(t *testing.T) {
	p := triangle(t)
	if p.Edges() != 3 {
		t.Fatalf("Edges = %d, want 3", p.Edges())
	}
	for i := 0; i < 3; i++ {
		if p.Deg[i] != 2 {
			t.Fatalf("Deg[%d] = %d, want 2", i, p.Deg[i])
		}
	}
	if !p.Connected() {
		t.Fatal("triangle reported disconnected")
	}
}

func TestConnected(t *testing.T) {
	p, _ := New(4)
	p.SetEdge(0, 1)
	p.SetEdge(2, 3)
	if p.Connected() {
		t.Fatal("two disjoint edges reported connected")
	}
	p.SetEdge(1, 2)
	if !p.Connected() {
		t.Fatal("path reported disconnected")
	}
	single, _ := New(1)
	if !single.Connected() {
		t.Fatal("single vertex reported disconnected")
	}
}

func TestSwapVerticesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(MaxK-1)
		p, _ := New(k)
		for i := 0; i < k; i++ {
			p.Labels[i] = graph.Label(rng.Intn(4))
			for j := i + 1; j < k; j++ {
				if rng.Intn(2) == 0 {
					p.SetEdge(i, j)
				}
			}
		}
		q := p.Clone()
		i, j := rng.Intn(k), rng.Intn(k)
		q.SwapVertices(i, j)
		// Swapping twice restores the original.
		r := q.Clone()
		r.SwapVertices(i, j)
		if !r.Equal(p) {
			t.Fatalf("trial %d: double swap not identity:\n p=%v\n r=%v", trial, p, r)
		}
		// Swap must preserve edge count and relocate degrees.
		if q.Edges() != p.Edges() {
			t.Fatalf("trial %d: swap changed edge count", trial)
		}
		if q.Deg[i] != p.Deg[j] || q.Deg[j] != p.Deg[i] {
			t.Fatalf("trial %d: degrees not swapped", trial)
		}
		// Adjacency semantics: q.HasEdge(a',b') where a'/b' are mapped.
		mapv := func(v int) int {
			switch v {
			case i:
				return j
			case j:
				return i
			}
			return v
		}
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				if p.HasEdge(a, b) != q.HasEdge(mapv(a), mapv(b)) {
					t.Fatalf("trial %d: edge (%d,%d) inconsistent after swap(%d,%d)", trial, a, b, i, j)
				}
			}
		}
	}
}

func TestSortByLabelDegree(t *testing.T) {
	p, _ := New(4)
	p.Labels = [MaxK]graph.Label{3, 1, 2, 1}
	p.SetEdge(0, 1)
	p.SetEdge(0, 3)
	p.SetEdge(3, 2)
	edgesBefore := p.Edges()
	p.SortByLabelDegree()
	if p.Edges() != edgesBefore {
		t.Fatal("sort changed edge count")
	}
	for i := 1; i < p.K; i++ {
		if p.Labels[i] < p.Labels[i-1] {
			t.Fatalf("labels not sorted: %v", p.Labels[:p.K])
		}
		if p.Labels[i] == p.Labels[i-1] && p.Deg[i] < p.Deg[i-1] {
			t.Fatalf("degrees not sorted within label: %v / %v", p.Labels[:p.K], p.Deg[:p.K])
		}
	}
}

func TestPermutedPreservesStructure(t *testing.T) {
	p := triangle(t)
	p.Labels = [MaxK]graph.Label{7, 8, 9}
	q := p.Permuted([]int{2, 0, 1})
	if q.Edges() != 3 || q.Labels[2] != 7 || q.Labels[0] != 8 || q.Labels[1] != 9 {
		t.Fatalf("permuted = %v", q)
	}
}

func TestFromEmbedding(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.SetLabel(0, 2)
	b.SetLabel(2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromEmbedding(g, []uint32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 3 || p.Edges() != 2 {
		t.Fatalf("pattern = %v", p)
	}
	if !p.HasEdge(0, 1) || !p.HasEdge(1, 2) || p.HasEdge(0, 2) {
		t.Fatalf("wrong structure: %v", p)
	}
	if p.Labels[0] != 2 || p.Labels[1] != 0 || p.Labels[2] != 1 {
		t.Fatalf("wrong labels: %v", p.Labels[:3])
	}
}

func TestFromEdgeEmbedding(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// An edge-induced 2-edge embedding on a triangle keeps only its edges.
	p, err := FromEdgeEmbedding(g, []uint32{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Edges() != 2 || p.HasEdge(0, 2) {
		t.Fatalf("edge-induced pattern has induced edge: %v", p)
	}
	if _, err := FromEdgeEmbedding(g, []uint32{0, 1}, [][2]int{{0, 5}}); err == nil {
		t.Fatal("bad edge index accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(MaxK)
		p, _ := New(k)
		for i := 0; i < k; i++ {
			p.Labels[i] = graph.Label(rng.Intn(300))
			for j := i + 1; j < k; j++ {
				if rng.Intn(2) == 0 {
					p.SetEdge(i, j)
				}
			}
		}
		got, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(p) {
			t.Fatalf("trial %d: round trip changed pattern\n p=%v\n got=%v", trial, p, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, s := range []string{"", "\x00", "\x09", "\x03abc"} {
		if _, err := Decode(s); err == nil {
			t.Errorf("Decode(%q) succeeded", s)
		}
	}
}

func TestString(t *testing.T) {
	p := triangle(t)
	if got := p.String(); got != "[0 0 0] {0-1 0-2 1-2}" {
		t.Fatalf("String = %q", got)
	}
}

func TestBytes(t *testing.T) {
	p := triangle(t)
	if p.Bytes() != 3*2+1 {
		t.Fatalf("Bytes = %d", p.Bytes())
	}
	p8, _ := New(8)
	if p8.Bytes() != 16+4 { // 28 bits → 4 bytes
		t.Fatalf("Bytes(8) = %d", p8.Bytes())
	}
}
