// Package pattern implements the compact pattern structure of §3.2 (Fig. 5):
// a vertex label array plus the upper triangle of the adjacency matrix stored
// as a bitmap. A pattern is the template of an embedding; Kaleido transforms
// each embedding directly into this structure during pattern aggregation.
//
// Patterns hold at most MaxK = 8 vertices — the paper's eigenvalue-based
// isomorphism check is valid only below 9 vertices (Corollary 1), and the
// full 8×8 adjacency bitmap fits exactly in one uint64.
package pattern

import (
	"fmt"
	"strings"

	"kaleido/internal/graph"
)

// MaxK is the maximum number of vertices in a pattern.
const MaxK = 8

// Pattern is a small labeled graph template. The adjacency matrix is stored
// as a full 8×8 bitmap (bit i*8+j set iff vertices i and j are adjacent);
// Deg caches each vertex's degree within the pattern, which Algorithm 1's
// sort and hash both use.
type Pattern struct {
	K      int
	Labels [MaxK]graph.Label
	Deg    [MaxK]uint8
	adj    uint64
}

// New returns an empty pattern with k isolated unlabeled vertices.
func New(k int) (*Pattern, error) {
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("pattern: k=%d out of range [1,%d]", k, MaxK)
	}
	return &Pattern{K: k}, nil
}

// Reset reinitializes p in place as an empty pattern with k isolated
// unlabeled vertices, letting hot aggregation loops reuse one Pattern value
// instead of allocating per embedding.
func (p *Pattern) Reset(k int) error {
	if k < 1 || k > MaxK {
		return fmt.Errorf("pattern: k=%d out of range [1,%d]", k, MaxK)
	}
	*p = Pattern{K: k}
	return nil
}

// FromEmbedding builds the pattern of the embedding verts in graph g:
// vertex i of the pattern is verts[i], labels are copied, and every pair is
// probed for an edge (vertex-induced patternization).
func FromEmbedding(g *graph.Graph, verts []uint32) (*Pattern, error) {
	p, err := New(len(verts))
	if err != nil {
		return nil, err
	}
	for i, v := range verts {
		p.Labels[i] = g.Label(v)
	}
	for i := 0; i < p.K; i++ {
		for j := i + 1; j < p.K; j++ {
			if g.HasEdge(verts[i], verts[j]) {
				p.SetEdge(i, j)
			}
		}
	}
	return p, nil
}

// FromEdgeEmbedding builds the pattern of an edge-induced embedding: verts
// lists the distinct vertices and edges lists index pairs into verts. Only
// the listed edges are present, even if the input graph has more edges among
// these vertices.
func FromEdgeEmbedding(g *graph.Graph, verts []uint32, edges [][2]int) (*Pattern, error) {
	p, err := New(len(verts))
	if err != nil {
		return nil, err
	}
	for i, v := range verts {
		p.Labels[i] = g.Label(v)
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= p.K || e[1] < 0 || e[1] >= p.K || e[0] == e[1] {
			return nil, fmt.Errorf("pattern: bad edge indices %v for k=%d", e, p.K)
		}
		p.SetEdge(e[0], e[1])
	}
	return p, nil
}

// SetEdge adds the undirected edge {i, j}.
func (p *Pattern) SetEdge(i, j int) {
	bit := uint64(1)<<(i*8+j) | uint64(1)<<(j*8+i)
	if p.adj&bit == bit {
		return
	}
	p.adj |= bit
	p.Deg[i]++
	p.Deg[j]++
}

// HasEdge reports whether vertices i and j are adjacent.
func (p *Pattern) HasEdge(i, j int) bool {
	return p.adj&(uint64(1)<<(i*8+j)) != 0
}

// Edges returns the number of edges in the pattern.
func (p *Pattern) Edges() int {
	total := 0
	for i := 0; i < p.K; i++ {
		total += int(p.Deg[i])
	}
	return total / 2
}

// SwapVertices exchanges vertices i and j, maintaining labels, degrees and
// the adjacency matrix consistently (paper Algorithm 1, Swap).
func (p *Pattern) SwapVertices(i, j int) {
	if i == j {
		return
	}
	p.Labels[i], p.Labels[j] = p.Labels[j], p.Labels[i]
	p.Deg[i], p.Deg[j] = p.Deg[j], p.Deg[i]
	// Swap rows i and j of the bitmap.
	ri := (p.adj >> (i * 8)) & 0xff
	rj := (p.adj >> (j * 8)) & 0xff
	p.adj &^= uint64(0xff)<<(i*8) | uint64(0xff)<<(j*8)
	p.adj |= ri<<(j*8) | rj<<(i*8)
	// Swap columns i and j: exchange bit i and bit j in every row.
	colMask := uint64(0x0101010101010101)
	ci := (p.adj >> i) & colMask
	cj := (p.adj >> j) & colMask
	p.adj &^= colMask<<i | colMask<<j
	p.adj |= ci<<j | cj<<i
}

// SortByLabelDegree orders vertices ascending by (label, degree) — the
// normalization step of Algorithm 1 (lines 29–33). After sorting, two
// isomorphic patterns have identical label and degree arrays.
func (p *Pattern) SortByLabelDegree() {
	// Selection sort via SwapVertices: K ≤ 8, so O(K²) swaps are cheap and
	// the adjacency matrix stays consistent at every step.
	for i := 0; i < p.K-1; i++ {
		min := i
		for j := i + 1; j < p.K; j++ {
			if p.Labels[j] < p.Labels[min] ||
				(p.Labels[j] == p.Labels[min] && p.Deg[j] < p.Deg[min]) {
				min = j
			}
		}
		if min != i {
			p.SwapVertices(i, min)
		}
	}
}

// SortByLabelDegreeTracked sorts like SortByLabelDegree and records the
// permutation: perm[i] = new position of the vertex originally at index i.
// Pattern aggregation uses it to map embedding vertices onto normalized
// pattern positions for MNI support domains (§5.1).
func (p *Pattern) SortByLabelDegreeTracked(perm *[MaxK]uint8) {
	var cur [MaxK]uint8 // cur[pos] = original index of the vertex now at pos
	for i := range cur {
		cur[i] = uint8(i)
	}
	for i := 0; i < p.K-1; i++ {
		min := i
		for j := i + 1; j < p.K; j++ {
			if p.Labels[j] < p.Labels[min] ||
				(p.Labels[j] == p.Labels[min] && p.Deg[j] < p.Deg[min]) {
				min = j
			}
		}
		if min != i {
			p.SwapVertices(i, min)
			cur[i], cur[min] = cur[min], cur[i]
		}
	}
	for pos := 0; pos < p.K; pos++ {
		perm[cur[pos]] = uint8(pos)
	}
}

// Permuted returns a copy of p with vertex i placed at position perm[i].
func (p *Pattern) Permuted(perm []int) *Pattern {
	q := &Pattern{K: p.K}
	for i := 0; i < p.K; i++ {
		q.Labels[perm[i]] = p.Labels[i]
	}
	for i := 0; i < p.K; i++ {
		for j := i + 1; j < p.K; j++ {
			if p.HasEdge(i, j) {
				q.SetEdge(perm[i], perm[j])
			}
		}
	}
	return q
}

// Clone returns a deep copy.
func (p *Pattern) Clone() *Pattern {
	q := *p
	return &q
}

// Equal reports structural equality (same vertex order).
func (p *Pattern) Equal(q *Pattern) bool {
	return p.K == q.K && p.adj == q.adj && p.Labels == q.Labels
}

// AdjBits exposes the raw adjacency bitmap for hashing and serialization.
func (p *Pattern) AdjBits() uint64 { return p.adj }

// Connected reports whether the pattern is a connected graph. Mining systems
// only enumerate connected subgraphs, so every pattern produced during
// aggregation must satisfy this.
func (p *Pattern) Connected() bool {
	if p.K == 0 {
		return false
	}
	var seen, frontier uint64 = 1, 1
	for frontier != 0 {
		next := uint64(0)
		for f := frontier; f != 0; f &= f - 1 {
			i := trailingZeros(f)
			next |= (p.adj >> (i * 8)) & 0xff
		}
		frontier = next &^ seen
		seen |= next
	}
	return seen == (uint64(1)<<p.K)-1
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// String renders the pattern as "labels / edge list" for diagnostics,
// e.g. "[1 1 2] {0-1 1-2}".
func (p *Pattern) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < p.K; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", p.Labels[i])
	}
	sb.WriteString("] {")
	first := true
	for i := 0; i < p.K; i++ {
		for j := i + 1; j < p.K; j++ {
			if p.HasEdge(i, j) {
				if !first {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "%d-%d", i, j)
				first = false
			}
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// Encode packs the pattern into a compact byte string usable as a map key:
// Fig. 5's layout — label list followed by the upper-triangle bitmap.
func (p *Pattern) Encode() string {
	buf := make([]byte, 0, 1+2*p.K+4)
	buf = append(buf, byte(p.K))
	for i := 0; i < p.K; i++ {
		buf = append(buf, byte(p.Labels[i]), byte(p.Labels[i]>>8))
	}
	// Upper triangle, row-major: k(k−1)/2 bits ≤ 28 for k ≤ 8.
	var bits uint32
	n := 0
	for i := 0; i < p.K; i++ {
		for j := i + 1; j < p.K; j++ {
			if p.HasEdge(i, j) {
				bits |= 1 << n
			}
			n++
		}
	}
	buf = append(buf, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	return string(buf)
}

// Decode reverses Encode.
func Decode(s string) (*Pattern, error) {
	if len(s) < 1 {
		return nil, fmt.Errorf("pattern: empty encoding")
	}
	k := int(s[0])
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("pattern: encoded k=%d out of range", k)
	}
	if len(s) != 1+2*k+4 {
		return nil, fmt.Errorf("pattern: encoding length %d, want %d", len(s), 1+2*k+4)
	}
	p := &Pattern{K: k}
	for i := 0; i < k; i++ {
		p.Labels[i] = graph.Label(s[1+2*i]) | graph.Label(s[2+2*i])<<8
	}
	off := 1 + 2*k
	bits := uint32(s[off]) | uint32(s[off+1])<<8 | uint32(s[off+2])<<16 | uint32(s[off+3])<<24
	n := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if bits&(1<<n) != 0 {
				p.SetEdge(i, j)
			}
			n++
		}
	}
	return p, nil
}

// Bytes returns the serialized size of the Fig. 5 representation: a label
// array of k entries plus a bitmap of k(k−1)/2 bits.
func (p *Pattern) Bytes() int64 {
	return int64(2*p.K) + int64(p.K*(p.K-1)/2+7)/8
}
