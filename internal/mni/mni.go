// Package mni implements the minimum image-based support metric of
// Bringmann & Nijssen (paper §5.1): the support of a pattern is the minimum,
// over pattern vertices, of the number of distinct graph vertices mapped to
// that vertex across all embeddings. The metric is anti-monotonic, which the
// level-synchronous pruning of FSM relies on.
//
// Following the paper's implementation (§6.2), the exact support is not
// computed: once a pattern's minimum domain reaches the user threshold the
// pattern is marked frequent and its domains are released ("we mark this
// pattern a frequent pattern and prune it from the candidate").
//
// Pattern positions are the (label, degree)-sorted positions produced by
// pattern.SortByLabelDegreeTracked; positions with identical (label, degree)
// are merged into one domain class (the paper does not specify its tie
// handling; see DESIGN.md).
package mni

import "kaleido/internal/pattern"

// Agg tracks one pattern's embedding count and MNI domains.
type Agg struct {
	Pat      *pattern.Pattern
	Count    uint64
	frequent bool
	support  uint64
	domains  []map[uint32]struct{}
	tie      []uint8
}

// NewAgg starts aggregation for (a clone of) the sorted pattern p.
func NewAgg(p *pattern.Pattern) *Agg {
	a := &Agg{Pat: p.Clone(), domains: make([]map[uint32]struct{}, p.K)}
	a.tie = TieClasses(a.Pat)
	for i := range a.domains[:p.K] {
		if a.tie[i] == uint8(i) {
			a.domains[i] = map[uint32]struct{}{}
		}
	}
	return a
}

// Frequent reports whether the support threshold has been reached.
func (a *Agg) Frequent() bool { return a.frequent }

// Support returns the minimum domain size observed (the threshold-crossing
// value once frequent).
func (a *Agg) Support() uint64 { return a.support }

// Insert records one embedding: verts[i] is the graph vertex at original
// pattern index i, perm maps original indices to sorted positions.
func (a *Agg) Insert(verts []uint32, perm *[pattern.MaxK]uint8, support uint64) {
	a.Count++
	if a.frequent {
		return
	}
	for i, v := range verts {
		a.domains[a.tie[perm[i]]][v] = struct{}{}
	}
	a.refresh(support)
}

// Merge folds b (an Agg of the same pattern from another worker) into a.
func (a *Agg) Merge(b *Agg, support uint64) {
	a.Count += b.Count
	if a.frequent {
		return
	}
	if b.frequent {
		a.frequent = true
		a.support = b.support
		a.domains = nil
		return
	}
	for pos, d := range b.domains[:b.Pat.K] {
		if d == nil {
			continue
		}
		for v := range d {
			a.domains[pos][v] = struct{}{}
		}
	}
	a.refresh(support)
}

func (a *Agg) refresh(support uint64) {
	m := uint64(1<<63 - 1)
	for pos, d := range a.domains[:a.Pat.K] {
		if a.tie[pos] != uint8(pos) {
			continue
		}
		if uint64(len(d)) < m {
			m = uint64(len(d))
		}
	}
	a.support = m
	if m >= support {
		a.frequent = true
		a.domains = nil
	}
}

// TieClasses groups sorted pattern positions with identical (label, degree):
// out[i] is the representative (first) position of i's class.
func TieClasses(p *pattern.Pattern) []uint8 {
	out := make([]uint8, p.K)
	for i := 0; i < p.K; i++ {
		out[i] = uint8(i)
		if i > 0 && p.Labels[i] == p.Labels[i-1] && p.Deg[i] == p.Deg[i-1] {
			out[i] = out[i-1]
		}
	}
	return out
}

// MergeMaps reduces per-worker pattern maps into one (the Reducer step).
func MergeMaps(maps []map[uint64]*Agg, support uint64) map[uint64]*Agg {
	merged := map[uint64]*Agg{}
	for _, m := range maps {
		for h, agg := range m {
			if prev, ok := merged[h]; ok {
				prev.Merge(agg, support)
			} else {
				merged[h] = agg
			}
		}
	}
	return merged
}
