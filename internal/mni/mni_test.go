package mni

import (
	"testing"

	"kaleido/internal/pattern"
)

func pathPattern(t *testing.T) *pattern.Pattern {
	t.Helper()
	p, err := pattern.New(3)
	if err != nil {
		t.Fatal(err)
	}
	p.Labels = [pattern.MaxK]uint16{0, 1, 1}
	p.SetEdge(0, 1)
	p.SetEdge(0, 2)
	p.SortByLabelDegree()
	return p
}

func TestTieClasses(t *testing.T) {
	p := pathPattern(t)
	// Sorted: center (label 0, deg 2) first, then two (label 1, deg 1) leaves.
	tie := TieClasses(p)
	if tie[0] != 0 || tie[1] != 1 || tie[2] != 1 {
		t.Fatalf("tie = %v", tie)
	}
}

func TestEarlyStop(t *testing.T) {
	p := pathPattern(t)
	a := NewAgg(p)
	perm := [pattern.MaxK]uint8{0, 1, 2} // already sorted order
	a.Insert([]uint32{10, 20, 21}, &perm, 2)
	if a.Frequent() {
		t.Fatal("frequent after one embedding (center domain = 1)")
	}
	a.Insert([]uint32{11, 22, 23}, &perm, 2)
	if !a.Frequent() {
		t.Fatalf("not frequent after two centers; support = %d", a.Support())
	}
	if a.Support() != 2 || a.Count != 2 {
		t.Fatalf("support=%d count=%d", a.Support(), a.Count)
	}
	// Inserting after the flip only bumps the count.
	a.Insert([]uint32{12, 24, 25}, &perm, 2)
	if a.Count != 3 || a.Support() != 2 {
		t.Fatalf("post-flip: support=%d count=%d", a.Support(), a.Count)
	}
}

func TestMerge(t *testing.T) {
	p := pathPattern(t)
	perm := [pattern.MaxK]uint8{0, 1, 2}
	a, b := NewAgg(p), NewAgg(p)
	a.Insert([]uint32{10, 20, 21}, &perm, 2)
	b.Insert([]uint32{11, 20, 22}, &perm, 2)
	a.Merge(b, 2)
	if !a.Frequent() || a.Count != 2 {
		t.Fatalf("merge: frequent=%v count=%d support=%d", a.Frequent(), a.Count, a.Support())
	}
	// Merging a frequent agg into a fresh one propagates the flag.
	c := NewAgg(p)
	c.Merge(a, 2)
	if !c.Frequent() || c.Count != 2 {
		t.Fatalf("frequent propagation: %v %d", c.Frequent(), c.Count)
	}
}

func TestMergeMaps(t *testing.T) {
	p := pathPattern(t)
	perm := [pattern.MaxK]uint8{0, 1, 2}
	m1 := map[uint64]*Agg{7: NewAgg(p)}
	m2 := map[uint64]*Agg{7: NewAgg(p), 9: NewAgg(p)}
	m1[7].Insert([]uint32{10, 20, 21}, &perm, 5)
	m2[7].Insert([]uint32{11, 22, 23}, &perm, 5)
	m2[9].Insert([]uint32{1, 2, 3}, &perm, 5)
	out := MergeMaps([]map[uint64]*Agg{m1, m2}, 5)
	if len(out) != 2 || out[7].Count != 2 || out[9].Count != 1 {
		t.Fatalf("merged = %+v", out)
	}
	if out[7].Support() != 2 {
		t.Fatalf("support = %d, want 2", out[7].Support())
	}
}
