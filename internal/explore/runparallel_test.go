package explore

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunParallelCancelsOnError verifies that the first worker error stops
// the other workers from pulling further chunks: the failed workload must
// not run to completion.
func TestRunParallelCancelsOnError(t *testing.T) {
	e := &Explorer{cfg: Config{Threads: 2}}
	var executed atomic.Int64
	boom := errors.New("boom")
	err := e.runParallel(bgCtx, 100, func(worker, chunk int) error {
		executed.Add(1)
		if chunk == 0 {
			time.Sleep(5 * time.Millisecond) // let the peer start churning
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := executed.Load(); n > 50 {
		t.Fatalf("executed %d of 100 chunks after a failure; cancellation not propagated", n)
	}
}

// TestRunParallelCompletesWithoutError runs every chunk exactly once.
func TestRunParallelCompletesWithoutError(t *testing.T) {
	e := &Explorer{cfg: Config{Threads: 4}}
	seen := make([]atomic.Int32, 64)
	if err := e.runParallel(bgCtx, 64, func(worker, chunk int) error {
		seen[chunk].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for c := range seen {
		if got := seen[c].Load(); got != 1 {
			t.Fatalf("chunk %d executed %d times", c, got)
		}
	}
}

// TestRunParallelCtxCancel verifies workers stop pulling chunks once the
// context is cancelled and surface ctx.Err().
func TestRunParallelCtxCancel(t *testing.T) {
	e := &Explorer{cfg: Config{Threads: 2}}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	err := e.runParallel(ctx, 100, func(worker, chunk int) error {
		if executed.Add(1) == 3 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n > 50 {
		t.Fatalf("executed %d of 100 chunks after cancellation", n)
	}
}
