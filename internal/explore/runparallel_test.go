package explore

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunParallelCancelsOnError verifies that the first worker error stops
// the other workers from pulling further chunks: the failed workload must
// not run to completion.
func TestRunParallelCancelsOnError(t *testing.T) {
	e := &Explorer{cfg: Config{Threads: 2}}
	var executed atomic.Int64
	boom := errors.New("boom")
	err := e.runParallel(100, func(worker, chunk int) error {
		executed.Add(1)
		if chunk == 0 {
			time.Sleep(5 * time.Millisecond) // let the peer start churning
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := executed.Load(); n > 50 {
		t.Fatalf("executed %d of 100 chunks after a failure; cancellation not propagated", n)
	}
}

// TestRunParallelCompletesWithoutError runs every chunk exactly once.
func TestRunParallelCompletesWithoutError(t *testing.T) {
	e := &Explorer{cfg: Config{Threads: 4}}
	seen := make([]atomic.Int32, 64)
	if err := e.runParallel(64, func(worker, chunk int) error {
		seen[chunk].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for c := range seen {
		if got := seen[c].Load(); got != 1 {
			t.Fatalf("chunk %d executed %d times", c, got)
		}
	}
}
