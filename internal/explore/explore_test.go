package explore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"kaleido/internal/cse"
	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
)

// paperGraph is the 5-vertex running example of Fig. 3 (0-based).
func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	for _, e := range [][2]uint32{{0, 1}, {0, 4}, {1, 4}, {1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// collect gathers all top-level embeddings of an explorer.
func collect(t *testing.T, e *Explorer) [][]uint32 {
	t.Helper()
	var mu sync.Mutex
	var out [][]uint32
	if err := e.ForEach(bgCtx, func(_ int, emb []uint32) error {
		cp := append([]uint32(nil), emb...)
		mu.Lock()
		out = append(out, cp)
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool {
		for x := range out[i] {
			if out[i][x] != out[j][x] {
				return out[i][x] < out[j][x]
			}
		}
		return false
	})
	return out
}

// setKey canonicalizes an embedding as an unordered unit set.
func setKey(emb []uint32) string {
	s := append([]uint32(nil), emb...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return fmt.Sprint(s)
}

// connectedVertexSubsets brute-forces all connected induced k-vertex
// subgraphs of g, keyed by vertex set.
func connectedVertexSubsets(g *graph.Graph, k int) map[string]bool {
	out := map[string]bool{}
	set := make([]uint32, 0, k)
	var rec func(start uint32)
	rec = func(start uint32) {
		if len(set) == k {
			if vertexSetConnected(g, set) {
				out[setKey(set)] = true
			}
			return
		}
		for v := start; v < uint32(g.N()); v++ {
			set = append(set, v)
			rec(v + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return out
}

func vertexSetConnected(g *graph.Graph, set []uint32) bool {
	if len(set) == 0 {
		return false
	}
	seen := map[uint32]bool{set[0]: true}
	queue := []uint32{set[0]}
	in := map[uint32]bool{}
	for _, v := range set {
		in[v] = true
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if in[u] && !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	return len(seen) == len(set)
}

// connectedEdgeSubsets brute-forces all connected k-edge subgraphs, keyed by
// edge-id set.
func connectedEdgeSubsets(g *graph.Graph, k int) map[string]bool {
	out := map[string]bool{}
	set := make([]uint32, 0, k)
	var rec func(start uint32)
	rec = func(start uint32) {
		if len(set) == k {
			if edgeSetConnected(g, set) {
				out[setKey(set)] = true
			}
			return
		}
		for e := start; e < uint32(g.M()); e++ {
			set = append(set, e)
			rec(e + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return out
}

func edgeSetConnected(g *graph.Graph, set []uint32) bool {
	if len(set) == 0 {
		return false
	}
	adj := func(a, b uint32) bool {
		ea, eb := g.EdgeAt(a), g.EdgeAt(b)
		return ea.U == eb.U || ea.U == eb.V || ea.V == eb.U || ea.V == eb.V
	}
	seen := map[uint32]bool{set[0]: true}
	queue := []uint32{set[0]}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		for _, f := range set {
			if !seen[f] && adj(e, f) {
				seen[f] = true
				queue = append(queue, f)
			}
		}
	}
	return len(seen) == len(set)
}

func newVertexExplorer(t *testing.T, g *graph.Graph, threads int) *Explorer {
	t.Helper()
	e, err := New(Config{Graph: g, Mode: VertexInduced, Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := e.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPaperFig3Enumeration(t *testing.T) {
	g := paperGraph(t)
	e := newVertexExplorer(t, g, 1)
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 7 {
		t.Fatalf("2-embeddings = %d, want 7 (paper s6..s12)", e.Count())
	}
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if e.Count() != 8 {
		t.Fatalf("3-embeddings = %d, want 8 (paper s13..s20)", e.Count())
	}
	want := [][]uint32{
		{0, 1, 2}, {0, 1, 4}, {0, 4, 2}, {0, 4, 3},
		{1, 2, 3}, {1, 2, 4}, {1, 4, 3}, {2, 3, 4},
	}
	if got := collect(t, e); !reflect.DeepEqual(got, want) {
		t.Fatalf("3-embeddings = %v\nwant %v", got, want)
	}
}

// TestVertexEnumerationMatchesBruteForce is the central completeness and
// uniqueness property of the canonical filter (Definition 2).
func TestVertexEnumerationMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 4+rng.Intn(9), rng.Intn(25))
		for k := 2; k <= 4; k++ {
			e := newVertexExplorer(t, g, 1+rng.Intn(4))
			for i := 1; i < k; i++ {
				if err := e.Expand(bgCtx, nil, nil); err != nil {
					t.Fatal(err)
				}
			}
			want := connectedVertexSubsets(g, k)
			got := collect(t, e)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d embeddings, brute force %d", trial, k, len(got), len(want))
			}
			seen := map[string]bool{}
			for _, emb := range got {
				key := setKey(emb)
				if seen[key] {
					t.Fatalf("trial %d k=%d: duplicate embedding %v", trial, k, emb)
				}
				seen[key] = true
				if !want[key] {
					t.Fatalf("trial %d k=%d: spurious embedding %v", trial, k, emb)
				}
			}
		}
	}
}

// TestEdgeEnumerationMatchesBruteForce is the edge-induced analogue.
func TestEdgeEnumerationMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 4+rng.Intn(6), rng.Intn(14))
		if g.M() == 0 {
			continue
		}
		for k := 2; k <= 3; k++ {
			e, err := New(Config{Graph: g, Mode: EdgeInduced, Threads: 1 + rng.Intn(4)})
			if err != nil {
				t.Fatal(err)
			}
			if err := e.InitEdges(nil); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < k; i++ {
				if err := e.Expand(bgCtx, nil, nil); err != nil {
					t.Fatal(err)
				}
			}
			want := connectedEdgeSubsets(g, k)
			got := collect(t, e)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d edge embeddings, brute force %d", trial, k, len(got), len(want))
			}
			seen := map[string]bool{}
			for _, emb := range got {
				key := setKey(emb)
				if seen[key] || !want[key] {
					t.Fatalf("trial %d k=%d: bad embedding %v (dup=%v)", trial, k, emb, seen[key])
				}
				seen[key] = true
			}
			e.Close()
		}
	}
}

// TestHybridMatchesInMemory forces every level to disk and checks identical
// results, with prediction both off and on.
func TestHybridMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 20+rng.Intn(20), 60+rng.Intn(60))
		mem := newVertexExplorer(t, g, 3)
		for i := 0; i < 2; i++ {
			if err := mem.Expand(bgCtx, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		wantSets := collect(t, mem)

		for _, predict := range []bool{false, true} {
			hy, err := New(Config{
				Graph: g, Mode: VertexInduced, Threads: 3,
				MemoryBudget: 1, // force every level to disk
				SpillDir:     t.TempDir(),
				Predict:      predict,
				Tracker:      memtrack.New(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := hy.InitVertices(nil); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if err := hy.Expand(bgCtx, nil, nil); err != nil {
					t.Fatal(err)
				}
			}
			if hy.SpilledLevels() != 2 {
				t.Fatalf("trial %d: spilled %d levels, want 2", trial, hy.SpilledLevels())
			}
			got := collect(t, hy)
			if !reflect.DeepEqual(got, wantSets) {
				t.Fatalf("trial %d predict=%v: hybrid results differ (%d vs %d embeddings)",
					trial, predict, len(got), len(wantSets))
			}
			hy.Close()
		}
	}
}

func TestThreadCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 40, 160)
	var want [][]uint32
	for _, threads := range []int{1, 2, 4, 8} {
		e := newVertexExplorer(t, g, threads)
		for i := 0; i < 2; i++ {
			if err := e.Expand(bgCtx, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		got := collect(t, e)
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("threads=%d: results differ", threads)
		}
	}
}

func TestUserFilterClique(t *testing.T) {
	// A clique filter (candidate adjacent to every embedding vertex) over
	// the paper graph: triangles {0,1,4}, {1,2,4}, {2,3,4}.
	g := paperGraph(t)
	e := newVertexExplorer(t, g, 2)
	cliqueFilter := func(_ int, emb []uint32, cand uint32) bool {
		for _, v := range emb {
			if !g.HasEdge(v, cand) {
				return false
			}
		}
		return true
	}
	for i := 0; i < 2; i++ {
		if err := e.Expand(bgCtx, cliqueFilter, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, e)
	want := [][]uint32{{0, 1, 4}, {1, 2, 4}, {2, 3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("3-cliques = %v, want %v", got, want)
	}
}

func TestForEachExpansionMatchesExpand(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 25, 80)
	a := newVertexExplorer(t, g, 3)
	if err := a.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	wantCount := a.Count()

	b := newVertexExplorer(t, g, 3)
	if err := b.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	var n int64
	var mu sync.Mutex
	if err := b.ForEachExpansion(bgCtx, nil, func(_ int, _ []uint32, _ uint32) error {
		mu.Lock()
		n++
		mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if int(n) != wantCount {
		t.Fatalf("ForEachExpansion found %d, Expand materialized %d", n, wantCount)
	}
}

func TestFilterTop(t *testing.T) {
	g := paperGraph(t)
	e := newVertexExplorer(t, g, 2)
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	// Keep only embeddings containing vertex 4.
	if err := e.FilterTop(bgCtx, func(_ int, emb []uint32) bool {
		for _, v := range emb {
			if v == 4 {
				return true
			}
		}
		return false
	}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, e)
	want := [][]uint32{{0, 1, 4}, {0, 4, 2}, {0, 4, 3}, {1, 2, 4}, {1, 4, 3}, {2, 3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered = %v\nwant %v", got, want)
	}
	// The structure must still support further expansion.
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	for _, emb := range collect(t, e) {
		found := false
		for _, v := range emb[:3] {
			if v == 4 {
				found = true
			}
		}
		if !found {
			t.Fatalf("expansion of filtered level produced %v without vertex 4 prefix", emb)
		}
	}
}

func TestFilterTopOnDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 30, 90)
	mem := newVertexExplorer(t, g, 2)
	hyb, err := New(Config{
		Graph: g, Mode: VertexInduced, Threads: 2,
		MemoryBudget: 1, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hyb.Close()
	if err := hyb.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	keep := func(_ int, emb []uint32) bool { return emb[len(emb)-1]%2 == 0 }
	for _, e := range []*Explorer{mem, hyb} {
		for i := 0; i < 2; i++ {
			if err := e.Expand(bgCtx, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.FilterTop(bgCtx, keep); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(collect(t, mem), collect(t, hyb)) {
		t.Fatal("disk FilterTop differs from memory FilterTop")
	}
}

func TestInitEdgesOnVertexModeRejected(t *testing.T) {
	g := paperGraph(t)
	e, err := New(Config{Graph: g, Mode: VertexInduced})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.InitEdges(nil); err == nil {
		t.Fatal("InitEdges accepted on vertex-induced explorer")
	}
	if err := e.Expand(bgCtx, nil, nil); err == nil {
		t.Fatal("Expand accepted before Init")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := paperGraph(t)
	if _, err := New(Config{Graph: g, MemoryBudget: 100}); err == nil {
		t.Fatal("budget without spill dir accepted")
	}
}

func TestSegWorkPerRange(t *testing.T) {
	segs := []cse.PredSeg{{Leaves: 10, Work: 100}, {Leaves: 10, Work: 50}}
	bounds := []int{0, 5, 15, 20}
	got := segWorkPerRange(segs, bounds)
	want := []int{50, 75, 25}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("segWorkPerRange = %v, want %v", got, want)
	}
	// Zero-leaf segments are skipped; ranges beyond the segments get 0.
	got = segWorkPerRange([]cse.PredSeg{{Leaves: 0, Work: 9}, {Leaves: 4, Work: 8}}, []int{0, 4, 10})
	if !reflect.DeepEqual(got, []int{8, 0}) {
		t.Fatalf("segWorkPerRange = %v, want [8 0]", got)
	}
}

// TestPresizedExpandMatches runs prediction-enabled expansion (which
// pre-sizes the builder parts from the recorded segments) against the
// unpredicted explorer and the brute-force reference.
func TestPresizedExpandMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomGraph(rng, 30, 120)
	plain := newVertexExplorer(t, g, 3)
	pred, err := New(Config{Graph: g, Mode: VertexInduced, Threads: 3, Predict: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pred.Close()
	if err := pred.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := plain.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
		if err := pred.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(collect(t, plain), collect(t, pred)) {
			t.Fatalf("depth %d: predicted expansion differs", plain.Depth())
		}
	}
}

func TestPartitionSegs(t *testing.T) {
	in := []cse.PredSeg{{Leaves: 10, Work: 100}, {Leaves: 10, Work: 1}, {Leaves: 10, Work: 1}, {Leaves: 10, Work: 98}}
	bounds := partitionSegs(in, 40, 2)
	if len(bounds) != 3 || bounds[0] != 0 || bounds[2] != 40 {
		t.Fatalf("bounds = %v", bounds)
	}
	// Half the work (100 of 200) is in the first segment.
	if bounds[1] != 10 {
		t.Fatalf("boundary at %d, want 10", bounds[1])
	}
	// Degenerate inputs.
	if b := partitionSegs(nil, 7, 3); b[len(b)-1] != 7 {
		t.Fatalf("nil segs bounds = %v", b)
	}
	if b := partitionEven(0, 4); len(b) != 5 {
		t.Fatalf("empty partition = %v", b)
	}
}
