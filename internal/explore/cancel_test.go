package explore

// Cancellation tests: a cancelled operation must return ctx.Err() promptly,
// leave the explorer's previous levels usable, and leak neither spill files
// nor goroutines — Close reclaims everything.

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"kaleido/internal/memtrack"
)

// dirEntries returns every file under dir (recursively).
func dirEntries(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			out = append(out, path)
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return out
}

// waitGoroutines polls until the goroutine count drops back to at most base
// (with slack for runtime housekeeping) or the deadline passes.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: %d (baseline %d)", runtime.NumGoroutine(), base)
}

// cancelDuringExpand runs one budgeted expansion whose filter cancels the
// context after trips calls, then verifies the cancellation contract.
func cancelDuringExpand(t *testing.T, budget int64, trips int64) {
	baseGoroutines := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(101))
	g := randomGraph(rng, 200, 1200)
	spill := t.TempDir()
	e, err := New(Config{
		Graph: g, Mode: VertexInduced, Threads: 4,
		MemoryBudget: budget, SpillDir: spill,
		BufSize: 256, // tiny write buffers: the queue stays busy mid-cancel
		Tracker: memtrack.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	want := collect(t, e)
	depth, bytes := e.Depth(), e.Bytes()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	filter := func(_ int, _ []uint32, _ uint32) bool {
		if calls.Add(1) == trips {
			cancel()
		}
		return true
	}
	err = e.Expand(ctx, filter, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Expand returned %v, want context.Canceled", err)
	}
	// The partial level is discarded: depth and data are the pre-cancel ones.
	if e.Depth() != depth || e.Bytes() != bytes {
		t.Fatalf("cancel changed the CSE: depth %d->%d bytes %d->%d", depth, e.Depth(), bytes, e.Bytes())
	}
	if got := collect(t, e); !reflect.DeepEqual(got, want) {
		t.Fatal("pre-cancel top level changed")
	}
	// The explorer still works: the same expansion completes uncancelled.
	if err := e.Expand(bgCtx, filter, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if files := dirEntries(t, spill); len(files) != 0 {
		t.Fatalf("spill files leaked after Close: %v", files)
	}
	waitGoroutines(t, baseGoroutines)
}

func TestExpandCancelHybrid(t *testing.T) {
	// Budget sized so expansions spill some parts mid-build: the cancel
	// lands while the write queue holds pending migrations.
	cancelDuringExpand(t, 64<<10, 500)
}

func TestExpandCancelAllDisk(t *testing.T) {
	cancelDuringExpand(t, 1, 500)
}

func TestExpandCancelInMemory(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(103))
	g := randomGraph(rng, 200, 1200)
	e := newVertexExplorer(t, g, 4)
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the expansion must not start
	if err := e.Expand(ctx, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Expand on cancelled ctx returned %v", err)
	}
	if _, err := e.ExpandCount(ctx, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExpandCount on cancelled ctx returned %v", err)
	}
	if err := e.ForEach(ctx, func(int, []uint32) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEach on cancelled ctx returned %v", err)
	}
	if err := e.FilterTop(ctx, func(int, []uint32) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("FilterTop on cancelled ctx returned %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseGoroutines)
}

// TestExpandVisitCancel cancels a terminal (non-storing) expansion from
// inside the visit callback.
func TestExpandVisitCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	g := randomGraph(rng, 150, 900)
	e := newVertexExplorer(t, g, 4)
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var visits atomic.Int64
	err := e.ExpandVisit(ctx, nil, nil, func(int, []uint32, uint32) error {
		if visits.Add(1) == 300 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ExpandVisit returned %v", err)
	}
}

// TestFilterTopPromotesParts drives the post-filter promotion end to end: an
// expansion under a tight budget spills parts, a filter shrinks the level,
// and the freed headroom pulls disk parts back into memory.
func TestFilterTopPromotesParts(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	g := randomGraph(rng, 60, 240)

	ref := newVertexExplorer(t, g, 4)
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	after2 := ref.Bytes()
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	after3 := ref.Bytes()
	// Keep a thin slice of the level so the post-filter footprint fits the
	// watermark with room to spare.
	keep := func(_ int, emb []uint32) bool { return emb[len(emb)-1]%4 == 0 }
	if err := ref.FilterTop(bgCtx, keep); err != nil {
		t.Fatal(err)
	}
	want := collect(t, ref)

	e, err := New(Config{
		Graph: g, Mode: VertexInduced, Threads: 4,
		MemoryBudget: after2 + (after3-after2)/2, SpillDir: t.TempDir(),
		Tracker: memtrack.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := e.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	before := e.LevelStats()[e.Depth()-1]
	if before.DiskParts == 0 {
		t.Fatalf("top level did not spill: %+v", before)
	}
	if err := e.FilterTop(bgCtx, keep); err != nil {
		t.Fatal(err)
	}
	if e.PromotedParts() == 0 {
		t.Fatalf("no parts promoted despite headroom (before: %+v, after: %+v, resident %d of %d)",
			before, e.LevelStats()[e.Depth()-1], e.Bytes(), after2+(after3-after2)/2)
	}
	if e.Bytes() > after2+(after3-after2)/2 {
		t.Fatalf("promotion overshot the budget: %d resident", e.Bytes())
	}
	if got := collect(t, e); !reflect.DeepEqual(got, want) {
		t.Fatalf("promoted level differs: %d vs %d embeddings", len(got), len(want))
	}
	// The promoted structure must survive further exploration.
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, e); !reflect.DeepEqual(got, collect(t, ref)) {
		t.Fatal("expansion after promotion differs")
	}
}

// TestMemKeepParallelStitch pins the segmented parallel stitch against the
// straightforward expectation at keep rates that shape the segments
// differently: keep-all (every boundary a cut — fully parallel), sparse keeps
// (few cuts — mostly sequential), and empty.
func TestMemKeepParallelStitch(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	g := randomGraph(rng, 120, 700)
	for _, tc := range []struct {
		name string
		keep func(emb []uint32) bool
	}{
		{"all", func([]uint32) bool { return true }},
		{"sparse", func(emb []uint32) bool { return emb[len(emb)-1]%13 == 0 }},
		{"half", func(emb []uint32) bool { return emb[len(emb)-1]%2 == 0 }},
		{"none", func([]uint32) bool { return false }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := newVertexExplorer(t, g, 4)
			for i := 0; i < 2; i++ {
				if err := e.Expand(bgCtx, nil, nil); err != nil {
					t.Fatal(err)
				}
			}
			want := map[string]bool{}
			for _, emb := range collect(t, e) {
				if tc.keep(emb) {
					want[setKey(emb)] = true
				}
			}
			if err := e.FilterTop(bgCtx, func(_ int, emb []uint32) bool { return tc.keep(emb) }); err != nil {
				t.Fatal(err)
			}
			got := collect(t, e)
			if len(got) != len(want) {
				t.Fatalf("kept %d embeddings, want %d", len(got), len(want))
			}
			for _, emb := range got {
				if !want[setKey(emb)] {
					t.Fatalf("spurious embedding %v", emb)
				}
			}
		})
	}
}
