package explore

import (
	"math/rand"
	"reflect"
	"testing"

	"kaleido/internal/memtrack"
	"kaleido/internal/storage"
)

// TestPartialSpillBetweenLevelSizes is the acceptance property of the
// per-part hybrid storage: with a memory budget strictly between the CSE
// sizes of two adjacent depths, the last level must come out with both mem-
// and disk-resident parts — not all-or-nothing — and the embeddings must be
// identical to an unbudgeted run.
func TestPartialSpillBetweenLevelSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := randomGraph(rng, 60, 240)

	// Unbudgeted reference: learn the CSE size at each depth.
	ref := newVertexExplorer(t, g, 4)
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	bytesAfter2 := ref.Bytes()
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	bytesAfter3 := ref.Bytes()
	if bytesAfter3 <= bytesAfter2 {
		t.Fatalf("degenerate graph: CSE bytes %d -> %d", bytesAfter2, bytesAfter3)
	}
	want := collect(t, ref)

	// Budget halfway between the two depths' resident sizes: level 3 can
	// only partially stay in memory.
	budget := bytesAfter2 + (bytesAfter3-bytesAfter2)/2
	hy, err := New(Config{
		Graph: g, Mode: VertexInduced, Threads: 4,
		MemoryBudget: budget, SpillDir: t.TempDir(),
		// Raw residency only: the test pins the partial *disk* spill a
		// between-levels budget forces, which resident compression would
		// otherwise absorb in memory.
		ResidentCompression: storage.CompressionOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hy.Close()
	if err := hy.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := hy.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	stats := hy.LevelStats()
	top := stats[len(stats)-1]
	if top.MemParts == 0 || top.DiskParts == 0 {
		t.Fatalf("top level not hybrid: %+v (budget %d between %d and %d)", top, budget, bytesAfter2, bytesAfter3)
	}
	if top.DiskBytes == 0 {
		t.Fatalf("hybrid level reports no disk bytes: %+v", top)
	}
	if hy.SpilledParts() < top.DiskParts {
		t.Fatalf("SpilledParts %d < top level's disk parts %d", hy.SpilledParts(), top.DiskParts)
	}
	if hy.SpilledLevels() == 0 {
		t.Fatal("partial spill not counted in SpilledLevels")
	}
	if hy.Bytes() > budget {
		t.Fatalf("resident CSE %d exceeds budget %d after governed build", hy.Bytes(), budget)
	}
	got := collect(t, hy)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("partial-spill run differs: %d vs %d embeddings", len(got), len(want))
	}
}

// TestPredictSamplingMatchesExact: sampled §4.2 prediction changes only the
// work estimates, never the embeddings, at any sampling budget.
func TestPredictSamplingMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	g := randomGraph(rng, 40, 160)
	run := func(sample int) ([][]uint32, *Explorer) {
		e, err := New(Config{Graph: g, Mode: VertexInduced, Threads: 3, Predict: true, PredictSample: sample})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		if err := e.InitVertices(nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := e.Expand(bgCtx, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		return collect(t, e), e
	}
	exact, ee := run(-1)
	for _, sample := range []int{0, 1, 4} {
		got, ge := run(sample)
		if !reflect.DeepEqual(got, exact) {
			t.Fatalf("sample=%d: embeddings differ from exact prediction", sample)
		}
		if ge.Count() != ee.Count() {
			t.Fatalf("sample=%d: count %d vs exact %d", sample, ge.Count(), ee.Count())
		}
	}
	// Sampled runs must still record work segments for the load balancer.
	_, se := run(2)
	if se.CSE().Top().Predicted() == nil {
		t.Fatal("sampled prediction recorded no segments")
	}
}

// TestPredictSamplingEdgeMode mirrors the sampling equivalence for the
// edge-induced expansion path.
func TestPredictSamplingEdgeMode(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	g := randomGraph(rng, 20, 60)
	run := func(sample int) [][]uint32 {
		e, err := New(Config{Graph: g, Mode: EdgeInduced, Threads: 2, Predict: true, PredictSample: sample})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { e.Close() })
		if err := e.InitEdges(nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if err := e.Expand(bgCtx, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		return collect(t, e)
	}
	exact := run(-1)
	if got := run(1); !reflect.DeepEqual(got, exact) {
		t.Fatal("edge-mode sampled prediction changed the embeddings")
	}
}

// TestTrackerPressureForcesSpill: when tracked memory outside the CSE
// already exceeds the budget, the high-water signal must force the next
// build to spill even though the CSE itself is tiny.
func TestTrackerPressureForcesSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	g := randomGraph(rng, 30, 90)
	tr := memtrack.New()
	e, err := New(Config{
		Graph: g, Mode: VertexInduced, Threads: 2,
		MemoryBudget: 1 << 30, SpillDir: t.TempDir(), Tracker: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	// Simulate a huge external structure (e.g. FSM pattern maps).
	tr.Alloc(2 << 30)
	defer tr.Free(2 << 30)
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if e.SpilledParts() == 0 {
		t.Fatal("external memory pressure did not force spilling")
	}
	stats := e.LevelStats()
	if stats[len(stats)-1].DiskParts == 0 {
		t.Fatal("top level has no disk parts despite pressure")
	}
}

// TestWatermarkConfigValidation rejects watermarks outside [0, 1].
func TestWatermarkConfigValidation(t *testing.T) {
	g := paperGraph(t)
	for _, w := range []float64{-0.1, 1.5} {
		if _, err := New(Config{Graph: g, SpillWatermark: w}); err == nil {
			t.Fatalf("watermark %v accepted", w)
		}
	}
	if _, err := New(Config{Graph: g, SpillWatermark: 0.5, MemoryBudget: 10, SpillDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
}
