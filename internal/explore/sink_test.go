package explore

// Sink conformance tests: the terminal sinks (CountSink, VisitSink) must
// see exactly the embeddings the materializing StoreSink would store, on
// every storage configuration (all-memory, genuinely hybrid, all-disk), and
// a consumed expansion must leave the CSE untouched — no new level, no new
// bytes, no write I/O. The keep sink's in-place FilterTop rewrites are
// checked for both result equivalence and actual in-place-ness.

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"kaleido/internal/cse"
	"kaleido/internal/memtrack"
	"kaleido/internal/storage"
)

// sinkConfig enumerates the storage regimes of the conformance tests.
type sinkConfig struct {
	name   string
	budget func(after2, after3 int64) int64 // 0 = all-mem
}

func sinkConfigs() []sinkConfig {
	return []sinkConfig{
		{name: "mem", budget: func(_, _ int64) int64 { return 0 }},
		{name: "hybrid", budget: func(a2, a3 int64) int64 { return a2 + (a3-a2)/2 }},
		{name: "disk", budget: func(_, _ int64) int64 { return 1 }},
	}
}

func TestExpandCountMatchesExpandAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := randomGraph(rng, 60, 240)

	// Reference: materializing run, also yields the level sizes that place
	// the hybrid budget between depth-2 and depth-3 footprints.
	ref := newVertexExplorer(t, g, 4)
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	after2 := ref.Bytes()
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	after3 := ref.Bytes()
	want := uint64(ref.Count())

	for _, sc := range sinkConfigs() {
		t.Run(sc.name, func(t *testing.T) {
			tr := memtrack.New()
			cfg := Config{Graph: g, Mode: VertexInduced, Threads: 4, Tracker: tr}
			if b := sc.budget(after2, after3); b > 0 {
				cfg.MemoryBudget = b
				cfg.SpillDir = t.TempDir()
			}
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			if err := e.InitVertices(nil); err != nil {
				t.Fatal(err)
			}
			if err := e.Expand(bgCtx, nil, nil); err != nil {
				t.Fatal(err)
			}
			depth := e.Depth()
			bytes := e.Bytes()
			stats := e.LevelStats()
			_, preWrite := tr.IOTotals()

			got, err := e.ExpandCount(bgCtx, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("ExpandCount = %d, Expand materialized %d", got, want)
			}
			// The counted level must not exist in any form: same depth, same
			// resident bytes, same placement, zero write I/O.
			if e.Depth() != depth {
				t.Fatalf("depth changed: %d -> %d", depth, e.Depth())
			}
			if e.Bytes() != bytes {
				t.Fatalf("resident bytes changed: %d -> %d", bytes, e.Bytes())
			}
			if !reflect.DeepEqual(e.LevelStats(), stats) {
				t.Fatalf("level stats changed:\n%+v\n%+v", stats, e.LevelStats())
			}
			if _, w := tr.IOTotals(); w != preWrite {
				t.Fatalf("counted expansion wrote %d bytes", w-preWrite)
			}
		})
	}
}

func TestExpandVisitMatchesExpandEdgeMode(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 12+rng.Intn(10), 20+rng.Intn(30))
		if g.M() == 0 {
			continue
		}
		mk := func() *Explorer {
			e, err := New(Config{Graph: g, Mode: EdgeInduced, Threads: 3})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { e.Close() })
			if err := e.InitEdges(nil); err != nil {
				t.Fatal(err)
			}
			if err := e.Expand(bgCtx, nil, nil); err != nil {
				t.Fatal(err)
			}
			return e
		}
		a := mk()
		if err := a.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
		want := collect(t, a)

		b := mk()
		var mu sync.Mutex
		var got [][]uint32
		err := b.ExpandVisit(bgCtx, nil, nil, func(_ int, emb []uint32, cand uint32) error {
			full := append(append([]uint32(nil), emb...), cand)
			mu.Lock()
			got = append(got, full)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool {
			for x := range got[i] {
				if got[i][x] != got[j][x] {
					return got[i][x] < got[j][x]
				}
			}
			return false
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: edge-mode ExpandVisit %d embeddings, Expand %d", trial, len(got), len(want))
		}
		if b.Depth() != 2 {
			t.Fatalf("ExpandVisit changed depth to %d", b.Depth())
		}
	}
}

// TestFilterTopMemRewritesInPlace pins the keep sink's central property for
// resident levels: the filtered MemLevel keeps its backing arrays — the
// pass compacts, it does not copy.
func TestFilterTopMemRewritesInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g := randomGraph(rng, 40, 160)
	e := newVertexExplorer(t, g, 3)
	for i := 0; i < 2; i++ {
		if err := e.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	top := e.CSE().Top().(*cse.MemLevel)
	beforeVerts := &top.Verts[0]
	beforeOffs := &top.Offs[0]
	beforeLen := top.Len()

	if err := e.FilterTop(bgCtx, func(_ int, emb []uint32) bool { return emb[len(emb)-1]%2 == 0 }); err != nil {
		t.Fatal(err)
	}
	after := e.CSE().Top().(*cse.MemLevel)
	if after != top {
		t.Fatal("FilterTop replaced the MemLevel instead of rewriting it")
	}
	if &after.Verts[0] != beforeVerts || &after.Offs[0] != beforeOffs {
		t.Fatal("FilterTop reallocated the level's arrays")
	}
	if after.Len() >= beforeLen {
		t.Fatalf("nothing filtered: %d -> %d", beforeLen, after.Len())
	}
	if err := after.Validate(); err != nil {
		t.Fatalf("rewritten level invalid: %v", err)
	}
	// The rewritten level must agree with a filter-from-scratch enumeration.
	fresh := newVertexExplorer(t, g, 3)
	for i := 0; i < 2; i++ {
		if err := fresh.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	want := map[string]bool{}
	for _, emb := range collect(t, fresh) {
		if emb[len(emb)-1]%2 == 0 {
			want[setKey(emb)] = true
		}
	}
	got := collect(t, e)
	if len(got) != len(want) {
		t.Fatalf("filtered level has %d embeddings, want %d", len(got), len(want))
	}
	for _, emb := range got {
		if !want[setKey(emb)] {
			t.Fatalf("spurious embedding %v", emb)
		}
	}
}

// TestFilterTopHybridInPlace checks the keep sink on a genuinely hybrid top
// level: identical results to the all-memory pass, memory parts compacted
// where they sit (placement preserved, resident bytes shrink), disk parts
// restreamed (disk bytes shrink, still on disk).
func TestFilterTopHybridInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := randomGraph(rng, 60, 240)

	ref := newVertexExplorer(t, g, 4)
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	after2 := ref.Bytes()
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	after3 := ref.Bytes()
	keep := func(_ int, emb []uint32) bool { return emb[len(emb)-1]%3 != 0 }
	if err := ref.FilterTop(bgCtx, keep); err != nil {
		t.Fatal(err)
	}
	want := collect(t, ref)

	hy, err := New(Config{
		Graph: g, Mode: VertexInduced, Threads: 4,
		MemoryBudget: after2 + (after3-after2)/2, SpillDir: t.TempDir(),
		Tracker: memtrack.New(),
		// Raw residency only: the disk-part bookkeeping below assumes the
		// contrived budget forces real disk parts.
		ResidentCompression: storage.CompressionOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hy.Close()
	if err := hy.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := hy.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	topBefore := hy.LevelStats()[hy.Depth()-1]
	if topBefore.MemParts == 0 || topBefore.DiskParts == 0 {
		t.Fatalf("top level not hybrid: %+v", topBefore)
	}
	lvl := hy.CSE().Top().(*storage.HybridLevel)

	if err := hy.FilterTop(bgCtx, keep); err != nil {
		t.Fatal(err)
	}
	if hy.CSE().Top() != cse.LevelData(lvl) {
		t.Fatal("hybrid FilterTop replaced the level instead of rewriting it")
	}
	topAfter := hy.LevelStats()[hy.Depth()-1]
	// The filter shrinks the level, so the budget may regain headroom and
	// promote restreamed disk parts back to memory — every disk part is
	// either still on disk or accounted for as promoted.
	promoted := hy.PromotedParts()
	if topAfter.DiskParts+promoted != topBefore.DiskParts {
		t.Fatalf("disk parts %d -> %d with %d promoted", topBefore.DiskParts, topAfter.DiskParts, promoted)
	}
	if topAfter.MemParts > topBefore.MemParts+promoted {
		t.Fatalf("mem parts grew beyond promotions: %d -> %d (%d promoted)",
			topBefore.MemParts, topAfter.MemParts, promoted)
	}
	if promoted == 0 && topAfter.ResidentBytes >= topBefore.ResidentBytes {
		t.Fatalf("resident bytes did not shrink: %d -> %d", topBefore.ResidentBytes, topAfter.ResidentBytes)
	}
	if promoted > 0 && hy.Bytes() > after2+(after3-after2)/2 {
		t.Fatalf("promotion overshot the budget: %d resident", hy.Bytes())
	}
	if topAfter.DiskBytes >= topBefore.DiskBytes {
		t.Fatalf("disk bytes did not shrink: %d -> %d", topBefore.DiskBytes, topAfter.DiskBytes)
	}
	if got := collect(t, hy); !reflect.DeepEqual(got, want) {
		t.Fatalf("hybrid in-place FilterTop differs: %d vs %d embeddings", len(got), len(want))
	}
	// The rewritten structure must survive further exploration.
	if err := hy.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, hy); !reflect.DeepEqual(got, collect(t, ref)) {
		t.Fatal("expansion after hybrid in-place FilterTop differs")
	}
}

// TestHybridBuilderPooling drives several expand/pop cycles on one budgeted
// explorer so the pooled HybridLevelBuilder's Reset path is exercised, and
// checks every rebuilt level against the first.
func TestHybridBuilderPooling(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	g := randomGraph(rng, 40, 160)
	e, err := New(Config{
		Graph: g, Mode: VertexInduced, Threads: 3,
		MemoryBudget: 1, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	var want [][]uint32
	for round := 0; round < 3; round++ {
		if err := e.Expand(bgCtx, nil, nil); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := collect(t, e)
		if want == nil {
			want = got
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: rebuilt level differs", round)
		}
		if err := e.PopTop(); err != nil {
			t.Fatal(err)
		}
	}
}
