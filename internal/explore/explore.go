// Package explore drives Kaleido's level-synchronous embedding exploration
// (§4, Listing 1): an Explorer owns the CSE, expands it one level per
// iteration under the fused Definition-2 canonical filter, and parallelizes
// every operation over work-stealing chunks with pooled per-worker scratch.
//
// Expansion is sink-driven: Expand produces a stream of (parent embedding,
// canonical children) pairs and emits it into a pluggable ExpandSink.
// StoreSink materializes the stream as the next CSE level (in memory, or
// part-by-part hybrid under a memory budget); the terminal sinks consume it
// at the frontier instead — CountSink tallies it (ExpandCount), VisitSink
// hands every extension to a per-worker callback (ExpandVisit), so the
// largest level of a counting or aggregating workload is never written
// (§6.5 generalized). FilterTop is the keep-side analogue: resident levels
// are rewritten in place rather than copied through a fresh builder.
package explore

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"kaleido/internal/cse"
	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
	"kaleido/internal/storage"
	"kaleido/internal/storage/vfs"
)

// Mode selects the exploration unit (§1.1: vertex-induced expansion adds one
// vertex per iteration, edge-induced adds one edge).
type Mode int

const (
	// VertexInduced embeddings are vertex sequences.
	VertexInduced Mode = iota
	// EdgeInduced embeddings are edge-id sequences.
	EdgeInduced
)

// VertexFilter is the user-defined EmbeddingFilter of the Kaleido API for
// vertex-induced exploration: may cand be appended to emb? The default
// canonical filter has already passed when it is called. worker identifies
// the calling goroutine (0..Threads-1) so a filter can keep per-worker
// scratch — e.g. a graph.NeighborMarker that marks the embedding's
// neighborhoods once per prefix and answers each candidate probe in O(1)
// instead of per-candidate adjacency searches.
type VertexFilter func(worker int, emb []uint32, cand uint32) bool

// EdgeFilter is the edge-induced EmbeddingFilter: emb holds edge ids, verts
// the sorted vertex set, cand the candidate edge id. worker identifies the
// calling goroutine for per-worker filter scratch.
type EdgeFilter func(worker int, emb []uint32, verts []uint32, cand uint32) bool

// Config configures an Explorer.
type Config struct {
	Graph   *graph.Graph
	Mode    Mode
	Threads int // 0 = GOMAXPROCS

	// MemoryBudget caps the resident bytes of the CSE (hybrid storage,
	// §4.1). Levels are built part by part in memory; when the resident
	// total crosses the spill watermark, the budget governor migrates the
	// largest in-flight parts to SpillDir mid-build, so a single level can
	// end up half in memory and half on disk. 0 means keep everything in
	// memory.
	MemoryBudget int64
	SpillDir     string

	// SpillWatermark is the fraction of MemoryBudget at which mid-build
	// spilling starts (0 = DefaultSpillWatermark). The headroom above the
	// watermark absorbs the growth between governor decisions.
	SpillWatermark float64

	// Predict enables the §4.2 candidate-size prediction: per-chunk work
	// summaries are recorded during expansion and used to cut balanced
	// partitions in the next iteration.
	Predict bool

	// PredictSample bounds the prediction cost: at most this many groups
	// per chunk pay the exact per-child candidate-union count, the rest
	// extrapolate the latest sampled mean. 0 = DefaultPredictSample,
	// negative = predict every group exactly.
	PredictSample int

	BufSize   int // write-queue buffer size (0 = storage.DefaultBufSize)
	BlockSize int // read prefetch block size (0 = storage.DefaultBlockSize)

	// Compression selects the encoding of spilled level parts. The zero
	// value (storage.CompressionAuto) compresses everything that goes to
	// disk; raw memory-resident parts are unaffected.
	Compression storage.Compression

	// ResidentCompression enables the compressed-mem tier for budgeted
	// runs: under pressure the budget governor squeezes the largest raw
	// resident parts into in-memory codec blocks before resorting to disk
	// spill, levels sealed below the walker-stack top are compacted
	// wholesale, and promotions off disk land compressed. The zero value
	// (storage.CompressionAuto) enables it; storage.CompressionOff keeps
	// every resident part raw. Unbudgeted runs never compress residents.
	ResidentCompression storage.Compression

	// FS is the filesystem the spill path goes through. nil means the real
	// one (vfs.OS); tests and fault campaigns inject a vfs.FaultFS here.
	FS vfs.FS

	Tracker *memtrack.Tracker // optional instrumentation
}

// DefaultSpillWatermark is the default fraction of the memory budget at
// which the governor starts migrating parts to disk.
const DefaultSpillWatermark = 0.9

// DefaultPredictSample is the default number of exactly-predicted groups per
// chunk when Config.PredictSample is 0.
const DefaultPredictSample = 128

// Explorer drives iterative embedding exploration over one input graph,
// owning the CSE and its spilled levels.
type Explorer struct {
	cfg           Config
	fs            vfs.FS // resolved cfg.FS (never nil)
	c             *cse.CSE
	queue         *storage.WriteQueue
	runDir        string // per-run spill subdirectory (concurrent runs may share SpillDir)
	levelSeq      int
	spilled       int     // cumulative expansions that migrated ≥ 1 part to disk
	spilledParts  int     // cumulative parts migrated to disk by expansions
	promotedParts int     // cumulative disk parts promoted back to memory
	spilledBytes  int64   // cumulative logical bytes of finished levels' disk parts
	spilledPhys   int64   // cumulative physical (on-disk) bytes of the same parts
	compParts     int     // cumulative raw resident parts squeezed to compressed-mem
	ledger        []int64 // tracker bytes charged per level
	closed        bool

	// pressure is the external back-pressure flag the budget governor
	// consults: set by the tracker's high-water callback when total tracked
	// memory (CSE plus pattern maps and buffers) crosses the budget.
	pressure        atomic.Bool
	cancelHighWater func()

	// scratch[w] is worker w's reusable expansion state, pooled across
	// Expand/ForEach/ForEachExpansion/FilterTop calls so the steady-state
	// per-chunk work allocates nothing.
	scratch []workerScratch
	// memBuilder is the reusable in-memory level builder (exploration ops
	// run one at a time, so a single instance suffices).
	memBuilder *cse.MemLevelBuilder
	// hybridBuilder is the pooled budget-governed builder, re-armed per
	// build so its part-writer slice (and, via the storage part pool, the
	// part buffers) survive across Expand iterations.
	hybridBuilder *storage.HybridLevelBuilder
	// store is the pooled StoreSink behind Expand.
	store StoreSink

	// lastFanout/prevFanout are the measured children-per-embedding of the
	// two most recent expansions — the pre-sizing fallback when no §4.2
	// prediction segments were recorded.
	lastFanout, prevFanout float64
}

// memBuilderFor returns the reusable mem builder re-armed for n parts.
func (e *Explorer) memBuilderFor(n int) *cse.MemLevelBuilder {
	if e.memBuilder == nil {
		e.memBuilder = cse.NewMemLevelBuilder(n)
	} else {
		e.memBuilder.Reset(n)
	}
	return e.memBuilder
}

// workerScratch holds one worker's reusable buffers. Workers are indexed
// 0..Threads-1 by runParallel, so slots are never shared.
type workerScratch struct {
	walker   *cse.Walker
	children []uint32
	preds    []uint32
	vstate   *vertexState
	estate   *edgeState
}

// walkerFor returns the worker's walker positioned over [lo, hi).
func (e *Explorer) walkerFor(worker, lo, hi int) (*cse.Walker, error) {
	sc := &e.scratch[worker]
	if sc.walker == nil {
		w, err := cse.NewWalker(e.c, lo, hi)
		if err != nil {
			return nil, err
		}
		sc.walker = w
		return w, nil
	}
	if err := sc.walker.Reset(e.c, lo, hi); err != nil {
		return nil, err
	}
	return sc.walker, nil
}

// vertexStateFor returns the worker's vertex-induced state sized for depth k.
func (e *Explorer) vertexStateFor(worker, k int) *vertexState {
	sc := &e.scratch[worker]
	if sc.vstate == nil {
		sc.vstate = newVertexState(e.cfg.Graph, k)
	} else {
		sc.vstate.ensureDepth(k)
	}
	return sc.vstate
}

// edgeStateFor returns the worker's edge-induced state sized for depth k.
func (e *Explorer) edgeStateFor(worker, k int) *edgeState {
	sc := &e.scratch[worker]
	if sc.estate == nil {
		sc.estate = newEdgeState(e.cfg.Graph, k)
	} else {
		sc.estate.ensureDepth(k)
	}
	return sc.estate
}

// New creates an Explorer. Call InitVertices or InitEdges before Expand.
func New(cfg Config) (*Explorer, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("explore: nil graph")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	if cfg.MemoryBudget > 0 && cfg.SpillDir == "" {
		return nil, fmt.Errorf("explore: memory budget set but no spill directory")
	}
	if cfg.SpillWatermark < 0 || cfg.SpillWatermark > 1 {
		return nil, fmt.Errorf("explore: spill watermark %v outside [0, 1]", cfg.SpillWatermark)
	}
	e := &Explorer{cfg: cfg, fs: vfs.OrOS(cfg.FS), scratch: make([]workerScratch, cfg.Threads)}
	if cfg.MemoryBudget > 0 {
		// Spill into a private subdirectory: concurrent runs (e.g. vended by
		// one budget-sharing engine) may point at the same SpillDir, and the
		// level files are named only by sequence within a run.
		dir, err := e.fs.MkdirTemp(cfg.SpillDir, "run-")
		if err != nil {
			return nil, fmt.Errorf("explore: spill dir: %w", err)
		}
		e.runDir = dir
	}
	if cfg.Tracker != nil && cfg.MemoryBudget > 0 {
		// Register at the budget scope: with an arbiter-backed tracker the
		// high-water mark is the combined live bytes of every sibling run —
		// including their in-flight builds, which the hybrid builders charge
		// to the tracker as they grow. Firing at the watermark (not the full
		// budget) keeps the headroom above it as slack, so the combined
		// resident bytes stay under the budget itself.
		e.cancelHighWater = cfg.Tracker.OnSharedHighWater(e.watermarkBytes(), func(int64) {
			e.pressure.Store(true)
		})
	}
	return e, nil
}

// watermarkBytes is the absolute spill watermark: the configured fraction of
// the memory budget.
func (e *Explorer) watermarkBytes() int64 {
	w := e.cfg.SpillWatermark
	if w == 0 {
		w = DefaultSpillWatermark
	}
	return int64(w * float64(e.cfg.MemoryBudget))
}

// InitVertices sets level 1 to the graph's vertices (optionally filtered) —
// the Init of vertex-induced applications (§5).
func (e *Explorer) InitVertices(filter func(v uint32) bool) error {
	return e.InitVertexRange(0, uint32(e.cfg.Graph.N()), filter)
}

// InitVertexRange sets level 1 to the vertex ids in [lo, hi) (optionally
// filtered) — the seed-range restricted Init of prefix-range sharded runs.
// Every canonical embedding is rooted at exactly one level-1 unit, so
// explorers seeded with disjoint ranges covering [0, N) together enumerate
// exactly the embeddings of a full run, each exactly once.
func (e *Explorer) InitVertexRange(lo, hi uint32, filter func(v uint32) bool) error {
	if e.cfg.Mode != VertexInduced {
		return fmt.Errorf("explore: InitVertices on edge-induced explorer")
	}
	if n := uint32(e.cfg.Graph.N()); hi > n || lo > hi {
		return fmt.Errorf("explore: vertex seed range [%d, %d) outside [0, %d)", lo, hi, n)
	}
	units := make([]uint32, 0, hi-lo)
	for v := lo; v < hi; v++ {
		if filter == nil || filter(v) {
			units = append(units, v)
		}
	}
	return e.initBase(units)
}

// InitEdges sets level 1 to the graph's edge ids (optionally filtered) — the
// Init of edge-induced applications (§5).
func (e *Explorer) InitEdges(filter func(eid uint32) bool) error {
	return e.InitEdgeRange(0, uint32(e.cfg.Graph.M()), filter)
}

// InitEdgeRange sets level 1 to the edge ids in [lo, hi) (optionally
// filtered) — the edge-induced analogue of InitVertexRange.
func (e *Explorer) InitEdgeRange(lo, hi uint32, filter func(eid uint32) bool) error {
	if e.cfg.Mode != EdgeInduced {
		return fmt.Errorf("explore: InitEdges on vertex-induced explorer")
	}
	if m := uint32(e.cfg.Graph.M()); hi > m || lo > hi {
		return fmt.Errorf("explore: edge seed range [%d, %d) outside [0, %d)", lo, hi, m)
	}
	units := make([]uint32, 0, hi-lo)
	for eid := lo; eid < hi; eid++ {
		if filter == nil || filter(eid) {
			units = append(units, eid)
		}
	}
	return e.initBase(units)
}

func (e *Explorer) initBase(units []uint32) error {
	if e.c != nil {
		return fmt.Errorf("explore: already initialized")
	}
	base := cse.NewBaseLevel(units)
	e.c = cse.New(base)
	e.charge(base.Bytes())
	return nil
}

// charge records a new level's bytes with the tracker.
func (e *Explorer) charge(b int64) {
	e.ledger = append(e.ledger, b)
	if e.cfg.Tracker != nil {
		e.cfg.Tracker.Alloc(b)
	}
}

// uncharge releases the top level's ledger entry.
func (e *Explorer) uncharge() {
	b := e.ledger[len(e.ledger)-1]
	e.ledger = e.ledger[:len(e.ledger)-1]
	if e.cfg.Tracker != nil {
		e.cfg.Tracker.Free(b)
	}
}

// rechargeLevel replaces the ledger entry of level l (1-based) with b,
// adjusting the tracker by the delta. Unlike uncharge/charge this works for
// any resident level, which promotion below the top needs.
func (e *Explorer) rechargeLevel(l int, b int64) {
	old := e.ledger[l-1]
	e.ledger[l-1] = b
	if e.cfg.Tracker != nil {
		e.cfg.Tracker.Free(old)
		e.cfg.Tracker.Alloc(b)
	}
}

// Depth returns the current embedding size.
func (e *Explorer) Depth() int { return e.c.Depth() }

// Count returns the number of embeddings at the top level.
func (e *Explorer) Count() int { return e.c.Top().Len() }

// LevelSizes returns the embedding count of every level.
func (e *Explorer) LevelSizes() []int {
	s := make([]int, e.c.Depth())
	for i := range s {
		s[i] = e.c.Level(i + 1).Len()
	}
	return s
}

// Bytes returns the resident footprint of the CSE.
func (e *Explorer) Bytes() int64 { return e.c.Bytes() }

// SpilledLevels reports how many expansions migrated at least one part to
// disk (cumulative; popped levels keep counting).
func (e *Explorer) SpilledLevels() int { return e.spilled }

// SpilledParts reports how many level parts expansions migrated to disk
// (cumulative). A level under memory pressure typically spills only some of
// its parts, so this exceeds SpilledLevels by the per-level spill fan-out.
func (e *Explorer) SpilledParts() int { return e.spilledParts }

// PromotedParts reports how many disk-resident parts were promoted back to
// memory after an in-place FilterTop or a PopTop left the (shared) budget
// with headroom (cumulative).
func (e *Explorer) PromotedParts() int { return e.promotedParts }

// SpilledBytes reports the logical bytes (raw word size) of the disk parts
// finished levels held when they were built (cumulative; popped levels keep
// counting).
func (e *Explorer) SpilledBytes() int64 { return e.spilledBytes }

// SpilledBytesPhysical reports the bytes those same parts actually occupied
// on disk — equal to SpilledBytes with compression off, smaller with the
// delta+varint encoding on.
func (e *Explorer) SpilledBytesPhysical() int64 { return e.spilledPhys }

// CompressedParts reports how many raw resident parts were squeezed into
// compressed-mem blocks (cumulative): by the build governor under pressure
// and by cold-level compaction after an Expand seals the previous top.
// Parts promoted off disk into the compressed-mem tier are counted by
// PromotedParts, not here.
func (e *Explorer) CompressedParts() int { return e.compParts }

// ResidentBytesLogical reports the raw word footprint the currently
// memory-resident level data stands for — what Bytes would report if every
// compressed-mem part were decompressed. The gap between the two is the
// budget stretch the compressed-resident tier is buying right now.
func (e *Explorer) ResidentBytesLogical() int64 {
	if e.c == nil {
		return 0
	}
	var b int64
	for l := 1; l <= e.c.Depth(); l++ {
		if h, ok := e.c.Level(l).(*storage.HybridLevel); ok {
			b += h.ResidentBytesLogical()
		} else {
			b += e.c.Level(l).Bytes()
		}
	}
	return b
}

// LevelStat describes the storage placement of one live CSE level.
type LevelStat struct {
	Len, Groups int
	MemParts    int // memory-resident parts holding data (raw or compressed)
	// CompressedParts is the compressed-mem subset of MemParts.
	CompressedParts int
	DiskParts       int   // disk-resident parts
	ResidentBytes   int64 // in-memory footprint (arrays + sparse indexes)
	// ResidentBytesLogical is the raw word footprint the resident parts
	// stand for — equal to ResidentBytes when none are compressed.
	ResidentBytesLogical int64
	DiskBytes            int64 // logical on-disk footprint (raw word size)
	// DiskBytesPhysical is the bytes the disk parts actually occupy —
	// smaller than DiskBytes when the spill files are compressed.
	DiskBytesPhysical int64
}

// LevelStats reports the placement of every live level, base level first.
func (e *Explorer) LevelStats() []LevelStat {
	if e.c == nil {
		return nil
	}
	out := make([]LevelStat, e.c.Depth())
	for i := range out {
		l := e.c.Level(i + 1)
		mp, cp, dp, db, dbp, rbl := levelPlacement(l)
		out[i] = LevelStat{
			Len: l.Len(), Groups: l.Groups(),
			MemParts: mp, CompressedParts: cp, DiskParts: dp,
			ResidentBytes: l.Bytes(), ResidentBytesLogical: rbl,
			DiskBytes: db, DiskBytesPhysical: dbp,
		}
	}
	return out
}

// levelPlacement classifies a level's parts by residency.
func levelPlacement(l cse.LevelData) (memParts, compressedParts, diskParts int, diskBytes, diskBytesPhysical, residentLogical int64) {
	switch v := l.(type) {
	case *storage.HybridLevel:
		return v.MemParts(), v.CompressedParts(), v.DiskParts(), v.DiskBytes(), v.DiskBytesPhysical(), v.ResidentBytesLogical()
	case *storage.DiskLevel:
		return 0, 0, v.NumParts(), v.DiskBytes(), v.DiskBytesPhysical(), v.Bytes()
	default:
		return 1, 0, 0, 0, 0, l.Bytes()
	}
}

// promoteTop promotes disk-resident parts of top back to memory while the
// (shared, via the arbiter) budget watermark has headroom. The level's
// resident bytes are already charged, so the headroom is the watermark minus
// everything tracked: the live-byte cap covers external charges (pattern
// maps) that buildBudget's CSE-only base misses, and active pressure vetoes
// promotion outright (the governor is force-spilling; reloading parts would
// fight it). Promotion is gated on the raw resident cost of a part but
// ordered by its physical read cost, so compressed parts promote first.
func (e *Explorer) promoteTop(top *storage.HybridLevel) error {
	return e.promoteLevel(e.c.Depth(), top)
}

// promoteLevel is promoteTop generalized to any resident level l (1-based):
// the only difference is which ledger slot absorbs the grown resident bytes.
func (e *Explorer) promoteLevel(l int, h *storage.HybridLevel) error {
	headroom := e.buildBudget(e.c.Bytes())
	if t := e.cfg.Tracker; t != nil {
		if g := e.watermarkBytes() - t.SharedLive(); g < headroom {
			headroom = g
		}
	}
	if e.pressure.Load() {
		headroom = 0
	}
	if headroom <= 0 {
		return nil
	}
	n, err := h.Promote(headroom)
	if n > 0 {
		e.promotedParts += n
		e.rechargeLevel(l, h.Bytes())
	}
	return err
}

// compactColdLevel compresses the raw resident parts of the level an Expand
// just buried under the new top. Sealed below the walker-stack top, that
// level is henceforth only read through sequential cursors — where block
// decode is nearly free — so with resident compression on it is squeezed
// wholesale and the reclaimed bytes are returned to the shared budget for
// the hotter levels above it.
func (e *Explorer) compactColdLevel() {
	if e.cfg.ResidentCompression == storage.CompressionOff || e.cfg.MemoryBudget <= 0 {
		return
	}
	l := e.c.Depth() - 1
	if l < 1 {
		return
	}
	h, ok := e.c.Level(l).(*storage.HybridLevel)
	if !ok {
		return
	}
	if n, _ := h.CompressResident(); n > 0 {
		e.compParts += n
		e.rechargeLevel(l, h.Bytes())
	}
}

// promoteLevels promotes disk-resident parts of every live hybrid level, top
// level first (its data is the hottest: the next expansion reads it), while
// the shared budget watermark keeps headroom. Each promotion recomputes the
// headroom, so a lower level only reloads what the levels above it left room
// for.
func (e *Explorer) promoteLevels() error {
	for l := e.c.Depth(); l >= 1; l-- {
		h, ok := e.c.Level(l).(*storage.HybridLevel)
		if !ok || (h.DiskParts() == 0 && h.CompressedParts() == 0) {
			continue
		}
		if err := e.promoteLevel(l, h); err != nil {
			return err
		}
	}
	return nil
}

// PopTop discards the top level — releasing its budget charge and deleting
// any spilled files — and returns the CSE to the previous depth. The base
// level cannot be popped. Popping frees budget, so disk-resident parts of
// any still-live level that now fit — the newly exposed top first, then the
// levels below it — are promoted back to memory, exactly as after an
// in-place FilterTop. Uses the pooled per-worker scratch — do not run it
// concurrently with another operation on the same Explorer.
func (e *Explorer) PopTop() error {
	if e.c == nil {
		return fmt.Errorf("explore: not initialized")
	}
	if err := e.c.PopTop(); err != nil {
		return err
	}
	e.uncharge()
	return e.promoteLevels()
}

// CSE exposes the underlying structure (read-only use).
func (e *Explorer) CSE() *cse.CSE { return e.c }

// Close releases the CSE (removing spilled files) and stops the write queue.
// Close is idempotent.
func (e *Explorer) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	var first error
	if e.cancelHighWater != nil {
		e.cancelHighWater()
		e.cancelHighWater = nil
	}
	if e.c != nil {
		if err := e.c.Close(); err != nil {
			first = err
		}
		for len(e.ledger) > 0 {
			e.uncharge()
		}
	}
	if e.queue != nil {
		if err := e.queue.Close(); err != nil && first == nil {
			first = err
		}
	}
	if e.runDir != "" {
		// Belt and braces: the levels and builders remove their own files;
		// the run directory itself (and anything a crashed rewrite left
		// behind) goes with it.
		if err := e.fs.RemoveAll(e.runDir); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Expand runs one exploration iteration, deriving level k+1 from level k
// under the default canonical filter plus the optional user filter (vf for
// vertex-induced mode, ef for edge-induced mode; pass the one matching the
// explorer's mode, nil for none). It is ExpandTo with the pooled StoreSink;
// see ExpandCount and ExpandVisit for the terminal sinks that skip the
// materialization.
//
// ctx cancels the iteration: workers poll it between chunks and every few
// walker runs, pending spill writes are discarded (the one in flight
// drains), the partial level is removed, and ctx.Err() is returned. A
// cancelled explorer keeps its pre-expansion levels and may still be Closed
// (reclaiming every spilled file) or driven further.
//
// Exploration operations (Expand and its sink variants, ForEach,
// ForEachExpansion, FilterTop) share the explorer's pooled per-worker
// scratch: they parallelize internally, but at most one of them may run on
// an Explorer at a time.
func (e *Explorer) Expand(ctx context.Context, vf VertexFilter, ef EdgeFilter) error {
	return e.ExpandTo(ctx, &e.store, vf, ef)
}

// partReserver is the pre-sizing hook shared by the memory and hybrid level
// builders.
type partReserver interface {
	ReservePart(i, verts, groups int)
}

// levelBuilderFor picks the builder of a new level. Without a memory budget
// the pooled in-memory builder is used; with one, the level is built
// part-granular by a HybridLevelBuilder whose governor watermark is the
// budget share left after the resident levels (baseBytes). The up-front
// mem-vs-disk projection of earlier versions is gone: placement is decided
// per part, during the build.
func (e *Explorer) levelBuilderFor(top cse.LevelData, bounds []int, baseBytes int64) (cse.LevelBuilder, error) {
	nparts := len(bounds) - 1
	if e.cfg.MemoryBudget <= 0 || e.cfg.SpillDir == "" {
		b := e.memBuilderFor(nparts)
		e.presizeParts(top, bounds, b)
		return b, nil
	}
	hb, err := e.hybridBuilderFor(nparts, baseBytes)
	if err != nil {
		return nil, err
	}
	e.presizeParts(top, bounds, hb)
	return hb, nil
}

// hybridBuilderFor re-arms the pooled budget-governed hybrid builder for
// nparts parts, where baseBytes of the budget are already held by levels
// that will remain resident alongside the new one. The builder (and, via
// the storage part-buffer pool, the buffers of parts whose levels have been
// popped or filtered) is reused across Expand iterations instead of being
// allocated per level.
func (e *Explorer) hybridBuilderFor(nparts int, baseBytes int64) (*storage.HybridLevelBuilder, error) {
	if e.queue == nil {
		e.queue = storage.NewWriteQueue(e.cfg.BufSize, e.cfg.Tracker)
	}
	// Refresh external pressure: tracked memory may already exceed the
	// watermark before this build starts (pattern maps, earlier levels —
	// and, under a shared arbiter, the sibling runs' data).
	e.pressure.Store(e.cfg.Tracker != nil && e.cfg.Tracker.SharedLive() >= e.watermarkBytes())
	budget := e.buildBudget(baseBytes)
	if e.hybridBuilder == nil {
		hb, err := storage.NewHybridLevelBuilder(
			e.fs, e.runDir, e.levelSeq, nparts, e.queue, e.cfg.BlockSize, e.cfg.Tracker,
			budget, &e.pressure, e.watermarkBytes(), e.cfg.Compression,
			e.cfg.ResidentCompression)
		if err != nil {
			return nil, err
		}
		e.hybridBuilder = hb
	} else {
		e.hybridBuilder.Reset(e.levelSeq, nparts, budget)
	}
	e.levelSeq++
	return e.hybridBuilder, nil
}

// buildBudget returns the governor watermark for a new level build: the
// watermark fraction of the memory budget, minus the bytes the resident
// levels already hold and minus the bytes the sibling runs of a shared
// arbiter hold (the watermark is a cross-run property: N runs charging one
// pool must together stay under one budget). Negative means nothing fits —
// every part goes straight to disk.
func (e *Explorer) buildBudget(baseBytes int64) int64 {
	w := e.cfg.SpillWatermark
	if w == 0 {
		w = DefaultSpillWatermark
	}
	return int64(w*float64(e.cfg.MemoryBudget)) - baseBytes - e.foreignLive()
}

// foreignLive returns the tracked live bytes held by the sibling runs of a
// shared budget arbiter (zero for a standalone tracker or none at all).
func (e *Explorer) foreignLive() int64 {
	t := e.cfg.Tracker
	if t == nil {
		return 0
	}
	if f := t.SharedLive() - t.Live(); f > 0 {
		return f
	}
	return 0
}

// presizeParts reserves the builder's per-part buffers before expansion
// begins. With §4.2 prediction segments the per-chunk candidate totals are
// known (an upper bound on children — the canonical filter only removes);
// without them the fan-out trend of the previous iterations is extrapolated.
// Either way the cold-start append-doubling of large level buffers (~170 MB
// of transient growth on the vertex-d4 benchmark) collapses into one
// allocation per part. The hybrid builder additionally caps reserves at its
// governor watermark, since reserved capacity is real resident memory.
func (e *Explorer) presizeParts(top cse.LevelData, bounds []int, r partReserver) {
	n := top.Len()
	if n == 0 {
		return
	}
	if segs := top.Predicted(); len(segs) > 0 {
		works := segWorkPerRange(segs, bounds)
		for i, w := range works {
			r.ReservePart(i, w, bounds[i+1]-bounds[i])
		}
		// Prediction totals bound the level size — exactly with
		// PredictSample < 0 (candidate counts only shrink under the
		// canonical filter), approximately under the sampled default (mean
		// extrapolation can undershoot) — so the builder may stream its
		// final assembly against them: an undershoot merely stops the
		// streamed verts at the reserve and falls back to the exact
		// allocation at Finish. The fan-out guess below is pure
		// extrapolation and gets no such promise.
		if tr, ok := r.(interface{ TrustReserve() }); ok {
			tr.TrustReserve()
		}
		return
	}
	if e.lastFanout <= 0 {
		return
	}
	// Fan-out typically grows with depth; extrapolate the last growth
	// ratio, capped — an early sparse level can make the ratio explode and
	// this path is a guess, unlike the prediction segments above.
	f := e.lastFanout
	if e.prevFanout > 0 && e.prevFanout < f {
		g := f / e.prevFanout
		if g > 3 {
			g = 3
		}
		f *= g
	}
	for i := 0; i+1 < len(bounds); i++ {
		leaves := bounds[i+1] - bounds[i]
		r.ReservePart(i, int(float64(leaves)*f), leaves)
	}
}

// segWorkPerRange distributes the segments' predicted work over the leaf
// ranges [bounds[i], bounds[i+1]), splitting segments that straddle a cut
// proportionally.
func segWorkPerRange(segs []cse.PredSeg, bounds []int) []int {
	out := make([]int, len(bounds)-1)
	leaf := 0
	ci := 0
	for _, s := range segs {
		if s.Leaves == 0 {
			continue
		}
		start, end := leaf, leaf+int(s.Leaves)
		leaf = end
		for ci < len(out) && start < end {
			rEnd := bounds[ci+1]
			ov := min(end, rEnd) - start
			if ov > 0 {
				out[ci] += int(uint64(ov) * s.Work / uint64(s.Leaves))
				start += ov
			}
			if start >= rEnd {
				ci++
			} else {
				break
			}
		}
	}
	return out
}

// pollEvery is how many walker runs an exploration loop processes between
// context polls: coarse enough that the ctx check never shows up in the hot
// path, fine enough that a cancelled run stops well within one chunk.
const pollEvery = 256

// ctxErr polls a context that may be nil (internal callers without
// cancellation).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// expandRange expands top-level embeddings [lo, hi) into sink chunk, using
// worker's pooled scratch.
func (e *Explorer) expandRange(ctx context.Context, k, lo, hi, worker, chunk int, sink ExpandSink, predicting bool, vf VertexFilter, ef EdgeFilter) error {
	w, err := e.walkerFor(worker, lo, hi)
	if err != nil {
		return err
	}
	defer w.Close()

	sc := &e.scratch[worker]
	children := sc.children[:0]
	preds := sc.preds[:0]
	defer func() { sc.children, sc.preds = children, preds }()

	// Both modes run the fused fast path: per run, refresh the shared prefix
	// once; per leaf, consume cands[k-2] ∪ N(leaf) as it is merged — the
	// leaf-level candidate set is never materialized. When the §4.2
	// prediction is on (storing sinks only; a consumed expansion has no next
	// level to balance), only every stride-th group pays the exact per-child
	// candidate-union count (which needs the materialized level-k candidate
	// set, refreshLevel); the groups in between reuse the latest sampled
	// per-child mean, bounding prediction cost to PredictSample groups per
	// chunk instead of every embedding.
	ps := predSampler{
		stride: e.predictStride(hi - lo),
		mean:   uint32(e.cfg.Graph.AvgDegree()) + 1,
	}

	runs := 0
	if e.cfg.Mode == VertexInduced {
		st := e.vertexStateFor(worker, k)
		for {
			emb, from, leaves, ok := w.NextRun()
			if !ok {
				break
			}
			if runs++; runs%pollEvery == 0 {
				if err := ctxErr(ctx); err != nil {
					return err
				}
			}
			if from < k {
				st.updatePrefix(emb, from, k)
			}
			for _, u := range leaves {
				emb[k-1] = u
				children = st.appendCanonical(k, u, emb, worker, vf, children[:0])
				var pr []uint32
				if predicting {
					preds = ps.groupPreds(st, k, emb, children, preds)
					pr = preds
				}
				if err := sink.emit(worker, chunk, emb, children, pr); err != nil {
					return err
				}
			}
		}
		return w.Err()
	}
	st := e.edgeStateFor(worker, k)
	for {
		emb, from, leaves, ok := w.NextRun()
		if !ok {
			break
		}
		if runs++; runs%pollEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		if from < k {
			st.updatePrefix(emb, from, k)
		}
		for _, f := range leaves {
			emb[k-1] = f
			children = st.appendCanonical(k, f, emb, worker, ef, children[:0])
			var pr []uint32
			if predicting {
				preds = ps.groupPreds(st, k, emb, children, preds)
				pr = preds
			}
			if err := sink.emit(worker, chunk, emb, children, pr); err != nil {
				return err
			}
		}
	}
	return w.Err()
}

// predictor is the slice of worker state the sampled §4.2 prediction needs:
// materialize the level-k candidate set of the current leaf, then price each
// child against it. Both vertexState and edgeState implement it.
type predictor interface {
	refreshLevel(emb []uint32, l int)
	predict(k int, u uint32) int
}

// predSampler applies the PredictSample policy over one chunk: every
// stride-th group is priced exactly (refreshLevel + per-child predict), the
// groups in between reuse the latest sampled per-child mean.
type predSampler struct {
	stride, gi int
	mean       uint32
}

// groupPreds returns the per-child predicted sizes of the current group,
// reusing buf.
func (s *predSampler) groupPreds(st predictor, k int, emb []uint32, children, buf []uint32) []uint32 {
	buf = buf[:0]
	if s.gi%s.stride == 0 && len(children) > 0 {
		st.refreshLevel(emb, k)
		var sum uint64
		for _, c := range children {
			p := clamp32(st.predict(k, c))
			buf = append(buf, p)
			sum += uint64(p)
		}
		s.mean = uint32(sum / uint64(len(children)))
	} else {
		for range children {
			buf = append(buf, s.mean)
		}
	}
	s.gi++
	return buf
}

// predictStride converts the PredictSample budget (exactly-predicted groups
// per chunk) into a sampling stride over a chunk of the given group count.
func (e *Explorer) predictStride(groups int) int {
	s := e.cfg.PredictSample
	if s < 0 {
		return 1 // exact prediction for every group
	}
	if s == 0 {
		s = DefaultPredictSample
	}
	stride := groups / s
	if stride < 1 {
		stride = 1
	}
	return stride
}

func clamp32(v int) uint32 {
	if v < 0 {
		return 0
	}
	if v > 1<<31 {
		return 1 << 31
	}
	return uint32(v)
}

// ForEach walks all top-level embeddings in parallel. visit receives the
// worker index (0..Threads-1) for worker-local aggregation state and a
// reused embedding buffer it must not retain. ctx cancels the walk between
// chunks and every few runs. Like all exploration operations it uses the
// pooled per-worker scratch — do not run it concurrently with another
// operation on the same Explorer.
func (e *Explorer) ForEach(ctx context.Context, visit func(worker int, emb []uint32) error) error {
	k := e.c.Depth()
	top := e.c.Top()
	bounds := e.partition(top, e.chunks(top.Len()))
	return e.runParallel(ctx, len(bounds)-1, func(worker, chunk int) error {
		w, err := e.walkerFor(worker, bounds[chunk], bounds[chunk+1])
		if err != nil {
			return err
		}
		defer w.Close()
		runs := 0
		for {
			emb, _, leaves, ok := w.NextRun()
			if !ok {
				break
			}
			if runs++; runs%pollEvery == 0 {
				if err := ctxErr(ctx); err != nil {
					return err
				}
			}
			for _, u := range leaves {
				emb[k-1] = u
				if err := visit(worker, emb); err != nil {
					return err
				}
			}
		}
		return w.Err()
	})
}

// ForEachExpansion enumerates, for every top-level embedding, its canonical
// filtered candidate extensions without materializing a new level — the
// exploration step motif counting's Mapper performs (§5.1). It is a
// vertex-induced wrapper over ExpandVisit, the sink primitive that serves
// both modes. Uses the pooled per-worker scratch — do not run it
// concurrently with another operation on the same Explorer.
func (e *Explorer) ForEachExpansion(ctx context.Context, vf VertexFilter, visit func(worker int, emb []uint32, cand uint32) error) error {
	if e.cfg.Mode != VertexInduced {
		return fmt.Errorf("explore: ForEachExpansion requires vertex-induced mode")
	}
	return e.ExpandVisit(ctx, vf, nil, visit)
}

// buildChunks picks the chunk (= builder part) count of a level build.
// In-memory builds keep the fine work-stealing chunking — parts are pooled
// slices, so they are nearly free. Budgeted builds pay real fixed costs per
// part (files, write buffers, governor bookkeeping), so they use two parts
// per thread — enough placement granularity for a meaningful mem/disk split
// — and the all-disk regime (budget exhausted before the build starts)
// falls back to one part per thread like the classic DiskLevel layout.
func (e *Explorer) buildChunks(n int, baseBytes int64) int {
	if e.cfg.MemoryBudget > 0 && e.cfg.SpillDir != "" {
		t := e.cfg.Threads
		if e.buildBudget(baseBytes) > 0 {
			t *= 2
		}
		if n < t {
			t = n
		}
		if t < 1 {
			t = 1
		}
		return t
	}
	return e.chunks(n)
}

// chunks picks the work-stealing chunk count for in-memory parallel walks.
func (e *Explorer) chunks(n int) int {
	c := e.cfg.Threads * 8
	if n < c {
		c = n
	}
	if c < 1 {
		c = 1
	}
	return c
}

// partition cuts the top level into p contiguous ranges, weighted by the
// §4.2 predicted candidate sizes when available.
func (e *Explorer) partition(top cse.LevelData, p int) []int {
	n := top.Len()
	if e.cfg.Predict {
		if segs := top.Predicted(); segs != nil {
			return partitionSegs(segs, n, p)
		}
	}
	return partitionEven(n, p)
}

// partitionEven splits [0, n) into p near-equal ranges.
func partitionEven(n, p int) []int {
	if p < 1 {
		p = 1
	}
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = n * i / p
	}
	return bounds
}

// partitionSegs splits [0, n) into p ranges of near-equal predicted work,
// cutting only at segment boundaries.
func partitionSegs(segs []cse.PredSeg, n, p int) []int {
	if p < 1 {
		p = 1
	}
	var total uint64
	for _, s := range segs {
		total += s.Work
	}
	if total == 0 {
		return partitionEven(n, p)
	}
	bounds := make([]int, 0, p+1)
	bounds = append(bounds, 0)
	var cum uint64
	leaf := 0
	next := 1
	for _, s := range segs {
		cum += s.Work
		leaf += int(s.Leaves)
		for next < p && cum >= total*uint64(next)/uint64(p) {
			bounds = append(bounds, leaf)
			next++
		}
	}
	for len(bounds) < p {
		bounds = append(bounds, leaf)
	}
	bounds = append(bounds, n)
	// Monotonicity guard: segments may end short of n if prediction was
	// recorded for a filtered level; clamp.
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			bounds[i] = bounds[i-1]
		}
		if bounds[i] > n {
			bounds[i] = n
		}
	}
	return bounds
}

// runParallel executes fn for every chunk index, with Threads goroutines
// pulling chunks from a shared counter (the work-steal strategy of §4.2).
// The first error flips an atomic cancel flag so the remaining workers stop
// pulling chunks instead of running the rest of the workload. Workers poll
// ctx before every chunk pull and abort with ctx.Err() once it is done, so a
// cancelled operation stops within one chunk's work (plus the finer-grained
// polls the chunk bodies run themselves).
//
// A panicking chunk (a user callback, or a bug in a walker) is recovered
// into an error instead of crashing the process: the operation fails like
// any other error, the caller's abort path reclaims the partial output, and
// sibling runs sharing the engine stay unaffected.
func (e *Explorer) runParallel(ctx context.Context, nchunks int, fn func(worker, chunk int) error) error {
	threads := e.cfg.Threads
	if threads > nchunks {
		threads = nchunks
	}
	if threads < 1 {
		threads = 1
	}
	var next atomic.Int64
	var cancel atomic.Bool
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("explore: worker %d panic: %v\n%s", w, r, debug.Stack())
					cancel.Store(true)
				}
			}()
			for !cancel.Load() {
				if err := ctxErr(ctx); err != nil {
					errs[w] = err
					cancel.Store(true)
					return
				}
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				if err := fn(w, c); err != nil {
					errs[w] = err
					cancel.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// abortOp tears down a failed or cancelled exploration operation in the
// order cancellation demands: pending write-queue buffers are discarded
// first (the write in flight drains), then abort closes and removes the
// partial output's files — so no late write lands on a closed file — and the
// queue is re-armed for the next operation.
func (e *Explorer) abortOp(abort func()) {
	if e.queue != nil {
		e.queue.Abort()
		// Drain: discarded jobs only recycle their buffers. The error state
		// is irrelevant here — the operation already failed.
		_ = e.queue.Barrier()
	}
	abort()
	if e.queue != nil {
		_ = e.queue.Reset()
	}
}
