package explore

import "kaleido/internal/graph"

// candBuf is a struct-of-arrays candidate buffer: the sorted candidate ids
// plus, per candidate, its provenance — the earliest embedding position
// (0-based) adjacent to it. Provenance falls out of the candidate-set merge
// for free (mergeUnionProv) and is what fuses the Definition-2 canonical
// filter into the merge: properties (ii) and (iii) collapse to two integer
// comparisons per candidate (see canonical in this file), eliminating the
// per-candidate HasEdge scans of the reference CanonicalVertex/CanonicalEdge.
type candBuf struct {
	ids      []uint32
	firstAdj []uint16
}

// setAll fills the buffer with ids, all carrying provenance pos.
func (c *candBuf) setAll(ids []uint32, pos uint16) {
	c.ids = append(c.ids[:0], ids...)
	fa := c.firstAdj[:0]
	for range ids {
		fa = append(fa, pos)
	}
	c.firstAdj = fa
}

// copyFrom replaces the buffer contents with o's.
func (c *candBuf) copyFrom(o *candBuf) {
	c.ids = append(c.ids[:0], o.ids...)
	c.firstAdj = append(c.firstAdj[:0], o.firstAdj...)
}

// vertexState maintains the per-level candidate sets of a vertex-induced
// walk: cands[l-1] = N(v1) ∪ … ∪ N(vl), the Fig. 8 structure that lets the
// candidate set of an extended embedding be computed by one O(d̄) merge with
// the new vertex's neighbor list. Alongside each candidate it tracks the
// earliest adjacent embedding position, and per embedding the suffix maxima
// of the unit sequence, which together make the canonical filter O(1) per
// candidate.
type vertexState struct {
	g     *graph.Graph
	cands []candBuf
	// sufMax[i] = max(emb[i:]) for the embedding of the last update call,
	// with sentinel sufMax[len(emb)] = 0.
	sufMax []uint32
}

func newVertexState(g *graph.Graph, depth int) *vertexState {
	s := &vertexState{g: g}
	s.ensureDepth(depth)
	return s
}

// ensureDepth grows the per-level buffers to hold depth levels, so one state
// can be reused across exploration iterations of increasing depth.
func (s *vertexState) ensureDepth(depth int) {
	for len(s.cands) < depth {
		s.cands = append(s.cands, candBuf{ids: make([]uint32, 0, 64), firstAdj: make([]uint16, 0, 64)})
	}
	if cap(s.sufMax) < depth+1 {
		s.sufMax = make([]uint32, depth+1)
	}
}

// update refreshes candidate sets for levels from..len(emb) after the walker
// reported that emb changed at level from (1-based), and recomputes the
// suffix maxima of emb.
func (s *vertexState) update(emb []uint32, from int) {
	k := len(emb)
	for l := from; l <= k; l++ {
		nb := s.g.Neighbors(emb[l-1])
		if l == 1 {
			s.cands[0].setAll(nb, 0)
			continue
		}
		mergeUnionProv(&s.cands[l-1], &s.cands[l-2], nb, uint16(l-1))
	}
	s.sufMax = s.sufMax[:k+1]
	s.sufMax[k] = 0
	for i := k - 1; i >= 0; i-- {
		s.sufMax[i] = max32(emb[i], s.sufMax[i+1])
	}
}

// candidates returns the candidate set of the full embedding (neighbors of
// any embedding vertex, including embedding vertices themselves — callers
// filter those via canonical).
func (s *vertexState) candidates(k int) *candBuf { return &s.cands[k-1] }

// canonical is the fused Definition-2 filter: may candidate i of the depth-k
// candidate set extend the embedding of the last update call canonically?
// With a = firstAdj[i] (property (ii)'s attachment position, known from the
// merge), the three properties reduce to
//
//	(i)   cand > emb[0], and
//	(iii) cand > max(emb[a+1:]) = sufMax[a+1].
//
// Duplicates need no explicit check: every stored embedding is connected in
// order (each emb[j], j ≥ 1, neighbors an earlier position), so a duplicate
// cand = emb[j] has a < j — emb[j] then sits after the attachment position
// and (iii) rejects it via cand > sufMax[a+1] being false (j = 0 falls to
// property (i)). This is the incremental CanonicalVertex/CanonicalEdge
// semantics at O(1) instead of O(k·log d̄) per candidate; the differential
// tests verify the equivalence embedding-for-embedding.
func (s *vertexState) canonical(k, i int, emb0 uint32) bool {
	c := &s.cands[k-1]
	u := c.ids[i]
	return u > emb0 && u > s.sufMax[int(c.firstAdj[i])+1]
}

// predict returns the §4.2 prediction of the candidate-set size of the
// embedding extended with vertex v: |cands ∪ N(v)|.
func (s *vertexState) predict(k int, v uint32) int {
	return mergeUnionCount(s.cands[k-1].ids, s.g.Neighbors(v))
}

// edgeState is the edge-induced analogue: verts[l-1] is the sorted vertex
// set of the first l edges; cands[l-1] holds the incident edge ids with the
// earliest adjacent position of each.
type edgeState struct {
	g      *graph.Graph
	verts  [][]uint32
	cands  []candBuf
	tmp    []uint32
	sufMax []uint32
}

func newEdgeState(g *graph.Graph, depth int) *edgeState {
	s := &edgeState{g: g, tmp: make([]uint32, 0, 64)}
	s.ensureDepth(depth)
	return s
}

// ensureDepth grows the per-level buffers to hold depth levels.
func (s *edgeState) ensureDepth(depth int) {
	for len(s.cands) < depth {
		s.verts = append(s.verts, make([]uint32, 0, depth+1))
		s.cands = append(s.cands, candBuf{ids: make([]uint32, 0, 64), firstAdj: make([]uint16, 0, 64)})
	}
	if cap(s.sufMax) < depth+1 {
		s.sufMax = make([]uint32, depth+1)
	}
}

// update refreshes vertex sets and candidate edge sets for levels
// from..len(emb), and the suffix maxima of emb; emb holds edge ids.
//
// Provenance invariant: a candidate edge already in cands[l-2] shares an
// endpoint with an embedding edge at some position ≤ l-2, so its earliest
// adjacency is unchanged by the new edge; a candidate entering through the
// new endpoints' incident lists is adjacent first at position l-1 — were it
// adjacent to an earlier edge, it would be incident to an earlier vertex and
// hence already in cands[l-2].
func (s *edgeState) update(emb []uint32, from int) {
	k := len(emb)
	for l := from; l <= k; l++ {
		e := s.g.EdgeAt(emb[l-1])
		if l == 1 {
			s.verts[0] = append(s.verts[0][:0], e.U, e.V) // E.U < E.V by construction
			s.tmp = mergeUnion(s.tmp, s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
			s.cands[0].setAll(s.tmp, 0)
			continue
		}
		prev := s.verts[l-2]
		vl := append(s.verts[l-1][:0], prev...)
		newU := !containsSorted(prev, e.U)
		newV := !containsSorted(prev, e.V)
		if newU {
			vl = insertSorted(vl, e.U)
		}
		if newV {
			vl = insertSorted(vl, e.V)
		}
		s.verts[l-1] = vl
		pos := uint16(l - 1)
		switch {
		case newU && newV:
			s.tmp = mergeUnion(s.tmp, s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
			mergeUnionProv(&s.cands[l-1], &s.cands[l-2], s.tmp, pos)
		case newU:
			mergeUnionProv(&s.cands[l-1], &s.cands[l-2], s.g.IncidentEdges(e.U), pos)
		case newV:
			mergeUnionProv(&s.cands[l-1], &s.cands[l-2], s.g.IncidentEdges(e.V), pos)
		default:
			s.cands[l-1].copyFrom(&s.cands[l-2])
		}
	}
	s.sufMax = s.sufMax[:k+1]
	s.sufMax[k] = 0
	for i := k - 1; i >= 0; i-- {
		s.sufMax[i] = max32(emb[i], s.sufMax[i+1])
	}
}

// candidates returns the candidate edge ids of the full embedding.
func (s *edgeState) candidates(k int) *candBuf { return &s.cands[k-1] }

// canonical is the fused Definition-2 filter for edge-induced mode; see
// vertexState.canonical — the same two comparisons over edge ids (adjacency
// is endpoint sharing, and every stored embedding is connected in order).
func (s *edgeState) canonical(k, i int, emb0 uint32) bool {
	c := &s.cands[k-1]
	f := c.ids[i]
	return f > emb0 && f > s.sufMax[int(c.firstAdj[i])+1]
}

// vertices returns the sorted vertex set of the full embedding.
func (s *edgeState) vertices(k int) []uint32 { return s.verts[k-1] }

// predict estimates the candidate-set size after appending edge id f.
func (s *edgeState) predict(k int, f uint32) int {
	e := s.g.EdgeAt(f)
	vk := s.verts[k-1]
	newU := !containsSorted(vk, e.U)
	newV := !containsSorted(vk, e.V)
	switch {
	case newU && newV:
		s.tmp = mergeUnion(s.tmp, s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
		return mergeUnionCount(s.cands[k-1].ids, s.tmp)
	case newU:
		return mergeUnionCount(s.cands[k-1].ids, s.g.IncidentEdges(e.U))
	case newV:
		return mergeUnionCount(s.cands[k-1].ids, s.g.IncidentEdges(e.V))
	default:
		return len(s.cands[k-1].ids)
	}
}

// newVertexCount returns how many endpoints of edge f are outside the
// current vertex set — used by vertex-budget filters (k-FSM's "at most k
// vertices" constraint).
func (s *edgeState) newVertexCount(k int, f uint32) int {
	e := s.g.EdgeAt(f)
	n := 0
	if !containsSorted(s.verts[k-1], e.U) {
		n++
	}
	if !containsSorted(s.verts[k-1], e.V) {
		n++
	}
	return n
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
