package explore

import "kaleido/internal/graph"

// candBuf is a struct-of-arrays candidate buffer: the sorted candidate ids
// plus, per candidate, its provenance — the earliest embedding position
// (0-based) adjacent to it. Provenance falls out of the candidate-set merge
// for free (mergeUnionProv) and is what fuses the Definition-2 canonical
// filter into the merge: properties (ii) and (iii) collapse to two integer
// comparisons per candidate (see canonical in this file), eliminating the
// per-candidate HasEdge scans of the reference CanonicalVertex/CanonicalEdge.
type candBuf struct {
	ids      []uint32
	firstAdj []uint16
}

// setAll fills the buffer with ids, all carrying provenance pos.
func (c *candBuf) setAll(ids []uint32, pos uint16) {
	c.ids = append(c.ids[:0], ids...)
	fa := c.firstAdj[:0]
	for range ids {
		fa = append(fa, pos)
	}
	c.firstAdj = fa
}

// copyFrom replaces the buffer contents with o's.
func (c *candBuf) copyFrom(o *candBuf) {
	c.ids = append(c.ids[:0], o.ids...)
	c.firstAdj = append(c.firstAdj[:0], o.firstAdj...)
}

// vertexState maintains the per-level candidate sets of a vertex-induced
// walk: cands[l-1] = N(v1) ∪ … ∪ N(vl), the Fig. 8 structure that lets the
// candidate set of an extended embedding be computed by one O(d̄) merge with
// the new vertex's neighbor list. Alongside each candidate it tracks the
// earliest adjacent embedding position, and per embedding the suffix maxima
// of the unit sequence, which together make the canonical filter O(1) per
// candidate.
type vertexState struct {
	g     *graph.Graph
	cands []candBuf
	// sufMax[i] = max(emb[i:]) for the embedding of the last update call,
	// with sentinel sufMax[len(emb)] = 0.
	sufMax []uint32
	// psuf[i] = max(emb[i:k-1]) over the prefix of the last updatePrefix
	// call, with sentinel psuf[k-1] = 0 — the per-run half of the suffix
	// maxima on the fused leaf path.
	psuf []uint32
}

func newVertexState(g *graph.Graph, depth int) *vertexState {
	s := &vertexState{g: g}
	s.ensureDepth(depth)
	return s
}

// ensureDepth grows the per-level buffers to hold depth levels, so one state
// can be reused across exploration iterations of increasing depth.
func (s *vertexState) ensureDepth(depth int) {
	for len(s.cands) < depth {
		s.cands = append(s.cands, candBuf{ids: make([]uint32, 0, 64), firstAdj: make([]uint16, 0, 64)})
	}
	if cap(s.sufMax) < depth+1 {
		s.sufMax = make([]uint32, depth+1)
	}
	if cap(s.psuf) < depth+1 {
		s.psuf = make([]uint32, depth+1)
	}
}

// refreshLevel recomputes the candidate set of level l from level l−1.
func (s *vertexState) refreshLevel(emb []uint32, l int) {
	nb := s.g.Neighbors(emb[l-1])
	if l == 1 {
		s.cands[0].setAll(nb, 0)
		return
	}
	mergeUnionProv(&s.cands[l-1], &s.cands[l-2], nb, uint16(l-1))
}

// update refreshes candidate sets for levels from..len(emb) after the walker
// reported that emb changed at level from (1-based), and recomputes the
// suffix maxima of emb.
func (s *vertexState) update(emb []uint32, from int) {
	k := len(emb)
	for l := from; l <= k; l++ {
		s.refreshLevel(emb, l)
	}
	s.sufMax = s.sufMax[:k+1]
	s.sufMax[k] = 0
	for i := k - 1; i >= 0; i-- {
		s.sufMax[i] = max32(emb[i], s.sufMax[i+1])
	}
}

// updatePrefix refreshes candidate sets for the prefix levels from..k−1 only,
// plus the prefix suffix maxima — the once-per-run setup of the fused leaf
// path, which consumes cands[k-2] ∪ N(leaf) without materializing it.
func (s *vertexState) updatePrefix(emb []uint32, from, k int) {
	for l := from; l < k; l++ {
		s.refreshLevel(emb, l)
	}
	psuf := s.psuf[:k]
	psuf[k-1] = 0
	for i := k - 2; i >= 0; i-- {
		psuf[i] = max32(emb[i], psuf[i+1])
	}
}

// appendCanonical appends to children the canonical extensions of emb (whose
// leaf emb[k-1] just changed to u), fusing the candidate merge
// cands[k-2] ∪ N(u) with the Definition-2 filter: the union is consumed as
// it is produced — no candidate buffer is written or re-read — and, since
// property (i) is monotone over the sorted inputs, both sides gallop
// directly to the first candidate exceeding emb[0]. Requires a prior
// updatePrefix for the current run (any from ≤ k−1).
//
// With a = the candidate's earliest adjacent position (merge provenance for
// the cands side, k−1 for the N(u) side), the three properties of
// Definition 2 reduce to (i) cand > emb[0] and (iii) cand > max(emb[a+1:]).
// Duplicates need no explicit check: every stored embedding is connected in
// order, so a duplicate cand = emb[j] has a < j — it sits after its
// attachment position and (iii) rejects it (j = 0 falls to property (i)).
// This is the incremental CanonicalVertex semantics at O(1) per candidate
// instead of O(k·log d̄); the differential tests verify the equivalence
// embedding-for-embedding.
func (s *vertexState) appendCanonical(k int, u uint32, emb []uint32, worker int, vf VertexFilter, children []uint32) []uint32 {
	emb0 := emb[0]
	if emb0 == ^uint32(0) {
		return children // nothing can exceed emb[0]; emb0+1 would wrap below
	}
	nb := s.g.Neighbors(u)
	if k == 1 {
		// Sole property: cand > emb[0] (= u).
		for j := gallopGE(nb, 0, emb0+1); j < len(nb); j++ {
			if vf == nil || vf(worker, emb, nb[j]) {
				children = append(children, nb[j])
			}
		}
		return children
	}
	// Extended suffix maxima: suf[i] = max(emb[i:k]) = max(psuf[i], u) for
	// the positions the filter reads (fa+1 ∈ [1, k−1]); b-side candidates
	// attach at position k−1, where the suffix is empty and only property
	// (i) — already galloped past — applies.
	suf := s.sufMax[:k]
	psuf := s.psuf
	for i := 1; i < k; i++ {
		suf[i] = max32(psuf[i], u)
	}
	a := &s.cands[k-2]
	aids, afa := a.ids, a.firstAdj
	i := gallopGE(aids, 0, emb0+1)
	j := gallopGE(nb, 0, emb0+1)
	for i < len(aids) && j < len(nb) {
		x, y := aids[i], nb[j]
		if x <= y {
			if x == y {
				j++
			}
			if x > suf[int(afa[i])+1] && (vf == nil || vf(worker, emb, x)) {
				children = append(children, x)
			}
			i++
		} else {
			if vf == nil || vf(worker, emb, y) {
				children = append(children, y)
			}
			j++
		}
	}
	for ; i < len(aids); i++ {
		if x := aids[i]; x > suf[int(afa[i])+1] && (vf == nil || vf(worker, emb, x)) {
			children = append(children, x)
		}
	}
	if vf == nil {
		children = append(children, nb[j:]...)
	} else {
		for ; j < len(nb); j++ {
			if vf(worker, emb, nb[j]) {
				children = append(children, nb[j])
			}
		}
	}
	return children
}

// candidates returns the candidate set of the full embedding (neighbors of
// any embedding vertex, including embedding vertices themselves — callers
// filter those via canonical).
func (s *vertexState) candidates(k int) *candBuf { return &s.cands[k-1] }

// predict returns the §4.2 prediction of the candidate-set size of the
// embedding extended with vertex v: |cands ∪ N(v)|.
func (s *vertexState) predict(k int, v uint32) int {
	return mergeUnionCount(s.cands[k-1].ids, s.g.Neighbors(v))
}

// edgeState is the edge-induced analogue: verts[l-1] is the sorted vertex
// set of the first l edges; cands[l-1] holds the incident edge ids with the
// earliest adjacent position of each.
type edgeState struct {
	g      *graph.Graph
	verts  [][]uint32
	cands  []candBuf
	tmp    []uint32
	sufMax []uint32
	// psuf mirrors vertexState.psuf for the fused leaf path.
	psuf []uint32
}

func newEdgeState(g *graph.Graph, depth int) *edgeState {
	s := &edgeState{g: g, tmp: make([]uint32, 0, 64)}
	s.ensureDepth(depth)
	return s
}

// ensureDepth grows the per-level buffers to hold depth levels.
func (s *edgeState) ensureDepth(depth int) {
	for len(s.cands) < depth {
		s.verts = append(s.verts, make([]uint32, 0, depth+1))
		s.cands = append(s.cands, candBuf{ids: make([]uint32, 0, 64), firstAdj: make([]uint16, 0, 64)})
	}
	if cap(s.sufMax) < depth+1 {
		s.sufMax = make([]uint32, depth+1)
	}
	if cap(s.psuf) < depth+1 {
		s.psuf = make([]uint32, depth+1)
	}
}

// update refreshes vertex sets and candidate edge sets for levels
// from..len(emb), and the suffix maxima of emb; emb holds edge ids.
//
// Provenance invariant: a candidate edge already in cands[l-2] shares an
// endpoint with an embedding edge at some position ≤ l-2, so its earliest
// adjacency is unchanged by the new edge; a candidate entering through the
// new endpoints' incident lists is adjacent first at position l-1 — were it
// adjacent to an earlier edge, it would be incident to an earlier vertex and
// hence already in cands[l-2].
func (s *edgeState) update(emb []uint32, from int) {
	k := len(emb)
	for l := from; l <= k; l++ {
		s.refreshLevel(emb, l)
	}
	s.sufMax = s.sufMax[:k+1]
	s.sufMax[k] = 0
	for i := k - 1; i >= 0; i-- {
		s.sufMax[i] = max32(emb[i], s.sufMax[i+1])
	}
}

// refreshLevel recomputes the vertex set and candidate set of level l.
func (s *edgeState) refreshLevel(emb []uint32, l int) {
	e := s.g.EdgeAt(emb[l-1])
	if l == 1 {
		s.verts[0] = append(s.verts[0][:0], e.U, e.V) // E.U < E.V by construction
		s.tmp = mergeUnion(s.tmp, s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
		s.cands[0].setAll(s.tmp, 0)
		return
	}
	prev := s.verts[l-2]
	vl := append(s.verts[l-1][:0], prev...)
	newU := !containsSorted(prev, e.U)
	newV := !containsSorted(prev, e.V)
	if newU {
		vl = insertSorted(vl, e.U)
	}
	if newV {
		vl = insertSorted(vl, e.V)
	}
	s.verts[l-1] = vl
	pos := uint16(l - 1)
	switch {
	case newU && newV:
		s.tmp = mergeUnion(s.tmp, s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
		mergeUnionProv(&s.cands[l-1], &s.cands[l-2], s.tmp, pos)
	case newU:
		mergeUnionProv(&s.cands[l-1], &s.cands[l-2], s.g.IncidentEdges(e.U), pos)
	case newV:
		mergeUnionProv(&s.cands[l-1], &s.cands[l-2], s.g.IncidentEdges(e.V), pos)
	default:
		s.cands[l-1].copyFrom(&s.cands[l-2])
	}
}

// updatePrefix refreshes levels from..k−1 and the prefix suffix maxima — the
// once-per-run setup of the fused edge leaf path.
func (s *edgeState) updatePrefix(emb []uint32, from, k int) {
	for l := from; l < k; l++ {
		s.refreshLevel(emb, l)
	}
	psuf := s.psuf[:k]
	psuf[k-1] = 0
	for i := k - 2; i >= 0; i-- {
		psuf[i] = max32(emb[i], psuf[i+1])
	}
}

// appendCanonical is the edge-induced fused leaf expansion: it consumes
// cands[k-2] ∪ incident(new endpoints of f) as the union is merged, applying
// the Definition-2 filter inline (see vertexState.appendCanonical). The
// extended vertex set verts[k-1] is materialized only when ef needs it.
func (s *edgeState) appendCanonical(k int, f uint32, emb []uint32, worker int, ef EdgeFilter, children []uint32) []uint32 {
	emb0 := emb[0]
	if emb0 == ^uint32(0) {
		return children // nothing can exceed emb[0]; emb0+1 would wrap below
	}
	e := s.g.EdgeAt(f)
	if k == 1 {
		s.tmp = mergeUnion(s.tmp, s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
		if ef != nil {
			s.verts[0] = append(s.verts[0][:0], e.U, e.V)
		}
		for j := gallopGE(s.tmp, 0, emb0+1); j < len(s.tmp); j++ {
			if ef == nil || ef(worker, emb, s.verts[0], s.tmp[j]) {
				children = append(children, s.tmp[j])
			}
		}
		return children
	}
	prev := s.verts[k-2]
	newU := !containsSorted(prev, e.U)
	newV := !containsSorted(prev, e.V)
	var vl []uint32
	if ef != nil {
		vl = append(s.verts[k-1][:0], prev...)
		if newU {
			vl = insertSorted(vl, e.U)
		}
		if newV {
			vl = insertSorted(vl, e.V)
		}
		s.verts[k-1] = vl
	}
	var b []uint32
	switch {
	case newU && newV:
		s.tmp = mergeUnion(s.tmp, s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
		b = s.tmp
	case newU:
		b = s.g.IncidentEdges(e.U)
	case newV:
		b = s.g.IncidentEdges(e.V)
	}
	suf := s.sufMax[:k]
	psuf := s.psuf
	for i := 1; i < k; i++ {
		suf[i] = max32(psuf[i], f)
	}
	a := &s.cands[k-2]
	aids, afa := a.ids, a.firstAdj
	i := gallopGE(aids, 0, emb0+1)
	j := gallopGE(b, 0, emb0+1)
	for i < len(aids) && j < len(b) {
		x, y := aids[i], b[j]
		if x <= y {
			if x == y {
				j++
			}
			if x > suf[int(afa[i])+1] && (ef == nil || ef(worker, emb, vl, x)) {
				children = append(children, x)
			}
			i++
		} else {
			if ef == nil || ef(worker, emb, vl, y) {
				children = append(children, y)
			}
			j++
		}
	}
	for ; i < len(aids); i++ {
		if x := aids[i]; x > suf[int(afa[i])+1] && (ef == nil || ef(worker, emb, vl, x)) {
			children = append(children, x)
		}
	}
	if ef == nil {
		children = append(children, b[j:]...)
	} else {
		for ; j < len(b); j++ {
			if ef(worker, emb, vl, b[j]) {
				children = append(children, b[j])
			}
		}
	}
	return children
}

// candidates returns the candidate edge ids of the full embedding.
func (s *edgeState) candidates(k int) *candBuf { return &s.cands[k-1] }

// vertices returns the sorted vertex set of the full embedding.
func (s *edgeState) vertices(k int) []uint32 { return s.verts[k-1] }

// predict estimates the candidate-set size after appending edge id f.
func (s *edgeState) predict(k int, f uint32) int {
	e := s.g.EdgeAt(f)
	vk := s.verts[k-1]
	newU := !containsSorted(vk, e.U)
	newV := !containsSorted(vk, e.V)
	switch {
	case newU && newV:
		s.tmp = mergeUnion(s.tmp, s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
		return mergeUnionCount(s.cands[k-1].ids, s.tmp)
	case newU:
		return mergeUnionCount(s.cands[k-1].ids, s.g.IncidentEdges(e.U))
	case newV:
		return mergeUnionCount(s.cands[k-1].ids, s.g.IncidentEdges(e.V))
	default:
		return len(s.cands[k-1].ids)
	}
}

// newVertexCount returns how many endpoints of edge f are outside the
// current vertex set — used by vertex-budget filters (k-FSM's "at most k
// vertices" constraint).
func (s *edgeState) newVertexCount(k int, f uint32) int {
	e := s.g.EdgeAt(f)
	n := 0
	if !containsSorted(s.verts[k-1], e.U) {
		n++
	}
	if !containsSorted(s.verts[k-1], e.V) {
		n++
	}
	return n
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
