package explore

import "kaleido/internal/graph"

// vertexState maintains the per-level candidate sets of a vertex-induced
// walk: cands[l-1] = N(v1) ∪ … ∪ N(vl), the Fig. 8 structure that lets the
// candidate set of an extended embedding be computed by one O(d̄) merge with
// the new vertex's neighbor list.
type vertexState struct {
	g     *graph.Graph
	cands [][]uint32
}

func newVertexState(g *graph.Graph, depth int) *vertexState {
	s := &vertexState{g: g, cands: make([][]uint32, depth)}
	for i := range s.cands {
		s.cands[i] = make([]uint32, 0, 64)
	}
	return s
}

// update refreshes candidate sets for levels from..len(emb) after the walker
// reported that emb changed at level from (1-based).
func (s *vertexState) update(emb []uint32, from int) {
	for l := from; l <= len(emb); l++ {
		nb := s.g.Neighbors(emb[l-1])
		if l == 1 {
			s.cands[0] = append(s.cands[0][:0], nb...)
			continue
		}
		s.cands[l-1] = mergeUnion(s.cands[l-1], s.cands[l-2], nb)
	}
}

// candidates returns the candidate set of the full embedding (neighbors of
// any embedding vertex, including embedding vertices themselves — callers
// filter those via CanonicalVertex).
func (s *vertexState) candidates(k int) []uint32 { return s.cands[k-1] }

// predict returns the §4.2 prediction of the candidate-set size of the
// embedding extended with vertex v: |cands ∪ N(v)|.
func (s *vertexState) predict(k int, v uint32) int {
	return mergeUnionCount(s.cands[k-1], s.g.Neighbors(v))
}

// edgeState is the edge-induced analogue: verts[l-1] is the sorted vertex
// set of the first l edges; cands[l-1] is the sorted set of incident edge
// ids.
type edgeState struct {
	g     *graph.Graph
	verts [][]uint32
	cands [][]uint32
	tmp   []uint32
}

func newEdgeState(g *graph.Graph, depth int) *edgeState {
	s := &edgeState{
		g:     g,
		verts: make([][]uint32, depth),
		cands: make([][]uint32, depth),
		tmp:   make([]uint32, 0, 64),
	}
	for i := range s.cands {
		s.verts[i] = make([]uint32, 0, depth+1)
		s.cands[i] = make([]uint32, 0, 64)
	}
	return s
}

// update refreshes vertex sets and candidate edge sets for levels
// from..len(emb); emb holds edge ids.
func (s *edgeState) update(emb []uint32, from int) {
	for l := from; l <= len(emb); l++ {
		e := s.g.EdgeAt(emb[l-1])
		if l == 1 {
			s.verts[0] = append(s.verts[0][:0], e.U, e.V) // E.U < E.V by construction
			s.cands[0] = mergeUnion(s.cands[0], s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
			continue
		}
		prev := s.verts[l-2]
		vl := append(s.verts[l-1][:0], prev...)
		newU := !containsSorted(prev, e.U)
		newV := !containsSorted(prev, e.V)
		if newU {
			vl = insertSorted(vl, e.U)
		}
		if newV {
			vl = insertSorted(vl, e.V)
		}
		s.verts[l-1] = vl
		switch {
		case newU && newV:
			s.tmp = mergeUnion(s.tmp, s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
			s.cands[l-1] = mergeUnion(s.cands[l-1], s.cands[l-2], s.tmp)
		case newU:
			s.cands[l-1] = mergeUnion(s.cands[l-1], s.cands[l-2], s.g.IncidentEdges(e.U))
		case newV:
			s.cands[l-1] = mergeUnion(s.cands[l-1], s.cands[l-2], s.g.IncidentEdges(e.V))
		default:
			s.cands[l-1] = append(s.cands[l-1][:0], s.cands[l-2]...)
		}
	}
}

// candidates returns the candidate edge ids of the full embedding.
func (s *edgeState) candidates(k int) []uint32 { return s.cands[k-1] }

// vertices returns the sorted vertex set of the full embedding.
func (s *edgeState) vertices(k int) []uint32 { return s.verts[k-1] }

// predict estimates the candidate-set size after appending edge id f.
func (s *edgeState) predict(k int, f uint32) int {
	e := s.g.EdgeAt(f)
	vk := s.verts[k-1]
	newU := !containsSorted(vk, e.U)
	newV := !containsSorted(vk, e.V)
	switch {
	case newU && newV:
		s.tmp = mergeUnion(s.tmp, s.g.IncidentEdges(e.U), s.g.IncidentEdges(e.V))
		return mergeUnionCount(s.cands[k-1], s.tmp)
	case newU:
		return mergeUnionCount(s.cands[k-1], s.g.IncidentEdges(e.U))
	case newV:
		return mergeUnionCount(s.cands[k-1], s.g.IncidentEdges(e.V))
	default:
		return len(s.cands[k-1])
	}
}

// newVertexCount returns how many endpoints of edge f are outside the
// current vertex set — used by vertex-budget filters (k-FSM's "at most k
// vertices" constraint).
func (s *edgeState) newVertexCount(k int, f uint32) int {
	e := s.g.EdgeAt(f)
	n := 0
	if !containsSorted(s.verts[k-1], e.U) {
		n++
	}
	if !containsSorted(s.verts[k-1], e.V) {
		n++
	}
	return n
}
