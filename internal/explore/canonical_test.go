package explore

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"kaleido/internal/graph"
)

func TestCanonicalVertexPaperExample(t *testing.T) {
	// §3.1's worked example: expanding s8 = ⟨2,3⟩ (0-based ⟨1,2⟩): candidate
	// 0 violates property (i); 3 and 4 are canonical.
	g := paperGraph(t)
	emb := []uint32{1, 2}
	if CanonicalVertex(g, emb, 0) {
		t.Error("candidate 0 accepted against first-vertex rule")
	}
	if !CanonicalVertex(g, emb, 3) || !CanonicalVertex(g, emb, 4) {
		t.Error("candidates 3/4 rejected")
	}
	// Duplicates are rejected.
	if CanonicalVertex(g, emb, 2) {
		t.Error("duplicate vertex accepted")
	}
	// Non-neighbors are rejected (vertex 3 is no neighbor of {0,1}).
	if CanonicalVertex(g, []uint32{0, 1}, 3) {
		t.Error("non-neighbor accepted")
	}
}

func TestCanonicalVertexPropertyIII(t *testing.T) {
	// Path graph 0-1-2-3 plus edge 0-3: embedding ⟨0,3⟩; candidate 1 is a
	// neighbor of 0 (position a=0) — but wait, 1 < 3 at a later position,
	// violating property (iii): after the first attachment position, all
	// existing vertices must be smaller than the candidate.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalVertex(g, []uint32{0, 3}, 1) {
		t.Error("⟨0,3⟩+1 accepted: 1 attaches at position 0 but 3 > 1 sits after it")
	}
	// ⟨0,1⟩+3: 3 attaches at position 0 and 1 < 3 — canonical.
	if !CanonicalVertex(g, []uint32{0, 1}, 3) {
		t.Error("⟨0,1⟩+3 rejected")
	}
}

func TestMergeUnion(t *testing.T) {
	cases := []struct{ a, b, want []uint32 }{
		{nil, nil, nil},
		{[]uint32{1, 3}, nil, []uint32{1, 3}},
		{[]uint32{1, 3}, []uint32{2, 3, 5}, []uint32{1, 2, 3, 5}},
		{[]uint32{1, 1}, []uint32{1}, []uint32{1, 1}}, // inputs assumed unique; dup in a preserved
	}
	for _, c := range cases {
		got := mergeUnion(nil, c.a, c.b)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("mergeUnion(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMergeUnionCountMatchesMerge(t *testing.T) {
	f := func(xa, xb []uint16) bool {
		a := sortedUnique(xa)
		b := sortedUnique(xb)
		return mergeUnionCount(a, b) == len(mergeUnion(nil, a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func sortedUnique(xs []uint16) []uint32 {
	m := map[uint32]bool{}
	for _, x := range xs {
		m[uint32(x)] = true
	}
	out := make([]uint32, 0, len(m))
	for x := range m {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestInsertAndContainsSorted(t *testing.T) {
	var s []uint32
	for _, v := range []uint32{5, 1, 3, 3, 9, 1} {
		s = insertSorted(s, v)
	}
	if !reflect.DeepEqual(s, []uint32{1, 3, 5, 9}) {
		t.Fatalf("s = %v", s)
	}
	for _, v := range []uint32{1, 3, 5, 9} {
		if !containsSorted(s, v) {
			t.Errorf("containsSorted(%d) = false", v)
		}
	}
	for _, v := range []uint32{0, 2, 4, 10} {
		if containsSorted(s, v) {
			t.Errorf("containsSorted(%d) = true", v)
		}
	}
}

func TestVertexStateIncremental(t *testing.T) {
	// Incremental candidate sets must equal sets recomputed from scratch,
	// across a random walk of updates.
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 20, 60)
	st := newVertexState(g, 3)
	for trial := 0; trial < 100; trial++ {
		emb := []uint32{
			uint32(rng.Intn(g.N())),
			uint32(rng.Intn(g.N())),
			uint32(rng.Intn(g.N())),
		}
		st.update(emb, 1) // full recompute through the incremental path
		want := map[uint32]bool{}
		for _, v := range emb {
			for _, u := range g.Neighbors(v) {
				want[u] = true
			}
		}
		got := st.candidates(3)
		if len(got.ids) != len(want) {
			t.Fatalf("trial %d: %d candidates, want %d", trial, len(got.ids), len(want))
		}
		if len(got.firstAdj) != len(got.ids) {
			t.Fatalf("trial %d: %d provenances for %d ids", trial, len(got.firstAdj), len(got.ids))
		}
		for i, u := range got.ids {
			if !want[u] {
				t.Fatalf("trial %d: spurious candidate %d", trial, u)
			}
			// Provenance is the earliest embedding position adjacent to u.
			wantAdj := -1
			for p, v := range emb {
				if g.HasEdge(v, u) {
					wantAdj = p
					break
				}
			}
			if wantAdj < 0 || int(got.firstAdj[i]) != wantAdj {
				t.Fatalf("trial %d: candidate %d firstAdj = %d, want %d", trial, u, got.firstAdj[i], wantAdj)
			}
		}
		// Prediction equals the true union size with one more vertex.
		v := uint32(rng.Intn(g.N()))
		for _, u := range g.Neighbors(v) {
			want[u] = true
		}
		if p := st.predict(3, v); p != len(want) {
			t.Fatalf("trial %d: predict = %d, want %d", trial, p, len(want))
		}
	}
}

func TestEdgeStateNewVertexCount(t *testing.T) {
	g := paperGraph(t)
	st := newEdgeState(g, 2)
	// Embedding of one edge {0,1} (find its id).
	eid, ok := g.EdgeID(0, 1)
	if !ok {
		t.Fatal("edge {0,1} missing")
	}
	st.update([]uint32{eid}, 1)
	if got := st.vertices(1); !reflect.DeepEqual(got, []uint32{0, 1}) {
		t.Fatalf("vertices = %v", got)
	}
	// Edge {1,4} shares vertex 1 → one new vertex; {2,3} shares none → two.
	e14, _ := g.EdgeID(1, 4)
	e23, _ := g.EdgeID(2, 3)
	if n := st.newVertexCount(1, e14); n != 1 {
		t.Fatalf("newVertexCount({1,4}) = %d", n)
	}
	if n := st.newVertexCount(1, e23); n != 2 {
		t.Fatalf("newVertexCount({2,3}) = %d", n)
	}
}
