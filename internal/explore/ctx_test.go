package explore

import "context"

// bgCtx is the uncancellable context used by tests that don't exercise
// cancellation.
var bgCtx = context.Background()
