package explore

// KeepSink: the FilterTop side of the sink pipeline. FSM's Reducer pruning
// used to rebuild the level it had just built — walk every embedding, copy
// the kept ones through a fresh level builder, swap the result in. The keep
// sink fuses the filter into a single rewrite pass instead: a resident
// MemLevel is compacted in place (writes trail the sequential reader), the
// memory-resident parts of a HybridLevel are compacted in place per part,
// and only disk-resident parts restream through the write queue into fresh
// files. No second copy of the surviving data is ever allocated.

import (
	"context"
	"errors"
	"fmt"

	"kaleido/internal/cse"
	"kaleido/internal/storage"
)

// keepWriter consumes one chunk's verdict stream during a FilterTop pass:
// Keep for every surviving leaf of the current group, GroupDone when the
// group closes (group structure is preserved — parents may end up with
// empty groups), Flush when the chunk completes. *storage.PartRewriter
// implements it for hybrid levels.
type keepWriter interface {
	Keep(u uint32)
	GroupDone() error
	Flush() error
}

// KeepSink is the assembled consumer of one FilterTop pass: per-chunk
// writers over parent bounds, plus the completion hooks of the chosen
// strategy (in-place compaction or builder rebuild).
type KeepSink struct {
	bounds   []int
	writers  []keepWriter
	finishFn func(ctx context.Context) error
	abortFn  func()
}

// FilterTop rewrites the top level keeping only embeddings approved by keep
// — the Reducer-driven pruning of FSM (§5.1). Group structure under the
// previous level is preserved (parents may end up with empty groups).
// Resident data is rewritten in place through a KeepSink: a MemLevel top
// compacts its arrays, a HybridLevel top compacts memory parts in place and
// restreams only disk parts; other level types fall back to the copying
// builder pass. After an in-place hybrid rewrite, disk parts whose shrunken
// data now fits the (shared) budget watermark are promoted back to memory.
// ctx cancels the pass (workers poll between chunks and every few runs);
// note that an in-place rewrite may already have compacted resident data, so
// treat a cancelled or failed FilterTop as fatal for the top level and Close
// the explorer — spilled files are still reclaimed. Uses the pooled
// per-worker scratch — do not run it concurrently with another operation on
// the same Explorer.
func (e *Explorer) FilterTop(ctx context.Context, keep func(worker int, emb []uint32) bool) error {
	k := e.c.Depth()
	if k < 2 {
		return fmt.Errorf("explore: FilterTop requires depth ≥ 2")
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	top := e.c.Top()
	s, err := e.keepSinkFor(top)
	if err != nil {
		return err
	}
	err = e.runParallel(ctx, len(s.bounds)-1, func(worker, chunk int) error {
		plo, phi := s.bounds[chunk], s.bounds[chunk+1]
		kw := s.writers[chunk]
		if err := e.filterRange(ctx, top, k, plo, phi, worker, kw, keep); err != nil {
			return err
		}
		return kw.Flush()
	})
	if err != nil {
		e.abortOp(s.abortFn)
		return err
	}
	return s.finishFn(ctx)
}

// keepSinkFor picks the rewrite strategy for the top level.
func (e *Explorer) keepSinkFor(top cse.LevelData) (*KeepSink, error) {
	switch t := top.(type) {
	case *cse.MemLevel:
		return e.memKeepSink(t)
	case *storage.HybridLevel:
		return e.hybridKeepSink(t)
	default:
		return e.rebuildKeepSink(top)
	}
}

// memKeep compacts one chunk of a MemLevel in place: kept leaves are
// written at the front of the chunk's own vert range (the write index
// trails the reader of the same goroutine), per-group kept counts go to a
// side array, and the finish hook stitches the chunks together with one
// memmove and rebuilds the offsets — no fresh arrays.
type memKeep struct {
	verts    []uint32
	w, start int
	counts   []uint32
	g        int
	cnt      uint32
}

func (m *memKeep) Keep(u uint32) {
	m.verts[m.w] = u
	m.w++
	m.cnt++
}

func (m *memKeep) GroupDone() error {
	m.counts[m.g] = m.cnt
	m.g++
	m.cnt = 0
	return nil
}

func (m *memKeep) Flush() error { return nil }

func (e *Explorer) memKeepSink(top *cse.MemLevel) (*KeepSink, error) {
	parents := e.c.Level(e.c.Depth() - 1).Len()
	bounds := partitionEven(parents, e.chunks(parents))
	nchunks := len(bounds) - 1
	counts := make([]uint32, parents)
	writers := make([]keepWriter, nchunks)
	mws := make([]*memKeep, nchunks)
	for c := 0; c < nchunks; c++ {
		plo, phi := bounds[c], bounds[c+1]
		w := int(top.Offs[plo])
		mws[c] = &memKeep{verts: top.Verts, w: w, start: w, counts: counts[plo:phi]}
		writers[c] = mws[c]
	}
	s := &KeepSink{bounds: bounds, writers: writers, abortFn: func() {}}
	s.finishFn = func(context.Context) error {
		// Stitch: each chunk's kept prefix sits at the front of its original
		// range; move them together, then rebuild the offsets from the
		// per-group counts. The moves are parallelized by cutting the chunk
		// sequence into independent segments: at a boundary where chunk c's
		// destination has reached past chunk c-1's kept data (dsts[c] ≥
		// mws[c-1].w), every later read and write stays at or right of that
		// point and every earlier one stays left of it, so the segments can
		// stitch concurrently — each one left-to-right as before (a chunk's
		// destination never overlaps a later chunk's kept data). With nothing
		// filtered every boundary is a cut (fully parallel); heavy filtering
		// degrades toward the old single pass.
		dsts := make([]int, len(mws)+1)
		for c, mw := range mws {
			dsts[c+1] = dsts[c] + (mw.w - mw.start)
		}
		segs := []int{0}
		for c := 1; c < len(mws); c++ {
			if dsts[c] >= mws[c-1].w {
				segs = append(segs, c)
			}
		}
		segs = append(segs, len(mws))
		// The stitch runs uncancellable (nil ctx): every filter chunk has
		// already succeeded, the remaining work is microseconds of memmove,
		// and aborting it midway would corrupt the level a completed pass
		// was entitled to keep.
		err := e.runParallel(nil, len(segs)-1, func(_, si int) error {
			for c := segs[si]; c < segs[si+1]; c++ {
				mw := mws[c]
				n := mw.w - mw.start
				copy(top.Verts[dsts[c]:dsts[c]+n], top.Verts[mw.start:mw.w])
			}
			return nil
		})
		if err != nil {
			return err
		}
		var off uint64
		for g, c := range counts {
			off += uint64(c)
			top.Offs[g+1] = off
		}
		e.uncharge()
		top.Verts = top.Verts[:dsts[len(mws)]]
		top.Pred = nil
		e.charge(top.Bytes())
		return nil
	}
	return s, nil
}

// hybridKeepSink rewrites a HybridLevel part by part: chunks are the parts
// themselves (part boundaries are group-aligned, so every chunk's reads and
// writes stay within one part), memory parts compact in place, disk parts
// restream into fresh files swapped in at FinishRewrite.
func (e *Explorer) hybridKeepSink(top *storage.HybridLevel) (*KeepSink, error) {
	nparts := top.NumParts()
	bounds := make([]int, nparts+1)
	for i := 0; i < nparts; i++ {
		lo, _ := top.PartGroups(i)
		bounds[i] = lo
	}
	bounds[nparts] = top.Groups()
	if e.queue == nil {
		e.queue = storage.NewWriteQueue(e.cfg.BufSize, e.cfg.Tracker)
	}
	rws := make([]*storage.PartRewriter, nparts)
	writers := make([]keepWriter, nparts)
	for i := 0; i < nparts; i++ {
		r, err := top.RewritePart(i, e.queue)
		if err != nil {
			return nil, errors.Join(err, top.AbortRewrite(rws))
		}
		rws[i] = r
		writers[i] = r
	}
	s := &KeepSink{bounds: bounds, writers: writers}
	s.finishFn = func(context.Context) error {
		if err := top.FinishRewrite(rws, e.queue); err != nil {
			return err
		}
		e.uncharge()
		e.charge(top.Bytes())
		// The filter just shrank the level: disk parts that were migrated
		// under build-time pressure may fit the budget again.
		return e.promoteTop(top)
	}
	s.abortFn = func() { top.AbortRewrite(rws) }
	return s, nil
}

// builderKeep adapts a level-builder part writer to the keepWriter stream —
// the copying fallback for level types the sink cannot rewrite in place.
type builderKeep struct {
	pw       cse.PartWriter
	children []uint32
}

func (b *builderKeep) Keep(u uint32) { b.children = append(b.children, u) }

func (b *builderKeep) GroupDone() error {
	err := b.pw.AppendGroup(b.children, nil)
	b.children = b.children[:0]
	return err
}

func (b *builderKeep) Flush() error { return b.pw.Flush() }

func (e *Explorer) rebuildKeepSink(top cse.LevelData) (*KeepSink, error) {
	parents := e.c.Level(e.c.Depth() - 1).Len()
	// The rewritten level replaces the old top, so the budget share it may
	// occupy excludes the level being replaced.
	nchunks := e.buildChunks(parents, e.c.Bytes()-top.Bytes())
	bounds := partitionEven(parents, nchunks)
	var builder cse.LevelBuilder
	if e.cfg.MemoryBudget > 0 && e.cfg.SpillDir != "" {
		hb, err := e.hybridBuilderFor(nchunks, e.c.Bytes()-top.Bytes())
		if err != nil {
			return nil, err
		}
		builder = hb
	} else {
		builder = e.memBuilderFor(nchunks)
	}
	writers := make([]keepWriter, nchunks)
	for c := 0; c < nchunks; c++ {
		writers[c] = &builderKeep{pw: builder.Part(c)}
	}
	s := &KeepSink{bounds: bounds, writers: writers}
	s.finishFn = func(context.Context) error {
		lvl, err := builder.Finish()
		if err != nil {
			return err
		}
		e.uncharge()
		if err := e.c.ReplaceTop(lvl); err != nil {
			lvl.Close()
			return err
		}
		e.charge(lvl.Bytes())
		return nil
	}
	s.abortFn = func() { builder.Abort() }
	return s, nil
}

// filterRange streams the groups of parents [plo, phi) through kw, asking
// keep about every leaf.
func (e *Explorer) filterRange(ctx context.Context, top cse.LevelData, k, plo, phi, worker int, kw keepWriter, keep func(int, []uint32) bool) error {
	lo64, err := top.GroupStart(plo)
	if err != nil {
		return err
	}
	hi64, err := top.GroupStart(phi)
	if err != nil {
		return err
	}
	lo, hi := int(lo64), int(hi64)
	w, err := e.walkerFor(worker, lo, hi)
	if err != nil {
		return err
	}
	defer w.Close()
	bc := cse.BoundCursorOverBlocks(top.BoundBlocks(plo))
	defer bc.Close()

	end, ok := bc.Next()
	if !ok && phi > plo {
		return fmt.Errorf("explore: missing group boundary at parent %d: %w", plo, bc.Err())
	}
	emitted := 0
	runs := 0
	for i := lo; i < hi; {
		emb, _, leaves, wok := w.NextRun()
		if !wok {
			return fmt.Errorf("explore: walker ended early at %d: %w", i, w.Err())
		}
		if runs++; runs%pollEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		for _, u := range leaves {
			for uint64(i) >= end {
				if err := kw.GroupDone(); err != nil {
					return err
				}
				emitted++
				var bok bool
				end, bok = bc.Next()
				if !bok {
					return fmt.Errorf("explore: boundary stream ended at parent %d: %w", plo+emitted, bc.Err())
				}
			}
			emb[k-1] = u
			if keep(worker, emb) {
				kw.Keep(u)
			}
			i++
		}
	}
	// Close the open group and any trailing empty parents.
	for emitted < phi-plo {
		if err := kw.GroupDone(); err != nil {
			return err
		}
		emitted++
	}
	return nil
}
