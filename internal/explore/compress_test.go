package explore

import (
	"math/rand"
	"reflect"
	"testing"

	"kaleido/internal/memtrack"
	"kaleido/internal/storage"
)

// TestCompressionPlacementConformance runs the same exploration with
// compression on and off across the three storage regimes — all-memory,
// partially spilled, heavily spilled — and requires identical embeddings,
// Extract results and ParentOf answers everywhere. It also checks the byte
// split: auto compresses the spilled bytes, off keeps physical == logical.
func TestCompressionPlacementConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := randomGraph(rng, 50, 200)

	// Unbudgeted reference: embeddings plus per-depth CSE sizes.
	ref := newVertexExplorer(t, g, 3)
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	bytesAfter2 := ref.Bytes()
	if err := ref.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	bytesAfter3 := ref.Bytes()
	want := collect(t, ref)
	wantExtract := make([][]uint32, ref.Count())
	for i := range wantExtract {
		emb := make([]uint32, ref.Depth())
		if err := ref.CSE().Extract(i, emb); err != nil {
			t.Fatal(err)
		}
		wantExtract[i] = emb
	}

	budgets := []int64{
		0, // all-memory
		bytesAfter2 + (bytesAfter3-bytesAfter2)/2, // partial spill
		bytesAfter2 / 2, // heavy spill
	}
	for _, comp := range []storage.Compression{storage.CompressionAuto, storage.CompressionOff} {
		for bi, budget := range budgets {
			cfg := Config{Graph: g, Mode: VertexInduced, Threads: 3, Compression: comp,
				// Pin raw residency: this test is about the placement
				// of *spilled* bytes, so the compressed-mem tier must
				// not absorb the contrived budget pressure.
				ResidentCompression: storage.CompressionOff}
			if budget > 0 {
				cfg.MemoryBudget, cfg.SpillDir = budget, t.TempDir()
			}
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			if err := e.InitVertices(nil); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2; i++ {
				if err := e.Expand(bgCtx, nil, nil); err != nil {
					t.Fatalf("comp=%d budget[%d]: %v", comp, bi, err)
				}
			}
			if got := collect(t, e); !reflect.DeepEqual(got, want) {
				t.Fatalf("comp=%d budget[%d]: embeddings differ (%d vs %d)", comp, bi, len(got), len(want))
			}
			top := e.CSE().Top()
			for i := 0; i < e.Count(); i++ {
				emb := make([]uint32, e.Depth())
				if err := e.CSE().Extract(i, emb); err != nil {
					t.Fatalf("comp=%d budget[%d]: Extract(%d): %v", comp, bi, i, err)
				}
				if !reflect.DeepEqual(emb, wantExtract[i]) {
					t.Fatalf("comp=%d budget[%d]: Extract(%d) = %v, want %v", comp, bi, i, emb, wantExtract[i])
				}
				rp, rerr := ref.CSE().Top().ParentOf(i)
				gp, gerr := top.ParentOf(i)
				if rerr != nil || gerr != nil || rp != gp {
					t.Fatalf("comp=%d budget[%d]: ParentOf(%d) = %d (%v), want %d (%v)", comp, bi, i, gp, gerr, rp, rerr)
				}
			}
			sl, sp := e.SpilledBytes(), e.SpilledBytesPhysical()
			if budget == 0 {
				if sl != 0 || sp != 0 {
					t.Fatalf("comp=%d: all-mem run reports spilled bytes %d/%d", comp, sl, sp)
				}
				continue
			}
			if e.SpilledParts() == 0 {
				t.Fatalf("comp=%d budget[%d]: budgeted run spilled nothing", comp, bi)
			}
			if sl == 0 || sp == 0 {
				t.Fatalf("comp=%d budget[%d]: spilled bytes %d logical / %d physical", comp, bi, sl, sp)
			}
			if comp == storage.CompressionOff && sl != sp {
				t.Fatalf("budget[%d]: compression off but physical %d != logical %d", bi, sp, sl)
			}
			if comp == storage.CompressionAuto && sp >= sl {
				t.Fatalf("budget[%d]: compression auto but physical %d not below logical %d", bi, sp, sl)
			}
		}
	}
}

// TestPopTopPromotesCompressedParts: a level spilled under (external) memory
// pressure keeps its compressed disk parts until the level above is popped;
// PopTop must release the popped charge and promote the compressed parts
// back to raw memory, leaving the data intact.
func TestPopTopPromotesCompressedParts(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g := randomGraph(rng, 40, 160)
	tr := memtrack.New()
	e, err := New(Config{
		Graph: g, Mode: VertexInduced, Threads: 2,
		MemoryBudget: 1 << 30, SpillDir: t.TempDir(), Tracker: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	// External pressure forces the depth-3 build to spill compressed parts.
	tr.Alloc(2 << 30)
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	tr.Free(2 << 30)
	if e.SpilledParts() == 0 {
		t.Fatal("pressured build spilled nothing")
	}
	if e.SpilledBytesPhysical() >= e.SpilledBytes() {
		t.Fatalf("spill not compressed: %d physical / %d logical", e.SpilledBytesPhysical(), e.SpilledBytes())
	}
	want := collect(t, e)
	// Build one more (all-memory, pressure gone) level, then pop it.
	if err := e.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	liveBefore := tr.Live()
	if err := e.PopTop(); err != nil {
		t.Fatal(err)
	}
	if tr.Live() >= liveBefore {
		t.Fatalf("PopTop did not release bytes: live %d -> %d", liveBefore, tr.Live())
	}
	if e.PromotedParts() == 0 {
		t.Fatal("PopTop left headroom but promoted no disk parts")
	}
	stats := e.LevelStats()
	if top := stats[len(stats)-1]; top.DiskParts != 0 {
		t.Fatalf("disk parts remain after promotion: %+v", top)
	}
	if got := collect(t, e); !reflect.DeepEqual(got, want) {
		t.Fatal("embeddings differ after PopTop promotion")
	}
	// The base level cannot be popped.
	for e.Depth() > 1 {
		if err := e.PopTop(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.PopTop(); err == nil {
		t.Fatal("PopTop removed the base level")
	}
}
