package explore

// The sink pipeline: Expand produces a stream of (parent embedding,
// canonical children) pairs and emits it into a pluggable ExpandSink instead
// of being hardwired to a level builder. Storing the stream as the next CSE
// level (StoreSink) is just one consumer; terminal operations — the last
// expansion of a counting or aggregating workload — plug in a sink that
// consumes the stream where it is produced, so the largest level of the run
// is never materialized (§6.5: k-motif stores only k−1 levels because the
// final expansion happens inside the Mapper; the sinks generalize that trick
// to every application).
//
//	StoreSink — today's Expand: build level k+1 (memory, hybrid, or disk
//	            placement decided by the budget governor) and push it.
//	CountSink — per-worker counters; nothing is written. CliqueCount's
//	            final expansion.
//	VisitSink — per-worker (emb, cand) callback; the engine primitive under
//	            ForEachExpansion and the Mapper of motif counting and FSM's
//	            final aggregation.
//	KeepSink  — the FilterTop analogue (keep.go): rewrite the top level in
//	            place under a keep predicate instead of copying it through a
//	            fresh builder.

import (
	"context"
	"fmt"

	"kaleido/internal/cse"
)

// ExpandSink consumes the output stream of one exploration iteration. The
// method set is unexported: sinks are provided by the engine (StoreSink,
// CountSink, VisitSink) and selected per call via ExpandTo or the
// Expand/ExpandCount/ExpandVisit wrappers.
type ExpandSink interface {
	// begin prepares the sink for a walk cut at bounds (len(bounds)-1
	// chunks) over the current top level.
	begin(e *Explorer, top cse.LevelData, bounds []int) error
	// emit consumes the canonical children of one parent embedding. It is
	// called from worker goroutines; chunks are processed one at a time per
	// worker, in parent order within a chunk. emb (leaf filled), children
	// and preds are reused buffers, valid only during the call.
	emit(worker, chunk int, emb, children, preds []uint32) error
	// endChunk completes one chunk after its last emit.
	endChunk(worker, chunk int) error
	// finish completes the sink after every chunk succeeded.
	finish(e *Explorer) error
	// abort discards partial output after a failed walk.
	abort()
	// storing reports whether finish pushes a new CSE level — it gates the
	// §4.2 prediction (pointless when nothing is stored) and the chunk
	// granularity (builder parts vs plain work stealing).
	storing() bool
}

// StoreSink materializes the expansion stream as the next CSE level — the
// classic Expand. The level builder is chosen per build: the pooled
// in-memory builder without a budget, the governor-backed hybrid builder
// with one.
type StoreSink struct {
	builder cse.LevelBuilder
	pws     []cse.PartWriter
	parents int
}

func (s *StoreSink) storing() bool { return true }

func (s *StoreSink) begin(e *Explorer, top cse.LevelData, bounds []int) error {
	b, err := e.levelBuilderFor(top, bounds, e.c.Bytes())
	if err != nil {
		return err
	}
	s.builder = b
	s.parents = top.Len()
	s.pws = s.pws[:0]
	for i := 0; i+1 < len(bounds); i++ {
		s.pws = append(s.pws, b.Part(i))
	}
	return nil
}

func (s *StoreSink) emit(worker, chunk int, emb, children, preds []uint32) error {
	return s.pws[chunk].AppendGroup(children, preds)
}

func (s *StoreSink) endChunk(worker, chunk int) error {
	return s.pws[chunk].Flush()
}

func (s *StoreSink) finish(e *Explorer) error {
	lvl, err := s.builder.Finish()
	if err != nil {
		return err
	}
	if err := e.c.Push(lvl); err != nil {
		lvl.Close()
		return err
	}
	_, cp, dp, db, dbp, _ := levelPlacement(lvl)
	if dp > 0 {
		e.spilled++
		e.spilledParts += dp
		e.spilledBytes += db
		e.spilledPhys += dbp
	}
	e.compParts += cp // parts the governor squeezed during this build
	e.charge(lvl.Bytes())
	e.compactColdLevel()
	if s.parents > 0 {
		e.prevFanout, e.lastFanout = e.lastFanout, float64(lvl.Len())/float64(s.parents)
	}
	return nil
}

func (s *StoreSink) abort() {
	if s.builder != nil {
		s.builder.Abort()
	}
}

// CountSink tallies the expansion stream into per-worker counters — the
// terminal sink of counting workloads. The final expansion of CliqueCount
// runs through it: every child is a k-clique, so the count is the answer and
// the largest level of the run — the one that dominates bytes written — is
// never materialized.
type CountSink struct {
	counts []paddedCount
	total  uint64
}

// paddedCount keeps each worker's counter on its own cache line.
type paddedCount struct {
	n uint64
	_ [56]byte
}

func (s *CountSink) storing() bool { return false }

func (s *CountSink) begin(e *Explorer, top cse.LevelData, bounds []int) error {
	if cap(s.counts) < e.cfg.Threads {
		s.counts = make([]paddedCount, e.cfg.Threads)
	}
	s.counts = s.counts[:e.cfg.Threads]
	for i := range s.counts {
		s.counts[i].n = 0
	}
	s.total = 0
	return nil
}

func (s *CountSink) emit(worker, chunk int, emb, children, preds []uint32) error {
	s.counts[worker].n += uint64(len(children))
	return nil
}

func (s *CountSink) endChunk(worker, chunk int) error { return nil }

func (s *CountSink) finish(e *Explorer) error {
	for i := range s.counts {
		s.total += s.counts[i].n
	}
	return nil
}

func (s *CountSink) abort() {}

// Total returns the number of children the expansion produced.
func (s *CountSink) Total() uint64 { return s.total }

// VisitSink hands every (embedding, extension) pair of the expansion stream
// to a per-worker callback — the Mapper-side consumption of §5.1 (motif
// counting, FSM's final aggregation). Nothing is materialized.
type VisitSink struct {
	visit func(worker int, emb []uint32, cand uint32) error
}

func (s *VisitSink) storing() bool { return false }

func (s *VisitSink) begin(e *Explorer, top cse.LevelData, bounds []int) error {
	if s.visit == nil {
		return fmt.Errorf("explore: VisitSink without a visit callback")
	}
	return nil
}

func (s *VisitSink) emit(worker, chunk int, emb, children, preds []uint32) error {
	for _, c := range children {
		if err := s.visit(worker, emb, c); err != nil {
			return err
		}
	}
	return nil
}

func (s *VisitSink) endChunk(worker, chunk int) error { return nil }
func (s *VisitSink) finish(e *Explorer) error         { return nil }
func (s *VisitSink) abort()                           {}

// CountVisitSink fuses CountSink and VisitSink: every extension reaches the
// per-worker callback and is tallied into a padded per-worker counter in the
// same pass. A workload whose terminal expansion both aggregates and needs
// the total embedding count (FSM's final MNI aggregation) gets the count for
// free instead of re-deriving it with a second hash pass over its aggregates.
type CountVisitSink struct {
	VisitSink
	counts []paddedCount
	total  uint64
}

func (s *CountVisitSink) begin(e *Explorer, top cse.LevelData, bounds []int) error {
	if err := s.VisitSink.begin(e, top, bounds); err != nil {
		return err
	}
	if cap(s.counts) < e.cfg.Threads {
		s.counts = make([]paddedCount, e.cfg.Threads)
	}
	s.counts = s.counts[:e.cfg.Threads]
	for i := range s.counts {
		s.counts[i].n = 0
	}
	s.total = 0
	return nil
}

func (s *CountVisitSink) emit(worker, chunk int, emb, children, preds []uint32) error {
	s.counts[worker].n += uint64(len(children))
	return s.VisitSink.emit(worker, chunk, emb, children, preds)
}

func (s *CountVisitSink) finish(e *Explorer) error {
	for i := range s.counts {
		s.total += s.counts[i].n
	}
	return nil
}

// Total returns the number of children the expansion produced.
func (s *CountVisitSink) Total() uint64 { return s.total }

// ExpandTo runs one exploration iteration under the default canonical filter
// plus the optional user filter, emitting the output stream into sink. It is
// the engine primitive behind Expand (StoreSink), ExpandCount (CountSink)
// and ExpandVisit (VisitSink). ctx cancels the iteration (see Expand). Like
// every exploration operation it uses the pooled per-worker scratch: at most
// one operation may run on an Explorer at a time.
func (e *Explorer) ExpandTo(ctx context.Context, sink ExpandSink, vf VertexFilter, ef EdgeFilter) error {
	if e.c == nil {
		return fmt.Errorf("explore: not initialized")
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	top := e.c.Top()
	n := top.Len()
	k := e.c.Depth()

	var bounds []int
	if sink.storing() {
		bounds = e.partition(top, e.buildChunks(n, e.c.Bytes()))
	} else {
		bounds = e.partition(top, e.chunks(n))
	}
	if err := sink.begin(e, top, bounds); err != nil {
		return err
	}
	predicting := e.cfg.Predict && sink.storing()
	err := e.runParallel(ctx, len(bounds)-1, func(worker, chunk int) error {
		lo, hi := bounds[chunk], bounds[chunk+1]
		if err := e.expandRange(ctx, k, lo, hi, worker, chunk, sink, predicting, vf, ef); err != nil {
			return err
		}
		return sink.endChunk(worker, chunk)
	})
	if err != nil {
		e.abortOp(sink.abort)
		return err
	}
	return sink.finish(e)
}

// ExpandCount runs one exploration iteration and returns how many embeddings
// it would produce, without materializing them (CountSink). The CSE is
// unchanged: depth stays at Depth() and no bytes are written for the counted
// level — the §6.5 terminal-consumption trick as an engine operation. ctx
// cancels the count (see Expand).
func (e *Explorer) ExpandCount(ctx context.Context, vf VertexFilter, ef EdgeFilter) (uint64, error) {
	var s CountSink
	if err := e.ExpandTo(ctx, &s, vf, ef); err != nil {
		return 0, err
	}
	return s.Total(), nil
}

// ExpandVisit runs one exploration iteration and hands every canonical
// extension to visit instead of materializing the new level (VisitSink).
// worker indexes per-worker aggregation state (0..Threads-1); emb is a
// reused buffer holding the parent embedding (leaf included) that must not
// be retained; cand is the extension unit (a vertex id in vertex-induced
// mode, an edge id in edge-induced mode). The CSE is unchanged. ctx cancels
// the walk (see Expand).
func (e *Explorer) ExpandVisit(ctx context.Context, vf VertexFilter, ef EdgeFilter, visit func(worker int, emb []uint32, cand uint32) error) error {
	s := VisitSink{visit: visit}
	return e.ExpandTo(ctx, &s, vf, ef)
}

// ExpandCountVisit is ExpandVisit plus the embedding count of the same pass
// (CountVisitSink): the walk visits every canonical extension and returns how
// many there were, so terminal aggregations that also report a count do not
// need a second pass over their aggregate state. The CSE is unchanged.
func (e *Explorer) ExpandCountVisit(ctx context.Context, vf VertexFilter, ef EdgeFilter, visit func(worker int, emb []uint32, cand uint32) error) (uint64, error) {
	s := CountVisitSink{VisitSink: VisitSink{visit: visit}}
	if err := e.ExpandTo(ctx, &s, vf, ef); err != nil {
		return 0, err
	}
	return s.Total(), nil
}
