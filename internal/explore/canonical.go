// Package explore implements Kaleido's embedding exploration engine (§3.1,
// §4): canonical-filtered vertex- and edge-induced expansion over a CSE,
// parallel iteration with prediction-based load balancing (§4.2), and
// automatic spilling of large levels to hybrid disk storage (§4.1).
package explore

import "kaleido/internal/graph"

// CanonicalVertex implements the incremental form of Definition 2: it
// reports whether appending candidate vertex cand to the canonical embedding
// emb keeps it canonical. The three properties of Definition 2:
//
//	(i)   cand must exceed the first vertex;
//	(ii)  cand must neighbor some embedding vertex (with a = the first such
//	      position);
//	(iii) every vertex after position a must be smaller than cand.
//
// Duplicate vertices are rejected. Assuming emb itself is canonical, the
// extension enumerates every connected induced subgraph exactly once.
//
// This is the O(k·log d̄) reference implementation, kept for external
// engines and as the oracle of the differential tests. The exploration hot
// path does not call it: the expansion loop uses the fused filter
// (vertexState.canonical / edgeState.canonical), which derives property
// (ii)'s attachment position from merge provenance and checks (i)+(iii)
// with two integer comparisons against precomputed suffix maxima.
func CanonicalVertex(g *graph.Graph, emb []uint32, cand uint32) bool {
	if cand <= emb[0] {
		return false
	}
	first := -1
	for i, v := range emb {
		if v == cand {
			return false
		}
		if first == -1 && g.HasEdge(v, cand) {
			first = i
			// Keep scanning: later positions must be checked for
			// duplicates and for property (iii).
			continue
		}
		if first >= 0 && v >= cand {
			return false
		}
	}
	return first >= 0
}

// CanonicalEdge is the edge-induced analogue of CanonicalVertex: embeddings
// are sequences of edge ids, adjacency is sharing an endpoint, and ordering
// is by edge id. emb holds the edge ids of the current embedding.
func CanonicalEdge(g *graph.Graph, emb []uint32, cand uint32) bool {
	if cand <= emb[0] {
		return false
	}
	ce := g.EdgeAt(cand)
	first := -1
	for i, eid := range emb {
		if eid == cand {
			return false
		}
		e := g.EdgeAt(eid)
		adjacent := e.U == ce.U || e.U == ce.V || e.V == ce.U || e.V == ce.V
		if first == -1 && adjacent {
			first = i
			continue
		}
		if first >= 0 && eid >= cand {
			return false
		}
	}
	return first >= 0
}

// mergeUnion writes the sorted union of sorted slices a and b into dst
// (which is reset) and returns it.
func mergeUnion(dst, a, b []uint32) []uint32 {
	need := len(a) + len(b)
	if cap(dst) < need {
		dst = make([]uint32, need)
	}
	dst = dst[:need]
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		v := x
		if y < x {
			v = y
		}
		dst[n] = v
		n++
		if x <= y {
			i++
		}
		if y <= x {
			j++
		}
	}
	n += copy(dst[n:], a[i:])
	n += copy(dst[n:], b[j:])
	return dst[:n]
}

// gallopGE returns the smallest p in [i, len(s)] with s[p] >= v, for sorted
// s: an exponential probe from i followed by a binary search, O(log(p−i))
// instead of O(p−i) — the win when one merge input is much longer than the
// other.
func gallopGE(s []uint32, i int, v uint32) int {
	if i >= len(s) || s[i] >= v {
		return i
	}
	step := 1
	lo := i // s[lo] < v invariant
	for lo+step < len(s) && s[lo+step] < v {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > len(s) {
		hi = len(s)
	}
	lo++
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopRatio: when the accumulated candidate list is at least this many
// times longer than the incoming neighbor list, mergeUnionProv switches from
// the element-wise merge to galloping + bulk copies.
const gallopRatio = 4

// mergeUnionProv writes the sorted union of candidate buffer a and sorted
// list b into dst, carrying provenance: candidates from a keep their
// firstAdj position, candidates only in b get bPos. Ties keep a's position —
// every provenance in a precedes bPos by construction (a covers earlier
// embedding positions), so the result is the earliest adjacent position of
// each candidate. dst must not alias a.
//
// This is the hottest loop of exploration (≈half the expansion profile), so
// it writes into a pre-sized destination by index — no per-element capacity
// checks — and, because the candidate list grows with depth while each
// neighbor list stays at d̄, gallops over the long side in bulk memmoves once
// the ratio passes gallopRatio.
func mergeUnionProv(dst, a *candBuf, b []uint32, bPos uint16) {
	aids, afa := a.ids, a.firstAdj
	need := len(aids) + len(b)
	ids := dst.ids
	if cap(ids) < need {
		ids = make([]uint32, need)
	}
	ids = ids[:need]
	fa := dst.firstAdj
	if cap(fa) < need {
		fa = make([]uint16, need)
	}
	fa = fa[:need]

	var n int
	if len(aids) >= gallopRatio*len(b) {
		n = mergeProvGallop(ids, fa, aids, afa, b, bPos)
	} else {
		n = mergeProvLinear(ids, fa, aids, afa, b, bPos)
	}
	dst.ids, dst.firstAdj = ids[:n], fa[:n]
}

// mergeProvLinear is the element-wise merge for comparably sized inputs,
// written branch-lite (conditional selects plus unconditional index
// arithmetic) over pre-sized outputs.
func mergeProvLinear(ids []uint32, fa []uint16, aids []uint32, afa []uint16, b []uint32, bPos uint16) int {
	n, i, j := 0, 0, 0
	for i < len(aids) && j < len(b) {
		x, y := aids[i], b[j]
		v, f := x, afa[i]
		if y < x {
			v, f = y, bPos
		}
		ids[n], fa[n] = v, f
		n++
		if x <= y {
			i++
		}
		if y <= x {
			j++
		}
	}
	m := copy(ids[n:], aids[i:])
	copy(fa[n:], afa[i:])
	n += m
	m = copy(ids[n:], b[j:])
	for x := 0; x < m; x++ {
		fa[n+x] = bPos
	}
	return n + m
}

// mergeProvGallop merges a short b into a much longer a: for each b element
// it gallops to the insertion point and memmoves the intervening run of a —
// per-unit cost approaches copy bandwidth instead of compare-branch chains.
func mergeProvGallop(ids []uint32, fa []uint16, aids []uint32, afa []uint16, b []uint32, bPos uint16) int {
	n, i := 0, 0
	for _, v := range b {
		p := gallopGE(aids, i, v)
		n += copy(ids[n:], aids[i:p])
		copy(fa[n-(p-i):], afa[i:p])
		i = p
		if i < len(aids) && aids[i] == v {
			ids[n], fa[n] = v, afa[i]
			i++
		} else {
			ids[n], fa[n] = v, bPos
		}
		n++
	}
	m := copy(ids[n:], aids[i:])
	copy(fa[n:], afa[i:])
	return n + m
}

// mergeUnionCount returns |a ∪ b| for sorted slices without materializing
// the union — the O(d̄) candidate-size prediction of §4.2 (Fig. 8). When one
// side is much longer, the shorter gallops through it (O(d̄·log) instead of a
// full rescan); for comparable sizes the element-wise count is cheaper.
func mergeUnionCount(a, b []uint32) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	if len(a) >= gallopRatio*len(b) {
		common := 0
		i := 0
		for _, v := range b {
			i = gallopGE(a, i, v)
			if i < len(a) && a[i] == v {
				common++
				i++
			}
		}
		return len(a) + len(b) - common
	}
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		if x <= y {
			i++
		}
		if y <= x {
			j++
		}
		n++
	}
	return n + (len(a) - i) + (len(b) - j)
}

// insertSorted inserts v into sorted slice s if absent.
func insertSorted(s []uint32, v uint32) []uint32 {
	lo := 0
	hi := len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == v {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = v
	return s
}

// containsSorted reports whether sorted slice s contains v.
func containsSorted(s []uint32, v uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}
