// Package explore implements Kaleido's embedding exploration engine (§3.1,
// §4): canonical-filtered vertex- and edge-induced expansion over a CSE,
// parallel iteration with prediction-based load balancing (§4.2), and
// automatic spilling of large levels to hybrid disk storage (§4.1).
package explore

import "kaleido/internal/graph"

// CanonicalVertex implements the incremental form of Definition 2: it
// reports whether appending candidate vertex cand to the canonical embedding
// emb keeps it canonical. The three properties of Definition 2:
//
//	(i)   cand must exceed the first vertex;
//	(ii)  cand must neighbor some embedding vertex (with a = the first such
//	      position);
//	(iii) every vertex after position a must be smaller than cand.
//
// Duplicate vertices are rejected. Assuming emb itself is canonical, the
// extension enumerates every connected induced subgraph exactly once.
//
// This is the O(k·log d̄) reference implementation, kept for external
// engines and as the oracle of the differential tests. The exploration hot
// path does not call it: the expansion loop uses the fused filter
// (vertexState.canonical / edgeState.canonical), which derives property
// (ii)'s attachment position from merge provenance and checks (i)+(iii)
// with two integer comparisons against precomputed suffix maxima.
func CanonicalVertex(g *graph.Graph, emb []uint32, cand uint32) bool {
	if cand <= emb[0] {
		return false
	}
	first := -1
	for i, v := range emb {
		if v == cand {
			return false
		}
		if first == -1 && g.HasEdge(v, cand) {
			first = i
			// Keep scanning: later positions must be checked for
			// duplicates and for property (iii).
			continue
		}
		if first >= 0 && v >= cand {
			return false
		}
	}
	return first >= 0
}

// CanonicalEdge is the edge-induced analogue of CanonicalVertex: embeddings
// are sequences of edge ids, adjacency is sharing an endpoint, and ordering
// is by edge id. emb holds the edge ids of the current embedding.
func CanonicalEdge(g *graph.Graph, emb []uint32, cand uint32) bool {
	if cand <= emb[0] {
		return false
	}
	ce := g.EdgeAt(cand)
	first := -1
	for i, eid := range emb {
		if eid == cand {
			return false
		}
		e := g.EdgeAt(eid)
		adjacent := e.U == ce.U || e.U == ce.V || e.V == ce.U || e.V == ce.V
		if first == -1 && adjacent {
			first = i
			continue
		}
		if first >= 0 && eid >= cand {
			return false
		}
	}
	return first >= 0
}

// mergeUnion writes the sorted union of sorted slices a and b into dst
// (which is reset) and returns it.
func mergeUnion(dst, a, b []uint32) []uint32 {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// mergeUnionProv writes the sorted union of candidate buffer a and sorted
// list b into dst, carrying provenance: candidates from a keep their
// firstAdj position, candidates only in b get bPos. Ties keep a's position —
// every provenance in a precedes bPos by construction (a covers earlier
// embedding positions), so the result is the earliest adjacent position of
// each candidate. dst must not alias a.
func mergeUnionProv(dst, a *candBuf, b []uint32, bPos uint16) {
	ids := dst.ids[:0]
	fa := dst.firstAdj[:0]
	i, j := 0, 0
	for i < len(a.ids) && j < len(b) {
		switch {
		case a.ids[i] < b[j]:
			ids = append(ids, a.ids[i])
			fa = append(fa, a.firstAdj[i])
			i++
		case a.ids[i] > b[j]:
			ids = append(ids, b[j])
			fa = append(fa, bPos)
			j++
		default:
			ids = append(ids, a.ids[i])
			fa = append(fa, a.firstAdj[i])
			i++
			j++
		}
	}
	for ; i < len(a.ids); i++ {
		ids = append(ids, a.ids[i])
		fa = append(fa, a.firstAdj[i])
	}
	for ; j < len(b); j++ {
		ids = append(ids, b[j])
		fa = append(fa, bPos)
	}
	dst.ids, dst.firstAdj = ids, fa
}

// mergeUnionCount returns |a ∪ b| for sorted slices without materializing
// the union — the O(d̄) candidate-size prediction of §4.2 (Fig. 8).
func mergeUnionCount(a, b []uint32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
		n++
	}
	return n + (len(a) - i) + (len(b) - j)
}

// insertSorted inserts v into sorted slice s if absent.
func insertSorted(s []uint32, v uint32) []uint32 {
	lo := 0
	hi := len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s) && s[lo] == v {
		return s
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = v
	return s
}

// containsSorted reports whether sorted slice s contains v.
func containsSorted(s []uint32, v uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}
