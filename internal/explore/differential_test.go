package explore

// Differential tests for the fused canonical filter: the engine's expansion
// (provenance + suffix-maxima comparisons, state.go) must produce exactly
// the embeddings admitted by the O(k·log d̄) reference implementation of
// Definition 2 (CanonicalVertex/CanonicalEdge), at every depth, in both
// exploration modes, on random graphs.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"kaleido/internal/graph"
)

// refExpandVertex expands every embedding with the reference filter.
func refExpandVertex(g *graph.Graph, embs [][]uint32, vf VertexFilter) [][]uint32 {
	var out [][]uint32
	for _, emb := range embs {
		seen := map[uint32]bool{}
		var cands []uint32
		for _, v := range emb {
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					cands = append(cands, u)
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		for _, u := range cands {
			if !CanonicalVertex(g, emb, u) {
				continue
			}
			if vf != nil && !vf(0, emb, u) {
				continue
			}
			child := append(append([]uint32(nil), emb...), u)
			out = append(out, child)
		}
	}
	return out
}

// refExpandEdge expands every edge-id embedding with the reference filter.
func refExpandEdge(g *graph.Graph, embs [][]uint32) [][]uint32 {
	var out [][]uint32
	for _, emb := range embs {
		vset := map[uint32]bool{}
		for _, eid := range emb {
			e := g.EdgeAt(eid)
			vset[e.U] = true
			vset[e.V] = true
		}
		seen := map[uint32]bool{}
		var cands []uint32
		for v := range vset {
			for _, f := range g.IncidentEdges(v) {
				if !seen[f] {
					seen[f] = true
					cands = append(cands, f)
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		for _, f := range cands {
			if !CanonicalEdge(g, emb, f) {
				continue
			}
			child := append(append([]uint32(nil), emb...), f)
			out = append(out, child)
		}
	}
	return out
}

// sortEmbs orders embeddings lexicographically for comparison.
func sortEmbs(embs [][]uint32) {
	sort.Slice(embs, func(i, j int) bool {
		for x := range embs[i] {
			if embs[i][x] != embs[j][x] {
				return embs[i][x] < embs[j][x]
			}
		}
		return false
	})
}

func embsEqual(a, b [][]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func diffSample(got, want [][]uint32) string {
	key := func(e []uint32) string { return fmt.Sprint(e) }
	g, w := map[string]bool{}, map[string]bool{}
	for _, e := range got {
		g[key(e)] = true
	}
	for _, e := range want {
		w[key(e)] = true
	}
	for k := range g {
		if !w[k] {
			return "spurious " + k
		}
	}
	for k := range w {
		if !g[k] {
			return "missing " + k
		}
	}
	return "multiset mismatch (duplicates)"
}

// TestDifferentialFusedCanonicalVertex drives the engine and the reference
// side by side on random graphs and compares every level.
func TestDifferentialFusedCanonicalVertex(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(4*n)+1)
		maxDepth := 3 + rng.Intn(2)
		predict := trial%2 == 0

		e, err := New(Config{Graph: g, Mode: VertexInduced, Threads: 3, Predict: predict})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.InitVertices(nil); err != nil {
			t.Fatal(err)
		}
		ref := make([][]uint32, 0, g.N())
		for v := uint32(0); v < uint32(g.N()); v++ {
			ref = append(ref, []uint32{v})
		}
		for depth := 2; depth <= maxDepth; depth++ {
			if err := e.Expand(bgCtx, nil, nil); err != nil {
				t.Fatal(err)
			}
			ref = refExpandVertex(g, ref, nil)
			got := collect(t, e)
			sortEmbs(ref)
			if !embsEqual(got, ref) {
				t.Fatalf("trial %d depth %d: engine %d embeddings, reference %d: %s",
					trial, depth, len(got), len(ref), diffSample(got, ref))
			}
		}
		e.Close()
	}
}

// TestDifferentialFusedCanonicalVertexWithFilter checks that the fused
// filter composes with a user EmbeddingFilter exactly like the reference.
func TestDifferentialFusedCanonicalVertexWithFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(15)
		g := randomGraph(rng, n, rng.Intn(5*n)+n)
		clique := func(_ int, emb []uint32, cand uint32) bool {
			for _, v := range emb {
				if !g.HasEdge(v, cand) {
					return false
				}
			}
			return true
		}
		e, err := New(Config{Graph: g, Mode: VertexInduced, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.InitVertices(nil); err != nil {
			t.Fatal(err)
		}
		ref := make([][]uint32, 0, g.N())
		for v := uint32(0); v < uint32(g.N()); v++ {
			ref = append(ref, []uint32{v})
		}
		for depth := 2; depth <= 4; depth++ {
			if err := e.Expand(bgCtx, clique, nil); err != nil {
				t.Fatal(err)
			}
			ref = refExpandVertex(g, ref, clique)
			got := collect(t, e)
			sortEmbs(ref)
			if !embsEqual(got, ref) {
				t.Fatalf("trial %d depth %d: engine %d cliques, reference %d: %s",
					trial, depth, len(got), len(ref), diffSample(got, ref))
			}
		}
		e.Close()
	}
}

// TestDifferentialFusedCanonicalEdge is the edge-induced differential test.
func TestDifferentialFusedCanonicalEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(12)
		g := randomGraph(rng, n, rng.Intn(2*n)+1)
		predict := trial%2 == 1

		e, err := New(Config{Graph: g, Mode: EdgeInduced, Threads: 3, Predict: predict})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.InitEdges(nil); err != nil {
			t.Fatal(err)
		}
		ref := make([][]uint32, 0, g.M())
		for f := uint32(0); f < uint32(g.M()); f++ {
			ref = append(ref, []uint32{f})
		}
		for depth := 2; depth <= 3; depth++ {
			if err := e.Expand(bgCtx, nil, nil); err != nil {
				t.Fatal(err)
			}
			ref = refExpandEdge(g, ref)
			got := collect(t, e)
			sortEmbs(ref)
			if !embsEqual(got, ref) {
				t.Fatalf("trial %d depth %d: engine %d embeddings, reference %d: %s",
					trial, depth, len(got), len(ref), diffSample(got, ref))
			}
		}
		e.Close()
	}
}

// TestDifferentialForEachExpansion checks the non-materializing walk against
// the reference on the final expansion step.
func TestDifferentialForEachExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(16)
		g := randomGraph(rng, n, rng.Intn(4*n)+1)

		e, err := New(Config{Graph: g, Mode: VertexInduced, Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.InitVertices(nil); err != nil {
			t.Fatal(err)
		}
		ref := make([][]uint32, 0, g.N())
		for v := uint32(0); v < uint32(g.N()); v++ {
			ref = append(ref, []uint32{v})
		}
		for depth := 2; depth <= 2; depth++ {
			if err := e.Expand(bgCtx, nil, nil); err != nil {
				t.Fatal(err)
			}
			ref = refExpandVertex(g, ref, nil)
		}
		// One more step through ForEachExpansion instead of Expand.
		ref = refExpandVertex(g, ref, nil)
		var got [][]uint32
		gotCh := make(chan []uint32, 64)
		done := make(chan struct{})
		go func() {
			for emb := range gotCh {
				got = append(got, emb)
			}
			close(done)
		}()
		err = e.ForEachExpansion(bgCtx, nil, func(_ int, emb []uint32, cand uint32) error {
			gotCh <- append(append([]uint32(nil), emb...), cand)
			return nil
		})
		close(gotCh)
		<-done
		if err != nil {
			t.Fatal(err)
		}
		sortEmbs(got)
		sortEmbs(ref)
		if !embsEqual(got, ref) {
			t.Fatalf("trial %d: walk %d extensions, reference %d: %s",
				trial, len(got), len(ref), diffSample(got, ref))
		}
		e.Close()
	}
}
