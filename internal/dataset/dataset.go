// Package dataset provides the named evaluation graphs of the Kaleido paper
// (§6.1, Table 1) as seeded synthetic equivalents. The real CiteSeer, MiCo,
// Patents and Youtube files are not redistributable in this offline build, so
// each named dataset is generated with the same label count and average
// degree, a power-law degree distribution, and a scaled-down vertex count so
// the complete experiment suite fits in CI time. The scale factors are part
// of the dataset descriptor and are reported alongside every experiment in
// EXPERIMENTS.md.
package dataset

import (
	"fmt"
	"os"
	"path/filepath"

	"kaleido/internal/gen"
	"kaleido/internal/graph"
)

// Desc describes a named dataset: the paper's original statistics and the
// generation parameters of the synthetic stand-in.
type Desc struct {
	Name string

	// Paper-reported statistics of the original dataset (Table 1).
	PaperVertices int
	PaperEdges    int
	PaperLabels   int
	PaperAvgDeg   int

	// Generation parameters of the synthetic equivalent.
	Cfg gen.Config
}

// Scale reports the linear vertex-count scale factor of the synthetic
// stand-in relative to the paper's dataset.
func (d Desc) Scale() float64 {
	return float64(d.Cfg.N) / float64(d.PaperVertices)
}

// The named datasets of Table 1. Average degree and label count follow the
// paper; vertex counts are scaled so the complete evaluation (three systems,
// all applications) completes in minutes rather than the paper's hours.
var (
	// CiteSeer is small enough to reproduce at full scale.
	CiteSeer = Desc{
		Name:          "citeseer",
		PaperVertices: 3312, PaperEdges: 4536, PaperLabels: 6, PaperAvgDeg: 3,
		Cfg: gen.Config{N: 3312, M: 4536, Alpha: 2.4, NumLabels: 6, LabelSkew: 0.7, Seed: 0xC17E5EE8},
	}
	// MiCo: dense co-authorship graph (avg degree 22 in the paper; 16 here —
	// the densest dataset of the suite, as in the paper). Power-law hubs
	// make the 4-embedding count grow superlinearly in d̄, so the scaled
	// stand-in trades a little density for a CI-sized 4-Motif run.
	MiCo = Desc{
		Name:          "mico",
		PaperVertices: 100000, PaperEdges: 1080298, PaperLabels: 29, PaperAvgDeg: 22,
		Cfg: gen.Config{N: 4000, M: 24000, Alpha: 2.7, NumLabels: 29, LabelSkew: 0.8, Seed: 0x00C0FFEE},
	}
	// Patent: sparse citation graph (avg degree 9) with a two-level label
	// hierarchy (7 categories / 37 sub-categories) for the Fig. 13
	// experiment.
	Patent = Desc{
		Name:          "patent",
		PaperVertices: 3774768, PaperEdges: 16518948, PaperLabels: 37, PaperAvgDeg: 9,
		Cfg: gen.Config{N: 20000, M: 88000, Alpha: 2.8, NumLabels: 37, LabelSkew: 0.6, Seed: 0x9A7E47},
	}
	// Youtube: the largest graph of the suite (avg degree 17 in the paper).
	Youtube = Desc{
		Name:          "youtube",
		PaperVertices: 7065219, PaperEdges: 59811883, PaperLabels: 29, PaperAvgDeg: 17,
		Cfg: gen.Config{N: 30000, M: 210000, Alpha: 2.8, NumLabels: 29, LabelSkew: 0.9, Seed: 0x10073BE},
	}
)

// All lists the four named datasets in the paper's order.
var All = []Desc{CiteSeer, MiCo, Patent, Youtube}

// ByName returns the descriptor for a dataset name.
func ByName(name string) (Desc, error) {
	for _, d := range All {
		if d.Name == name {
			return d, nil
		}
	}
	return Desc{}, fmt.Errorf("dataset: unknown dataset %q (have citeseer, mico, patent, youtube)", name)
}

// Generate builds the synthetic graph for the descriptor.
func Generate(d Desc) (*graph.Graph, error) {
	g, err := gen.PowerLaw(d.Cfg)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", d.Name, err)
	}
	return g, nil
}

// Load returns the dataset graph — degree-order relabeled for cache-aware
// mining — generating and caching it under cacheDir ("" disables caching).
// Cached files store original ids plus the relabel flag, so a cache hit
// reproduces the identical permutation; they are validated on read and
// regenerated on any corruption.
func Load(d Desc, cacheDir string) (*graph.Graph, error) {
	if cacheDir == "" {
		return generateRelabeled(d)
	}
	// The generation parameters are part of the file name so a descriptor
	// change invalidates stale caches.
	path := filepath.Join(cacheDir, fmt.Sprintf("%s-n%d-m%d-s%x.kg", d.Name, d.Cfg.N, d.Cfg.M, d.Cfg.Seed))
	if g, err := graph.LoadFile(path); err == nil {
		return g, nil
	}
	g, err := generateRelabeled(d)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, err
	}
	if err := g.SaveFile(path); err != nil {
		return nil, err
	}
	return g, nil
}

func generateRelabeled(d Desc) (*graph.Graph, error) {
	g, err := Generate(d)
	if err != nil {
		return nil, err
	}
	return graph.Relabel(g)
}

// CoarsenPatentLabels maps the Patent dataset's 37 fine-grained labels onto 7
// coarse categories, reproducing the paper's PA-7 variant (Fig. 13): the
// original graph carries two label levels (category and sub-category of each
// patent).
func CoarsenPatentLabels(g *graph.Graph) (*graph.Graph, error) {
	// Rebuild under original ids so the coarsened graph carries the same
	// id contract (and relabel pass) as its source.
	labels := make([]graph.Label, g.N())
	edges := make([]graph.Edge, 0, g.M())
	for v := 0; v < g.N(); v++ {
		labels[g.OrigID(uint32(v))] = g.Label(uint32(v)) * 7 / 37
	}
	for _, e := range g.Edges() {
		u, v := g.OrigID(e.U), g.OrigID(e.V)
		if u > v {
			u, v = v, u
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	ng, err := graph.FromEdges(g.N(), edges, labels)
	if err != nil || !g.Relabeled() {
		return ng, err
	}
	return graph.Relabel(ng)
}
