package dataset

import (
	"testing"
)

func TestByName(t *testing.T) {
	for _, d := range All {
		got, err := ByName(d.Name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", d.Name, err)
		}
		if got.Name != d.Name {
			t.Fatalf("ByName(%q) returned %q", d.Name, got.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown dataset")
	}
}

func TestGenerateCiteSeer(t *testing.T) {
	g, err := Generate(CiteSeer)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3312 {
		t.Fatalf("N = %d, want 3312", g.N())
	}
	if g.NumLabels() != 6 {
		t.Fatalf("NumLabels = %d, want 6", g.NumLabels())
	}
	// Average degree should be near the paper's value of 3.
	if d := g.AvgDegree(); d < 2.0 || d > 4.0 {
		t.Fatalf("AvgDegree = %.2f, want ≈ 3", d)
	}
}

func TestDatasetShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	for _, d := range All {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			g, err := Generate(d)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.NumLabels() != d.Cfg.NumLabels {
				t.Errorf("NumLabels = %d, want %d", g.NumLabels(), d.Cfg.NumLabels)
			}
			paperDeg := float64(d.PaperAvgDeg)
			if deg := g.AvgDegree(); deg < paperDeg*0.5 || deg > paperDeg*1.5 {
				t.Errorf("AvgDegree = %.2f, paper has %d", deg, d.PaperAvgDeg)
			}
			if s := d.Scale(); s > 1.01 {
				t.Errorf("scale %f > 1", s)
			}
		})
	}
}

func TestLoadCaches(t *testing.T) {
	dir := t.TempDir()
	a, err := Load(CiteSeer, dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(CiteSeer, dir) // second load hits the cache
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("cache changed the graph: %d/%d vs %d/%d", a.N(), a.M(), b.N(), b.M())
	}
}

func TestCoarsenPatentLabels(t *testing.T) {
	g, err := Generate(Patent)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CoarsenPatentLabels(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumLabels() > 7 {
		t.Fatalf("coarse labels = %d, want ≤ 7", c.NumLabels())
	}
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatal("coarsening changed the topology")
	}
	for v := 0; v < g.N(); v++ {
		if want := g.Label(uint32(v)) * 7 / 37; c.Label(uint32(v)) != want {
			t.Fatalf("vertex %d: coarse label %d, want %d", v, c.Label(uint32(v)), want)
		}
	}
}
