package rstream

import (
	"context"
	"math/rand"
	"testing"

	"kaleido/internal/apps"
	"kaleido/internal/graph"
	"kaleido/internal/iso"
	"kaleido/internal/pattern"
)

var bgCtx = context.Background()

func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	for _, e := range [][2]uint32{{0, 1}, {0, 4}, {1, 4}, {1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	for v := 0; v < n; v++ {
		b.SetLabel(uint32(v), graph.Label(rng.Intn(labels)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func opts(t *testing.T, parts, threads int) Options {
	return Options{Partitions: parts, Threads: threads, Dir: t.TempDir()}
}

func TestTriangleCountPaper(t *testing.T) {
	g := paperGraph(t)
	got, _, err := TriangleCount(g, opts(t, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("triangles = %d, want 3", got)
	}
}

func TestTriangleCountMatchesKaleido(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 12+rng.Intn(18), rng.Intn(80), 2)
		want, err := apps.TriangleCount(bgCtx, g, apps.Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := TriangleCount(g, opts(t, 1+rng.Intn(5), 1+rng.Intn(3)))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: rstream = %d, kaleido = %d", trial, got, want)
		}
	}
}

func TestCliqueCountMatchesKaleido(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(rng, 10+rng.Intn(10), rng.Intn(60), 2)
		for k := 3; k <= 4; k++ {
			want, err := apps.CliqueCount(bgCtx, g, k, apps.Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := CliqueCount(g, k, opts(t, 4, 2))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d k=%d: rstream = %d, kaleido = %d", trial, k, got, want)
			}
			if want > 0 && stats.IntermediateBytes == 0 {
				t.Fatalf("trial %d k=%d: no intermediate data recorded", trial, k)
			}
		}
	}
}

func TestMotifCountMatchesKaleido(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		g := randomGraph(rng, 9+rng.Intn(6), rng.Intn(30), 1)
		for k := 3; k <= 4; k++ {
			want, err := apps.MotifCount(bgCtx, g, k, apps.Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := MotifCount(g, k, opts(t, 3, 2))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d motif classes vs %d", trial, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Count != want[i].Count || !iso.Isomorphic(got[i].Pattern, want[i].Pattern) {
					t.Fatalf("trial %d k=%d class %d: %v/%d vs %v/%d",
						trial, k, i, got[i].Pattern, got[i].Count, want[i].Pattern, want[i].Count)
				}
			}
		}
	}
}

// TestFSMMatchesKaleido: with support 1 nothing is pruned and the two
// systems must agree exactly. With higher supports the paper's approximate
// MNI (early stop + tie merging) interacts with level-synchronous pruning
// differently across exploration models: RStream's set-based join reaches an
// embedding through ANY surviving edge subset, while Kaleido extends only
// the canonical prefix — so RStream's frequent set is a superset with
// counts at least as large (see DESIGN.md §6).
func TestFSMMatchesKaleido(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 4; trial++ {
		g := randomGraph(rng, 12+rng.Intn(8), rng.Intn(35), 2)
		for _, support := range []uint64{1, 3} {
			want, err := apps.FSM(bgCtx, g, 4, support, apps.Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := FSM(g, 4, support, opts(t, 4, 2))
			if err != nil {
				t.Fatal(err)
			}
			if support == 1 {
				wp := make([]*pattern.Pattern, len(want))
				wc := make([]uint64, len(want))
				for i := range want {
					wp[i], wc[i] = want[i].Pattern, want[i].Count
				}
				matchCounts(t, got, wp, wc)
				continue
			}
			// Superset property for pruning supports.
			if len(got) < len(want) {
				t.Fatalf("trial %d s=%d: rstream found %d patterns, kaleido %d", trial, support, len(got), len(want))
			}
			for _, w := range want {
				found := false
				for _, gpc := range got {
					if iso.Isomorphic(gpc.Pattern, w.Pattern) {
						found = true
						if gpc.Count < w.Count {
							t.Fatalf("trial %d s=%d: rstream count %d < kaleido %d for %v",
								trial, support, gpc.Count, w.Count, w.Pattern)
						}
						break
					}
				}
				if !found {
					t.Fatalf("trial %d s=%d: kaleido pattern %v missing from rstream", trial, support, w.Pattern)
				}
			}
		}
	}
}

func TestIntermediateDataBlowup(t *testing.T) {
	// The relational join must produce strictly more intermediate bytes than
	// the deduplicated output — the §6.2 blow-up behaviour.
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 30, 120, 1)
	_, stats, err := MotifCount(g, 4, opts(t, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.IntermediateBytes < int64(g.M())*4*10 {
		t.Fatalf("intermediate bytes = %d, expected a joinblow-up well beyond the edge table", stats.IntermediateBytes)
	}
}

func TestValidation(t *testing.T) {
	g := paperGraph(t)
	if _, _, err := CliqueCount(g, 2, Options{}); err == nil {
		t.Fatal("k=2 clique accepted")
	}
	if _, _, err := FSM(g, 2, 1, Options{}); err == nil {
		t.Fatal("k=2 FSM accepted")
	}
	if _, _, err := FSM(g, 4, 0, Options{}); err == nil {
		t.Fatal("support 0 accepted")
	}
	if _, _, err := MotifCount(g, 1, Options{}); err == nil {
		t.Fatal("k=1 motif accepted")
	}
}

func TestPartitionCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 15, 50, 2)
	var ref []PatternCount
	for _, parts := range []int{1, 3, 10} {
		got, _, err := MotifCount(g, 3, opts(t, parts, 2))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("parts=%d: class count differs", parts)
		}
		for i := range got {
			if got[i].Count != ref[i].Count {
				t.Fatalf("parts=%d: counts differ", parts)
			}
		}
	}
}

// matchCounts compares two result sets as multisets under isomorphism.
func matchCounts(t *testing.T, got []PatternCount, wantPats []*pattern.Pattern, wantCounts []uint64) {
	t.Helper()
	if len(got) != len(wantPats) {
		t.Fatalf("%d patterns, want %d", len(got), len(wantPats))
	}
	used := make([]bool, len(wantPats))
	for _, pc := range got {
		found := false
		for i := range wantPats {
			if used[i] || pc.Count != wantCounts[i] {
				continue
			}
			if iso.Isomorphic(pc.Pattern, wantPats[i]) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pattern %v (count %d) has no match", pc.Pattern, pc.Count)
		}
	}
}
