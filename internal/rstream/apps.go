package rstream

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"sync"

	"kaleido/internal/blisslike"
	"kaleido/internal/graph"
	"kaleido/internal/mni"
	"kaleido/internal/pattern"
)

// PatternCount mirrors the Kaleido result type for cross-system comparison.
type PatternCount struct {
	Pattern *pattern.Pattern
	Count   uint64
	Support uint64
}

// TriangleCount counts triangles with RStream's dedicated strategy (§6.2
// notes TC bypasses the relational path): edges stream through partitions
// and each counts common neighbors beyond the larger endpoint.
func TriangleCount(g *graph.Graph, opt Options) (uint64, Stats, error) {
	e, err := newEngine(g, opt)
	if err != nil {
		return 0, Stats{}, err
	}
	defer e.close()
	t, err := e.initEdges(nil)
	if err != nil {
		return 0, e.stats, err
	}
	defer t.remove()
	counts := make([]uint64, e.threads)
	err = e.scanAll(t, func(w int, tuple []uint32) error {
		ed := g.EdgeAt(tuple[0])
		nu, nv := g.Neighbors(ed.U), g.Neighbors(ed.V)
		i, j := 0, 0
		for i < len(nu) && j < len(nv) {
			switch {
			case nu[i] < nv[j]:
				i++
			case nu[i] > nv[j]:
				j++
			default:
				if nu[i] > ed.V {
					counts[w]++
				}
				i++
				j++
			}
		}
		return nil
	})
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, e.stats, err
}

// CliqueCount discovers k-cliques with RStream's edge-induced trick (§6.2):
// k−1 join iterations keep only tuples whose vertex sets are cliques, then
// distinct k-vertex sets are counted. Each clique is reached through many
// spanning edge subsets, so the joins produce substantial intermediate data
// — the behaviour the paper measures (51.2 GB for 4-clique over MiCo).
func CliqueCount(g *graph.Graph, k int, opt Options) (uint64, Stats, error) {
	if k < 3 {
		return 0, Stats{}, fmt.Errorf("rstream: clique size %d < 3", k)
	}
	e, err := newEngine(g, opt)
	if err != nil {
		return 0, Stats{}, err
	}
	defer e.close()
	t, err := e.initEdges(nil)
	if err != nil {
		return 0, e.stats, err
	}
	cliqueEmit := func(verts, tuple []uint32, cand uint32) bool {
		ed := g.EdgeAt(cand)
		nv := countNew(verts, ed)
		if len(verts)+nv > k {
			return false
		}
		// Both endpoints must connect to every existing vertex or be one.
		for _, v := range verts {
			if v != ed.U && !g.HasEdge(v, ed.U) {
				return false
			}
			if v != ed.V && !g.HasEdge(v, ed.V) {
				return false
			}
		}
		return true
	}
	for l := 2; l <= k-1; l++ {
		raw, err := e.join(t, cliqueEmit)
		if err != nil {
			return 0, e.stats, err
		}
		t.remove()
		t, err = e.shuffle(raw, nil)
		if err != nil {
			return 0, e.stats, err
		}
	}
	defer t.remove()
	// Aggregate: count distinct k-vertex sets.
	sets := make([]map[string]struct{}, e.threads)
	for i := range sets {
		sets[i] = map[string]struct{}{}
	}
	err = e.scanAll(t, func(w int, tuple []uint32) error {
		verts := vertexSet(g, tuple, nil)
		if len(verts) != k {
			return nil
		}
		key := make([]byte, 0, 4*k)
		for _, v := range verts {
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		sets[w][string(key)] = struct{}{}
		return nil
	})
	if err != nil {
		return 0, e.stats, err
	}
	merged := map[string]struct{}{}
	for _, s := range sets {
		for k := range s {
			merged[k] = struct{}{}
		}
	}
	return uint64(len(merged)), e.stats, nil
}

// MotifCount counts k-motifs through edge-induced exploration: because
// RStream cannot expand by vertices (§1.2), it iterates up to C(k,2) joins —
// 6 iterations for 4-motifs — and at each level counts tuples that span
// exactly k vertices and are closed (the tuple is the full induced edge set,
// so each induced subgraph is counted exactly once at its edge count).
func MotifCount(g *graph.Graph, k int, opt Options) ([]PatternCount, Stats, error) {
	if k < 2 || k > pattern.MaxK {
		return nil, Stats{}, fmt.Errorf("rstream: motif size %d out of [2,%d]", k, pattern.MaxK)
	}
	e, err := newEngine(g, opt)
	if err != nil {
		return nil, Stats{}, err
	}
	defer e.close()
	t, err := e.initEdges(nil)
	if err != nil {
		return nil, e.stats, err
	}
	budget := func(verts, tuple []uint32, cand uint32) bool {
		return len(verts)+countNew(verts, g.EdgeAt(cand)) <= k
	}
	maxEdges := k * (k - 1) / 2
	type agg struct {
		pat   *pattern.Pattern
		count uint64
	}
	maps := make([]map[uint64]*agg, e.threads)
	for i := range maps {
		maps[i] = map[uint64]*agg{}
	}
	countLevel := func(t *table) error {
		return e.scanAll(t, func(w int, tuple []uint32) error {
			verts := vertexSet(g, tuple, nil)
			if len(verts) != k {
				return nil
			}
			induced := 0
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if g.HasEdge(verts[i], verts[j]) {
						induced++
					}
				}
			}
			if induced != len(tuple) {
				return nil // not closed: counted at its full edge level
			}
			p, err := inducedPattern(g, verts)
			if err != nil {
				return err
			}
			h := blisslike.Hash(p)
			if a, ok := maps[w][h]; ok {
				a.count++
			} else {
				maps[w][h] = &agg{pat: p, count: 1}
			}
			return nil
		})
	}
	if k == 2 {
		maxEdges = 1
	}
	for l := 1; l <= maxEdges; l++ {
		if l > 1 {
			raw, err := e.join(t, budget)
			if err != nil {
				return nil, e.stats, err
			}
			t.remove()
			t, err = e.shuffle(raw, nil)
			if err != nil {
				return nil, e.stats, err
			}
		}
		if l >= k-1 { // fewer than k−1 edges cannot span k vertices
			if err := countLevel(t); err != nil {
				return nil, e.stats, err
			}
		}
	}
	t.remove()
	merged := map[uint64]*agg{}
	for _, m := range maps {
		for h, a := range m {
			if prev, ok := merged[h]; ok {
				prev.count += a.count
			} else {
				merged[h] = a
			}
		}
	}
	var out []PatternCount
	for _, a := range merged {
		out = append(out, PatternCount{Pattern: a.pat, Count: a.count})
	}
	sortCounts(out)
	return out, e.stats, nil
}

// FSM mines frequent subgraphs (k−1 edges, ≤ k vertices, MNI support) with
// join + shuffle + aggregate phases per level, pruning infrequent patterns
// level-synchronously.
func FSM(g *graph.Graph, k int, support uint64, opt Options) ([]PatternCount, Stats, error) {
	if k < 3 || k > pattern.MaxK {
		return nil, Stats{}, fmt.Errorf("rstream: FSM size %d out of [3,%d]", k, pattern.MaxK)
	}
	if support == 0 {
		return nil, Stats{}, fmt.Errorf("rstream: FSM support must be positive")
	}
	e, err := newEngine(g, opt)
	if err != nil {
		return nil, Stats{}, err
	}
	defer e.close()
	freq := frequentEdgePairs(g, support)
	t, err := e.initEdges(func(eid uint32) bool {
		ed := g.EdgeAt(eid)
		return freq[pairKey(g.Label(ed.U), g.Label(ed.V))]
	})
	if err != nil {
		return nil, e.stats, err
	}
	emit := func(verts, tuple []uint32, cand uint32) bool {
		ed := g.EdgeAt(cand)
		if !freq[pairKey(g.Label(ed.U), g.Label(ed.V))] {
			return false
		}
		return len(verts)+countNew(verts, ed) <= k
	}
	var result []PatternCount
	for level := 2; level <= k-1; level++ {
		raw, err := e.join(t, emit)
		if err != nil {
			return nil, e.stats, err
		}
		t.remove()
		t, err = e.shuffle(raw, nil)
		if err != nil {
			return nil, e.stats, err
		}
		merged, err := e.aggregate(t, support)
		if err != nil {
			return nil, e.stats, err
		}
		if level < k-1 {
			// Reduce-side pruning: rewrite the table keeping frequent
			// patterns' tuples only.
			kept, err := e.filterTable(t, func(tuple []uint32) bool {
				p, _, err := tuplePattern(g, tuple)
				if err != nil {
					return false
				}
				p.SortByLabelDegree()
				agg, ok := merged[blisslike.Hash(p)]
				return ok && agg.Frequent()
			})
			if err != nil {
				return nil, e.stats, err
			}
			t.remove()
			t = kept
			continue
		}
		for _, agg := range merged {
			if !agg.Frequent() {
				continue
			}
			result = append(result, PatternCount{Pattern: agg.Pat, Count: agg.Count, Support: agg.Support()})
		}
	}
	t.remove()
	sortCounts(result)
	return result, e.stats, nil
}

// aggregate is the shuffle-to-quick-pattern phase: tuples become patterns
// hashed with the bliss-like labeler, MNI domains tracked per worker.
func (e *engine) aggregate(t *table, support uint64) (map[uint64]*mni.Agg, error) {
	maps := make([]map[uint64]*mni.Agg, e.threads)
	for i := range maps {
		maps[i] = map[uint64]*mni.Agg{}
	}
	err := e.scanAll(t, func(w int, tuple []uint32) error {
		p, verts, err := tuplePattern(e.g, tuple)
		if err != nil {
			return err
		}
		var perm [pattern.MaxK]uint8
		p.SortByLabelDegreeTracked(&perm)
		h := blisslike.Hash(p)
		agg, ok := maps[w][h]
		if !ok {
			agg = mni.NewAgg(p)
			maps[w][h] = agg
		}
		agg.Insert(verts, &perm, support)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mni.MergeMaps(maps, support), nil
}

// filterTable rewrites t keeping tuples approved by keep.
func (e *engine) filterTable(t *table, keep func(tuple []uint32) bool) (*table, error) {
	e.seq++
	out := &table{arity: t.arity}
	names := make([]string, len(t.parts))
	counts := make([]int64, len(t.parts))
	errs := make([]error, len(t.parts))
	var wg sync.WaitGroup
	for p := range t.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			name := e.newTableName("filt", p)
			f, err := os.Create(name)
			if err != nil {
				errs[p] = err
				return
			}
			bw := bufio.NewWriterSize(f, 1<<18)
			err = e.scanPart(t.parts[p], t.arity, func(tu []uint32) error {
				if !keep(tu) {
					return nil
				}
				counts[p]++
				e.addWritten(int64(4 * t.arity))
				return writeTuple(bw, tu)
			})
			if err != nil {
				errs[p] = err
				return
			}
			if err := bw.Flush(); err != nil {
				errs[p] = err
				return
			}
			if err := f.Close(); err != nil {
				errs[p] = err
				return
			}
			names[p] = name
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out.parts = names
	for _, c := range counts {
		out.count += c
	}
	return out, nil
}

// tuplePattern builds the labeled pattern of an edge tuple; verts[i] is the
// graph vertex at pattern index i.
func tuplePattern(g *graph.Graph, tuple []uint32) (*pattern.Pattern, []uint32, error) {
	var verts []uint32
	idx := func(v uint32) int {
		for i, u := range verts {
			if u == v {
				return i
			}
		}
		verts = append(verts, v)
		return len(verts) - 1
	}
	type pe struct{ a, b int }
	edges := make([]pe, len(tuple))
	for i, eid := range tuple {
		ed := g.EdgeAt(eid)
		edges[i] = pe{idx(ed.U), idx(ed.V)}
	}
	p, err := pattern.New(len(verts))
	if err != nil {
		return nil, nil, err
	}
	for i, v := range verts {
		p.Labels[i] = g.Label(v)
	}
	for i := range tuple {
		p.SetEdge(edges[i].a, edges[i].b)
	}
	return p, verts, nil
}

func inducedPattern(g *graph.Graph, verts []uint32) (*pattern.Pattern, error) {
	p, err := pattern.New(len(verts))
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if g.HasEdge(verts[i], verts[j]) {
				p.SetEdge(i, j)
			}
		}
	}
	return p, nil
}

func countNew(verts []uint32, ed graph.Edge) int {
	n := 0
	i := sort.Search(len(verts), func(i int) bool { return verts[i] >= ed.U })
	if i >= len(verts) || verts[i] != ed.U {
		n++
	}
	i = sort.Search(len(verts), func(i int) bool { return verts[i] >= ed.V })
	if i >= len(verts) || verts[i] != ed.V {
		n++
	}
	return n
}

func frequentEdgePairs(g *graph.Graph, support uint64) map[uint32]bool {
	type dom struct{ a, b map[uint32]struct{} }
	doms := map[uint32]*dom{}
	for _, ed := range g.Edges() {
		la, lb := g.Label(ed.U), g.Label(ed.V)
		key := pairKey(la, lb)
		d, ok := doms[key]
		if !ok {
			d = &dom{a: map[uint32]struct{}{}, b: map[uint32]struct{}{}}
			doms[key] = d
		}
		if la == lb {
			d.a[ed.U] = struct{}{}
			d.a[ed.V] = struct{}{}
		} else {
			u, v := ed.U, ed.V
			if la > lb {
				u, v = v, u
			}
			d.a[u] = struct{}{}
			d.b[v] = struct{}{}
		}
	}
	freq := map[uint32]bool{}
	for key, d := range doms {
		m := uint64(len(d.a))
		if len(d.b) > 0 && uint64(len(d.b)) < m {
			m = uint64(len(d.b))
		}
		if m >= support {
			freq[key] = true
		}
	}
	return freq
}

func pairKey(a, b graph.Label) uint32 {
	if a > b {
		a, b = b, a
	}
	return uint32(a)<<16 | uint32(b)
}

func sortCounts(out []PatternCount) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Pattern.Encode() < out[j].Pattern.Encode()
	})
}
