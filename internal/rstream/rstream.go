// Package rstream re-implements the algorithmic core of RStream (Wang et
// al., OSDI 2018) — the out-of-core GRAS baseline of the paper's §6.2 — as a
// relational, partition-streaming engine:
//
//   - only edge-induced exploration is supported (§1.2), so vertex-based
//     problems like motif counting need up to C(k,2) join iterations;
//   - each iteration is a relational all-join of the embedding table with
//     the incident-edge relation, producing duplicated tuples that are
//     written to disk in full before a shuffle phase sorts, deduplicates and
//     filters them — the intermediate-data blow-up the paper measures
//     (1.64 TB for 4-motif over MiCo);
//   - pattern aggregation turns tuples into quick patterns with the
//     bliss-like canonical labeler, as RStream does with bliss.
//
// The X-Stream scatter-gather substrate is not reproduced; tuples stream
// through partition files exactly as RStream's streaming partitions do.
package rstream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
)

// Options configures an RStream-like run.
type Options struct {
	// Partitions is the streaming-partition count (the paper sweeps 10,
	// 20, 50, 100 and keeps the fastest). 0 = 10.
	Partitions int
	Threads    int
	// Dir holds the on-disk tuple tables; "" uses a temp directory removed
	// at the end of the run.
	Dir     string
	Tracker *memtrack.Tracker
}

func (o Options) partitions() int {
	if o.Partitions > 0 {
		return o.Partitions
	}
	return 10
}

func (o Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return 1
}

// Stats reports the run's I/O profile.
type Stats struct {
	// IntermediateBytes is the total tuple bytes written to disk across all
	// join and shuffle phases — the paper's intermediate-data metric.
	IntermediateBytes int64
}

// engine carries one run's state.
type engine struct {
	g       *graph.Graph
	dir     string
	ownDir  bool
	nparts  int
	threads int
	tracker *memtrack.Tracker
	seq     int
	stats   Stats
}

func newEngine(g *graph.Graph, opt Options) (*engine, error) {
	if g == nil {
		return nil, fmt.Errorf("rstream: nil graph")
	}
	e := &engine{g: g, nparts: opt.partitions(), threads: opt.threads(), tracker: opt.Tracker}
	if opt.Dir == "" {
		dir, err := os.MkdirTemp("", "rstream")
		if err != nil {
			return nil, err
		}
		e.dir, e.ownDir = dir, true
	} else {
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, err
		}
		e.dir = opt.Dir
	}
	return e, nil
}

func (e *engine) close() {
	if e.ownDir {
		os.RemoveAll(e.dir)
	}
}

// table is an on-disk relation of fixed-arity edge-id tuples, split into
// streaming partitions.
type table struct {
	arity int
	parts []string
	count int64
}

func (e *engine) newTableName(phase string, part int) string {
	return filepath.Join(e.dir, fmt.Sprintf("t%d.%s.p%d", e.seq, phase, part))
}

func (t *table) remove() {
	for _, p := range t.parts {
		os.Remove(p)
	}
}

// writeTuple appends a tuple to a buffered writer.
func writeTuple(w *bufio.Writer, tuple []uint32) error {
	var buf [4]byte
	for _, u := range tuple {
		binary.LittleEndian.PutUint32(buf[:], u)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// scanPart streams the tuples of one partition file.
func (e *engine) scanPart(path string, arity int, fn func(tuple []uint32) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // empty partition never written
		}
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	tuple := make([]uint32, arity)
	raw := make([]byte, 4*arity)
	for {
		if _, err := io.ReadFull(r, raw); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("rstream: torn tuple in %s: %w", path, err)
		}
		if e.tracker != nil {
			e.tracker.ReadIO(int64(len(raw)))
		}
		for i := range tuple {
			tuple[i] = binary.LittleEndian.Uint32(raw[4*i:])
		}
		if err := fn(tuple); err != nil {
			return err
		}
	}
}

// initEdges materializes R_1: one tuple per edge id passing the filter.
func (e *engine) initEdges(filter func(eid uint32) bool) (*table, error) {
	t := &table{arity: 1}
	e.seq++
	writers := make([]*bufio.Writer, e.nparts)
	files := make([]*os.File, e.nparts)
	for p := 0; p < e.nparts; p++ {
		name := e.newTableName("init", p)
		f, err := os.Create(name)
		if err != nil {
			return nil, err
		}
		files[p] = f
		writers[p] = bufio.NewWriterSize(f, 1<<18)
		t.parts = append(t.parts, name)
	}
	for eid := uint32(0); eid < uint32(e.g.M()); eid++ {
		if filter != nil && !filter(eid) {
			continue
		}
		p := int(eid) % e.nparts
		if err := writeTuple(writers[p], []uint32{eid}); err != nil {
			return nil, err
		}
		t.count++
		e.addWritten(4)
	}
	for p := range writers {
		if err := writers[p].Flush(); err != nil {
			return nil, err
		}
		if err := files[p].Close(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// join performs the all-join R_{k+1} = R_k ⋈ incident edges: every tuple is
// extended by every incident edge not already present (duplicates included —
// each (k+1)-set is produced once per joinable parent). emitFilter is the
// relational selection pushed into the join (vertex budget etc.); tuples are
// deduplicated in the shuffle phase that follows.
func (e *engine) join(t *table, emitFilter func(verts, tuple []uint32, cand uint32) bool) (*table, error) {
	e.seq++
	out := &table{arity: t.arity + 1}
	outNames := make([][]string, e.threads)
	var produced atomic.Int64

	var next atomic.Int64
	errs := make([]error, e.threads)
	var wg sync.WaitGroup
	for w := 0; w < e.threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			writers := make([]*bufio.Writer, e.nparts)
			files := make([]*os.File, e.nparts)
			for p := 0; p < e.nparts; p++ {
				name := e.newTableName(fmt.Sprintf("join.w%d", w), p)
				f, err := os.Create(name)
				if err != nil {
					errs[w] = err
					return
				}
				files[p] = f
				writers[p] = bufio.NewWriterSize(f, 1<<18)
				outNames[w] = append(outNames[w], name)
			}
			verts := make([]uint32, 0, 2*(t.arity+1))
			newTuple := make([]uint32, t.arity+1)
			for {
				pi := int(next.Add(1)) - 1
				if pi >= len(t.parts) {
					break
				}
				err := e.scanPart(t.parts[pi], t.arity, func(tuple []uint32) error {
					verts = vertexSet(e.g, tuple, verts)
					for _, v := range verts {
						for _, eid := range e.g.IncidentEdges(v) {
							if containsU32(tuple, eid) {
								continue
							}
							if emitFilter != nil && !emitFilter(verts, tuple, eid) {
								continue
							}
							insertSortedInto(newTuple, tuple, eid)
							p := int(hashTuple(newTuple)) % e.nparts
							if err := writeTuple(writers[p], newTuple); err != nil {
								return err
							}
							produced.Add(1)
							e.addWritten(int64(4 * len(newTuple)))
						}
					}
					return nil
				})
				if err != nil {
					errs[w] = err
					break
				}
			}
			for p := range writers {
				if err := writers[p].Flush(); err != nil && errs[w] == nil {
					errs[w] = err
				}
				if err := files[p].Close(); err != nil && errs[w] == nil {
					errs[w] = err
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out.count = produced.Load()
	for p := 0; p < e.nparts; p++ {
		for w := 0; w < e.threads; w++ {
			out.parts = append(out.parts, outNames[w][p])
		}
	}
	// Mark the partition grouping: parts are ordered partition-major with
	// e.threads files per partition.
	return out, nil
}

// shuffle sorts each partition, deduplicates tuples, applies the reduce-side
// filter and writes the final relation.
func (e *engine) shuffle(raw *table, keep func(tuple []uint32) bool) (*table, error) {
	e.seq++
	out := &table{arity: raw.arity}
	outNames := make([]string, e.nparts)
	counts := make([]int64, e.nparts)
	perPart := len(raw.parts) / e.nparts

	var next atomic.Int64
	errs := make([]error, e.threads)
	var wg sync.WaitGroup
	for w := 0; w < e.threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= e.nparts {
					return
				}
				var tuples []uint32 // flattened in-memory partition buffer
				for i := 0; i < perPart; i++ {
					err := e.scanPart(raw.parts[p*perPart+i], raw.arity, func(tuple []uint32) error {
						tuples = append(tuples, tuple...)
						return nil
					})
					if err != nil {
						errs[w] = err
						return
					}
				}
				if e.tracker != nil {
					// The sort buffer is the phase's resident footprint.
					e.tracker.Alloc(int64(len(tuples)) * 4)
					defer e.tracker.Free(int64(len(tuples)) * 4)
				}
				n := len(tuples) / raw.arity
				idx := make([]int, n)
				for i := range idx {
					idx[i] = i
				}
				sort.Slice(idx, func(a, b int) bool {
					ta := tuples[idx[a]*raw.arity : idx[a]*raw.arity+raw.arity]
					tb := tuples[idx[b]*raw.arity : idx[b]*raw.arity+raw.arity]
					for i := range ta {
						if ta[i] != tb[i] {
							return ta[i] < tb[i]
						}
					}
					return false
				})
				name := e.newTableName("shuf", p)
				f, err := os.Create(name)
				if err != nil {
					errs[w] = err
					return
				}
				bw := bufio.NewWriterSize(f, 1<<18)
				var prev []uint32
				for _, i := range idx {
					tu := tuples[i*raw.arity : i*raw.arity+raw.arity]
					if prev != nil && equalU32(prev, tu) {
						continue
					}
					prev = tu
					if keep != nil && !keep(tu) {
						continue
					}
					if err := writeTuple(bw, tu); err != nil {
						errs[w] = err
						return
					}
					counts[p]++
					e.addWritten(int64(4 * raw.arity))
				}
				if err := bw.Flush(); err != nil {
					errs[w] = err
					return
				}
				if err := f.Close(); err != nil {
					errs[w] = err
					return
				}
				outNames[p] = name
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	raw.remove()
	out.parts = outNames
	for _, c := range counts {
		out.count += c
	}
	return out, nil
}

// scanAll streams every tuple of a table through fn, partition by partition,
// parallel over partitions.
func (e *engine) scanAll(t *table, fn func(worker int, tuple []uint32) error) error {
	var next atomic.Int64
	errs := make([]error, e.threads)
	var wg sync.WaitGroup
	for w := 0; w < e.threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				p := int(next.Add(1)) - 1
				if p >= len(t.parts) {
					return
				}
				if err := e.scanPart(t.parts[p], t.arity, func(tu []uint32) error {
					return fn(w, tu)
				}); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *engine) addWritten(n int64) {
	atomic.AddInt64(&e.stats.IntermediateBytes, n)
	if e.tracker != nil {
		e.tracker.WriteIO(n)
	}
}

// vertexSet returns the sorted distinct vertices of an edge tuple.
func vertexSet(g *graph.Graph, tuple []uint32, buf []uint32) []uint32 {
	buf = buf[:0]
	for _, eid := range tuple {
		ed := g.EdgeAt(eid)
		buf = insertSorted(buf, ed.U)
		buf = insertSorted(buf, ed.V)
	}
	return buf
}

func insertSorted(s []uint32, v uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// insertSortedInto writes sorted(tuple ∪ {v}) into dst (len(tuple)+1).
func insertSortedInto(dst, tuple []uint32, v uint32) {
	i := 0
	for i < len(tuple) && tuple[i] < v {
		dst[i] = tuple[i]
		i++
	}
	dst[i] = v
	copy(dst[i+1:], tuple[i:])
}

func containsU32(s []uint32, v uint32) bool {
	for _, u := range s {
		if u == v {
			return true
		}
	}
	return false
}

func equalU32(a, b []uint32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hashTuple(t []uint32) uint32 {
	h := uint32(2166136261)
	for _, u := range t {
		h ^= u
		h *= 16777619
	}
	return h
}
