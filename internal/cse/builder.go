package cse

import "fmt"

// LevelBuilder assembles a new CSE level from t ordered parts — the output
// side of one exploration iteration (paper Fig. 7). Part i receives the
// child groups of the i-th contiguous range of parent embeddings; distinct
// parts may be written concurrently, each by a single goroutine. Finish
// stitches the parts into a LevelData in part order.
type LevelBuilder interface {
	// Part returns the writer for part i in [0, Parts()).
	Part(i int) PartWriter
	// Parts returns the number of parts.
	Parts() int
	// Finish completes the level. All parts must have been flushed.
	Finish() (LevelData, error)
	// Abort discards the partially built level.
	Abort() error
}

// PartWriter receives the children of consecutive parent embeddings.
type PartWriter interface {
	// AppendGroup appends the children of the next parent embedding. preds
	// optionally carries each child's predicted candidate size for the
	// §4.2 load balancer; it must be all-nil or always len(children) within
	// a level.
	AppendGroup(children []uint32, preds []uint32) error
	// Flush completes the part.
	Flush() error
}

// MemLevelBuilder builds an in-memory level. It is reusable: Reset prepares
// it for another level while keeping the per-part buffer capacity, so a
// steady-state exploration loop appends into already-sized buffers instead
// of regrowing every part from nil each iteration.
type MemLevelBuilder struct {
	parts []memPart
}

// NewMemLevelBuilder returns a builder with n parts.
func NewMemLevelBuilder(n int) *MemLevelBuilder {
	return &MemLevelBuilder{parts: make([]memPart, n)}
}

// Reset re-arms the builder for a new level of n parts, retaining the
// buffers of previously built levels.
func (b *MemLevelBuilder) Reset(n int) {
	if cap(b.parts) < n {
		parts := make([]memPart, n)
		copy(parts, b.parts) // keep the grown buffers of existing parts
		b.parts = parts
	} else {
		b.parts = b.parts[:n]
	}
	for i := range b.parts {
		p := &b.parts[i]
		p.verts = p.verts[:0]
		p.counts = p.counts[:0]
		p.segs = p.segs[:0]
		p.open = PredSeg{}
		p.pred = false
	}
}

// maxPartReserve caps a single part's pre-sized capacity (in units) so a
// wildly overestimated prediction cannot balloon resident memory.
const maxPartReserve = 1 << 27

// ReservePart pre-grows part i's buffers to hold about verts child units in
// groups groups — the §4.2 prediction-driven pre-sizing that replaces
// append-doubling during cold-start expansion with one up-front allocation.
// It is a hint, not a limit: parts still grow on demand past the reserve.
func (b *MemLevelBuilder) ReservePart(i, verts, groups int) {
	p := &b.parts[i]
	if verts > maxPartReserve {
		verts = maxPartReserve
	}
	if verts > cap(p.verts) {
		s := make([]uint32, len(p.verts), verts)
		copy(s, p.verts)
		p.verts = s
	}
	if groups > cap(p.counts) {
		s := make([]uint32, len(p.counts), groups)
		copy(s, p.counts)
		p.counts = s
	}
}

type memPart struct {
	verts  []uint32
	counts []uint32 // children per parent group
	segs   []PredSeg
	open   PredSeg
	pred   bool
}

// Part implements LevelBuilder.
func (b *MemLevelBuilder) Part(i int) PartWriter { return &b.parts[i] }

// Parts implements LevelBuilder.
func (b *MemLevelBuilder) Parts() int { return len(b.parts) }

// Finish implements LevelBuilder.
func (b *MemLevelBuilder) Finish() (LevelData, error) {
	total, groups := 0, 0
	pred := false
	for i := range b.parts {
		total += len(b.parts[i].verts)
		groups += len(b.parts[i].counts)
		if b.parts[i].pred {
			pred = true
		}
	}
	m := &MemLevel{
		Verts: make([]uint32, 0, total),
		Offs:  make([]uint64, 1, groups+1),
	}
	for i := range b.parts {
		p := &b.parts[i]
		if pred != p.pred && len(p.verts) > 0 {
			return nil, fmt.Errorf("cse: mixed prediction state across parts")
		}
		m.Verts = append(m.Verts, p.verts...)
		for _, c := range p.counts {
			m.Offs = append(m.Offs, m.Offs[len(m.Offs)-1]+uint64(c))
		}
		if pred {
			m.Pred = append(m.Pred, p.segs...)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Abort implements LevelBuilder.
func (b *MemLevelBuilder) Abort() error {
	b.parts = nil
	return nil
}

// AppendGroup implements PartWriter.
func (p *memPart) AppendGroup(children []uint32, preds []uint32) error {
	p.verts = append(p.verts, children...)
	p.counts = append(p.counts, uint32(len(children)))
	if preds != nil {
		if len(preds) != len(children) {
			return fmt.Errorf("cse: %d preds for %d children", len(preds), len(children))
		}
		p.pred = true
		for _, w := range preds {
			p.open.Leaves++
			p.open.Work += uint64(w)
			if p.open.Leaves == PredictChunk {
				p.segs = append(p.segs, p.open)
				p.open = PredSeg{}
			}
		}
	}
	return nil
}

// Flush implements PartWriter.
func (p *memPart) Flush() error {
	if p.open.Leaves > 0 {
		p.segs = append(p.segs, p.open)
		p.open = PredSeg{}
	}
	return nil
}
