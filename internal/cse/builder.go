package cse

import (
	"fmt"
	"sync"
)

// LevelBuilder assembles a new CSE level from t ordered parts — the output
// side of one exploration iteration (paper Fig. 7). Part i receives the
// child groups of the i-th contiguous range of parent embeddings; distinct
// parts may be written concurrently, each by a single goroutine. Finish
// stitches the parts into a LevelData in part order.
type LevelBuilder interface {
	// Part returns the writer for part i in [0, Parts()).
	Part(i int) PartWriter
	// Parts returns the number of parts.
	Parts() int
	// Finish completes the level. All parts must have been flushed.
	Finish() (LevelData, error)
	// Abort discards the partially built level.
	Abort() error
}

// PartWriter receives the children of consecutive parent embeddings.
type PartWriter interface {
	// AppendGroup appends the children of the next parent embedding. preds
	// optionally carries each child's predicted candidate size for the
	// §4.2 load balancer; it must be all-nil or always len(children) within
	// a level.
	AppendGroup(children []uint32, preds []uint32) error
	// Flush completes the part.
	Flush() error
}

// MemLevelBuilder builds an in-memory level. It is reusable: Reset prepares
// it for another level while keeping the per-part buffer capacity, so a
// steady-state exploration loop appends into already-sized buffers instead
// of regrowing every part from nil each iteration.
//
// Finish streams: whenever the flushed parts form a contiguous prefix, the
// flushing worker copies that prefix into the final arrays while the other
// workers are still expanding, so by the time Finish runs only the
// last-flushed part (usually) remains to drain — the per-part memmove
// overlaps the computation instead of serializing after it.
type MemLevelBuilder struct {
	parts []memPart

	mu           sync.Mutex
	flushed      []bool
	drained      int       // parts whose offs/pred are drained into out
	vertsDrained int       // parts whose verts are copied into out (≤ drained)
	out          *MemLevel // final arrays, assembled incrementally in part order

	sawPred          bool // some part recorded §4.2 predictions
	sawPlainNonEmpty bool // some non-empty part recorded none

	// reserveVerts/reserveGroups accumulate the §4.2 pre-sizing hints so the
	// final arrays are allocated once, at their predicted full size.
	reserveVerts, reserveGroups int
	// trustReserve marks the verts reserve as a dependable §4.2 estimate,
	// enabling the streaming verts drain; guessed reserves (fan-out
	// extrapolation) keep the exact single allocation at Finish.
	trustReserve bool
}

// NewMemLevelBuilder returns a builder with n parts.
func NewMemLevelBuilder(n int) *MemLevelBuilder {
	b := &MemLevelBuilder{}
	b.Reset(n)
	return b
}

// Reset re-arms the builder for a new level of n parts, retaining the
// buffers of previously built levels.
func (b *MemLevelBuilder) Reset(n int) {
	if cap(b.parts) < n {
		parts := make([]memPart, n)
		copy(parts, b.parts) // keep the grown buffers of existing parts
		b.parts = parts
	} else {
		b.parts = b.parts[:n]
	}
	for i := range b.parts {
		p := &b.parts[i]
		p.verts = p.verts[:0]
		p.counts = p.counts[:0]
		p.acc.Reset()
		p.pred = false
	}
	if cap(b.flushed) < n {
		b.flushed = make([]bool, n)
	} else {
		b.flushed = b.flushed[:n]
		for i := range b.flushed {
			b.flushed[i] = false
		}
	}
	b.drained = 0
	b.vertsDrained = 0
	b.out = nil
	b.sawPred, b.sawPlainNonEmpty = false, false
	b.reserveVerts, b.reserveGroups = 0, 0
	b.trustReserve = false
}

// TrustReserve declares the accumulated verts reserve a dependable size
// estimate (§4.2 prediction totals — exact upper bounds without sampling,
// close ones with), so Finish may stream the verts memmove into the final
// array as parts flush instead of waiting for the exact total. If the
// reserve still undershoots, streaming stops at its capacity and Finish
// falls back to the exact single allocation.
func (b *MemLevelBuilder) TrustReserve() { b.trustReserve = true }

// maxPartReserve caps a single part's pre-sized capacity (in units) so a
// wildly overestimated prediction cannot balloon resident memory.
const maxPartReserve = 1 << 27

// ReservePart pre-grows part i's buffers to hold about verts child units in
// groups groups — the §4.2 prediction-driven pre-sizing that replaces
// append-doubling during cold-start expansion with one up-front allocation.
// It is a hint, not a limit: parts still grow on demand past the reserve.
func (b *MemLevelBuilder) ReservePart(i, verts, groups int) {
	p := &b.parts[i]
	if verts > maxPartReserve {
		verts = maxPartReserve
	}
	if verts > cap(p.verts) {
		s := make([]uint32, len(p.verts), verts)
		copy(s, p.verts)
		p.verts = s
	}
	if groups > cap(p.counts) {
		s := make([]uint32, len(p.counts), groups)
		copy(s, p.counts)
		p.counts = s
	}
	b.reserveVerts += verts
	b.reserveGroups += groups
}

type memPart struct {
	b      *MemLevelBuilder
	idx    int
	verts  []uint32
	counts []uint32 // children per parent group
	acc    PredAccum
	pred   bool
}

// Part implements LevelBuilder.
func (b *MemLevelBuilder) Part(i int) PartWriter {
	p := &b.parts[i]
	p.b, p.idx = b, i
	return p
}

// Parts implements LevelBuilder.
func (b *MemLevelBuilder) Parts() int { return len(b.parts) }

// noteFlushed records part i as complete and drains the contiguous flushed
// prefix into the final arrays.
func (b *MemLevelBuilder) noteFlushed(i int) {
	b.mu.Lock()
	b.flushed[i] = true
	for b.drained < len(b.parts) && b.flushed[b.drained] {
		b.drainLocked(b.drained)
		b.drained++
	}
	b.mu.Unlock()
}

// drainLocked folds part i into the final arrays. Caller holds b.mu. The
// offs transform and prediction segments always stream; the verts memmove
// streams only while the final array's reserved capacity covers it — growing
// it here would pay append-doubling copies on every level, so when the §4.2
// (or fan-out) reserve runs out, the remaining verts wait for Finish, which
// allocates the exact total once, like a non-streaming build. The part's
// buffers are left intact so Reset keeps their capacity.
func (b *MemLevelBuilder) drainLocked(i int) {
	p := &b.parts[i]
	if b.out == nil {
		rv := 0
		if b.trustReserve {
			rv = b.reserveVerts
		}
		rg := b.reserveGroups
		if len(p.counts) > rg {
			rg = len(p.counts)
		}
		b.out = &MemLevel{
			Verts: make([]uint32, 0, rv),
			Offs:  make([]uint64, 1, rg+1),
		}
	}
	if p.pred {
		b.sawPred = true
	} else if len(p.verts) > 0 {
		b.sawPlainNonEmpty = true
	}
	m := b.out
	if b.trustReserve && b.vertsDrained == i && len(m.Verts)+len(p.verts) <= cap(m.Verts) {
		m.Verts = append(m.Verts, p.verts...)
		b.vertsDrained++
	}
	off := m.Offs[len(m.Offs)-1]
	for _, c := range p.counts {
		off += uint64(c)
		m.Offs = append(m.Offs, off)
	}
	m.Pred = append(m.Pred, p.acc.Segs...)
}

// Finish implements LevelBuilder: parts already drained by their Flush calls
// cost nothing here; any remainder (typically just the last-flushed part,
// plus the verts of parts the streaming reserve could not hold) is drained
// now, with one exact-size allocation.
func (b *MemLevelBuilder) Finish() (LevelData, error) {
	b.mu.Lock()
	for b.drained < len(b.parts) {
		b.drainLocked(b.drained)
		b.drained++
	}
	m := b.out
	if m != nil && b.vertsDrained < len(b.parts) {
		total := 0
		for i := range b.parts {
			total += len(b.parts[i].verts)
		}
		if cap(m.Verts) < total {
			nv := make([]uint32, len(m.Verts), total)
			copy(nv, m.Verts)
			m.Verts = nv
		}
		for i := b.vertsDrained; i < len(b.parts); i++ {
			m.Verts = append(m.Verts, b.parts[i].verts...)
		}
	}
	b.out = nil
	sawPred, sawPlain := b.sawPred, b.sawPlainNonEmpty
	b.mu.Unlock()
	if sawPred && sawPlain {
		return nil, fmt.Errorf("cse: mixed prediction state across parts")
	}
	if m == nil {
		m = &MemLevel{Offs: make([]uint64, 1)}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Abort implements LevelBuilder.
func (b *MemLevelBuilder) Abort() error {
	b.mu.Lock()
	b.parts = nil
	b.flushed = nil
	b.drained = 0
	b.out = nil
	b.mu.Unlock()
	return nil
}

// AppendGroup implements PartWriter.
func (p *memPart) AppendGroup(children []uint32, preds []uint32) error {
	p.verts = append(p.verts, children...)
	p.counts = append(p.counts, uint32(len(children)))
	if preds != nil {
		if len(preds) != len(children) {
			return fmt.Errorf("cse: %d preds for %d children", len(preds), len(children))
		}
		p.pred = true
		p.acc.Add(preds)
	}
	return nil
}

// Flush implements PartWriter: it finalizes the open prediction segment and
// hands the part to the streaming drain.
func (p *memPart) Flush() error {
	p.acc.Flush()
	p.b.noteFlushed(p.idx)
	return nil
}
