package cse

import (
	"math/rand"
	"reflect"
	"testing"
)

// fig4CSE builds the exact CSE of the paper's Fig. 3/Fig. 4 running example
// (vertex ids shifted to 0-based): 5 1-embeddings, 7 canonical 2-embeddings,
// 8 canonical 3-embeddings.
func fig4CSE(t testing.TB) *CSE {
	t.Helper()
	c := New(NewBaseLevel([]uint32{0, 1, 2, 3, 4}))
	l2 := &MemLevel{
		Verts: []uint32{1, 4, 2, 4, 3, 4, 4},
		Offs:  []uint64{0, 2, 4, 6, 7, 7},
	}
	if err := l2.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Push(l2); err != nil {
		t.Fatal(err)
	}
	l3 := &MemLevel{
		Verts: []uint32{2, 4, 2, 3, 3, 4, 3, 4},
		Offs:  []uint64{0, 2, 4, 6, 7, 8, 8, 8},
	}
	if err := l3.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Push(l3); err != nil {
		t.Fatal(err)
	}
	return c
}

// fig3Embeddings are the 8 canonical 3-embeddings s13..s20 of paper Fig. 3,
// 0-based, in CSE order.
var fig3Embeddings = [][]uint32{
	{0, 1, 2}, {0, 1, 4}, {0, 4, 2}, {0, 4, 3},
	{1, 2, 3}, {1, 2, 4}, {1, 4, 3}, {2, 3, 4},
}

func TestExtractPaperExample(t *testing.T) {
	c := fig4CSE(t)
	// §3.1.1 worked example: offset 5 at level 3 is embedding ⟨2,3,5⟩
	// (0-based ⟨1,2,4⟩).
	dst := make([]uint32, 3)
	if err := c.Extract(5, dst); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst, []uint32{1, 2, 4}) {
		t.Fatalf("Extract(5) = %v, want [1 2 4]", dst)
	}
	for i, want := range fig3Embeddings {
		if err := c.Extract(i, dst); err != nil {
			t.Fatalf("Extract(%d): %v", i, err)
		}
		if !reflect.DeepEqual(dst, want) {
			t.Fatalf("Extract(%d) = %v, want %v", i, dst, want)
		}
	}
}

func TestExtractErrors(t *testing.T) {
	c := fig4CSE(t)
	dst := make([]uint32, 3)
	if err := c.Extract(-1, dst); err == nil {
		t.Error("negative index accepted")
	}
	if err := c.Extract(8, dst); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := c.Extract(0, make([]uint32, 2)); err == nil {
		t.Error("short dst accepted")
	}
}

func TestWalkerFullRange(t *testing.T) {
	c := fig4CSE(t)
	w, err := NewWalker(c, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var got [][]uint32
	var changes []int
	for {
		emb, ch, ok := w.Next()
		if !ok {
			break
		}
		got = append(got, append([]uint32(nil), emb...))
		changes = append(changes, ch)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fig3Embeddings) {
		t.Fatalf("walk = %v\nwant %v", got, fig3Embeddings)
	}
	// First emission resets everything; leaf-only advances report level 3;
	// prefix changes report the deepest changed level.
	wantChanges := []int{1, 3, 2, 3, 1, 3, 2, 1}
	if !reflect.DeepEqual(changes, wantChanges) {
		t.Fatalf("changedFrom = %v, want %v", changes, wantChanges)
	}
}

func TestWalkerSubRanges(t *testing.T) {
	c := fig4CSE(t)
	// Every split of [0,8) must concatenate to the full enumeration.
	for split := 0; split <= 8; split++ {
		var got [][]uint32
		for _, r := range [][2]int{{0, split}, {split, 8}} {
			w, err := NewWalker(c, r[0], r[1])
			if err != nil {
				t.Fatalf("split %d: %v", split, err)
			}
			for {
				emb, _, ok := w.Next()
				if !ok {
					break
				}
				got = append(got, append([]uint32(nil), emb...))
			}
			if err := w.Err(); err != nil {
				t.Fatalf("split %d: %v", split, err)
			}
			w.Close()
		}
		if !reflect.DeepEqual(got, fig3Embeddings) {
			t.Fatalf("split %d: walk = %v", split, got)
		}
	}
}

func TestWalkerEmptyRange(t *testing.T) {
	c := fig4CSE(t)
	w, err := NewWalker(c, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := w.Next(); ok {
		t.Fatal("empty range emitted an embedding")
	}
}

func TestWalkerRangeValidation(t *testing.T) {
	c := fig4CSE(t)
	for _, r := range [][2]int{{-1, 3}, {0, 9}, {5, 3}} {
		if _, err := NewWalker(c, r[0], r[1]); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}

func TestWalkerSkipsEmptyGroups(t *testing.T) {
	// Level 2 where parents 0 and 2 have no children at level 3.
	c := New(NewBaseLevel([]uint32{10, 20}))
	if err := c.Push(&MemLevel{Verts: []uint32{5, 6, 7}, Offs: []uint64{0, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	// children: of (10,5): none; of (10,6): [8]; of (20,7): none → then (20,7)? wait
	// parents at level 2 are indices 0..2: groups sizes 0,1,0... last parent must
	// close at len(verts)=1.
	if err := c.Push(&MemLevel{Verts: []uint32{8}, Offs: []uint64{0, 0, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	w, err := NewWalker(c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	emb, ch, ok := w.Next()
	if !ok || !reflect.DeepEqual(append([]uint32(nil), emb...), []uint32{10, 6, 8}) {
		t.Fatalf("got %v ok=%v", emb, ok)
	}
	if ch != 1 {
		t.Fatalf("changedFrom = %d, want 1", ch)
	}
	if _, _, ok := w.Next(); ok {
		t.Fatal("walker emitted past end")
	}
}

func TestPushValidation(t *testing.T) {
	c := New(NewBaseLevel([]uint32{1, 2, 3}))
	// Mismatched group count (2 groups for 3 embeddings).
	err := c.Push(&MemLevel{Verts: []uint32{9}, Offs: []uint64{0, 1, 1}})
	if err == nil {
		t.Fatal("mismatched level accepted")
	}
}

func TestPopAndReplaceTop(t *testing.T) {
	c := fig4CSE(t)
	if err := c.ReplaceTop(&MemLevel{Verts: []uint32{2}, Offs: []uint64{0, 1, 1, 1, 1, 1, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	if c.Top().Len() != 1 {
		t.Fatal("replace did not take effect")
	}
	if err := c.PopTop(); err != nil {
		t.Fatal(err)
	}
	if c.Depth() != 2 {
		t.Fatalf("depth = %d after pop", c.Depth())
	}
	one := New(NewBaseLevel([]uint32{1}))
	if err := one.PopTop(); err == nil {
		t.Fatal("popped base level")
	}
}

func TestMemLevelValidate(t *testing.T) {
	bad := []*MemLevel{
		{Verts: []uint32{1}, Offs: []uint64{1, 1}},    // not starting at 0
		{Verts: []uint32{1}, Offs: []uint64{0, 2, 1}}, // not monotone
		{Verts: []uint32{1}, Offs: []uint64{0, 0}},    // wrong end
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestParentOf(t *testing.T) {
	m := &MemLevel{Verts: []uint32{9, 9, 9, 9}, Offs: []uint64{0, 2, 2, 4}}
	want := []int{0, 0, 2, 2}
	for i, p := range want {
		if got, err := m.ParentOf(i); err != nil || got != p {
			t.Errorf("ParentOf(%d) = %d, %v, want %d", i, got, err, p)
		}
	}
}

func TestBytes(t *testing.T) {
	c := fig4CSE(t)
	want := int64(5*4) + int64(7*4+6*8) + int64(8*4+8*8)
	if c.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", c.Bytes(), want)
	}
}

// TestWalkerRandomTrie builds random tries and checks the walker against
// Extract at every index and for random sub-ranges.
func TestWalkerRandomTrie(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		depth := 2 + rng.Intn(3)
		c := New(NewBaseLevel(randUnits(rng, 1+rng.Intn(6))))
		for l := 2; l <= depth; l++ {
			prev := c.Top().Len()
			var verts []uint32
			offs := make([]uint64, 1, prev+1)
			for p := 0; p < prev; p++ {
				sz := rng.Intn(4)
				verts = append(verts, randUnits(rng, sz)...)
				offs = append(offs, uint64(len(verts)))
			}
			lv := &MemLevel{Verts: verts, Offs: offs}
			if err := lv.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := c.Push(lv); err != nil {
				t.Fatal(err)
			}
		}
		n := c.Top().Len()
		want := make([][]uint32, n)
		for i := 0; i < n; i++ {
			want[i] = make([]uint32, depth)
			if err := c.Extract(i, want[i]); err != nil {
				t.Fatalf("trial %d Extract(%d): %v", trial, i, err)
			}
		}
		lo := 0
		if n > 0 {
			lo = rng.Intn(n + 1)
		}
		hi := lo + rng.Intn(n-lo+1)
		w, err := NewWalker(c, lo, hi)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		i := lo
		for {
			emb, _, ok := w.Next()
			if !ok {
				break
			}
			if !reflect.DeepEqual(append([]uint32(nil), emb...), want[i]) {
				t.Fatalf("trial %d index %d: walk %v, extract %v", trial, i, emb, want[i])
			}
			i++
		}
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		if i != hi {
			t.Fatalf("trial %d: emitted %d..%d, want up to %d", trial, lo, i, hi)
		}
		w.Close()
	}
}

// TestWalkerNextRunMatchesNext: the batch API must enumerate exactly the
// embeddings of the unit API, with changedFrom applying to the first leaf of
// each run and Depth() within a run.
func TestWalkerNextRunMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		depth := 1 + rng.Intn(4)
		c := New(NewBaseLevel(randUnits(rng, 1+rng.Intn(8))))
		for l := 2; l <= depth; l++ {
			prev := c.Top().Len()
			var verts []uint32
			offs := make([]uint64, 1, prev+1)
			for p := 0; p < prev; p++ {
				verts = append(verts, randUnits(rng, rng.Intn(4))...)
				offs = append(offs, uint64(len(verts)))
			}
			if err := c.Push(&MemLevel{Verts: verts, Offs: offs}); err != nil {
				t.Fatal(err)
			}
		}
		n := c.Top().Len()
		lo := 0
		if n > 0 {
			lo = rng.Intn(n + 1)
		}
		hi := lo + rng.Intn(n-lo+1)

		type emit struct {
			emb []uint32
			ch  int
		}
		var unit, batch []emit
		w, err := NewWalker(c, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		for {
			emb, ch, ok := w.Next()
			if !ok {
				break
			}
			unit = append(unit, emit{append([]uint32(nil), emb...), ch})
		}
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		if err := w.Reset(c, lo, hi); err != nil {
			t.Fatal(err)
		}
		for {
			emb, ch, leaves, ok := w.NextRun()
			if !ok {
				break
			}
			for _, u := range leaves {
				emb[depth-1] = u
				batch = append(batch, emit{append([]uint32(nil), emb...), ch})
				ch = depth
			}
		}
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		w.Close()
		if !reflect.DeepEqual(unit, batch) {
			t.Fatalf("trial %d range [%d,%d): unit %v\nbatch %v", trial, lo, hi, unit, batch)
		}
	}
}

func randUnits(rng *rand.Rand, n int) []uint32 {
	s := make([]uint32, n)
	for i := range s {
		s[i] = uint32(rng.Intn(100))
	}
	return s
}

// TestMemBuilderStreamingFinish: parts flushed out of order must still
// assemble in part order, and Finish after the streaming drain must match a
// straight construction — including across a Reset reuse.
func TestMemBuilderStreamingFinish(t *testing.T) {
	build := func(order []int) *MemLevel {
		b := NewMemLevelBuilder(3)
		groups := [][][]uint32{
			{{1, 2}, {}},
			{{3}, {4, 5, 6}},
			{{7}},
		}
		for pi, gs := range groups {
			for _, g := range gs {
				if err := b.Part(pi).AppendGroup(g, nil); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, pi := range order {
			if err := b.Part(pi).Flush(); err != nil {
				t.Fatal(err)
			}
		}
		lvl, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		// Reuse the builder for a second level to check Reset state.
		b.Reset(2)
		if err := b.Part(1).AppendGroup([]uint32{9}, nil); err != nil {
			t.Fatal(err)
		}
		b.Part(1).Flush()
		b.Part(0).Flush()
		lvl2, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if m2 := lvl2.(*MemLevel); len(m2.Verts) != 1 || m2.Verts[0] != 9 || m2.Groups() != 1 {
			t.Fatalf("reused builder produced %+v", m2)
		}
		return lvl.(*MemLevel)
	}
	want := build([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 2, 0}, {0, 2, 1}} {
		got := build(order)
		if !reflect.DeepEqual(got.Verts, want.Verts) || !reflect.DeepEqual(got.Offs, want.Offs) {
			t.Fatalf("flush order %v: level differs (%v/%v vs %v/%v)", order, got.Verts, got.Offs, want.Verts, want.Offs)
		}
	}
	if !reflect.DeepEqual(want.Verts, []uint32{1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("verts = %v", want.Verts)
	}
	if !reflect.DeepEqual(want.Offs, []uint64{0, 2, 2, 3, 6, 7}) {
		t.Fatalf("offs = %v", want.Offs)
	}
}

// TestMemBuilderMixedPredRejected: a non-empty part without predictions
// alongside predicted parts must fail Finish, streamed or not.
func TestMemBuilderMixedPredRejected(t *testing.T) {
	b := NewMemLevelBuilder(2)
	if err := b.Part(0).AppendGroup([]uint32{1}, []uint32{3}); err != nil {
		t.Fatal(err)
	}
	if err := b.Part(1).AppendGroup([]uint32{2}, nil); err != nil {
		t.Fatal(err)
	}
	b.Part(0).Flush()
	b.Part(1).Flush()
	if _, err := b.Finish(); err == nil {
		t.Fatal("mixed prediction state accepted")
	}
}
