package cse

import "fmt"

// Walker enumerates the embeddings of a CSE's top level sequentially over an
// index range, materializing the full unit sequence ⟨u1..uk⟩ of each. It is
// the sequential engine under parallel exploration: each worker walks its own
// range. All level access goes through block cursors, so the per-unit work is
// a slice index increment — the dynamic dispatch and (for disk levels) the
// channel receive of the prefetch stream are paid once per block, not once
// per unit. Only the t range starts use random access (ParentOf).
//
// A Walker is reusable: Reset repositions it over a new range (or a new CSE)
// without reallocating its per-level buffers, and in-memory levels feed the
// walker their backing arrays directly as a single zero-copy block — a
// steady-state Reset over MemLevels allocates nothing. Workers therefore keep
// one Walker each and Reset it per chunk.
type Walker struct {
	k        int
	cur, hi  int // current and end index at level k
	first    bool
	err      error
	prefix   []uint32 // prefix[l-1] = unit of current level-l embedding
	idx      []int    // idx[l-1]   = current global index at level l
	groupEnd []uint64 // groupEnd[l-1] = end boundary of current group at level l (l ≥ 2)

	// Per-level block state: the current decoded vert/bound block and the
	// consumption position within it. MemLevels contribute their backing
	// arrays directly (vcur/bcur stay nil — one zero-copy block); other
	// levels refill from their block cursors.
	vblk [][]uint32
	vpos []int
	bblk [][]uint64
	bpos []int
	vcur []VertBlockCursor
	bcur []BoundBlockCursor

	// Pending run handed out unit-by-unit when the caller mixes in Next.
	run    []uint32
	runPos int

	// Reusable ancestor-chain scratch.
	anca, ancb []int
}

// NewWalker positions a walker over top-level embeddings [lo, hi).
func NewWalker(c *CSE, lo, hi int) (*Walker, error) {
	w := &Walker{}
	if err := w.Reset(c, lo, hi); err != nil {
		return nil, err
	}
	return w, nil
}

// Reset repositions the walker over top-level embeddings [lo, hi) of c,
// closing any cursors of the previous walk and reusing all buffers.
func (w *Walker) Reset(c *CSE, lo, hi int) error {
	w.closeAll()
	k := c.Depth()
	top := c.Top()
	if lo < 0 || hi > top.Len() || lo > hi {
		return fmt.Errorf("cse: walker range [%d,%d) out of [0,%d]", lo, hi, top.Len())
	}
	w.k = k
	w.cur, w.hi = lo, hi
	w.first = true
	w.err = nil
	w.prefix = growU32(w.prefix, k)
	w.idx = growInt(w.idx, k)
	w.groupEnd = growU64(w.groupEnd, k)
	w.vpos = growInt(w.vpos, k)
	w.bpos = growInt(w.bpos, k)
	if cap(w.vcur) < k {
		w.vcur = make([]VertBlockCursor, k)
		w.bcur = make([]BoundBlockCursor, k)
		w.vblk = make([][]uint32, k)
		w.bblk = make([][]uint64, k)
	} else {
		w.vcur = w.vcur[:k]
		w.bcur = w.bcur[:k]
		w.vblk = w.vblk[:k]
		w.bblk = w.bblk[:k]
	}
	for i := 0; i < k; i++ {
		w.vcur[i], w.bcur[i] = nil, nil
		w.vblk[i], w.bblk[i] = nil, nil
		w.vpos[i], w.bpos[i] = 0, 0
	}
	if lo == hi {
		return nil
	}
	// Ancestor chain of the first and last leaf in range.
	a := growInt(w.anca, k)
	b := growInt(w.ancb, k)
	w.anca, w.ancb = a, b
	a[k-1], b[k-1] = lo, hi-1
	for l := k - 1; l >= 1; l-- {
		var err error
		if a[l-1], err = c.Level(l + 1).ParentOf(a[l]); err != nil {
			w.closeAll()
			return fmt.Errorf("cse: walker: parent of %d at level %d: %w", a[l], l+1, err)
		}
		if b[l-1], err = c.Level(l + 1).ParentOf(b[l]); err != nil {
			w.closeAll()
			return fmt.Errorf("cse: walker: parent of %d at level %d: %w", b[l], l+1, err)
		}
	}
	for l := 1; l <= k; l++ {
		lv := c.Level(l)
		w.idx[l-1] = a[l-1]
		if ml, ok := lv.(*MemLevel); ok {
			w.vblk[l-1] = ml.Verts[a[l-1] : b[l-1]+1]
		} else {
			w.vcur[l-1] = lv.VertBlocks(a[l-1], b[l-1]+1)
		}
		if l >= 2 {
			if ml, ok := lv.(*MemLevel); ok && ml.Offs != nil {
				w.bblk[l-1] = ml.Offs[a[l-2]+1:]
			} else {
				w.bcur[l-1] = lv.BoundBlocks(a[l-2])
			}
			ge, ok := w.nextBound(l)
			if !ok {
				err := streamErr(w.boundErr(l), "boundary", l)
				w.closeAll()
				return err
			}
			w.groupEnd[l-1] = ge
		}
	}
	// Materialize the starting prefix for levels 1..k−1; level k units are
	// consumed inside Next/NextRun.
	for l := 1; l < k; l++ {
		v, ok := w.nextVert(l)
		if !ok {
			err := streamErr(w.vertErr(l), "vert", l)
			w.closeAll()
			return err
		}
		w.prefix[l-1] = v
	}
	return nil
}

// ensureVertBlock makes vblk[i][vpos[i]] addressable, pulling decoded blocks
// from the level's cursor as needed; false means the stream ended (or erred).
func (w *Walker) ensureVertBlock(i int) bool {
	for w.vpos[i] >= len(w.vblk[i]) {
		if w.vcur[i] == nil {
			return false
		}
		blk, ok := w.vcur[i].NextBlock()
		if !ok {
			return false
		}
		w.vblk[i], w.vpos[i] = blk, 0
	}
	return true
}

// nextVert returns the next unit of level l.
func (w *Walker) nextVert(l int) (uint32, bool) {
	i := l - 1
	if !w.ensureVertBlock(i) {
		return 0, false
	}
	v := w.vblk[i][w.vpos[i]]
	w.vpos[i]++
	return v, true
}

// nextBound returns the next group end boundary of level l.
func (w *Walker) nextBound(l int) (uint64, bool) {
	i := l - 1
	for w.bpos[i] >= len(w.bblk[i]) {
		if w.bcur[i] == nil {
			return 0, false
		}
		blk, ok := w.bcur[i].NextBlock()
		if !ok {
			return 0, false
		}
		w.bblk[i], w.bpos[i] = blk, 0
	}
	v := w.bblk[i][w.bpos[i]]
	w.bpos[i]++
	return v, true
}

func (w *Walker) vertErr(l int) error {
	if w.vcur[l-1] != nil {
		return w.vcur[l-1].Err()
	}
	return nil
}

func (w *Walker) boundErr(l int) error {
	if w.bcur[l-1] != nil {
		return w.bcur[l-1].Err()
	}
	return nil
}

// NextRun returns the next batch of embeddings sharing one prefix. emb is the
// reused prefix buffer of length Depth(); its leaf slot emb[Depth()-1] is NOT
// filled — each unit of leaves is, in order, the leaf of one embedding, so
// consumers run a tight loop assigning emb[Depth()-1] themselves. leaves is
// only valid until the next walker call; callers must copy it to retain it.
//
// changedFrom is the smallest level (1-based) whose unit differs from the
// previous emission, counting the first embedding of this run — embeddings
// within a run change only at level Depth(). A run never crosses a
// level-(k−1) group boundary, but one group may split into several runs at
// decoded-block seams; continuation runs report changedFrom = Depth().
//
// Use either NextRun or Next on a given walk, not both.
func (w *Walker) NextRun() (emb []uint32, changedFrom int, leaves []uint32, ok bool) {
	if w.err != nil || w.cur >= w.hi {
		return nil, 0, nil, false
	}
	k := w.k
	changed := k
	if k > 1 {
		for uint64(w.cur) >= w.groupEnd[k-1] {
			c := w.advance(k - 1)
			if w.err != nil {
				return nil, 0, nil, false
			}
			if c < changed {
				changed = c
			}
			ge, bok := w.nextBound(k)
			if !bok {
				w.err = streamErr(w.boundErr(k), "boundary", k)
				return nil, 0, nil, false
			}
			w.groupEnd[k-1] = ge
		}
	}
	i := k - 1
	if !w.ensureVertBlock(i) {
		w.err = streamErr(w.vertErr(k), "vert", k)
		return nil, 0, nil, false
	}
	// Clip the run to the group end, the range end, and the decoded block.
	take := len(w.vblk[i]) - w.vpos[i]
	if k > 1 {
		if g := int(w.groupEnd[i] - uint64(w.cur)); g < take {
			take = g
		}
	}
	if r := w.hi - w.cur; r < take {
		take = r
	}
	leaves = w.vblk[i][w.vpos[i] : w.vpos[i]+take]
	w.vpos[i] += take
	w.cur += take
	w.idx[i] = w.cur - 1
	if w.first {
		w.first = false
		changed = 1
	}
	return w.prefix, changed, leaves, true
}

// Next returns the next embedding in range. emb is a reused buffer of length
// Depth(); callers must copy it to retain it. changedFrom is the smallest
// level (1-based) whose unit differs from the previous emission — on the
// first emission it is 1; when only the leaf advanced it is Depth(). Callers
// use it to recompute incremental per-prefix state (candidate sets) only for
// the levels that actually changed.
func (w *Walker) Next() (emb []uint32, changedFrom int, ok bool) {
	if w.runPos < len(w.run) {
		w.prefix[w.k-1] = w.run[w.runPos]
		w.runPos++
		return w.prefix, w.k, true
	}
	emb, ch, leaves, ok := w.NextRun()
	if !ok {
		return nil, 0, false
	}
	w.run, w.runPos = leaves, 1
	w.prefix[w.k-1] = leaves[0]
	return emb, ch, true
}

// advance moves level l to its next embedding, cascading group-boundary
// crossings to lower levels; it returns the smallest level changed.
func (w *Walker) advance(l int) int {
	changed := l
	w.idx[l-1]++
	if l > 1 {
		for uint64(w.idx[l-1]) >= w.groupEnd[l-1] {
			c := w.advance(l - 1)
			if w.err != nil {
				return changed
			}
			if c < changed {
				changed = c
			}
			ge, ok := w.nextBound(l)
			if !ok {
				w.err = streamErr(w.boundErr(l), "boundary", l)
				return changed
			}
			w.groupEnd[l-1] = ge
		}
	}
	v, ok := w.nextVert(l)
	if !ok {
		w.err = streamErr(w.vertErr(l), "vert", l)
		return changed
	}
	w.prefix[l-1] = v
	return changed
}

// Err returns the first stream error encountered, if any.
func (w *Walker) Err() error { return w.err }

// streamErr wraps a cursor error, or reports premature stream end.
func streamErr(err error, kind string, level int) error {
	if err != nil {
		return fmt.Errorf("cse: walker: %s stream at level %d: %w", kind, level, err)
	}
	return fmt.Errorf("cse: walker: %s stream ended early at level %d", kind, level)
}

// Close releases all cursors. The walker stays reusable via Reset.
func (w *Walker) Close() error {
	w.closeAll()
	return nil
}

func (w *Walker) closeAll() {
	for i := range w.vcur {
		if w.vcur[i] != nil {
			w.vcur[i].Close()
			w.vcur[i] = nil
		}
		if w.bcur[i] != nil {
			w.bcur[i].Close()
			w.bcur[i] = nil
		}
		// Drop block references into the walked levels so a pooled idle
		// walker does not keep a replaced or popped level's arrays alive.
		w.vblk[i] = nil
		w.bblk[i] = nil
	}
	w.run, w.runPos = nil, 0
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
