package cse

import "fmt"

// Walker enumerates the embeddings of a CSE's top level sequentially over an
// index range, materializing the full unit sequence ⟨u1..uk⟩ of each. It is
// the sequential engine under parallel exploration: each worker walks its own
// range. All level access is through sequential cursors, so the walk works
// identically over in-memory and on-disk (hybrid) levels; only the t range
// starts use random access (ParentOf).
//
// A Walker is reusable: Reset repositions it over a new range (or a new CSE)
// without reallocating its per-level buffers, and in-memory levels get their
// cursors from walker-owned storage — a steady-state Reset over MemLevels
// allocates nothing. Workers therefore keep one Walker each and Reset it per
// chunk.
type Walker struct {
	k        int
	cur, hi  int // current and end index at level k
	first    bool
	err      error
	prefix   []uint32 // prefix[l-1] = unit of current level-l embedding
	idx      []int    // idx[l-1]   = current global index at level l
	groupEnd []uint64 // groupEnd[l-1] = end boundary of current group at level l (l ≥ 2)
	vertCur  []VertCursor
	boundCur []BoundCursor

	// Reusable ancestor-chain scratch and cursor storage for MemLevels.
	anca, ancb []int
	memVert    []sliceVertCursor
	memBound   []sliceBoundCursor
}

// NewWalker positions a walker over top-level embeddings [lo, hi).
func NewWalker(c *CSE, lo, hi int) (*Walker, error) {
	w := &Walker{}
	if err := w.Reset(c, lo, hi); err != nil {
		return nil, err
	}
	return w, nil
}

// Reset repositions the walker over top-level embeddings [lo, hi) of c,
// closing any cursors of the previous walk and reusing all buffers.
func (w *Walker) Reset(c *CSE, lo, hi int) error {
	w.closeAll()
	k := c.Depth()
	top := c.Top()
	if lo < 0 || hi > top.Len() || lo > hi {
		return fmt.Errorf("cse: walker range [%d,%d) out of [0,%d]", lo, hi, top.Len())
	}
	w.k = k
	w.cur, w.hi = lo, hi
	w.first = true
	w.err = nil
	w.prefix = growU32(w.prefix, k)
	w.idx = growInt(w.idx, k)
	w.groupEnd = growU64(w.groupEnd, k)
	if cap(w.vertCur) < k {
		w.vertCur = make([]VertCursor, k)
		w.boundCur = make([]BoundCursor, k)
		w.memVert = make([]sliceVertCursor, k)
		w.memBound = make([]sliceBoundCursor, k)
	} else {
		w.vertCur = w.vertCur[:k]
		w.boundCur = w.boundCur[:k]
		w.memVert = w.memVert[:k]
		w.memBound = w.memBound[:k]
		for i := range w.vertCur {
			w.vertCur[i] = nil
			w.boundCur[i] = nil
		}
	}
	if lo == hi {
		return nil
	}
	// Ancestor chain of the first and last leaf in range.
	a := growInt(w.anca, k)
	b := growInt(w.ancb, k)
	w.anca, w.ancb = a, b
	a[k-1], b[k-1] = lo, hi-1
	for l := k - 1; l >= 1; l-- {
		a[l-1] = c.Level(l + 1).ParentOf(a[l])
		b[l-1] = c.Level(l + 1).ParentOf(b[l])
	}
	for l := 1; l <= k; l++ {
		lv := c.Level(l)
		w.idx[l-1] = a[l-1]
		if ml, ok := lv.(*MemLevel); ok {
			w.memVert[l-1] = sliceVertCursor{s: ml.Verts[a[l-1] : b[l-1]+1]}
			w.vertCur[l-1] = &w.memVert[l-1]
		} else {
			w.vertCur[l-1] = lv.VertCursor(a[l-1], b[l-1]+1)
		}
		if l >= 2 {
			if ml, ok := lv.(*MemLevel); ok && ml.Offs != nil {
				w.memBound[l-1] = sliceBoundCursor{s: ml.Offs[a[l-2]+1:]}
				w.boundCur[l-1] = &w.memBound[l-1]
			} else {
				w.boundCur[l-1] = lv.BoundCursor(a[l-2])
			}
			ge, ok := w.boundCur[l-1].Next()
			if !ok {
				w.closeAll()
				return fmt.Errorf("cse: walker: missing group boundary at level %d", l)
			}
			w.groupEnd[l-1] = ge
		}
	}
	// Materialize the starting prefix for levels 1..k−1; level k units are
	// consumed inside Next.
	for l := 1; l < k; l++ {
		v, ok := w.vertCur[l-1].Next()
		if !ok {
			w.closeAll()
			return fmt.Errorf("cse: walker: level %d cursor empty at start", l)
		}
		w.prefix[l-1] = v
	}
	return nil
}

// Next returns the next embedding in range. emb is a reused buffer of length
// Depth(); callers must copy it to retain it. changedFrom is the smallest
// level (1-based) whose unit differs from the previous emission — on the
// first emission it is 1; when only the leaf advanced it is Depth(). Callers
// use it to recompute incremental per-prefix state (candidate sets) only for
// the levels that actually changed.
func (w *Walker) Next() (emb []uint32, changedFrom int, ok bool) {
	if w.err != nil || w.cur >= w.hi {
		return nil, 0, false
	}
	changed := w.k
	if w.k > 1 {
		for uint64(w.cur) >= w.groupEnd[w.k-1] {
			c := w.advance(w.k - 1)
			if w.err != nil {
				return nil, 0, false
			}
			if c < changed {
				changed = c
			}
			ge, bok := w.boundCur[w.k-1].Next()
			if !bok {
				w.err = streamErr(w.boundCur[w.k-1].Err(), "boundary", w.k)
				return nil, 0, false
			}
			w.groupEnd[w.k-1] = ge
		}
	}
	v, vok := w.vertCur[w.k-1].Next()
	if !vok {
		w.err = streamErr(w.vertCur[w.k-1].Err(), "vert", w.k)
		return nil, 0, false
	}
	w.prefix[w.k-1] = v
	w.idx[w.k-1] = w.cur
	w.cur++
	if w.first {
		w.first = false
		changed = 1
	}
	return w.prefix, changed, true
}

// advance moves level l to its next embedding, cascading group-boundary
// crossings to lower levels; it returns the smallest level changed.
func (w *Walker) advance(l int) int {
	changed := l
	w.idx[l-1]++
	if l > 1 {
		for uint64(w.idx[l-1]) >= w.groupEnd[l-1] {
			c := w.advance(l - 1)
			if w.err != nil {
				return changed
			}
			if c < changed {
				changed = c
			}
			ge, ok := w.boundCur[l-1].Next()
			if !ok {
				w.err = streamErr(w.boundCur[l-1].Err(), "boundary", l)
				return changed
			}
			w.groupEnd[l-1] = ge
		}
	}
	v, ok := w.vertCur[l-1].Next()
	if !ok {
		w.err = streamErr(w.vertCur[l-1].Err(), "vert", l)
		return changed
	}
	w.prefix[l-1] = v
	return changed
}

// Err returns the first stream error encountered, if any.
func (w *Walker) Err() error { return w.err }

// streamErr wraps a cursor error, or reports premature stream end.
func streamErr(err error, kind string, level int) error {
	if err != nil {
		return fmt.Errorf("cse: walker: %s stream at level %d: %w", kind, level, err)
	}
	return fmt.Errorf("cse: walker: %s stream ended early at level %d", kind, level)
}

// Close releases all cursors. The walker stays reusable via Reset.
func (w *Walker) Close() error {
	w.closeAll()
	return nil
}

func (w *Walker) closeAll() {
	for i, c := range w.vertCur {
		if c != nil {
			c.Close()
			w.vertCur[i] = nil
		}
	}
	for i, c := range w.boundCur {
		if c != nil {
			c.Close()
			w.boundCur[i] = nil
		}
	}
	// Drop references into the walked levels so a pooled idle walker does
	// not keep a replaced or popped level's arrays alive.
	for i := range w.memVert {
		w.memVert[i].s = nil
	}
	for i := range w.memBound {
		w.memBound[i].s = nil
	}
}

func growU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
