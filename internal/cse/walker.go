package cse

import "fmt"

// Walker enumerates the embeddings of a CSE's top level sequentially over an
// index range, materializing the full unit sequence ⟨u1..uk⟩ of each. It is
// the sequential engine under parallel exploration: each worker walks its own
// range. All level access is through sequential cursors, so the walk works
// identically over in-memory and on-disk (hybrid) levels; only the t range
// starts use random access (ParentOf).
type Walker struct {
	k        int
	cur, hi  int // current and end index at level k
	first    bool
	err      error
	prefix   []uint32 // prefix[l-1] = unit of current level-l embedding
	idx      []int    // idx[l-1]   = current global index at level l
	groupEnd []uint64 // groupEnd[l-1] = end boundary of current group at level l (l ≥ 2)
	vertCur  []VertCursor
	boundCur []BoundCursor
}

// NewWalker positions a walker over top-level embeddings [lo, hi).
func NewWalker(c *CSE, lo, hi int) (*Walker, error) {
	k := c.Depth()
	top := c.Top()
	if lo < 0 || hi > top.Len() || lo > hi {
		return nil, fmt.Errorf("cse: walker range [%d,%d) out of [0,%d]", lo, hi, top.Len())
	}
	w := &Walker{
		k: k, cur: lo, hi: hi, first: true,
		prefix:   make([]uint32, k),
		idx:      make([]int, k),
		groupEnd: make([]uint64, k),
		vertCur:  make([]VertCursor, k),
		boundCur: make([]BoundCursor, k),
	}
	if lo == hi {
		return w, nil
	}
	// Ancestor chain of the first and last leaf in range.
	a := make([]int, k)
	b := make([]int, k)
	a[k-1], b[k-1] = lo, hi-1
	for l := k - 1; l >= 1; l-- {
		a[l-1] = c.Level(l + 1).ParentOf(a[l])
		b[l-1] = c.Level(l + 1).ParentOf(b[l])
	}
	for l := 1; l <= k; l++ {
		lv := c.Level(l)
		w.idx[l-1] = a[l-1]
		w.vertCur[l-1] = lv.VertCursor(a[l-1], b[l-1]+1)
		if l >= 2 {
			w.boundCur[l-1] = lv.BoundCursor(a[l-2])
			ge, ok := w.boundCur[l-1].Next()
			if !ok {
				w.closeAll()
				return nil, fmt.Errorf("cse: walker: missing group boundary at level %d", l)
			}
			w.groupEnd[l-1] = ge
		}
	}
	// Materialize the starting prefix for levels 1..k−1; level k units are
	// consumed inside Next.
	for l := 1; l < k; l++ {
		v, ok := w.vertCur[l-1].Next()
		if !ok {
			w.closeAll()
			return nil, fmt.Errorf("cse: walker: level %d cursor empty at start", l)
		}
		w.prefix[l-1] = v
	}
	return w, nil
}

// Next returns the next embedding in range. emb is a reused buffer of length
// Depth(); callers must copy it to retain it. changedFrom is the smallest
// level (1-based) whose unit differs from the previous emission — on the
// first emission it is 1; when only the leaf advanced it is Depth(). Callers
// use it to recompute incremental per-prefix state (candidate sets) only for
// the levels that actually changed.
func (w *Walker) Next() (emb []uint32, changedFrom int, ok bool) {
	if w.err != nil || w.cur >= w.hi {
		return nil, 0, false
	}
	changed := w.k
	if w.k > 1 {
		for uint64(w.cur) >= w.groupEnd[w.k-1] {
			c := w.advance(w.k - 1)
			if w.err != nil {
				return nil, 0, false
			}
			if c < changed {
				changed = c
			}
			ge, bok := w.boundCur[w.k-1].Next()
			if !bok {
				w.err = streamErr(w.boundCur[w.k-1].Err(), "boundary", w.k)
				return nil, 0, false
			}
			w.groupEnd[w.k-1] = ge
		}
	}
	v, vok := w.vertCur[w.k-1].Next()
	if !vok {
		w.err = streamErr(w.vertCur[w.k-1].Err(), "vert", w.k)
		return nil, 0, false
	}
	w.prefix[w.k-1] = v
	w.idx[w.k-1] = w.cur
	w.cur++
	if w.first {
		w.first = false
		changed = 1
	}
	return w.prefix, changed, true
}

// advance moves level l to its next embedding, cascading group-boundary
// crossings to lower levels; it returns the smallest level changed.
func (w *Walker) advance(l int) int {
	changed := l
	w.idx[l-1]++
	if l > 1 {
		for uint64(w.idx[l-1]) >= w.groupEnd[l-1] {
			c := w.advance(l - 1)
			if w.err != nil {
				return changed
			}
			if c < changed {
				changed = c
			}
			ge, ok := w.boundCur[l-1].Next()
			if !ok {
				w.err = streamErr(w.boundCur[l-1].Err(), "boundary", l)
				return changed
			}
			w.groupEnd[l-1] = ge
		}
	}
	v, ok := w.vertCur[l-1].Next()
	if !ok {
		w.err = streamErr(w.vertCur[l-1].Err(), "vert", l)
		return changed
	}
	w.prefix[l-1] = v
	return changed
}

// Err returns the first stream error encountered, if any.
func (w *Walker) Err() error { return w.err }

// streamErr wraps a cursor error, or reports premature stream end.
func streamErr(err error, kind string, level int) error {
	if err != nil {
		return fmt.Errorf("cse: walker: %s stream at level %d: %w", kind, level, err)
	}
	return fmt.Errorf("cse: walker: %s stream ended early at level %d", kind, level)
}

// Close releases all cursors.
func (w *Walker) Close() error {
	w.closeAll()
	return nil
}

func (w *Walker) closeAll() {
	for _, c := range w.vertCur {
		if c != nil {
			c.Close()
		}
	}
	for _, c := range w.boundCur {
		if c != nil {
			c.Close()
		}
	}
}
