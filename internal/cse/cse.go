// Package cse implements Kaleido's Compressed Sparse Embedding structure
// (§3.1.1, Fig. 4): the set of k-embeddings viewed as a sparse k-dimensional
// tensor and stored level by level. Level l holds two arrays:
//
//	vert[l] — the last unit (vertex or edge id) of every l-embedding;
//	off[l]  — one entry per (l−1)-embedding: off[l][i] .. off[l][i+1] is the
//	          slice of vert[l] holding the extensions of embedding i.
//
// Each exploration iteration ascends one dimension of the tensor by pushing
// one more level. The same structure stores vertex-induced embeddings
// (units are vertex ids) and edge-induced embeddings (units are edge ids).
//
// Levels are accessed through the LevelData interface so that a level can
// live in memory (MemLevel), on disk (internal/storage.DiskLevel), or part
// by part in both at once (internal/storage.HybridLevel) — the
// half-memory-half-disk hybrid storage of §4.1.
package cse

import (
	"fmt"
	"sort"
)

// LevelData is one level of a CSE: a verts array plus the offs array that
// groups it under the previous level. Implementations must support cheap
// sequential cursors (the hot path) and occasional random access (used only
// to locate the t partition boundaries of parallel exploration).
type LevelData interface {
	// Len is the number of embeddings in this level (length of verts).
	Len() int
	// Groups is the number of parent embeddings (length of offs minus 1).
	// Level 1 has no parents and returns 0.
	Groups() int
	// VertCursor returns a sequential cursor over verts[lo:hi].
	VertCursor(lo, hi int) VertCursor
	// BoundCursor returns a sequential cursor over the group end boundaries
	// offs[first+1 ... ], i.e. successive values of offs[i+1] starting at
	// parent index first. Level 1 implementations may return nil.
	BoundCursor(first int) BoundCursor
	// VertBlocks returns a block cursor over verts[lo:hi]: the same units as
	// VertCursor(lo, hi), delivered as decoded slices so hot loops iterate
	// plain arrays instead of paying one dynamic call per unit. In-memory
	// levels hand out sub-slices of their backing array (zero copy); disk
	// levels decode one prefetch block at a time.
	VertBlocks(lo, hi int) VertBlockCursor
	// BoundBlocks is the block analogue of BoundCursor(first). Level 1
	// implementations may return nil.
	BoundBlocks(first int) BoundBlockCursor
	// UnitAt returns verts[i] — the random-access read used by Extract; disk
	// levels serve it with one bounded pread instead of a streaming cursor.
	UnitAt(i int) (uint32, error)
	// ParentOf returns the parent index of embedding i: the unique p with
	// offs[p] <= i < offs[p+1]. Level 1 implementations may return 0. Disk
	// levels report read errors instead of guessing a parent.
	ParentOf(i int) (int, error)
	// GroupStart returns offs[g], the index of the first child of group g;
	// g may equal Groups(), addressing one past the last child. Level 1
	// implementations may return 0.
	GroupStart(g int) (uint64, error)
	// Predicted returns the §4.2 load-balance summaries: an ordered list of
	// segments covering all embeddings of the level, each with its total
	// predicted candidate size. Nil when no prediction was recorded.
	Predicted() []PredSeg
	// Bytes is the in-memory footprint of this level (disk levels report
	// only their resident buffers and summaries).
	Bytes() int64
	// Close releases any resources (files, prefetch goroutines).
	Close() error
}

// VertCursor iterates units sequentially.
type VertCursor interface {
	// Next returns the next unit; ok is false once the range is exhausted
	// or a stream error occurred (check Err).
	Next() (unit uint32, ok bool)
	// Err returns the first stream error, if any.
	Err() error
	// Close releases cursor resources.
	Close() error
}

// BoundCursor iterates successive group end positions.
type BoundCursor interface {
	Next() (bound uint64, ok bool)
	Err() error
	Close() error
}

// VertBlockCursor streams decoded unit blocks. A returned block is never
// empty and stays valid only until the following NextBlock call (disk
// implementations reuse one decode buffer).
type VertBlockCursor interface {
	// NextBlock returns the next run of units; ok is false once the range is
	// exhausted or a stream error occurred (check Err).
	NextBlock() ([]uint32, bool)
	Err() error
	Close() error
}

// BoundBlockCursor streams blocks of successive group end positions, with the
// same block validity rules as VertBlockCursor.
type BoundBlockCursor interface {
	NextBlock() ([]uint64, bool)
	Err() error
	Close() error
}

// VertCursorOverBlocks adapts a block cursor to the unit-at-a-time interface,
// so implementations only maintain the block path.
func VertCursorOverBlocks(bc VertBlockCursor) VertCursor {
	return &blockVertCursor{bc: bc}
}

type blockVertCursor struct {
	bc  VertBlockCursor
	blk []uint32
	pos int
}

func (c *blockVertCursor) Next() (uint32, bool) {
	if c.pos >= len(c.blk) {
		blk, ok := c.bc.NextBlock()
		if !ok {
			return 0, false
		}
		c.blk, c.pos = blk, 0
	}
	v := c.blk[c.pos]
	c.pos++
	return v, true
}

func (c *blockVertCursor) Err() error   { return c.bc.Err() }
func (c *blockVertCursor) Close() error { return c.bc.Close() }

// BoundCursorOverBlocks adapts a bound block cursor to the unit interface.
func BoundCursorOverBlocks(bc BoundBlockCursor) BoundCursor {
	return &blockBoundCursor{bc: bc}
}

type blockBoundCursor struct {
	bc  BoundBlockCursor
	blk []uint64
	pos int
}

func (c *blockBoundCursor) Next() (uint64, bool) {
	if c.pos >= len(c.blk) {
		blk, ok := c.bc.NextBlock()
		if !ok {
			return 0, false
		}
		c.blk, c.pos = blk, 0
	}
	v := c.blk[c.pos]
	c.pos++
	return v, true
}

func (c *blockBoundCursor) Err() error   { return c.bc.Err() }
func (c *blockBoundCursor) Close() error { return c.bc.Close() }

// PredictChunk is the granularity of the load balancer's predicted-work
// summaries: one segment per this many embeddings (segments at part seams
// may be shorter).
const PredictChunk = 4096

// PredSeg summarizes the predicted expansion work of a run of consecutive
// embeddings: Leaves embeddings whose predicted candidate sizes sum to Work.
type PredSeg struct {
	Leaves uint32
	Work   uint64
}

// PredAccum accumulates per-child predicted sizes into PredictChunk-sized
// segments — the one shared implementation behind every part writer's §4.2
// bookkeeping.
type PredAccum struct {
	Segs []PredSeg
	open PredSeg
}

// Add folds one group's per-child predictions into the open segment,
// rolling it into Segs at every PredictChunk leaves.
func (a *PredAccum) Add(preds []uint32) {
	for _, w := range preds {
		a.open.Leaves++
		a.open.Work += uint64(w)
		if a.open.Leaves == PredictChunk {
			a.Segs = append(a.Segs, a.open)
			a.open = PredSeg{}
		}
	}
}

// Flush rolls the open partial segment into Segs.
func (a *PredAccum) Flush() {
	if a.open.Leaves > 0 {
		a.Segs = append(a.Segs, a.open)
		a.open = PredSeg{}
	}
}

// Reset clears the accumulator, keeping Segs capacity.
func (a *PredAccum) Reset() {
	a.Segs = a.Segs[:0]
	a.open = PredSeg{}
}

// CSE is a stack of levels. Level 1 (index 0) is the base unit list.
type CSE struct {
	levels []LevelData
}

// New returns a CSE with the given base level.
func New(base LevelData) *CSE {
	return &CSE{levels: []LevelData{base}}
}

// Depth returns the number of levels (the current embedding size).
func (c *CSE) Depth() int { return len(c.levels) }

// Level returns level l (1-based, matching the paper's notation).
func (c *CSE) Level(l int) LevelData { return c.levels[l-1] }

// Top returns the deepest level.
func (c *CSE) Top() LevelData { return c.levels[len(c.levels)-1] }

// Push appends a new deepest level. The new level's group count must match
// the current top's embedding count.
func (c *CSE) Push(l LevelData) error {
	if l.Groups() != c.Top().Len() {
		return fmt.Errorf("cse: new level has %d groups, top has %d embeddings", l.Groups(), c.Top().Len())
	}
	c.levels = append(c.levels, l)
	return nil
}

// PopTop removes and closes the deepest level (used by level-synchronous
// pruning in FSM).
func (c *CSE) PopTop() error {
	if len(c.levels) == 1 {
		return fmt.Errorf("cse: cannot pop base level")
	}
	top := c.levels[len(c.levels)-1]
	c.levels = c.levels[:len(c.levels)-1]
	return top.Close()
}

// ReplaceTop swaps the deepest level for a filtered version with the same
// group count.
func (c *CSE) ReplaceTop(l LevelData) error {
	if l.Groups() != c.levels[len(c.levels)-2].Len() {
		return fmt.Errorf("cse: replacement has %d groups, want %d", l.Groups(), c.levels[len(c.levels)-2].Len())
	}
	old := c.levels[len(c.levels)-1]
	c.levels[len(c.levels)-1] = l
	return old.Close()
}

// Bytes sums the resident footprint of all levels.
func (c *CSE) Bytes() int64 {
	var total int64
	for _, l := range c.levels {
		total += l.Bytes()
	}
	return total
}

// Close releases all levels.
func (c *CSE) Close() error {
	var first error
	for _, l := range c.levels {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Extract materializes the embedding at index idx of the top level — the
// §3.1.1 "obtain an arbitrary embedding" operation, O(k·log) via per-level
// parent searches. The result is written into dst (length Depth()). Each
// level is read with one UnitAt — a single bounded pread on disk levels, no
// streaming cursor.
func (c *CSE) Extract(idx int, dst []uint32) error {
	if len(dst) != c.Depth() {
		return fmt.Errorf("cse: dst length %d, want %d", len(dst), c.Depth())
	}
	for l := c.Depth(); l >= 1; l-- {
		lv := c.levels[l-1]
		if idx < 0 || idx >= lv.Len() {
			return fmt.Errorf("cse: index %d out of range at level %d (len %d)", idx, l, lv.Len())
		}
		u, err := lv.UnitAt(idx)
		if err != nil {
			return fmt.Errorf("cse: level %d index %d: %w", l, idx, err)
		}
		dst[l-1] = u
		if l > 1 {
			p, err := lv.ParentOf(idx)
			if err != nil {
				return fmt.Errorf("cse: level %d parent of %d: %w", l, idx, err)
			}
			idx = p
		}
	}
	return nil
}

// MemLevel is an in-memory CSE level.
type MemLevel struct {
	Verts []uint32
	// Offs groups Verts under the previous level; nil for the base level.
	// When non-nil, len(Offs) = Groups()+1, Offs[0] = 0 and
	// Offs[Groups()] = len(Verts).
	Offs []uint64
	// Pred holds the load-balance segments (may be nil).
	Pred []PredSeg
}

var _ LevelData = (*MemLevel)(nil)

// NewBaseLevel wraps a unit list as a base (level 1) MemLevel.
func NewBaseLevel(units []uint32) *MemLevel {
	return &MemLevel{Verts: units}
}

// Validate checks the structural invariants of the level.
func (m *MemLevel) Validate() error {
	if m.Offs == nil {
		return nil
	}
	if len(m.Offs) < 1 || m.Offs[0] != 0 {
		return fmt.Errorf("cse: offs must start at 0")
	}
	for i := 1; i < len(m.Offs); i++ {
		if m.Offs[i] < m.Offs[i-1] {
			return fmt.Errorf("cse: offs not monotone at %d", i)
		}
	}
	if m.Offs[len(m.Offs)-1] != uint64(len(m.Verts)) {
		return fmt.Errorf("cse: offs end %d, want %d", m.Offs[len(m.Offs)-1], len(m.Verts))
	}
	return nil
}

// Len implements LevelData.
func (m *MemLevel) Len() int { return len(m.Verts) }

// Groups implements LevelData.
func (m *MemLevel) Groups() int {
	if m.Offs == nil {
		return 0
	}
	return len(m.Offs) - 1
}

// VertCursor implements LevelData.
func (m *MemLevel) VertCursor(lo, hi int) VertCursor {
	return &sliceVertCursor{s: m.Verts[lo:hi]}
}

// BoundCursor implements LevelData.
func (m *MemLevel) BoundCursor(first int) BoundCursor {
	if m.Offs == nil {
		return nil
	}
	return &sliceBoundCursor{s: m.Offs[first+1:]}
}

// VertBlocks implements LevelData: the whole range as one zero-copy block.
func (m *MemLevel) VertBlocks(lo, hi int) VertBlockCursor {
	return &sliceVertBlocks{s: m.Verts[lo:hi]}
}

// BoundBlocks implements LevelData: one zero-copy block of end boundaries.
func (m *MemLevel) BoundBlocks(first int) BoundBlockCursor {
	if m.Offs == nil {
		return nil
	}
	return &sliceBoundBlocks{s: m.Offs[first+1:]}
}

// UnitAt implements LevelData.
func (m *MemLevel) UnitAt(i int) (uint32, error) {
	if i < 0 || i >= len(m.Verts) {
		return 0, fmt.Errorf("cse: unit %d out of range %d", i, len(m.Verts))
	}
	return m.Verts[i], nil
}

// ParentOf implements LevelData.
func (m *MemLevel) ParentOf(i int) (int, error) {
	if m.Offs == nil {
		return 0, nil
	}
	// Largest p with Offs[p] <= i.
	p := sort.Search(len(m.Offs), func(x int) bool { return m.Offs[x] > uint64(i) })
	return p - 1, nil
}

// GroupStart implements LevelData.
func (m *MemLevel) GroupStart(g int) (uint64, error) {
	if m.Offs == nil {
		return 0, nil
	}
	if g < 0 || g >= len(m.Offs) {
		return 0, fmt.Errorf("cse: group %d out of range %d", g, len(m.Offs)-1)
	}
	return m.Offs[g], nil
}

// Predicted implements LevelData.
func (m *MemLevel) Predicted() []PredSeg { return m.Pred }

// Bytes implements LevelData.
func (m *MemLevel) Bytes() int64 {
	return int64(len(m.Verts))*4 + int64(len(m.Offs))*8 + int64(len(m.Pred))*16
}

// Close implements LevelData.
func (m *MemLevel) Close() error { return nil }

type sliceVertCursor struct {
	s []uint32
	i int
}

func (c *sliceVertCursor) Next() (uint32, bool) {
	if c.i >= len(c.s) {
		return 0, false
	}
	v := c.s[c.i]
	c.i++
	return v, true
}

func (c *sliceVertCursor) Err() error   { return nil }
func (c *sliceVertCursor) Close() error { return nil }

type sliceBoundCursor struct {
	s []uint64
	i int
}

func (c *sliceBoundCursor) Next() (uint64, bool) {
	if c.i >= len(c.s) {
		return 0, false
	}
	v := c.s[c.i]
	c.i++
	return v, true
}

func (c *sliceBoundCursor) Err() error   { return nil }
func (c *sliceBoundCursor) Close() error { return nil }

type sliceVertBlocks struct {
	s    []uint32
	done bool
}

func (c *sliceVertBlocks) NextBlock() ([]uint32, bool) {
	if c.done || len(c.s) == 0 {
		return nil, false
	}
	c.done = true
	return c.s, true
}

func (c *sliceVertBlocks) Err() error   { return nil }
func (c *sliceVertBlocks) Close() error { return nil }

type sliceBoundBlocks struct {
	s    []uint64
	done bool
}

func (c *sliceBoundBlocks) NextBlock() ([]uint64, bool) {
	if c.done || len(c.s) == 0 {
		return nil, false
	}
	c.done = true
	return c.s, true
}

func (c *sliceBoundBlocks) Err() error   { return nil }
func (c *sliceBoundBlocks) Close() error { return nil }
