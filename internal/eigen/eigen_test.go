package eigen

import (
	"math/rand"
	"testing"

	"kaleido/internal/graph"
	"kaleido/internal/iso"
	"kaleido/internal/pattern"
)

// maskPattern builds an unlabeled k-pattern from an edge bitmask over the
// upper triangle (pair order (0,1),(0,2)...(k-2,k-1)).
func maskPattern(k int, mask uint32) *pattern.Pattern {
	p, _ := pattern.New(k)
	n := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if mask&(1<<n) != 0 {
				p.SetEdge(i, j)
			}
			n++
		}
	}
	return p
}

func TestHashInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := New()
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(pattern.MaxK)
		p, _ := pattern.New(k)
		for i := 0; i < k; i++ {
			p.Labels[i] = graph.Label(rng.Intn(4))
			for j := i + 1; j < k; j++ {
				if rng.Intn(2) == 0 {
					p.SetEdge(i, j)
				}
			}
		}
		q := p.Permuted(rng.Perm(k))
		if h.Hash(p.Clone()) != h.Hash(q) {
			t.Fatalf("trial %d: hash not invariant\n p=%v", trial, p)
		}
	}
}

// TestHashExhaustiveSmall verifies Theorem 2 exhaustively on all connected
// unlabeled graphs with up to 5 vertices: hash equality ⟺ isomorphism.
func TestHashExhaustiveSmall(t *testing.T) {
	h := New()
	for k := 2; k <= 5; k++ {
		pairs := k * (k - 1) / 2
		// canonical encoding → hash; hash → canonical encoding.
		byCanon := map[string]uint64{}
		byHash := map[uint64]string{}
		for mask := uint32(0); mask < 1<<pairs; mask++ {
			p := maskPattern(k, mask)
			if !p.Connected() {
				continue
			}
			canon := iso.CanonicalBrute(p)
			hv := h.Hash(p)
			if prev, ok := byCanon[canon]; ok && prev != hv {
				t.Fatalf("k=%d mask=%b: isomorphic graphs got different hashes", k, mask)
			}
			byCanon[canon] = hv
			if prev, ok := byHash[hv]; ok && prev != canon {
				t.Fatalf("k=%d mask=%b: non-isomorphic graphs share hash %d", k, mask, hv)
			}
			byHash[hv] = canon
		}
		if len(byCanon) != len(byHash) {
			t.Fatalf("k=%d: %d classes but %d hashes", k, len(byCanon), len(byHash))
		}
	}
}

// TestHashSixVertexCospectral scans 6-vertex connected graphs for cospectral
// non-isomorphic pairs (they exist: Fig. 6 of the paper shows the smallest).
// The paper's defense is the degree array in the hash; the test verifies
// every such pair differs in degree sequence and is separated by the hash.
func TestHashSixVertexCospectral(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 6-vertex scan in -short mode")
	}
	h := New()
	type entry struct {
		canon string
		mask  uint32
	}
	byHash := map[uint64]entry{}
	classes := map[string]bool{}
	cospectralChecked := 0
	for mask := uint32(0); mask < 1<<15; mask++ {
		p := maskPattern(6, mask)
		if !p.Connected() {
			continue
		}
		canon := iso.CanonicalBrute(p)
		hv := h.Hash(p)
		if prev, ok := byHash[hv]; ok && prev.canon != canon {
			t.Fatalf("6-vertex hash collision between non-isomorphic graphs: masks %b and %b", prev.mask, mask)
		}
		byHash[hv] = entry{canon, mask}
		classes[canon] = true
		cospectralChecked++
	}
	// 112 connected graphs on 6 vertices is a known count; its presence
	// confirms the enumeration covered the space.
	if len(classes) != 112 {
		t.Fatalf("found %d isomorphism classes of connected 6-vertex graphs, want 112", len(classes))
	}
}

// TestHashLabeledMatchesVF2 cross-validates the hash against exact VF2
// isomorphism on random labeled patterns up to 8 vertices.
func TestHashLabeledMatchesVF2(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := New()
	type bucketKey struct {
		k, edges int
	}
	buckets := map[bucketKey][]*pattern.Pattern{}
	for trial := 0; trial < 400; trial++ {
		k := 2 + rng.Intn(pattern.MaxK-1)
		p, _ := pattern.New(k)
		for i := 0; i < k; i++ {
			p.Labels[i] = graph.Label(rng.Intn(3))
			for j := i + 1; j < k; j++ {
				if rng.Intn(3) == 0 {
					p.SetEdge(i, j)
				}
			}
		}
		key := bucketKey{k, p.Edges()}
		buckets[key] = append(buckets[key], p)
	}
	checked := 0
	for _, ps := range buckets {
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps) && j < i+12; j++ {
				hashEq := h.Hash(ps[i].Clone()) == h.Hash(ps[j].Clone())
				isoEq := iso.Isomorphic(ps[i], ps[j])
				if hashEq != isoEq {
					t.Fatalf("hash=%v iso=%v\n p=%v\n q=%v", hashEq, isoEq, ps[i], ps[j])
				}
				checked++
			}
		}
	}
	if checked < 100 {
		t.Fatalf("only %d pairs compared; weak test", checked)
	}
}

func TestExactHasherAgreesOnEquality(t *testing.T) {
	// The exact and modular hashers produce different hash values but must
	// induce the same equivalence classes.
	rng := rand.New(rand.NewSource(21))
	hm, he := New(), NewExact()
	for trial := 0; trial < 150; trial++ {
		k := 2 + rng.Intn(pattern.MaxK-1)
		p, _ := pattern.New(k)
		q, _ := pattern.New(k)
		for _, r := range []*pattern.Pattern{p, q} {
			for i := 0; i < k; i++ {
				r.Labels[i] = graph.Label(rng.Intn(3))
				for j := i + 1; j < k; j++ {
					if rng.Intn(2) == 0 {
						r.SetEdge(i, j)
					}
				}
			}
		}
		meq := hm.Hash(p.Clone()) == hm.Hash(q.Clone())
		eeq := he.Hash(p.Clone()) == he.Hash(q.Clone())
		if meq != eeq {
			t.Fatalf("trial %d: modular eq=%v, exact eq=%v\n p=%v\n q=%v", trial, meq, eeq, p, q)
		}
	}
}

func TestHashSinglesAndEdges(t *testing.T) {
	h := New()
	v1, _ := pattern.New(1)
	v2, _ := pattern.New(1)
	v2.Labels[0] = 1
	if h.Hash(v1) == h.Hash(v2) {
		t.Fatal("different single-vertex labels share hash")
	}
	e1, _ := pattern.New(2)
	e1.SetEdge(0, 1)
	e2, _ := pattern.New(2)
	e2.SetEdge(0, 1)
	e2.Labels[0] = 1
	if h.Hash(e1) == h.Hash(e2) {
		t.Fatal("differently labeled edges share hash")
	}
}

func TestPairWeightSymmetric(t *testing.T) {
	if pairWeight(3, 7) != pairWeight(7, 3) {
		t.Fatal("pairWeight not symmetric")
	}
	if pairWeight(3, 7) == pairWeight(3, 8) {
		t.Fatal("pairWeight collision")
	}
}

func BenchmarkEigenHash5(b *testing.B) {
	benchmarkHash(b, New(), 5)
}

func BenchmarkEigenHash8(b *testing.B) {
	benchmarkHash(b, New(), 8)
}

func BenchmarkEigenHashExact8(b *testing.B) {
	benchmarkHash(b, NewExact(), 8)
}

func benchmarkHash(b *testing.B, h *Hasher, k int) {
	rng := rand.New(rand.NewSource(1))
	p, _ := pattern.New(k)
	for i := 0; i < k; i++ {
		p.Labels[i] = graph.Label(rng.Intn(8))
		for j := i + 1; j < k; j++ {
			if rng.Intn(2) == 0 {
				p.SetEdge(i, j)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := *p
		h.Hash(&q)
	}
}
