// Package eigen implements Kaleido's lightweight graph-isomorphism hash
// (paper §3.2, Algorithm 1). Instead of building a search tree per pattern
// like bliss, it normalizes the pattern's vertex order by (label, degree),
// forms a label-weighted adjacency matrix, computes its characteristic
// polynomial by Faddeev–LeVerrier, and hashes labels ⊕ degrees ⊕ polynomial.
//
// By Theorem 2 of the paper (building on Harary's cospectral-graph bounds),
// for embeddings with fewer than 9 vertices equal hashes coincide with
// isomorphism. The characteristic polynomial is computed exactly modulo two
// 61-bit primes; both residue vectors enter the hash, so a false merge
// additionally requires a simultaneous double-modular collision.
package eigen

import (
	"kaleido/internal/linalg"
	"kaleido/internal/pattern"
)

// Hasher computes Algorithm 1 hash values. It is stateless except for
// scratch buffers, so one Hasher per worker thread avoids all allocation in
// the hot aggregation loop. A Hasher is not safe for concurrent use.
type Hasher struct {
	exact  bool // use math/big exact coefficients instead of modular fingerprints
	m      [linalg.MaxN * linalg.MaxN]uint64
	mi     [linalg.MaxN * linalg.MaxN]int64
	coeffs [linalg.MaxN + 1]uint64
}

// New returns a Hasher using the default double-modular fingerprint path.
func New() *Hasher { return &Hasher{} }

// NewExact returns a Hasher that computes exact big-integer characteristic
// polynomials. ~10× slower and allocation-heavy; retained for verification
// and for the ablation benchmarks.
func NewExact() *Hasher { return &Hasher{exact: true} }

// Hash computes the isomorphism-invariant hash of p (paper Algorithm 1,
// EigenHash). p is mutated: its vertices are sorted by (label, degree),
// which aggregation callers rely on for MNI domain positions.
func (h *Hasher) Hash(p *pattern.Pattern) uint64 {
	p.SortByLabelDegree()
	k := p.K

	// Weighted adjacency matrix: m[i][j] = pair(l_i, l_j) on edges. After
	// sorting, l_i ≤ l_j for i < j, so pair(a, b) with a = min is stable.
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			h.m[i*k+j] = 0
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if p.HasEdge(i, j) {
				w := pairWeight(uint64(p.Labels[i]), uint64(p.Labels[j]))
				h.m[i*k+j] = w
				h.m[j*k+i] = w
			}
		}
	}

	// hash(L) ⊕ hash(D) ⊕ hash(P), paper line 36.
	hv := fnv1a(fnvOffset, uint64(k))
	for i := 0; i < k; i++ {
		hv = fnv1a(hv, uint64(p.Labels[i]))
	}
	hd := fnvOffset
	for i := 0; i < k; i++ {
		hd = fnv1a(hd, uint64(p.Deg[i]))
	}
	var hp uint64
	if h.exact {
		hp = h.hashPolyExact(k)
	} else {
		hp = h.hashPolyMod(k)
	}
	return hv ^ hd ^ hp
}

func (h *Hasher) hashPolyMod(k int) uint64 {
	hp := fnvOffset
	for _, p := range []uint64{linalg.P1, linalg.P2} {
		coeffs := linalg.CharPolyModInto(h.coeffs[:k+1], h.m[:], k, p)
		for _, c := range coeffs {
			hp = fnv1a(hp, c)
		}
	}
	return hp
}

func (h *Hasher) hashPolyExact(k int) uint64 {
	for i := 0; i < k*k; i++ {
		h.mi[i] = int64(h.m[i])
	}
	coeffs := linalg.CharPolyBig(h.mi[:], k)
	hp := fnvOffset
	for _, c := range coeffs {
		hp = fnv1a(hp, uint64(c.Sign()))
		for _, w := range c.Bits() {
			hp = fnv1a(hp, uint64(w))
		}
	}
	return hp
}

// pairWeight combines two labels into an order-independent edge weight.
// Labels are < 2^16, so the weight is < 2^32 and Faddeev–LeVerrier stays
// exact under both moduli.
func pairWeight(a, b uint64) uint64 {
	if a > b {
		a, b = b, a
	}
	return (a+1)<<16 | (b + 1)
}

const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

// fnv1a folds one 64-bit word into an FNV-1a running hash.
func fnv1a(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime
		w >>= 8
	}
	return h
}
