// Package bench implements the evaluation harness of §6: one experiment per
// table and figure of the paper, each regenerating the same rows or series
// the paper reports, on the scaled synthetic datasets (see DESIGN.md §2 and
// EXPERIMENTS.md for the scale factors and paper-vs-measured numbers).
package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"kaleido/internal/apps"
	"kaleido/internal/arabesque"
	"kaleido/internal/dataset"
	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
	"kaleido/internal/rstream"
	"kaleido/internal/storage"
)

// bgCtx is the uncancellable context of the harness's own runs: experiments
// are driven to completion, not cancelled.
var bgCtx = context.Background()

// RunConfig configures an experiment run.
type RunConfig struct {
	Threads  int
	CacheDir string // dataset cache ("" regenerates)
	SpillDir string // scratch space for hybrid storage and RStream tables
	Quick    bool   // reduced grids for CI

	// SpillWatermark and PredictSample are passed to the hybrid-storage
	// experiments (table4, fig16, fig17) so the paper-artifact runs can
	// sweep the governor watermark and the §4.2 sampling budget.
	SpillWatermark float64
	PredictSample  int

	// Compression and ResidentCompression select the spill codec and the
	// compressed-mem residency tier for the budgeted experiments (table4,
	// fig16, fig17, sinks). Zero values = both on (storage.CompressionAuto).
	// The "compress" and "resident" experiments sweep these dimensions
	// themselves and ignore the knobs.
	Compression         storage.Compression
	ResidentCompression storage.Compression

	// FaultP and FaultSeed parameterize the "faults" campaign: the
	// per-operation probability of each transient fault class (EIO read,
	// EIO write, short write) and the deterministic schedule seed.
	// Zero values mean p=0.01, seed 42.
	FaultP    float64
	FaultSeed int64
}

// Result is one rendered experiment artifact.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats a result as an aligned text table.
func (r Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	rows := append([][]string{r.Header}, r.Rows...)
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteByte('\n')
		if ri == 0 {
			for _, w := range widths {
				sb.WriteString(strings.Repeat("-", w) + "  ")
			}
			sb.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiments lists the available experiment ids in paper order, followed by
// the engine experiments that go beyond the paper's evaluation.
func Experiments() []string {
	return []string{"table2", "table3", "fig11", "fig12", "fig13", "fig14", "table4", "fig16", "fig17", "sinks", "compress", "resident", "concurrent", "faults", "shards", "service"}
}

// Run executes one experiment by id.
func Run(id string, cfg RunConfig) ([]Result, error) {
	switch id {
	case "table2":
		return table2(cfg)
	case "table3":
		return table3(cfg)
	case "fig11":
		return fig11(cfg)
	case "fig12":
		return fig12(cfg)
	case "fig13":
		return fig13(cfg)
	case "fig14":
		return fig14(cfg)
	case "table4":
		return table4(cfg)
	case "fig16":
		return fig16(cfg)
	case "fig17":
		return fig17(cfg)
	case "sinks":
		return sinks(cfg)
	case "compress":
		return compress(cfg)
	case "resident":
		return resident(cfg)
	case "concurrent":
		return concurrent(cfg)
	case "faults":
		return faults(cfg)
	case "shards":
		return shardsExp(cfg)
	case "service":
		return serviceExp(cfg)
	default:
		return nil, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(Experiments(), ", "))
	}
}

// measured is one timed, memory-tracked run.
type measured struct {
	seconds float64
	peak    int64
	skipped string // non-empty = not run, with reason (paper used '-' and '/')
}

func (m measured) timeCell() string {
	if m.skipped != "" {
		return m.skipped
	}
	return fmt.Sprintf("%.2f", m.seconds)
}

func (m measured) memCell() string {
	if m.skipped != "" {
		return m.skipped
	}
	return fmt.Sprintf("%.1f", float64(m.peak)/(1<<20))
}

func timed(fn func(tr *memtrack.Tracker) error) measured {
	tr := memtrack.New()
	start := time.Now()
	if err := fn(tr); err != nil {
		return measured{skipped: "err:" + err.Error()}
	}
	return measured{seconds: time.Since(start).Seconds(), peak: tr.Peak()}
}

// system identifies one of the three compared engines.
type system int

const (
	sysKaleido system = iota
	sysArabesque
	sysRStream
)

var sysNames = []string{"KA", "AR", "RS"}

// workload is one (application, option) cell of Table 2.
type workload struct {
	app    string // "3-FSM", "Motif", "Clique", "TC"
	option uint64 // support or k (0 for TC)
}

func (w workload) String() string {
	if w.app == "TC" {
		return "TC"
	}
	return fmt.Sprintf("%s-%d", w.app, w.option)
}

// runCell executes one workload on one system over one dataset.
func runCell(g *graph.Graph, sys system, w workload, cfg RunConfig) measured {
	threads := cfg.Threads
	return timed(func(tr *memtrack.Tracker) error {
		switch sys {
		case sysKaleido:
			opt := apps.Options{Threads: threads, Tracker: tr}
			switch w.app {
			case "3-FSM":
				_, err := apps.FSM(bgCtx, g, 3, w.option, opt)
				return err
			case "Motif":
				_, err := apps.MotifCount(bgCtx, g, int(w.option), opt)
				return err
			case "Clique":
				_, err := apps.CliqueCount(bgCtx, g, int(w.option), opt)
				return err
			default:
				_, err := apps.TriangleCount(bgCtx, g, opt)
				return err
			}
		case sysArabesque:
			opt := arabesque.Options{Threads: threads, Tracker: tr}
			switch w.app {
			case "3-FSM":
				_, err := arabesque.FSM(g, 3, w.option, opt)
				return err
			case "Motif":
				_, err := arabesque.MotifCount(g, int(w.option), opt)
				return err
			case "Clique":
				_, err := arabesque.CliqueCount(g, int(w.option), opt)
				return err
			default:
				_, err := arabesque.TriangleCount(g, opt)
				return err
			}
		default:
			opt := rstream.Options{Threads: threads, Tracker: tr, Dir: ""}
			switch w.app {
			case "3-FSM":
				_, _, err := rstream.FSM(g, 3, w.option, opt)
				return err
			case "Motif":
				_, _, err := rstream.MotifCount(g, int(w.option), opt)
				return err
			case "Clique":
				_, _, err := rstream.CliqueCount(g, int(w.option), opt)
				return err
			default:
				_, _, err := rstream.TriangleCount(g, opt)
				return err
			}
		}
	})
}

// table2Grid declares which cells run at which dataset scale. The paper's
// own grid has '-' (out of memory) and '/' (out of SSD) holes; ours
// additionally skips cells whose baseline cost explodes at CI scale,
// mirroring the paper's holes where they existed.
func table2Skip(ds string, sys system, w workload, quick bool) string {
	// The paper: RStream ran out of memory on all Youtube workloads but TC.
	if sys == sysRStream && ds == "youtube" && w.app != "TC" {
		return "-"
	}
	// The paper: RStream 4-Motif exceeded the 480 GB SSD on MiCo/Patent.
	if sys == sysRStream && w.app == "Motif" && w.option >= 4 {
		return "/"
	}
	if quick {
		// Reduced grid: baselines only on the two smaller graphs, and the
		// 4-Motif stress test only where it completes in seconds.
		if sys != sysKaleido && (ds == "patent" || ds == "youtube") && w.app != "TC" && !(w.app == "Clique" && w.option == 3) {
			return "skip"
		}
		if w.app == "Motif" && w.option == 4 && ds != "citeseer" && ds != "mico" {
			return "skip"
		}
		if w.app == "Motif" && w.option == 4 && ds == "mico" && sys != sysKaleido {
			return "skip"
		}
	}
	return ""
}

func table2Workloads(quick bool) []workload {
	if quick {
		return []workload{
			{"3-FSM", 300}, {"3-FSM", 5000},
			{"Motif", 3}, {"Motif", 4},
			{"Clique", 3}, {"Clique", 4},
			{"TC", 0},
		}
	}
	return []workload{
		{"3-FSM", 300}, {"3-FSM", 500}, {"3-FSM", 1000}, {"3-FSM", 5000},
		{"Motif", 3}, {"Motif", 4},
		{"Clique", 3}, {"Clique", 4}, {"Clique", 5},
		{"TC", 0},
	}
}

func loadDataset(name string, cfg RunConfig) (*graph.Graph, error) {
	d, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	return dataset.Load(d, cfg.CacheDir)
}

// table2 reproduces Table 2 (running time, seconds) and the Fig. 10 memory
// reduction factors of all three systems over the four datasets.
func table2(cfg RunConfig) ([]Result, error) {
	datasets := []string{"citeseer", "mico", "patent", "youtube"}
	if cfg.Quick {
		datasets = []string{"citeseer", "mico", "patent", "youtube"}
	}
	workloads := table2Workloads(cfg.Quick)

	timeRes := Result{
		ID:     "Table 2",
		Title:  "running time (s) — Kaleido vs Arabesque-like vs RStream-like",
		Header: []string{"App"},
	}
	memRes := Result{
		ID:     "Fig. 10",
		Title:  "memory reduction factor of Kaleido (×, higher = Kaleido smaller)",
		Header: []string{"App"},
	}
	for _, ds := range datasets {
		for _, s := range sysNames {
			timeRes.Header = append(timeRes.Header, ds[:2]+"/"+s)
		}
		memRes.Header = append(memRes.Header, ds[:2]+"/AR", ds[:2]+"/RS")
	}

	type cellKey struct {
		ds  string
		sys system
		w   string
	}
	cells := map[cellKey]measured{}
	for _, ds := range datasets {
		g, err := loadDataset(ds, cfg)
		if err != nil {
			return nil, err
		}
		for _, w := range workloads {
			for sys := sysKaleido; sys <= sysRStream; sys++ {
				if reason := table2Skip(ds, sys, w, cfg.Quick); reason != "" {
					cells[cellKey{ds, sys, w.String()}] = measured{skipped: reason}
					continue
				}
				cells[cellKey{ds, sys, w.String()}] = runCell(g, sys, w, cfg)
			}
		}
	}
	var speedAR, speedRS, memAR, memRS []float64
	for _, w := range workloads {
		trow := []string{w.String()}
		mrow := []string{w.String()}
		for _, ds := range datasets {
			ka := cells[cellKey{ds, sysKaleido, w.String()}]
			ar := cells[cellKey{ds, sysArabesque, w.String()}]
			rs := cells[cellKey{ds, sysRStream, w.String()}]
			trow = append(trow, ka.timeCell(), ar.timeCell(), rs.timeCell())
			mrow = append(mrow, ratioCell(ar.peak, ka.peak, ar.skipped != "" || ka.skipped != ""),
				ratioCell(rs.peak, ka.peak, rs.skipped != "" || ka.skipped != ""))
			if ds != "citeseer" { // paper's GeoMean excludes the tiny CiteSeer
				if ka.skipped == "" && ar.skipped == "" && ka.seconds > 0 {
					speedAR = append(speedAR, ar.seconds/ka.seconds)
					if ka.peak > 0 {
						memAR = append(memAR, float64(ar.peak)/float64(ka.peak))
					}
				}
				if ka.skipped == "" && rs.skipped == "" && ka.seconds > 0 {
					speedRS = append(speedRS, rs.seconds/ka.seconds)
					if ka.peak > 0 {
						memRS = append(memRS, float64(rs.peak)/float64(ka.peak))
					}
				}
			}
		}
		timeRes.Rows = append(timeRes.Rows, trow)
		memRes.Rows = append(memRes.Rows, mrow)
	}
	timeRes.Notes = append(timeRes.Notes,
		fmt.Sprintf("GeoMean speedup vs Arabesque-like: %.1f× (paper: 12.3× incl. JVM/Giraph overhead)", geomean(speedAR)),
		fmt.Sprintf("GeoMean speedup vs RStream-like: %.1f× (paper: 40.0×)", geomean(speedRS)),
		"'-' = baseline exceeded memory in the paper; '/' = exceeded SSD; 'skip' = reduced CI grid")
	memRes.Notes = append(memRes.Notes,
		fmt.Sprintf("GeoMean memory reduction: %.1f× vs Arabesque-like (paper 7.2×), %.1f× vs RStream-like (paper 9.9×)",
			geomean(memAR), geomean(memRS)))
	return []Result{timeRes, memRes}, nil
}

// table3 reproduces Table 3: memory consumption (MB) over CiteSeer.
func table3(cfg RunConfig) ([]Result, error) {
	g, err := loadDataset("citeseer", cfg)
	if err != nil {
		return nil, err
	}
	res := Result{
		ID:     "Table 3",
		Title:  "memory consumption (MB) over citeseer-like",
		Header: []string{"App", "Kaleido", "AR-like", "RS-like"},
	}
	for _, w := range table2Workloads(cfg.Quick) {
		row := []string{w.String()}
		for sys := sysKaleido; sys <= sysRStream; sys++ {
			row = append(row, runCell(g, sys, w, cfg).memCell())
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"tracked data-structure peaks (CSE / ODAG / tuple tables + pattern maps), not process RSS:",
		"the paper's Arabesque column is dominated by ~1.8 GB of JVM+Giraph baseline not reproduced here")
	return []Result{res}, nil
}

func ratioCell(num, den int64, skipped bool) string {
	if skipped || den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(num)/float64(den))
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		logSum += ln(x)
	}
	return exp(logSum / float64(len(xs)))
}

func ln(x float64) float64  { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }
