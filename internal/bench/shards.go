package bench

import (
	"fmt"
	"sync"
	"time"

	"kaleido/internal/explore"
	"kaleido/internal/gen"
	"kaleido/internal/graph"
)

// The shards experiment measures prefix-range sharded execution on the
// vertex-d4 micro-benchmark workload (the depth-3→4 expansion of the
// 4000/16000 power-law bench graph): the level-1 vertex range is split into
// degree-mass-balanced contiguous ranges over the relabeled id order, each
// shard is an independent single-threaded sub-run, and the shards execute
// concurrently. Shards are the parallelism axis here — per-shard concurrency
// is fixed at one worker — so the speedup column reads as the scaling of the
// shard fan-out itself (≈k× on a machine with ≥k idle cores, ≈1× on one
// core), with the summed embedding count pinning correctness at every k.

// shardsBenchDepth is the starting depth of the measured expansion; the
// measured step counts depth-4 embeddings at the frontier (CountSink).
const shardsBenchDepth = 3

// shardsGraph builds the degree-order relabeled equivalent of the vertex-d4
// bench graph.
func shardsGraph() (*graph.Graph, error) {
	g, err := gen.PowerLaw(gen.Config{N: 4000, M: 16000, Alpha: 2.6, NumLabels: 8, LabelSkew: 0.7, Seed: 42})
	if err != nil {
		return nil, err
	}
	return graph.Relabel(g)
}

// shardExplorers builds one single-threaded explorer per degree-mass prefix
// range, each expanded to the starting depth.
func shardExplorers(g *graph.Graph, shards int) ([]*explore.Explorer, error) {
	bounds := g.DegreeMassVertexRanges(shards)
	exs := make([]*explore.Explorer, shards)
	fail := func(err error) ([]*explore.Explorer, error) {
		closeExplorers(exs)
		return nil, err
	}
	for i := range exs {
		ex, err := explore.New(explore.Config{Graph: g, Mode: explore.VertexInduced, Threads: 1})
		if err != nil {
			return fail(err)
		}
		exs[i] = ex
		if err := ex.InitVertexRange(uint32(bounds[i]), uint32(bounds[i+1]), nil); err != nil {
			return fail(err)
		}
		for ex.Depth() < shardsBenchDepth {
			if err := ex.Expand(bgCtx, nil, nil); err != nil {
				return fail(err)
			}
		}
	}
	return exs, nil
}

func closeExplorers(exs []*explore.Explorer) {
	for _, ex := range exs {
		if ex != nil {
			ex.Close()
		}
	}
}

// shardedExpandCount runs the final expansion of every shard concurrently
// through CountSinks and returns the summed frontier embedding count.
func shardedExpandCount(exs []*explore.Explorer) (uint64, error) {
	var wg sync.WaitGroup
	totals := make([]uint64, len(exs))
	errs := make([]error, len(exs))
	for i, ex := range exs {
		wg.Add(1)
		go func(i int, ex *explore.Explorer) {
			defer wg.Done()
			totals[i], errs[i] = ex.ExpandCount(bgCtx, nil, nil)
		}(i, ex)
	}
	wg.Wait()
	var total uint64
	for i := range exs {
		if errs[i] != nil {
			return 0, errs[i]
		}
		total += totals[i]
	}
	return total, nil
}

// shardMassSkew reports max/min degree mass over the k prefix ranges — the
// balance the first-fit partitioner achieved (weight deg(v)+1 per vertex).
func shardMassSkew(g *graph.Graph, shards int) float64 {
	bounds := g.DegreeMassVertexRanges(shards)
	minM, maxM := int64(-1), int64(0)
	for i := 0; i < shards; i++ {
		var mass int64
		for v := bounds[i]; v < bounds[i+1]; v++ {
			mass += int64(g.Degree(uint32(v)) + 1)
		}
		if mass > maxM {
			maxM = mass
		}
		if minM < 0 || mass < minM {
			minM = mass
		}
	}
	if minM <= 0 {
		return 0
	}
	return float64(maxM) / float64(minM)
}

// shardsExp runs the sharded-execution scaling experiment.
func shardsExp(cfg RunConfig) ([]Result, error) {
	g, err := shardsGraph()
	if err != nil {
		return nil, err
	}
	reps := 3
	if cfg.Quick {
		reps = 1
	}
	res := Result{
		ID:     "shards",
		Title:  "prefix-range sharded execution: vertex-d4 frontier count, 1 worker per shard",
		Header: []string{"Shards", "best t (s)", "speedup", "embeddings", "mass skew"},
	}
	var base float64
	var want uint64
	for _, k := range []int{1, 2, 4} {
		exs, err := shardExplorers(g, k)
		if err != nil {
			return nil, err
		}
		best := 0.0
		var total uint64
		for r := 0; r < reps; r++ {
			start := time.Now()
			total, err = shardedExpandCount(exs)
			if err != nil {
				closeExplorers(exs)
				return nil, err
			}
			if sec := time.Since(start).Seconds(); best == 0 || sec < best {
				best = sec
			}
		}
		closeExplorers(exs)
		if k == 1 {
			base = best
			want = total
		} else if total != want {
			return nil, fmt.Errorf("bench: shards=%d produced %d embeddings, shards=1 produced %d", k, total, want)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.2f", best),
			fmt.Sprintf("%.2fx", base/best),
			fmt.Sprintf("%d", total),
			fmt.Sprintf("%.2f", shardMassSkew(g, k)),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("min of %d back-to-back runs per shard count; embedding totals must match across shard counts (checked)", reps),
		"shards are the parallelism axis (one worker each): expect ≈k× on ≥k idle cores, ≈1× on a single exposed core",
		"ranges are contiguous prefixes of the degree-ordered relabeled id space, balanced first-fit by degree mass (mass skew = heaviest/lightest shard)")
	return []Result{res}, nil
}
