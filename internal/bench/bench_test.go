package bench

import (
	"strings"
	"testing"
)

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	if len(ids) != 16 {
		t.Fatalf("experiments = %v", ids)
	}
	if _, err := Run("nope", RunConfig{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRenderTable(t *testing.T) {
	r := Result{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"hello"},
	}
	out := r.Render()
	for _, want := range []string{"== T — demo ==", "333", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean = %f, want 4", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("empty geomean not 0")
	}
}

// TestFaultsSmoke runs the fault-injection campaign end to end at -quick
// scale: transient faults must be absorbed with identical counts, and the two
// hard faults must dispatch through the right sentinel.
func TestFaultsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	res, err := Run("faults", RunConfig{Threads: 4, Quick: true, CacheDir: t.TempDir(), SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %+v", res)
	}
	for _, row := range res[0].Rows {
		if got := row[len(row)-1]; got != "yes" {
			t.Fatalf("regime %s not identical under transient faults: %v", row[0], row)
		}
	}
	for _, row := range res[1].Rows {
		if got := row[2]; got != "true" {
			t.Fatalf("hard fault %s missed its sentinel: %v", row[0], row)
		}
	}
}

// TestShardsSmoke runs the sharded-execution scaling experiment at -quick
// scale: every shard count must report the same summed embedding count (the
// experiment errors out internally otherwise) and no cell may carry an error.
func TestShardsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	res, err := Run("shards", RunConfig{Threads: 4, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != 3 {
		t.Fatalf("results = %+v", res)
	}
	want := res[0].Rows[0][3]
	for _, row := range res[0].Rows {
		if row[3] != want {
			t.Fatalf("embedding totals differ across shard counts: %v", res[0].Rows)
		}
	}
}

// TestServiceSmoke runs the mining-as-a-service experiment at -quick scale:
// every served job must match the direct Engine run's count, and the shared
// budget must hold across the burst.
func TestServiceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	res, err := Run("service", RunConfig{Threads: 4, Quick: true, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != 2 {
		t.Fatalf("results = %+v", res)
	}
	for _, row := range res[0].Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("served counts diverged from direct runs: %v", row)
		}
	}
}

// TestTable3Smoke runs the cheapest real experiment end to end.
func TestTable3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	res, err := Run("table3", RunConfig{Threads: 4, Quick: true, CacheDir: t.TempDir(), SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) == 0 {
		t.Fatalf("results = %+v", res)
	}
	for _, row := range res[0].Rows {
		for i, cell := range row {
			if strings.HasPrefix(cell, "err:") {
				t.Fatalf("row %v column %d failed: %s", row[0], i, cell)
			}
		}
	}
}
