package bench

import (
	"fmt"
	"os"
	"time"

	"kaleido/internal/apps"
	"kaleido/internal/dataset"
	"kaleido/internal/gen"
	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
	"kaleido/internal/storage"
)

// coarsenPatent maps the 37 fine labels to 7 coarse categories (Fig. 13's
// PA-7 variant).
func coarsenPatent(g *graph.Graph) (*graph.Graph, error) {
	return dataset.CoarsenPatentLabels(g)
}

// fig11 reproduces Fig. 11: 3-FSM run time and memory over an increasing
// support sweep. The paper sweeps 100..5M on the full-size graphs; supports
// here are scaled with the datasets (EXPERIMENTS.md records the mapping).
func fig11(cfg RunConfig) ([]Result, error) {
	supports := []uint64{10, 50, 100, 300, 1000, 3000, 10000}
	if cfg.Quick {
		supports = []uint64{10, 100, 1000, 10000}
	}
	res := Result{
		ID:     "Fig. 11",
		Title:  "3-FSM run time (s) and memory (MB) vs support",
		Header: []string{"Dataset"},
	}
	for _, s := range supports {
		res.Header = append(res.Header, fmt.Sprintf("t@%d", s), fmt.Sprintf("MB@%d", s))
	}
	for _, ds := range []string{"mico", "patent", "youtube"} {
		g, err := loadDataset(ds, cfg)
		if err != nil {
			return nil, err
		}
		row := []string{ds}
		for _, s := range supports {
			m := timed(func(tr *memtrack.Tracker) error {
				_, err := apps.FSM(bgCtx, g, 3, s, apps.Options{Threads: cfg.Threads, Tracker: tr})
				return err
			})
			row = append(row, m.timeCell(), m.memCell())
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"expected shape (paper): run time rises to a peak then falls — early-stop marking makes mid supports the hardest")
	return []Result{res}, nil
}

// fig12 reproduces Fig. 12: the eigenvalue isomorphism check vs the
// bliss-like canonical labeler on Motif and FSM workloads.
func fig12(cfg RunConfig) ([]Result, error) {
	res := Result{
		ID:     "Fig. 12",
		Title:  "isomorphism backends: EigenHash vs bliss-like (run time s / memory MB)",
		Header: []string{"Workload", "Eigen t", "Bliss t", "speedup", "Eigen MB", "Bliss MB"},
	}
	type wl struct {
		name    string
		ds      string
		app     string
		k       int
		support uint64
	}
	wls := []wl{
		{"3-Motif(patent)", "patent", "motif", 3, 0},
		{"3-Motif(mico)", "mico", "motif", 3, 0},
		{"3-Motif(youtube)", "youtube", "motif", 3, 0},
		{"3-FSM(patent,300)", "patent", "fsm", 3, 300},
		{"3-FSM(mico,300)", "mico", "fsm", 3, 300},
		{"3-FSM(youtube,300)", "youtube", "fsm", 3, 300},
		{"4-Motif(mico)", "mico", "motif", 4, 0},
		{"4-FSM(patent,300)", "patent", "fsm", 4, 300},
		{"5-Motif(citeseer)", "citeseer", "motif", 5, 0},
		{"5-FSM(citeseer,10)", "citeseer", "fsm", 5, 10},
	}
	if cfg.Quick {
		// The 5-vertex bliss cells take minutes; the CI grid keeps one
		// motif and one FSM pair per class at 3/4 vertices.
		wls = []wl{wls[0], wls[3], {"4-Motif(citeseer)", "citeseer", "motif", 4, 0}}
	}
	for _, w := range wls {
		g, err := loadDataset(w.ds, cfg)
		if err != nil {
			return nil, err
		}
		run := func(iso apps.IsoAlgo) measured {
			return timed(func(tr *memtrack.Tracker) error {
				opt := apps.Options{Threads: cfg.Threads, Tracker: tr, Iso: iso}
				if w.app == "motif" {
					_, err := apps.MotifCount(bgCtx, g, w.k, opt)
					return err
				}
				_, err := apps.FSM(bgCtx, g, w.k, w.support, opt)
				return err
			})
		}
		eig := run(apps.IsoEigen)
		bls := run(apps.IsoBliss)
		speed := "-"
		if eig.skipped == "" && bls.skipped == "" && eig.seconds > 0 {
			speed = fmt.Sprintf("%.1fx", bls.seconds/eig.seconds)
		}
		res.Rows = append(res.Rows, []string{
			w.name, eig.timeCell(), bls.timeCell(), speed, eig.memCell(), bls.memCell(),
		})
	}
	res.Notes = append(res.Notes,
		"paper: 5.8× speedup for motif counting, 2.1× for FSM (whole-application times; the iso check is one component)")
	return []Result{res}, nil
}

// fig13 reproduces Fig. 13: 3-/4-FSM over the Patent graph with 7 coarse vs
// 37 fine labels, Eigen vs bliss-like, across supports.
func fig13(cfg RunConfig) ([]Result, error) {
	g37, err := loadDataset("patent", cfg)
	if err != nil {
		return nil, err
	}
	g7, err := coarsenPatent(g37)
	if err != nil {
		return nil, err
	}
	supports3 := []uint64{30, 100, 300, 1000}
	supports4 := []uint64{200, 400}
	if cfg.Quick {
		supports3 = []uint64{100, 1000}
		supports4 = nil
	}
	res := Result{
		ID:     "Fig. 13",
		Title:  "FSM on patent-like, 7 vs 37 labels (run time s / memory MB)",
		Header: []string{"Workload", "Eigen t", "Bliss t", "Eigen MB", "Bliss MB"},
	}
	add := func(name string, g *graph.Graph, k int, s uint64) {
		run := func(iso apps.IsoAlgo) measured {
			return timed(func(tr *memtrack.Tracker) error {
				_, err := apps.FSM(bgCtx, g, k, s, apps.Options{Threads: cfg.Threads, Tracker: tr, Iso: iso})
				return err
			})
		}
		eig, bls := run(apps.IsoEigen), run(apps.IsoBliss)
		res.Rows = append(res.Rows, []string{name, eig.timeCell(), bls.timeCell(), eig.memCell(), bls.memCell()})
	}
	for _, s := range supports3 {
		add(fmt.Sprintf("3-FSM PA-7 s=%d", s), g7, 3, s)
		add(fmt.Sprintf("3-FSM PA-37 s=%d", s), g37, 3, s)
	}
	for _, s := range supports4 {
		add(fmt.Sprintf("4-FSM PA-7 s=%d", s), g7, 4, s)
		add(fmt.Sprintf("4-FSM PA-37 s=%d", s), g37, 4, s)
	}
	res.Notes = append(res.Notes,
		"paper: bliss is more sensitive to the label count than Kaleido (more labels → bigger search trees / hash space)")
	return []Result{res}, nil
}

// fig14 reproduces Fig. 14: scalability of 3-FSM, 3-Motif and 5-Clique over
// the Patent graph at 2..32 threads.
func fig14(cfg RunConfig) ([]Result, error) {
	g, err := loadDataset("patent", cfg)
	if err != nil {
		return nil, err
	}
	threads := []int{2, 4, 8, 16, 32}
	if cfg.Quick {
		threads = []int{2, 4, 8}
	}
	res := Result{
		ID:     "Fig. 14",
		Title:  "scalability on patent-like (run time s / memory MB)",
		Header: []string{"Threads", "3-FSM-5000 t", "3-FSM MB", "3-Motif t", "3-Motif MB", "5-Clique t", "5-Clique MB"},
	}
	for _, t := range threads {
		row := []string{fmt.Sprint(t)}
		fsm := timed(func(tr *memtrack.Tracker) error {
			_, err := apps.FSM(bgCtx, g, 3, 5000, apps.Options{Threads: t, Tracker: tr})
			return err
		})
		motif := timed(func(tr *memtrack.Tracker) error {
			_, err := apps.MotifCount(bgCtx, g, 3, apps.Options{Threads: t, Tracker: tr})
			return err
		})
		clique := timed(func(tr *memtrack.Tracker) error {
			_, err := apps.CliqueCount(bgCtx, g, 5, apps.Options{Threads: t, Tracker: tr})
			return err
		})
		row = append(row, fsm.timeCell(), fsm.memCell(), motif.timeCell(), motif.memCell(),
			clique.timeCell(), clique.memCell())
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper: Motif and Clique scale near-ideally; FSM is sublinear and its memory grows with threads (per-thread pattern maps)")
	return []Result{res}, nil
}

// table4 reproduces Table 4: in-memory vs hybrid storage for 4-FSM and
// 4-Motif. Supports are scaled from the paper's 50k/100k.
func table4(cfg RunConfig) ([]Result, error) {
	res := Result{
		ID:     "Table 4",
		Title:  "in-memory vs hybrid storage (run time s / memory MB)",
		Header: []string{"App", "InMem t", "InMem MB", "Hybrid t", "Hybrid MB", "slowdown"},
	}
	type wl struct {
		name    string
		ds      string
		app     string
		support uint64
	}
	wls := []wl{
		{"4-FSM(patent,150)", "patent", "fsm", 150},
		{"4-FSM(patent,300)", "patent", "fsm", 300},
		{"4-Motif(patent)", "patent", "motif", 0},
		{"4-Motif(mico)", "mico", "motif", 0},
	}
	if cfg.Quick {
		wls = []wl{wls[1]}
	}
	for _, w := range wls {
		g, err := loadDataset(w.ds, cfg)
		if err != nil {
			return nil, err
		}
		run := func(budget int64, dir string) measured {
			return timed(func(tr *memtrack.Tracker) error {
				opt := apps.Options{
					Threads: cfg.Threads, Tracker: tr,
					MemoryBudget: budget, SpillDir: dir, Predict: budget > 0,
					SpillWatermark: cfg.SpillWatermark, PredictSample: cfg.PredictSample,
					Compression: cfg.Compression, ResidentCompression: cfg.ResidentCompression,
				}
				if w.app == "motif" {
					_, err := apps.MotifCount(bgCtx, g, 4, opt)
					return err
				}
				_, err := apps.FSM(bgCtx, g, 4, w.support, opt)
				return err
			})
		}
		mem := run(0, "")
		dir, err := os.MkdirTemp(cfg.SpillDir, "t4")
		if err != nil {
			return nil, err
		}
		// Budget below the in-memory peak forces the last level(s) to disk.
		hyb := run(maxI64(mem.peak/4, 1<<20), dir)
		os.RemoveAll(dir)
		slow := "-"
		if mem.skipped == "" && hyb.skipped == "" && mem.seconds > 0 {
			slow = fmt.Sprintf("%.0f%%", 100*(hyb.seconds-mem.seconds)/mem.seconds)
		}
		res.Rows = append(res.Rows, []string{w.name, mem.timeCell(), mem.memCell(), hyb.timeCell(), hyb.memCell(), slow})
	}
	res.Notes = append(res.Notes, "paper: hybrid-storage slowdown stays below 30% in these applications")
	return []Result{res}, nil
}

// fig16 reproduces Fig. 15/16: 4-FSM I/O and run time under decreasing
// memory budgets (the paper used cgroup limits; here the budget directly
// drives spilling, which is what the cgroup limit induced).
func fig16(cfg RunConfig) ([]Result, error) {
	g, err := loadDataset("patent", cfg)
	if err != nil {
		return nil, err
	}
	// Baseline in-memory run to size the budgets.
	const f16support = 150
	base := timed(func(tr *memtrack.Tracker) error {
		_, err := apps.FSM(bgCtx, g, 4, f16support, apps.Options{Threads: cfg.Threads, Tracker: tr})
		return err
	})
	if base.skipped != "" {
		return nil, fmt.Errorf("bench: baseline run failed: %s", base.skipped)
	}
	// The tracked peak is dominated by pattern-map domains; the CSE levels
	// that the budget governs are a small fraction of it, so the budget
	// fractions reach well below it to force spilling (the paper's Fig. 16
	// similarly caps RAM far below the 24 GB working set).
	fracs := []float64{0.01, 0.03, 0.125, 0.5, 1.5}
	if cfg.Quick {
		fracs = []float64{0.01, 0.05, 1.5}
	}
	res := Result{
		ID:     "Fig. 15/16",
		Title:  "4-FSM(patent,150) under memory budgets",
		Header: []string{"Budget(MB)", "time (s)", "slowdown", "read MB", "write MB"},
	}
	for _, f := range fracs {
		budget := maxI64(int64(float64(base.peak)*f), 1<<20)
		dir, err := os.MkdirTemp(cfg.SpillDir, "f16")
		if err != nil {
			return nil, err
		}
		tr := memtrack.New()
		start := time.Now()
		_, err = apps.FSM(bgCtx, g, 4, f16support, apps.Options{
			Threads: cfg.Threads, Tracker: tr,
			MemoryBudget: budget, SpillDir: dir, Predict: true,
			SpillWatermark: cfg.SpillWatermark, PredictSample: cfg.PredictSample,
			Compression: cfg.Compression, ResidentCompression: cfg.ResidentCompression,
		})
		secs := time.Since(start).Seconds()
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		r, w := tr.IOTotals()
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%.1f", float64(budget)/(1<<20)),
			fmt.Sprintf("%.2f", secs),
			fmt.Sprintf("%.0f%%", 100*(secs-base.seconds)/base.seconds),
			fmt.Sprintf("%.1f", float64(r)/(1<<20)),
			fmt.Sprintf("%.1f", float64(w)/(1<<20)),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("in-memory baseline: %.2fs, peak %.1f MB", base.seconds, float64(base.peak)/(1<<20)),
		"paper: with the cache capped below the working set the run time increases within 20%")
	return []Result{res}, nil
}

// fig17 reproduces Fig. 17/18: prediction vs non-prediction load balance in
// hybrid storage (run time, plus a worker-balance factor standing in for the
// CPU-utilization timelines of Fig. 18).
func fig17(cfg RunConfig) ([]Result, error) {
	res := Result{
		ID:     "Fig. 17/18",
		Title:  "hybrid-storage load balance: prediction vs non-prediction",
		Header: []string{"Workload", "Pred t", "NoPred t", "speedup"},
	}
	type wl struct {
		name    string
		ds      string
		app     string
		support uint64
	}
	wls := []wl{
		{"4-Motif(mico)", "mico", "motif", 0},
		{"4-Motif(patent)", "patent", "motif", 0},
		{"4-FSM(patent,150)", "patent", "fsm", 150},
		{"4-FSM(patent,300)", "patent", "fsm", 300},
	}
	if cfg.Quick {
		wls = []wl{wls[2]}
	}
	for _, w := range wls {
		g, err := loadDataset(w.ds, cfg)
		if err != nil {
			return nil, err
		}
		run := func(predict bool) measured {
			dir, err := os.MkdirTemp(cfg.SpillDir, "f17")
			if err != nil {
				return measured{skipped: "err:" + err.Error()}
			}
			defer os.RemoveAll(dir)
			return timed(func(tr *memtrack.Tracker) error {
				opt := apps.Options{
					Threads: cfg.Threads, Tracker: tr,
					MemoryBudget: 1, SpillDir: dir, Predict: predict,
					SpillWatermark: cfg.SpillWatermark, PredictSample: cfg.PredictSample,
					Compression: cfg.Compression, ResidentCompression: cfg.ResidentCompression,
				}
				if w.app == "motif" {
					_, err := apps.MotifCount(bgCtx, g, 4, opt)
					return err
				}
				_, err := apps.FSM(bgCtx, g, 4, w.support, opt)
				return err
			})
		}
		pred := run(true)
		nopred := run(false)
		speed := "-"
		if pred.skipped == "" && nopred.skipped == "" && pred.seconds > 0 {
			speed = fmt.Sprintf("%.2fx", nopred.seconds/pred.seconds)
		}
		res.Rows = append(res.Rows, []string{w.name, pred.timeCell(), nopred.timeCell(), speed})
	}
	res.Notes = append(res.Notes, "paper: prediction outperforms non-prediction by ~1.2× and smooths CPU utilization (Fig. 18)")
	return []Result{res}, nil
}

// sinks measures the fused terminal paths end-to-end on the benchmark's
// synthetic power-law graph (the clique-d4 / motif-d3 cases of
// BENCH_expand.json, plus a small FSM): each workload's final level is
// consumed at the expansion frontier (CountSink / VisitSink), so under an
// all-disk budget the run's write bytes cover only its stored levels — the
// terminal level contributes nothing.
func sinks(cfg RunConfig) ([]Result, error) {
	res := Result{
		ID:     "sinks",
		Title:  "fused terminal expansion, synthetic power-law (4000 v, 16000 e)",
		Header: []string{"Workload", "t", "peak MB", "disk writes (budget 1 B)"},
	}
	g, err := gen.PowerLaw(gen.Config{N: 4000, M: 16000, Alpha: 2.6, NumLabels: 8, LabelSkew: 0.7, Seed: 42})
	if err != nil {
		return nil, err
	}
	type wl struct {
		name string
		run  func(opt apps.Options) error
	}
	wls := []wl{
		{"4-Clique (CountSink)", func(opt apps.Options) error { _, err := apps.CliqueCount(bgCtx, g, 4, opt); return err }},
		{"3-Motif (VisitSink)", func(opt apps.Options) error { _, err := apps.MotifCount(bgCtx, g, 3, opt); return err }},
		{"3-FSM s=100 (VisitSink+KeepSink)", func(opt apps.Options) error { _, err := apps.FSM(bgCtx, g, 3, 100, opt); return err }},
	}
	if cfg.Quick {
		wls = wls[:2]
	}
	for _, w := range wls {
		m := timed(func(tr *memtrack.Tracker) error {
			return w.run(apps.Options{Threads: cfg.Threads, Tracker: tr})
		})
		dir, err := os.MkdirTemp(cfg.SpillDir, "sinks")
		if err != nil {
			return nil, err
		}
		tr := memtrack.New()
		err = w.run(apps.Options{
			Threads: cfg.Threads, Tracker: tr, MemoryBudget: 1, SpillDir: dir,
			SpillWatermark: cfg.SpillWatermark, PredictSample: cfg.PredictSample,
			Compression: cfg.Compression, ResidentCompression: cfg.ResidentCompression,
		})
		os.RemoveAll(dir)
		if err != nil {
			return nil, fmt.Errorf("bench: %s under all-disk budget: %w", w.name, err)
		}
		_, wr := tr.IOTotals()
		res.Rows = append(res.Rows, []string{w.name, m.timeCell(), m.memCell(), fmt.Sprintf("%.1f KB", float64(wr)/1024)})
	}
	res.Notes = append(res.Notes,
		"terminal levels write zero bytes: the disk-writes column counts only the k-2 stored levels (differential tests in internal/apps pin the counts)")
	return []Result{res}, nil
}

// compress measures the delta+varint spill codec end-to-end: the same
// out-of-core workloads with compression off vs auto, comparing wall time,
// bytes written, and the logical/physical split of the spilled level data.
func compress(cfg RunConfig) ([]Result, error) {
	res := Result{
		ID:     "compress",
		Title:  "spill compression (budget 1 B, all levels out of core), synthetic power-law (4000 v, 16000 e)",
		Header: []string{"Workload", "t raw", "t comp", "spill MB raw", "spill MB comp", "ratio"},
	}
	g, err := gen.PowerLaw(gen.Config{N: 4000, M: 16000, Alpha: 2.6, NumLabels: 8, LabelSkew: 0.7, Seed: 42})
	if err != nil {
		return nil, err
	}
	type wl struct {
		name string
		run  func(opt apps.Options) error
	}
	wls := []wl{
		{"4-Clique", func(opt apps.Options) error { _, err := apps.CliqueCount(bgCtx, g, 4, opt); return err }},
		{"4-Motif", func(opt apps.Options) error { _, err := apps.MotifCount(bgCtx, g, 4, opt); return err }},
		{"3-FSM s=100", func(opt apps.Options) error { _, err := apps.FSM(bgCtx, g, 3, 100, opt); return err }},
	}
	if cfg.Quick {
		wls = wls[:1]
	}
	for _, w := range wls {
		var spills [2]apps.SpillInfo
		var times [2]measured
		for i, comp := range []storage.Compression{storage.CompressionOff, storage.CompressionAuto} {
			dir, err := os.MkdirTemp(cfg.SpillDir, "compress")
			if err != nil {
				return nil, err
			}
			times[i] = timed(func(tr *memtrack.Tracker) error {
				return w.run(apps.Options{
					Threads: cfg.Threads, Tracker: tr, MemoryBudget: 1, SpillDir: dir,
					SpillWatermark: cfg.SpillWatermark, PredictSample: cfg.PredictSample,
					Compression: comp, Spill: &spills[i],
				})
			})
			os.RemoveAll(dir)
			if times[i].skipped != "" {
				return nil, fmt.Errorf("bench: %s with compression=%d: %s", w.name, comp, times[i].skipped)
			}
		}
		ratio := "-"
		if p := spills[1].SpilledBytesPhysical; p > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(spills[1].SpilledBytes)/float64(p))
		}
		res.Rows = append(res.Rows, []string{
			w.name, times[0].timeCell(), times[1].timeCell(),
			fmt.Sprintf("%.2f", float64(spills[0].SpilledBytesPhysical)/(1<<20)),
			fmt.Sprintf("%.2f", float64(spills[1].SpilledBytesPhysical)/(1<<20)),
			ratio,
		})
	}
	res.Notes = append(res.Notes,
		"spill MB counts the bytes the spilled level parts occupy on disk; ratio = logical/physical of the compressed run",
		"the codec is block-aligned with the sparse group index, so random access stays one block per probe")
	return []Result{res}, nil
}

// resident measures the compressed-resident tier end-to-end: each workload
// runs in-memory once to size a tight budget (half its tracked peak), then
// under that budget with raw residency vs the compressed-mem tier. Raw runs
// must spill level parts the budget cannot hold; compressed-resident runs
// hold the same levels in in-memory codec blocks instead — fewer (ideally
// zero) spilled parts, a ≥2x smaller physical resident peak than the
// in-memory baseline, and results identical across all three runs.
func resident(cfg RunConfig) ([]Result, error) {
	res := Result{
		ID:     "resident",
		Title:  "compressed-resident tier under a tight budget (half the in-memory peak), synthetic power-law (4000 v, 16000 e)",
		Header: []string{"Workload", "base peak MB", "budget MB", "raw spill", "raw peak MB", "raw t", "comp spill", "comp peak MB", "comp t", "peak ×"},
	}
	g, err := gen.PowerLaw(gen.Config{N: 4000, M: 16000, Alpha: 2.6, NumLabels: 8, LabelSkew: 0.7, Seed: 42})
	if err != nil {
		return nil, err
	}
	type wl struct {
		name string
		run  func(opt apps.Options) (uint64, error)
	}
	wls := []wl{
		{"4-Clique", func(opt apps.Options) (uint64, error) { return apps.CliqueCount(bgCtx, g, 4, opt) }},
		{"4-Motif", func(opt apps.Options) (uint64, error) {
			pcs, err := apps.MotifCount(bgCtx, g, 4, opt)
			if err != nil {
				return 0, err
			}
			var total uint64
			for _, pc := range pcs {
				total += pc.Count
			}
			return total, nil
		}},
		{"3-FSM s=100", func(opt apps.Options) (uint64, error) {
			pcs, err := apps.FSM(bgCtx, g, 3, 100, opt)
			if err != nil {
				return 0, err
			}
			var total uint64
			for _, pc := range pcs {
				total += pc.Support
			}
			return total + uint64(len(pcs))<<32, nil
		}},
	}
	if cfg.Quick {
		// 4-Clique's intermediate data is too small to pressure any budget;
		// 4-Motif is the smallest workload that exercises the resident tier.
		wls = wls[1:2]
	}
	for _, w := range wls {
		var baseCount uint64
		base := timed(func(tr *memtrack.Tracker) error {
			v, err := w.run(apps.Options{Threads: cfg.Threads, Tracker: tr})
			baseCount = v
			return err
		})
		if base.skipped != "" {
			return nil, fmt.Errorf("bench: %s in-memory baseline: %s", w.name, base.skipped)
		}
		budget := maxI64(base.peak/2, 1<<20)
		var counts [2]uint64
		var spills [2]apps.SpillInfo
		var times [2]measured
		for i, rc := range []storage.Compression{storage.CompressionOff, storage.CompressionAuto} {
			dir, err := os.MkdirTemp(cfg.SpillDir, "resident")
			if err != nil {
				return nil, err
			}
			times[i] = timed(func(tr *memtrack.Tracker) error {
				v, err := w.run(apps.Options{
					Threads: cfg.Threads, Tracker: tr,
					MemoryBudget: budget, SpillDir: dir,
					SpillWatermark: cfg.SpillWatermark, PredictSample: cfg.PredictSample,
					ResidentCompression: rc, Spill: &spills[i],
				})
				counts[i] = v
				return err
			})
			os.RemoveAll(dir)
			if times[i].skipped != "" {
				return nil, fmt.Errorf("bench: %s with resident compression=%d: %s", w.name, rc, times[i].skipped)
			}
		}
		if counts[0] != baseCount || counts[1] != baseCount {
			return nil, fmt.Errorf("bench: %s results diverge: base %d, raw %d, compressed-resident %d",
				w.name, baseCount, counts[0], counts[1])
		}
		peakX := "-"
		if times[1].peak > 0 {
			peakX = fmt.Sprintf("%.2fx", float64(base.peak)/float64(times[1].peak))
		}
		res.Rows = append(res.Rows, []string{
			w.name,
			base.memCell(),
			fmt.Sprintf("%.1f", float64(budget)/(1<<20)),
			fmt.Sprintf("%d", spills[0].SpilledParts),
			times[0].memCell(), times[0].timeCell(),
			fmt.Sprintf("%d/%dc", spills[1].SpilledParts, spills[1].CompressedParts),
			times[1].memCell(), times[1].timeCell(),
			peakX,
		})
	}
	res.Notes = append(res.Notes,
		"all three runs of a row produce identical counts; spill columns count level parts (comp shows spilled/compressed)",
		"peak × = in-memory baseline peak over the compressed-resident run's physical peak — the budget stretch of the resident tier (≥2x goal)")
	return []Result{res}, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
