//go:build race

package bench

// raceEnabled reports whether this binary was built with the race detector;
// the depth-4 budget tests skip themselves under it (see their comments).
const raceEnabled = true
