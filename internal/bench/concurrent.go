package bench

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"kaleido"
)

// concurrent measures the Engine's shared-budget multiplexing: N identical
// 4-motif runs on a synthetic power-law graph, first sequentially (one run
// at a time, sole owner of the budget), then concurrently through one
// kaleido.Engine (all runs charging a single pool). The table reports the
// wall time of completing all N runs, the combined physical resident peak
// the arbiter recorded (compressed-mem parts charge at physical size), and
// the per-run spilled and compressed part counts — the peak staying under
// the budget at every N is the point of the cross-run watermark, and the
// compressed column shows the resident tier absorbing contention that would
// otherwise go to disk.
func concurrent(cfg RunConfig) ([]Result, error) {
	g, err := kaleido.Synthetic(600, 2400, 8, 42)
	if err != nil {
		return nil, err
	}
	// Budget from a solo in-memory run: one run nearly fills it, so
	// concurrent runs must arbitrate.
	var solo kaleido.Stats
	if _, err := g.Motifs(bgCtx, 4, kaleido.Config{Threads: cfg.Threads, Stats: &solo}); err != nil {
		return nil, err
	}
	budget := solo.PeakBytes

	res := Result{
		ID:     "concurrent",
		Title:  fmt.Sprintf("N concurrent 4-Motif runs, one %0.1f MB budget (Engine arbiter)", float64(budget)/(1<<20)),
		Header: []string{"Runs", "sequential t", "concurrent t", "combined phys peak MB", "peak/budget", "spilled parts", "compressed parts"},
	}
	counts := []int{1, 2, 4}
	if cfg.Quick {
		counts = []int{1, 2}
	}
	for _, n := range counts {
		dir, err := os.MkdirTemp(cfg.SpillDir, "conc")
		if err != nil {
			return nil, err
		}
		// Sequential baseline: each run still budget-bound, but alone.
		eng := &kaleido.Engine{
			MemoryBudget: budget, SpillDir: dir, Threads: cfg.Threads,
			SpillWatermark: cfg.SpillWatermark,
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := eng.Motifs(bgCtx, g, 4, kaleido.Config{}); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
		}
		seq := time.Since(start).Seconds()

		eng = &kaleido.Engine{
			MemoryBudget: budget, SpillDir: dir, Threads: cfg.Threads,
			SpillWatermark: cfg.SpillWatermark,
		}
		var wg sync.WaitGroup
		errs := make([]error, n)
		stats := make([]kaleido.Stats, n)
		start = time.Now()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = eng.Motifs(bgCtx, g, 4, kaleido.Config{Stats: &stats[i]})
			}(i)
		}
		wg.Wait()
		conc := time.Since(start).Seconds()
		os.RemoveAll(dir)
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.2f", seq),
			fmt.Sprintf("%.2f", conc),
			fmt.Sprintf("%.1f", float64(eng.PeakBytes())/(1<<20)),
			fmt.Sprintf("%.0f%%", 100*float64(eng.PeakBytes())/float64(budget)),
			perRunCounts(stats, func(s kaleido.Stats) int { return s.SpilledParts }),
			perRunCounts(stats, func(s kaleido.Stats) int { return s.CompressedParts }),
		})
	}
	res.Notes = append(res.Notes,
		"budget = one solo run's tracked peak; concurrent runs share it through the Engine arbiter",
		"peak/budget staying under 100% at every N is the cross-run watermark doing its job",
		"part counts are totals with the per-run breakdown in parentheses; compressed-mem parts soak up contention before any disk spill")
	return []Result{res}, nil
}

// perRunCounts renders one per-run counter as "total (a+b+…)" — or just the
// number for a single run.
func perRunCounts(stats []kaleido.Stats, get func(kaleido.Stats) int) string {
	total := 0
	parts := make([]string, len(stats))
	for i, s := range stats {
		total += get(s)
		parts[i] = fmt.Sprint(get(s))
	}
	if len(stats) == 1 {
		return fmt.Sprint(total)
	}
	return fmt.Sprintf("%d (%s)", total, strings.Join(parts, "+"))
}
