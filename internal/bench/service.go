package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"kaleido"
	"kaleido/internal/service"
)

// serviceExp measures the mining-as-a-service path: N identical 4-motif jobs
// submitted to an in-process kaleidod HTTP server — each passing the
// admission controller, the shared dataset cache and the job-lifecycle
// machinery — against the same N runs issued directly on an Engine. Every
// job's projection claims the whole budget, so admission serializes them;
// the queue-wait columns show the controller pacing the burst while the
// combined resident peak stays under the one budget, and the count column
// pins service results to the direct runs'.
func serviceExp(cfg RunConfig) ([]Result, error) {
	g, err := kaleido.Synthetic(600, 2400, 8, 42)
	if err != nil {
		return nil, err
	}
	scratch, err := os.MkdirTemp(cfg.SpillDir, "svc")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(scratch)
	path := filepath.Join(scratch, "graph.txt")
	if err := writeEdgeList(path, g); err != nil {
		return nil, err
	}
	spec := service.JobSpec{App: "motif", K: 4, GraphPath: path, Threads: cfg.Threads}

	// Budget from a solo in-memory run, as in the concurrent experiment: one
	// run nearly fills it, so a burst of jobs must drain through admission.
	var solo kaleido.Stats
	ref, err := service.Execute(bgCtx, &kaleido.Engine{}, g, &spec, &solo)
	if err != nil {
		return nil, err
	}
	budget := solo.PeakBytes

	res := Result{
		ID:     "service",
		Title:  fmt.Sprintf("N jobs through kaleidod vs direct Engine runs, one %.1f MB budget", float64(budget)/(1<<20)),
		Header: []string{"Jobs", "direct t", "served t", "avg wait ms", "max wait ms", "peak/budget", "counts match"},
	}
	counts := []int{1, 2, 4}
	if cfg.Quick {
		counts = []int{1, 2}
	}
	for _, n := range counts {
		// Direct baseline: the same spec executed n times straight on a
		// budgeted Engine, no HTTP, no admission, no cache.
		dir := filepath.Join(scratch, fmt.Sprintf("direct%d", n))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		eng := &kaleido.Engine{MemoryBudget: budget, SpillDir: dir, Threads: cfg.Threads}
		start := time.Now()
		for i := 0; i < n; i++ {
			var stats kaleido.Stats
			out, err := service.Execute(bgCtx, eng, g, &spec, &stats)
			if err != nil {
				return nil, err
			}
			if out.Count != ref.Count {
				return nil, fmt.Errorf("bench: direct run %d counted %d, want %d", i, out.Count, ref.Count)
			}
		}
		direct := time.Since(start).Seconds()
		os.RemoveAll(dir)

		// Served: submit the n jobs at once; admission paces them.
		dir = filepath.Join(scratch, fmt.Sprintf("served%d", n))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		eng = &kaleido.Engine{MemoryBudget: budget, SpillDir: dir, Threads: cfg.Threads}
		srv := service.NewServer(eng, "", 2)
		ts := httptest.NewServer(srv)
		jobSpec := spec
		jobSpec.ProjectedBytes = budget
		body, err := json.Marshal(&jobSpec)
		if err != nil {
			ts.Close()
			return nil, err
		}
		start = time.Now()
		ids := make([]string, n)
		for i := range ids {
			job, err := postBenchJob(ts.URL, body)
			if err != nil {
				ts.Close()
				return nil, err
			}
			ids[i] = job.ID
		}
		match := true
		var waitTotal, waitMax int64
		for _, id := range ids {
			job, err := waitBenchJob(ts.URL, id)
			if err != nil {
				ts.Close()
				return nil, err
			}
			if job.State != service.StateDone || job.Result == nil || job.Result.Count != ref.Count {
				match = false
			}
			waitTotal += job.QueueWaitMS
			if job.QueueWaitMS > waitMax {
				waitMax = job.QueueWaitMS
			}
		}
		served := time.Since(start).Seconds()
		peak := eng.PeakBytes()
		ts.Close()
		os.RemoveAll(dir)

		res.Rows = append(res.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.2f", direct),
			fmt.Sprintf("%.2f", served),
			fmt.Sprintf("%.1f", float64(waitTotal)/float64(n)),
			fmt.Sprint(waitMax),
			fmt.Sprintf("%.0f%%", 100*float64(peak)/float64(budget)),
			fmt.Sprint(match),
		})
	}
	res.Notes = append(res.Notes,
		"budget = one solo run's tracked peak; every job's projection claims all of it, so admission serializes the burst",
		"wait columns are the admission queue's pacing — the direct baseline pays it as sequential wall time instead",
		"counts match = every served job equals the direct run's embedding count")
	return []Result{res}, nil
}

// writeEdgeList dumps g (labels, then edges) in the LoadEdgeListFile format.
func writeEdgeList(path string, g *kaleido.Graph) error {
	var buf bytes.Buffer
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(&buf, "%d label=%d\n", v, g.Label(uint32(v)))
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(uint32(v)) {
			if u > uint32(v) {
				fmt.Fprintf(&buf, "%d %d\n", v, u)
			}
		}
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func postBenchJob(url string, body []byte) (*service.Job, error) {
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("bench: submit: HTTP %d", resp.StatusCode)
	}
	var job service.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, err
	}
	return &job, nil
}

func waitBenchJob(url, id string) (*service.Job, error) {
	deadline := time.Now().Add(10 * time.Minute)
	for {
		resp, err := http.Get(url + "/jobs/" + id)
		if err != nil {
			return nil, err
		}
		var job service.Job
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch job.State {
		case service.StateDone, service.StateFailed, service.StateCanceled:
			return &job, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("bench: job %s stuck in %s", id, job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
