package bench

// Engine micro-benchmarks for the exploration hot path: one Expand iteration
// (canonical filtering + candidate merging + level building) on a generated
// power-law graph, the workload the §4.2 load balancer targets. Run with
//
//	go test ./internal/bench -bench=BenchmarkExpand -benchmem
//
// TestEmitExpandBenchSnapshot (gated by KALEIDO_BENCH_SNAPSHOT) records the
// same measurements as a JSON snapshot for the performance trajectory in
// BENCH_expand.json.

import (
	"encoding/json"
	"os"
	"testing"

	"kaleido/internal/explore"
	"kaleido/internal/gen"
	"kaleido/internal/graph"
)

var engineGraphs = map[int64]*graph.Graph{}

// engineGraph generates (and memoizes) the power-law benchmark graph.
func engineGraph(tb testing.TB, n, m int, seed int64) *graph.Graph {
	tb.Helper()
	if g, ok := engineGraphs[seed]; ok {
		return g
	}
	g, err := gen.PowerLaw(gen.Config{N: n, M: m, Alpha: 2.6, NumLabels: 8, LabelSkew: 0.7, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	engineGraphs[seed] = g
	return g
}

// engineExplorer builds an explorer expanded to the given depth.
func engineExplorer(tb testing.TB, g *graph.Graph, mode explore.Mode, depth, threads int) *explore.Explorer {
	tb.Helper()
	ex, err := explore.New(explore.Config{Graph: g, Mode: mode, Threads: threads})
	if err != nil {
		tb.Fatal(err)
	}
	if mode == explore.VertexInduced {
		err = ex.InitVertices(nil)
	} else {
		err = ex.InitEdges(nil)
	}
	if err != nil {
		tb.Fatal(err)
	}
	for ex.Depth() < depth {
		if err := ex.Expand(nil, nil); err != nil {
			tb.Fatal(err)
		}
	}
	return ex
}

type expandCase struct {
	name    string
	mode    explore.Mode
	n, m    int
	seed    int64
	depth   int // expand from depth to depth+1 each iteration
	threads int
}

func expandCases() []expandCase {
	return []expandCase{
		{name: "vertex-d3", mode: explore.VertexInduced, n: 4000, m: 16000, seed: 42, depth: 2, threads: 4},
		{name: "vertex-d4", mode: explore.VertexInduced, n: 4000, m: 16000, seed: 42, depth: 3, threads: 4},
		{name: "edge-d3", mode: explore.EdgeInduced, n: 2000, m: 6000, seed: 7, depth: 2, threads: 4},
	}
}

// runExpandCase measures one Expand (depth → depth+1) per iteration, popping
// the produced level so every iteration does identical work.
func runExpandCase(b *testing.B, c expandCase) {
	g := engineGraph(b, c.n, c.m, c.seed)
	ex := engineExplorer(b, g, c.mode, c.depth, c.threads)
	defer ex.Close()
	var produced int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Expand(nil, nil); err != nil {
			b.Fatal(err)
		}
		produced = ex.Count()
		if err := ex.CSE().PopTop(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if produced > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(produced), "ns/emb")
		b.ReportMetric(float64(produced), "embeddings")
	}
}

// BenchmarkExpand measures the canonical-filter expansion hot path.
func BenchmarkExpand(b *testing.B) {
	for _, c := range expandCases() {
		b.Run(c.name, func(b *testing.B) { runExpandCase(b, c) })
	}
}

// BenchmarkForEachExpansion measures the non-materializing expansion walk
// (motif counting's exploration step).
func BenchmarkForEachExpansion(b *testing.B) {
	c := expandCases()[0]
	g := engineGraph(b, c.n, c.m, c.seed)
	ex := engineExplorer(b, g, c.mode, c.depth, c.threads)
	defer ex.Close()
	counts := make([]int64, c.threads)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := ex.ForEachExpansion(nil, func(worker int, emb []uint32, cand uint32) error {
			counts[worker]++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// expandSnapshot is one benchmark measurement in BENCH_expand.json.
type expandSnapshot struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Embeddings  int     `json:"embeddings"`
}

// TestEmitExpandBenchSnapshot writes the Expand measurements to the file
// named by KALEIDO_BENCH_SNAPSHOT (skipped when unset), so the perf
// trajectory can be tracked across changes in BENCH_expand.json.
func TestEmitExpandBenchSnapshot(t *testing.T) {
	path := os.Getenv("KALEIDO_BENCH_SNAPSHOT")
	if path == "" {
		t.Skip("KALEIDO_BENCH_SNAPSHOT unset")
	}
	var snaps []expandSnapshot
	for _, c := range expandCases() {
		c := c
		var produced int
		r := testing.Benchmark(func(b *testing.B) {
			g := engineGraph(b, c.n, c.m, c.seed)
			ex := engineExplorer(b, g, c.mode, c.depth, c.threads)
			defer ex.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ex.Expand(nil, nil); err != nil {
					b.Fatal(err)
				}
				produced = ex.Count()
				if err := ex.CSE().PopTop(); err != nil {
					b.Fatal(err)
				}
			}
		})
		snaps = append(snaps, expandSnapshot{
			Name:        c.name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Embeddings:  produced,
		})
	}
	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
