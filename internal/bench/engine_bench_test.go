package bench

// Engine micro-benchmarks for the exploration hot path: one Expand iteration
// (canonical filtering + candidate merging + level building) on a generated
// power-law graph, the workload the §4.2 load balancer targets. Run with
//
//	go test ./internal/bench -bench=BenchmarkExpand -benchmem
//
// TestEmitExpandBenchSnapshot (gated by KALEIDO_BENCH_SNAPSHOT) records the
// same measurements as a JSON snapshot for the performance trajectory in
// BENCH_expand.json.

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"kaleido/internal/apps"
	"kaleido/internal/explore"
	"kaleido/internal/gen"
	"kaleido/internal/graph"
	"kaleido/internal/storage"
)

var engineGraphs = map[int64]*graph.Graph{}

// engineGraph generates (and memoizes) the power-law benchmark graph.
func engineGraph(tb testing.TB, n, m int, seed int64) *graph.Graph {
	tb.Helper()
	if g, ok := engineGraphs[seed]; ok {
		return g
	}
	g, err := gen.PowerLaw(gen.Config{N: n, M: m, Alpha: 2.6, NumLabels: 8, LabelSkew: 0.7, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	engineGraphs[seed] = g
	return g
}

// engineExplorer builds an explorer expanded to the case's starting depth.
func engineExplorer(tb testing.TB, g *graph.Graph, c expandCase) *explore.Explorer {
	tb.Helper()
	cfg := explore.Config{Graph: g, Mode: c.mode, Threads: c.threads, Predict: c.predict}
	if c.budget > 0 {
		cfg.MemoryBudget = c.budget
		cfg.SpillDir = tb.TempDir()
		cfg.ResidentCompression = c.residentComp
	}
	ex, err := explore.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if c.mode == explore.VertexInduced {
		err = ex.InitVertices(nil)
	} else {
		err = ex.InitEdges(nil)
	}
	if err != nil {
		tb.Fatal(err)
	}
	for ex.Depth() < c.depth {
		if err := ex.Expand(bgCtx, nil, nil); err != nil {
			tb.Fatal(err)
		}
	}
	return ex
}

type expandCase struct {
	name    string
	mode    explore.Mode
	n, m    int
	seed    int64
	depth   int // expand from depth to depth+1 each iteration
	threads int
	predict bool  // enable §4.2 candidate-size prediction
	budget  int64 // memory budget; > 0 spills every level to disk (out-of-core)
	// residentComp selects the compressed-mem residency tier for budgeted
	// cases. The raw spill cases pin CompressionOff so they keep measuring
	// the disk path the budget was sized for; vertex-d4-budget leaves the
	// Auto default and measures the tier avoiding that spill.
	residentComp storage.Compression
}

func expandCases() []expandCase {
	return []expandCase{
		{name: "vertex-d3", mode: explore.VertexInduced, n: 4000, m: 16000, seed: 42, depth: 2, threads: 4},
		{name: "vertex-d4", mode: explore.VertexInduced, n: 4000, m: 16000, seed: 42, depth: 3, threads: 4},
		{name: "edge-d3", mode: explore.EdgeInduced, n: 2000, m: 6000, seed: 7, depth: 2, threads: 4},
		{name: "vertex-d3-disk", mode: explore.VertexInduced, n: 4000, m: 16000, seed: 42, depth: 2, threads: 4, budget: 1, residentComp: storage.CompressionOff},
		// The hybrid case sizes the budget so the governor sends roughly
		// half of the ~2.2 MB leaf level to disk and keeps the rest
		// resident (the §4.1 half-memory-half-disk configuration); its
		// throughput must land strictly between vertex-d3 (all-mem) and
		// vertex-d3-disk (all-disk).
		{name: "vertex-d3-hybrid", mode: explore.VertexInduced, n: 4000, m: 16000, seed: 42, depth: 2, threads: 4, budget: 1_350_000, residentComp: storage.CompressionOff},
		// The budgeted d4 case sizes the budget below the ~179 MB raw leaf
		// level but above its compressed-mem footprint: with the resident
		// tier on (the default) the whole level stays memory-resident in
		// codec blocks, where the same budget under raw residency spills
		// parts to disk (TestBudgetBenchCaseAvoidsSpill pins this split).
		{name: "vertex-d4-budget", mode: explore.VertexInduced, n: 4000, m: 16000, seed: 42, depth: 3, threads: 4, budget: 140 << 20},
	}
}

// appCase is an end-to-end application run on the bench graph — the
// workloads whose terminal expansion the sink pipeline consumes instead of
// materializing (clique's final level through CountSink, motif's Mapper
// through VisitSink). The measured unit is the whole run, exploration plus
// terminal consumption, so the snapshot numbers capture the bytes the fused
// paths stop writing.
type appCase struct {
	name    string
	threads int
	run     func(g *graph.Graph, opt apps.Options) (uint64, error)
}

func appCases() []appCase {
	return []appCase{
		{name: "clique-d4", threads: 4, run: func(g *graph.Graph, opt apps.Options) (uint64, error) {
			return apps.CliqueCount(bgCtx, g, 4, opt)
		}},
		{name: "motif-d3", threads: 4, run: func(g *graph.Graph, opt apps.Options) (uint64, error) {
			res, err := apps.MotifCount(bgCtx, g, 3, opt)
			if err != nil {
				return 0, err
			}
			var total uint64
			for _, pc := range res {
				total += pc.Count
			}
			return total, nil
		}},
	}
}

// measureAppCase benchmarks one application run, returning the result and
// the produced count (clique count / total motif occurrences) so the guard
// can detect correctness drift alongside throughput regressions.
func measureAppCase(c appCase) (testing.BenchmarkResult, int) {
	var produced uint64
	r := testing.Benchmark(func(b *testing.B) {
		g := engineGraph(b, 4000, 16000, 42)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := c.run(g, apps.Options{Threads: c.threads})
			if err != nil {
				b.Fatal(err)
			}
			produced = v
		}
	})
	return r, int(produced)
}

// BenchmarkApps measures the end-to-end application cases of the snapshot.
func BenchmarkApps(b *testing.B) {
	for _, c := range appCases() {
		b.Run(c.name, func(b *testing.B) {
			g := engineGraph(b, 4000, 16000, 42)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.run(g, apps.Options{Threads: c.threads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// shardCase is the prefix-range sharded form of the vertex-d4 expansion:
// k single-threaded sub-runs over degree-mass-balanced vertex ranges of the
// relabeled bench graph, counting the depth-4 frontier concurrently.
type shardCase struct {
	name   string
	shards int
}

func shardCasesBench() []shardCase {
	return []shardCase{
		{name: "shards-1", shards: 1},
		{name: "shards-2", shards: 2},
		{name: "shards-4", shards: 4},
	}
}

// measureShardCase benchmarks one sharded frontier count, returning the
// result and the summed embedding count (pinned to vertex-d4's).
func measureShardCase(c shardCase) (testing.BenchmarkResult, int) {
	var produced uint64
	r := testing.Benchmark(func(b *testing.B) {
		g, err := shardsGraph()
		if err != nil {
			b.Fatal(err)
		}
		exs, err := shardExplorers(g, c.shards)
		if err != nil {
			b.Fatal(err)
		}
		defer closeExplorers(exs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := shardedExpandCount(exs)
			if err != nil {
				b.Fatal(err)
			}
			produced = v
		}
	})
	return r, int(produced)
}

// BenchmarkShards measures the sharded vertex-d4 frontier count.
func BenchmarkShards(b *testing.B) {
	for _, c := range shardCasesBench() {
		b.Run(c.name, func(b *testing.B) {
			g, err := shardsGraph()
			if err != nil {
				b.Fatal(err)
			}
			exs, err := shardExplorers(g, c.shards)
			if err != nil {
				b.Fatal(err)
			}
			defer closeExplorers(exs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := shardedExpandCount(exs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// snapshotCases adds the prediction-enabled variant to the snapshot: each
// child pays a §4.2 candidate-size prediction, making it ~15× slower per op,
// so it is tracked in BENCH_expand.json but kept out of BenchmarkExpand to
// keep CI's benchmark smoke fast.
func snapshotCases() []expandCase {
	return append(expandCases(),
		expandCase{name: "vertex-d4-predict", mode: explore.VertexInduced, n: 4000, m: 16000, seed: 42, depth: 3, threads: 4, predict: true})
}

// measureExpandCase benchmarks one Expand iteration of c, returning the
// result and the produced embedding count.
func measureExpandCase(c expandCase) (testing.BenchmarkResult, int) {
	var produced int
	r := testing.Benchmark(func(b *testing.B) {
		g := engineGraph(b, c.n, c.m, c.seed)
		ex := engineExplorer(b, g, c)
		defer ex.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ex.Expand(bgCtx, nil, nil); err != nil {
				b.Fatal(err)
			}
			produced = ex.Count()
			if err := ex.PopTop(); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r, produced
}

// runExpandCase measures one Expand (depth → depth+1) per iteration, popping
// the produced level so every iteration does identical work.
func runExpandCase(b *testing.B, c expandCase) {
	g := engineGraph(b, c.n, c.m, c.seed)
	ex := engineExplorer(b, g, c)
	defer ex.Close()
	var produced int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ex.Expand(bgCtx, nil, nil); err != nil {
			b.Fatal(err)
		}
		produced = ex.Count()
		if err := ex.PopTop(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if produced > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(produced), "ns/emb")
		b.ReportMetric(float64(produced), "embeddings")
	}
}

// BenchmarkExpand measures the canonical-filter expansion hot path.
func BenchmarkExpand(b *testing.B) {
	for _, c := range expandCases() {
		b.Run(c.name, func(b *testing.B) { runExpandCase(b, c) })
	}
}

// BenchmarkForEachExpansion measures the non-materializing expansion walk
// (motif counting's exploration step).
func BenchmarkForEachExpansion(b *testing.B) {
	c := expandCases()[0]
	g := engineGraph(b, c.n, c.m, c.seed)
	ex := engineExplorer(b, g, c)
	defer ex.Close()
	counts := make([]int64, c.threads)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := ex.ForEachExpansion(bgCtx, nil, func(worker int, emb []uint32, cand uint32) error {
			counts[worker]++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// TestHybridBenchCasePlacement pins the vertex-d3-hybrid budget to its
// intent: the leaf level must end up genuinely hybrid, with a substantial
// share of its bytes on each side, so the benchmark really measures the
// half-memory-half-disk path (not a disguised all-mem or all-disk run).
func TestHybridBenchCasePlacement(t *testing.T) {
	var c expandCase
	for _, ec := range expandCases() {
		if ec.name == "vertex-d3-hybrid" {
			c = ec
		}
	}
	if c.name == "" {
		t.Fatal("vertex-d3-hybrid case missing")
	}
	g := engineGraph(t, c.n, c.m, c.seed)
	ex := engineExplorer(t, g, c)
	defer ex.Close()
	if err := ex.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	stats := ex.LevelStats()
	top := stats[len(stats)-1]
	if top.MemParts == 0 || top.DiskParts == 0 {
		t.Fatalf("leaf level not hybrid: %+v", top)
	}
	total := top.ResidentBytes + top.DiskBytes
	if top.DiskBytes < total/5 || top.DiskBytes > total*4/5 {
		t.Fatalf("placement skewed: %d of %d bytes on disk (want a real split)", top.DiskBytes, total)
	}
	if ex.Bytes() > c.budget {
		t.Fatalf("resident CSE %d exceeds the case budget %d", ex.Bytes(), c.budget)
	}
}

// expandToDepth runs a fresh explorer of the vertex-d4-budget case to its
// full depth under the given resident-compression mode, returning the final
// explorer for inspection (caller closes it).
func budgetCaseExplorer(tb testing.TB, rc storage.Compression) *explore.Explorer {
	tb.Helper()
	var c expandCase
	for _, ec := range expandCases() {
		if ec.name == "vertex-d4-budget" {
			c = ec
		}
	}
	if c.name == "" {
		tb.Fatal("vertex-d4-budget case missing")
	}
	g := engineGraph(tb, c.n, c.m, c.seed)
	ex, err := explore.New(explore.Config{
		Graph: g, Mode: c.mode, Threads: c.threads,
		MemoryBudget: c.budget, SpillDir: tb.TempDir(), ResidentCompression: rc,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := ex.InitVertices(nil); err != nil {
		ex.Close()
		tb.Fatal(err)
	}
	for ex.Depth() < c.depth+1 {
		if err := ex.Expand(bgCtx, nil, nil); err != nil {
			ex.Close()
			tb.Fatal(err)
		}
	}
	return ex
}

// TestBudgetBenchCaseAvoidsSpill pins the vertex-d4-budget case to its
// intent: under its budget the compressed-resident tier (the default) keeps
// the whole leaf level memory-resident, where raw residency must spill parts
// — so the benchmark measures compression buying back the disk round-trip.
func TestBudgetBenchCaseAvoidsSpill(t *testing.T) {
	if raceEnabled {
		t.Skip("depth-4 budget case: minutes under the race detector; the compressed-resident ladder is race-covered by the explore and apps suites")
	}
	comp := budgetCaseExplorer(t, storage.CompressionAuto)
	defer comp.Close()
	raw := budgetCaseExplorer(t, storage.CompressionOff)
	defer raw.Close()
	if comp.Count() != raw.Count() {
		t.Errorf("embedding counts differ: %d compressed-resident vs %d raw", comp.Count(), raw.Count())
	}
	if n := raw.SpilledParts(); n == 0 {
		t.Error("raw residency spilled nothing — the budget is not tight, resize the case")
	}
	if n := comp.SpilledParts(); n > 0 {
		t.Errorf("compressed residency spilled %d parts — the budget no longer fits the compressed level", n)
	}
	if n := comp.CompressedParts(); n == 0 {
		t.Error("compressed-resident run compressed no parts")
	}
}

// TestCompressedResidentBytesGuard pins the compressed-resident tier's
// headline win: on a budget tight enough that every level lives under
// pressure, the resident level data must stand for at least 2x its physical
// footprint (logical bytes per resident byte). Count identity with raw runs
// is covered by TestBudgetBenchCaseAvoidsSpill and the apps conformance
// suite.
func TestCompressedResidentBytesGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("depth-4 budget case: minutes under the race detector; the compressed-resident ladder is race-covered by the explore and apps suites")
	}
	g := engineGraph(t, 4000, 16000, 42)
	ex, err := explore.New(explore.Config{
		Graph: g, Mode: explore.VertexInduced, Threads: 4,
		MemoryBudget: 4 << 20, SpillDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	if err := ex.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	for ex.Depth() < 4 {
		if err := ex.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if ex.CompressedParts() == 0 {
		t.Fatal("tight budget compressed no parts")
	}
	logical, resident := ex.ResidentBytesLogical(), ex.Bytes()
	if resident <= 0 {
		t.Fatalf("resident bytes %d", resident)
	}
	if ratio := float64(logical) / float64(resident); ratio < 2 {
		t.Errorf("resident stretch %.2fx (%d logical / %d resident) — below the 2x goal", ratio, logical, resident)
	} else {
		t.Logf("resident stretch %.2fx (%d logical / %d resident)", ratio, logical, resident)
	}
}

// runDiskCase expands the vertex-d3-disk case once under the given
// compression mode, returning the produced embedding count and the logical /
// physical spilled byte totals.
func runDiskCase(tb testing.TB, comp storage.Compression) (produced int, logical, physical int64) {
	tb.Helper()
	var c expandCase
	for _, ec := range expandCases() {
		if ec.name == "vertex-d3-disk" {
			c = ec
		}
	}
	if c.name == "" {
		tb.Fatal("vertex-d3-disk case missing")
	}
	g := engineGraph(tb, c.n, c.m, c.seed)
	ex, err := explore.New(explore.Config{
		Graph: g, Mode: c.mode, Threads: c.threads,
		MemoryBudget: c.budget, SpillDir: tb.TempDir(), Compression: comp,
		// Raw residency: this guard isolates the spill codec's bytes-on-disk
		// win, so the compressed-mem tier must not absorb any of the spill.
		ResidentCompression: storage.CompressionOff,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer ex.Close()
	if err := ex.InitVertices(nil); err != nil {
		tb.Fatal(err)
	}
	for ex.Depth() < c.depth+1 {
		if err := ex.Expand(bgCtx, nil, nil); err != nil {
			tb.Fatal(err)
		}
	}
	return ex.Count(), ex.SpilledBytes(), ex.SpilledBytesPhysical()
}

// assertCompressedSpill pins the codec's headline win on the out-of-core
// bench case: compression on (the default) must produce the same embeddings
// as raw spilling while putting at least 2x fewer bytes on disk.
func assertCompressedSpill(t *testing.T) {
	t.Helper()
	nAuto, logAuto, physAuto := runDiskCase(t, storage.CompressionAuto)
	nRaw, logRaw, physRaw := runDiskCase(t, storage.CompressionOff)
	if nAuto != nRaw {
		t.Errorf("compressed run produced %d embeddings, raw run %d", nAuto, nRaw)
	}
	if logAuto != logRaw {
		t.Errorf("logical spill bytes differ: %d compressed vs %d raw", logAuto, logRaw)
	}
	if physRaw != logRaw {
		t.Errorf("raw spill physical %d != logical %d", physRaw, logRaw)
	}
	if physRaw == 0 {
		t.Fatal("vertex-d3-disk spilled nothing")
	}
	if physAuto*2 > physRaw {
		t.Errorf("compressed spill %d bytes vs raw %d — below the 2x bytes-on-disk goal (%.2fx)",
			physAuto, physRaw, float64(physRaw)/float64(physAuto))
	} else {
		t.Logf("bytes on disk: %d compressed vs %d raw (%.2fx)", physAuto, physRaw, float64(physRaw)/float64(physAuto))
	}
}

// TestCompressedSpillBytesGuard is the ungated form of the bytes-on-disk
// guard, so the ratio is checked on every `go test` run, not only where the
// benchmark job opted in.
func TestCompressedSpillBytesGuard(t *testing.T) {
	assertCompressedSpill(t)
}

// expandSnapshot is one benchmark measurement in BENCH_expand.json.
type expandSnapshot struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Embeddings  int     `json:"embeddings"`
}

// TestEmitExpandBenchSnapshot writes the Expand measurements to the file
// named by KALEIDO_BENCH_SNAPSHOT (skipped when unset), so the perf
// trajectory can be tracked across changes in BENCH_expand.json.
func TestEmitExpandBenchSnapshot(t *testing.T) {
	path := os.Getenv("KALEIDO_BENCH_SNAPSHOT")
	if path == "" {
		t.Skip("KALEIDO_BENCH_SNAPSHOT unset")
	}
	var snaps []expandSnapshot
	for _, c := range snapshotCases() {
		r, produced := measureExpandCase(c)
		snaps = append(snaps, expandSnapshot{
			Name:        c.name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Embeddings:  produced,
		})
	}
	for _, c := range appCases() {
		r, produced := measureAppCase(c)
		snaps = append(snaps, expandSnapshot{
			Name:        c.name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Embeddings:  produced,
		})
	}
	for _, c := range shardCasesBench() {
		r, produced := measureShardCase(c)
		snaps = append(snaps, expandSnapshot{
			Name:        c.name,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Embeddings:  produced,
		})
	}
	data, err := json.MarshalIndent(snaps, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBenchThroughputGuard re-measures the fast benchmark cases and fails on
// a >30% throughput regression versus the committed BENCH_expand.json
// "after" section. Gated by KALEIDO_BENCH_GUARD (path to the snapshot) so it
// only runs where someone — CI's benchmark job — opted in.
//
// The comparison is absolute ns/op, so it assumes the runner is roughly
// comparable to the snapshot machine (recorded in the snapshot's "cpu"
// field). On persistently slower hardware, widen KALEIDO_BENCH_TOLERANCE
// (default 1.30) rather than regenerating the snapshot.
//
// The vertex-d3-disk and vertex-d3-hybrid cases run the full hardened spill
// path: since format version 2 every compressed block carries a CRC32C that
// is verified on every decode, and all file access goes through the vfs
// seam. The guard therefore prices checksummed decode (and the seam's
// indirection) into the same regression budget as the rest of the read
// path — a checksum implementation that fell off its hardware-accelerated
// fast path would fail here, not just slow CI down silently.
func TestBenchThroughputGuard(t *testing.T) {
	path := os.Getenv("KALEIDO_BENCH_GUARD")
	if path == "" {
		t.Skip("KALEIDO_BENCH_GUARD unset")
	}
	tolerance := 1.30
	if s := os.Getenv("KALEIDO_BENCH_TOLERANCE"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 1 {
			t.Fatalf("bad KALEIDO_BENCH_TOLERANCE %q", s)
		}
		tolerance = v
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		After struct {
			Results []expandSnapshot `json:"results"`
		} `json:"after"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	byName := map[string]expandSnapshot{}
	for _, r := range snap.After.Results {
		byName[r.Name] = r
	}
	guardOne := func(name string, measure func() (testing.BenchmarkResult, int)) {
		want, ok := byName[name]
		if !ok {
			t.Errorf("%s: missing from snapshot %s", name, path)
			return
		}
		// Best of three damps scheduler noise; only a sustained slowdown
		// beyond the tolerance fails.
		best := float64(0)
		bestAllocs := int64(-1)
		produced := 0
		for run := 0; run < 3; run++ {
			r, p := measure()
			if ns := float64(r.NsPerOp()); best == 0 || ns < best {
				best = ns
			}
			if a := r.AllocsPerOp(); bestAllocs < 0 || a < bestAllocs {
				bestAllocs = a
			}
			produced = p
		}
		if produced != want.Embeddings {
			t.Errorf("%s: produced %d embeddings, snapshot says %d — correctness drift, regenerate BENCH_expand.json deliberately",
				name, produced, want.Embeddings)
		}
		if best > want.NsPerOp*tolerance {
			t.Errorf("%s: %.1fms/op vs snapshot %.1fms/op — >%.0f%% throughput regression",
				name, best/1e6, want.NsPerOp/1e6, (tolerance-1)*100)
		} else {
			t.Logf("%s: %.1fms/op (snapshot %.1fms/op)", name, best/1e6, want.NsPerOp/1e6)
		}
		// Allocation regression: the hot paths pool their buffers, so a
		// doubling of allocs/op means a pool stopped being reused (a much
		// cheaper symptom to catch here than as GC time in production).
		if want.AllocsPerOp > 0 && bestAllocs > 2*want.AllocsPerOp {
			t.Errorf("%s: %d allocs/op vs snapshot %d — >2x allocation regression",
				name, bestAllocs, want.AllocsPerOp)
		}
	}
	guarded := map[string]bool{"vertex-d3": true, "edge-d3": true, "vertex-d3-disk": true, "vertex-d3-hybrid": true, "vertex-d4-budget": true}
	for _, c := range expandCases() {
		if !guarded[c.name] {
			continue
		}
		c := c
		guardOne(c.name, func() (testing.BenchmarkResult, int) { return measureExpandCase(c) })
	}
	// The fused application paths (CountSink / VisitSink) are guarded
	// end-to-end: both the count they produce and their throughput.
	for _, c := range appCases() {
		c := c
		guardOne(c.name, func() (testing.BenchmarkResult, int) { return measureAppCase(c) })
	}
	// Sharded execution: shards=1 guards the relabeled single-shard path and
	// shards=4 the concurrent fan-out; both pin the summed frontier count to
	// vertex-d4's (the shard ranges must partition the embedding space).
	for _, c := range shardCasesBench() {
		if c.shards == 2 {
			continue
		}
		c := c
		guardOne(c.name, func() (testing.BenchmarkResult, int) { return measureShardCase(c) })
	}
	// Alongside throughput, guard the codec's bytes-on-disk win.
	assertCompressedSpill(t)
}
