package bench

// The fault-injection campaign behind `kbench -faults`: not a paper artifact
// but a robustness demonstration on the same harness. A seeded vfs.FaultFS
// injects transient spill faults (EIO reads/writes, short writes) at a fixed
// per-operation probability while motif counting (4-motif; 3-motif under
// -quick) runs across the three storage regimes; the campaign reports the retry counter and whether the
// counts stayed identical to the fault-free run. A second table shows the
// hard-fault contract: bit-flipped spill reads fail typed as ErrSpillCorrupt,
// a full device as ErrNoSpace.

import (
	"errors"
	"fmt"

	"kaleido/internal/apps"
	"kaleido/internal/memtrack"
	"kaleido/internal/storage"
	"kaleido/internal/storage/vfs"
)

// faultRegimes is the storage matrix of the campaign: all-memory (no spill
// I/O to fault), hybrid (parts split between RAM and disk), all-disk.
var faultRegimes = []struct {
	name   string
	budget int64
}{
	{"mem", 0},
	{"hybrid", 32 << 10},
	{"disk", 1},
}

func faults(cfg RunConfig) ([]Result, error) {
	p := cfg.FaultP
	if p <= 0 {
		p = 0.01
	}
	seed := cfg.FaultSeed
	if seed == 0 {
		seed = 42
	}
	g, err := loadDataset("citeseer", cfg)
	if err != nil {
		return nil, err
	}
	k := 4
	if cfg.Quick {
		k = 3
	}
	want, err := apps.MotifCount(bgCtx, g, k, apps.Options{Threads: cfg.Threads})
	if err != nil {
		return nil, err
	}

	transient := Result{
		ID:     "faults",
		Title:  fmt.Sprintf("%d-Motif/citeseer under seeded transient spill faults (p=%.3g per class, seed %d)", k, p, seed),
		Header: []string{"Regime", "clean(s)", "faulted(s)", "retries", "injected", "identical"},
	}
	for _, reg := range faultRegimes {
		clean := timed(func(tr *memtrack.Tracker) error {
			_, err := apps.MotifCount(bgCtx, g, k, apps.Options{
				Threads: cfg.Threads, MemoryBudget: reg.budget, SpillDir: cfg.SpillDir, Tracker: tr,
			})
			return err
		})
		ff := vfs.NewFaultFS(nil, vfs.Fault{Seed: seed, ReadErrP: p, WriteErrP: p, ShortWriteP: p})
		var got []apps.PatternCount
		var retries int64
		faulted := timed(func(tr *memtrack.Tracker) error {
			var err error
			got, err = apps.MotifCount(bgCtx, g, k, apps.Options{
				Threads: cfg.Threads, MemoryBudget: reg.budget, SpillDir: cfg.SpillDir, FS: ff, Tracker: tr,
			})
			retries = tr.IORetries()
			return err
		})
		st := ff.Stats()
		transient.Rows = append(transient.Rows, []string{
			reg.name, clean.timeCell(), faulted.timeCell(),
			fmt.Sprint(retries),
			fmt.Sprint(st.ReadErrs + st.WriteErrs + st.ShortWrites),
			motifAgreeCell(got, want, faulted.skipped),
		})
	}
	transient.Notes = append(transient.Notes,
		"identical = the faulted run's motif counts match the fault-free run exactly",
		"injected = EIO reads + EIO writes + short writes drawn by the seeded schedule; retries counts backoff sleeps that absorbed them")

	hard := Result{
		ID:     "faults-hard",
		Title:  "hard-fault contract — typed failure, no wrong answers (all-disk regime)",
		Header: []string{"Fault", "want", "errors.Is", "error"},
	}
	for _, h := range []struct {
		name     string
		schedule vfs.Fault
		sentinel error
		wantName string
	}{
		{"bit-flip reads", vfs.Fault{Seed: seed, BitFlipP: 1}, storage.ErrSpillCorrupt, "ErrSpillCorrupt"},
		{"device full", vfs.Fault{Seed: seed, WriteCap: 4 << 10}, storage.ErrNoSpace, "ErrNoSpace"},
	} {
		ff := vfs.NewFaultFS(nil, h.schedule)
		_, err := apps.MotifCount(bgCtx, g, k, apps.Options{
			Threads: cfg.Threads, MemoryBudget: 1, SpillDir: cfg.SpillDir, FS: ff,
		})
		hard.Rows = append(hard.Rows, []string{
			h.name, h.wantName, fmt.Sprint(errors.Is(err, h.sentinel)), truncateErr(err),
		})
	}
	hard.Notes = append(hard.Notes,
		"corruption is never retried and carries part/block coordinates; ENOSPC is terminal — the governor stops spilling and the run drains cleanly")
	return []Result{transient, hard}, nil
}

func motifAgreeCell(got, want []apps.PatternCount, skipped string) string {
	if skipped != "" {
		return "-"
	}
	if len(got) != len(want) {
		return "no"
	}
	for i := range got {
		if got[i].Count != want[i].Count || got[i].Pattern.Encode() != want[i].Pattern.Encode() {
			return "no"
		}
	}
	return "yes"
}

func truncateErr(err error) string {
	if err == nil {
		return "<nil>"
	}
	s := err.Error()
	if len(s) > 72 {
		s = s[:69] + "..."
	}
	return s
}
