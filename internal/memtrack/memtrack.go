// Package memtrack provides the memory and I/O accounting used by the
// evaluation harness (§6): explicit byte counters for the major data
// structures (CSE levels, pattern maps, buffers) with peak watermarks, plus
// read/write I/O counters for the hybrid storage experiments (Fig. 15).
// Explicit accounting is used instead of runtime.MemStats because the
// paper's memory-consumption tables compare data-structure footprints, which
// GC-managed heap sizes would blur.
//
// An Arbiter extends the accounting across concurrent runs: child trackers
// forward every charge to a combined pool, so one memory budget can be
// shared by N co-located runs (the engine's multi-run surface).
package memtrack

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracker accumulates live bytes, a peak watermark, and I/O totals. All
// methods are safe for concurrent use. The zero value is ready to use.
type Tracker struct {
	live dialAtomic
	peak atomic.Int64

	// parent, when non-nil, is the Arbiter whose combined pool this
	// tracker's allocations also charge: every Alloc/Free (and I/O count)
	// is forwarded, so budget decisions can be made against the total of
	// all sibling runs instead of this run alone.
	parent *Arbiter

	readBytes  atomic.Int64
	writeBytes atomic.Int64

	// Spilled level data, counted once per sealed part: logical is the raw
	// word size of the spilled values, physical the bytes that actually hit
	// disk — equal unless the spill files are compressed.
	spillLogical  atomic.Int64
	spillPhysical atomic.Int64

	// ioRetries counts transient spill I/O errors that were retried (each
	// backoff sleep is one retry) — the robustness counter behind
	// Stats.IORetries.
	ioRetries atomic.Int64

	// marks is a copy-on-write list of high-water callbacks; Alloc/Free read
	// it with one atomic load so untriggered watermarks cost nothing on the
	// hot path.
	marks   atomic.Pointer[[]*watermark]
	marksMu sync.Mutex

	samples  []IOSample
	sampleMu chan struct{} // 1-buffered semaphore guarding samples
}

// watermark is one registered high-water callback. fired keeps the callback
// edge-triggered: it runs once when live crosses limit from below and is
// re-armed only after live drops back under limit.
type watermark struct {
	limit int64
	fired atomic.Bool
	fn    func(live int64)
}

type dialAtomic struct{ v atomic.Int64 }

// IOSample is one point of the I/O timeline (Fig. 15's read/write series).
type IOSample struct {
	At         time.Time
	ReadBytes  int64 // cumulative
	WriteBytes int64 // cumulative
}

// New returns a fresh tracker.
func New() *Tracker {
	t := &Tracker{sampleMu: make(chan struct{}, 1)}
	t.sampleMu <- struct{}{}
	return t
}

// Arbiter shares one memory budget across the trackers of concurrent runs.
// Each run keeps its own child Tracker (per-run Stats stay per-run), but
// every allocation is also charged to the arbiter's combined pool, so the
// §4.1 spill governor can fire on the total resident bytes of all co-located
// runs — N runs together respect one budget instead of each believing it
// owns the whole machine. The Arbiter embeds a Tracker holding the combined
// accounting.
type Arbiter struct {
	Tracker
	budget int64

	// reserved is the sum of outstanding admission reservations: bytes a
	// queued-then-released run is projected to allocate but has not yet.
	// Reservations never charge Live (they must not trigger the spill
	// governor); they only narrow the headroom admission decisions see.
	reserved atomic.Int64
}

// NewArbiter creates an arbiter for one shared budget (0 = unbudgeted, the
// combined accounting is still kept).
func NewArbiter(budget int64) *Arbiter {
	a := &Arbiter{budget: budget}
	a.sampleMu = make(chan struct{}, 1)
	a.sampleMu <- struct{}{}
	return a
}

// Budget returns the shared budget the arbiter was created with.
func (a *Arbiter) Budget() int64 { return a.budget }

// Reservation is a claim on future budget headroom, held by an admission
// controller from the moment a run is released until the run completes. It
// does not charge Live — a reservation must never trigger spilling in the
// sibling runs — it only reduces the headroom later admission decisions see,
// so N runs released in quick succession cannot all be admitted against the
// same free bytes before any of them has allocated.
type Reservation struct {
	a        *Arbiter
	n        int64
	released atomic.Bool
}

// Reserve claims n bytes of budget headroom and returns the handle that
// gives them back. Negative n is treated as zero.
func (a *Arbiter) Reserve(n int64) *Reservation {
	if n < 0 {
		n = 0
	}
	a.reserved.Add(n)
	return &Reservation{a: a, n: n}
}

// Release returns the reservation's bytes to the headroom pool. Safe to call
// more than once; only the first call has an effect.
func (r *Reservation) Release() {
	if r == nil || !r.released.CompareAndSwap(false, true) {
		return
	}
	r.a.reserved.Add(-r.n)
}

// Bytes returns the size the reservation was taken out for.
func (r *Reservation) Bytes() int64 { return r.n }

// Reserved returns the sum of outstanding reservations.
func (a *Arbiter) Reserved() int64 { return a.reserved.Load() }

// NewTracker vends a child tracker whose allocations charge both itself and
// the arbiter's combined pool.
func (a *Arbiter) NewTracker() *Tracker {
	t := New()
	t.parent = a
	return t
}

// SharedLive returns the live bytes of the whole budget scope: the combined
// total of all sibling trackers when this tracker is the child of an
// Arbiter, the tracker's own live bytes otherwise. Budget and watermark
// decisions must use this, not Live — under an arbiter the watermark is a
// cross-run property.
func (t *Tracker) SharedLive() int64 {
	if t.parent != nil {
		return t.parent.Live()
	}
	return t.Live()
}

// OnSharedHighWater is OnHighWater registered at the budget scope: on the
// arbiter's combined live bytes when this tracker has one, on the tracker
// itself otherwise. Callbacks may fire on any sibling run's allocating
// goroutine.
func (t *Tracker) OnSharedHighWater(limit int64, fn func(live int64)) (cancel func()) {
	if t.parent != nil {
		return t.parent.OnHighWater(limit, fn)
	}
	return t.OnHighWater(limit, fn)
}

// Alloc records n live bytes and updates the peak watermark.
func (t *Tracker) Alloc(n int64) {
	if t.parent != nil {
		t.parent.Tracker.Alloc(n)
	}
	live := t.live.v.Add(n)
	if ms := t.marks.Load(); ms != nil {
		for _, m := range *ms {
			if live >= m.limit && m.fired.CompareAndSwap(false, true) {
				m.fn(live)
			}
		}
	}
	for {
		p := t.peak.Load()
		if live <= p || t.peak.CompareAndSwap(p, live) {
			return
		}
	}
}

// Free releases n live bytes.
func (t *Tracker) Free(n int64) {
	if t.parent != nil {
		t.parent.Tracker.Free(n)
	}
	live := t.live.v.Add(-n)
	if ms := t.marks.Load(); ms != nil {
		for _, m := range *ms {
			if live < m.limit {
				m.fired.Store(false) // re-arm for the next crossing
			}
		}
	}
}

// OnHighWater registers fn to run when live bytes cross limit from below —
// the back-pressure signal of the §4.1 budget governor: hybrid level builders
// subscribe so that tracked allocations outside the CSE (pattern maps,
// buffers) can force mid-build spilling before the budget is blown. The
// callback is edge-triggered (once per crossing; re-armed when live drops
// back under limit) and runs on the allocating goroutine, so it must be
// cheap and non-blocking. The returned cancel removes the registration.
func (t *Tracker) OnHighWater(limit int64, fn func(live int64)) (cancel func()) {
	m := &watermark{limit: limit, fn: fn}
	t.marksMu.Lock()
	var next []*watermark
	if cur := t.marks.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, m)
	t.marks.Store(&next)
	t.marksMu.Unlock()
	return func() {
		t.marksMu.Lock()
		defer t.marksMu.Unlock()
		cur := t.marks.Load()
		if cur == nil {
			return
		}
		trimmed := make([]*watermark, 0, len(*cur))
		for _, w := range *cur {
			if w != m {
				trimmed = append(trimmed, w)
			}
		}
		t.marks.Store(&trimmed)
	}
}

// Live returns the current live byte count.
func (t *Tracker) Live() int64 { return t.live.v.Load() }

// Peak returns the high watermark of live bytes.
func (t *Tracker) Peak() int64 { return t.peak.Load() }

// ReadIO records n bytes read from disk.
func (t *Tracker) ReadIO(n int64) {
	if t.parent != nil {
		t.parent.readBytes.Add(n)
	}
	t.readBytes.Add(n)
}

// WriteIO records n bytes written to disk.
func (t *Tracker) WriteIO(n int64) {
	if t.parent != nil {
		t.parent.writeBytes.Add(n)
	}
	t.writeBytes.Add(n)
}

// SpillIO records one sealed spill part: logical raw bytes vs the physical
// bytes written, the pair that separates level size from disk footprint when
// spill files are compressed.
func (t *Tracker) SpillIO(logical, physical int64) {
	if t.parent != nil {
		t.parent.spillLogical.Add(logical)
		t.parent.spillPhysical.Add(physical)
	}
	t.spillLogical.Add(logical)
	t.spillPhysical.Add(physical)
}

// NoteIORetry records one retried transient spill I/O error.
func (t *Tracker) NoteIORetry() {
	if t.parent != nil {
		t.parent.ioRetries.Add(1)
	}
	t.ioRetries.Add(1)
}

// IORetries returns the cumulative count of retried transient I/O errors.
func (t *Tracker) IORetries() int64 { return t.ioRetries.Load() }

// SpillTotals returns cumulative (logical, physical) spilled bytes.
func (t *Tracker) SpillTotals() (logical, physical int64) {
	return t.spillLogical.Load(), t.spillPhysical.Load()
}

// IOTotals returns cumulative (read, write) bytes.
func (t *Tracker) IOTotals() (read, write int64) {
	return t.readBytes.Load(), t.writeBytes.Load()
}

// SampleIO appends a timeline point with the current cumulative totals.
func (t *Tracker) SampleIO() {
	r, w := t.IOTotals()
	<-t.sampleMu
	t.samples = append(t.samples, IOSample{At: time.Now(), ReadBytes: r, WriteBytes: w})
	t.sampleMu <- struct{}{}
}

// Samples returns a copy of the I/O timeline.
func (t *Tracker) Samples() []IOSample {
	<-t.sampleMu
	out := append([]IOSample(nil), t.samples...)
	t.sampleMu <- struct{}{}
	return out
}

// Reset clears all counters and samples.
func (t *Tracker) Reset() {
	t.live.v.Store(0)
	t.peak.Store(0)
	t.readBytes.Store(0)
	t.writeBytes.Store(0)
	t.spillLogical.Store(0)
	t.spillPhysical.Store(0)
	t.ioRetries.Store(0)
	<-t.sampleMu
	t.samples = nil
	t.sampleMu <- struct{}{}
}
