// Package memtrack provides the memory and I/O accounting used by the
// evaluation harness (§6): explicit byte counters for the major data
// structures (CSE levels, pattern maps, buffers) with peak watermarks, plus
// read/write I/O counters for the hybrid storage experiments (Fig. 15).
// Explicit accounting is used instead of runtime.MemStats because the
// paper's memory-consumption tables compare data-structure footprints, which
// GC-managed heap sizes would blur.
package memtrack

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracker accumulates live bytes, a peak watermark, and I/O totals. All
// methods are safe for concurrent use. The zero value is ready to use.
type Tracker struct {
	live dialAtomic
	peak atomic.Int64

	readBytes  atomic.Int64
	writeBytes atomic.Int64

	// marks is a copy-on-write list of high-water callbacks; Alloc/Free read
	// it with one atomic load so untriggered watermarks cost nothing on the
	// hot path.
	marks   atomic.Pointer[[]*watermark]
	marksMu sync.Mutex

	samples  []IOSample
	sampleMu chan struct{} // 1-buffered semaphore guarding samples
}

// watermark is one registered high-water callback. fired keeps the callback
// edge-triggered: it runs once when live crosses limit from below and is
// re-armed only after live drops back under limit.
type watermark struct {
	limit int64
	fired atomic.Bool
	fn    func(live int64)
}

type dialAtomic struct{ v atomic.Int64 }

// IOSample is one point of the I/O timeline (Fig. 15's read/write series).
type IOSample struct {
	At         time.Time
	ReadBytes  int64 // cumulative
	WriteBytes int64 // cumulative
}

// New returns a fresh tracker.
func New() *Tracker {
	t := &Tracker{sampleMu: make(chan struct{}, 1)}
	t.sampleMu <- struct{}{}
	return t
}

// Alloc records n live bytes and updates the peak watermark.
func (t *Tracker) Alloc(n int64) {
	live := t.live.v.Add(n)
	if ms := t.marks.Load(); ms != nil {
		for _, m := range *ms {
			if live >= m.limit && m.fired.CompareAndSwap(false, true) {
				m.fn(live)
			}
		}
	}
	for {
		p := t.peak.Load()
		if live <= p || t.peak.CompareAndSwap(p, live) {
			return
		}
	}
}

// Free releases n live bytes.
func (t *Tracker) Free(n int64) {
	live := t.live.v.Add(-n)
	if ms := t.marks.Load(); ms != nil {
		for _, m := range *ms {
			if live < m.limit {
				m.fired.Store(false) // re-arm for the next crossing
			}
		}
	}
}

// OnHighWater registers fn to run when live bytes cross limit from below —
// the back-pressure signal of the §4.1 budget governor: hybrid level builders
// subscribe so that tracked allocations outside the CSE (pattern maps,
// buffers) can force mid-build spilling before the budget is blown. The
// callback is edge-triggered (once per crossing; re-armed when live drops
// back under limit) and runs on the allocating goroutine, so it must be
// cheap and non-blocking. The returned cancel removes the registration.
func (t *Tracker) OnHighWater(limit int64, fn func(live int64)) (cancel func()) {
	m := &watermark{limit: limit, fn: fn}
	t.marksMu.Lock()
	var next []*watermark
	if cur := t.marks.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, m)
	t.marks.Store(&next)
	t.marksMu.Unlock()
	return func() {
		t.marksMu.Lock()
		defer t.marksMu.Unlock()
		cur := t.marks.Load()
		if cur == nil {
			return
		}
		trimmed := make([]*watermark, 0, len(*cur))
		for _, w := range *cur {
			if w != m {
				trimmed = append(trimmed, w)
			}
		}
		t.marks.Store(&trimmed)
	}
}

// Live returns the current live byte count.
func (t *Tracker) Live() int64 { return t.live.v.Load() }

// Peak returns the high watermark of live bytes.
func (t *Tracker) Peak() int64 { return t.peak.Load() }

// ReadIO records n bytes read from disk.
func (t *Tracker) ReadIO(n int64) { t.readBytes.Add(n) }

// WriteIO records n bytes written to disk.
func (t *Tracker) WriteIO(n int64) { t.writeBytes.Add(n) }

// IOTotals returns cumulative (read, write) bytes.
func (t *Tracker) IOTotals() (read, write int64) {
	return t.readBytes.Load(), t.writeBytes.Load()
}

// SampleIO appends a timeline point with the current cumulative totals.
func (t *Tracker) SampleIO() {
	r, w := t.IOTotals()
	<-t.sampleMu
	t.samples = append(t.samples, IOSample{At: time.Now(), ReadBytes: r, WriteBytes: w})
	t.sampleMu <- struct{}{}
}

// Samples returns a copy of the I/O timeline.
func (t *Tracker) Samples() []IOSample {
	<-t.sampleMu
	out := append([]IOSample(nil), t.samples...)
	t.sampleMu <- struct{}{}
	return out
}

// Reset clears all counters and samples.
func (t *Tracker) Reset() {
	t.live.v.Store(0)
	t.peak.Store(0)
	t.readBytes.Store(0)
	t.writeBytes.Store(0)
	<-t.sampleMu
	t.samples = nil
	t.sampleMu <- struct{}{}
}
