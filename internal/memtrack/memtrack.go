// Package memtrack provides the memory and I/O accounting used by the
// evaluation harness (§6): explicit byte counters for the major data
// structures (CSE levels, pattern maps, buffers) with peak watermarks, plus
// read/write I/O counters for the hybrid storage experiments (Fig. 15).
// Explicit accounting is used instead of runtime.MemStats because the
// paper's memory-consumption tables compare data-structure footprints, which
// GC-managed heap sizes would blur.
package memtrack

import (
	"sync/atomic"
	"time"
)

// Tracker accumulates live bytes, a peak watermark, and I/O totals. All
// methods are safe for concurrent use. The zero value is ready to use.
type Tracker struct {
	live dialAtomic
	peak atomic.Int64

	readBytes  atomic.Int64
	writeBytes atomic.Int64

	samples  []IOSample
	sampleMu chan struct{} // 1-buffered semaphore guarding samples
}

type dialAtomic struct{ v atomic.Int64 }

// IOSample is one point of the I/O timeline (Fig. 15's read/write series).
type IOSample struct {
	At         time.Time
	ReadBytes  int64 // cumulative
	WriteBytes int64 // cumulative
}

// New returns a fresh tracker.
func New() *Tracker {
	t := &Tracker{sampleMu: make(chan struct{}, 1)}
	t.sampleMu <- struct{}{}
	return t
}

// Alloc records n live bytes and updates the peak watermark.
func (t *Tracker) Alloc(n int64) {
	live := t.live.v.Add(n)
	for {
		p := t.peak.Load()
		if live <= p || t.peak.CompareAndSwap(p, live) {
			return
		}
	}
}

// Free releases n live bytes.
func (t *Tracker) Free(n int64) { t.live.v.Add(-n) }

// Live returns the current live byte count.
func (t *Tracker) Live() int64 { return t.live.v.Load() }

// Peak returns the high watermark of live bytes.
func (t *Tracker) Peak() int64 { return t.peak.Load() }

// ReadIO records n bytes read from disk.
func (t *Tracker) ReadIO(n int64) { t.readBytes.Add(n) }

// WriteIO records n bytes written to disk.
func (t *Tracker) WriteIO(n int64) { t.writeBytes.Add(n) }

// IOTotals returns cumulative (read, write) bytes.
func (t *Tracker) IOTotals() (read, write int64) {
	return t.readBytes.Load(), t.writeBytes.Load()
}

// SampleIO appends a timeline point with the current cumulative totals.
func (t *Tracker) SampleIO() {
	r, w := t.IOTotals()
	<-t.sampleMu
	t.samples = append(t.samples, IOSample{At: time.Now(), ReadBytes: r, WriteBytes: w})
	t.sampleMu <- struct{}{}
}

// Samples returns a copy of the I/O timeline.
func (t *Tracker) Samples() []IOSample {
	<-t.sampleMu
	out := append([]IOSample(nil), t.samples...)
	t.sampleMu <- struct{}{}
	return out
}

// Reset clears all counters and samples.
func (t *Tracker) Reset() {
	t.live.v.Store(0)
	t.peak.Store(0)
	t.readBytes.Store(0)
	t.writeBytes.Store(0)
	<-t.sampleMu
	t.samples = nil
	t.sampleMu <- struct{}{}
}
