package memtrack

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPeakTracking(t *testing.T) {
	tr := New()
	tr.Alloc(100)
	tr.Alloc(50)
	tr.Free(120)
	tr.Alloc(10)
	if tr.Live() != 40 {
		t.Fatalf("Live = %d, want 40", tr.Live())
	}
	if tr.Peak() != 150 {
		t.Fatalf("Peak = %d, want 150", tr.Peak())
	}
}

func TestConcurrentAlloc(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Alloc(3)
				tr.Free(3)
			}
		}()
	}
	wg.Wait()
	if tr.Live() != 0 {
		t.Fatalf("Live = %d, want 0", tr.Live())
	}
	if tr.Peak() < 3 {
		t.Fatalf("Peak = %d, want ≥ 3", tr.Peak())
	}
}

func TestIOCountersAndSamples(t *testing.T) {
	tr := New()
	tr.ReadIO(10)
	tr.WriteIO(20)
	tr.SampleIO()
	tr.ReadIO(5)
	tr.SampleIO()
	r, w := tr.IOTotals()
	if r != 15 || w != 20 {
		t.Fatalf("IOTotals = %d,%d", r, w)
	}
	s := tr.Samples()
	if len(s) != 2 || s[0].ReadBytes != 10 || s[1].ReadBytes != 15 {
		t.Fatalf("samples = %+v", s)
	}
}

func TestReset(t *testing.T) {
	tr := New()
	tr.Alloc(5)
	tr.ReadIO(5)
	tr.SampleIO()
	tr.Reset()
	if tr.Live() != 0 || tr.Peak() != 0 {
		t.Fatal("reset did not clear counters")
	}
	if r, w := tr.IOTotals(); r != 0 || w != 0 {
		t.Fatal("reset did not clear IO")
	}
	if len(tr.Samples()) != 0 {
		t.Fatal("reset did not clear samples")
	}
}

func TestOnHighWater(t *testing.T) {
	tr := New()
	var fired int
	var lastLive int64
	cancel := tr.OnHighWater(100, func(live int64) {
		fired++
		lastLive = live
	})
	tr.Alloc(50)
	if fired != 0 {
		t.Fatal("fired below the limit")
	}
	tr.Alloc(60) // crosses 100
	if fired != 1 || lastLive != 110 {
		t.Fatalf("fired=%d live=%d after crossing", fired, lastLive)
	}
	tr.Alloc(5) // still above: edge-triggered, no refire
	if fired != 1 {
		t.Fatalf("refired while above the limit (fired=%d)", fired)
	}
	tr.Free(20) // drops to 95: re-arms
	tr.Alloc(10)
	if fired != 2 {
		t.Fatalf("did not refire after re-arming (fired=%d)", fired)
	}
	tr.Free(105)
	cancel()
	tr.Alloc(200)
	if fired != 2 {
		t.Fatalf("fired after cancel (fired=%d)", fired)
	}
}

func TestOnHighWaterConcurrent(t *testing.T) {
	tr := New()
	var fired atomic.Int64
	tr.OnHighWater(1000, func(int64) { fired.Add(1) })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Alloc(1)
			}
		}()
	}
	wg.Wait()
	if got := fired.Load(); got != 1 {
		t.Fatalf("high-water fired %d times for one crossing", got)
	}
}

func TestArbiterCombinedAccounting(t *testing.T) {
	a := NewArbiter(1000)
	if a.Budget() != 1000 {
		t.Fatalf("Budget = %d", a.Budget())
	}
	t1, t2 := a.NewTracker(), a.NewTracker()
	t1.Alloc(300)
	t2.Alloc(400)
	if t1.Live() != 300 || t2.Live() != 400 {
		t.Fatalf("child live = %d/%d", t1.Live(), t2.Live())
	}
	if a.Live() != 700 {
		t.Fatalf("combined live = %d, want 700", a.Live())
	}
	if t1.SharedLive() != 700 || t2.SharedLive() != 700 {
		t.Fatalf("SharedLive = %d/%d, want 700", t1.SharedLive(), t2.SharedLive())
	}
	t1.Free(300)
	if a.Live() != 400 || a.Peak() != 700 {
		t.Fatalf("after free: live=%d peak=%d", a.Live(), a.Peak())
	}
	// A parentless tracker's shared scope is itself.
	solo := New()
	solo.Alloc(10)
	if solo.SharedLive() != 10 {
		t.Fatalf("solo SharedLive = %d", solo.SharedLive())
	}
}

func TestArbiterSharedHighWater(t *testing.T) {
	a := NewArbiter(100)
	t1, t2 := a.NewTracker(), a.NewTracker()
	var fired atomic.Int64
	cancel := t1.OnSharedHighWater(100, func(int64) { fired.Add(1) })
	defer cancel()
	t1.Alloc(60)
	if fired.Load() != 0 {
		t.Fatal("fired below the shared limit")
	}
	// The sibling's allocation crosses the combined limit — the callback
	// must fire even though neither tracker crossed it alone.
	t2.Alloc(60)
	if fired.Load() != 1 {
		t.Fatalf("fired=%d after a cross-run crossing", fired.Load())
	}
}

func TestArbiterIOForwarding(t *testing.T) {
	a := NewArbiter(0)
	t1, t2 := a.NewTracker(), a.NewTracker()
	t1.ReadIO(5)
	t2.WriteIO(7)
	r, w := a.IOTotals()
	if r != 5 || w != 7 {
		t.Fatalf("combined IO = %d/%d", r, w)
	}
	if r, _ := t1.IOTotals(); r != 5 {
		t.Fatalf("child IO = %d", r)
	}
}

func TestArbiterConcurrent(t *testing.T) {
	a := NewArbiter(1 << 30)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := a.NewTracker()
			for j := 0; j < 1000; j++ {
				tr.Alloc(3)
				tr.Free(3)
			}
		}()
	}
	wg.Wait()
	if a.Live() != 0 {
		t.Fatalf("combined live = %d, want 0", a.Live())
	}
}

func TestArbiterReservations(t *testing.T) {
	a := NewArbiter(1000)
	if a.Reserved() != 0 {
		t.Fatalf("fresh arbiter reserved = %d", a.Reserved())
	}
	r1 := a.Reserve(300)
	r2 := a.Reserve(-5) // negative clamps to zero
	if a.Reserved() != 300 {
		t.Fatalf("reserved = %d, want 300", a.Reserved())
	}
	if r1.Bytes() != 300 || r2.Bytes() != 0 {
		t.Fatalf("reservation sizes = %d, %d", r1.Bytes(), r2.Bytes())
	}
	// Reservations narrow headroom without charging Live — they must never
	// look like resident bytes to the spill governor.
	if a.Live() != 0 {
		t.Fatalf("reservation charged Live: %d", a.Live())
	}
	r1.Release()
	r1.Release() // idempotent
	r2.Release()
	if a.Reserved() != 0 {
		t.Fatalf("reserved after release = %d, want 0", a.Reserved())
	}
	var nilRes *Reservation
	nilRes.Release() // nil-safe
}

func TestArbiterReservationsConcurrent(t *testing.T) {
	a := NewArbiter(1 << 30)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r := a.Reserve(7)
				r.Release()
			}
		}()
	}
	wg.Wait()
	if a.Reserved() != 0 {
		t.Fatalf("reserved = %d, want 0", a.Reserved())
	}
}
