package memtrack

import (
	"sync"
	"testing"
)

func TestPeakTracking(t *testing.T) {
	tr := New()
	tr.Alloc(100)
	tr.Alloc(50)
	tr.Free(120)
	tr.Alloc(10)
	if tr.Live() != 40 {
		t.Fatalf("Live = %d, want 40", tr.Live())
	}
	if tr.Peak() != 150 {
		t.Fatalf("Peak = %d, want 150", tr.Peak())
	}
}

func TestConcurrentAlloc(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Alloc(3)
				tr.Free(3)
			}
		}()
	}
	wg.Wait()
	if tr.Live() != 0 {
		t.Fatalf("Live = %d, want 0", tr.Live())
	}
	if tr.Peak() < 3 {
		t.Fatalf("Peak = %d, want ≥ 3", tr.Peak())
	}
}

func TestIOCountersAndSamples(t *testing.T) {
	tr := New()
	tr.ReadIO(10)
	tr.WriteIO(20)
	tr.SampleIO()
	tr.ReadIO(5)
	tr.SampleIO()
	r, w := tr.IOTotals()
	if r != 15 || w != 20 {
		t.Fatalf("IOTotals = %d,%d", r, w)
	}
	s := tr.Samples()
	if len(s) != 2 || s[0].ReadBytes != 10 || s[1].ReadBytes != 15 {
		t.Fatalf("samples = %+v", s)
	}
}

func TestReset(t *testing.T) {
	tr := New()
	tr.Alloc(5)
	tr.ReadIO(5)
	tr.SampleIO()
	tr.Reset()
	if tr.Live() != 0 || tr.Peak() != 0 {
		t.Fatal("reset did not clear counters")
	}
	if r, w := tr.IOTotals(); r != 0 || w != 0 {
		t.Fatal("reset did not clear IO")
	}
	if len(tr.Samples()) != 0 {
		t.Fatal("reset did not clear samples")
	}
}
