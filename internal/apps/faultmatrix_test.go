package apps

// Fault-matrix conformance (robustness): all four applications, across the
// three storage regimes (all-memory, hybrid, all-disk), must complete under a
// seeded schedule of transient spill faults with results identical to the
// fault-free run — the retry/backoff layer is invisible to correctness. Hard
// faults (bit-flip corruption, ENOSPC) must fail with the right typed error,
// leak no spill files, and drain every goroutine.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
	"kaleido/internal/storage"
	"kaleido/internal/storage/vfs"
)

// regimes is the storage matrix: memory only, half-and-half, everything on
// disk (budget 1 byte spills every part).
var regimes = []struct {
	name   string
	budget int64
}{
	{"mem", 0},
	{"hybrid", 4 << 10},
	{"disk", 1},
}

// transientFaults is the p≈1% schedule every app must ride out.
var transientFaults = vfs.Fault{
	Seed:     1234,
	ReadErrP: 0.01, WriteErrP: 0.01, ShortWriteP: 0.01,
	LatencyP: 0.005, Latency: 100 * time.Microsecond,
}

// appResults is one full run of the four applications.
type appResults struct {
	tri, cliq uint64
	motifs    []PatternCount
	fsm       []PatternCount
}

// matrixGraph is the fixed input of the matrix: small enough that the whole
// matrix runs in seconds, dense enough that every regime with a budget spills.
func matrixGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(77))
	return randomGraph(rng, 100, 800, 3)
}

func runAllApps(t *testing.T, opt Options) (appResults, error) {
	t.Helper()
	g := matrixGraph()
	var r appResults
	var err error
	if r.tri, err = TriangleCount(context.Background(), g, opt); err != nil {
		return r, fmt.Errorf("triangles: %w", err)
	}
	if r.cliq, err = CliqueCount(context.Background(), g, 4, opt); err != nil {
		return r, fmt.Errorf("cliques: %w", err)
	}
	if r.motifs, err = MotifCount(context.Background(), g, 4, opt); err != nil {
		return r, fmt.Errorf("motifs: %w", err)
	}
	if r.fsm, err = FSM(context.Background(), g, 3, 2, opt); err != nil {
		return r, fmt.Errorf("fsm: %w", err)
	}
	return r, nil
}

// comparePatternCounts asserts two aggregations are identical: same patterns
// (by encoding), counts, and supports, in the same deterministic order.
func comparePatternCounts(t *testing.T, what string, got, want []PatternCount) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d patterns, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i].Count != want[i].Count || got[i].Support != want[i].Support ||
			got[i].Pattern.Encode() != want[i].Pattern.Encode() {
			t.Fatalf("%s: pattern %d = (%v, %d, %d), want (%v, %d, %d)", what, i,
				got[i].Pattern, got[i].Count, got[i].Support,
				want[i].Pattern, want[i].Count, want[i].Support)
		}
	}
}

// leakedFiles returns the files left under dir.
func leakedFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			out = append(out, path)
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return out
}

func waitDrained(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: %d (baseline %d)", runtime.NumGoroutine(), base)
}

func TestFaultMatrixTransient(t *testing.T) {
	base, err := runAllApps(t, Options{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	if base.tri == 0 || base.cliq == 0 || len(base.motifs) == 0 {
		t.Fatalf("degenerate baseline: %+v", base)
	}
	for _, reg := range regimes {
		reg := reg
		t.Run(reg.name, func(t *testing.T) {
			baseGoroutines := runtime.NumGoroutine()
			dir := t.TempDir()
			ff := vfs.NewFaultFS(nil, transientFaults)
			got, err := runAllApps(t, Options{
				Threads: 3, MemoryBudget: reg.budget, SpillDir: dir, FS: ff,
			})
			if err != nil {
				t.Fatalf("%s under transient faults: %v", reg.name, err)
			}
			if got.tri != base.tri {
				t.Fatalf("triangles = %d, want %d", got.tri, base.tri)
			}
			if got.cliq != base.cliq {
				t.Fatalf("cliques = %d, want %d", got.cliq, base.cliq)
			}
			comparePatternCounts(t, "motifs", got.motifs, base.motifs)
			comparePatternCounts(t, "fsm", got.fsm, base.fsm)
			if reg.budget > 0 {
				st := ff.Stats()
				if st.Writes == 0 {
					t.Fatalf("budgeted regime never wrote through the fault FS: %+v", st)
				}
			}
			if files := leakedFiles(t, dir); len(files) != 0 {
				t.Fatalf("spill files leaked: %v", files)
			}
			waitDrained(t, baseGoroutines)
		})
	}
}

// TestFaultMatrixCompressedResidentNoVFS: compressed-mem is a pure memory
// transition — a budget the resident tier can absorb without spilling must
// never open, read, or write a spill file. The run executes over a FaultFS
// that fails EVERY read and write; the run succeeding with baseline counts
// and the fault counters all zero proves compressed-mem parts never touch
// vfs (zero injected faults observed).
func TestFaultMatrixCompressedResidentNoVFS(t *testing.T) {
	g := matrixGraph()
	tr := memtrack.New()
	base, err := MotifCount(context.Background(), g, 4, Options{Threads: 3, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Peak() == 0 {
		t.Fatal("degenerate: in-memory run tracked no intermediate data")
	}

	// Four fifths of the in-memory peak: tight enough that raw residency
	// trips the governor, loose enough that compression (≥2× on sealed
	// parts) absorbs the overshoot without reaching for the disk.
	budget := tr.Peak() * 4 / 5
	ff := vfs.NewFaultFS(nil, vfs.Fault{Seed: 99, ReadErrP: 1, WriteErrP: 1, ShortWriteP: 1})
	var spill SpillInfo
	got, err := MotifCount(context.Background(), g, 4, Options{
		Threads: 3, MemoryBudget: budget, SpillDir: t.TempDir(), FS: ff, Spill: &spill,
	})
	if err != nil {
		t.Fatalf("compressed-resident run reached the always-failing filesystem: %v", err)
	}
	comparePatternCounts(t, "motifs", got, base)
	if spill.CompressedParts == 0 {
		t.Fatalf("vacuous: no parts were compressed under budget %d (peak %d)", budget, tr.Peak())
	}
	if spill.SpilledParts != 0 {
		t.Fatalf("budget %d spilled %d parts; the compressed tier should have absorbed it", budget, spill.SpilledParts)
	}
	if st := ff.Stats(); st.Reads != 0 || st.Writes != 0 || st.ReadErrs != 0 || st.WriteErrs != 0 || st.ShortWrites != 0 {
		t.Fatalf("compressed-mem residency touched vfs: %+v", st)
	}
}

// TestFaultMatrixCorruption: with every read flipping one bit, any spilling
// regime must fail with ErrSpillCorrupt — never return wrong counts — and
// still tear down cleanly. (The default CompressionAuto puts every spilled
// byte under a block CRC; the all-memory regime reads nothing and is
// exercised by the transient matrix above.)
func TestFaultMatrixCorruption(t *testing.T) {
	for _, reg := range regimes[1:] { // hybrid, disk
		reg := reg
		t.Run(reg.name, func(t *testing.T) {
			baseGoroutines := runtime.NumGoroutine()
			dir := t.TempDir()
			ff := vfs.NewFaultFS(nil, vfs.Fault{Seed: 55, BitFlipP: 1})
			_, err := runAllApps(t, Options{
				Threads: 3, MemoryBudget: reg.budget, SpillDir: dir,
				Compression: storage.CompressionAuto, FS: ff,
			})
			if err == nil {
				t.Fatal("bit-flipped spill reads produced a result")
			}
			if !errors.Is(err, storage.ErrSpillCorrupt) {
				t.Fatalf("corruption surfaced as %v, want ErrSpillCorrupt", err)
			}
			if files := leakedFiles(t, dir); len(files) != 0 {
				t.Fatalf("spill files leaked after corrupt failure: %v", files)
			}
			waitDrained(t, baseGoroutines)
		})
	}
}

// TestFaultMatrixNoSpace: a full spill device must fail the run with
// ErrNoSpace, leak nothing, and drain every goroutine.
func TestFaultMatrixNoSpace(t *testing.T) {
	for _, reg := range regimes[1:] { // hybrid, disk
		reg := reg
		t.Run(reg.name, func(t *testing.T) {
			baseGoroutines := runtime.NumGoroutine()
			dir := t.TempDir()
			ff := vfs.NewFaultFS(nil, vfs.Fault{Seed: 56, WriteCap: 256})
			_, err := runAllApps(t, Options{
				Threads: 3, MemoryBudget: reg.budget, SpillDir: dir, FS: ff,
			})
			if err == nil {
				t.Fatal("run on a full device produced a result")
			}
			if !errors.Is(err, storage.ErrNoSpace) {
				t.Fatalf("full device surfaced as %v, want ErrNoSpace", err)
			}
			if files := leakedFiles(t, dir); len(files) != 0 {
				t.Fatalf("spill files leaked after ENOSPC failure: %v", files)
			}
			waitDrained(t, baseGoroutines)
		})
	}
}
