package apps

import (
	"context"
	"math/rand"
	"testing"

	"kaleido/internal/graph"
	"kaleido/internal/iso"
	"kaleido/internal/pattern"
)

var bgCtx = context.Background()

// paperGraph is the Fig. 3 running example (0-based ids).
func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	for _, e := range [][2]uint32{{0, 1}, {0, 4}, {1, 4}, {1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	for v := 0; v < n; v++ {
		b.SetLabel(uint32(v), graph.Label(rng.Intn(labels)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestTriangleCountPaperExample(t *testing.T) {
	g := paperGraph(t)
	got, err := TriangleCount(bgCtx, g, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("triangles = %d, want 3 (paper §5.1)", got)
	}
}

// bruteTriangles counts triangles by triple enumeration.
func bruteTriangles(g *graph.Graph) uint64 {
	var n uint64
	for a := uint32(0); a < uint32(g.N()); a++ {
		for b := a + 1; b < uint32(g.N()); b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < uint32(g.N()); c++ {
				if g.HasEdge(a, c) && g.HasEdge(b, c) {
					n++
				}
			}
		}
	}
	return n
}

func TestTriangleCountRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 10+rng.Intn(30), rng.Intn(120), 3)
		got, err := TriangleCount(bgCtx, g, Options{Threads: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteTriangles(g); got != want {
			t.Fatalf("trial %d: triangles = %d, want %d", trial, got, want)
		}
	}
}

func TestCliqueCountPaperExample(t *testing.T) {
	g := paperGraph(t)
	got, err := CliqueCount(bgCtx, g, 3, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("3-cliques = %d, want 3 (paper Fig. 9)", got)
	}
	got4, err := CliqueCount(bgCtx, g, 4, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got4 != 0 {
		t.Fatalf("4-cliques = %d, want 0", got4)
	}
}

func TestCliqueCountCompleteGraph(t *testing.T) {
	// K6 has C(6,k) k-cliques.
	b := graph.NewBuilder(6)
	for i := uint32(0); i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]uint64{2: 15, 3: 20, 4: 15, 5: 6}
	for k, w := range want {
		got, err := CliqueCount(bgCtx, g, k, Options{Threads: 3})
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("%d-cliques of K6 = %d, want %d", k, got, w)
		}
	}
	if _, err := CliqueCount(bgCtx, g, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestMotifCountPaperExample(t *testing.T) {
	// Paper §5.1: the Fig. 3 graph has 5 3-chains and 3 triangles.
	g := paperGraph(t)
	got, err := MotifCount(bgCtx, g, 3, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("3-motifs: %d patterns, want 2", len(got))
	}
	// Sorted by count descending: chain (5) before triangle (3).
	if got[0].Count != 5 || got[1].Count != 3 {
		t.Fatalf("counts = %d,%d, want 5,3", got[0].Count, got[1].Count)
	}
	if got[0].Pattern.Edges() != 2 || got[1].Pattern.Edges() != 3 {
		t.Fatalf("patterns have %d and %d edges, want 2 and 3", got[0].Pattern.Edges(), got[1].Pattern.Edges())
	}
}

// bruteMotifs classifies all connected induced k-subgraphs by canonical form.
func bruteMotifs(t *testing.T, g *graph.Graph, k int) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	set := make([]uint32, 0, k)
	var rec func(start uint32)
	rec = func(start uint32) {
		if len(set) == k {
			p, err := patternOfVertices(g, set, true)
			if err != nil {
				t.Fatal(err)
			}
			if p.Connected() {
				out[iso.CanonicalBrute(p)]++
			}
			return
		}
		for v := start; v < uint32(g.N()); v++ {
			set = append(set, v)
			rec(v + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return out
}

func TestMotifCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 8+rng.Intn(8), rng.Intn(40), 1)
		for k := 3; k <= 4; k++ {
			got, err := MotifCount(bgCtx, g, k, Options{Threads: 1 + rng.Intn(4)})
			if err != nil {
				t.Fatal(err)
			}
			want := bruteMotifs(t, g, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d motif classes, want %d", trial, k, len(got), len(want))
			}
			for _, pc := range got {
				key := iso.CanonicalBrute(pc.Pattern)
				if want[key] != pc.Count {
					t.Fatalf("trial %d k=%d: motif %v count %d, want %d", trial, k, pc.Pattern, pc.Count, want[key])
				}
			}
		}
	}
}

func TestMotifCountIsoBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 20, 60, 1)
	var ref []PatternCount
	for _, algo := range []IsoAlgo{IsoEigen, IsoBliss, IsoEigenExact} {
		got, err := MotifCount(bgCtx, g, 4, Options{Threads: 2, Iso: algo})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("algo %d: %d classes vs %d", algo, len(got), len(ref))
		}
		for i := range got {
			if got[i].Count != ref[i].Count {
				t.Fatalf("algo %d: counts diverge at %d: %d vs %d", algo, i, got[i].Count, ref[i].Count)
			}
		}
	}
}

// twoStarGraph: two label-0 centers with two label-1 leaves each.
func twoStarGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(6)
	b.SetLabel(0, 0)
	b.SetLabel(1, 0)
	for v := uint32(2); v < 6; v++ {
		b.SetLabel(v, 1)
	}
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(1, 4)
	b.AddEdge(1, 5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFSMTwoStars(t *testing.T) {
	g := twoStarGraph(t)
	// 3-FSM (2 edges, ≤3 vertices), support 2: the only 2-edge pattern is
	// the path 1-0-1, MNI = min(|{0,1}|, |{2,3,4,5}|) = 2 → frequent.
	got, err := FSM(bgCtx, g, 3, 2, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("frequent patterns = %d, want 1: %v", len(got), got)
	}
	if got[0].Count != 2 || got[0].Support < 2 {
		t.Fatalf("pattern count=%d support=%d, want 2, ≥2", got[0].Count, got[0].Support)
	}
	if got[0].Pattern.Edges() != 2 || got[0].Pattern.K != 3 {
		t.Fatalf("pattern = %v", got[0].Pattern)
	}
	// Support 3: even single edges are infrequent (MNI 2).
	none, err := FSM(bgCtx, g, 3, 3, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("support 3 returned %v", none)
	}
}

func TestFSMSingleEdgeLevel(t *testing.T) {
	g := twoStarGraph(t)
	// 2-FSM = frequent single-edge patterns.
	got, err := FSM(bgCtx, g, 2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Count != 4 || got[0].Support != 2 {
		t.Fatalf("2-FSM = %+v", got)
	}
}

// TestFSMSupportOneMatchesEnumeration: with support 1 every pattern is
// frequent, so FSM must report exactly the pattern classes of all
// (k−1)-edge connected subgraphs with ≤ k vertices.
func TestFSMSupportOneMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 7+rng.Intn(5), rng.Intn(20), 2)
		k := 3 + rng.Intn(2)
		got, err := FSM(bgCtx, g, k, 1, Options{Threads: 1 + rng.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteEdgePatterns(t, g, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d k=%d: %d patterns, want %d", trial, k, len(got), len(want))
		}
		for _, pc := range got {
			key := iso.CanonicalBrute(pc.Pattern)
			if want[key] != pc.Count {
				t.Fatalf("trial %d k=%d: pattern %v count %d, want %d", trial, k, pc.Pattern, pc.Count, want[key])
			}
		}
	}
}

// bruteEdgePatterns enumerates connected (k−1)-edge subgraphs with at most k
// vertices and classifies them by canonical labeled pattern.
func bruteEdgePatterns(t *testing.T, g *graph.Graph, k int) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	ne := k - 1
	set := make([]uint32, 0, ne)
	var rec func(start uint32)
	rec = func(start uint32) {
		if len(set) == ne {
			verts := map[uint32]bool{}
			for _, eid := range set {
				e := g.EdgeAt(eid)
				verts[e.U] = true
				verts[e.V] = true
			}
			if len(verts) > k || !edgeSetConnected(g, set) {
				return
			}
			p, _, err := patternOfEdges(g, set, nil)
			if err != nil {
				t.Fatal(err)
			}
			out[iso.CanonicalBrute(p)]++
			return
		}
		for e := start; e < uint32(g.M()); e++ {
			set = append(set, e)
			rec(e + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return out
}

func edgeSetConnected(g *graph.Graph, set []uint32) bool {
	if len(set) == 0 {
		return false
	}
	adj := func(a, b uint32) bool {
		ea, eb := g.EdgeAt(a), g.EdgeAt(b)
		return ea.U == eb.U || ea.U == eb.V || ea.V == eb.U || ea.V == eb.V
	}
	seen := map[uint32]bool{set[0]: true}
	queue := []uint32{set[0]}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		for _, f := range set {
			if !seen[f] && adj(e, f) {
				seen[f] = true
				queue = append(queue, f)
			}
		}
	}
	return len(seen) == len(set)
}

func TestFSMHybridMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 30, 90, 3)
	mem, err := FSM(bgCtx, g, 4, 2, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := FSM(bgCtx, g, 4, 2, Options{
		Threads: 2, MemoryBudget: 1, SpillDir: t.TempDir(), Predict: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mem) != len(hyb) {
		t.Fatalf("hybrid FSM: %d patterns vs %d in memory", len(hyb), len(mem))
	}
	for i := range mem {
		if mem[i].Count != hyb[i].Count || !iso.Isomorphic(mem[i].Pattern, hyb[i].Pattern) {
			t.Fatalf("pattern %d differs: %+v vs %+v", i, mem[i], hyb[i])
		}
	}
}

func TestFSMValidation(t *testing.T) {
	g := paperGraph(t)
	if _, err := FSM(bgCtx, g, 1, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := FSM(bgCtx, g, 3, 0, Options{}); err == nil {
		t.Fatal("support 0 accepted")
	}
	if _, err := FSM(bgCtx, g, pattern.MaxK+1, 1, Options{}); err == nil {
		t.Fatal("oversized k accepted")
	}
	if _, err := MotifCount(bgCtx, g, 1, Options{}); err == nil {
		t.Fatal("motif k=1 accepted")
	}
}

func TestFSMThreadInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 25, 70, 3)
	var ref []PatternCount
	for _, threads := range []int{1, 2, 4} {
		got, err := FSM(bgCtx, g, 4, 3, Options{Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("threads=%d: %d patterns vs %d", threads, len(got), len(ref))
		}
		for i := range got {
			if got[i].Count != ref[i].Count {
				t.Fatalf("threads=%d: pattern %d count %d vs %d", threads, i, got[i].Count, ref[i].Count)
			}
		}
	}
}
