package apps

// Differential fused-vs-materialized tests: every application that consumes
// its terminal expansion at the frontier (clique → CountSink, motif and
// FSM's final level → VisitSink) must produce byte-identical counts and
// supports to a run that materializes the final level, on all three storage
// regimes (all-memory, budgeted hybrid, all-disk) — and the fused terminal
// level must write zero bytes to the spill directory.

import (
	"math/rand"
	"sync"
	"testing"

	"kaleido/internal/explore"
	"kaleido/internal/graph"
	"kaleido/internal/iso"
	"kaleido/internal/memtrack"
	"kaleido/internal/mni"
	"kaleido/internal/storage"
)

// appConfigs enumerates the storage regimes: all-mem, a mid-size budget
// (hybrid placement decided by the governor — with the compressed-resident
// tier on by default, and once with it pinned off so both residency ladders
// must produce identical results), and a 1-byte budget (all-disk).
func appConfigs(t *testing.T) []Options {
	return []Options{
		{Threads: 3},
		{Threads: 3, MemoryBudget: 64 << 10, SpillDir: t.TempDir()},
		{Threads: 3, MemoryBudget: 64 << 10, SpillDir: t.TempDir(), ResidentCompression: storage.CompressionOff},
		{Threads: 3, MemoryBudget: 1, SpillDir: t.TempDir(), Predict: true},
	}
}

// naiveCliqueFilter is the per-candidate HasEdge reference the marker-based
// cliqueFilter must match.
func naiveCliqueFilter(g *graph.Graph) explore.VertexFilter {
	return func(_ int, emb []uint32, cand uint32) bool {
		for _, v := range emb {
			if !g.HasEdge(v, cand) {
				return false
			}
		}
		return true
	}
}

// materializedCliqueCount is the pre-sink clique path: k−1 storing
// expansions with the naive filter, then Count of the stored top.
func materializedCliqueCount(t *testing.T, g *graph.Graph, k int) uint64 {
	t.Helper()
	e, err := explore.New(explore.Config{Graph: g, Mode: explore.VertexInduced, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < k; i++ {
		if err := e.Expand(bgCtx, naiveCliqueFilter(g), nil); err != nil {
			t.Fatal(err)
		}
	}
	return uint64(e.Count())
}

func TestCliqueFusedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 4; trial++ {
		g := randomGraph(rng, 30+rng.Intn(30), 120+rng.Intn(120), 1)
		for k := 3; k <= 5; k++ {
			want := materializedCliqueCount(t, g, k)
			for i, opt := range appConfigs(t) {
				got, err := CliqueCount(bgCtx, g, k, opt)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d k=%d config %d: fused count %d, materialized %d", trial, k, i, got, want)
				}
			}
		}
	}
}

// materializedMotifCount materializes the final level and aggregates it
// with ForEach — the pre-sink motif path.
func materializedMotifCount(t *testing.T, g *graph.Graph, k int) map[string]uint64 {
	t.Helper()
	e, err := explore.New(explore.Config{Graph: g, Mode: explore.VertexInduced, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < k; i++ {
		if err := e.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	out := map[string]uint64{}
	var mu sync.Mutex
	err = e.ForEach(bgCtx, func(_ int, emb []uint32) error {
		p, err := patternOfVertices(g, emb, true)
		if err != nil {
			return err
		}
		key := iso.CanonicalBrute(p)
		mu.Lock()
		out[key]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMotifFusedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 3; trial++ {
		g := randomGraph(rng, 16+rng.Intn(12), 50+rng.Intn(40), 1)
		for k := 3; k <= 4; k++ {
			want := materializedMotifCount(t, g, k)
			for i, opt := range appConfigs(t) {
				got, err := MotifCount(bgCtx, g, k, opt)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d k=%d config %d: %d classes, want %d", trial, k, i, len(got), len(want))
				}
				for _, pc := range got {
					if want[iso.CanonicalBrute(pc.Pattern)] != pc.Count {
						t.Fatalf("trial %d k=%d config %d: motif %v count %d, want %d",
							trial, k, i, pc.Pattern, pc.Count, want[iso.CanonicalBrute(pc.Pattern)])
					}
				}
			}
		}
	}
}

// materializedFSMFinal replays FSM but materializes the final level
// (Expand + ForEach aggregation) instead of fusing it — the pre-sink path,
// byte-for-byte the old implementation.
func materializedFSMFinal(t *testing.T, g *graph.Graph, k int, support uint64, opt Options) []PatternCount {
	t.Helper()
	freqPairs, edgeCounts := frequentEdgePatterns(g, support)
	if k == 2 {
		sortCounts(edgeCounts)
		return edgeCounts
	}
	e, err := explore.New(opt.exploreConfig(g, explore.EdgeInduced))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	err = e.InitEdges(func(eid uint32) bool {
		ed := g.EdgeAt(eid)
		return freqPairs[pairKey(g.Label(ed.U), g.Label(ed.V))]
	})
	if err != nil {
		t.Fatal(err)
	}
	filter := func(_ int, emb []uint32, verts []uint32, cand uint32) bool {
		ed := g.EdgeAt(cand)
		if !freqPairs[pairKey(g.Label(ed.U), g.Label(ed.V))] {
			return false
		}
		nv := 0
		if !sortedContains(verts, ed.U) {
			nv++
		}
		if !sortedContains(verts, ed.V) {
			nv++
		}
		return len(verts)+nv <= k
	}
	var result []PatternCount
	for level := 2; level <= k-1; level++ {
		if err := e.Expand(bgCtx, nil, filter); err != nil {
			t.Fatal(err)
		}
		var merged map[uint64]*mni.Agg
		if merged, err = aggregateFSM(bgCtx, g, e, support, opt); err != nil {
			t.Fatal(err)
		}
		if level < k-1 {
			nw := threadsOf(opt)
			hashers := make([]hasher, nw)
			bufs := make([][]uint32, nw)
			for i := range hashers {
				hashers[i] = newHasher(opt.Iso)
				bufs[i] = make([]uint32, 0, 2*k)
			}
			err = e.FilterTop(bgCtx, func(w int, emb []uint32) bool {
				p, verts, err := patternOfEdges(g, emb, bufs[w])
				bufs[w] = verts[:0]
				if err != nil {
					return false
				}
				agg, ok := merged[hashers[w].Hash(p)]
				return ok && agg.Frequent()
			})
			if err != nil {
				t.Fatal(err)
			}
			continue
		}
		result = collectFrequent(result, merged, support)
	}
	sortCounts(result)
	return result
}

func TestFSMFusedMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3; trial++ {
		g := randomGraph(rng, 20+rng.Intn(15), 60+rng.Intn(40), 3)
		for _, k := range []int{3, 4} {
			for _, support := range []uint64{1, 3} {
				// Single-threaded runs enumerate embeddings in one
				// deterministic order, so counts AND threshold-crossing
				// supports must be byte-identical between the fused and the
				// materialized final level.
				exact := materializedFSMFinal(t, g, k, support, Options{Threads: 1})
				got1, err := FSM(bgCtx, g, k, support, Options{Threads: 1})
				if err != nil {
					t.Fatal(err)
				}
				if len(got1) != len(exact) {
					t.Fatalf("trial %d k=%d s=%d: %d patterns, want %d", trial, k, support, len(got1), len(exact))
				}
				for j := range got1 {
					if got1[j].Count != exact[j].Count || got1[j].Support != exact[j].Support ||
						!iso.Isomorphic(got1[j].Pattern, exact[j].Pattern) {
						t.Fatalf("trial %d k=%d s=%d: pattern %d differs: %+v vs %+v",
							trial, k, support, j, got1[j], exact[j])
					}
				}
				// Multi-threaded, across storage regimes: counts per pattern
				// class are exact (compare by canonical form — result order
				// among equal counts and the threshold-crossing support
				// value both depend on enumeration order, §6.2).
				wantByClass := map[string]uint64{}
				for _, pc := range exact {
					wantByClass[iso.CanonicalBrute(pc.Pattern)] = pc.Count
				}
				for i, opt := range appConfigs(t) {
					got, err := FSM(bgCtx, g, k, support, opt)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(exact) {
						t.Fatalf("trial %d k=%d s=%d config %d: %d patterns, want %d",
							trial, k, support, i, len(got), len(exact))
					}
					for _, pc := range got {
						if pc.Support < support || wantByClass[iso.CanonicalBrute(pc.Pattern)] != pc.Count {
							t.Fatalf("trial %d k=%d s=%d config %d: pattern %v count %d support %d, want count %d",
								trial, k, support, i, pc.Pattern, pc.Count, pc.Support,
								wantByClass[iso.CanonicalBrute(pc.Pattern)])
						}
					}
				}
			}
		}
	}
}

func TestTriangleCountAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randomGraph(rng, 40, 200, 1)
	want := bruteTriangles(g)
	for i, opt := range appConfigs(t) {
		got, err := TriangleCount(bgCtx, g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("config %d: triangles = %d, want %d", i, got, want)
		}
	}
}

// TestFusedTerminalWritesZeroBytes is the storage-side acceptance check:
// under an all-disk budget, a clique or motif run writes exactly the bytes
// of its k−2 stored levels — the terminal level contributes nothing.
func TestFusedTerminalWritesZeroBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 40, 160, 1)

	// Expected: one stored level (depth 2) under the clique filter.
	tr := memtrack.New()
	e, err := explore.New(explore.Config{
		Graph: g, Mode: explore.VertexInduced, Threads: 3,
		MemoryBudget: 1, SpillDir: t.TempDir(), Tracker: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Expand(bgCtx, naiveCliqueFilter(g), nil); err != nil {
		t.Fatal(err)
	}
	_, wantCliqueWrites := tr.IOTotals()
	e.Close()
	if wantCliqueWrites == 0 {
		t.Fatal("degenerate: level 2 wrote nothing")
	}

	trClique := memtrack.New()
	if _, err := CliqueCount(bgCtx, g, 3, Options{
		Threads: 3, MemoryBudget: 1, SpillDir: t.TempDir(), Tracker: trClique,
	}); err != nil {
		t.Fatal(err)
	}
	if _, w := trClique.IOTotals(); w != wantCliqueWrites {
		t.Fatalf("3-clique run wrote %d bytes, want %d (terminal level must write zero)", w, wantCliqueWrites)
	}

	// Expected: one stored unfiltered level (depth 2) for 3-motifs.
	tr2 := memtrack.New()
	e2, err := explore.New(explore.Config{
		Graph: g, Mode: explore.VertexInduced, Threads: 3,
		MemoryBudget: 1, SpillDir: t.TempDir(), Tracker: tr2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	if err := e2.Expand(bgCtx, nil, nil); err != nil {
		t.Fatal(err)
	}
	_, wantMotifWrites := tr2.IOTotals()
	e2.Close()

	trMotif := memtrack.New()
	if _, err := MotifCount(bgCtx, g, 3, Options{
		Threads: 3, MemoryBudget: 1, SpillDir: t.TempDir(), Tracker: trMotif,
	}); err != nil {
		t.Fatal(err)
	}
	if _, w := trMotif.IOTotals(); w != wantMotifWrites {
		t.Fatalf("3-motif run wrote %d bytes, want %d (terminal level must write zero)", w, wantMotifWrites)
	}
}
