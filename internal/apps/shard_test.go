package apps

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"kaleido/internal/explore"
	"kaleido/internal/graph"
	"kaleido/internal/iso"
)

// regimes returns the three storage regimes of the differential tests:
// all-memory, hybrid (some parts spill), and disk (everything spills).
func storageRegimes(t *testing.T) map[string]Options {
	t.Helper()
	return map[string]Options{
		"mem":    {Threads: 2},
		"hybrid": {Threads: 2, MemoryBudget: 1 << 12, SpillDir: t.TempDir(), Predict: true},
		"disk":   {Threads: 2, MemoryBudget: 1, SpillDir: t.TempDir(), Predict: true},
	}
}

func samePatternCounts(t *testing.T, label string, got, want []PatternCount) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d patterns, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Count != want[i].Count || got[i].Support != want[i].Support ||
			!iso.Isomorphic(got[i].Pattern, want[i].Pattern) {
			t.Fatalf("%s: pattern %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// TestAppsRelabelDifferential pins that degree-order relabeling is invisible
// to every application: identical counts and pattern lists on the raw and the
// relabeled graph, in every storage regime.
func TestAppsRelabelDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 60, 240, 3)
	rg, err := graph.Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rg.Relabeled() {
		t.Fatal("random graph relabeled to identity; pick a different seed")
	}
	for name, opt := range storageRegimes(t) {
		tcRaw, err1 := TriangleCount(bgCtx, g, opt)
		tcRel, err2 := TriangleCount(bgCtx, rg, opt)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if tcRaw != tcRel {
			t.Fatalf("%s: triangles %d raw vs %d relabeled", name, tcRaw, tcRel)
		}
		cqRaw, err1 := CliqueCount(bgCtx, g, 4, opt)
		cqRel, err2 := CliqueCount(bgCtx, rg, 4, opt)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if cqRaw != cqRel {
			t.Fatalf("%s: 4-cliques %d raw vs %d relabeled", name, cqRaw, cqRel)
		}
		moRaw, err1 := MotifCount(bgCtx, g, 4, opt)
		moRel, err2 := MotifCount(bgCtx, rg, 4, opt)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		samePatternCounts(t, name+" motifs", moRel, moRaw)
		fsRaw, err1 := FSM(bgCtx, g, 3, 2, opt)
		fsRel, err2 := FSM(bgCtx, rg, 3, 2, opt)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		samePatternCounts(t, name+" fsm", fsRel, fsRaw)
	}
}

// embeddingSet explores to depth k and returns the multiset of embeddings in
// original-id space, each sorted, as strings.
func embeddingSet(t *testing.T, g *graph.Graph, k int) []string {
	t.Helper()
	e, err := explore.New(explore.Config{Graph: g, Mode: explore.VertexInduced, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.InitVertices(nil); err != nil {
		t.Fatal(err)
	}
	for e.Depth() < k {
		if err := e.Expand(bgCtx, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	var out []string
	err = e.ForEach(bgCtx, func(_ int, emb []uint32) error {
		orig := make([]uint32, len(emb))
		for i, v := range emb {
			orig[i] = g.OrigID(v)
		}
		sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
		out = append(out, fmt.Sprint(orig))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// TestRelabelEmbeddingsIdentical pins that the raw and relabeled graphs
// enumerate the same vertex-induced embeddings once ids are mapped back.
func TestRelabelEmbeddingsIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomGraph(rng, 40, 150, 2)
	rg, err := graph.Relabel(g)
	if err != nil {
		t.Fatal(err)
	}
	raw := embeddingSet(t, g, 3)
	rel := embeddingSet(t, rg, 3)
	if len(raw) != len(rel) {
		t.Fatalf("%d raw embeddings vs %d relabeled", len(raw), len(rel))
	}
	for i := range raw {
		if raw[i] != rel[i] {
			t.Fatalf("embedding %d: %q raw vs %q relabeled", i, raw[i], rel[i])
		}
	}
}

// shardOpts splits the level-1 unit range of base into k degree-mass-balanced
// prefix ranges, one Options per shard.
func shardOpts(g *graph.Graph, base Options, k int, edges bool) []Options {
	var bounds []int
	if edges {
		bounds = g.DegreeMassEdgeRanges(k)
	} else {
		bounds = g.DegreeMassVertexRanges(k)
	}
	opts := make([]Options, k)
	for i := range opts {
		opts[i] = base
		opts[i].Seeds = &SeedRange{Lo: uint32(bounds[i]), Hi: uint32(bounds[i+1])}
	}
	return opts
}

// TestShardedConformance pins shards=1 ≡ shards=N for all four applications,
// for both raw and relabeled graphs. Runs under -race in CI.
func TestShardedConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	raw := randomGraph(rng, 50, 200, 3)
	rel, err := graph.Relabel(raw)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{"raw": raw, "relabeled": rel} {
		base := Options{Threads: 1}
		tcRef, err := TriangleCount(bgCtx, g, base)
		if err != nil {
			t.Fatal(err)
		}
		cqRef, err := CliqueCount(bgCtx, g, 4, base)
		if err != nil {
			t.Fatal(err)
		}
		moRef, err := MotifCount(bgCtx, g, 4, base)
		if err != nil {
			t.Fatal(err)
		}
		fsRef, err := FSM(bgCtx, g, 3, 2, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 3, 4} {
			vo := shardOpts(g, base, shards, false)
			eo := shardOpts(g, base, shards, true)
			tc, err := TriangleCountSharded(bgCtx, g, vo)
			if err != nil {
				t.Fatal(err)
			}
			if tc != tcRef {
				t.Fatalf("%s shards=%d: triangles %d, want %d", name, shards, tc, tcRef)
			}
			cq, err := CliqueCountSharded(bgCtx, g, 4, vo)
			if err != nil {
				t.Fatal(err)
			}
			if cq != cqRef {
				t.Fatalf("%s shards=%d: 4-cliques %d, want %d", name, shards, cq, cqRef)
			}
			mo, err := MotifCountSharded(bgCtx, g, 4, vo)
			if err != nil {
				t.Fatal(err)
			}
			samePatternCounts(t, name+" motifs sharded", mo, moRef)
			fs, _, err := FSMSharded(bgCtx, g, 3, 2, eo)
			if err != nil {
				t.Fatal(err)
			}
			samePatternCounts(t, name+" fsm sharded", fs, fsRef)
		}
	}
}

// TestShardedHybridConformance repeats the conformance check with every shard
// spilling through its own explorer (shared budget semantics live one layer
// up, in the public runSharded).
func TestShardedHybridConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g, err := graph.Relabel(randomGraph(rng, 40, 160, 3))
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Threads: 2, MemoryBudget: 1 << 10, SpillDir: t.TempDir(), Predict: true}
	moRef, err := MotifCount(bgCtx, g, 4, base)
	if err != nil {
		t.Fatal(err)
	}
	fsRef, err := FSM(bgCtx, g, 4, 2, base)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := MotifCountSharded(bgCtx, g, 4, shardOpts(g, base, 3, false))
	if err != nil {
		t.Fatal(err)
	}
	samePatternCounts(t, "hybrid motifs sharded", mo, moRef)
	fs, _, err := FSMSharded(bgCtx, g, 4, 2, shardOpts(g, base, 3, true))
	if err != nil {
		t.Fatal(err)
	}
	samePatternCounts(t, "hybrid fsm sharded", fs, fsRef)
}

// TestShardedEmptyRanges pins that shard counts beyond the unit count (some
// shards get empty seed ranges) still merge to the exact result.
func TestShardedEmptyRanges(t *testing.T) {
	g := paperGraph(t)
	tc, err := TriangleCountSharded(bgCtx, g, shardOpts(g, Options{Threads: 1}, 8, false))
	if err != nil {
		t.Fatal(err)
	}
	if tc != 3 {
		t.Fatalf("triangles with empty shards = %d, want 3", tc)
	}
	fs, _, err := FSMSharded(bgCtx, g, 3, 1, shardOpts(g, Options{Threads: 1}, 9, true))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := FSM(bgCtx, g, 3, 1, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	samePatternCounts(t, "fsm empty shards", fs, ref)
}

// TestShardedCancellation pins that a cancelled context aborts every shard
// with ctx.Err and leaks nothing (the -race job catches unjoined goroutines
// touching freed state).
func TestShardedCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := randomGraph(rng, 40, 160, 2)
	ctx, cancel := context.WithCancel(bgCtx)
	cancel()
	if _, err := TriangleCountSharded(ctx, g, shardOpts(g, Options{Threads: 1}, 3, false)); err == nil {
		t.Fatal("cancelled sharded run returned nil error")
	}
	if _, _, err := FSMSharded(ctx, g, 3, 1, shardOpts(g, Options{Threads: 1}, 3, true)); err == nil {
		t.Fatal("cancelled sharded FSM returned nil error")
	}
}
