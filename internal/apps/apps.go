// Package apps implements the four mining applications of §5.1 on top of the
// exploration engine: frequent subgraph mining (edge-induced, MNI support),
// motif counting, clique discovery, and triangle counting. Each follows the
// paper's two-phase shape — embedding exploration, then pattern aggregation
// with per-worker PatternMaps merged by a Reducer — but the terminal phase
// is fused into the exploration through the engine's expansion sinks: the
// final (largest) level of a run is consumed where it is produced instead
// of being stored. CliqueCount counts its last expansion with a CountSink,
// MotifCount's Mapper and FSM's final aggregation ride a VisitSink, and
// FSM's level-synchronous pruning rewrites the top level in place
// (FilterTop's keep sink) — so every application writes zero bytes for its
// terminal level, on any storage regime.
package apps

import (
	"context"
	"fmt"
	"slices"
	"sort"

	"kaleido/internal/blisslike"
	"kaleido/internal/eigen"
	"kaleido/internal/explore"
	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
	"kaleido/internal/pattern"
	"kaleido/internal/storage"
	"kaleido/internal/storage/vfs"
)

// IsoAlgo selects the isomorphism backend of the pattern aggregation phase.
type IsoAlgo int

const (
	// IsoEigen is Kaleido's Algorithm 1 (the default).
	IsoEigen IsoAlgo = iota
	// IsoBliss is the bliss-like search-tree canonical labeler — the §6.3
	// baseline.
	IsoBliss
	// IsoEigenExact is Algorithm 1 with exact big-integer characteristic
	// polynomials (ablation).
	IsoEigenExact
)

// Options configures an application run.
type Options struct {
	Threads        int
	MemoryBudget   int64
	SpillDir       string
	SpillWatermark float64 // fraction of MemoryBudget where spilling starts (0 = default)
	Predict        bool
	PredictSample  int // exactly-predicted groups per chunk (0 = default, <0 = all)
	BufSize        int
	BlockSize      int
	// Compression selects the on-disk encoding of spilled level parts
	// (storage.CompressionAuto compresses spill files; memory stays raw).
	Compression storage.Compression
	// ResidentCompression enables the compressed-mem tier for budgeted runs
	// (storage.CompressionAuto, the default): under pressure the budget
	// governor squeezes raw resident parts into in-memory codec blocks
	// before spilling to disk, and sealed levels are compacted wholesale.
	// storage.CompressionOff keeps resident parts raw.
	ResidentCompression storage.Compression
	// FS routes all spill I/O; nil means the real filesystem. Fault
	// campaigns inject a vfs.FaultFS here.
	FS      vfs.FS
	Iso     IsoAlgo
	Tracker *memtrack.Tracker
	// Spill, when non-nil, receives the run's part-level spill accounting.
	Spill *SpillInfo
	// Seeds restricts level 1 to a contiguous range of exploration units —
	// vertex ids for vertex-induced apps, edge ids for FSM. Nil seeds the
	// full range. Prefix-range sharded execution gives each shard one range:
	// every canonical embedding is rooted at exactly one level-1 unit, so
	// disjoint ranges covering the id space partition the embedding space.
	Seeds *SeedRange
}

// SeedRange is a half-open level-1 unit id range [Lo, Hi).
type SeedRange struct {
	Lo, Hi uint32
}

// initVertices seeds level 1 with the Options' vertex range (or all vertices).
func (o Options) initVertices(e *explore.Explorer, g *graph.Graph, filter func(v uint32) bool) error {
	if o.Seeds != nil {
		return e.InitVertexRange(o.Seeds.Lo, o.Seeds.Hi, filter)
	}
	return e.InitVertices(filter)
}

// initEdges seeds level 1 with the Options' edge range (or all edges).
func (o Options) initEdges(e *explore.Explorer, g *graph.Graph, filter func(eid uint32) bool) error {
	if o.Seeds != nil {
		return e.InitEdgeRange(o.Seeds.Lo, o.Seeds.Hi, filter)
	}
	return e.InitEdges(filter)
}

// SpillInfo is the hybrid-storage accounting of one application run.
type SpillInfo struct {
	// SpilledLevels counts expansions that migrated at least one part.
	SpilledLevels int
	// SpilledParts counts the level parts migrated to disk.
	SpilledParts int
	// PromotedParts counts disk parts promoted back to memory after an
	// in-place filter or a pop left the (shared) budget with headroom.
	PromotedParts int
	// CompressedParts counts raw resident parts squeezed into
	// compressed-mem blocks (by the build governor under pressure and by
	// cold-level compaction).
	CompressedParts int
	// SpilledBytes is the logical size (raw word bytes) of the spilled
	// parts; SpilledBytesPhysical is what they occupied on disk — smaller
	// when spill compression is on.
	SpilledBytes         int64
	SpilledBytesPhysical int64
	// ResidentBytesLogical is the raw word footprint the memory-resident
	// level data stood for at run end — larger than the tracked resident
	// bytes when compressed-mem parts were live.
	ResidentBytesLogical int64
	// Levels is the final placement snapshot of the run's live CSE levels
	// (base level first), taken just before the explorer closed — the
	// per-level view a metrics endpoint can report after the run is gone.
	Levels []explore.LevelStat
}

func (o Options) exploreConfig(g *graph.Graph, mode explore.Mode) explore.Config {
	return explore.Config{
		Graph: g, Mode: mode, Threads: o.Threads,
		MemoryBudget: o.MemoryBudget, SpillDir: o.SpillDir,
		SpillWatermark: o.SpillWatermark,
		Predict:        o.Predict, PredictSample: o.PredictSample,
		BufSize: o.BufSize, BlockSize: o.BlockSize,
		Compression:         o.Compression,
		ResidentCompression: o.ResidentCompression,
		FS:                  o.FS,
		Tracker:             o.Tracker,
	}
}

// captureSpill snapshots the explorer's spill counters into opt.Spill; use
// it as a deferred call so the final expansion is included.
func captureSpill(opt Options, e *explore.Explorer) {
	if opt.Spill != nil {
		*opt.Spill = SpillInfo{
			SpilledLevels:        e.SpilledLevels(),
			SpilledParts:         e.SpilledParts(),
			PromotedParts:        e.PromotedParts(),
			CompressedParts:      e.CompressedParts(),
			SpilledBytes:         e.SpilledBytes(),
			SpilledBytesPhysical: e.SpilledBytesPhysical(),
			ResidentBytesLogical: e.ResidentBytesLogical(),
			Levels:               e.LevelStats(),
		}
	}
}

// hasher is the per-worker isomorphism hash state. Hash must sort the
// pattern by (label, degree) as Algorithm 1 does.
type hasher interface {
	Hash(p *pattern.Pattern) uint64
}

type blissHasher struct{}

func (blissHasher) Hash(p *pattern.Pattern) uint64 {
	p.SortByLabelDegree() // keep position semantics identical across backends
	return blisslike.Hash(p)
}

func newHasher(a IsoAlgo) hasher {
	switch a {
	case IsoBliss:
		return blissHasher{}
	case IsoEigenExact:
		return eigen.NewExact()
	default:
		return eigen.New()
	}
}

// PatternCount is one aggregated pattern: a representative (normalized)
// pattern, its embedding count, and — for FSM — its MNI support.
type PatternCount struct {
	Pattern *pattern.Pattern
	Count   uint64
	Support uint64
}

// sortCounts orders results descending by count then by encoding, making
// outputs deterministic across thread counts.
func sortCounts(out []PatternCount) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Pattern.Encode() < out[j].Pattern.Encode()
	})
}

// TriangleCount counts triangles (§5.1): explore canonical 2-embeddings,
// then each Mapper counts common neighbors beyond the larger endpoint so
// every triangle is counted exactly once. Consecutive embeddings of a
// worker's range share their first vertex, so each worker marks N(u) once
// per run with its NeighborMarker and then answers every probe in O(1) —
// one gallop to the first neighbor past v plus one probe per remaining
// neighbor, instead of a fresh linear merge of both lists per embedding.
// ctx cancels the run between blocks of work.
func TriangleCount(ctx context.Context, g *graph.Graph, opt Options) (uint64, error) {
	e, err := explore.New(opt.exploreConfig(g, explore.VertexInduced))
	if err != nil {
		return 0, err
	}
	defer e.Close()
	defer captureSpill(opt, e)
	if err := opt.initVertices(e, g, nil); err != nil {
		return 0, err
	}
	if err := e.Expand(ctx, nil, nil); err != nil {
		return 0, err
	}
	nw := threadsOf(opt)
	counts := make([]uint64, nw)
	type markState struct {
		mk     *graph.NeighborMarker
		u      uint32
		marked bool
	}
	states := make([]*markState, nw)
	err = e.ForEach(ctx, func(w int, emb []uint32) error {
		u, v := emb[0], emb[1]
		st := states[w]
		if st == nil {
			st = &markState{mk: g.NewNeighborMarker()}
			states[w] = st
		}
		if !st.marked || st.u != u {
			st.mk.Begin()
			st.mk.MarkNeighbors(u)
			st.u, st.marked = u, true
		}
		nv := g.Neighbors(v)
		var c uint64
		for j := sort.Search(len(nv), func(x int) bool { return nv[x] > v }); j < len(nv); j++ {
			if st.mk.Marked(nv[j]) {
				c++
			}
		}
		counts[w] += c
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// cliqueFilter returns the worker-aware clique EmbeddingFilter: a candidate
// must be adjacent to every embedding vertex. Instead of one adjacency
// search per (candidate, embedding vertex) pair, each worker keeps a
// NeighborMarker: the prefix emb[:k-1] — shared by a whole run of leaves —
// is marked once at O(Σ deg), after which each candidate costs one O(1)
// count probe (adjacent to all k−1 prefix vertices?) plus a single
// adjacency test against the leaf.
func cliqueFilter(g *graph.Graph, nw int) explore.VertexFilter {
	type markState struct {
		mk     *graph.NeighborMarker
		prefix []uint32
		marked bool
	}
	states := make([]*markState, nw)
	return func(w int, emb []uint32, cand uint32) bool {
		st := states[w]
		if st == nil {
			st = &markState{mk: g.NewNeighborMarker()}
			states[w] = st
		}
		pre := emb[:len(emb)-1]
		if !st.marked || !slices.Equal(st.prefix, pre) {
			st.mk.Begin()
			for _, v := range pre {
				st.mk.MarkNeighbors(v)
			}
			st.prefix = append(st.prefix[:0], pre...)
			st.marked = true
		}
		return st.mk.Count(cand) == len(pre) && g.HasEdge(emb[len(emb)-1], cand)
	}
}

// CliqueCount counts k-cliques (§5.1): the EmbeddingFilter admits only
// candidates adjacent to every embedding vertex, so every surviving
// extension is a k-clique and no pattern computation is needed. Only k−2
// levels are materialized: the final expansion — the largest level of the
// run — is consumed by a CountSink at the frontier (§6.5 generalized), so
// zero bytes are written for it. ctx cancels the run between blocks of work.
func CliqueCount(ctx context.Context, g *graph.Graph, k int, opt Options) (uint64, error) {
	if k < 2 {
		return 0, fmt.Errorf("apps: clique size %d < 2", k)
	}
	e, err := explore.New(opt.exploreConfig(g, explore.VertexInduced))
	if err != nil {
		return 0, err
	}
	defer e.Close()
	defer captureSpill(opt, e)
	if err := opt.initVertices(e, g, nil); err != nil {
		return 0, err
	}
	filter := cliqueFilter(g, threadsOf(opt))
	for i := 1; i < k-1; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if err := e.Expand(ctx, filter, nil); err != nil {
			return 0, err
		}
	}
	return e.ExpandCount(ctx, filter, nil)
}

// MotifCount counts the frequency of every k-motif (§5.1): exploration stops
// at (k−1)-embeddings; the Mapper explores each one's canonical extensions
// on the fly and aggregates pattern hashes. Labels are ignored: motifs are
// structural. ctx cancels the run between blocks of work.
func MotifCount(ctx context.Context, g *graph.Graph, k int, opt Options) ([]PatternCount, error) {
	if k < 2 || k > pattern.MaxK {
		return nil, fmt.Errorf("apps: motif size %d out of [2,%d]", k, pattern.MaxK)
	}
	e, err := explore.New(opt.exploreConfig(g, explore.VertexInduced))
	if err != nil {
		return nil, err
	}
	defer e.Close()
	defer captureSpill(opt, e)
	if err := opt.initVertices(e, g, nil); err != nil {
		return nil, err
	}
	// k-Motif stores only k−1 levels (§6.5): the last expansion is consumed
	// by the Mapper at the frontier through a VisitSink.
	for i := 1; i < k-1; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := e.Expand(ctx, nil, nil); err != nil {
			return nil, err
		}
	}
	nw := threadsOf(opt)
	maps := make([]map[uint64]*motifAgg, nw)
	hashers := make([]hasher, nw)
	for i := range maps {
		maps[i] = map[uint64]*motifAgg{}
		hashers[i] = newHasher(opt.Iso)
	}
	verts := make([][]uint32, nw)
	pats := make([]pattern.Pattern, nw)
	for i := range verts {
		verts[i] = make([]uint32, k)
	}
	err = e.ExpandVisit(ctx, nil, nil, func(w int, emb []uint32, cand uint32) error {
		vs := verts[w]
		copy(vs, emb)
		vs[k-1] = cand
		p := &pats[w]
		if err := fillPatternOfVertices(g, vs, true, p); err != nil {
			return err
		}
		h := hashers[w].Hash(p)
		if agg, ok := maps[w][h]; ok {
			agg.count++
		} else {
			maps[w][h] = &motifAgg{pat: p.Clone(), count: 1}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := map[uint64]*motifAgg{}
	for _, m := range maps {
		for h, agg := range m {
			if prev, ok := merged[h]; ok {
				prev.count += agg.count
			} else {
				merged[h] = agg
			}
		}
	}
	out := make([]PatternCount, 0, len(merged))
	for _, agg := range merged {
		out = append(out, PatternCount{Pattern: agg.pat, Count: agg.count})
	}
	sortCounts(out)
	return out, nil
}

type motifAgg struct {
	pat   *pattern.Pattern
	count uint64
}

// patternOfVertices builds the vertex-induced pattern of verts; unlabeled
// strips labels (motif counting treats the graph as unlabeled, §6.2).
func patternOfVertices(g *graph.Graph, verts []uint32, unlabeled bool) (*pattern.Pattern, error) {
	p, err := pattern.New(len(verts))
	if err != nil {
		return nil, err
	}
	if err := fillPatternOfVertices(g, verts, unlabeled, p); err != nil {
		return nil, err
	}
	return p, nil
}

// fillPatternOfVertices is patternOfVertices into a reused Pattern value.
func fillPatternOfVertices(g *graph.Graph, verts []uint32, unlabeled bool, p *pattern.Pattern) error {
	if err := p.Reset(len(verts)); err != nil {
		return err
	}
	if !unlabeled {
		for i, v := range verts {
			p.Labels[i] = g.Label(v)
		}
	}
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if g.HasEdge(verts[i], verts[j]) {
				p.SetEdge(i, j)
			}
		}
	}
	return nil
}

func threadsOf(opt Options) int {
	if opt.Threads > 0 {
		return opt.Threads
	}
	return defaultThreads()
}
