package apps

import (
	"context"
	"fmt"
	"runtime"

	"kaleido/internal/explore"
	"kaleido/internal/graph"
	"kaleido/internal/mni"
	"kaleido/internal/pattern"
)

func defaultThreads() int { return runtime.GOMAXPROCS(0) }

// FSM mines frequent subgraphs with the minimum image-based (MNI) support
// metric (§5.1): k-FSM returns frequent patterns with k−1 edges and at most
// k vertices, exploring edge-induced embeddings and pruning infrequent
// patterns level-synchronously. Following the paper's implementation (§6.2),
// the exact MNI support is not computed: as soon as a pattern's support
// reaches the threshold it is marked frequent and its domain tracking is
// dropped, which is why FSM run time is non-monotonic in the support
// (Fig. 11). ctx cancels the run between blocks of work.
func FSM(ctx context.Context, g *graph.Graph, k int, support uint64, opt Options) ([]PatternCount, error) {
	res, _, err := fsmRun(ctx, g, k, support, opt)
	return res, err
}

// fsmRun is FSM returning also the number of final-level embeddings the
// fused aggregation visited (the CountVisitSink total) — the Count a sharded
// Result reports.
func fsmRun(ctx context.Context, g *graph.Graph, k int, support uint64, opt Options) ([]PatternCount, uint64, error) {
	if err := fsmValidate(k, support); err != nil {
		return nil, 0, err
	}

	// Init (§5.1): MNI support of every single-edge pattern; infrequent
	// edges are eliminated before exploration starts.
	freqPairs, edgeCounts := frequentEdgePatterns(g, support)
	if k == 2 {
		out := edgeCounts
		sortCounts(out)
		return out, uint64(g.M()), nil
	}

	e, err := explore.New(opt.exploreConfig(g, explore.EdgeInduced))
	if err != nil {
		return nil, 0, err
	}
	defer e.Close()
	defer captureSpill(opt, e)
	if err := opt.initEdges(e, g, fsmSeedFilter(g, freqPairs)); err != nil {
		return nil, 0, err
	}

	filter := fsmEmbeddingFilter(g, k, freqPairs)

	var result []PatternCount
	var total uint64
	for level := 2; level <= k-1; level++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		if level < k-1 {
			if err := e.Expand(ctx, nil, filter); err != nil {
				return nil, 0, err
			}
			merged, err := aggregateFSM(ctx, g, e, support, opt)
			if err != nil {
				return nil, 0, err
			}
			if err := fsmFilterTop(ctx, g, e, k, merged, opt); err != nil {
				return nil, 0, err
			}
			continue
		}
		// Final level: the largest level of the run is aggregated at the
		// expansion frontier and never materialized — the §6.5
		// terminal-consumption trick applied to FSM.
		merged, n, err := aggregateFSMFused(ctx, g, e, filter, support, opt)
		if err != nil {
			return nil, 0, err
		}
		total = n
		result = collectFrequent(result, merged, support)
	}
	sortCounts(result)
	return result, total, nil
}

func fsmValidate(k int, support uint64) error {
	if k < 2 || k > pattern.MaxK {
		return fmt.Errorf("apps: FSM size %d out of [2,%d]", k, pattern.MaxK)
	}
	if support == 0 {
		return fmt.Errorf("apps: FSM support must be positive")
	}
	return nil
}

// fsmSeedFilter admits only edges whose 1-edge pattern is frequent.
func fsmSeedFilter(g *graph.Graph, freqPairs map[uint32]bool) func(eid uint32) bool {
	return func(eid uint32) bool {
		ed := g.EdgeAt(eid)
		return freqPairs[pairKey(g.Label(ed.U), g.Label(ed.V))]
	}
}

// fsmEmbeddingFilter is FSM's EmbeddingFilter: the candidate edge must
// itself be frequent and the embedding must not exceed k distinct vertices.
func fsmEmbeddingFilter(g *graph.Graph, k int, freqPairs map[uint32]bool) explore.EdgeFilter {
	return func(_ int, emb []uint32, verts []uint32, cand uint32) bool {
		ed := g.EdgeAt(cand)
		if !freqPairs[pairKey(g.Label(ed.U), g.Label(ed.V))] {
			return false
		}
		nv := 0
		if !sortedContains(verts, ed.U) {
			nv++
		}
		if !sortedContains(verts, ed.V) {
			nv++
		}
		return len(verts)+nv <= k
	}
}

// fsmFilterTop is the Reducer pruning pass: drop embeddings of infrequent
// patterns, rewriting the top level in place (keep sink) so resident data is
// compacted where it sits instead of being copied through a fresh builder.
// When the merged map shows every pattern frequent, nothing would be pruned
// and the whole hash pass over the level is skipped.
func fsmFilterTop(ctx context.Context, g *graph.Graph, e *explore.Explorer, k int, merged map[uint64]*mni.Agg, opt Options) error {
	if allFrequent(merged) {
		return nil
	}
	nw := threadsOf(opt)
	hashers := make([]hasher, nw)
	bufs := make([][]uint32, nw)
	for i := range hashers {
		hashers[i] = newHasher(opt.Iso)
		bufs[i] = make([]uint32, 0, 2*k)
	}
	return e.FilterTop(ctx, func(w int, emb []uint32) bool {
		p, verts, err := patternOfEdges(g, emb, bufs[w])
		bufs[w] = verts[:0]
		if err != nil {
			return false
		}
		h := hashers[w].Hash(p)
		agg, ok := merged[h]
		return ok && agg.Frequent()
	})
}

// allFrequent reports whether every aggregated pattern reached the support
// threshold — then a pruning pass would keep every embedding.
func allFrequent(m map[uint64]*mni.Agg) bool {
	for _, agg := range m {
		if !agg.Frequent() {
			return false
		}
	}
	return true
}

// collectFrequent appends the frequent patterns of a merged map as results.
// The reported support is saturated at the query threshold: following the
// paper (§6.2) domains are released the moment a pattern crosses the
// threshold, so the exact support is never computed and the raw crossing
// value would vary with worker and shard merge order.
func collectFrequent(result []PatternCount, merged map[uint64]*mni.Agg, support uint64) []PatternCount {
	for _, agg := range merged {
		if !agg.Frequent() {
			continue
		}
		s := agg.Support()
		if s > support {
			s = support
		}
		result = append(result, PatternCount{
			Pattern: agg.Pat,
			Count:   agg.Count,
			Support: s,
		})
	}
	return result
}

// pairKey packs an unordered label pair.
func pairKey(a, b graph.Label) uint32 {
	if a > b {
		a, b = b, a
	}
	return uint32(a)<<16 | uint32(b)
}

// frequentEdgePatterns computes the MNI support of every 1-edge pattern.
// For label pairs (a, a) the two pattern positions are automorphic, so both
// share one domain; for (a, b) the domains are per label — both exact.
func frequentEdgePatterns(g *graph.Graph, support uint64) (map[uint32]bool, []PatternCount) {
	type dom struct {
		a, b map[uint32]struct{}
		n    uint64
	}
	doms := map[uint32]*dom{}
	for _, ed := range g.Edges() {
		la, lb := g.Label(ed.U), g.Label(ed.V)
		key := pairKey(la, lb)
		d, ok := doms[key]
		if !ok {
			d = &dom{a: map[uint32]struct{}{}, b: map[uint32]struct{}{}}
			doms[key] = d
		}
		d.n++
		if la == lb {
			d.a[ed.U] = struct{}{}
			d.a[ed.V] = struct{}{}
		} else {
			// Domain a holds the smaller label's endpoint.
			u, v := ed.U, ed.V
			if la > lb {
				u, v = v, u
			}
			d.a[u] = struct{}{}
			d.b[v] = struct{}{}
		}
	}
	freq := map[uint32]bool{}
	var counts []PatternCount
	for key, d := range doms {
		mni := uint64(len(d.a))
		if len(d.b) > 0 && uint64(len(d.b)) < mni {
			mni = uint64(len(d.b))
		}
		if mni >= support {
			freq[key] = true
			la := graph.Label(key >> 16)
			lb := graph.Label(key & 0xffff)
			p, _ := pattern.New(2)
			p.Labels[0], p.Labels[1] = la, lb
			p.SetEdge(0, 1)
			counts = append(counts, PatternCount{Pattern: p, Count: d.n, Support: mni})
		}
	}
	return freq, counts
}

// fsmAggregator is the per-worker Mapper state of FSM's pattern
// aggregation, shared by the materialized path (ForEach over a stored
// level) and the fused path (VisitSink at the expansion frontier).
type fsmAggregator struct {
	g       *graph.Graph
	support uint64
	maps    []map[uint64]*mni.Agg
	hashers []hasher
	bufs    [][]uint32
}

func newFSMAggregator(g *graph.Graph, support uint64, opt Options) *fsmAggregator {
	nw := threadsOf(opt)
	a := &fsmAggregator{
		g: g, support: support,
		maps:    make([]map[uint64]*mni.Agg, nw),
		hashers: make([]hasher, nw),
		bufs:    make([][]uint32, nw),
	}
	for i := range a.maps {
		a.maps[i] = map[uint64]*mni.Agg{}
		a.hashers[i] = newHasher(opt.Iso)
		a.bufs[i] = make([]uint32, 0, 16)
	}
	return a
}

// add folds one embedding into worker w's PatternMap.
func (a *fsmAggregator) add(w int, emb []uint32) error {
	p, verts, err := patternOfEdges(a.g, emb, a.bufs[w])
	a.bufs[w] = verts[:0]
	if err != nil {
		return err
	}
	var perm [pattern.MaxK]uint8
	p.SortByLabelDegreeTracked(&perm)
	h := a.hashers[w].Hash(p) // already sorted; hash only
	agg, ok := a.maps[w][h]
	if !ok {
		agg = mni.NewAgg(p)
		a.maps[w][h] = agg
	}
	agg.Insert(verts, &perm, a.support)
	return nil
}

// merge Reduces the per-worker maps into one (the paper notes this merge is
// the scalability cost of FSM, Fig. 14).
func (a *fsmAggregator) merge() map[uint64]*mni.Agg {
	return mni.MergeMaps(a.maps, a.support)
}

// aggregateFSM runs the Mapper over all top-level embeddings with per-worker
// PatternMaps, then Reduces them into one map keyed by isomorphism hash.
func aggregateFSM(ctx context.Context, g *graph.Graph, e *explore.Explorer, support uint64, opt Options) (map[uint64]*mni.Agg, error) {
	a := newFSMAggregator(g, support, opt)
	if err := e.ForEach(ctx, a.add); err != nil {
		return nil, err
	}
	return a.merge(), nil
}

// aggregateFSMFused is aggregateFSM fused into the expansion itself: the
// final level's embeddings are handed to the Mapper as they are produced and
// never stored, so FSM's largest level writes zero bytes. The sink is the
// combined Count+Visit sink, so the total embedding count of the final level
// comes out of the same pass instead of a second walk over the aggregates.
func aggregateFSMFused(ctx context.Context, g *graph.Graph, e *explore.Explorer, filter explore.EdgeFilter, support uint64, opt Options) (map[uint64]*mni.Agg, uint64, error) {
	a := newFSMAggregator(g, support, opt)
	embBufs := make([][]uint32, threadsOf(opt))
	total, err := e.ExpandCountVisit(ctx, nil, filter, func(w int, emb []uint32, cand uint32) error {
		buf := append(embBufs[w][:0], emb...)
		buf = append(buf, cand)
		embBufs[w] = buf
		return a.add(w, buf)
	})
	if err != nil {
		return nil, 0, err
	}
	return a.merge(), total, nil
}

// patternOfEdges builds the labeled pattern of an edge-induced embedding.
// verts (reusing vbuf) lists the distinct vertices in pattern-index order.
func patternOfEdges(g *graph.Graph, emb []uint32, vbuf []uint32) (*pattern.Pattern, []uint32, error) {
	verts := vbuf[:0]
	idx := func(v uint32) int {
		for i, u := range verts {
			if u == v {
				return i
			}
		}
		verts = append(verts, v)
		return len(verts) - 1
	}
	type pe struct{ a, b int }
	var edges [pattern.MaxK * (pattern.MaxK - 1) / 2]pe
	if len(emb) > len(edges) {
		return nil, verts, fmt.Errorf("apps: %d edges exceed pattern capacity", len(emb))
	}
	for i, eid := range emb {
		ed := g.EdgeAt(eid)
		edges[i] = pe{idx(ed.U), idx(ed.V)}
	}
	p, err := pattern.New(len(verts))
	if err != nil {
		return nil, verts, err
	}
	for i, v := range verts {
		p.Labels[i] = g.Label(v)
	}
	for i := range emb {
		p.SetEdge(edges[i].a, edges[i].b)
	}
	return p, verts, nil
}

// sortedContains reports membership in a sorted slice.
func sortedContains(s []uint32, v uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}
