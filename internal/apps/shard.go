package apps

// Prefix-range sharded execution: the level-1 unit range is split into
// contiguous id ranges (graph.DegreeMassVertexRanges /
// DegreeMassEdgeRanges balance them by degree mass) and each shard runs the
// application over its own explorer, seeded with Options.Seeds. Every
// canonical embedding is rooted at exactly one level-1 unit, so disjoint
// seed ranges covering the id space partition the embedding space exactly:
// shard results merge by plain summation (triangles, cliques), by
// isomorphism-hash merge (motifs), or — for FSM, whose level-synchronous
// pruning needs global supports — by a per-level barrier that merges every
// shard's MNI aggregates before any shard prunes.
//
// Each shard is an independent run charging its own Tracker; callers hand
// every shard a child of one memtrack.Arbiter so the shards respect one
// combined memory budget (the Engine's multi-run discipline applied within
// a single job).

import (
	"context"
	"errors"
	"sync"

	"kaleido/internal/explore"
	"kaleido/internal/graph"
	"kaleido/internal/mni"
)

// runShards runs f(i) for every shard concurrently and waits for all of
// them. The first failure cancels the sibling shards' context; the error
// returned prefers a root cause over the cancellations it induced.
func runShards(ctx context.Context, n int, f func(ctx context.Context, shard int) error) error {
	if n == 1 {
		return f(ctx, 0)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := f(cctx, i); err != nil {
				errs[i] = err
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TriangleCountSharded runs TriangleCount as len(opts) concurrent shards
// (each opts[i] carrying its Seeds range and Tracker) and sums the counts.
func TriangleCountSharded(ctx context.Context, g *graph.Graph, opts []Options) (uint64, error) {
	if len(opts) == 1 {
		return TriangleCount(ctx, g, opts[0])
	}
	counts := make([]uint64, len(opts))
	err := runShards(ctx, len(opts), func(ctx context.Context, i int) error {
		n, err := TriangleCount(ctx, g, opts[i])
		counts[i] = n
		return err
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// CliqueCountSharded runs CliqueCount as len(opts) concurrent shards and
// sums the counts.
func CliqueCountSharded(ctx context.Context, g *graph.Graph, k int, opts []Options) (uint64, error) {
	if len(opts) == 1 {
		return CliqueCount(ctx, g, k, opts[0])
	}
	counts := make([]uint64, len(opts))
	err := runShards(ctx, len(opts), func(ctx context.Context, i int) error {
		n, err := CliqueCount(ctx, g, k, opts[i])
		counts[i] = n
		return err
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, n := range counts {
		total += n
	}
	return total, nil
}

// MotifCountSharded runs MotifCount as len(opts) concurrent shards and
// merges the per-shard results by isomorphism hash (the char-poly hash is
// invariant under the vertex order, so identical shapes found by different
// shards collide exactly).
func MotifCountSharded(ctx context.Context, g *graph.Graph, k int, opts []Options) ([]PatternCount, error) {
	if len(opts) == 1 {
		return MotifCount(ctx, g, k, opts[0])
	}
	results := make([][]PatternCount, len(opts))
	err := runShards(ctx, len(opts), func(ctx context.Context, i int) error {
		res, err := MotifCount(ctx, g, k, opts[i])
		results[i] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	return MergePatternCounts(results, opts[0].Iso), nil
}

// MergePatternCounts merges per-shard pattern tallies: counts of isomorphic
// patterns (same hash under the configured backend) sum. Supports do NOT
// merge here — FSM's MNI supports need domain unions, which FSMSharded does
// level-synchronously — so this helper is for count-only aggregates
// (motifs). The result is sorted like a single-run output.
func MergePatternCounts(lists [][]PatternCount, iso IsoAlgo) []PatternCount {
	h := newHasher(iso)
	merged := map[uint64]*PatternCount{}
	for _, list := range lists {
		for _, pc := range list {
			key := h.Hash(pc.Pattern)
			if prev, ok := merged[key]; ok {
				prev.Count += pc.Count
			} else {
				cp := pc
				merged[key] = &cp
			}
		}
	}
	out := make([]PatternCount, 0, len(merged))
	for _, pc := range merged {
		out = append(out, *pc)
	}
	sortCounts(out)
	return out
}

// FSMSharded mines frequent subgraphs over len(opts) concurrent shards of
// the edge id range. Unlike the counting apps the shards cannot run to
// completion independently: MNI support is a global property, so each
// level's pruning must see every shard's aggregates. The loop is therefore
// level-synchronous across shards — all shards expand and aggregate, the
// per-shard MNI maps merge into one global map at the barrier (domain
// unions are exact until threshold saturation, so the two-stage merge
// equals a single-run merge), and every shard prunes its own top level
// against the global map. Returns the frequent patterns and the total
// number of final-level embeddings aggregated.
func FSMSharded(ctx context.Context, g *graph.Graph, k int, support uint64, opts []Options) ([]PatternCount, uint64, error) {
	if len(opts) == 1 {
		return fsmRun(ctx, g, k, support, opts[0])
	}
	if err := fsmValidate(k, support); err != nil {
		return nil, 0, err
	}
	freqPairs, edgeCounts := frequentEdgePatterns(g, support)
	if k == 2 {
		sortCounts(edgeCounts)
		return edgeCounts, uint64(g.M()), nil
	}

	S := len(opts)
	shards := make([]*shardFSM, S)
	defer func() {
		for _, sh := range shards {
			if sh != nil {
				sh.close()
			}
		}
	}()
	for i := range shards {
		sh, err := newShardFSM(g, freqPairs, opts[i])
		if err != nil {
			return nil, 0, err
		}
		shards[i] = sh
	}
	filter := fsmEmbeddingFilter(g, k, freqPairs)

	var result []PatternCount
	var totalMu sync.Mutex
	var total uint64
	for level := 2; level <= k-1; level++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		maps := make([]map[uint64]*mni.Agg, S)
		if level < k-1 {
			err := runShards(ctx, S, func(ctx context.Context, i int) error {
				if err := shards[i].e.Expand(ctx, nil, filter); err != nil {
					return err
				}
				m, err := aggregateFSM(ctx, g, shards[i].e, support, opts[i])
				maps[i] = m
				return err
			})
			if err != nil {
				return nil, 0, err
			}
			// Barrier: global supports before any shard prunes.
			global := mni.MergeMaps(maps, support)
			err = runShards(ctx, S, func(ctx context.Context, i int) error {
				return fsmFilterTop(ctx, g, shards[i].e, k, global, opts[i])
			})
			if err != nil {
				return nil, 0, err
			}
			continue
		}
		err := runShards(ctx, S, func(ctx context.Context, i int) error {
			m, n, err := aggregateFSMFused(ctx, g, shards[i].e, filter, support, opts[i])
			maps[i] = m
			totalMu.Lock()
			total += n
			totalMu.Unlock()
			return err
		})
		if err != nil {
			return nil, 0, err
		}
		result = collectFrequent(result, mni.MergeMaps(maps, support), support)
	}
	sortCounts(result)
	return result, total, nil
}

// shardFSM is one shard's long-lived exploration state (FSM's shards live
// across the level loop, unlike the counting apps' one-shot runs).
type shardFSM struct {
	e   *explore.Explorer
	opt Options
}

func newShardFSM(g *graph.Graph, freqPairs map[uint32]bool, opt Options) (*shardFSM, error) {
	e, err := explore.New(opt.exploreConfig(g, explore.EdgeInduced))
	if err != nil {
		return nil, err
	}
	if err := opt.initEdges(e, g, fsmSeedFilter(g, freqPairs)); err != nil {
		e.Close()
		return nil, err
	}
	return &shardFSM{e: e, opt: opt}, nil
}

func (s *shardFSM) close() {
	captureSpill(s.opt, s.e)
	s.e.Close()
}
