// Package linalg implements the small dense-matrix linear algebra behind
// Kaleido's isomorphism check: the characteristic polynomial of a weighted
// adjacency matrix computed with the Faddeev–LeVerrier algorithm (paper
// Algorithm 1, CharPloynomical). Two arithmetics are provided:
//
//   - an exact computation modulo two 61-bit Mersenne-like primes, the
//     default production path (integer characteristic-polynomial coefficients
//     of k≤8 weighted matrices overflow int64, and floating point would make
//     hash equality unreliable);
//   - an exact big.Int computation retained for verification and ablation.
//
// Matrices are stored row-major in flat slices; all matrices here are at most
// MaxN×MaxN, so everything is stack-friendly and allocation-light.
package linalg

import (
	"math/big"
	"math/bits"
)

// MaxN is the largest supported matrix dimension. The paper's isomorphism
// check is valid for embeddings with fewer than 9 vertices (Corollary 1), so
// 8 is exactly the supported maximum.
const MaxN = 8

// The two moduli used by the fingerprinted characteristic polynomial.
// P1 is the Mersenne prime 2^61−1; P2 is a random 61-bit prime. A collision
// requires all n+1 coefficients to agree modulo both primes, probability
// < (n+1)·2^-122 for adversarial inputs drawn independently.
const (
	P1 uint64 = (1 << 61) - 1
	P2 uint64 = 2305843009213693967 // next prime above 2^61−1
)

// mulmod returns a*b mod p using a 128-bit intermediate product.
func mulmod(a, b, p uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%p, lo, p)
	return rem
}

func addmod(a, b, p uint64) uint64 {
	s := a + b
	if s >= p || s < a { // s < a catches the (impossible for 61-bit) wrap
		s -= p
	}
	return s
}

func submod(a, b, p uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + p - b
}

// smallInv caches the inverses of 1..MaxN for the two fixed primes — the
// only divisors Faddeev–LeVerrier needs at our matrix sizes. Computing them
// by Fermat exponentiation per call would dominate the hash cost.
var smallInvP1, smallInvP2 [MaxN + 1]uint64

func init() {
	for k := 1; k <= MaxN; k++ {
		smallInvP1[k] = invmod(uint64(k), P1)
		smallInvP2[k] = invmod(uint64(k), P2)
	}
}

// fastInv returns the inverse of small k for p, falling back to Fermat for
// other moduli.
func fastInv(k int, p uint64) uint64 {
	if k <= MaxN {
		switch p {
		case P1:
			return smallInvP1[k]
		case P2:
			return smallInvP2[k]
		}
	}
	return invmod(uint64(k), p)
}

// invmod returns the modular inverse of a (mod prime p) by Fermat's little
// theorem. a must be nonzero mod p.
func invmod(a, p uint64) uint64 {
	// a^(p-2) mod p
	result := uint64(1)
	base := a % p
	e := p - 2
	for e > 0 {
		if e&1 == 1 {
			result = mulmod(result, base, p)
		}
		base = mulmod(base, base, p)
		e >>= 1
	}
	return result
}

// CharPolyMod computes the characteristic polynomial det(λI − A) of the n×n
// matrix a (row-major, entries already reduced mod p) over GF(p) by
// Faddeev–LeVerrier. The returned slice c has length n+1 with
// c[i] = coefficient of λ^i (c[n] = 1).
//
// Faddeev–LeVerrier recurrence (paper Algorithm 1, lines 19–26):
//
//	M₁ = A,              c_{n−1} = −tr(M₁)
//	M_k = A·(M_{k−1} + c_{n−k+1}·I),   c_{n−k} = −tr(M_k)/k
func CharPolyMod(a []uint64, n int, p uint64) []uint64 {
	return CharPolyModInto(make([]uint64, n+1), a, n, p)
}

// CharPolyModInto is CharPolyMod writing into dst (length n+1), letting hot
// callers reuse one buffer across calls.
func CharPolyModInto(dst []uint64, a []uint64, n int, p uint64) []uint64 {
	if n == 0 {
		dst = dst[:1]
		dst[0] = 1 % p
		return dst
	}
	c := dst[:n+1]
	c[n] = 1 % p

	var m, tmp [MaxN * MaxN]uint64
	copy(m[:n*n], a[:n*n])
	c[n-1] = submod(0, traceMod(m[:], n, p), p)

	for k := 2; k <= n; k++ {
		// tmp = M + c[n−k+1]·I
		copy(tmp[:n*n], m[:n*n])
		for i := 0; i < n; i++ {
			tmp[i*n+i] = addmod(tmp[i*n+i], c[n-k+1], p)
		}
		// M = A·tmp
		matMulMod(m[:], a, tmp[:], n, p)
		tr := traceMod(m[:], n, p)
		c[n-k] = submod(0, mulmod(tr, fastInv(k, p), p), p)
	}
	return c
}

func traceMod(m []uint64, n int, p uint64) uint64 {
	t := uint64(0)
	for i := 0; i < n; i++ {
		t = addmod(t, m[i*n+i]%p, p)
	}
	return t
}

func matMulMod(dst []uint64, a, b []uint64, n int, p uint64) {
	var out [MaxN * MaxN]uint64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s uint64
			for k := 0; k < n; k++ {
				s = addmod(s, mulmod(a[i*n+k], b[k*n+j], p), p)
			}
			out[i*n+j] = s
		}
	}
	copy(dst[:n*n], out[:n*n])
}

// CharPolyBig computes the exact integer characteristic polynomial of the
// n×n integer matrix a (row-major). Coefficient i of the result multiplies
// λ^i. All Faddeev–LeVerrier divisions are exact over the integers.
func CharPolyBig(a []int64, n int) []*big.Int {
	c := make([]*big.Int, n+1)
	for i := range c {
		c[i] = new(big.Int)
	}
	c[n].SetInt64(1)
	if n == 0 {
		return c
	}
	A := make([]*big.Int, n*n)
	M := make([]*big.Int, n*n)
	for i, v := range a[:n*n] {
		A[i] = big.NewInt(v)
		M[i] = big.NewInt(v)
	}
	c[n-1].Neg(traceBig(M, n))

	tmp := make([]*big.Int, n*n)
	for i := range tmp {
		tmp[i] = new(big.Int)
	}
	for k := 2; k <= n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				tmp[i*n+j].Set(M[i*n+j])
				if i == j {
					tmp[i*n+j].Add(tmp[i*n+j], c[n-k+1])
				}
			}
		}
		matMulBig(M, A, tmp, n)
		tr := traceBig(M, n)
		// c[n−k] = −tr/k, an exact division by construction.
		q, r := new(big.Int).QuoRem(tr, big.NewInt(int64(k)), new(big.Int))
		if r.Sign() != 0 {
			panic("linalg: Faddeev–LeVerrier division not exact")
		}
		c[n-k].Neg(q)
	}
	return c
}

func traceBig(m []*big.Int, n int) *big.Int {
	t := new(big.Int)
	for i := 0; i < n; i++ {
		t.Add(t, m[i*n+i])
	}
	return t
}

func matMulBig(dst, a, b []*big.Int, n int) {
	out := make([]*big.Int, n*n)
	prod := new(big.Int)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := new(big.Int)
			for k := 0; k < n; k++ {
				s.Add(s, prod.Mul(a[i*n+k], b[k*n+j]))
			}
			out[i*n+j] = s
		}
	}
	copy(dst, out)
}
