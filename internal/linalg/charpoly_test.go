package linalg

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// polyModFromBig reduces an exact big.Int polynomial mod p for comparison.
func polyModFromBig(c []*big.Int, p uint64) []uint64 {
	mod := new(big.Int).SetUint64(p)
	out := make([]uint64, len(c))
	tmp := new(big.Int)
	for i, v := range c {
		tmp.Mod(v, mod)
		out[i] = tmp.Uint64()
	}
	return out
}

func TestMulmod(t *testing.T) {
	cases := []struct{ a, b, p, want uint64 }{
		{0, 0, P1, 0},
		{1, 1, P1, 1},
		{P1 - 1, P1 - 1, P1, 1}, // (-1)·(-1) = 1
		{1 << 60, 1 << 60, P2, mulmodSlow(1<<60, 1<<60, P2)},
	}
	for _, c := range cases {
		if got := mulmod(c.a, c.b, c.p); got != c.want {
			t.Errorf("mulmod(%d,%d,%d) = %d, want %d", c.a, c.b, c.p, got, c.want)
		}
	}
}

func mulmodSlow(a, b, p uint64) uint64 {
	r := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
	return r.Mod(r, new(big.Int).SetUint64(p)).Uint64()
}

func TestMulmodProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= P1
		b %= P1
		return mulmod(a, b, P1) == mulmodSlow(a, b, P1) &&
			mulmod(a%P2, b%P2, P2) == mulmodSlow(a%P2, b%P2, P2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInvmod(t *testing.T) {
	for _, p := range []uint64{P1, P2} {
		for a := uint64(1); a <= 100; a++ {
			inv := invmod(a, p)
			if mulmod(a, inv, p) != 1 {
				t.Fatalf("invmod(%d, %d) wrong", a, p)
			}
		}
	}
}

func TestCharPolyKnown2x2(t *testing.T) {
	// A = [[0,1],[1,0]]: char poly λ² − 1.
	a := []int64{0, 1, 1, 0}
	c := CharPolyBig(a, 2)
	want := []int64{-1, 0, 1}
	for i, w := range want {
		if c[i].Int64() != w {
			t.Fatalf("coeff %d = %v, want %d", i, c[i], w)
		}
	}
}

func TestCharPolyKnownTriangle(t *testing.T) {
	// Adjacency matrix of K3: char poly λ³ − 3λ − 2.
	a := []int64{
		0, 1, 1,
		1, 0, 1,
		1, 1, 0,
	}
	c := CharPolyBig(a, 3)
	want := []int64{-2, -3, 0, 1}
	for i, w := range want {
		if c[i].Int64() != w {
			t.Fatalf("coeff %d = %v, want %d", i, c[i], w)
		}
	}
}

func TestCharPolyPath3(t *testing.T) {
	// Path a–b–c: char poly λ³ − 2λ.
	a := []int64{
		0, 1, 0,
		1, 0, 1,
		0, 1, 0,
	}
	c := CharPolyBig(a, 3)
	want := []int64{0, -2, 0, 1}
	for i, w := range want {
		if c[i].Int64() != w {
			t.Fatalf("coeff %d = %v, want %d", i, c[i], w)
		}
	}
}

func TestCharPolyEmptyAndIdentityEdge(t *testing.T) {
	c := CharPolyBig(nil, 0)
	if len(c) != 1 || c[0].Int64() != 1 {
		t.Fatalf("n=0: got %v", c)
	}
	cm := CharPolyMod(nil, 0, P1)
	if len(cm) != 1 || cm[0] != 1 {
		t.Fatalf("n=0 mod: got %v", cm)
	}
	// 1x1 matrix [w]: λ − w.
	cw := CharPolyBig([]int64{5}, 1)
	if cw[0].Int64() != -5 || cw[1].Int64() != 1 {
		t.Fatalf("n=1: got %v", cw)
	}
}

// TestCharPolyModMatchesBig is the central correctness property: the modular
// fingerprint equals the exact polynomial reduced mod p, for random symmetric
// weighted matrices up to MaxN.
func TestCharPolyModMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(MaxN)
		ai := make([]int64, n*n)
		au := make([]uint64, n*n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				w := int64(rng.Intn(5000)) // label-pair weights are small positives
				ai[i*n+j], ai[j*n+i] = w, w
				au[i*n+j], au[j*n+i] = uint64(w), uint64(w)
			}
		}
		exact := CharPolyBig(ai, n)
		for _, p := range []uint64{P1, P2} {
			got := CharPolyMod(au, n, p)
			want := polyModFromBig(exact, p)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d n=%d p=%d coeff %d: got %d want %d (matrix %v)",
						trial, n, p, i, got[i], want[i], ai)
				}
			}
		}
	}
}

// TestCharPolyPermutationInvariant: simultaneous row/col permutation leaves
// the characteristic polynomial unchanged (similar matrices).
func TestCharPolyPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(MaxN-1)
		a := make([]uint64, n*n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				w := uint64(rng.Intn(100))
				a[i*n+j], a[j*n+i] = w, w
			}
		}
		perm := rng.Perm(n)
		b := make([]uint64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[perm[i]*n+perm[j]] = a[i*n+j]
			}
		}
		pa := CharPolyMod(a, n, P1)
		pb := CharPolyMod(b, n, P1)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("trial %d: permutation changed char poly", trial)
			}
		}
	}
}

func BenchmarkCharPolyMod8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 8
	a := make([]uint64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := uint64(rng.Intn(1000))
			a[i*n+j], a[j*n+i] = w, w
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CharPolyMod(a, n, P1)
	}
}

func BenchmarkCharPolyBig8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 8
	a := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := int64(rng.Intn(1000))
			a[i*n+j], a[j*n+i] = w, w
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		CharPolyBig(a, n)
	}
}
