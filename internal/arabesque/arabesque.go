// Package arabesque re-implements the algorithmic core of Arabesque
// (Teixeira et al., SOSP 2015) — the distributed "think like an embedding"
// baseline of the paper's §6.2 — as a single-machine engine:
//
//   - intermediate embeddings are stored in an ODAG (overapproximating
//     directed acyclic graph): one vertex domain per embedding position plus
//     links between consecutive positions;
//   - enumerating the ODAG yields candidate tuples that require an extra
//     full canonicality re-check per tuple (the overhead §1.2 and §6.2
//     measure at ~5% of Arabesque run time);
//   - candidate sets are recomputed from scratch for every embedding (no
//     CSE-style incremental candidate maintenance);
//   - pattern aggregation uses the bliss-like search-tree canonical labeler.
//
// The Giraph/Hadoop substrate of the original is intentionally not
// reproduced; measured gaps versus Kaleido therefore reflect algorithmic
// differences only (see DESIGN.md §2).
package arabesque

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"kaleido/internal/explore"
	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
)

// Mode mirrors explore.Mode for the baseline engine.
type Mode int

const (
	// VertexInduced embeddings are vertex tuples.
	VertexInduced Mode = iota
	// EdgeInduced embeddings are edge-id tuples.
	EdgeInduced
)

// ODAG stores the embeddings of one exploration level compactly: domains[i]
// is the sorted set of unit ids appearing at position i, links[i] maps a
// unit at position i to the sorted units that follow it at position i+1 in
// at least one embedding. Enumeration overapproximates — every stored
// embedding is a path, but not every path is an embedding — so a
// canonicality re-check filters spurious tuples.
type ODAG struct {
	K       int
	domains [][]uint32
	links   []map[uint32][]uint32
}

// NewODAG returns an empty ODAG for k-unit embeddings.
func NewODAG(k int) *ODAG {
	o := &ODAG{K: k, domains: make([][]uint32, k), links: make([]map[uint32][]uint32, k-1)}
	for i := range o.links {
		o.links[i] = map[uint32][]uint32{}
	}
	return o
}

// Add records one embedding tuple.
func (o *ODAG) Add(emb []uint32) {
	for i, u := range emb {
		o.domains[i] = insertSorted(o.domains[i], u)
		if i+1 < len(emb) {
			o.links[i][u] = insertSorted(o.links[i][u], emb[i+1])
		}
	}
}

// Merge folds another ODAG (from a peer worker) into o.
func (o *ODAG) Merge(b *ODAG) {
	for i := range b.domains {
		for _, u := range b.domains[i] {
			o.domains[i] = insertSorted(o.domains[i], u)
		}
	}
	for i := range b.links {
		for u, next := range b.links[i] {
			for _, v := range next {
				o.links[i][u] = insertSorted(o.links[i][u], v)
			}
		}
	}
}

// Bytes reports the resident footprint (the paper's Fig. 10 memory metric).
func (o *ODAG) Bytes() int64 {
	var b int64
	for _, d := range o.domains {
		b += int64(len(d)) * 4
	}
	for _, l := range o.links {
		for _, next := range l {
			b += 8 + int64(len(next))*4
		}
	}
	return b
}

func canonicalFn(mode Mode) func(*graph.Graph, []uint32, uint32) bool {
	if mode == EdgeInduced {
		return explore.CanonicalEdge
	}
	return explore.CanonicalVertex
}

// Engine drives level-by-level exploration over ODAGs.
//
// Because the ODAG overapproximates (paths may cross between stored
// embeddings), enumeration re-applies the canonical check and every level's
// EmbeddingFilter at each position — exactly the per-superstep recomputation
// of Arabesque. Filters must therefore be prefix-safe: if they accept an
// extension they must accept it under any canonical prefix of the same
// embedding (the clique and FSM filters of §5.1 are). Aggregation-driven
// pruning (Rebuild) additionally installs a whole-tuple predicate that is
// re-applied on every later enumeration.
type Engine struct {
	g         *graph.Graph
	mode      Mode
	threads   int
	tracker   *memtrack.Tracker
	odag      *ODAG
	ledger    int64
	filters   []Filter // filters[i] vetted extensions to position i+1
	tupleKeep func(worker int, emb []uint32) bool
}

// Filter vets a candidate extension, mirroring Kaleido's EmbeddingFilter.
type Filter func(emb []uint32, cand uint32) bool

// NewEngine creates an Arabesque-like engine.
func NewEngine(g *graph.Graph, mode Mode, threads int, tracker *memtrack.Tracker) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("arabesque: nil graph")
	}
	if threads <= 0 {
		threads = 1
	}
	return &Engine{g: g, mode: mode, threads: threads, tracker: tracker}, nil
}

// Init builds the level-1 ODAG from all units (vertices or edges).
func (e *Engine) Init(filter func(unit uint32) bool) error {
	if e.odag != nil {
		return fmt.Errorf("arabesque: already initialized")
	}
	n := e.g.N()
	if e.mode == EdgeInduced {
		n = e.g.M()
	}
	o := NewODAG(1)
	for u := uint32(0); u < uint32(n); u++ {
		if filter == nil || filter(u) {
			o.domains[0] = append(o.domains[0], u)
		}
	}
	e.setODAG(o)
	return nil
}

func (e *Engine) setODAG(o *ODAG) {
	if e.tracker != nil {
		e.tracker.Free(e.ledger)
		e.ledger = o.Bytes()
		e.tracker.Alloc(e.ledger)
	}
	e.odag = o
}

// Depth returns the current embedding size.
func (e *Engine) Depth() int { return e.odag.K }

// Bytes reports the current ODAG footprint.
func (e *Engine) Bytes() int64 { return e.odag.Bytes() }

// Expand derives the next level: every embedding is enumerated (with the
// canonicality re-check), its candidate set recomputed from scratch, and
// surviving extensions inserted into per-worker ODAGs that are merged — the
// TLE superstep of Arabesque.
func (e *Engine) Expand(filter Filter) error {
	k := e.odag.K
	outs := make([]*ODAG, e.threads)
	for i := range outs {
		outs[i] = NewODAG(k + 1)
	}
	canonical := canonicalFn(e.mode)
	tuples := make([][]uint32, e.threads)
	err := e.enumerate(func(w int, emb []uint32) error {
		if tuples[w] == nil {
			tuples[w] = make([]uint32, k+1)
		}
		tuple := tuples[w]
		copy(tuple, emb)
		for _, cand := range e.candidates(emb) {
			if !canonical(e.g, emb, cand) {
				continue
			}
			if filter != nil && !filter(emb, cand) {
				continue
			}
			tuple[k] = cand
			outs[w].Add(tuple)
		}
		return nil
	})
	if err != nil {
		return err
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged.Merge(o)
	}
	e.setODAG(merged)
	e.filters = append(e.filters, filter)
	e.tupleKeep = nil // a fresh level is fully filter-characterized
	return nil
}

// enumerate walks every ODAG path, re-applying the canonical check, the
// per-level filters, and the tuple keep predicate, and calls visit for each
// genuine embedding. Work is partitioned by first unit across workers.
func (e *Engine) enumerate(visit func(worker int, emb []uint32) error) error {
	o := e.odag
	if len(o.domains[0]) == 0 {
		return nil
	}
	canonical := canonicalFn(e.mode)
	var next atomic.Int64
	firsts := o.domains[0]
	errs := make([]error, e.threads)
	var wg sync.WaitGroup
	for w := 0; w < e.threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tuple := make([]uint32, o.K)
			var rec func(pos int) error
			rec = func(pos int) error {
				if pos == o.K {
					if e.tupleKeep != nil && !e.tupleKeep(w, tuple) {
						return nil
					}
					return visit(w, tuple)
				}
				f := e.filters[pos-1]
				for _, u := range o.links[pos-1][tuple[pos-1]] {
					// Re-check canonicality and the level filter: the
					// ODAG path may cross between stored embeddings.
					if !canonical(e.g, tuple[:pos], u) {
						continue
					}
					if f != nil && !f(tuple[:pos], u) {
						continue
					}
					tuple[pos] = u
					if err := rec(pos + 1); err != nil {
						return err
					}
				}
				return nil
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(firsts) {
					return
				}
				tuple[0] = firsts[i]
				if err := rec(1); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach enumerates the current level's embeddings in parallel.
func (e *Engine) ForEach(visit func(worker int, emb []uint32) error) error {
	return e.enumerate(visit)
}

// Count returns the number of embeddings at the current level (via a full
// enumeration — the ODAG does not store the count).
func (e *Engine) Count() (uint64, error) {
	counts := make([]uint64, e.threads)
	err := e.ForEach(func(w int, _ []uint32) error {
		counts[w]++
		return nil
	})
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, err
}

// Rebuild replaces the current ODAG with one holding only embeddings
// approved by keep — Arabesque's aggregation-driven pruning for FSM. The
// predicate is retained and re-applied on later enumerations because ODAG
// path crossings could otherwise resurrect pruned embeddings.
func (e *Engine) Rebuild(keep func(worker int, emb []uint32) bool) error {
	outs := make([]*ODAG, e.threads)
	for i := range outs {
		outs[i] = NewODAG(e.odag.K)
	}
	err := e.ForEach(func(w int, emb []uint32) error {
		if keep(w, emb) {
			outs[w].Add(emb)
		}
		return nil
	})
	if err != nil {
		return err
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged.Merge(o)
	}
	e.setODAG(merged)
	e.tupleKeep = keep
	return nil
}

// candidates recomputes the embedding's candidate set from scratch — the
// non-incremental path Arabesque takes (contrast Kaleido's Fig. 8 CSE-based
// prediction and reuse).
func (e *Engine) candidates(emb []uint32) []uint32 {
	var out []uint32
	if e.mode == VertexInduced {
		for _, v := range emb {
			for _, u := range e.g.Neighbors(v) {
				out = insertSorted(out, u)
			}
		}
		return out
	}
	seen := make([]uint32, 0, 2*len(emb))
	for _, eid := range emb {
		ed := e.g.EdgeAt(eid)
		for _, v := range []uint32{ed.U, ed.V} {
			if containsSorted(seen, v) {
				continue
			}
			seen = insertSorted(seen, v)
			for _, f := range e.g.IncidentEdges(v) {
				out = insertSorted(out, f)
			}
		}
	}
	return out
}

// Vertices returns the sorted distinct vertices of an edge-induced tuple.
func Vertices(g *graph.Graph, emb []uint32, buf []uint32) []uint32 {
	buf = buf[:0]
	for _, eid := range emb {
		ed := g.EdgeAt(eid)
		buf = insertSorted(buf, ed.U)
		buf = insertSorted(buf, ed.V)
	}
	return buf
}

func insertSorted(s []uint32, v uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func containsSorted(s []uint32, v uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}
