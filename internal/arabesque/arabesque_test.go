package arabesque

import (
	"context"
	"math/rand"
	"testing"

	"kaleido/internal/apps"
	"kaleido/internal/graph"
	"kaleido/internal/iso"
	"kaleido/internal/pattern"
)

var bgCtx = context.Background()

func paperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(5)
	for _, e := range [][2]uint32{{0, 1}, {0, 4}, {1, 4}, {1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(rng *rand.Rand, n, m, labels int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	for v := 0; v < n; v++ {
		b.SetLabel(uint32(v), graph.Label(rng.Intn(labels)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestODAGRoundTrip(t *testing.T) {
	// An ODAG fed the paper's canonical 3-embeddings must enumerate exactly
	// those embeddings back (crossed paths are rejected by the re-check).
	g := paperGraph(t)
	e, err := NewEngine(g, VertexInduced, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Init(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Expand(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Expand(nil); err != nil {
		t.Fatal(err)
	}
	n, err := e.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("3-embeddings = %d, want 8 (paper Fig. 3)", n)
	}
}

func TestTriangleCountMatchesKaleido(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(rng, 10+rng.Intn(20), rng.Intn(80), 2)
		want, err := apps.TriangleCount(bgCtx, g, apps.Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		got, err := TriangleCount(g, Options{Threads: 1 + rng.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: arabesque triangles = %d, kaleido = %d", trial, got, want)
		}
	}
}

func TestCliqueCountMatchesKaleido(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 12+rng.Intn(12), rng.Intn(70), 2)
		for k := 3; k <= 4; k++ {
			want, err := apps.CliqueCount(bgCtx, g, k, apps.Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, err := CliqueCount(g, k, Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("trial %d k=%d: arabesque cliques = %d, kaleido = %d", trial, k, got, want)
			}
		}
	}
}

func TestMotifCountMatchesKaleido(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(rng, 10+rng.Intn(8), rng.Intn(40), 1)
		for k := 3; k <= 4; k++ {
			want, err := apps.MotifCount(bgCtx, g, k, apps.Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, err := MotifCount(g, k, Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d motif classes vs %d", trial, k, len(got), len(want))
			}
			for i := range got {
				if got[i].Count != want[i].Count || !iso.Isomorphic(got[i].Pattern, want[i].Pattern) {
					t.Fatalf("trial %d k=%d: class %d differs: %v/%d vs %v/%d",
						trial, k, i, got[i].Pattern, got[i].Count, want[i].Pattern, want[i].Count)
				}
			}
		}
	}
}

func TestFSMMatchesKaleido(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(rng, 12+rng.Intn(10), rng.Intn(40), 2)
		for _, support := range []uint64{1, 2, 4} {
			want, err := apps.FSM(bgCtx, g, 4, support, apps.Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			got, err := FSM(g, 4, support, Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			wp := make([]*pattern.Pattern, len(want))
			wc := make([]uint64, len(want))
			for i := range want {
				wp[i], wc[i] = want[i].Pattern, want[i].Count
			}
			matchCounts(t, got, wp, wc)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, VertexInduced, 1, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := paperGraph(t)
	e, _ := NewEngine(g, VertexInduced, 1, nil)
	if err := e.Init(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Init(nil); err == nil {
		t.Fatal("double init accepted")
	}
	if _, err := CliqueCount(g, 1, Options{}); err == nil {
		t.Fatal("k=1 clique accepted")
	}
	if _, err := FSM(g, 1, 1, Options{}); err == nil {
		t.Fatal("k=1 FSM accepted")
	}
	if _, err := FSM(g, 3, 0, Options{}); err == nil {
		t.Fatal("support=0 accepted")
	}
	if _, err := MotifCount(g, 1, Options{}); err == nil {
		t.Fatal("k=1 motif accepted")
	}
}

func TestODAGBytesGrow(t *testing.T) {
	g := paperGraph(t)
	e, _ := NewEngine(g, VertexInduced, 1, nil)
	if err := e.Init(nil); err != nil {
		t.Fatal(err)
	}
	b1 := e.Bytes()
	if err := e.Expand(nil); err != nil {
		t.Fatal(err)
	}
	if e.Bytes() <= b1 {
		t.Fatalf("ODAG bytes did not grow: %d → %d", b1, e.Bytes())
	}
}

// matchCounts compares two result sets as multisets under isomorphism.
func matchCounts(t *testing.T, got []PatternCount, wantPats []*pattern.Pattern, wantCounts []uint64) {
	t.Helper()
	if len(got) != len(wantPats) {
		t.Fatalf("%d patterns, want %d", len(got), len(wantPats))
	}
	used := make([]bool, len(wantPats))
	for _, pc := range got {
		found := false
		for i := range wantPats {
			if used[i] || pc.Count != wantCounts[i] {
				continue
			}
			if iso.Isomorphic(pc.Pattern, wantPats[i]) {
				used[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pattern %v (count %d) has no match", pc.Pattern, pc.Count)
		}
	}
}
