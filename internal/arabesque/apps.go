package arabesque

import (
	"fmt"

	"kaleido/internal/blisslike"
	"kaleido/internal/graph"
	"kaleido/internal/memtrack"
	"kaleido/internal/mni"
	"kaleido/internal/pattern"
)

// Options configures a baseline application run.
type Options struct {
	Threads int
	Tracker *memtrack.Tracker
}

func (o Options) threads() int {
	if o.Threads > 0 {
		return o.Threads
	}
	return 1
}

// PatternCount mirrors the Kaleido result type for cross-system comparison.
type PatternCount struct {
	Pattern *pattern.Pattern
	Count   uint64
	Support uint64
}

// TriangleCount counts triangles on the Arabesque-like engine: explore to
// 3-embeddings under a triangle filter, then count them (TLE style — no
// neighbor-intersection shortcut).
func TriangleCount(g *graph.Graph, opt Options) (uint64, error) {
	e, err := NewEngine(g, VertexInduced, opt.threads(), opt.Tracker)
	if err != nil {
		return 0, err
	}
	if err := e.Init(nil); err != nil {
		return 0, err
	}
	clique := func(emb []uint32, cand uint32) bool {
		for _, v := range emb {
			if !g.HasEdge(v, cand) {
				return false
			}
		}
		return true
	}
	for i := 0; i < 2; i++ {
		if err := e.Expand(clique); err != nil {
			return 0, err
		}
	}
	return e.Count()
}

// CliqueCount counts k-cliques.
func CliqueCount(g *graph.Graph, k int, opt Options) (uint64, error) {
	if k < 2 {
		return 0, fmt.Errorf("arabesque: clique size %d < 2", k)
	}
	e, err := NewEngine(g, VertexInduced, opt.threads(), opt.Tracker)
	if err != nil {
		return 0, err
	}
	if err := e.Init(nil); err != nil {
		return 0, err
	}
	clique := func(emb []uint32, cand uint32) bool {
		for _, v := range emb {
			if !g.HasEdge(v, cand) {
				return false
			}
		}
		return true
	}
	for i := 1; i < k; i++ {
		if err := e.Expand(clique); err != nil {
			return 0, err
		}
	}
	return e.Count()
}

// MotifCount counts k-motifs: full exploration to k, then pattern
// aggregation with the bliss-like canonical labeler (Arabesque's backend).
func MotifCount(g *graph.Graph, k int, opt Options) ([]PatternCount, error) {
	if k < 2 || k > pattern.MaxK {
		return nil, fmt.Errorf("arabesque: motif size %d out of [2,%d]", k, pattern.MaxK)
	}
	e, err := NewEngine(g, VertexInduced, opt.threads(), opt.Tracker)
	if err != nil {
		return nil, err
	}
	if err := e.Init(nil); err != nil {
		return nil, err
	}
	for i := 1; i < k; i++ {
		if err := e.Expand(nil); err != nil {
			return nil, err
		}
	}
	nw := opt.threads()
	type agg struct {
		pat   *pattern.Pattern
		count uint64
	}
	maps := make([]map[uint64]*agg, nw)
	for i := range maps {
		maps[i] = map[uint64]*agg{}
	}
	err = e.ForEach(func(w int, emb []uint32) error {
		p, err := unlabeledPattern(g, emb)
		if err != nil {
			return err
		}
		h := blisslike.Hash(p)
		if a, ok := maps[w][h]; ok {
			a.count++
		} else {
			maps[w][h] = &agg{pat: p, count: 1}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := map[uint64]*agg{}
	for _, m := range maps {
		for h, a := range m {
			if prev, ok := merged[h]; ok {
				prev.count += a.count
			} else {
				merged[h] = a
			}
		}
	}
	var out []PatternCount
	for _, a := range merged {
		out = append(out, PatternCount{Pattern: a.pat, Count: a.count})
	}
	sortCounts(out)
	return out, nil
}

// FSM mines frequent subgraphs (k−1 edges, ≤ k vertices) edge-induced with
// MNI support, pruning by Rebuild after each superstep's aggregation.
func FSM(g *graph.Graph, k int, support uint64, opt Options) ([]PatternCount, error) {
	if k < 2 || k > pattern.MaxK {
		return nil, fmt.Errorf("arabesque: FSM size %d out of [2,%d]", k, pattern.MaxK)
	}
	if support == 0 {
		return nil, fmt.Errorf("arabesque: FSM support must be positive")
	}
	freqPairs := frequentEdgePairs(g, support)
	e, err := NewEngine(g, EdgeInduced, opt.threads(), opt.Tracker)
	if err != nil {
		return nil, err
	}
	err = e.Init(func(eid uint32) bool {
		ed := g.EdgeAt(eid)
		return freqPairs[pairKey(g.Label(ed.U), g.Label(ed.V))]
	})
	if err != nil {
		return nil, err
	}
	filter := func(emb []uint32, cand uint32) bool {
		ed := g.EdgeAt(cand)
		if !freqPairs[pairKey(g.Label(ed.U), g.Label(ed.V))] {
			return false
		}
		// Vertex budget: distinct vertices of emb + new endpoints ≤ k.
		var buf [2 * pattern.MaxK]uint32
		verts := Vertices(g, emb, buf[:0])
		nv := 0
		if !containsSorted(verts, ed.U) {
			nv++
		}
		if !containsSorted(verts, ed.V) {
			nv++
		}
		return len(verts)+nv <= k
	}
	var result []PatternCount
	for level := 2; level <= k-1; level++ {
		if err := e.Expand(filter); err != nil {
			return nil, err
		}
		merged, err := aggregate(g, e, support, opt)
		if err != nil {
			return nil, err
		}
		if level < k-1 {
			keep := func(_ int, emb []uint32) bool {
				p, _, err := edgePattern(g, emb)
				if err != nil {
					return false
				}
				p.SortByLabelDegree()
				agg, ok := merged[blisslike.Hash(p)]
				return ok && agg.Frequent()
			}
			if err := e.Rebuild(keep); err != nil {
				return nil, err
			}
			continue
		}
		for _, agg := range merged {
			if !agg.Frequent() {
				continue
			}
			result = append(result, PatternCount{Pattern: agg.Pat, Count: agg.Count, Support: agg.Support()})
		}
	}
	sortCounts(result)
	return result, nil
}

// aggregate maps each embedding to its pattern (bliss-like hash) and MNI
// domains, with per-worker maps merged by the reducer.
func aggregate(g *graph.Graph, e *Engine, support uint64, opt Options) (map[uint64]*mni.Agg, error) {
	nw := opt.threads()
	maps := make([]map[uint64]*mni.Agg, nw)
	for i := range maps {
		maps[i] = map[uint64]*mni.Agg{}
	}
	err := e.ForEach(func(w int, emb []uint32) error {
		p, verts, err := edgePattern(g, emb)
		if err != nil {
			return err
		}
		var perm [pattern.MaxK]uint8
		p.SortByLabelDegreeTracked(&perm)
		h := blisslike.Hash(p)
		agg, ok := maps[w][h]
		if !ok {
			agg = mni.NewAgg(p)
			maps[w][h] = agg
		}
		agg.Insert(verts, &perm, support)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return mni.MergeMaps(maps, support), nil
}

// edgePattern builds the labeled pattern of an edge-id tuple; verts[i] is
// the graph vertex at pattern index i (pre-sort).
func edgePattern(g *graph.Graph, emb []uint32) (*pattern.Pattern, []uint32, error) {
	var verts []uint32
	idx := func(v uint32) int {
		for i, u := range verts {
			if u == v {
				return i
			}
		}
		verts = append(verts, v)
		return len(verts) - 1
	}
	type pe struct{ a, b int }
	edges := make([]pe, len(emb))
	for i, eid := range emb {
		ed := g.EdgeAt(eid)
		edges[i] = pe{idx(ed.U), idx(ed.V)}
	}
	p, err := pattern.New(len(verts))
	if err != nil {
		return nil, nil, err
	}
	for i, v := range verts {
		p.Labels[i] = g.Label(v)
	}
	for i := range emb {
		p.SetEdge(edges[i].a, edges[i].b)
	}
	return p, verts, nil
}

func unlabeledPattern(g *graph.Graph, verts []uint32) (*pattern.Pattern, error) {
	p, err := pattern.New(len(verts))
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if g.HasEdge(verts[i], verts[j]) {
				p.SetEdge(i, j)
			}
		}
	}
	return p, nil
}

func frequentEdgePairs(g *graph.Graph, support uint64) map[uint32]bool {
	type dom struct{ a, b map[uint32]struct{} }
	doms := map[uint32]*dom{}
	for _, ed := range g.Edges() {
		la, lb := g.Label(ed.U), g.Label(ed.V)
		key := pairKey(la, lb)
		d, ok := doms[key]
		if !ok {
			d = &dom{a: map[uint32]struct{}{}, b: map[uint32]struct{}{}}
			doms[key] = d
		}
		if la == lb {
			d.a[ed.U] = struct{}{}
			d.a[ed.V] = struct{}{}
		} else {
			u, v := ed.U, ed.V
			if la > lb {
				u, v = v, u
			}
			d.a[u] = struct{}{}
			d.b[v] = struct{}{}
		}
	}
	freq := map[uint32]bool{}
	for key, d := range doms {
		m := uint64(len(d.a))
		if len(d.b) > 0 && uint64(len(d.b)) < m {
			m = uint64(len(d.b))
		}
		if m >= support {
			freq[key] = true
		}
	}
	return freq
}

func pairKey(a, b graph.Label) uint32 {
	if a > b {
		a, b = b, a
	}
	return uint32(a)<<16 | uint32(b)
}

func sortCounts(out []PatternCount) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			if out[j].Count > out[j-1].Count ||
				(out[j].Count == out[j-1].Count && out[j].Pattern.Encode() < out[j-1].Pattern.Encode()) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
}
