// Quickstart: build a small labeled graph and run all four mining
// applications through the public API. This uses the running example of the
// paper's Fig. 3 (5 vertices, 7 edges), so the outputs match the numbers
// worked out in §3.1 and §5.1: 3 triangles, 3 3-cliques, and 3-motifs
// splitting into 5 chains and 3 triangles.
package main

import (
	"context"
	"fmt"
	"log"

	"kaleido"
)

func main() {
	// Every blocking call takes a context: cancel it to abort a run promptly
	// (workers poll between blocks of work and return ctx.Err()).
	ctx := context.Background()

	b := kaleido.NewGraphBuilder(5)
	for _, e := range [][2]uint32{{0, 1}, {0, 4}, {1, 4}, {1, 2}, {2, 3}, {2, 4}, {3, 4}} {
		b.AddEdge(e[0], e[1])
	}
	// Two label classes, as in the paper's pattern-matching example (Fig. 1).
	b.SetLabel(1, 1)
	b.SetLabel(4, 1)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	cfg := kaleido.Config{}

	triangles, err := g.Triangles(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("triangles:", triangles) // 3

	cliques, err := g.Cliques(ctx, 3, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3-cliques:", cliques) // 3

	motifs, err := g.Motifs(ctx, 3, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3-motifs:")
	for _, m := range motifs {
		fmt.Printf("  %v ×%d\n", m.Pattern, m.Count) // chain ×5, triangle ×3
	}

	frequent, err := g.FSM(ctx, 3, 2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent 2-edge patterns (support ≥ 2): %d\n", len(frequent))
	for _, f := range frequent {
		fmt.Printf("  %v count=%d support=%d\n", f.Pattern, f.Count, f.Support)
	}

	// Custom workloads use the Miner directly. The EmbeddingFilter is
	// worker-aware — the worker index lets a filter keep per-goroutine
	// scratch (the built-in clique filter uses it for a neighbor marker).
	// When the run only needs a number, finish with ExpandCount instead of
	// a final Expand: the last level — the largest one — is counted at the
	// expansion frontier and never materialized, so it writes zero bytes.
	m, err := g.NewMiner(ctx, kaleido.VertexInduced, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	adjacentToAll := func(_ int, emb []uint32, cand uint32) bool {
		for _, v := range emb {
			if !g.HasEdge(v, cand) {
				return false
			}
		}
		return true
	}
	if err := m.Expand(ctx, adjacentToAll); err != nil { // 2-cliques: the edges
		log.Fatal(err)
	}
	nclq, err := m.ExpandCount(ctx, adjacentToAll) // 3-cliques, not stored
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("3-cliques via Miner.ExpandCount:", nclq) // 3
}
