// Motif profiling of a protein-interaction-style network — the paper's
// introduction motivates motif counting with "the frequency distribution of
// all motifs that occur in PPI networks" (Przulj's graphlet degree work).
//
// The example generates two synthetic networks with equal size but different
// wiring (power-law vs uniform) and compares their 4-motif spectra: the
// skewed network is star-heavy while the uniform one carries relatively more
// paths — the kind of structural fingerprint motif counting exists for.
//
// Motifs runs on the sink pipeline: only k−1 levels are ever stored — the
// final expansion streams through the Mapper at the frontier
// (Miner.ExpandVisit is the same primitive for custom aggregations). If all
// you need is the total number of k-embeddings, not the per-motif split,
// Miner.ExpandCount does the last step with per-worker counters and no
// pattern hashing at all. Filters passed to Miner.Expand* are worker-aware:
// func(worker int, emb []uint32, cand uint32) bool.
package main

import (
	"context"
	"fmt"
	"log"

	"kaleido"
)

func main() {
	const n, m = 3000, 9000
	powerlaw, err := kaleido.Synthetic(n, m, 1, 7)
	if err != nil {
		log.Fatal(err)
	}
	uniform := buildUniform(n, m)

	ctx := context.Background()
	cfg := kaleido.Config{}
	for _, net := range []struct {
		name string
		g    *kaleido.Graph
	}{{"power-law (PPI-like)", powerlaw}, {"uniform (rewired null model)", uniform}} {
		motifs, err := net.g.Motifs(ctx, 4, cfg)
		if err != nil {
			log.Fatal(err)
		}
		var total uint64
		for _, mt := range motifs {
			total += mt.Count
		}
		fmt.Printf("%s — %d vertices, %d edges, %d distinct 4-motifs, %d occurrences\n",
			net.name, net.g.N(), net.g.M(), len(motifs), total)
		for _, mt := range motifs {
			fmt.Printf("  %-28v %10d  (%.2f%%)\n", mt.Pattern, mt.Count, 100*float64(mt.Count)/float64(total))
		}
	}
}

// buildUniform makes an Erdős–Rényi-style graph with a fixed seed.
func buildUniform(n, m int) *kaleido.Graph {
	b := kaleido.NewGraphBuilder(n)
	// Deterministic LCG so the example needs no extra imports.
	state := uint64(99)
	next := func(mod int) uint32 {
		state = state*6364136223846793005 + 1442695040888963407
		return uint32((state >> 33) % uint64(mod))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(next(n), next(n))
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g
}
