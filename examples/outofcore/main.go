// Out-of-core mining: run 4-motif counting under a deliberately tiny memory
// budget so the deeper CSE levels spill to disk (the paper's §4.1
// half-memory-half-disk hybrid storage), then compare against the in-memory
// run — same answer, bounded memory, modest slowdown (paper Table 4 reports
// < 30%).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"kaleido"
)

func main() {
	g, err := kaleido.Synthetic(20000, 90000, 8, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f\n", g.N(), g.M(), g.AvgDegree())

	// In-memory baseline.
	var memStats kaleido.Stats
	start := time.Now()
	inMem, err := g.Motifs(4, kaleido.Config{Stats: &memStats})
	if err != nil {
		log.Fatal(err)
	}
	memTime := time.Since(start)
	fmt.Printf("in-memory:   %8.2fs, peak %6.1f MB\n",
		memTime.Seconds(), float64(memStats.PeakBytes)/(1<<20))

	// Hybrid run: budget far below the in-memory peak.
	spill, err := os.MkdirTemp("", "kaleido-spill")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(spill)
	var hybStats kaleido.Stats
	start = time.Now()
	hybrid, err := g.Motifs(4, kaleido.Config{
		MemoryBudget: memStats.PeakBytes / 8,
		SpillDir:     spill,
		Predict:      true, // §4.2 prediction-based load balancing
		Stats:        &hybStats,
	})
	if err != nil {
		log.Fatal(err)
	}
	hybTime := time.Since(start)
	fmt.Printf("out-of-core: %8.2fs, peak %6.1f MB, %6.1f MB written / %6.1f MB read back\n",
		hybTime.Seconds(), float64(hybStats.PeakBytes)/(1<<20),
		float64(hybStats.WriteBytes)/(1<<20), float64(hybStats.ReadBytes)/(1<<20))

	if len(inMem) != len(hybrid) {
		log.Fatalf("result mismatch: %d vs %d motif shapes", len(inMem), len(hybrid))
	}
	for i := range inMem {
		if inMem[i].Count != hybrid[i].Count {
			log.Fatalf("count mismatch for %v: %d vs %d", inMem[i].Pattern, inMem[i].Count, hybrid[i].Count)
		}
	}
	fmt.Printf("results identical across storage modes: %d motif shapes\n", len(inMem))
	fmt.Printf("slowdown: %.0f%%  memory reduction: %.1fx\n",
		100*(hybTime.Seconds()-memTime.Seconds())/memTime.Seconds(),
		float64(memStats.PeakBytes)/float64(hybStats.PeakBytes))
}
