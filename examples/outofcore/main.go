// Out-of-core mining: run 4-motif counting under a deliberately tiny memory
// budget so the deeper CSE levels spill to disk (the paper's §4.1
// half-memory-half-disk hybrid storage), then compare against the in-memory
// run — same answer, bounded memory, modest slowdown (paper Table 4 reports
// < 30%). A third variant runs two mining jobs concurrently through one
// kaleido.Engine, whose budget arbiter makes the two runs share a single
// memory budget instead of each assuming it owns the whole machine.
//
// Spilling is per part, governed during the build: every level starts in
// memory, and when the resident bytes cross SpillWatermark·MemoryBudget the
// governor migrates the largest in-flight parts to SpillDir while the rest
// stay in RAM. A level slightly over budget therefore pays disk I/O only for
// its spilled share — Stats.SpilledParts vs Stats.SpilledLevels below shows
// how partial the spilling was. Under an Engine the same watermark is a
// cross-run property: the governor fires on the combined resident bytes of
// every run the engine has vended.
//
// Worked example of the knob interplay: with MemoryBudget = 64 MB and the
// default SpillWatermark = 0.9, a run whose levels reach 40 MB never touches
// SpillDir. If the next level would push the resident total to 80 MB, the
// governor starts migrating parts at ≈ 57.6 MB (0.9 × 64 MB); roughly
// 22 MB of that level ends up in SpillDir and the rest stays hot. Lowering
// SpillWatermark to 0.5 makes spilling start at 32 MB — more I/O, more
// headroom for the untracked remainder of the process. Two concurrent runs
// through an Engine with the same 64 MB budget trip the same ≈ 57.6 MB
// watermark on their combined levels.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"kaleido"
)

func main() {
	// Every blocking call takes a context; cancelling it aborts the run
	// promptly and Close/return paths still reclaim all spilled files.
	ctx := context.Background()

	// Sized so the demo finishes in about a minute: the 4-motif pattern
	// hashing dominates the run time, while the budget below is relative to
	// the measured peak, so the spill behavior is the same at any scale.
	g, err := kaleido.Synthetic(1000, 4000, 8, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges, avg degree %.1f\n", g.N(), g.M(), g.AvgDegree())

	// In-memory baseline.
	var memStats kaleido.Stats
	start := time.Now()
	inMem, err := g.Motifs(ctx, 4, kaleido.Config{Stats: &memStats})
	if err != nil {
		log.Fatal(err)
	}
	memTime := time.Since(start)
	fmt.Printf("in-memory:   %8.2fs, peak %6.1f MB\n",
		memTime.Seconds(), float64(memStats.PeakBytes)/(1<<20))

	// Hybrid run: budget far below the in-memory peak, so the level builds
	// cross the watermark and the governor spills part of each big level.
	spill, err := os.MkdirTemp("", "kaleido-spill")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(spill)
	var hybStats kaleido.Stats
	start = time.Now()
	hybrid, err := g.Motifs(ctx, 4, kaleido.Config{
		MemoryBudget: memStats.PeakBytes / 8,
		SpillDir:     spill,
		// SpillWatermark: 0.9 is the default — spill when resident bytes
		// reach 90% of the budget, keeping 10% headroom for growth
		// between governor decisions.
		Predict: true, // §4.2 prediction-based load balancing
		Stats:   &hybStats,
	})
	if err != nil {
		log.Fatal(err)
	}
	hybTime := time.Since(start)
	fmt.Printf("out-of-core: %8.2fs, peak %6.1f MB, %6.1f MB written / %6.1f MB read back\n",
		hybTime.Seconds(), float64(hybStats.PeakBytes)/(1<<20),
		float64(hybStats.WriteBytes)/(1<<20), float64(hybStats.ReadBytes)/(1<<20))
	fmt.Printf("spilling:    %d level(s) crossed the watermark, %d part(s) migrated to disk\n",
		hybStats.SpilledLevels, hybStats.SpilledParts)

	if len(inMem) != len(hybrid) {
		log.Fatalf("result mismatch: %d vs %d motif shapes", len(inMem), len(hybrid))
	}
	for i := range inMem {
		if inMem[i].Count != hybrid[i].Count {
			log.Fatalf("count mismatch for %v: %d vs %d", inMem[i].Pattern, inMem[i].Count, hybrid[i].Count)
		}
	}
	fmt.Printf("results identical across storage modes: %d motif shapes\n", len(inMem))
	fmt.Printf("slowdown: %.0f%%  memory reduction: %.1fx\n",
		100*(hybTime.Seconds()-memTime.Seconds())/memTime.Seconds(),
		float64(memStats.PeakBytes)/float64(hybStats.PeakBytes))

	// Two concurrent runs, one budget: an Engine arbitrates the same
	// MemoryBudget across every run it vends. Each run charges the shared
	// pool, so the spill governor fires on the combined resident bytes —
	// without the Engine, each run would believe it owned the whole budget
	// and together they could use twice it.
	eng := &kaleido.Engine{
		MemoryBudget: memStats.PeakBytes / 8,
		SpillDir:     spill,
	}
	var wg sync.WaitGroup
	results := make([][]kaleido.PatternCount, 2)
	errs := make([]error, 2)
	start = time.Now()
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Motifs(ctx, g, 4, kaleido.Config{})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	for i, res := range results {
		if len(res) != len(inMem) {
			log.Fatalf("concurrent run %d: %d motif shapes, want %d", i, len(res), len(inMem))
		}
	}
	fmt.Printf("two concurrent runs, one shared budget: %8.2fs, combined peak %6.1f MB (budget %6.1f MB)\n",
		time.Since(start).Seconds(),
		float64(eng.PeakBytes())/(1<<20),
		float64(memStats.PeakBytes/8)/(1<<20))
}
