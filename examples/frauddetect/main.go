// Fraud-ring detection in a financial transaction network — one of the
// motivating workloads of the paper's introduction ("we discover cliques in
// financial networks to detect frauds").
//
// The example synthesizes an account graph whose background traffic is a
// sparse power-law network, then plants a handful of dense collusion rings
// (near-cliques). Clique discovery surfaces the rings: the planted accounts
// dominate the 4- and 5-clique counts, while the background graph contributes
// almost none.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"kaleido"
)

func main() {
	const (
		accounts = 4000
		payments = 9000
		rings    = 5
		ringSize = 6
	)
	rng := rand.New(rand.NewSource(42))
	b := kaleido.NewGraphBuilder(accounts)
	for i := 0; i < payments; i++ {
		// Skewed background: preferential-style endpoints.
		u := uint32(rng.Intn(accounts))
		v := uint32(rng.Intn(1 + rng.Intn(accounts)))
		b.AddEdge(u, v)
	}
	// Plant collusion rings: groups of accounts that all transact with each
	// other.
	var planted [][]uint32
	for r := 0; r < rings; r++ {
		members := map[uint32]bool{}
		for len(members) < ringSize {
			members[uint32(rng.Intn(accounts))] = true
		}
		ring := make([]uint32, 0, ringSize)
		for m := range members {
			ring = append(ring, m)
		}
		planted = append(planted, ring)
		for i := 0; i < ringSize; i++ {
			for j := i + 1; j < ringSize; j++ {
				b.AddEdge(ring[i], ring[j])
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transaction graph: %d accounts, %d relationships\n", g.N(), g.M())
	fmt.Printf("planted %d rings of %d mutually transacting accounts\n", rings, ringSize)

	ctx := context.Background()
	cfg := kaleido.Config{}
	for k := 3; k <= 5; k++ {
		n, err := g.Cliques(ctx, k, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-cliques found: %d\n", k, n)
	}
	// Each planted ring of 6 contributes C(6,5)=6 5-cliques; random sparse
	// background essentially none — so the 5-clique count localizes fraud.
	fmt.Printf("expected ≥ %d 5-cliques from the planted rings alone\n", rings*6)
}
