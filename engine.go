package kaleido

import (
	"context"
	"sync"
	"sync/atomic"

	"kaleido/internal/apps"
	"kaleido/internal/memtrack"
)

// Engine multiplexes concurrent mining runs over one machine's resources.
// Every run it vends — application runs (Triangles, Cliques, Motifs, FSM)
// and custom Miners alike — charges the same resident-bytes pool, so N
// co-located runs together respect one MemoryBudget: the §4.1 spill
// watermark fires on their combined total, not on each run's private share.
// Without an Engine, two concurrent runs each believe they own the whole
// budget and can together blow it; with one, the runs arbitrate — a run that
// starts while its siblings hold most of the pool builds its levels mostly
// on disk, and wins the memory back (part promotion, level pops) as the
// siblings release theirs.
//
// The zero value is usable: populate the fields and share the Engine by
// pointer. All methods are safe for concurrent use; runs may share a
// SpillDir (each run spills into a private subdirectory).
type Engine struct {
	// MemoryBudget caps the combined resident bytes of the intermediate
	// data of every run vended by this engine. 0 keeps everything in
	// memory.
	MemoryBudget int64
	// SpillDir receives spilled CSE level parts. Required when
	// MemoryBudget > 0.
	SpillDir string
	// Threads is the default per-run worker count (0 = GOMAXPROCS); a
	// run's Config.Threads overrides it.
	Threads int
	// SpillWatermark is the fraction of MemoryBudget at which mid-build
	// spilling starts (0 = the default 0.9), applied to the combined
	// resident bytes of all runs.
	SpillWatermark float64
	// QueueLimit bounds the admission queue of Admit (0 = the default 64):
	// past it new requests fail fast with ErrQueueFull instead of queueing.
	QueueLimit int
	// AdmitWatermark is the fraction of MemoryBudget that admitted work —
	// live bytes plus outstanding reservations plus a new run's projected
	// bytes — may plan to fill (0 = the default 0.8). Keeping it under
	// SpillWatermark means an admitted run starts into real headroom.
	AdmitWatermark float64

	once sync.Once
	arb  *memtrack.Arbiter

	// Admission queue state (admission.go).
	admitMu  sync.Mutex
	waiters  []*admitWaiter
	admitSeq uint64

	// Cumulative run accounting behind Stats(). The byte-level counters
	// (live/peak/reserved, I/O, spilled bytes, retries) live on the arbiter;
	// these cover what the arbiter does not see: run lifecycles and the
	// part-transition counts reported per run through SpillInfo.
	activeRuns      atomic.Int64
	completedRuns   atomic.Int64
	failedRuns      atomic.Int64
	spilledLevels   atomic.Int64
	spilledParts    atomic.Int64
	promotedParts   atomic.Int64
	compressedParts atomic.Int64
}

// EngineStats is one race-clean snapshot of an Engine's aggregate state: the
// shared pool, the run lifecycle counts, and the cumulative spill/promote/
// retry counters of every run the engine has vended. Metrics endpoints and
// benchmarks read this one view instead of poking fields mid-run.
type EngineStats struct {
	// MemoryBudget echoes the engine's shared budget (0 = unbudgeted).
	MemoryBudget int64
	// LiveBytes and PeakBytes are the combined resident bytes of all vended
	// runs, current and high-watermark. ReservedBytes is the headroom held
	// by granted admissions whose runs have not yet allocated it.
	LiveBytes, PeakBytes, ReservedBytes int64
	// ActiveRuns counts runs currently executing (including live Miners);
	// QueuedRuns counts Admit requests waiting for headroom.
	ActiveRuns, QueuedRuns int
	// CompletedRuns and FailedRuns count finished runs by outcome
	// (cancellation counts as failed — the run did not produce a result).
	CompletedRuns, FailedRuns int64
	// Cumulative part-residency transitions across all runs: levels that
	// spilled at least one part, parts migrated to disk, disk parts promoted
	// back, raw parts squeezed into compressed-mem blocks.
	SpilledLevels, SpilledParts, PromotedParts, CompressedParts int64
	// SpilledBytes is the cumulative logical size of the spilled parts,
	// SpilledBytesPhysical what they occupied on disk.
	SpilledBytes, SpilledBytesPhysical int64
	// ReadBytes and WriteBytes are cumulative hybrid-storage I/O.
	ReadBytes, WriteBytes int64
	// IORetries counts transient spill I/O errors absorbed by the retry
	// policy across all runs.
	IORetries int64
}

// Stats returns an aggregate snapshot of the engine: pool bytes, run
// lifecycle counts, and cumulative spill accounting. Safe to call
// concurrently with running jobs; counters from runs still in flight appear
// when those runs finish (Miners: when they Close).
func (en *Engine) Stats() EngineStats {
	arb := en.arbiter()
	sl, sp := arb.SpillTotals()
	r, w := arb.IOTotals()
	en.admitMu.Lock()
	queued := len(en.waiters)
	en.admitMu.Unlock()
	return EngineStats{
		MemoryBudget:         en.MemoryBudget,
		LiveBytes:            arb.Live(),
		PeakBytes:            arb.Peak(),
		ReservedBytes:        arb.Reserved(),
		ActiveRuns:           int(en.activeRuns.Load()),
		QueuedRuns:           queued,
		CompletedRuns:        en.completedRuns.Load(),
		FailedRuns:           en.failedRuns.Load(),
		SpilledLevels:        en.spilledLevels.Load(),
		SpilledParts:         en.spilledParts.Load(),
		PromotedParts:        en.promotedParts.Load(),
		CompressedParts:      en.compressedParts.Load(),
		SpilledBytes:         sl,
		SpilledBytesPhysical: sp,
		ReadBytes:            r,
		WriteBytes:           w,
		IORetries:            arb.IORetries(),
	}
}

// beginRun/endRun bracket every run the engine vends. endRun folds the run's
// part-transition counts into the cumulative totals and wakes the admission
// queue — a finished run is the main headroom-freeing event.
func (en *Engine) beginRun() { en.activeRuns.Add(1) }

func (en *Engine) endRun(spill *apps.SpillInfo, err error) {
	en.activeRuns.Add(-1)
	if err != nil {
		en.failedRuns.Add(1)
	} else {
		en.completedRuns.Add(1)
	}
	if spill != nil {
		en.spilledLevels.Add(int64(spill.SpilledLevels))
		en.spilledParts.Add(int64(spill.SpilledParts))
		en.promotedParts.Add(int64(spill.PromotedParts))
		en.compressedParts.Add(int64(spill.CompressedParts))
	}
	en.kickAdmission()
}

// endRunStats is endRun for sharded runs, whose accounting arrives merged.
func (en *Engine) endRunStats(s *Stats, err error) {
	spill := &apps.SpillInfo{}
	if s != nil {
		spill.SpilledLevels, spill.SpilledParts = s.SpilledLevels, s.SpilledParts
		spill.PromotedParts, spill.CompressedParts = s.PromotedParts, s.CompressedParts
	}
	en.endRun(spill, err)
}

// arbiter lazily creates the shared budget arbiter, so a literal
// Engine{...} works without a constructor.
func (en *Engine) arbiter() *memtrack.Arbiter {
	en.once.Do(func() { en.arb = memtrack.NewArbiter(en.MemoryBudget) })
	return en.arb
}

// config merges the engine's shared knobs into a per-run Config: budget,
// spill placement and watermark always come from the engine (they are
// engine-wide properties), threads only when the run doesn't choose its own.
func (en *Engine) config(cfg Config) Config {
	cfg.MemoryBudget = en.MemoryBudget
	cfg.SpillDir = en.SpillDir
	cfg.SpillWatermark = en.SpillWatermark
	if cfg.Threads == 0 {
		cfg.Threads = en.Threads
	}
	return cfg
}

// ResidentBytes reports the combined live tracked bytes of every run the
// engine has vended — the quantity the shared budget caps.
func (en *Engine) ResidentBytes() int64 { return en.arbiter().Live() }

// PeakBytes reports the high watermark of the combined resident bytes.
func (en *Engine) PeakBytes() int64 { return en.arbiter().Peak() }

// NewMiner creates a Miner whose intermediate data charges the engine's
// shared budget pool. Close the Miner to release its share (and any spilled
// files); the Miner counts as an active run until then.
func (en *Engine) NewMiner(ctx context.Context, g *Graph, mode Mode, cfg Config) (*Miner, error) {
	cfg = en.config(cfg)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	en.beginRun()
	m, err := newMiner(ctx, g, mode, cfg, en.arbiter().NewTracker())
	if err != nil {
		en.endRun(nil, err)
		return nil, err
	}
	m.en = en
	return m, nil
}

// engineSpill ensures every engine-vended run carries spill accounting, so
// Engine.Stats accumulates it whether or not the caller asked for Stats.
func engineSpill(opt *apps.Options) *apps.SpillInfo {
	if opt.Spill == nil {
		opt.Spill = &apps.SpillInfo{}
	}
	return opt.Spill
}

// runShardedEngine is the engine-accounted sharded dispatch shared by
// Engine.RunSharded and the app methods' Config.Shards branch.
func (en *Engine) runShardedEngine(ctx context.Context, job Job, shards int) (*Result, error) {
	en.beginRun()
	res, err := runSharded(ctx, job, shards, en.arbiter())
	if res != nil {
		en.endRunStats(&res.Stats, err)
	} else {
		en.endRunStats(nil, err)
	}
	return res, err
}

// Triangles is Graph.Triangles charged against the engine's shared budget.
func (en *Engine) Triangles(ctx context.Context, g *Graph, cfg Config) (_ uint64, err error) {
	cfg = en.config(cfg)
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if cfg.Shards > 1 {
		res, err := en.runShardedEngine(ctx, Job{Graph: g, App: AppTriangles, Config: cfg}, cfg.Shards)
		if err != nil {
			return 0, err
		}
		return res.Count, nil
	}
	opt, tracker := cfg.appOptionsWith(en.arbiter().NewTracker())
	spill := engineSpill(&opt)
	en.beginRun()
	defer func() { cfg.finish(tracker, spill); en.endRun(spill, err) }()
	return apps.TriangleCount(ctxOrBackground(ctx), g.g, opt)
}

// Cliques is Graph.Cliques charged against the engine's shared budget.
func (en *Engine) Cliques(ctx context.Context, g *Graph, k int, cfg Config) (_ uint64, err error) {
	cfg = en.config(cfg)
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if cfg.Shards > 1 {
		res, err := en.runShardedEngine(ctx, Job{Graph: g, App: AppCliques, K: k, Config: cfg}, cfg.Shards)
		if err != nil {
			return 0, err
		}
		return res.Count, nil
	}
	opt, tracker := cfg.appOptionsWith(en.arbiter().NewTracker())
	spill := engineSpill(&opt)
	en.beginRun()
	defer func() { cfg.finish(tracker, spill); en.endRun(spill, err) }()
	return apps.CliqueCount(ctxOrBackground(ctx), g.g, k, opt)
}

// Motifs is Graph.Motifs charged against the engine's shared budget.
func (en *Engine) Motifs(ctx context.Context, g *Graph, k int, cfg Config) (_ []PatternCount, err error) {
	cfg = en.config(cfg)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		sres, err := en.runShardedEngine(ctx, Job{Graph: g, App: AppMotifs, K: k, Config: cfg}, cfg.Shards)
		if err != nil {
			return nil, err
		}
		return sres.Patterns, nil
	}
	opt, tracker := cfg.appOptionsWith(en.arbiter().NewTracker())
	spill := engineSpill(&opt)
	en.beginRun()
	defer func() { cfg.finish(tracker, spill); en.endRun(spill, err) }()
	res, err := apps.MotifCount(ctxOrBackground(ctx), g.g, k, opt)
	if err != nil {
		return nil, err
	}
	return publicCounts(res), nil
}

// FSM is Graph.FSM charged against the engine's shared budget.
func (en *Engine) FSM(ctx context.Context, g *Graph, k int, support uint64, cfg Config) (_ []PatternCount, err error) {
	cfg = en.config(cfg)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		sres, err := en.runShardedEngine(ctx, Job{Graph: g, App: AppFSM, K: k, Support: support, Config: cfg}, cfg.Shards)
		if err != nil {
			return nil, err
		}
		return sres.Patterns, nil
	}
	opt, tracker := cfg.appOptionsWith(en.arbiter().NewTracker())
	spill := engineSpill(&opt)
	en.beginRun()
	defer func() { cfg.finish(tracker, spill); en.endRun(spill, err) }()
	res, err := apps.FSM(ctxOrBackground(ctx), g.g, k, support, opt)
	if err != nil {
		return nil, err
	}
	return publicCounts(res), nil
}
