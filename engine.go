package kaleido

import (
	"context"
	"sync"

	"kaleido/internal/apps"
	"kaleido/internal/memtrack"
)

// Engine multiplexes concurrent mining runs over one machine's resources.
// Every run it vends — application runs (Triangles, Cliques, Motifs, FSM)
// and custom Miners alike — charges the same resident-bytes pool, so N
// co-located runs together respect one MemoryBudget: the §4.1 spill
// watermark fires on their combined total, not on each run's private share.
// Without an Engine, two concurrent runs each believe they own the whole
// budget and can together blow it; with one, the runs arbitrate — a run that
// starts while its siblings hold most of the pool builds its levels mostly
// on disk, and wins the memory back (part promotion, level pops) as the
// siblings release theirs.
//
// The zero value is usable: populate the fields and share the Engine by
// pointer. All methods are safe for concurrent use; runs may share a
// SpillDir (each run spills into a private subdirectory).
type Engine struct {
	// MemoryBudget caps the combined resident bytes of the intermediate
	// data of every run vended by this engine. 0 keeps everything in
	// memory.
	MemoryBudget int64
	// SpillDir receives spilled CSE level parts. Required when
	// MemoryBudget > 0.
	SpillDir string
	// Threads is the default per-run worker count (0 = GOMAXPROCS); a
	// run's Config.Threads overrides it.
	Threads int
	// SpillWatermark is the fraction of MemoryBudget at which mid-build
	// spilling starts (0 = the default 0.9), applied to the combined
	// resident bytes of all runs.
	SpillWatermark float64

	once sync.Once
	arb  *memtrack.Arbiter
}

// arbiter lazily creates the shared budget arbiter, so a literal
// Engine{...} works without a constructor.
func (en *Engine) arbiter() *memtrack.Arbiter {
	en.once.Do(func() { en.arb = memtrack.NewArbiter(en.MemoryBudget) })
	return en.arb
}

// config merges the engine's shared knobs into a per-run Config: budget,
// spill placement and watermark always come from the engine (they are
// engine-wide properties), threads only when the run doesn't choose its own.
func (en *Engine) config(cfg Config) Config {
	cfg.MemoryBudget = en.MemoryBudget
	cfg.SpillDir = en.SpillDir
	cfg.SpillWatermark = en.SpillWatermark
	if cfg.Threads == 0 {
		cfg.Threads = en.Threads
	}
	return cfg
}

// ResidentBytes reports the combined live tracked bytes of every run the
// engine has vended — the quantity the shared budget caps.
func (en *Engine) ResidentBytes() int64 { return en.arbiter().Live() }

// PeakBytes reports the high watermark of the combined resident bytes.
func (en *Engine) PeakBytes() int64 { return en.arbiter().Peak() }

// NewMiner creates a Miner whose intermediate data charges the engine's
// shared budget pool. Close the Miner to release its share (and any spilled
// files).
func (en *Engine) NewMiner(ctx context.Context, g *Graph, mode Mode, cfg Config) (*Miner, error) {
	cfg = en.config(cfg)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return newMiner(ctx, g, mode, cfg, en.arbiter().NewTracker())
}

// Triangles is Graph.Triangles charged against the engine's shared budget.
func (en *Engine) Triangles(ctx context.Context, g *Graph, cfg Config) (uint64, error) {
	cfg = en.config(cfg)
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if cfg.Shards > 1 {
		res, err := runSharded(ctx, Job{Graph: g, App: AppTriangles, Config: cfg}, cfg.Shards, en.arbiter())
		if err != nil {
			return 0, err
		}
		return res.Count, nil
	}
	opt, tracker := cfg.appOptionsWith(en.arbiter().NewTracker())
	defer cfg.finish(tracker, opt.Spill)
	return apps.TriangleCount(ctxOrBackground(ctx), g.g, opt)
}

// Cliques is Graph.Cliques charged against the engine's shared budget.
func (en *Engine) Cliques(ctx context.Context, g *Graph, k int, cfg Config) (uint64, error) {
	cfg = en.config(cfg)
	if err := cfg.validate(); err != nil {
		return 0, err
	}
	if cfg.Shards > 1 {
		res, err := runSharded(ctx, Job{Graph: g, App: AppCliques, K: k, Config: cfg}, cfg.Shards, en.arbiter())
		if err != nil {
			return 0, err
		}
		return res.Count, nil
	}
	opt, tracker := cfg.appOptionsWith(en.arbiter().NewTracker())
	defer cfg.finish(tracker, opt.Spill)
	return apps.CliqueCount(ctxOrBackground(ctx), g.g, k, opt)
}

// Motifs is Graph.Motifs charged against the engine's shared budget.
func (en *Engine) Motifs(ctx context.Context, g *Graph, k int, cfg Config) ([]PatternCount, error) {
	cfg = en.config(cfg)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		sres, err := runSharded(ctx, Job{Graph: g, App: AppMotifs, K: k, Config: cfg}, cfg.Shards, en.arbiter())
		if err != nil {
			return nil, err
		}
		return sres.Patterns, nil
	}
	opt, tracker := cfg.appOptionsWith(en.arbiter().NewTracker())
	defer cfg.finish(tracker, opt.Spill)
	res, err := apps.MotifCount(ctxOrBackground(ctx), g.g, k, opt)
	if err != nil {
		return nil, err
	}
	return publicCounts(res), nil
}

// FSM is Graph.FSM charged against the engine's shared budget.
func (en *Engine) FSM(ctx context.Context, g *Graph, k int, support uint64, cfg Config) ([]PatternCount, error) {
	cfg = en.config(cfg)
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 1 {
		sres, err := runSharded(ctx, Job{Graph: g, App: AppFSM, K: k, Support: support, Config: cfg}, cfg.Shards, en.arbiter())
		if err != nil {
			return nil, err
		}
		return sres.Patterns, nil
	}
	opt, tracker := cfg.appOptionsWith(en.arbiter().NewTracker())
	defer cfg.finish(tracker, opt.Spill)
	res, err := apps.FSM(ctxOrBackground(ctx), g.g, k, support, opt)
	if err != nil {
		return nil, err
	}
	return publicCounts(res), nil
}
