package kaleido

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitQueued polls until the engine reports n queued admission requests.
func waitQueued(t *testing.T, eng *Engine, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().QueuedRuns != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d waiters (at %d)", n, eng.Stats().QueuedRuns)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmitImmediate covers the paths that never queue: an unbudgeted engine
// has nothing to arbitrate, and a budgeted-but-idle engine admits a fitting
// request on the spot.
func TestAdmitImmediate(t *testing.T) {
	eng := &Engine{}
	adm, err := eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 1 << 40})
	if err != nil {
		t.Fatalf("unbudgeted Admit = %v", err)
	}
	adm.Release()
	adm.Release() // idempotent

	eng = &Engine{MemoryBudget: 1000}
	adm, err = eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 100})
	if err != nil {
		t.Fatalf("idle Admit = %v", err)
	}
	if got := eng.Stats().ReservedBytes; got != 100 {
		t.Fatalf("ReservedBytes = %d, want 100", got)
	}
	adm.Release()
	if got := eng.Stats().ReservedBytes; got != 0 {
		t.Fatalf("ReservedBytes after Release = %d, want 0", got)
	}

	// An oversized projection clamps to the watermark instead of wedging.
	adm, err = eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 1 << 40})
	if err != nil {
		t.Fatalf("oversized Admit on idle engine = %v", err)
	}
	adm.Release()

	// A nil Admission is safe to release (the no-op path of error handling).
	var nilAdm *Admission
	nilAdm.Release()
}

// TestAdmitPriorityOrder fills the budget, queues requests with mixed
// priorities, and checks the grant order: highest priority first, FIFO
// within a priority, each grant waiting for the previous holder's release.
func TestAdmitPriorityOrder(t *testing.T) {
	const budget = 1000
	eng := &Engine{MemoryBudget: budget}
	blocker, err := eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: budget})
	if err != nil {
		t.Fatal(err)
	}

	// Each waiter needs the whole watermark, so grants serialize and the
	// recorded order is the dispatch order. Enqueue one at a time — seq
	// (FIFO rank) follows submission order.
	type sub struct {
		label    string
		priority int
	}
	subs := []sub{{"low-1", 1}, {"high-1", 5}, {"low-2", 1}, {"high-2", 5}, {"mid", 3}}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	for i, s := range subs {
		wg.Add(1)
		go func(s sub) {
			defer wg.Done()
			adm, err := eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: budget, Priority: s.priority})
			if err != nil {
				t.Errorf("%s: %v", s.label, err)
				return
			}
			mu.Lock()
			order = append(order, s.label)
			mu.Unlock()
			adm.Release()
		}(s)
		waitQueued(t, eng, i+1)
	}

	blocker.Release()
	wg.Wait()
	want := []string{"high-1", "high-2", "mid", "low-1", "low-2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
	if got := eng.Stats().ReservedBytes; got != 0 {
		t.Fatalf("ReservedBytes after all releases = %d, want 0", got)
	}
}

// TestAdmitDeadline covers both deadline paths: an already-expired deadline
// fails fast without queueing, and a queued request fails with
// ErrAdmitDeadline when its deadline passes first — leaving no reservation
// and no queue entry behind.
func TestAdmitDeadline(t *testing.T) {
	eng := &Engine{MemoryBudget: 1000}
	if _, err := eng.Admit(bgCtx, AdmitRequest{Deadline: time.Now().Add(-time.Second)}); !errors.Is(err, ErrAdmitDeadline) {
		t.Fatalf("pre-expired Admit = %v, want ErrAdmitDeadline", err)
	}

	blocker, err := eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Release()
	start := time.Now()
	_, err = eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 1000, Deadline: time.Now().Add(30 * time.Millisecond)})
	if !errors.Is(err, ErrAdmitDeadline) {
		t.Fatalf("queued Admit past deadline = %v, want ErrAdmitDeadline", err)
	}
	if waited := time.Since(start); waited < 25*time.Millisecond {
		t.Fatalf("deadline fired after %v — did not actually queue", waited)
	}
	st := eng.Stats()
	if st.QueuedRuns != 0 {
		t.Fatalf("QueuedRuns after deadline expiry = %d, want 0", st.QueuedRuns)
	}
	// The blocker's oversized projection was clamped to the admit limit
	// (0.8·budget); that clamp must be all that remains reserved.
	if st.ReservedBytes != 800 {
		t.Fatalf("ReservedBytes = %d, want the blocker's clamped 800 only", st.ReservedBytes)
	}
}

// TestAdmitQueueFull checks the bounded queue: past QueueLimit waiters, new
// requests are rejected immediately with ErrQueueFull.
func TestAdmitQueueFull(t *testing.T) {
	eng := &Engine{MemoryBudget: 1000, QueueLimit: 2}
	blocker, err := eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Admit(ctx, AdmitRequest{ProjectedBytes: 1000}); !errors.Is(err, context.Canceled) {
				t.Errorf("queued Admit = %v, want context.Canceled", err)
			}
		}()
	}
	waitQueued(t, eng, 2)
	if _, err := eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 1}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Admit over QueueLimit = %v, want ErrQueueFull", err)
	}
	cancel()
	wg.Wait()
	blocker.Release()
	if got := eng.Stats().ReservedBytes; got != 0 {
		t.Fatalf("ReservedBytes = %d, want 0", got)
	}
}

// TestAdmitCancelReleasesQueue cancels a queued request and checks that it
// leaves the queue intact for the waiter behind it: once the blocker
// releases, the survivor is admitted.
func TestAdmitCancelReleasesQueue(t *testing.T) {
	eng := &Engine{MemoryBudget: 1000}
	blocker, err := eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	canceled := make(chan error, 1)
	go func() {
		_, err := eng.Admit(ctx, AdmitRequest{ProjectedBytes: 1000, Priority: 9})
		canceled <- err
	}()
	waitQueued(t, eng, 1)

	survivor := make(chan *Admission, 1)
	go func() {
		adm, err := eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 1000})
		if err != nil {
			t.Errorf("survivor Admit = %v", err)
		}
		survivor <- adm
	}()
	waitQueued(t, eng, 2)

	cancel()
	if err := <-canceled; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Admit = %v, want context.Canceled", err)
	}
	waitQueued(t, eng, 1)

	blocker.Release()
	select {
	case adm := <-survivor:
		adm.Release()
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never admitted after blocker release")
	}
	if got := eng.Stats().ReservedBytes; got != 0 {
		t.Fatalf("ReservedBytes = %d, want 0", got)
	}
}

// TestAdmitAfterRunEnd checks the run-completion dispatch edge: a request
// queued behind a running job is admitted when that job finishes, without
// waiting for an explicit Release of anything.
func TestAdmitAfterRunEnd(t *testing.T) {
	g := paperGraph(t)
	eng := &Engine{MemoryBudget: 1000, SpillDir: t.TempDir()}
	blocker, err := eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() {
		adm, err := eng.Admit(bgCtx, AdmitRequest{ProjectedBytes: 1})
		adm.Release()
		admitted <- err
	}()
	waitQueued(t, eng, 1)

	// A run ending kicks the dispatcher; with the blocker still holding its
	// reservation the waiter stays queued — only the release lets it through.
	if _, err := eng.Triangles(bgCtx, g, Config{}); err != nil {
		t.Fatal(err)
	}
	blocker.Release()
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("waiter = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never admitted")
	}
}

// TestProjectResidentBytes sanity-checks the admission projection: positive,
// deterministic, monotone in k, edge-seeded for FSM, and saturating instead
// of overflowing.
func TestProjectResidentBytes(t *testing.T) {
	g, err := Synthetic(600, 2400, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	p3 := g.ProjectResidentBytes(AppMotifs, 3)
	p4 := g.ProjectResidentBytes(AppMotifs, 4)
	if p3 <= 0 || p4 <= p3 {
		t.Fatalf("motif projections not increasing: k=3 %d, k=4 %d", p3, p4)
	}
	if again := g.ProjectResidentBytes(AppMotifs, 4); again != p4 {
		t.Fatalf("projection not deterministic: %d vs %d", again, p4)
	}
	// FSM seeds the edge set, so its level-1 footprint exceeds a
	// vertex-seeded app's on any graph with M > N.
	if fsm, mot := g.ProjectResidentBytes(AppFSM, 3), g.ProjectResidentBytes(AppMotifs, 3); fsm <= mot {
		t.Fatalf("FSM projection %d not above motif %d despite M > N", fsm, mot)
	}
	// Triangles price a fixed two levels regardless of K.
	if a, b := g.ProjectResidentBytes(AppTriangles, 3), g.ProjectResidentBytes(AppTriangles, 9); a != b {
		t.Fatalf("triangle projection depends on k: %d vs %d", a, b)
	}
	// A deep run on a dense graph saturates at the ceiling, never negative.
	if p := g.ProjectResidentBytes(AppMotifs, 200); p != int64(1)<<50 {
		t.Fatalf("deep projection = %d, want the %d ceiling", p, int64(1)<<50)
	}
}
