package kaleido

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// spillFiles returns every regular file under dir.
func spillFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			out = append(out, path)
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return out
}

// TestEngineSharedBudget runs two budget-sharing mining runs concurrently
// and checks the acceptance property of the shared arbiter: their combined
// resident bytes never exceed the single budget, while a correct result
// still comes out of both. Run under -race in CI, this is also the data-race
// test of the cross-run accounting.
func TestEngineSharedBudget(t *testing.T) {
	g, err := Synthetic(600, 2400, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: solo in-memory run sizes the budget so that one run almost
	// fills it — two concurrent runs must arbitrate.
	var solo Stats
	want, err := g.Motifs(bgCtx, 4, Config{Threads: 2, Stats: &solo})
	if err != nil {
		t.Fatal(err)
	}
	budget := solo.PeakBytes
	spill := t.TempDir()
	eng := &Engine{MemoryBudget: budget, SpillDir: spill, Threads: 2}

	var wg sync.WaitGroup
	results := make([][]PatternCount, 2)
	errs := make([]error, 2)
	stats := make([]Stats, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Motifs(bgCtx, g, 4, Config{Stats: &stats[i]})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	for i, res := range results {
		if len(res) != len(want) {
			t.Fatalf("run %d: %d motif shapes, want %d", i, len(res), len(want))
		}
		for j := range res {
			if res[j].Count != want[j].Count {
				t.Fatalf("run %d: count mismatch for %v: %d vs %d", i, res[j].Pattern, res[j].Count, want[j].Count)
			}
		}
	}
	// The combined resident peak — tracked continuously by the arbiter —
	// must respect the single budget the two runs shared.
	if eng.PeakBytes() > budget {
		t.Fatalf("combined resident peak %d exceeds the shared budget %d", eng.PeakBytes(), budget)
	}
	// The budget actually constrained the pair: at least one run spilled
	// (each alone nearly fills the budget, together they cannot both fit).
	if stats[0].SpilledParts+stats[1].SpilledParts == 0 {
		t.Fatalf("no spilling despite contention: peaks %d+%d under budget %d",
			stats[0].PeakBytes, stats[1].PeakBytes, budget)
	}
	if files := spillFiles(t, spill); len(files) != 0 {
		t.Fatalf("spill files leaked: %v", files)
	}
}

// TestEngineMinersShareBudget drives two custom Miners vended by one Engine
// in lockstep and samples the combined footprint after every expansion.
func TestEngineMinersShareBudget(t *testing.T) {
	g, err := Synthetic(400, 1600, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Solo reference sizes the budget to one run's resident footprint.
	ref, err := g.NewMiner(bgCtx, VertexInduced, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for i := 0; i < 2; i++ {
		if err := ref.Expand(bgCtx, nil); err != nil {
			t.Fatal(err)
		}
	}
	budget := ref.Bytes()

	spill := t.TempDir()
	eng := &Engine{MemoryBudget: budget, SpillDir: spill, Threads: 2}
	var miners [2]*Miner
	for i := range miners {
		m, err := eng.NewMiner(bgCtx, g, VertexInduced, Config{})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		miners[i] = m
	}
	for round := 0; round < 2; round++ {
		for _, m := range miners {
			if err := m.Expand(bgCtx, nil); err != nil {
				t.Fatal(err)
			}
			if sum := miners[0].Bytes() + miners[1].Bytes(); sum > budget {
				t.Fatalf("round %d: combined resident %d exceeds shared budget %d", round, sum, budget)
			}
		}
	}
	for i, m := range miners {
		if m.Count() != ref.Count() {
			t.Fatalf("miner %d: count %d, want %d", i, m.Count(), ref.Count())
		}
	}
	// Two runs, one budget sized for one: the second run must have spilled.
	if miners[0].SpilledParts()+miners[1].SpilledParts() == 0 {
		t.Fatal("no spilling despite two runs sharing a one-run budget")
	}
	for _, m := range miners {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if files := spillFiles(t, spill); len(files) != 0 {
		t.Fatalf("spill files leaked after Close: %v", files)
	}
}

// TestPublicCancellation cancels runs through every public entry point and
// checks the contract: ctx.Err() comes back, and no spill files survive.
func TestPublicCancellation(t *testing.T) {
	g, err := Synthetic(400, 1600, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	spill := t.TempDir()
	cfg := Config{Threads: 2, MemoryBudget: 1, SpillDir: spill}

	// Cancel mid-run from inside the filter of a Miner expansion.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m, err := g.NewMiner(ctx, VertexInduced, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Expand(ctx, nil); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	err = m.Expand(ctx, func(_ int, _ []uint32, _ uint32) bool {
		if calls.Add(1) == 200 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Miner.Expand returned %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if files := spillFiles(t, spill); len(files) != 0 {
		t.Fatalf("spill files leaked after cancelled Expand + Close: %v", files)
	}

	// Already-cancelled contexts short-circuit the app entry points.
	done, cancelDone := context.WithCancel(context.Background())
	cancelDone()
	if _, err := g.Triangles(done, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("Triangles = %v", err)
	}
	if _, err := g.Cliques(done, 4, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("Cliques = %v", err)
	}
	if _, err := g.Motifs(done, 4, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("Motifs = %v", err)
	}
	if _, err := g.FSM(done, 3, 2, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("FSM = %v", err)
	}
	if files := spillFiles(t, spill); len(files) != 0 {
		t.Fatalf("spill files leaked after cancelled app runs: %v", files)
	}

	// A mid-run cancel of a full application (spilling enabled) also
	// reclaims everything on its way out.
	midCtx, midCancel := context.WithCancel(context.Background())
	go func() {
		// Cancel as soon as the run has had a chance to start spilling.
		// Walk errors are expected noise (files appear and vanish under
		// the walker) — only a non-test goroutine-safe check here.
		for midCtx.Err() == nil {
			n := 0
			filepath.Walk(spill, func(path string, info os.FileInfo, err error) error {
				if err == nil && !info.IsDir() {
					n++
				}
				return nil
			})
			if n > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		midCancel()
	}()
	if _, err := g.Motifs(midCtx, 4, cfg); err == nil {
		midCancel()
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run Motifs = %v", err)
	}
	midCancel()
	if files := spillFiles(t, spill); len(files) != 0 {
		t.Fatalf("spill files leaked after mid-run cancel: %v", files)
	}
}

// TestEngineStats sanity-checks the engine-level accounting surface.
func TestEngineStats(t *testing.T) {
	g := paperGraph(t)
	eng := &Engine{}
	n, err := eng.Triangles(bgCtx, g, Config{})
	if err != nil || n != 3 {
		t.Fatalf("engine Triangles = %d, %v", n, err)
	}
	if eng.ResidentBytes() != 0 {
		t.Fatalf("resident bytes after run = %d", eng.ResidentBytes())
	}
	if eng.PeakBytes() == 0 {
		t.Fatal("no combined peak recorded")
	}
	// Engine-level knobs are validated like Config ones.
	bad := &Engine{MemoryBudget: 10}
	if _, err := bad.Triangles(bgCtx, g, Config{}); err == nil {
		t.Fatal("engine budget without spill dir accepted")
	}
}
