package kaleido

import (
	"fmt"
	"sort"
	"testing"

	"kaleido/internal/iso"
)

// starGraph builds a graph whose degree order differs from its id order, so
// the build-time relabel pass is a real permutation: vertex 5 is the hub.
func starGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewGraphBuilder(6)
	for v := uint32(0); v < 5; v++ {
		b.AddEdge(5, v)
		b.SetLabel(v, uint16(v%2))
	}
	b.AddEdge(0, 1)
	b.SetLabel(5, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Relabeled() {
		t.Fatal("star graph not relabeled")
	}
	return g
}

// TestRelabeledGraphAccessors pins the id-translation contract of the public
// Graph surface: labels, adjacency and neighbor lists answer in the caller's
// original ids even though the internal layout is degree-ordered.
func TestRelabeledGraphAccessors(t *testing.T) {
	g := starGraph(t)
	if got := g.Label(5); got != 1 {
		t.Fatalf("Label(5) = %d, want 1", got)
	}
	if got := g.Label(3); got != 1 {
		t.Fatalf("Label(3) = %d, want 1", got)
	}
	if !g.HasEdge(5, 2) || !g.HasEdge(2, 5) || !g.HasEdge(0, 1) {
		t.Fatal("existing edges not found under original ids")
	}
	if g.HasEdge(2, 3) {
		t.Fatal("HasEdge(2,3) = true, want false")
	}
	want := []uint32{0, 1, 2, 3, 4}
	got := g.Neighbors(5)
	if len(got) != len(want) {
		t.Fatalf("Neighbors(5) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(5) = %v, want %v", got, want)
		}
	}
}

// TestMinerOriginalIDs pins that a Miner over a relabeled graph hands
// original vertex ids to ForEach, ExpandVisit and the user filter.
func TestMinerOriginalIDs(t *testing.T) {
	g := starGraph(t)
	edges := map[string]bool{}
	for v := uint32(0); v < 5; v++ {
		edges[fmt.Sprint([]uint32{v, 5})] = true
	}
	edges[fmt.Sprint([]uint32{0, 1})] = true

	m, err := g.NewMiner(bgCtx, VertexInduced, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	checkEdge := func(what string, u, v uint32) {
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if !edges[fmt.Sprint([]uint32{a, b})] {
			t.Errorf("%s: (%d,%d) is not an original-id edge", what, u, v)
		}
	}
	// The depth-1→2 expansion enumerates exactly the edge set; the filter and
	// the visitor must both observe it in original ids.
	err = m.ExpandVisit(bgCtx, func(_ int, emb []uint32, cand uint32) bool {
		checkEdge("filter", emb[0], cand)
		return true
	}, func(_ int, emb []uint32, cand uint32) error {
		checkEdge("visit", emb[0], cand)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Expand(bgCtx, nil); err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := m.ForEach(bgCtx, func(_ int, emb []uint32) error {
		u, v := emb[0], emb[1]
		if u > v {
			u, v = v, u
		}
		got = append(got, fmt.Sprint([]uint32{u, v}))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	if len(got) != len(edges) {
		t.Fatalf("ForEach saw %d edges, want %d", len(got), len(edges))
	}
	for _, e := range got {
		if !edges[e] {
			t.Fatalf("ForEach embedding %s is not an original-id edge", e)
		}
	}
}

// samePublicCounts compares result lists by count, support and isomorphism
// class: the representative edge list of a class is whichever embedding a
// worker aggregated first, so it is not pinned across shardings.
func samePublicCounts(t *testing.T, label string, got, want []PatternCount) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d patterns, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Count != want[i].Count || got[i].Support != want[i].Support ||
			!iso.Isomorphic(got[i].Pattern.internal(), want[i].Pattern.internal()) {
			t.Fatalf("%s: pattern %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// TestConfigShardsConformance pins Config.Shards: sharded one-shot runs give
// results identical to unsharded ones, in memory and under a budget.
func TestConfigShardsConformance(t *testing.T) {
	g, err := Synthetic(400, 1600, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Threads: 2}
	tcRef, err := g.Triangles(bgCtx, base)
	if err != nil {
		t.Fatal(err)
	}
	cqRef, err := g.Cliques(bgCtx, 4, base)
	if err != nil {
		t.Fatal(err)
	}
	moRef, err := g.Motifs(bgCtx, 4, base)
	if err != nil {
		t.Fatal(err)
	}
	fsRef, err := g.FSM(bgCtx, 3, 40, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		cfg := base
		cfg.Shards = shards
		var stats Stats
		cfg.Stats = &stats
		tc, err := g.Triangles(bgCtx, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if tc != tcRef {
			t.Fatalf("shards=%d: triangles %d, want %d", shards, tc, tcRef)
		}
		if stats.PeakBytes == 0 {
			t.Fatalf("shards=%d: no peak recorded", shards)
		}
		cq, err := g.Cliques(bgCtx, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if cq != cqRef {
			t.Fatalf("shards=%d: 4-cliques %d, want %d", shards, cq, cqRef)
		}
		mo, err := g.Motifs(bgCtx, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		samePublicCounts(t, fmt.Sprintf("motifs shards=%d", shards), mo, moRef)
		fs, err := g.FSM(bgCtx, 3, 40, cfg)
		if err != nil {
			t.Fatal(err)
		}
		samePublicCounts(t, fmt.Sprintf("fsm shards=%d", shards), fs, fsRef)
	}

	// Sharded under a budget: the shards share it and spill coherently.
	hybrid := Config{Threads: 2, Shards: 3, MemoryBudget: 64 << 10, SpillDir: t.TempDir()}
	var hstats Stats
	hybrid.Stats = &hstats
	mo, err := g.Motifs(bgCtx, 4, hybrid)
	if err != nil {
		t.Fatal(err)
	}
	samePublicCounts(t, "hybrid motifs shards=3", mo, moRef)
	if hstats.WriteBytes == 0 || hstats.SpilledParts == 0 {
		t.Fatalf("sharded hybrid run recorded no spill: %+v", hstats)
	}
}

// TestEngineRunSharded drives the explicit sharded-job API: merged counts,
// patterns and stats, under the engine's shared budget.
func TestEngineRunSharded(t *testing.T) {
	g, err := Synthetic(400, 1600, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	moRef, err := g.Motifs(bgCtx, 4, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	var moTotal uint64
	for _, pc := range moRef {
		moTotal += pc.Count
	}
	fsRef, err := g.FSM(bgCtx, 3, 40, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}

	eng := &Engine{MemoryBudget: 256 << 10, SpillDir: t.TempDir(), Threads: 2}
	res, err := eng.RunSharded(bgCtx, Job{Graph: g, App: AppMotifs, K: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	samePublicCounts(t, "engine motifs", res.Patterns, moRef)
	if res.Count != moTotal {
		t.Fatalf("motif Count = %d, want %d", res.Count, moTotal)
	}
	if res.Stats.PeakBytes == 0 {
		t.Fatalf("no peak in merged stats: %+v", res.Stats)
	}
	res, err = eng.RunSharded(bgCtx, Job{Graph: g, App: AppFSM, K: 3, Support: 40}, 3)
	if err != nil {
		t.Fatal(err)
	}
	samePublicCounts(t, "engine fsm", res.Patterns, fsRef)
	if res.Count == 0 {
		t.Fatal("FSM fused aggregation reported zero final-level embeddings")
	}
	tres, err := eng.RunSharded(bgCtx, Job{Graph: g, App: AppTriangles}, 4)
	if err != nil {
		t.Fatal(err)
	}
	tcRef, err := g.Triangles(bgCtx, Config{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tres.Count != tcRef {
		t.Fatalf("engine triangles = %d, want %d", tres.Count, tcRef)
	}

	if _, err := eng.RunSharded(bgCtx, Job{App: AppTriangles}, 2); err == nil {
		t.Fatal("sharded job without a graph accepted")
	}
	if _, err := eng.RunSharded(bgCtx, Job{Graph: g, App: App(99)}, 2); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// TestConfigShardsValidation pins rejection of negative shard counts.
func TestConfigShardsValidation(t *testing.T) {
	g := paperGraph(t)
	if _, err := g.Triangles(bgCtx, Config{Shards: -1}); err == nil {
		t.Fatal("negative Shards accepted")
	}
}
